#include "src/cloud/presets.h"

namespace tenantnet {

namespace {

std::vector<InstanceId> Launch(CloudWorld& world, TenantId tenant,
                               ProviderId provider, RegionId region, int count) {
  std::vector<InstanceId> out;
  const RegionSite& r = world.region(region);
  for (int i = 0; i < count; ++i) {
    auto inst = world.LaunchInstance(tenant, provider, region,
                                     i % static_cast<int>(r.zones.size()));
    out.push_back(*inst);
  }
  return out;
}

}  // namespace

std::vector<InstanceId> Fig1World::AllInstances() const {
  std::vector<InstanceId> all;
  for (const auto* group :
       {&spark, &database, &web_eu, &web_us, &analytics, &alerting}) {
    all.insert(all.end(), group->begin(), group->end());
  }
  return all;
}

Fig1World BuildFig1World(WorldParams params) {
  Fig1World fig;
  fig.world = std::make_unique<CloudWorld>(params);
  CloudWorld& w = *fig.world;

  // Public internet core: US east/west, central US, EU west/central.
  w.AddTransitRouter("transit:us-east", {2, 1});
  w.AddTransitRouter("transit:us-west", {-28, 4});
  w.AddTransitRouter("transit:us-central", {-13, 3});
  w.AddTransitRouter("transit:eu-west", {38, -4});
  w.AddTransitRouter("transit:eu-central", {46, -3});

  // Cloud A: AWS-like, three regions.
  fig.cloud_a = w.AddProvider("cloudA", 64500,
                              *IpPrefix::Parse("3.0.0.0/8"));
  fig.a_us_east = w.AddRegion(fig.cloud_a, "us-east", {0, 0}, /*zones=*/3);
  fig.a_us_west = w.AddRegion(fig.cloud_a, "us-west", {-30, 5}, 3);
  fig.a_eu_west = w.AddRegion(fig.cloud_a, "eu-west", {40, -5}, 3);

  // Cloud B: Azure-like, two regions.
  fig.cloud_b = w.AddProvider("cloudB", 64501,
                              *IpPrefix::Parse("20.0.0.0/8"));
  fig.b_us_east = w.AddRegion(fig.cloud_b, "b-us-east", {3, 2}, 2);
  fig.b_europe = w.AddRegion(fig.cloud_b, "b-europe", {43, -2}, 2);

  // Colocation/exchange near the US east coast (Equinix-like) and the
  // tenant's on-prem datacenter.
  fig.exchange = w.AddExchange("equinix:dc", {4, 4});
  fig.on_prem = w.AddOnPrem("acme-hq", {6, 9},
                            *IpPrefix::Parse("10.200.0.0/16"));

  fig.tenant = w.AddTenant("acme");

  fig.spark = Launch(w, fig.tenant, fig.cloud_a, fig.a_us_east, 8);
  fig.database = Launch(w, fig.tenant, fig.cloud_b, fig.b_us_east, 4);
  fig.web_eu = Launch(w, fig.tenant, fig.cloud_a, fig.a_eu_west, 4);
  fig.web_us = Launch(w, fig.tenant, fig.cloud_a, fig.a_us_west, 2);
  fig.analytics = Launch(w, fig.tenant, fig.cloud_b, fig.b_europe, 3);
  for (int i = 0; i < 2; ++i) {
    fig.alerting.push_back(*w.LaunchOnPremInstance(fig.tenant, fig.on_prem));
  }
  return fig;
}

TestWorld BuildTestWorld(WorldParams params) {
  TestWorld tw;
  tw.world = std::make_unique<CloudWorld>(params);
  CloudWorld& w = *tw.world;
  w.AddTransitRouter("transit:east", {1, 1});
  w.AddTransitRouter("transit:west", {-19, 1});
  tw.provider = w.AddProvider("cloud", 64512, *IpPrefix::Parse("5.0.0.0/8"));
  tw.east = w.AddRegion(tw.provider, "east", {0, 0}, 2);
  tw.west = w.AddRegion(tw.provider, "west", {-20, 0}, 2);
  tw.exchange = w.AddExchange("ixp", {2, 2});
  tw.on_prem = w.AddOnPrem("dc", {3, 4}, *IpPrefix::Parse("10.0.0.0/16"));
  tw.tenant = w.AddTenant("tenant");
  return tw;
}

}  // namespace tenantnet
