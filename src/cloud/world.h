// The multi-cloud world: providers, regions, zones, the public internet,
// exchange points, on-prem datacenters, and compute instances.
//
// CloudWorld owns the physical Topology and gives both networking worlds
// (vnet baseline and the declarative core) the same substrate:
//
//  * Each region has per-zone host-aggregate nodes behind an edge router.
//  * A provider's regions are joined by a private backbone (full mesh).
//  * Edge routers attach to the nearest public-internet transit routers.
//  * Exchange points (IXPs) model colocation facilities (e.g. Equinix);
//    dedicated circuits (Direct Connect / ExpressRoute / MPLS) terminate
//    there as LinkClass::kDedicated links.
//  * Sites carry 2D coordinates; propagation delay scales with distance,
//    which is what makes hot- vs cold-potato routing geometrically real.
//
// Egress policy selection maps straight onto path cost functions:
// hot potato penalizes backbone links (exit ASAP), cold potato penalizes
// public-internet links (ride the backbone), dedicated prefers circuits.

#ifndef TENANTNET_SRC_CLOUD_WORLD_H_
#define TENANTNET_SRC_CLOUD_WORLD_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/net/ip.h"
#include "src/net/ipam.h"
#include "src/sim/topology.h"

namespace tenantnet {

using ProviderId = TypedId<struct ProviderIdTag>;
using RegionId = TypedId<struct RegionIdTag>;
using ExchangeId = TypedId<struct ExchangeIdTag>;
using OnPremId = TypedId<struct OnPremIdTag>;
using TenantId = TypedId<struct TenantIdTag>;
using InstanceId = TypedId<struct InstanceIdTag>;

// Abstract 2D position; 1 unit of distance ~ 1 ms of one-way propagation.
struct GeoPoint {
  double x = 0;
  double y = 0;
};

double GeoDistance(GeoPoint a, GeoPoint b);

// How traffic leaves a provider toward an external destination (§4 QoS).
enum class EgressPolicy : uint8_t {
  kHotPotato,   // exit to the public internet as early as possible
  kColdPotato,  // stay on the provider backbone as long as possible
  kDedicated,   // prefer dedicated circuits where provisioned
};

std::string_view EgressPolicyName(EgressPolicy policy);

struct ZoneSite {
  std::string name;
  NodeId host_node;  // aggregate of the zone's compute
};

struct RegionSite {
  ProviderId provider;
  std::string name;
  GeoPoint position;
  NodeId edge_node;  // provider edge router (egress/peering point)
  std::vector<ZoneSite> zones;
};

struct ProviderSite {
  std::string name;
  uint32_t asn = 0;
  // Public address space this provider assigns EIPs / VPC ranges from.
  IpPrefix address_space;
  std::vector<RegionId> regions;
};

struct ExchangeSite {
  std::string name;
  GeoPoint position;
  NodeId node;
};

struct OnPremSite {
  std::string name;
  GeoPoint position;
  NodeId router_node;
  NodeId host_node;
  IpPrefix address_space;  // RFC1918-style space used by the baseline world
};

struct Instance {
  InstanceId id;
  TenantId tenant;
  ProviderId provider;   // invalid when hosted on-prem
  RegionId region;       // invalid when hosted on-prem
  OnPremId on_prem;      // invalid when hosted in a cloud
  int zone_index = 0;
  NodeId host_node;
  // Per-VM egress bandwidth guarantee the provider sells (§4: adopted
  // unchanged from today's offering).
  double vm_egress_cap_bps = 0;
  bool running = true;
};

// Tunables for world construction.
struct WorldParams {
  double dc_link_bps = 400e9;           // zone <-> edge
  SimDuration dc_link_delay = SimDuration::Micros(250);
  double backbone_bps = 100e9;          // region <-> region, same provider
  SimDuration backbone_jitter = SimDuration::Micros(50);
  double internet_bps = 40e9;           // transit links
  SimDuration internet_jitter = SimDuration::Millis(2);
  double internet_loss = 0.0005;
  double edge_uplink_bps = 80e9;        // provider edge <-> transit router
  double exchange_uplink_bps = 50e9;    // IXP <-> transit router
  double default_vm_egress_bps = 10e9;
  // One-way delay per unit of geo distance.
  SimDuration delay_per_distance = SimDuration::Millis(1);
};

class CloudWorld {
 public:
  explicit CloudWorld(WorldParams params = {});

  Topology& topology() { return topology_; }
  const Topology& topology() const { return topology_; }
  const WorldParams& params() const { return params_; }

  // --- World construction -------------------------------------------------

  // A transit router of the public internet core at `position`. Meshes with
  // every existing transit router (delay by distance).
  NodeId AddTransitRouter(const std::string& name, GeoPoint position);

  ProviderId AddProvider(const std::string& name, uint32_t asn,
                         IpPrefix address_space);

  // Adds a region with `zone_count` zones; wires zone<->edge, the provider
  // backbone mesh, and an uplink to the nearest transit router.
  RegionId AddRegion(ProviderId provider, const std::string& name,
                     GeoPoint position, int zone_count = 2);

  // An internet exchange / colocation facility, linked to the nearest
  // transit router.
  ExchangeId AddExchange(const std::string& name, GeoPoint position);

  // An on-prem datacenter, linked to the nearest transit router.
  OnPremId AddOnPrem(const std::string& name, GeoPoint position,
                     IpPrefix address_space);

  // Provisions a dedicated circuit (Direct Connect-like) between a region's
  // edge and an exchange point. Returns the forward link.
  Result<LinkId> AddDedicatedCircuit(RegionId region, ExchangeId exchange,
                                     double capacity_bps);
  // Dedicated circuit from an on-prem router to an exchange (MPLS-like).
  Result<LinkId> AddDedicatedCircuitFromOnPrem(OnPremId on_prem,
                                               ExchangeId exchange,
                                               double capacity_bps);

  // --- Tenancy and compute -------------------------------------------------

  TenantId AddTenant(const std::string& name);

  Result<InstanceId> LaunchInstance(TenantId tenant, ProviderId provider,
                                    RegionId region, int zone_index = 0);
  Result<InstanceId> LaunchOnPremInstance(TenantId tenant, OnPremId on_prem);
  Status TerminateInstance(InstanceId id);

  // Fault toggle: a crashed instance (running=false) keeps its slot and can
  // come back, unlike TerminateInstance. Idempotent per state. Fault
  // injectors pair this with the per-world health notifications (LB probes
  // in the baseline, NotifyInstanceDown/Up in the declarative API).
  Status SetInstanceRunning(InstanceId id, bool running);

  // --- Lookup ---------------------------------------------------------------

  const ProviderSite& provider(ProviderId id) const;
  const RegionSite& region(RegionId id) const;
  const ExchangeSite& exchange(ExchangeId id) const;
  const OnPremSite& on_prem(OnPremId id) const;
  const Instance* FindInstance(InstanceId id) const;
  const std::string& tenant_name(TenantId id) const;

  size_t provider_count() const { return providers_.size(); }
  size_t region_count() const { return regions_.size(); }
  size_t instance_count() const { return live_instance_count_; }

  // Bumped whenever instance liveness changes (launch, terminate, crash,
  // recover). Verdict caches validate against it so a cached "delivered"
  // never outlives the instance it was computed for.
  uint64_t instance_state_epoch() const { return instance_state_epoch_; }

  std::vector<InstanceId> TenantInstances(TenantId tenant) const;

  // Every instance slot (running or crashed; terminated slots are gone),
  // sorted by id — the deterministic pair universe for whole-deployment
  // sweeps like the reachability verifier's VerifyAll.
  std::vector<InstanceId> AllInstances() const;

  // --- Paths ----------------------------------------------------------------

  // Physical path between two attachment nodes under an egress policy.
  Result<std::vector<LinkId>> ResolvePath(NodeId src, NodeId dst,
                                          EgressPolicy policy) const;

  // Path between two instances under a policy.
  Result<std::vector<LinkId>> ResolveInstancePath(InstanceId src,
                                                  InstanceId dst,
                                                  EgressPolicy policy) const;

  // --- Components ------------------------------------------------------------
  // Connected component of the topology a node belongs to, and how many
  // components the world has. This is the unit of parallelism for
  // ShardExecutor (disjoint worlds — e.g. isolated provider islands —
  // advance on separate shards). Computed on demand and cached; adding
  // nodes or links invalidates the cache.
  uint32_t TopologyComponentOf(NodeId node) const;
  uint32_t topology_component_count() const;

 private:
  const TopologyComponents& Components() const;

  NodeId NearestTransit(GeoPoint position) const;
  SimDuration DelayFor(GeoPoint a, GeoPoint b) const;

  WorldParams params_;
  Topology topology_;

  std::vector<ProviderSite> providers_;
  std::vector<RegionSite> regions_;
  std::vector<ExchangeSite> exchanges_;
  std::vector<OnPremSite> on_prems_;
  std::vector<std::pair<NodeId, GeoPoint>> transit_routers_;
  std::vector<std::string> tenants_;

  std::unordered_map<InstanceId, Instance> instances_;
  IdGenerator<InstanceId> instance_ids_;
  size_t live_instance_count_ = 0;
  uint64_t instance_state_epoch_ = 0;

  // Component cache, invalidated by topology growth (node/link count
  // change). mutable: recomputed lazily from const accessors.
  mutable TopologyComponents components_cache_;
  mutable size_t components_node_count_ = 0;
  mutable size_t components_link_count_ = 0;
  mutable bool components_valid_ = false;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_CLOUD_WORLD_H_
