#include "src/cloud/world.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace tenantnet {

double GeoDistance(GeoPoint a, GeoPoint b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

std::string_view EgressPolicyName(EgressPolicy policy) {
  switch (policy) {
    case EgressPolicy::kHotPotato:
      return "hot-potato";
    case EgressPolicy::kColdPotato:
      return "cold-potato";
    case EgressPolicy::kDedicated:
      return "dedicated";
  }
  return "?";
}

CloudWorld::CloudWorld(WorldParams params) : params_(params) {}

SimDuration CloudWorld::DelayFor(GeoPoint a, GeoPoint b) const {
  double d = GeoDistance(a, b);
  // Minimum floor keeps co-located sites from having zero-delay links.
  return std::max(SimDuration::Micros(100),
                  params_.delay_per_distance * d);
}

NodeId CloudWorld::NearestTransit(GeoPoint position) const {
  assert(!transit_routers_.empty() &&
         "add transit routers before attaching sites");
  NodeId best;
  double best_dist = std::numeric_limits<double>::infinity();
  for (const auto& [node, pos] : transit_routers_) {
    double d = GeoDistance(position, pos);
    if (d < best_dist) {
      best_dist = d;
      best = node;
    }
  }
  return best;
}

NodeId CloudWorld::AddTransitRouter(const std::string& name,
                                    GeoPoint position) {
  NodeId node = topology_.AddNode(
      NodeInfo{name, NodeKind::kInternetRouter, "internet"});
  for (const auto& [peer, pos] : transit_routers_) {
    topology_.AddDuplexLink(LinkInfo{
        .src = node,
        .dst = peer,
        .capacity_bps = params_.internet_bps,
        .delay = DelayFor(position, pos),
        .jitter_stddev = params_.internet_jitter,
        .loss_rate = params_.internet_loss,
        .cls = LinkClass::kPublicInternet,
    });
  }
  transit_routers_.push_back({node, position});
  return node;
}

ProviderId CloudWorld::AddProvider(const std::string& name, uint32_t asn,
                                   IpPrefix address_space) {
  providers_.push_back(ProviderSite{name, asn, address_space, {}});
  return ProviderId(providers_.size());
}

RegionId CloudWorld::AddRegion(ProviderId provider, const std::string& name,
                               GeoPoint position, int zone_count) {
  assert(provider.valid() && provider.value() <= providers_.size());
  ProviderSite& site = providers_[provider.value() - 1];

  RegionSite region;
  region.provider = provider;
  region.name = name;
  region.position = position;
  region.edge_node = topology_.AddNode(
      NodeInfo{site.name + ":" + name + ":edge", NodeKind::kEdgeRouter,
               site.name});
  for (int z = 0; z < zone_count; ++z) {
    std::string zone_name = name + char('a' + z);
    NodeId host = topology_.AddNode(
        NodeInfo{site.name + ":" + zone_name + ":hosts",
                 NodeKind::kHostAggregate, site.name});
    topology_.AddDuplexLink(LinkInfo{
        .src = host,
        .dst = region.edge_node,
        .capacity_bps = params_.dc_link_bps,
        .delay = params_.dc_link_delay,
        .jitter_stddev = SimDuration::Micros(10),
        .loss_rate = 0,
        .cls = LinkClass::kDatacenter,
    });
    region.zones.push_back(ZoneSite{zone_name, host});
  }

  // Backbone mesh to the provider's other regions.
  for (RegionId other_id : site.regions) {
    const RegionSite& other = regions_[other_id.value() - 1];
    topology_.AddDuplexLink(LinkInfo{
        .src = region.edge_node,
        .dst = other.edge_node,
        .capacity_bps = params_.backbone_bps,
        .delay = DelayFor(position, other.position),
        .jitter_stddev = params_.backbone_jitter,
        .loss_rate = 0,
        .cls = LinkClass::kBackbone,
    });
  }

  // Uplink to the public internet.
  NodeId transit = NearestTransit(position);
  GeoPoint transit_pos;
  for (const auto& [node, pos] : transit_routers_) {
    if (node == transit) {
      transit_pos = pos;
    }
  }
  topology_.AddDuplexLink(LinkInfo{
      .src = region.edge_node,
      .dst = transit,
      .capacity_bps = params_.edge_uplink_bps,
      .delay = DelayFor(position, transit_pos),
      .jitter_stddev = params_.internet_jitter,
      .loss_rate = params_.internet_loss,
      .cls = LinkClass::kPublicInternet,
  });

  regions_.push_back(std::move(region));
  RegionId id(regions_.size());
  site.regions.push_back(id);
  return id;
}

ExchangeId CloudWorld::AddExchange(const std::string& name,
                                   GeoPoint position) {
  NodeId node =
      topology_.AddNode(NodeInfo{name, NodeKind::kExchangePoint, "ixp"});
  NodeId transit = NearestTransit(position);
  GeoPoint transit_pos;
  for (const auto& [tn, pos] : transit_routers_) {
    if (tn == transit) {
      transit_pos = pos;
    }
  }
  topology_.AddDuplexLink(LinkInfo{
      .src = node,
      .dst = transit,
      .capacity_bps = params_.exchange_uplink_bps,
      .delay = DelayFor(position, transit_pos),
      .jitter_stddev = params_.internet_jitter,
      .loss_rate = params_.internet_loss,
      .cls = LinkClass::kPublicInternet,
  });
  exchanges_.push_back(ExchangeSite{name, position, node});
  return ExchangeId(exchanges_.size());
}

OnPremId CloudWorld::AddOnPrem(const std::string& name, GeoPoint position,
                               IpPrefix address_space) {
  NodeId router = topology_.AddNode(
      NodeInfo{name + ":router", NodeKind::kOnPremRouter, name});
  NodeId host = topology_.AddNode(
      NodeInfo{name + ":hosts", NodeKind::kHostAggregate, name});
  topology_.AddDuplexLink(LinkInfo{
      .src = host,
      .dst = router,
      .capacity_bps = params_.dc_link_bps,
      .delay = params_.dc_link_delay,
      .jitter_stddev = SimDuration::Micros(10),
      .loss_rate = 0,
      .cls = LinkClass::kDatacenter,
  });
  NodeId transit = NearestTransit(position);
  GeoPoint transit_pos;
  for (const auto& [tn, pos] : transit_routers_) {
    if (tn == transit) {
      transit_pos = pos;
    }
  }
  topology_.AddDuplexLink(LinkInfo{
      .src = router,
      .dst = transit,
      .capacity_bps = params_.internet_bps / 4,
      .delay = DelayFor(position, transit_pos),
      .jitter_stddev = params_.internet_jitter,
      .loss_rate = params_.internet_loss,
      .cls = LinkClass::kPublicInternet,
  });
  on_prems_.push_back(OnPremSite{name, position, router, host, address_space});
  return OnPremId(on_prems_.size());
}

Result<LinkId> CloudWorld::AddDedicatedCircuit(RegionId region,
                                               ExchangeId exchange,
                                               double capacity_bps) {
  if (!region.valid() || region.value() > regions_.size()) {
    return InvalidArgumentError("unknown region");
  }
  if (!exchange.valid() || exchange.value() > exchanges_.size()) {
    return InvalidArgumentError("unknown exchange");
  }
  const RegionSite& r = regions_[region.value() - 1];
  const ExchangeSite& x = exchanges_[exchange.value() - 1];
  auto [forward, reverse] = topology_.AddDuplexLink(LinkInfo{
      .src = r.edge_node,
      .dst = x.node,
      .capacity_bps = capacity_bps,
      .delay = DelayFor(r.position, x.position),
      .jitter_stddev = SimDuration::Micros(20),  // circuits are steady
      .loss_rate = 0,
      .cls = LinkClass::kDedicated,
  });
  (void)reverse;
  return forward;
}

Result<LinkId> CloudWorld::AddDedicatedCircuitFromOnPrem(OnPremId on_prem,
                                                         ExchangeId exchange,
                                                         double capacity_bps) {
  if (!on_prem.valid() || on_prem.value() > on_prems_.size()) {
    return InvalidArgumentError("unknown on-prem site");
  }
  if (!exchange.valid() || exchange.value() > exchanges_.size()) {
    return InvalidArgumentError("unknown exchange");
  }
  const OnPremSite& o = on_prems_[on_prem.value() - 1];
  const ExchangeSite& x = exchanges_[exchange.value() - 1];
  auto [forward, reverse] = topology_.AddDuplexLink(LinkInfo{
      .src = o.router_node,
      .dst = x.node,
      .capacity_bps = capacity_bps,
      .delay = DelayFor(o.position, x.position),
      .jitter_stddev = SimDuration::Micros(20),
      .loss_rate = 0,
      .cls = LinkClass::kDedicated,
  });
  (void)reverse;
  return forward;
}

TenantId CloudWorld::AddTenant(const std::string& name) {
  tenants_.push_back(name);
  return TenantId(tenants_.size());
}

Result<InstanceId> CloudWorld::LaunchInstance(TenantId tenant,
                                              ProviderId provider,
                                              RegionId region,
                                              int zone_index) {
  if (!tenant.valid() || tenant.value() > tenants_.size()) {
    return InvalidArgumentError("unknown tenant");
  }
  if (!region.valid() || region.value() > regions_.size()) {
    return InvalidArgumentError("unknown region");
  }
  const RegionSite& r = regions_[region.value() - 1];
  if (r.provider != provider) {
    return InvalidArgumentError("region does not belong to provider");
  }
  if (zone_index < 0 || static_cast<size_t>(zone_index) >= r.zones.size()) {
    return InvalidArgumentError("bad zone index");
  }
  Instance inst;
  inst.id = instance_ids_.Next();
  inst.tenant = tenant;
  inst.provider = provider;
  inst.region = region;
  inst.zone_index = zone_index;
  inst.host_node = r.zones[zone_index].host_node;
  inst.vm_egress_cap_bps = params_.default_vm_egress_bps;
  InstanceId id = inst.id;
  instances_.emplace(id, inst);
  ++live_instance_count_;
  ++instance_state_epoch_;
  return id;
}

Result<InstanceId> CloudWorld::LaunchOnPremInstance(TenantId tenant,
                                                    OnPremId on_prem) {
  if (!tenant.valid() || tenant.value() > tenants_.size()) {
    return InvalidArgumentError("unknown tenant");
  }
  if (!on_prem.valid() || on_prem.value() > on_prems_.size()) {
    return InvalidArgumentError("unknown on-prem site");
  }
  Instance inst;
  inst.id = instance_ids_.Next();
  inst.tenant = tenant;
  inst.on_prem = on_prem;
  inst.host_node = on_prems_[on_prem.value() - 1].host_node;
  inst.vm_egress_cap_bps = params_.default_vm_egress_bps;
  InstanceId id = inst.id;
  instances_.emplace(id, inst);
  ++live_instance_count_;
  ++instance_state_epoch_;
  return id;
}

Status CloudWorld::TerminateInstance(InstanceId id) {
  auto it = instances_.find(id);
  if (it == instances_.end() || !it->second.running) {
    return NotFoundError("no such running instance");
  }
  it->second.running = false;
  --live_instance_count_;
  ++instance_state_epoch_;
  return Status::Ok();
}

Status CloudWorld::SetInstanceRunning(InstanceId id, bool running) {
  auto it = instances_.find(id);
  if (it == instances_.end()) {
    return NotFoundError("no such instance");
  }
  if (it->second.running == running) {
    return Status::Ok();
  }
  it->second.running = running;
  live_instance_count_ += running ? 1 : -1;
  ++instance_state_epoch_;
  return Status::Ok();
}

const ProviderSite& CloudWorld::provider(ProviderId id) const {
  assert(id.valid() && id.value() <= providers_.size());
  return providers_[id.value() - 1];
}
const RegionSite& CloudWorld::region(RegionId id) const {
  assert(id.valid() && id.value() <= regions_.size());
  return regions_[id.value() - 1];
}
const ExchangeSite& CloudWorld::exchange(ExchangeId id) const {
  assert(id.valid() && id.value() <= exchanges_.size());
  return exchanges_[id.value() - 1];
}
const OnPremSite& CloudWorld::on_prem(OnPremId id) const {
  assert(id.valid() && id.value() <= on_prems_.size());
  return on_prems_[id.value() - 1];
}

const Instance* CloudWorld::FindInstance(InstanceId id) const {
  auto it = instances_.find(id);
  return it == instances_.end() ? nullptr : &it->second;
}

const std::string& CloudWorld::tenant_name(TenantId id) const {
  assert(id.valid() && id.value() <= tenants_.size());
  return tenants_[id.value() - 1];
}

std::vector<InstanceId> CloudWorld::TenantInstances(TenantId tenant) const {
  std::vector<InstanceId> out;
  for (const auto& [id, inst] : instances_) {
    if (inst.tenant == tenant && inst.running) {
      out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<InstanceId> CloudWorld::AllInstances() const {
  std::vector<InstanceId> out;
  out.reserve(instances_.size());
  for (const auto& [id, inst] : instances_) {
    out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<LinkId>> CloudWorld::ResolvePath(NodeId src, NodeId dst,
                                                    EgressPolicy policy) const {
  Topology::CostFn cost;
  switch (policy) {
    case EgressPolicy::kHotPotato:
      // Backbone is expensive: traffic exits to transit at the first edge.
      cost = Topology::ClassWeightedDelayCost(/*datacenter=*/1.0,
                                              /*backbone=*/25.0,
                                              /*public_internet=*/1.0,
                                              /*dedicated=*/25.0);
      break;
    case EgressPolicy::kColdPotato:
      // Public internet is expensive: traffic rides the backbone to the
      // edge nearest the destination before exiting.
      cost = Topology::ClassWeightedDelayCost(1.0, 1.0, 25.0, 25.0);
      break;
    case EgressPolicy::kDedicated:
      // Circuits are nearly free; backbone cheap; internet tolerated only
      // where no circuit exists.
      cost = Topology::ClassWeightedDelayCost(1.0, 1.0, 50.0, 0.05);
      break;
  }
  return topology_.ShortestPath(src, dst, cost);
}

Result<std::vector<LinkId>> CloudWorld::ResolveInstancePath(
    InstanceId src, InstanceId dst, EgressPolicy policy) const {
  const Instance* a = FindInstance(src);
  const Instance* b = FindInstance(dst);
  if (a == nullptr || b == nullptr) {
    return NotFoundError("unknown instance");
  }
  return ResolvePath(a->host_node, b->host_node, policy);
}

const TopologyComponents& CloudWorld::Components() const {
  if (!components_valid_ ||
      components_node_count_ != topology_.node_count() ||
      components_link_count_ != topology_.link_count()) {
    components_cache_ = ComputeTopologyComponents(topology_);
    components_node_count_ = topology_.node_count();
    components_link_count_ = topology_.link_count();
    components_valid_ = true;
  }
  return components_cache_;
}

uint32_t CloudWorld::TopologyComponentOf(NodeId node) const {
  return Components().node_component[node.value() - 1];
}

uint32_t CloudWorld::topology_component_count() const {
  return Components().count;
}

}  // namespace tenantnet
