// World presets shared by tests, examples, and benchmarks.
//
// BuildFig1World reconstructs the deployment of the paper's Figure 1: an
// enterprise tenant ("acme") whose backend workloads span two public cloud
// providers (several regions each) and an on-premises datacenter, with an
// exchange-point colocation facility available for dedicated circuits.
// The baseline (vnet) and declarative (core) worlds are then built *on top*
// of this same physical substrate so that every comparison is like-for-like.

#ifndef TENANTNET_SRC_CLOUD_PRESETS_H_
#define TENANTNET_SRC_CLOUD_PRESETS_H_

#include <memory>
#include <vector>

#include "src/cloud/world.h"

namespace tenantnet {

// The Fig. 1 cast of characters.
struct Fig1World {
  std::unique_ptr<CloudWorld> world;

  TenantId tenant;

  ProviderId cloud_a;            // the "AWS-like" provider
  RegionId a_us_east;
  RegionId a_us_west;
  RegionId a_eu_west;

  ProviderId cloud_b;            // the "Azure-like" provider
  RegionId b_us_east;
  RegionId b_europe;

  ExchangeId exchange;           // Equinix-like colocation
  OnPremId on_prem;

  // Workloads (instances by role), mirroring the intro's example: a Spark
  // cluster on one cloud, a database on another, web tier, and an on-prem
  // alert manager.
  std::vector<InstanceId> spark;       // cloud A, us-east
  std::vector<InstanceId> database;    // cloud B, us-east
  std::vector<InstanceId> web_eu;      // cloud A, eu-west
  std::vector<InstanceId> web_us;      // cloud A, us-west
  std::vector<InstanceId> analytics;   // cloud B, europe
  std::vector<InstanceId> alerting;    // on-prem

  std::vector<InstanceId> AllInstances() const;
};

Fig1World BuildFig1World(WorldParams params = {});

// A smaller two-region, one-provider world for unit tests.
struct TestWorld {
  std::unique_ptr<CloudWorld> world;
  TenantId tenant;
  ProviderId provider;
  RegionId east;
  RegionId west;
  ExchangeId exchange;
  OnPremId on_prem;
};

TestWorld BuildTestWorld(WorldParams params = {});

}  // namespace tenantnet

#endif  // TENANTNET_SRC_CLOUD_PRESETS_H_
