#include "src/faults/fault_injector.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <string>

namespace tenantnet {

std::string_view FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown:
      return "link-down";
    case FaultKind::kInstanceCrash:
      return "instance-crash";
    case FaultKind::kGatewayRestart:
      return "gateway-restart";
    case FaultKind::kControlPlaneDegrade:
      return "control-plane-degrade";
    case FaultKind::kControlPlaneRestart:
      return "control-plane-restart";
  }
  return "?";
}

FaultSchedule FaultSchedule::Storm(uint64_t seed, const StormParams& params) {
  Rng rng(seed);
  // Kinds that actually have targets; drawn uniformly among themselves.
  std::vector<FaultKind> kinds;
  if (!params.links.empty()) {
    kinds.push_back(FaultKind::kLinkDown);
  }
  if (!params.instances.empty()) {
    kinds.push_back(FaultKind::kInstanceCrash);
  }
  if (!params.gateways.empty()) {
    kinds.push_back(FaultKind::kGatewayRestart);
  }
  if (params.include_control_plane) {
    kinds.push_back(FaultKind::kControlPlaneDegrade);
  }
  if (!params.restart_components.empty()) {
    kinds.push_back(FaultKind::kControlPlaneRestart);
  }
  FaultSchedule schedule;
  if (kinds.empty()) {
    return schedule;
  }
  int64_t window_ns = std::max<int64_t>(1, params.window.nanos());
  int64_t min_ns = std::max<int64_t>(0, params.min_duration.nanos());
  int64_t max_ns = std::max(min_ns + 1, params.max_duration.nanos());
  for (size_t i = 0; i < params.event_count; ++i) {
    FaultSpec spec;
    spec.kind = kinds[rng.NextU64(kinds.size())];
    spec.at = SimDuration::Nanos(
        static_cast<int64_t>(rng.NextU64(static_cast<uint64_t>(window_ns))));
    spec.duration = SimDuration::Nanos(
        min_ns + static_cast<int64_t>(rng.NextU64(
                     static_cast<uint64_t>(max_ns - min_ns))));
    switch (spec.kind) {
      case FaultKind::kLinkDown:
        spec.link = params.links[rng.NextU64(params.links.size())];
        break;
      case FaultKind::kInstanceCrash:
        spec.instance = params.instances[rng.NextU64(params.instances.size())];
        break;
      case FaultKind::kGatewayRestart:
        spec.node = params.gateways[rng.NextU64(params.gateways.size())];
        break;
      case FaultKind::kControlPlaneDegrade:
        break;
      case FaultKind::kControlPlaneRestart:
        spec.component = params.restart_components[rng.NextU64(
            params.restart_components.size())];
        break;
    }
    schedule.events.push_back(spec);
  }
  std::stable_sort(schedule.events.begin(), schedule.events.end(),
                   [](const FaultSpec& a, const FaultSpec& b) {
                     return a.at < b.at;
                   });
  return schedule;
}

FaultInjector::FaultInjector(EventQueue& queue, Topology& topology,
                             FlowControlSurface& flow_sim, CloudWorld* world,
                             MetricRegistry& metrics, FaultHooks hooks,
                             SimDuration probe_interval)
    : queue_(queue), topology_(topology), flow_sim_(flow_sim), world_(world),
      hooks_(std::move(hooks)), probe_interval_(probe_interval) {
  injected_counter_ = &metrics.GetCounter("faults.injected");
  unconverged_counter_ = &metrics.GetCounter("faults.unconverged");
  for (uint8_t k = 0; k < 5; ++k) {
    reconverge_ms_[k] = &metrics.GetHistogram(
        "faults.reconverge_ms." +
        std::string(FaultKindName(static_cast<FaultKind>(k))));
    control_repair_ms_[k] = &metrics.GetHistogram(
        "faults.control_repair_ms." +
        std::string(FaultKindName(static_cast<FaultKind>(k))));
  }
  permit_staleness_ms_ = &metrics.GetHistogram("faults.permit_staleness_ms");
}

void FaultInjector::Schedule(const FaultSchedule& schedule) {
  SimTime base = queue_.now();
  for (const FaultSpec& spec : schedule.events) {
    queue_.ScheduleAt(base + spec.at, [this, spec] { Inject(spec); });
  }
}

void FaultInjector::InjectNow(const FaultSpec& spec) { Inject(spec); }

void FaultInjector::DownLink(LinkId link) {
  size_t idx = Topology::DenseLinkIndex(link);
  if (link_refs_.size() < topology_.link_count()) {
    link_refs_.resize(topology_.link_count(), 0);
  }
  if (++link_refs_[idx] == 1) {
    topology_.SetLinkUp(link, false);
    flow_sim_.SetLinkUp(link, false);
  }
}

void FaultInjector::RestoreLink(LinkId link) {
  size_t idx = Topology::DenseLinkIndex(link);
  assert(idx < link_refs_.size() && link_refs_[idx] > 0);
  if (--link_refs_[idx] == 0) {
    topology_.SetLinkUp(link, true);
    flow_sim_.SetLinkUp(link, true);
  }
}

void FaultInjector::Inject(const FaultSpec& spec) {
  ++faults_injected_;
  injected_counter_->Increment();
  switch (spec.kind) {
    case FaultKind::kLinkDown:
      DownLink(spec.link);
      break;
    case FaultKind::kInstanceCrash:
      assert(world_ != nullptr);
      if (++instance_refs_[spec.instance] == 1) {
        (void)world_->SetInstanceRunning(spec.instance, false);
      }
      break;
    case FaultKind::kGatewayRestart:
      for (LinkId link : topology_.IncidentLinks(spec.node)) {
        DownLink(link);
      }
      break;
    case FaultKind::kControlPlaneDegrade:
      if (++degrade_refs_ == 1 && hooks_.set_control_degraded) {
        hooks_.set_control_degraded(true);
      }
      break;
    case FaultKind::kControlPlaneRestart:
      // Ref-counted per component: only the first outstanding restart kills
      // it (a second one before reconcile extends the same outage).
      if (++restart_refs_[spec.component] == 1 && hooks_.on_restart_begin) {
        hooks_.on_restart_begin(spec);
      }
      break;
  }
  RunHookTimed(hooks_.on_inject, spec);
  queue_.ScheduleAfter(spec.duration, [this, spec] { Recover(spec); });
}

void FaultInjector::Recover(const FaultSpec& spec) {
  switch (spec.kind) {
    case FaultKind::kLinkDown:
      RestoreLink(spec.link);
      break;
    case FaultKind::kInstanceCrash:
      if (--instance_refs_[spec.instance] == 0) {
        (void)world_->SetInstanceRunning(spec.instance, true);
      }
      break;
    case FaultKind::kGatewayRestart:
      for (LinkId link : topology_.IncidentLinks(spec.node)) {
        RestoreLink(link);
      }
      break;
    case FaultKind::kControlPlaneDegrade:
      if (--degrade_refs_ == 0 && hooks_.set_control_degraded) {
        hooks_.set_control_degraded(false);
      }
      break;
    case FaultKind::kControlPlaneRestart:
      // Reconcile only when the last overlapping restart of this component
      // drains; its wall-clock cost is the repair cost of this kind.
      if (--restart_refs_[spec.component] == 0) {
        RunHookTimed(hooks_.on_restart_complete, spec);
      }
      break;
  }
  RunHookTimed(hooks_.on_recover, spec);
  Probe(spec, queue_.now(), 0);
}

void FaultInjector::RunHookTimed(
    const std::function<void(const FaultSpec&)>& hook, const FaultSpec& spec) {
  if (!hook) {
    return;
  }
  auto start = std::chrono::steady_clock::now();
  hook(spec);
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  control_repair_ms_[static_cast<size_t>(spec.kind)]->Record(ms);
}

bool FaultInjector::IsReconverged(const FaultSpec& spec) const {
  if (hooks_.recovered) {
    return hooks_.recovered(spec);
  }
  return flow_sim_.stalled_flow_count() == 0;
}

void FaultInjector::Probe(const FaultSpec& spec, SimTime recovered_at,
                          int tries) {
  if (IsReconverged(spec)) {
    ++faults_reconverged_;
    reconverge_ms_[static_cast<size_t>(spec.kind)]->Record(
        (queue_.now() - recovered_at).ToMillis());
    return;
  }
  if (tries >= max_probe_tries_) {
    // Permanently unconverged — the failure the parity tests look for.
    ++faults_unconverged_;
    unconverged_counter_->Increment();
    return;
  }
  queue_.ScheduleAfter(probe_interval_, [this, spec, recovered_at, tries] {
    Probe(spec, recovered_at, tries + 1);
  });
}

}  // namespace tenantnet
