// Deterministic fault injection.
//
// The resilience experiments (E8b) ask a single question of both worlds:
// when links die, instances crash, gateways restart and the control plane
// degrades, how long until the abstraction recovers, and how much traffic
// falls into the hole meanwhile? This module supplies the machinery: a
// seeded fault-schedule generator (identical schedules replay byte-for-byte
// on any world) and an injector that applies each fault's world-agnostic
// part — Topology/FlowSim link state, CloudWorld instance state — then lets
// world-specific hooks react (LB health checks and BGP withdrawal in the
// baseline, NotifyInstanceDown/Up in the declarative API).
//
// Determinism guarantees:
//   * A schedule is a pure function of (seed, StormParams). Replaying it
//     against the same world yields identical event sequences; the injector
//     draws no randomness of its own.
//   * Overlapping faults reference-count shared state (two faults downing
//     the same link — directly and via a gateway restart — must not restore
//     it at the first recovery).
//   * Recovery probing is periodic on the shared EventQueue, so
//     time-to-reconverge is quantized at probe_interval and replays
//     identically.

#ifndef TENANTNET_SRC_FAULTS_FAULT_INJECTOR_H_
#define TENANTNET_SRC_FAULTS_FAULT_INJECTOR_H_

#include <cstdint>
#include <functional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/cloud/world.h"
#include "src/common/rng.h"
#include "src/common/time.h"
#include "src/sim/event_queue.h"
#include "src/sim/flow_surface.h"
#include "src/sim/topology.h"
#include "src/telemetry/metrics.h"

namespace tenantnet {

enum class FaultKind : uint8_t {
  kLinkDown,             // one link loses capacity and leaves path selection
  kInstanceCrash,        // an instance stops running (and later restarts)
  kGatewayRestart,       // a node restarts: every incident link goes down
  kControlPlaneDegrade,  // filter replication drops/delays messages
  kControlPlaneRestart,  // a control-plane component dies and reconciles
};

std::string_view FaultKindName(FaultKind kind);

// One failure + its recovery. `at` is relative to the Schedule() call.
struct FaultSpec {
  FaultKind kind = FaultKind::kLinkDown;
  SimDuration at = SimDuration::Zero();
  SimDuration duration = SimDuration::Millis(500);
  LinkId link;           // kLinkDown
  InstanceId instance;   // kInstanceCrash
  NodeId node;           // kGatewayRestart
  // kControlPlaneRestart: which component dies (an opaque id the restart
  // coordinator registered — filter bank, LB, routing plane, ...).
  uint32_t component = 0;
};

// Knobs for the seeded storm generator. Kinds with no candidate targets
// (and control-plane faults when disabled) are simply never drawn.
struct StormParams {
  size_t event_count = 100;
  SimDuration window = SimDuration::Seconds(30);    // injection times
  SimDuration min_duration = SimDuration::Millis(100);
  SimDuration max_duration = SimDuration::Seconds(2);
  std::vector<LinkId> links;
  std::vector<InstanceId> instances;
  std::vector<NodeId> gateways;
  bool include_control_plane = true;
  // Component ids eligible for kControlPlaneRestart (empty = never drawn).
  std::vector<uint32_t> restart_components;
};

struct FaultSchedule {
  std::vector<FaultSpec> events;  // sorted by `at`

  // Deterministic storm: a pure function of (seed, params).
  static FaultSchedule Storm(uint64_t seed, const StormParams& params);
};

// World-specific reactions. All optional.
struct FaultHooks {
  // Runs right after the injector applies a fault's world-agnostic part
  // (links downed / instance stopped). Baseline: nothing — health probes
  // discover the crash. Declarative: NotifyInstanceDown, etc.
  std::function<void(const FaultSpec&)> on_inject;
  // Runs right after the injector restores state at recovery time.
  std::function<void(const FaultSpec&)> on_recover;
  // Convergence predicate, probed every probe_interval after recovery until
  // true (or the probe budget runs out). Default: no flow is stalled on a
  // downed link anywhere in the sim.
  std::function<bool(const FaultSpec&)> recovered;
  // Toggled at the first/last overlapping kControlPlaneDegrade fault.
  std::function<void(bool degraded)> set_control_degraded;
  // Edge-triggered per component (ref-counted like overlapping link faults):
  // on_restart_begin fires when a component's first outstanding restart
  // lands (kill + checkpoint-if-needed); on_restart_complete when its last
  // one recovers (replay + reconcile — its wall-clock cost is recorded as
  // the kind's control_repair_ms). A second restart of the same component
  // before the first completes extends the same outage; neither hook refires.
  std::function<void(const FaultSpec&)> on_restart_begin;
  std::function<void(const FaultSpec&)> on_restart_complete;
};

class FaultInjector {
 public:
  // All references must outlive the injector. `world` may be null when the
  // schedule contains no instance faults. Metrics land in `metrics` under
  // "faults.*" names.
  FaultInjector(EventQueue& queue, Topology& topology, FlowControlSurface& flow_sim,
                CloudWorld* world, MetricRegistry& metrics, FaultHooks hooks,
                SimDuration probe_interval = SimDuration::Millis(10));

  // Schedules every event of `schedule` relative to now. May be called
  // more than once (schedules accumulate).
  void Schedule(const FaultSchedule& schedule);

  // Injects one fault immediately (tests drive single faults this way).
  void InjectNow(const FaultSpec& spec);

  // --- Telemetry ------------------------------------------------------------
  uint64_t faults_injected() const { return faults_injected_; }
  // Faults whose recovery probe confirmed reconvergence.
  uint64_t faults_reconverged() const { return faults_reconverged_; }
  // Faults that exhausted the probe budget without reconverging.
  uint64_t faults_unconverged() const { return faults_unconverged_; }
  // Faults injected but whose recovery/probe has not resolved yet.
  uint64_t faults_outstanding() const {
    return faults_injected_ - faults_reconverged_ - faults_unconverged_;
  }
  bool AllRecovered() const {
    return faults_outstanding() == 0 && faults_unconverged_ == 0;
  }

  // Time from fault recovery until the convergence predicate held, per kind.
  const Histogram& reconverge_ms(FaultKind kind) const {
    return *reconverge_ms_[static_cast<size_t>(kind)];
  }

  // Wall-clock cost of the world-specific control-plane reaction (the
  // on_inject/on_recover hooks), per kind. This is where incremental route
  // propagation shows up: a baseline hook that re-propagates routes pays
  // delta cost instead of a full reconvergence per fault.
  const Histogram& control_repair_ms(FaultKind kind) const {
    return *control_repair_ms_[static_cast<size_t>(kind)];
  }

  // Extra channel for the permit-staleness experiments: how long a revoked
  // peer kept getting through after the revocation was issued. Recorded by
  // the caller (it owns the filter bank); stored here so every resilience
  // metric is in one registry.
  void RecordPermitStaleness(SimDuration window) {
    permit_staleness_ms_->Record(window.ToMillis());
  }
  const Histogram& permit_staleness_ms() const { return *permit_staleness_ms_; }

 private:
  void Inject(const FaultSpec& spec);
  void Recover(const FaultSpec& spec);
  void Probe(const FaultSpec& spec, SimTime recovered_at, int tries);
  bool IsReconverged(const FaultSpec& spec) const;

  void DownLink(LinkId link);
  void RestoreLink(LinkId link);

  EventQueue& queue_;
  Topology& topology_;
  FlowControlSurface& flow_sim_;
  CloudWorld* world_;
  FaultHooks hooks_;
  SimDuration probe_interval_;
  int max_probe_tries_ = 10000;

  // Overlap reference counts.
  std::vector<int> link_refs_;                       // dense link index
  std::unordered_map<InstanceId, int> instance_refs_;
  int degrade_refs_ = 0;
  std::unordered_map<uint32_t, int> restart_refs_;   // per component

  uint64_t faults_injected_ = 0;
  uint64_t faults_reconverged_ = 0;
  uint64_t faults_unconverged_ = 0;
  // Runs a hook (if set) and records its wall-clock cost for `kind`.
  void RunHookTimed(const std::function<void(const FaultSpec&)>& hook,
                    const FaultSpec& spec);

  Counter* injected_counter_;
  Counter* unconverged_counter_;
  Histogram* reconverge_ms_[5];
  Histogram* control_repair_ms_[5];
  Histogram* permit_staleness_ms_;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_FAULTS_FAULT_INJECTOR_H_
