// Generational (epoch-invalidated) verdict cache.
//
// Both worlds answer the same hot question — "does this flow get through?" —
// and both answer it with work proportional to configuration size. The
// VerdictCache memoizes those answers without ever enumerating entries to
// invalidate them: every cached verdict is stamped with the epochs of the
// state it was derived from, and a mutation bumps an epoch instead of
// touching the cache. Stale entries simply stop validating and get
// overwritten in place.
//
// Validation is two-tier so the steady-state hit costs one probe:
//   1. `validated_gen == gen` — nothing at all has mutated since this slot
//      was last validated: pure integer compare, no second lookup.
//   2. Otherwise the slot re-validates against (global_epoch, scope_epoch):
//      the caller supplies the entry's *scope* epoch lazily (e.g. the
//      per-endpoint epoch in the declarative world), and a match re-stamps
//      validated_gen so subsequent hits take tier 1 again.
// `gen` must bump whenever *any* epoch the cache can observe bumps.
//
// The table is set-associative (kWays) and direct-mapped within a set:
// collisions overwrite, nothing is chained, memory is bounded and allocated
// lazily on first insert. Single-threaded like the rest of the simulator.

#ifndef TENANTNET_SRC_NET_VERDICT_CACHE_H_
#define TENANTNET_SRC_NET_VERDICT_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace tenantnet {

struct VerdictCacheStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;           // fast-path + revalidated
  uint64_t revalidations = 0;  // hits that took the tier-2 epoch check
  uint64_t stale = 0;          // key matched but epochs no longer valid
  uint64_t misses = 0;         // no matching key (includes stale)
  uint64_t insertions = 0;
  uint64_t evictions = 0;      // insert displaced a live, still-valid entry

  double hit_rate() const {
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

template <typename Key, typename Verdict, typename Hash = std::hash<Key>>
class VerdictCache {
 public:
  // `capacity` is the slot count, rounded up to a power of two (minimum one
  // set). Slots are kWays-associative; storage is allocated on first insert.
  explicit VerdictCache(size_t capacity = kDefaultCapacity) {
    size_t slots = kWays;
    while (slots < capacity) {
      slots <<= 1;
    }
    mask_ = (slots / kWays) - 1;
    capacity_ = slots;
  }

  // Returns the cached verdict for `key` if present and still valid, else
  // nullptr. `gen` is the caller's total mutation counter, `global_epoch`
  // its coarse epoch, and `scope_epoch_of()` lazily produces the fine-grained
  // epoch the entry was scoped to (only consulted when `gen` moved).
  template <typename ScopeFn>
  const Verdict* Lookup(const Key& key, uint64_t gen, uint64_t global_epoch,
                        ScopeFn&& scope_epoch_of) {
    ++stats_.lookups;
    if (slots_.empty()) {
      ++stats_.misses;
      return nullptr;
    }
    Slot* set = SetFor(key);
    for (size_t w = 0; w < kWays; ++w) {
      Slot& slot = set[w];
      if (!slot.occupied || !(slot.key == key)) {
        continue;
      }
      if (slot.validated_gen == gen) {
        ++stats_.hits;
        return &slot.verdict;
      }
      if (slot.global_epoch == global_epoch &&
          slot.scope_epoch == scope_epoch_of()) {
        slot.validated_gen = gen;  // revalidated; next hit is tier 1
        ++stats_.hits;
        ++stats_.revalidations;
        return &slot.verdict;
      }
      ++stats_.stale;
      ++stats_.misses;
      slot.occupied = false;  // self-invalidated; free the way for reuse
      return nullptr;
    }
    ++stats_.misses;
    return nullptr;
  }

  void Insert(const Key& key, uint64_t gen, uint64_t global_epoch,
              uint64_t scope_epoch, Verdict verdict) {
    if (slots_.empty()) {
      slots_.resize(capacity_);
    }
    Slot* set = SetFor(key);
    Slot* victim = nullptr;
    for (size_t w = 0; w < kWays; ++w) {
      Slot& slot = set[w];
      if (slot.occupied && slot.key == key) {
        victim = &slot;  // refresh in place
        break;
      }
      if (victim == nullptr && !slot.occupied) {
        victim = &slot;
      }
    }
    if (victim == nullptr) {
      victim = &set[round_robin_++ % kWays];
      ++stats_.evictions;
    }
    victim->occupied = true;
    victim->key = key;
    victim->scope_epoch = scope_epoch;
    victim->global_epoch = global_epoch;
    victim->validated_gen = gen;
    victim->verdict = std::move(verdict);
    ++stats_.insertions;
  }

  // Drops every entry (epoch bumps make this unnecessary for correctness;
  // benches use it to measure cold-start throughput).
  void Clear() {
    slots_.clear();
    slots_.shrink_to_fit();
  }

  const VerdictCacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = VerdictCacheStats{}; }
  size_t capacity() const { return capacity_; }

  static constexpr size_t kWays = 4;
  static constexpr size_t kDefaultCapacity = 1 << 16;

 private:
  struct Slot {
    Key key{};
    uint64_t scope_epoch = 0;
    uint64_t global_epoch = 0;
    uint64_t validated_gen = 0;
    Verdict verdict{};
    bool occupied = false;
  };

  Slot* SetFor(const Key& key) {
    // One multiplicative scramble on top of the key hash: std::hash for
    // integral types is often the identity, which would alias sets badly.
    uint64_t h = Hash{}(key) * 0x9E3779B97F4A7C15ull;
    return &slots_[((h >> 17) & mask_) * kWays];
  }

  size_t capacity_;
  uint64_t mask_;
  uint64_t round_robin_ = 0;
  std::vector<Slot> slots_;
  VerdictCacheStats stats_;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_NET_VERDICT_CACHE_H_
