#include "src/net/flow.h"

#include <sstream>

namespace tenantnet {

std::string_view ProtocolName(Protocol proto) {
  switch (proto) {
    case Protocol::kAny:
      return "any";
    case Protocol::kTcp:
      return "tcp";
    case Protocol::kUdp:
      return "udp";
    case Protocol::kIcmp:
      return "icmp";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const PortRange& r) {
  if (r.IsAny()) {
    return os << "*";
  }
  if (r.lo == r.hi) {
    return os << r.lo;
  }
  return os << r.lo << "-" << r.hi;
}

std::string FiveTuple::ToString() const {
  std::ostringstream os;
  os << ProtocolName(proto) << " " << src << ":" << src_port << " -> " << dst
     << ":" << dst_port;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const FiveTuple& t) {
  return os << t.ToString();
}

FlowMatch FlowMatch::Any(IpFamily family) {
  FlowMatch m;
  m.src_prefix = IpPrefix::Any(family);
  m.dst_prefix = IpPrefix::Any(family);
  return m;
}

FlowMatch FlowMatch::FromSource(const IpPrefix& src) {
  FlowMatch m;
  m.src_prefix = src;
  m.dst_prefix = IpPrefix::Any(src.family());
  return m;
}

bool FlowMatch::Matches(const FiveTuple& flow) const {
  if (proto != Protocol::kAny && proto != flow.proto) {
    return false;
  }
  return src_prefix.Contains(flow.src) && dst_prefix.Contains(flow.dst) &&
         src_ports.Contains(flow.src_port) && dst_ports.Contains(flow.dst_port);
}

std::string FlowMatch::ToString() const {
  std::ostringstream os;
  os << ProtocolName(proto) << " " << src_prefix.ToString() << ":" << src_ports
     << " -> " << dst_prefix.ToString() << ":" << dst_ports;
  return os.str();
}

}  // namespace tenantnet
