// Flow identification: protocols, port ranges, 5-tuples.
//
// The simulator is flow-level, so the FiveTuple is the unit the data plane
// classifies on — security groups, ACLs, permit-lists and load balancers all
// match against it.

#ifndef TENANTNET_SRC_NET_FLOW_H_
#define TENANTNET_SRC_NET_FLOW_H_

#include <cstdint>
#include <ostream>
#include <string>

#include "src/net/ip.h"

namespace tenantnet {

enum class Protocol : uint8_t { kAny = 0, kTcp = 6, kUdp = 17, kIcmp = 1 };

std::string_view ProtocolName(Protocol proto);

// Inclusive port range. {0, 65535} matches everything.
struct PortRange {
  uint16_t lo = 0;
  uint16_t hi = 65535;

  static constexpr PortRange Any() { return PortRange{0, 65535}; }
  static constexpr PortRange Single(uint16_t port) {
    return PortRange{port, port};
  }

  bool Contains(uint16_t port) const { return port >= lo && port <= hi; }
  bool IsAny() const { return lo == 0 && hi == 65535; }

  friend bool operator==(const PortRange& a, const PortRange& b) = default;
};

std::ostream& operator<<(std::ostream& os, const PortRange& r);

// Classic 5-tuple.
struct FiveTuple {
  IpAddress src;
  IpAddress dst;
  uint16_t src_port = 0;
  uint16_t dst_port = 0;
  Protocol proto = Protocol::kTcp;

  std::string ToString() const;

  friend bool operator==(const FiveTuple& a, const FiveTuple& b) = default;
};

std::ostream& operator<<(std::ostream& os, const FiveTuple& t);

// A match pattern over flows: the building block of every filtering
// abstraction in both worlds (SG rules, ACL entries, permit-list entries,
// firewall rules).
struct FlowMatch {
  IpPrefix src_prefix;   // default: family-any set by users
  IpPrefix dst_prefix;
  PortRange src_ports = PortRange::Any();
  PortRange dst_ports = PortRange::Any();
  Protocol proto = Protocol::kAny;

  // Matches everything in the given family.
  static FlowMatch Any(IpFamily family = IpFamily::kIpv4);

  // Matches traffic from one source prefix to anywhere.
  static FlowMatch FromSource(const IpPrefix& src);

  bool Matches(const FiveTuple& flow) const;

  std::string ToString() const;

  friend bool operator==(const FlowMatch& a, const FlowMatch& b) = default;
};

}  // namespace tenantnet

namespace std {
template <>
struct hash<tenantnet::FiveTuple> {
  size_t operator()(const tenantnet::FiveTuple& t) const noexcept {
    size_t h = std::hash<tenantnet::IpAddress>{}(t.src);
    h = h * 1099511628211ULL ^ std::hash<tenantnet::IpAddress>{}(t.dst);
    h = h * 1099511628211ULL ^
        ((static_cast<size_t>(t.src_port) << 24) |
         (static_cast<size_t>(t.dst_port) << 8) |
         static_cast<size_t>(t.proto));
    return h;
  }
};
}  // namespace std

#endif  // TENANTNET_SRC_NET_FLOW_H_
