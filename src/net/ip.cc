#include "src/net/ip.h"

#include <array>
#include <charconv>
#include <cstdio>
#include <vector>

namespace tenantnet {

namespace {

// Applies a prefix mask of `len` bits to a 128-bit (hi, lo) pair laid out so
// that bit 0 is the MSB of hi.
void MaskBits128(uint64_t& hi, uint64_t& lo, int len) {
  if (len <= 0) {
    hi = 0;
    lo = 0;
  } else if (len < 64) {
    hi &= ~0ULL << (64 - len);
    lo = 0;
  } else if (len == 64) {
    lo = 0;
  } else if (len < 128) {
    lo &= ~0ULL << (128 - len);
  }
  // len == 128: untouched.
}

Result<uint32_t> ParseV4(std::string_view text) {
  uint32_t bits = 0;
  int octets = 0;
  size_t pos = 0;
  while (octets < 4) {
    size_t dot = text.find('.', pos);
    std::string_view part = (dot == std::string_view::npos)
                                ? text.substr(pos)
                                : text.substr(pos, dot - pos);
    if (part.empty() || part.size() > 3) {
      return InvalidArgumentError("bad IPv4 octet");
    }
    unsigned value = 0;
    auto [ptr, ec] =
        std::from_chars(part.data(), part.data() + part.size(), value);
    if (ec != std::errc() || ptr != part.data() + part.size() || value > 255) {
      return InvalidArgumentError("bad IPv4 octet");
    }
    bits = (bits << 8) | value;
    ++octets;
    if (dot == std::string_view::npos) {
      pos = text.size();
      break;
    }
    pos = dot + 1;
  }
  if (octets != 4 || pos != text.size()) {
    return InvalidArgumentError("IPv4 address needs exactly 4 octets");
  }
  return bits;
}

Result<std::pair<uint64_t, uint64_t>> ParseV6(std::string_view text) {
  // Split on "::" if present.
  std::vector<uint16_t> head;
  std::vector<uint16_t> tail;
  size_t gap = text.find("::");
  auto parse_groups = [](std::string_view part,
                         std::vector<uint16_t>& out) -> Status {
    if (part.empty()) {
      return Status::Ok();
    }
    size_t pos = 0;
    for (;;) {
      size_t colon = part.find(':', pos);
      std::string_view group = (colon == std::string_view::npos)
                                   ? part.substr(pos)
                                   : part.substr(pos, colon - pos);
      if (group.empty() || group.size() > 4) {
        return InvalidArgumentError("bad IPv6 group");
      }
      unsigned value = 0;
      auto [ptr, ec] = std::from_chars(group.data(),
                                       group.data() + group.size(), value, 16);
      if (ec != std::errc() || ptr != group.data() + group.size()) {
        return InvalidArgumentError("bad IPv6 group");
      }
      out.push_back(static_cast<uint16_t>(value));
      if (colon == std::string_view::npos) {
        break;
      }
      pos = colon + 1;
    }
    return Status::Ok();
  };

  if (gap == std::string_view::npos) {
    TN_RETURN_IF_ERROR(parse_groups(text, head));
    if (head.size() != 8) {
      return InvalidArgumentError("IPv6 address needs 8 groups");
    }
  } else {
    TN_RETURN_IF_ERROR(parse_groups(text.substr(0, gap), head));
    TN_RETURN_IF_ERROR(parse_groups(text.substr(gap + 2), tail));
    if (head.size() + tail.size() > 7) {
      return InvalidArgumentError("IPv6 '::' must elide at least one group");
    }
  }

  std::array<uint16_t, 8> groups{};
  for (size_t i = 0; i < head.size(); ++i) {
    groups[i] = head[i];
  }
  for (size_t i = 0; i < tail.size(); ++i) {
    groups[8 - tail.size() + i] = tail[i];
  }
  uint64_t hi = 0;
  uint64_t lo = 0;
  for (int i = 0; i < 4; ++i) {
    hi = (hi << 16) | groups[i];
  }
  for (int i = 4; i < 8; ++i) {
    lo = (lo << 16) | groups[i];
  }
  return std::pair<uint64_t, uint64_t>{hi, lo};
}

}  // namespace

Result<IpAddress> IpAddress::Parse(std::string_view text) {
  if (text.find(':') != std::string_view::npos) {
    TN_ASSIGN_OR_RETURN(auto pair, ParseV6(text));
    return IpAddress::V6(pair.first, pair.second);
  }
  TN_ASSIGN_OR_RETURN(uint32_t bits, ParseV4(text));
  return IpAddress::V4(bits);
}

IpAddress IpAddress::Plus(uint64_t delta) const {
  if (is_v4()) {
    return V4(static_cast<uint32_t>(v4_bits() + delta));
  }
  uint64_t new_lo = lo_ + delta;
  uint64_t new_hi = hi_ + (new_lo < lo_ ? 1 : 0);
  return V6(new_hi, new_lo);
}

bool IpAddress::BitFromMsb(int index) const {
  if (is_v4()) {
    return (v4_bits() >> (31 - index)) & 1;
  }
  if (index < 64) {
    return (hi_ >> (63 - index)) & 1;
  }
  return (lo_ >> (127 - index)) & 1;
}

std::string IpAddress::ToString() const {
  char buf[64];
  if (is_v4()) {
    uint32_t b = v4_bits();
    std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (b >> 24) & 0xFF,
                  (b >> 16) & 0xFF, (b >> 8) & 0xFF, b & 0xFF);
    return buf;
  }
  // Canonical-ish IPv6: longest zero run compressed to "::".
  std::array<uint16_t, 8> groups;
  for (int i = 0; i < 4; ++i) {
    groups[i] = static_cast<uint16_t>(hi_ >> (48 - 16 * i));
  }
  for (int i = 0; i < 4; ++i) {
    groups[4 + i] = static_cast<uint16_t>(lo_ >> (48 - 16 * i));
  }
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[i] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[j] == 0) {
      ++j;
    }
    if (j - i > best_len) {
      best_len = j - i;
      best_start = i;
    }
    i = j;
  }
  std::string out;
  if (best_len < 2) {
    best_start = -1;  // do not compress single zero groups
  }
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      if (i == 8) {
        break;
      }
      continue;
    }
    if (!out.empty() && out.back() != ':') {
      out += ':';
    }
    std::snprintf(buf, sizeof(buf), "%x", groups[i]);
    out += buf;
    ++i;
  }
  if (out.empty()) {
    out = "::";
  }
  return out;
}

Result<IpPrefix> IpPrefix::Create(IpAddress base, int prefix_len) {
  if (prefix_len < 0 || prefix_len > base.width()) {
    return InvalidArgumentError("prefix length out of range for family");
  }
  if (base.is_v4()) {
    uint32_t bits = base.v4_bits();
    if (prefix_len == 0) {
      bits = 0;
    } else {
      bits &= ~0U << (32 - prefix_len);
    }
    return IpPrefix(IpAddress::V4(bits), prefix_len);
  }
  uint64_t hi = base.hi();
  uint64_t lo = base.lo();
  MaskBits128(hi, lo, prefix_len);
  return IpPrefix(IpAddress::V6(hi, lo), prefix_len);
}

Result<IpPrefix> IpPrefix::Parse(std::string_view text) {
  size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    return InvalidArgumentError("prefix must contain '/'");
  }
  TN_ASSIGN_OR_RETURN(IpAddress base, IpAddress::Parse(text.substr(0, slash)));
  std::string_view len_part = text.substr(slash + 1);
  int len = 0;
  auto [ptr, ec] =
      std::from_chars(len_part.data(), len_part.data() + len_part.size(), len);
  if (ec != std::errc() || ptr != len_part.data() + len_part.size()) {
    return InvalidArgumentError("bad prefix length");
  }
  return Create(base, len);
}

IpPrefix IpPrefix::Any(IpFamily family) {
  IpAddress base =
      family == IpFamily::kIpv4 ? IpAddress::V4(0u) : IpAddress::V6(0, 0);
  return IpPrefix(base, 0);
}

IpPrefix IpPrefix::Host(IpAddress ip) { return IpPrefix(ip, ip.width()); }

bool IpPrefix::Contains(IpAddress ip) const {
  if (ip.family() != family()) {
    return false;
  }
  if (length_ == 0) {
    return true;
  }
  if (ip.is_v4()) {
    uint32_t mask = ~0U << (32 - length_);
    return (ip.v4_bits() & mask) == base_.v4_bits();
  }
  uint64_t hi = ip.hi();
  uint64_t lo = ip.lo();
  MaskBits128(hi, lo, length_);
  return hi == base_.hi() && lo == base_.lo();
}

bool IpPrefix::Contains(const IpPrefix& other) const {
  return other.family() == family() && other.length_ >= length_ &&
         Contains(other.base_);
}

bool IpPrefix::Overlaps(const IpPrefix& other) const {
  return Contains(other) || other.Contains(*this);
}

uint64_t IpPrefix::AddressCount() const {
  int host_bits = base_.width() - length_;
  if (host_bits >= 64) {
    return UINT64_MAX;
  }
  return 1ULL << host_bits;
}

IpAddress IpPrefix::AddressAt(uint64_t offset) const {
  return base_.Plus(offset);
}

Result<std::pair<IpPrefix, IpPrefix>> IpPrefix::Split() const {
  if (length_ >= base_.width()) {
    return FailedPreconditionError("cannot split a host prefix");
  }
  int child_len = length_ + 1;
  IpPrefix left(base_, child_len);
  // The right child's base has the new bit set.
  uint64_t half = (base_.width() - child_len >= 64)
                      ? 0
                      : (1ULL << (base_.width() - child_len));
  IpAddress right_base = base_;
  if (base_.width() - child_len >= 64) {
    // v6 with the flipped bit in the high word.
    uint64_t hi = base_.hi() | (1ULL << (127 - length_ - 64));
    right_base = IpAddress::V6(hi, base_.lo());
  } else {
    right_base = base_.Plus(half);
  }
  return std::pair<IpPrefix, IpPrefix>{left, IpPrefix(right_base, child_len)};
}

std::string IpPrefix::ToString() const {
  return base_.ToString() + "/" + std::to_string(length_);
}

}  // namespace tenantnet
