// IP addresses and CIDR prefixes.
//
// A single IpAddress type covers IPv4 and IPv6 (the paper's step (1) calls
// out the v4/v6 decision tree as a tenant burden, so both families are
// modeled). Internally every address is a 128-bit value; IPv4 addresses are
// stored IPv4-mapped (::ffff:a.b.c.d) so that ordering and prefix logic are
// family-uniform while string formatting stays family-faithful.

#ifndef TENANTNET_SRC_NET_IP_H_
#define TENANTNET_SRC_NET_IP_H_

#include <compare>
#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>

#include "src/common/status.h"

namespace tenantnet {

enum class IpFamily : uint8_t { kIpv4, kIpv6 };

class IpAddress {
 public:
  // Default: IPv4 0.0.0.0.
  constexpr IpAddress() = default;

  static constexpr IpAddress V4(uint32_t bits) {
    return IpAddress(IpFamily::kIpv4, 0, bits);
  }
  static constexpr IpAddress V4(uint8_t a, uint8_t b, uint8_t c, uint8_t d) {
    return V4((uint32_t{a} << 24) | (uint32_t{b} << 16) | (uint32_t{c} << 8) |
              uint32_t{d});
  }
  static constexpr IpAddress V6(uint64_t hi, uint64_t lo) {
    return IpAddress(IpFamily::kIpv6, hi, lo);
  }

  // Parses "10.1.2.3" or a full/abbreviated IPv6 literal like "2001:db8::1".
  static Result<IpAddress> Parse(std::string_view text);

  constexpr IpFamily family() const { return family_; }
  constexpr bool is_v4() const { return family_ == IpFamily::kIpv4; }

  // Raw 128-bit value (for v4, the low 32 bits hold the address).
  constexpr uint64_t hi() const { return hi_; }
  constexpr uint64_t lo() const { return lo_; }

  // IPv4 bits; precondition: is_v4().
  constexpr uint32_t v4_bits() const { return static_cast<uint32_t>(lo_); }

  // Address arithmetic within the same family; wraps modulo the family width.
  IpAddress Plus(uint64_t delta) const;

  std::string ToString() const;

  friend constexpr bool operator==(IpAddress a, IpAddress b) {
    return a.family_ == b.family_ && a.hi_ == b.hi_ && a.lo_ == b.lo_;
  }
  friend constexpr bool operator!=(IpAddress a, IpAddress b) { return !(a == b); }
  // Total order: all v4 before all v6, then numeric.
  friend constexpr bool operator<(IpAddress a, IpAddress b) {
    if (a.family_ != b.family_) {
      return a.family_ == IpFamily::kIpv4;
    }
    if (a.hi_ != b.hi_) {
      return a.hi_ < b.hi_;
    }
    return a.lo_ < b.lo_;
  }

  // The bit at position `index` counted from the most significant bit of the
  // family's width (bit 0 of a v4 address is the MSB of the 32-bit value).
  bool BitFromMsb(int index) const;

  // Family address width in bits: 32 or 128.
  constexpr int width() const { return is_v4() ? 32 : 128; }

 private:
  constexpr IpAddress(IpFamily family, uint64_t hi, uint64_t lo)
      : family_(family), hi_(hi), lo_(lo) {}

  IpFamily family_ = IpFamily::kIpv4;
  uint64_t hi_ = 0;
  uint64_t lo_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, IpAddress ip) {
  return os << ip.ToString();
}

// A CIDR prefix: base address plus prefix length. The base is always stored
// with host bits cleared (canonical form).
class IpPrefix {
 public:
  constexpr IpPrefix() = default;

  // Canonicalizes (masks host bits). prefix_len must fit the family width.
  static Result<IpPrefix> Create(IpAddress base, int prefix_len);

  // Parses "10.0.0.0/16" or "2001:db8::/32".
  static Result<IpPrefix> Parse(std::string_view text);

  // The /0 that covers the whole family.
  static IpPrefix Any(IpFamily family);

  // A host prefix (/32 or /128) for one address.
  static IpPrefix Host(IpAddress ip);

  constexpr IpAddress base() const { return base_; }
  constexpr int length() const { return length_; }
  constexpr IpFamily family() const { return base_.family(); }

  bool Contains(IpAddress ip) const;
  bool Contains(const IpPrefix& other) const;
  bool Overlaps(const IpPrefix& other) const;

  // Number of addresses covered; saturates at UINT64_MAX for huge v6 blocks.
  uint64_t AddressCount() const;

  // The address at `offset` from the base. Precondition: offset within block.
  IpAddress AddressAt(uint64_t offset) const;

  // Splits into the two child prefixes of length+1. Fails at max length.
  Result<std::pair<IpPrefix, IpPrefix>> Split() const;

  std::string ToString() const;

  friend bool operator==(const IpPrefix& a, const IpPrefix& b) {
    return a.base_ == b.base_ && a.length_ == b.length_;
  }
  friend bool operator!=(const IpPrefix& a, const IpPrefix& b) {
    return !(a == b);
  }
  friend bool operator<(const IpPrefix& a, const IpPrefix& b) {
    if (a.base_ != b.base_) {
      return a.base_ < b.base_;
    }
    return a.length_ < b.length_;
  }

 private:
  IpPrefix(IpAddress base, int length) : base_(base), length_(length) {}

  IpAddress base_;
  int length_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, const IpPrefix& p) {
  return os << p.ToString();
}

}  // namespace tenantnet

// Hash support for unordered containers keyed by address/prefix.
namespace std {
template <>
struct hash<tenantnet::IpAddress> {
  size_t operator()(tenantnet::IpAddress ip) const noexcept {
    uint64_t h = ip.hi() * 0x9E3779B97F4A7C15ULL ^ ip.lo();
    h ^= static_cast<uint64_t>(ip.family() == tenantnet::IpFamily::kIpv6) << 63;
    return std::hash<uint64_t>{}(h);
  }
};
template <>
struct hash<tenantnet::IpPrefix> {
  size_t operator()(const tenantnet::IpPrefix& p) const noexcept {
    return std::hash<tenantnet::IpAddress>{}(p.base()) * 31 +
           static_cast<size_t>(p.length());
  }
};
}  // namespace std

#endif  // TENANTNET_SRC_NET_IP_H_
