// IP address management (IPAM).
//
// Two allocators are provided, matching the two worlds the project compares:
//
// * PrefixAllocator — carves non-overlapping sub-prefixes out of a parent
//   block (what a tenant must do when planning VPC/subnet CIDRs; the paper
//   notes AWS recommends special planner tools for this at scale). Buddy
//   allocation over the prefix tree: any power-of-two block size, O(length)
//   per operation, and freed blocks coalesce with their buddies.
//
// * HostAllocator — hands out individual addresses from a pool (what the
//   provider does for flat EIPs in the proposed design). First-fit over a
//   free list with O(1) allocate/release amortized.

#ifndef TENANTNET_SRC_NET_IPAM_H_
#define TENANTNET_SRC_NET_IPAM_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "src/common/status.h"
#include "src/net/ip.h"

namespace tenantnet {

// Buddy allocator over a CIDR block. Allocations are sub-prefixes of the
// root; releases coalesce buddies back into larger free blocks.
class PrefixAllocator {
 public:
  explicit PrefixAllocator(IpPrefix root);

  const IpPrefix& root() const { return root_; }

  // Allocates any free sub-prefix of exactly `prefix_len`.
  Result<IpPrefix> Allocate(int prefix_len);

  // Allocates a specific sub-prefix if it is entirely free (tenants often
  // want hand-picked ranges; collisions are the interesting failure).
  Status AllocateExact(const IpPrefix& want);

  // Returns a previously allocated prefix to the pool.
  Status Release(const IpPrefix& prefix);

  // True if `prefix` is currently allocated (exactly, not a sub-range).
  bool IsAllocated(const IpPrefix& prefix) const;

  // Addresses currently allocated (sum over allocated blocks).
  uint64_t AllocatedAddressCount() const;

  size_t allocated_block_count() const { return allocated_.size(); }

 private:
  // Removes `prefix` from the free set, splitting larger free blocks as
  // needed. Fails if any part of it is allocated.
  Status CarveOut(const IpPrefix& prefix);

  IpPrefix root_;
  // Free blocks by prefix length, each set ordered by base address.
  std::map<int, std::set<IpPrefix>> free_by_len_;
  std::set<IpPrefix> allocated_;
};

// Flat per-address allocator over a pool prefix.
//
// The reuse policy is the provider's aggregation lever (E4a): kLifo reuses
// the most recently released address (cache-friendly, but long-lived churn
// leaves holes scattered across the pool); kLowestFirst always hands out
// the numerically lowest free address, keeping the live set dense and the
// provider's aggregated routing table small.
class HostAllocator {
 public:
  enum class ReusePolicy { kLifo, kLowestFirst };

  explicit HostAllocator(IpPrefix pool,
                         ReusePolicy policy = ReusePolicy::kLifo);

  const IpPrefix& pool() const { return pool_; }
  ReusePolicy policy() const { return policy_; }

  // Next free address, per the reuse policy.
  Result<IpAddress> Allocate();

  Status Release(IpAddress ip);

  bool IsAllocated(IpAddress ip) const;

  uint64_t allocated_count() const { return allocated_.size(); }
  uint64_t capacity() const { return pool_.AddressCount(); }

 private:
  IpPrefix pool_;
  ReusePolicy policy_;
  uint64_t next_offset_ = 0;           // high-water mark
  std::vector<IpAddress> free_list_;   // LIFO stack (kLifo)
  std::set<IpAddress> free_sorted_;    // ordered free pool (kLowestFirst)
  std::set<IpAddress> allocated_;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_NET_IPAM_H_
