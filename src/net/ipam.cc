#include "src/net/ipam.h"

#include <cassert>

namespace tenantnet {

PrefixAllocator::PrefixAllocator(IpPrefix root) : root_(root) {
  free_by_len_[root.length()].insert(root);
}

Result<IpPrefix> PrefixAllocator::Allocate(int prefix_len) {
  if (prefix_len < root_.length() || prefix_len > root_.base().width()) {
    return InvalidArgumentError("requested length outside root block");
  }
  // Find the smallest free block that can hold the request (largest length
  // <= prefix_len), preferring a tight fit.
  int best_len = -1;
  for (auto& [len, blocks] : free_by_len_) {
    if (len > prefix_len || blocks.empty()) {
      continue;
    }
    if (len > best_len) {
      best_len = len;
    }
  }
  if (best_len < 0) {
    return ResourceExhaustedError("no free block of /" +
                                  std::to_string(prefix_len));
  }
  IpPrefix block = *free_by_len_[best_len].begin();
  free_by_len_[best_len].erase(free_by_len_[best_len].begin());
  // Split down to the requested size, returning right halves to the pool.
  while (block.length() < prefix_len) {
    auto halves = block.Split();
    assert(halves.ok());
    block = halves->first;
    free_by_len_[halves->second.length()].insert(halves->second);
  }
  allocated_.insert(block);
  return block;
}

Status PrefixAllocator::AllocateExact(const IpPrefix& want) {
  if (!root_.Contains(want)) {
    return InvalidArgumentError("prefix outside root block");
  }
  TN_RETURN_IF_ERROR(CarveOut(want));
  allocated_.insert(want);
  return Status::Ok();
}

Status PrefixAllocator::CarveOut(const IpPrefix& want) {
  // Find a free block containing `want` by walking up the ancestor chain.
  for (int len = want.length(); len >= root_.length(); --len) {
    auto ancestor = IpPrefix::Create(want.base(), len);
    assert(ancestor.ok());
    auto it = free_by_len_.find(len);
    if (it == free_by_len_.end()) {
      continue;
    }
    auto block_it = it->second.find(*ancestor);
    if (block_it == it->second.end()) {
      continue;
    }
    // Found. Split down, keeping the halves not on the path.
    IpPrefix block = *block_it;
    it->second.erase(block_it);
    while (block.length() < want.length()) {
      auto halves = block.Split();
      assert(halves.ok());
      if (halves->first.Contains(want)) {
        block = halves->first;
        free_by_len_[halves->second.length()].insert(halves->second);
      } else {
        block = halves->second;
        free_by_len_[halves->first.length()].insert(halves->first);
      }
    }
    return Status::Ok();
  }
  if (allocated_.count(want) > 0) {
    return AlreadyExistsError("prefix already allocated: " + want.ToString());
  }
  return AlreadyExistsError("prefix overlaps an existing allocation: " +
                            want.ToString());
}

Status PrefixAllocator::Release(const IpPrefix& prefix) {
  auto it = allocated_.find(prefix);
  if (it == allocated_.end()) {
    return NotFoundError("prefix not allocated: " + prefix.ToString());
  }
  allocated_.erase(it);
  // Insert into free set and coalesce with buddies upward.
  IpPrefix block = prefix;
  while (block.length() > root_.length()) {
    // The buddy shares the parent; flip the last prefix bit.
    auto parent = IpPrefix::Create(block.base(), block.length() - 1);
    assert(parent.ok());
    auto halves = parent->Split();
    assert(halves.ok());
    IpPrefix buddy =
        (halves->first == block) ? halves->second : halves->first;
    auto& peers = free_by_len_[block.length()];
    auto buddy_it = peers.find(buddy);
    if (buddy_it == peers.end()) {
      break;
    }
    peers.erase(buddy_it);
    block = *parent;
  }
  free_by_len_[block.length()].insert(block);
  return Status::Ok();
}

bool PrefixAllocator::IsAllocated(const IpPrefix& prefix) const {
  return allocated_.count(prefix) > 0;
}

uint64_t PrefixAllocator::AllocatedAddressCount() const {
  uint64_t total = 0;
  for (const auto& p : allocated_) {
    total += p.AddressCount();
  }
  return total;
}

HostAllocator::HostAllocator(IpPrefix pool, ReusePolicy policy)
    : pool_(pool), policy_(policy) {}

Result<IpAddress> HostAllocator::Allocate() {
  IpAddress ip;
  bool reused = false;
  if (policy_ == ReusePolicy::kLifo) {
    if (!free_list_.empty()) {
      ip = free_list_.back();
      free_list_.pop_back();
      reused = true;
    }
  } else {
    // Lowest-first: prefer the smallest freed address if it is below the
    // high-water mark (it always is), keeping the live range dense.
    if (!free_sorted_.empty()) {
      ip = *free_sorted_.begin();
      free_sorted_.erase(free_sorted_.begin());
      reused = true;
    }
  }
  if (!reused) {
    if (next_offset_ >= pool_.AddressCount()) {
      return ResourceExhaustedError("address pool " + pool_.ToString() +
                                    " exhausted");
    }
    ip = pool_.AddressAt(next_offset_++);
  }
  allocated_.insert(ip);
  return ip;
}

Status HostAllocator::Release(IpAddress ip) {
  auto it = allocated_.find(ip);
  if (it == allocated_.end()) {
    return NotFoundError("address not allocated: " + ip.ToString());
  }
  allocated_.erase(it);
  if (policy_ == ReusePolicy::kLifo) {
    free_list_.push_back(ip);
  } else {
    free_sorted_.insert(ip);
  }
  return Status::Ok();
}

bool HostAllocator::IsAllocated(IpAddress ip) const {
  return allocated_.count(ip) > 0;
}

}  // namespace tenantnet
