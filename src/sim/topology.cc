#include "src/sim/topology.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <queue>

namespace tenantnet {

std::string_view LinkClassName(LinkClass cls) {
  switch (cls) {
    case LinkClass::kDatacenter:
      return "datacenter";
    case LinkClass::kBackbone:
      return "backbone";
    case LinkClass::kPublicInternet:
      return "public-internet";
    case LinkClass::kDedicated:
      return "dedicated";
  }
  return "?";
}

NodeId Topology::AddNode(NodeInfo info) {
  nodes_.push_back(std::move(info));
  out_links_.emplace_back();
  return NodeId(nodes_.size());
}

LinkId Topology::AddLink(LinkInfo info) {
  assert(info.src.valid() && info.dst.valid());
  assert(info.capacity_bps > 0);
  links_.push_back(info);
  LinkId id(links_.size());
  out_links_[Index(info.src)].push_back(id);
  return id;
}

std::pair<LinkId, LinkId> Topology::AddDuplexLink(LinkInfo info) {
  LinkId forward = AddLink(info);
  std::swap(info.src, info.dst);
  LinkId reverse = AddLink(info);
  return {forward, reverse};
}

Topology::CostFn Topology::DelayCost() {
  return [](const LinkInfo& link) -> std::optional<double> {
    return link.delay.ToSeconds();
  };
}

Topology::CostFn Topology::HopCost() {
  return [](const LinkInfo&) -> std::optional<double> { return 1.0; };
}

Topology::CostFn Topology::ClassWeightedDelayCost(double datacenter,
                                                  double backbone,
                                                  double public_internet,
                                                  double dedicated) {
  return [=](const LinkInfo& link) -> std::optional<double> {
    double mult = 1.0;
    switch (link.cls) {
      case LinkClass::kDatacenter:
        mult = datacenter;
        break;
      case LinkClass::kBackbone:
        mult = backbone;
        break;
      case LinkClass::kPublicInternet:
        mult = public_internet;
        break;
      case LinkClass::kDedicated:
        mult = dedicated;
        break;
    }
    if (mult < 0) {
      return std::nullopt;  // negative multiplier forbids the class
    }
    // Small epsilon keeps zero-delay links from making all paths tie.
    return mult * (link.delay.ToSeconds() + 1e-6);
  };
}

Result<std::vector<LinkId>> Topology::ShortestPath(NodeId src, NodeId dst,
                                                   const CostFn& cost) const {
  if (!src.valid() || Index(src) >= nodes_.size() || !dst.valid() ||
      Index(dst) >= nodes_.size()) {
    return InvalidArgumentError("unknown node id");
  }
  if (src == dst) {
    return std::vector<LinkId>{};
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(nodes_.size(), kInf);
  std::vector<LinkId> via(nodes_.size());  // link used to reach node
  using QEntry = std::pair<double, NodeId>;
  auto cmp = [](const QEntry& a, const QEntry& b) { return a.first > b.first; };
  std::priority_queue<QEntry, std::vector<QEntry>, decltype(cmp)> queue(cmp);

  dist[Index(src)] = 0;
  queue.push({0, src});
  while (!queue.empty()) {
    auto [d, node] = queue.top();
    queue.pop();
    if (d > dist[Index(node)]) {
      continue;  // stale entry
    }
    if (node == dst) {
      break;
    }
    for (LinkId link_id : out_links_[Index(node)]) {
      const LinkInfo& link = links_[Index(link_id)];
      if (!link.up) {
        continue;  // faulted links are unusable regardless of cost policy
      }
      std::optional<double> c = cost(link);
      if (!c.has_value()) {
        continue;
      }
      double nd = d + *c;
      if (nd < dist[Index(link.dst)]) {
        dist[Index(link.dst)] = nd;
        via[Index(link.dst)] = link_id;
        queue.push({nd, link.dst});
      }
    }
  }

  if (dist[Index(dst)] == kInf) {
    return NotFoundError("no path from " + nodes_[Index(src)].name + " to " +
                         nodes_[Index(dst)].name);
  }
  std::vector<LinkId> path;
  for (NodeId at = dst; at != src;) {
    LinkId link_id = via[Index(at)];
    path.push_back(link_id);
    at = links_[Index(link_id)].src;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

size_t Topology::down_link_count() const {
  size_t n = 0;
  for (const LinkInfo& link : links_) {
    n += link.up ? 0 : 1;
  }
  return n;
}

std::vector<LinkId> Topology::IncidentLinks(NodeId node) const {
  std::vector<LinkId> incident;
  for (size_t i = 0; i < links_.size(); ++i) {
    if (links_[i].src == node || links_[i].dst == node) {
      incident.push_back(LinkId(i + 1));
    }
  }
  return incident;
}

SimDuration Topology::PathDelay(const std::vector<LinkId>& path) const {
  SimDuration total = SimDuration::Zero();
  for (LinkId id : path) {
    total += links_[Index(id)].delay;
  }
  return total;
}

SimDuration Topology::SamplePathDelay(const std::vector<LinkId>& path,
                                      Rng& rng) const {
  SimDuration total = SimDuration::Zero();
  for (LinkId id : path) {
    const LinkInfo& link = links_[Index(id)];
    total += link.delay;
    if (link.jitter_stddev > SimDuration::Zero()) {
      double jitter_s =
          std::abs(rng.NextNormal(0.0, link.jitter_stddev.ToSeconds()));
      total += SimDuration::Seconds(jitter_s);
    }
  }
  return total;
}

double Topology::PathDeliveryProbability(const std::vector<LinkId>& path) const {
  double p = 1.0;
  for (LinkId id : path) {
    p *= 1.0 - links_[Index(id)].loss_rate;
  }
  return p;
}

std::string Topology::ToDot() const {
  std::ostringstream os;
  os << "graph tenantnet {\n  overlap=false;\n  node [shape=box];\n";
  // Cluster nodes by administrative domain.
  std::map<std::string, std::vector<size_t>> by_domain;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    by_domain[nodes_[i].domain].push_back(i);
  }
  int cluster = 0;
  for (const auto& [domain, members] : by_domain) {
    os << "  subgraph cluster_" << cluster++ << " {\n    label=\"" << domain
       << "\";\n";
    for (size_t i : members) {
      os << "    n" << i + 1 << " [label=\"" << nodes_[i].name << "\"];\n";
    }
    os << "  }\n";
  }
  // One undirected edge per duplex pair (emit when src < dst; true duplex
  // links are added in adjacent pairs, so this halves them exactly).
  for (const LinkInfo& link : links_) {
    if (link.src.value() >= link.dst.value()) {
      continue;
    }
    const char* color = "black";
    switch (link.cls) {
      case LinkClass::kDatacenter:
        color = "gray";
        break;
      case LinkClass::kBackbone:
        color = "blue";
        break;
      case LinkClass::kPublicInternet:
        color = "black";
        break;
      case LinkClass::kDedicated:
        color = "red";
        break;
    }
    os << "  n" << link.src.value() << " -- n" << link.dst.value()
       << " [color=" << color << ", label=\""
       << link.capacity_bps / 1e9 << "G/"
       << link.delay.ToMillis() << "ms\"];\n";
  }
  os << "}\n";
  return os.str();
}

TopologyComponents ComputeTopologyComponents(const Topology& topology) {
  const size_t n = topology.node_count();
  // Union-find over dense node indices with path halving + union by size.
  std::vector<uint32_t> parent(n);
  std::vector<uint32_t> size(n, 1);
  for (size_t i = 0; i < n; ++i) {
    parent[i] = static_cast<uint32_t>(i);
  }
  auto find = [&parent](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](uint32_t a, uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) {
      return;
    }
    if (size[a] < size[b]) {
      std::swap(a, b);
    }
    parent[b] = a;
    size[a] += size[b];
  };

  const size_t m = topology.link_count();
  for (size_t i = 0; i < m; ++i) {
    LinkId id(static_cast<uint64_t>(i) + 1);
    const LinkInfo& link = topology.link(id);
    unite(static_cast<uint32_t>(link.src.value() - 1),
          static_cast<uint32_t>(link.dst.value() - 1));
  }

  // Number components by ascending smallest node index: the first time a
  // root is seen while scanning nodes in order, it gets the next number.
  TopologyComponents out;
  out.node_component.assign(n, 0);
  constexpr uint32_t kUnassigned = ~0u;
  std::vector<uint32_t> root_component(n, kUnassigned);
  for (size_t i = 0; i < n; ++i) {
    uint32_t root = find(static_cast<uint32_t>(i));
    if (root_component[root] == kUnassigned) {
      root_component[root] = out.count++;
    }
    out.node_component[i] = root_component[root];
  }
  out.link_component.assign(m, 0);
  for (size_t i = 0; i < m; ++i) {
    LinkId id(static_cast<uint64_t>(i) + 1);
    out.link_component[i] =
        out.node_component[topology.link(id).src.value() - 1];
  }
  return out;
}

}  // namespace tenantnet
