#include "src/sim/topology.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>
#include <sstream>
#include <queue>

namespace tenantnet {

std::string_view LinkClassName(LinkClass cls) {
  switch (cls) {
    case LinkClass::kDatacenter:
      return "datacenter";
    case LinkClass::kBackbone:
      return "backbone";
    case LinkClass::kPublicInternet:
      return "public-internet";
    case LinkClass::kDedicated:
      return "dedicated";
  }
  return "?";
}

NodeId Topology::AddNode(NodeInfo info) {
  nodes_.push_back(std::move(info));
  out_links_.emplace_back();
  return NodeId(nodes_.size());
}

LinkId Topology::AddLink(LinkInfo info) {
  assert(info.src.valid() && info.dst.valid());
  assert(info.capacity_bps > 0);
  links_.push_back(info);
  LinkId id(links_.size());
  out_links_[Index(info.src)].push_back(id);
  return id;
}

std::pair<LinkId, LinkId> Topology::AddDuplexLink(LinkInfo info) {
  LinkId forward = AddLink(info);
  std::swap(info.src, info.dst);
  LinkId reverse = AddLink(info);
  return {forward, reverse};
}

Topology::CostFn Topology::DelayCost() {
  return [](const LinkInfo& link) -> std::optional<double> {
    return link.delay.ToSeconds();
  };
}

Topology::CostFn Topology::HopCost() {
  return [](const LinkInfo&) -> std::optional<double> { return 1.0; };
}

Topology::CostFn Topology::ClassWeightedDelayCost(double datacenter,
                                                  double backbone,
                                                  double public_internet,
                                                  double dedicated) {
  return [=](const LinkInfo& link) -> std::optional<double> {
    double mult = 1.0;
    switch (link.cls) {
      case LinkClass::kDatacenter:
        mult = datacenter;
        break;
      case LinkClass::kBackbone:
        mult = backbone;
        break;
      case LinkClass::kPublicInternet:
        mult = public_internet;
        break;
      case LinkClass::kDedicated:
        mult = dedicated;
        break;
    }
    if (mult < 0) {
      return std::nullopt;  // negative multiplier forbids the class
    }
    // Small epsilon keeps zero-delay links from making all paths tie.
    return mult * (link.delay.ToSeconds() + 1e-6);
  };
}

Result<std::vector<LinkId>> Topology::ShortestPath(NodeId src, NodeId dst,
                                                   const CostFn& cost) const {
  if (!src.valid() || Index(src) >= nodes_.size() || !dst.valid() ||
      Index(dst) >= nodes_.size()) {
    return InvalidArgumentError("unknown node id");
  }
  if (src == dst) {
    return std::vector<LinkId>{};
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(nodes_.size(), kInf);
  std::vector<LinkId> via(nodes_.size());  // link used to reach node
  using QEntry = std::pair<double, NodeId>;
  auto cmp = [](const QEntry& a, const QEntry& b) { return a.first > b.first; };
  std::priority_queue<QEntry, std::vector<QEntry>, decltype(cmp)> queue(cmp);

  dist[Index(src)] = 0;
  queue.push({0, src});
  while (!queue.empty()) {
    auto [d, node] = queue.top();
    queue.pop();
    if (d > dist[Index(node)]) {
      continue;  // stale entry
    }
    if (node == dst) {
      break;
    }
    for (LinkId link_id : out_links_[Index(node)]) {
      const LinkInfo& link = links_[Index(link_id)];
      if (!link.up) {
        continue;  // faulted links are unusable regardless of cost policy
      }
      std::optional<double> c = cost(link);
      if (!c.has_value()) {
        continue;
      }
      double nd = d + *c;
      if (nd < dist[Index(link.dst)]) {
        dist[Index(link.dst)] = nd;
        via[Index(link.dst)] = link_id;
        queue.push({nd, link.dst});
      }
    }
  }

  if (dist[Index(dst)] == kInf) {
    return NotFoundError("no path from " + nodes_[Index(src)].name + " to " +
                         nodes_[Index(dst)].name);
  }
  std::vector<LinkId> path;
  for (NodeId at = dst; at != src;) {
    LinkId link_id = via[Index(at)];
    path.push_back(link_id);
    at = links_[Index(link_id)].src;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

size_t Topology::down_link_count() const {
  size_t n = 0;
  for (const LinkInfo& link : links_) {
    n += link.up ? 0 : 1;
  }
  return n;
}

std::vector<LinkId> Topology::IncidentLinks(NodeId node) const {
  std::vector<LinkId> incident;
  for (size_t i = 0; i < links_.size(); ++i) {
    if (links_[i].src == node || links_[i].dst == node) {
      incident.push_back(LinkId(i + 1));
    }
  }
  return incident;
}

SimDuration Topology::PathDelay(const std::vector<LinkId>& path) const {
  SimDuration total = SimDuration::Zero();
  for (LinkId id : path) {
    total += links_[Index(id)].delay;
  }
  return total;
}

SimDuration Topology::SamplePathDelay(const std::vector<LinkId>& path,
                                      Rng& rng) const {
  SimDuration total = SimDuration::Zero();
  for (LinkId id : path) {
    const LinkInfo& link = links_[Index(id)];
    total += link.delay;
    if (link.jitter_stddev > SimDuration::Zero()) {
      double jitter_s =
          std::abs(rng.NextNormal(0.0, link.jitter_stddev.ToSeconds()));
      total += SimDuration::Seconds(jitter_s);
    }
  }
  return total;
}

double Topology::PathDeliveryProbability(const std::vector<LinkId>& path) const {
  double p = 1.0;
  for (LinkId id : path) {
    p *= 1.0 - links_[Index(id)].loss_rate;
  }
  return p;
}

std::string Topology::ToDot() const {
  std::ostringstream os;
  os << "graph tenantnet {\n  overlap=false;\n  node [shape=box];\n";
  // Cluster nodes by administrative domain.
  std::map<std::string, std::vector<size_t>> by_domain;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    by_domain[nodes_[i].domain].push_back(i);
  }
  int cluster = 0;
  for (const auto& [domain, members] : by_domain) {
    os << "  subgraph cluster_" << cluster++ << " {\n    label=\"" << domain
       << "\";\n";
    for (size_t i : members) {
      os << "    n" << i + 1 << " [label=\"" << nodes_[i].name << "\"];\n";
    }
    os << "  }\n";
  }
  // One undirected edge per duplex pair (emit when src < dst; true duplex
  // links are added in adjacent pairs, so this halves them exactly).
  for (const LinkInfo& link : links_) {
    if (link.src.value() >= link.dst.value()) {
      continue;
    }
    const char* color = "black";
    switch (link.cls) {
      case LinkClass::kDatacenter:
        color = "gray";
        break;
      case LinkClass::kBackbone:
        color = "blue";
        break;
      case LinkClass::kPublicInternet:
        color = "black";
        break;
      case LinkClass::kDedicated:
        color = "red";
        break;
    }
    os << "  n" << link.src.value() << " -- n" << link.dst.value()
       << " [color=" << color << ", label=\""
       << link.capacity_bps / 1e9 << "G/"
       << link.delay.ToMillis() << "ms\"];\n";
  }
  os << "}\n";
  return os.str();
}

TopologyComponents ComputeTopologyComponents(const Topology& topology) {
  const size_t n = topology.node_count();
  // Union-find over dense node indices with path halving + union by size.
  std::vector<uint32_t> parent(n);
  std::vector<uint32_t> size(n, 1);
  for (size_t i = 0; i < n; ++i) {
    parent[i] = static_cast<uint32_t>(i);
  }
  auto find = [&parent](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  auto unite = [&](uint32_t a, uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) {
      return;
    }
    if (size[a] < size[b]) {
      std::swap(a, b);
    }
    parent[b] = a;
    size[a] += size[b];
  };

  const size_t m = topology.link_count();
  for (size_t i = 0; i < m; ++i) {
    LinkId id(static_cast<uint64_t>(i) + 1);
    const LinkInfo& link = topology.link(id);
    unite(static_cast<uint32_t>(link.src.value() - 1),
          static_cast<uint32_t>(link.dst.value() - 1));
  }

  // Number components by ascending smallest node index: the first time a
  // root is seen while scanning nodes in order, it gets the next number.
  TopologyComponents out;
  out.node_component.assign(n, 0);
  constexpr uint32_t kUnassigned = ~0u;
  std::vector<uint32_t> root_component(n, kUnassigned);
  for (size_t i = 0; i < n; ++i) {
    uint32_t root = find(static_cast<uint32_t>(i));
    if (root_component[root] == kUnassigned) {
      root_component[root] = out.count++;
    }
    out.node_component[i] = root_component[root];
  }
  out.link_component.assign(m, 0);
  for (size_t i = 0; i < m; ++i) {
    LinkId id(static_cast<uint64_t>(i) + 1);
    out.link_component[i] =
        out.node_component[topology.link(id).src.value() - 1];
  }
  return out;
}

namespace {

// Undirected adjacency over dense node indices, deduped per node and kept
// in ascending neighbor order so every traversal below is deterministic.
std::vector<std::vector<uint32_t>> BuildUndirectedAdjacency(
    const Topology& topology) {
  const size_t n = topology.node_count();
  std::vector<std::vector<uint32_t>> adj(n);
  const size_t m = topology.link_count();
  for (size_t i = 0; i < m; ++i) {
    const LinkInfo& link = topology.link(LinkId(static_cast<uint64_t>(i) + 1));
    uint32_t a = static_cast<uint32_t>(link.src.value() - 1);
    uint32_t b = static_cast<uint32_t>(link.dst.value() - 1);
    if (a == b) {
      continue;
    }
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  for (std::vector<uint32_t>& neighbors : adj) {
    std::sort(neighbors.begin(), neighbors.end());
    neighbors.erase(std::unique(neighbors.begin(), neighbors.end()),
                    neighbors.end());
  }
  return adj;
}

// Picks `parts` spread-out start nodes inside one component, greedy
// k-center: the seed rotates the first pick among the candidates; each
// later pick maximizes BFS hop distance to the chosen set (ties break on
// smallest node index). Leaf nodes (degree <= 1) are excluded from
// candidacy when enough non-leaf members exist: in hub-and-spoke shapes
// the farthest nodes are always leaf hosts, and a region grown from a leaf
// collides with its only neighbor's region immediately and strands the
// start as a singleton part.
std::vector<uint32_t> PickStarts(
    const std::vector<uint32_t>& members,
    const std::vector<std::vector<uint32_t>>& adj, uint32_t parts,
    uint64_t seed, std::vector<uint32_t>& dist_scratch) {
  std::vector<uint32_t> candidates;
  for (uint32_t node : members) {
    if (adj[node].size() >= 2) {
      candidates.push_back(node);
    }
  }
  if (candidates.size() < parts) {
    candidates = members;
  }
  std::vector<uint32_t> starts;
  starts.push_back(candidates[seed % candidates.size()]);
  constexpr uint32_t kInf = ~0u;
  // dist_scratch[node] = hop distance to the nearest chosen start.
  for (uint32_t node : members) {
    dist_scratch[node] = kInf;
  }
  std::vector<uint32_t> frontier;
  auto relax_from = [&](uint32_t start) {
    frontier.clear();
    dist_scratch[start] = 0;
    frontier.push_back(start);
    for (size_t head = 0; head < frontier.size(); ++head) {
      uint32_t node = frontier[head];
      for (uint32_t next : adj[node]) {
        if (dist_scratch[next] > dist_scratch[node] + 1) {
          dist_scratch[next] = dist_scratch[node] + 1;
          frontier.push_back(next);
        }
      }
    }
  };
  relax_from(starts[0]);
  while (starts.size() < parts) {
    uint32_t best = candidates[0];
    uint32_t best_dist = 0;
    for (uint32_t node : candidates) {
      uint32_t d = dist_scratch[node] == kInf ? 0 : dist_scratch[node];
      if (d > best_dist) {
        best_dist = d;
        best = node;
      }
    }
    if (best_dist == 0) {
      // Fewer distinct positions than parts (tiny component); reuse the
      // first unpicked member in index order.
      for (uint32_t node : members) {
        if (dist_scratch[node] != 0) {
          best = node;
          break;
        }
      }
    }
    starts.push_back(best);
    relax_from(best);
  }
  return starts;
}

}  // namespace

LinkCutPartition ComputeLinkCutPartition(const Topology& topology,
                                         uint32_t target_parts,
                                         uint64_t seed) {
  const size_t n = topology.node_count();
  const size_t m = topology.link_count();
  LinkCutPartition out;
  out.node_part.assign(n, 0);
  out.link_part.assign(m, 0);
  out.link_is_border.assign(m, 0);

  TopologyComponents comps = ComputeTopologyComponents(topology);
  uint32_t target = target_parts == 0 ? 1 : target_parts;
  if (n > 0) {
    target = std::min<uint32_t>(target, static_cast<uint32_t>(n));
  }

  if (target <= 1 || n == 0) {
    out.count = n == 0 ? 0 : 1;
  } else if (comps.count >= target) {
    // Enough natural parallelism: never cut a component, fold components
    // onto parts round-robin (the pre-link-cut sharding rule).
    out.count = target;
    for (size_t i = 0; i < n; ++i) {
      out.node_part[i] = comps.node_component[i] % target;
    }
  } else {
    // Distribute parts to components proportionally to node count, one
    // minimum each, remainders by largest fraction (ties: smaller index).
    std::vector<std::vector<uint32_t>> members(comps.count);
    for (size_t i = 0; i < n; ++i) {
      members[comps.node_component[i]].push_back(static_cast<uint32_t>(i));
    }
    std::vector<uint32_t> parts_of(comps.count, 1);
    uint32_t assigned = comps.count;
    std::vector<double> fraction(comps.count, 0.0);
    for (uint32_t c = 0; c < comps.count; ++c) {
      double ideal = static_cast<double>(members[c].size()) * target /
                     static_cast<double>(n);
      uint32_t extra = ideal > 1.0 ? static_cast<uint32_t>(ideal) - 1 : 0;
      extra = std::min<uint32_t>(
          extra, static_cast<uint32_t>(members[c].size()) - 1);
      parts_of[c] += extra;
      assigned += extra;
      fraction[c] = ideal - std::floor(ideal);
    }
    while (assigned < target) {
      constexpr uint32_t kNone = ~0u;
      uint32_t best = kNone;
      double best_fraction = -std::numeric_limits<double>::infinity();
      for (uint32_t c = 0; c < comps.count; ++c) {
        if (parts_of[c] >= members[c].size()) {
          continue;  // cannot hold more parts than nodes
        }
        if (fraction[c] > best_fraction) {
          best_fraction = fraction[c];
          best = c;
        }
      }
      if (best == kNone) {
        break;  // every component saturated; fewer parts than asked
      }
      ++parts_of[best];
      fraction[best] -= 1.0;  // de-prioritize: one bonus part per round
      ++assigned;
    }

    std::vector<std::vector<uint32_t>> adj = BuildUndirectedAdjacency(topology);
    std::vector<uint32_t> dist_scratch(n, 0);
    std::vector<uint8_t> claimed(n, 0);
    uint32_t next_part = 0;
    for (uint32_t c = 0; c < comps.count; ++c) {
      uint32_t parts = parts_of[c];
      uint32_t base = next_part;
      next_part += parts;
      if (parts == 1) {
        for (uint32_t node : members[c]) {
          out.node_part[node] = base;
        }
        continue;
      }
      std::vector<uint32_t> starts =
          PickStarts(members[c], adj, parts, seed, dist_scratch);
      // Balanced multi-source BFS growth: the smallest region (ties: lowest
      // part id) claims the next unclaimed node off its FIFO frontier.
      std::vector<std::vector<uint32_t>> frontier(parts);
      std::vector<size_t> head(parts, 0);
      std::vector<uint32_t> size_of(parts, 0);
      for (uint32_t p = 0; p < parts; ++p) {
        frontier[p].push_back(starts[p]);
      }
      uint32_t total_claimed = 0;
      const uint32_t component_size = static_cast<uint32_t>(members[c].size());
      while (total_claimed < component_size) {
        uint32_t pick = parts;  // part to grow next
        for (uint32_t p = 0; p < parts; ++p) {
          if (head[p] >= frontier[p].size()) {
            continue;
          }
          if (pick == parts || size_of[p] < size_of[pick]) {
            pick = p;
          }
        }
        if (pick == parts) {
          // All frontiers exhausted with unclaimed members left (only
          // possible via adversarial self-loops); sweep them into the
          // smallest part in index order.
          uint32_t smallest = 0;
          for (uint32_t p = 1; p < parts; ++p) {
            if (size_of[p] < size_of[smallest]) {
              smallest = p;
            }
          }
          for (uint32_t node : members[c]) {
            if (!claimed[node]) {
              claimed[node] = 1;
              out.node_part[node] = base + smallest;
              ++size_of[smallest];
              ++total_claimed;
            }
          }
          break;
        }
        uint32_t node = frontier[pick][head[pick]++];
        if (claimed[node]) {
          continue;
        }
        claimed[node] = 1;
        out.node_part[node] = base + pick;
        ++size_of[pick];
        ++total_claimed;
        for (uint32_t next : adj[node]) {
          if (!claimed[next]) {
            frontier[pick].push_back(next);
          }
        }
      }
    }
    out.count = next_part;

    // One deterministic boundary-refinement sweep: move a node to the
    // neighboring part holding strictly more of its edges, provided the
    // donor part stays nonempty and sizes stay within +/-1 of the pre-move
    // spread (greedy Kernighan–Lin-style cut reduction without unbalancing).
    std::vector<uint32_t> part_size(out.count, 0);
    for (size_t i = 0; i < n; ++i) {
      ++part_size[out.node_part[i]];
    }
    std::vector<uint32_t> gain(out.count, 0);
    std::vector<uint32_t> touched;
    for (size_t i = 0; i < n; ++i) {
      uint32_t from = out.node_part[i];
      if (part_size[from] <= 1) {
        continue;
      }
      touched.clear();
      for (uint32_t next : adj[i]) {
        uint32_t p = out.node_part[next];
        if (gain[p]++ == 0) {
          touched.push_back(p);
        }
      }
      uint32_t best_part = from;
      uint32_t best_gain = gain[from];
      for (uint32_t p : touched) {
        // Strictly-more edges, receiving part not already larger: keeps the
        // sweep cut-reducing and balance-preserving. Ties keep `from`
        // (smaller part id wins only through the strict compare), so the
        // sweep is deterministic.
        if (p != from && gain[p] > best_gain &&
            part_size[p] <= part_size[from]) {
          best_gain = gain[p];
          best_part = p;
        }
      }
      for (uint32_t p : touched) {
        gain[p] = 0;
      }
      if (best_part != from) {
        out.node_part[i] = best_part;
        --part_size[from];
        ++part_size[best_part];
      }
    }
  }

  for (size_t i = 0; i < m; ++i) {
    const LinkInfo& link = topology.link(LinkId(static_cast<uint64_t>(i) + 1));
    uint32_t src_part = out.node_part[link.src.value() - 1];
    uint32_t dst_part = out.node_part[link.dst.value() - 1];
    out.link_part[i] = src_part;
    if (src_part != dst_part) {
      out.link_is_border[i] = 1;
      ++out.border_link_count;
    }
  }
  return out;
}

}  // namespace tenantnet
