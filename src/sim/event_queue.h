// Discrete-event engine.
//
// A single-threaded, deterministic event queue over SimTime. Events at the
// same timestamp fire in scheduling order (FIFO tie-break via a sequence
// number), so runs are exactly reproducible. Events can be cancelled through
// the handle returned at scheduling time.

#ifndef TENANTNET_SRC_SIM_EVENT_QUEUE_H_
#define TENANTNET_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/common/time.h"

namespace tenantnet {

// Opaque handle for cancellation. Valid until the event fires or is
// cancelled.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return seq_ != 0; }

 private:
  friend class EventQueue;
  explicit EventHandle(uint64_t seq) : seq_(seq) {}
  uint64_t seq_ = 0;
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` to run at `when` (must be >= now()).
  EventHandle ScheduleAt(SimTime when, Callback fn);

  // Schedules `fn` to run `delay` from now.
  EventHandle ScheduleAfter(SimDuration delay, Callback fn);

  // Cancels a pending event; no-op if it already fired or was cancelled.
  void Cancel(EventHandle handle);

  // Runs events until the queue is empty or the next event is after
  // `deadline`. Advances now() to the time of each fired event, and finally
  // to `deadline` if it is finite and later than the last event.
  // Returns the number of events fired.
  uint64_t RunUntil(SimTime deadline);

  // Runs everything currently (and recursively) scheduled.
  uint64_t RunAll() { return RunUntil(SimTime::Infinite()); }

  // Fires at most one event; returns false if the queue is empty.
  bool Step();

  bool empty() const { return live_count_ == 0; }
  size_t pending_count() const { return live_count_; }

 private:
  struct Entry {
    SimTime when;
    uint64_t seq;
    Callback fn;
    bool cancelled;
  };
  struct EntryOrder {
    // std::priority_queue is a max-heap; invert for earliest-first.
    bool operator()(const Entry* a, const Entry* b) const {
      if (a->when != b->when) {
        return b->when < a->when;
      }
      return b->seq < a->seq;
    }
  };

  SimTime now_ = SimTime::Epoch();
  uint64_t next_seq_ = 1;
  size_t live_count_ = 0;
  // Owned entries; the heap holds raw pointers. Cancel flags the entry via
  // the seq -> entry index (lazy deletion: the heap pops and discards it).
  std::priority_queue<Entry*, std::vector<Entry*>, EntryOrder> heap_;
  std::unordered_map<uint64_t, Entry*> index_;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_SIM_EVENT_QUEUE_H_
