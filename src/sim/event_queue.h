// Discrete-event engine.
//
// A single-threaded, deterministic event queue over SimTime. Events at the
// same timestamp fire in scheduling order (FIFO tie-break via a sequence
// number), so runs are exactly reproducible. Events can be cancelled through
// the handle returned at scheduling time.
//
// Storage is a slab with a free list: callbacks live in stable slots that
// are recycled after an event fires or is cancelled, and the heap holds
// plain {when, seq, slot} values. In steady state schedule/cancel perform
// no heap allocation (beyond what the callback's own captures need) — the
// slab, free list, and binary heap all reuse their capacity. Handles are
// generation-checked: a slot recycled for a newer event invalidates every
// handle to its former occupant, so stale cancels are safe no-ops.

#ifndef TENANTNET_SRC_SIM_EVENT_QUEUE_H_
#define TENANTNET_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/time.h"

namespace tenantnet {

// Opaque handle for cancellation. Valid until the event fires or is
// cancelled; after that it goes stale and Cancel() ignores it, even if the
// underlying slot has been recycled for a different event.
class EventHandle {
 public:
  EventHandle() = default;
  bool valid() const { return seq_ != 0; }

 private:
  friend class EventQueue;
  EventHandle(uint32_t slot, uint64_t seq) : slot_(slot), seq_(seq) {}
  uint32_t slot_ = 0;  // 1-based slab index; 0 = never scheduled
  uint64_t seq_ = 0;   // generation: must match the slot's current seq
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  ~EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` to run at `when` (must be >= now()).
  EventHandle ScheduleAt(SimTime when, Callback fn);

  // Schedules `fn` to run `delay` from now.
  EventHandle ScheduleAfter(SimDuration delay, Callback fn);

  // Cancels a pending event; no-op if it already fired or was cancelled.
  // The callback is destroyed immediately (its captures release now, not
  // when the heap entry is eventually skimmed).
  void Cancel(EventHandle handle);

  // Runs events until the queue is empty or the next event is after
  // `deadline`. Advances now() to the time of each fired event, and finally
  // to `deadline` if it is finite and later than the last event.
  // Returns the number of events fired.
  uint64_t RunUntil(SimTime deadline);

  // Runs everything currently (and recursively) scheduled.
  uint64_t RunAll() { return RunUntil(SimTime::Infinite()); }

  // Fires at most one event; returns false if the queue is empty.
  bool Step();

  // Time of the earliest pending event, skimming cancelled entries;
  // SimTime::Infinite() when nothing is pending. Does not fire anything.
  SimTime NextEventTime();

  // Advances now() to `t` without firing events (no-op if t <= now()).
  // The caller must know no pending event is earlier than `t` — used by
  // the shard executor to keep idle shard clocks in lockstep at epoch
  // barriers.
  void AdvanceTo(SimTime t);

  bool empty() const { return live_count_ == 0; }
  size_t pending_count() const { return live_count_; }

  // Slab occupancy (live + free slots); a capacity/diagnostics metric.
  size_t slab_size() const { return slots_.size(); }

 private:
  // One slab cell. seq == 0 marks a free slot (real sequence numbers start
  // at 1); otherwise it is the generation the outstanding handle and heap
  // entry must match.
  struct Slot {
    Callback fn;
    uint64_t seq = 0;
  };
  // What the heap orders. Cancellation leaves the item in place; it is
  // discarded when popped because the slot's seq no longer matches.
  struct HeapItem {
    SimTime when;
    uint64_t seq;
    uint32_t slot;  // 0-based slab index
  };
  struct HeapOrder {
    // std::priority_queue is a max-heap; invert for earliest-first.
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      if (a.when != b.when) {
        return b.when < a.when;
      }
      return b.seq < a.seq;
    }
  };

  bool Stale(const HeapItem& item) const {
    return slots_[item.slot].seq != item.seq;
  }
  void ReleaseSlot(uint32_t slot);

  SimTime now_ = SimTime::Epoch();
  uint64_t next_seq_ = 1;
  size_t live_count_ = 0;
  std::priority_queue<HeapItem, std::vector<HeapItem>, HeapOrder> heap_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_SIM_EVENT_QUEUE_H_
