// Physical-level topology: nodes and directed links.
//
// The cloud module instantiates one Topology for the whole world: provider
// backbones, public-internet transit meshes, internet exchange points,
// on-prem routers, and dedicated circuits all become nodes and links here.
// Links carry capacity, propagation delay, a jitter model, and a class tag;
// path selection is Dijkstra over a caller-chosen cost function, which is
// how hot-potato / cold-potato / dedicated-link policies are expressed.

#ifndef TENANTNET_SRC_SIM_TOPOLOGY_H_
#define TENANTNET_SRC_SIM_TOPOLOGY_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/time.h"

namespace tenantnet {

using NodeId = TypedId<struct NodeIdTag>;
using LinkId = TypedId<struct LinkIdTag>;

// What a link physically is; QoS policy discriminates on this.
enum class LinkClass : uint8_t {
  kDatacenter,     // intra-region fabric
  kBackbone,       // a provider's private WAN
  kPublicInternet, // best-effort transit between domains
  kDedicated,      // Direct Connect / ExpressRoute / MPLS circuit
};

std::string_view LinkClassName(LinkClass cls);

// What a node represents (for reporting only; the graph treats all alike).
enum class NodeKind : uint8_t {
  kHostAggregate,  // a region/zone's compute side
  kEdgeRouter,     // provider edge (peering/egress point)
  kBackboneRouter,
  kInternetRouter,
  kExchangePoint,  // IXP / colocation (e.g. Equinix)
  kOnPremRouter,
};

struct NodeInfo {
  std::string name;
  NodeKind kind = NodeKind::kHostAggregate;
  // Owning administrative domain (provider name, "internet", tenant DC).
  std::string domain;
};

struct LinkInfo {
  NodeId src;
  NodeId dst;
  double capacity_bps = 0;
  SimDuration delay = SimDuration::Zero();
  // Jitter: per-traversal extra delay ~ |Normal(0, jitter_stddev)|.
  SimDuration jitter_stddev = SimDuration::Zero();
  // Random loss probability per traversal (public internet > backbone).
  double loss_rate = 0;
  LinkClass cls = LinkClass::kBackbone;
  // Administrative/fault state. A down link is invisible to path selection
  // (ShortestPath skips it before consulting the cost function) and carries
  // no capacity in the flow simulator.
  bool up = true;
};

class Topology {
 public:
  NodeId AddNode(NodeInfo info);

  // Adds a unidirectional link.
  LinkId AddLink(LinkInfo info);

  // Adds a pair of links (one each direction) with identical parameters;
  // returns {forward, reverse}.
  std::pair<LinkId, LinkId> AddDuplexLink(LinkInfo info);

  const NodeInfo& node(NodeId id) const { return nodes_[Index(id)]; }
  const LinkInfo& link(LinkId id) const { return links_[Index(id)]; }

  size_t node_count() const { return nodes_.size(); }
  size_t link_count() const { return links_.size(); }

  // Fault state. Downing a link removes it from path selection; recovery
  // restores it. FlowSim mirrors this state for capacity (see
  // FlowSim::SetLinkUp); fault injectors set both.
  void SetLinkUp(LinkId id, bool up) { links_[Index(id)].up = up; }
  bool IsLinkUp(LinkId id) const { return links_[Index(id)].up; }
  size_t down_link_count() const;

  // All links touching `node`, in either direction (for node-level faults:
  // an edge-router restart downs everything incident). O(links).
  std::vector<LinkId> IncidentLinks(NodeId node) const;

  // All links leaving `node`.
  const std::vector<LinkId>& OutLinks(NodeId node) const {
    return out_links_[Index(node)];
  }

  // Cost function for path selection. Return a nonnegative cost, or
  // std::nullopt to forbid the link entirely.
  using CostFn = std::function<std::optional<double>(const LinkInfo&)>;

  // Standard costs.
  static CostFn DelayCost();                     // minimize propagation delay
  static CostFn HopCost();                       // minimize hop count
  // Delay cost with per-class multipliers; used for potato policies (e.g.
  // cold potato = cheap backbone, expensive public internet).
  static CostFn ClassWeightedDelayCost(double datacenter, double backbone,
                                       double public_internet,
                                       double dedicated);

  // Dijkstra. Returns the link sequence from src to dst, empty if src==dst.
  Result<std::vector<LinkId>> ShortestPath(NodeId src, NodeId dst,
                                           const CostFn& cost) const;

  // Sum of propagation delays along a path.
  SimDuration PathDelay(const std::vector<LinkId>& path) const;

  // Path delay including sampled jitter per link (one traversal).
  SimDuration SamplePathDelay(const std::vector<LinkId>& path, Rng& rng) const;

  // Probability a traversal survives loss on every link of the path.
  double PathDeliveryProbability(const std::vector<LinkId>& path) const;

  // Graphviz dot rendering of the topology (nodes grouped by domain,
  // links colored by class). Duplex pairs collapse to one undirected edge.
  std::string ToDot() const;

  // Dense 0-based index of a link (ids are allocated contiguously from 1).
  // Lets hot-path consumers (FlowSim) keep per-link state in flat arrays
  // instead of hash maps.
  static constexpr size_t DenseLinkIndex(LinkId id) { return id.value() - 1; }

 private:
  static size_t Index(NodeId id) { return id.value() - 1; }
  static size_t Index(LinkId id) { return id.value() - 1; }

  std::vector<NodeInfo> nodes_;
  std::vector<LinkInfo> links_;
  std::vector<std::vector<LinkId>> out_links_;
};

// Connected components of the topology's *undirected* link graph (a duplex
// pair or any directed link joins its endpoints). Components are numbered
// deterministically: component k contains the k-th smallest node index
// among component minima, so the numbering depends only on insertion order,
// never on traversal order. This is the unit of parallelism for the shard
// executor — flows never span components, so per-component state is
// data-independent by construction.
struct TopologyComponents {
  // Dense node index (NodeId.value()-1) -> component number.
  std::vector<uint32_t> node_component;
  // Dense link index -> component number (component of both endpoints).
  std::vector<uint32_t> link_component;
  uint32_t count = 0;
};

TopologyComponents ComputeTopologyComponents(const Topology& topology);

// Region/link-cut partition of the topology into `count` parts. Unlike
// TopologyComponents, parts may cut through a connected component: a
// realistic production topology is one giant WAN-stitched component, and
// cutting it at the (few, low-degree) inter-region links is what lets the
// shard executor parallelize it. Links whose endpoints land in different
// parts are *border links*; the executor treats them (and any link used by
// flows homed in several shards) as epoch-synchronized shared resources.
//
// The partition is a pure function of (topology, target_parts, seed) —
// never of thread count or traversal order — so sharded simulation results
// stay byte-identical across any number of worker threads.
struct LinkCutPartition {
  // Dense node index (NodeId.value()-1) -> part number in [0, count).
  std::vector<uint32_t> node_part;
  // Dense link index -> owning part (the part of the link's source node).
  std::vector<uint32_t> link_part;
  // Dense link index -> 1 if the link's endpoints are in different parts.
  std::vector<uint8_t> link_is_border;
  uint32_t count = 0;
  uint32_t border_link_count = 0;

  // Edge-cut quality: fraction of links crossing a part boundary.
  double CutFraction() const {
    return link_part.empty()
               ? 0.0
               : static_cast<double>(border_link_count) / link_part.size();
  }
};

// Greedy balanced edge-cut, deterministic and seeded:
//   1. Connected components are computed first; parts are distributed to
//      components proportionally to node count (every component gets at
//      least one part; if components >= target, component c maps to part
//      c mod target and no component is cut).
//   2. Inside a component awarded p > 1 parts, p start nodes are picked
//      greedily k-center style (the seed rotates the first pick; ties break
//      on smallest node index) and regions grow by balanced multi-source
//      BFS: the smallest region claims next, so regions stay within ~1 node
//      of each other in size.
//   3. One boundary-refinement sweep moves nodes (ascending index order) to
//      the neighboring part holding most of their edges when that strictly
//      reduces the cut and keeps part sizes balanced.
// target_parts == 0 or 1 yields the trivial single-part partition.
LinkCutPartition ComputeLinkCutPartition(const Topology& topology,
                                         uint32_t target_parts,
                                         uint64_t seed = 0);

}  // namespace tenantnet

#endif  // TENANTNET_SRC_SIM_TOPOLOGY_H_
