#include "src/sim/event_queue.h"

#include <cassert>
#include <utility>

namespace tenantnet {

void EventQueue::ReleaseSlot(uint32_t slot) {
  slots_[slot].fn = nullptr;
  slots_[slot].seq = 0;
  free_slots_.push_back(slot);
}

EventHandle EventQueue::ScheduleAt(SimTime when, Callback fn) {
  assert(when >= now_ && "cannot schedule in the past");
  if (when < now_) {
    when = now_;
  }
  uint64_t seq = next_seq_++;
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].fn = std::move(fn);
  slots_[slot].seq = seq;
  heap_.push(HeapItem{when, seq, slot});
  ++live_count_;
  return EventHandle(slot + 1, seq);
}

EventHandle EventQueue::ScheduleAfter(SimDuration delay, Callback fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

void EventQueue::Cancel(EventHandle handle) {
  if (!handle.valid() || handle.slot_ == 0) {
    return;
  }
  uint32_t slot = handle.slot_ - 1;
  if (slot >= slots_.size() || slots_[slot].seq != handle.seq_) {
    return;  // already fired, cancelled, or slot recycled for a newer event
  }
  ReleaseSlot(slot);
  --live_count_;
  // The heap item stays behind; it is discarded on pop (seq mismatch).
}

bool EventQueue::Step() {
  while (!heap_.empty()) {
    HeapItem item = heap_.top();
    heap_.pop();
    if (Stale(item)) {
      continue;  // cancelled (slot possibly already recycled)
    }
    // Detach the callback and free the slot before running: the callback
    // may schedule or cancel other events, including reusing this slot.
    Callback fn = std::move(slots_[item.slot].fn);
    ReleaseSlot(item.slot);
    --live_count_;
    now_ = item.when;
    fn();
    return true;
  }
  return false;
}

SimTime EventQueue::NextEventTime() {
  while (!heap_.empty() && Stale(heap_.top())) {
    heap_.pop();
  }
  return heap_.empty() ? SimTime::Infinite() : heap_.top().when;
}

void EventQueue::AdvanceTo(SimTime t) {
  if (t != SimTime::Infinite() && t > now_) {
    now_ = t;
  }
}

uint64_t EventQueue::RunUntil(SimTime deadline) {
  uint64_t fired = 0;
  for (;;) {
    // Skim stale entries to find the real next event time.
    while (!heap_.empty() && Stale(heap_.top())) {
      heap_.pop();
    }
    if (heap_.empty() || heap_.top().when > deadline) {
      break;
    }
    if (Step()) {
      ++fired;
    }
  }
  if (deadline != SimTime::Infinite() && deadline > now_) {
    now_ = deadline;
  }
  return fired;
}

}  // namespace tenantnet
