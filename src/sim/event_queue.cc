#include "src/sim/event_queue.h"

#include <cassert>
#include <memory>

namespace tenantnet {

EventQueue::~EventQueue() {
  while (!heap_.empty()) {
    delete heap_.top();
    heap_.pop();
  }
}

EventHandle EventQueue::ScheduleAt(SimTime when, Callback fn) {
  assert(when >= now_ && "cannot schedule in the past");
  if (when < now_) {
    when = now_;
  }
  uint64_t seq = next_seq_++;
  auto* entry = new Entry{when, seq, std::move(fn), /*cancelled=*/false};
  heap_.push(entry);
  index_.emplace(seq, entry);
  ++live_count_;
  return EventHandle(seq);
}

EventHandle EventQueue::ScheduleAfter(SimDuration delay, Callback fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

void EventQueue::Cancel(EventHandle handle) {
  if (!handle.valid()) {
    return;
  }
  auto it = index_.find(handle.seq_);
  if (it == index_.end()) {
    return;  // already fired or cancelled
  }
  it->second->cancelled = true;
  index_.erase(it);
  --live_count_;
}

bool EventQueue::Step() {
  while (!heap_.empty()) {
    Entry* entry = heap_.top();
    heap_.pop();
    if (entry->cancelled) {
      delete entry;
      continue;
    }
    index_.erase(entry->seq);
    --live_count_;
    now_ = entry->when;
    // Move the callback out before running: the callback may schedule or
    // cancel other events, but this entry is already detached.
    Callback fn = std::move(entry->fn);
    delete entry;
    fn();
    return true;
  }
  return false;
}

uint64_t EventQueue::RunUntil(SimTime deadline) {
  uint64_t fired = 0;
  for (;;) {
    // Skim cancelled entries to find the real next event time.
    while (!heap_.empty() && heap_.top()->cancelled) {
      delete heap_.top();
      heap_.pop();
    }
    if (heap_.empty() || heap_.top()->when > deadline) {
      break;
    }
    if (Step()) {
      ++fired;
    }
  }
  if (deadline != SimTime::Infinite() && deadline > now_) {
    now_ = deadline;
  }
  return fired;
}

}  // namespace tenantnet
