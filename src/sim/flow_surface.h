// The flow-control surface of the fluid data plane.
//
// Two executors implement it: FlowSim (the single-queue simulator) and
// ShardExecutor (a data-parallel engine that homes every flow on the shard
// owning the plurality of its path and epoch-synchronizes the links shared
// between shards). Everything that *drives* the data plane — the
// egress-quota manager's batched cap re-division, the fault injector's
// link toggles, the request workload's flow starts — is written against
// this interface, so one wiring works in both execution modes and the
// sharded runs stay byte-identical across any worker-thread count. Paths
// may span the whole topology: since the link-cut partition rework,
// drivers need not (and cannot) assume a flow's path stays inside one
// connected component or shard.

#ifndef TENANTNET_SRC_SIM_FLOW_SURFACE_H_
#define TENANTNET_SRC_SIM_FLOW_SURFACE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/sim/topology.h"

namespace tenantnet {

using FlowId = TypedId<struct FlowIdTag>;

// A flow in flight.
struct FlowState {
  std::vector<LinkId> path;
  double bytes_total = 0;      // payload size; infinity for persistent flows
  double bytes_left = 0;
  double weight = 1.0;         // max-min weight
  double rate_cap_bps = std::numeric_limits<double>::infinity();
  double current_rate_bps = 0;
  SimTime start_time;
};

// The M/M/1-shaped queueing-delay stand-in both engines use for
// QueuePenalty: per link, base * rho/(1-rho) with rho capped just below 1,
// clamped to `per_link_cap`. Shared so FlowSim (per-sim utilization) and
// ShardExecutor (utilization summed across shard sims) stay numerically
// identical formulas.
inline SimDuration QueuePenaltyForUtilization(double utilization,
                                              SimDuration per_link_base,
                                              SimDuration per_link_cap) {
  double rho = utilization < 0.999 ? utilization : 0.999;
  SimDuration penalty = per_link_base * (rho / (1.0 - rho));
  return penalty < per_link_cap ? penalty : per_link_cap;
}

class FlowControlSurface {
 public:
  using CompletionFn = std::function<void(FlowId, SimTime finish)>;
  // Fired when a fault kills a flow (the path lost a link). The flow is
  // already gone when this runs; callers reroute/retry (see
  // RequestWorkload's bounded backoff). Never fired by CancelFlow.
  using AbortFn = std::function<void(FlowId, SimTime when)>;

  virtual ~FlowControlSurface() = default;

  // Starts a finite transfer of `bytes` along `path`. `on_complete` fires
  // when the last byte is delivered. Empty paths complete immediately
  // (same-node transfer). If `on_abort` is set, a link fault on the path
  // aborts the flow and fires it; without one the flow stalls at rate 0
  // until the link recovers (a blackhole, counted in the fault telemetry).
  virtual FlowId StartFlow(
      std::vector<LinkId> path, double bytes, CompletionFn on_complete,
      double weight = 1.0,
      double rate_cap_bps = std::numeric_limits<double>::infinity(),
      AbortFn on_abort = AbortFn()) = 0;

  // Starts a persistent (infinite-backlog) flow; it runs until CancelFlow.
  virtual FlowId StartPersistentFlow(
      std::vector<LinkId> path, double weight = 1.0,
      double rate_cap_bps = std::numeric_limits<double>::infinity(),
      AbortFn on_abort = AbortFn()) = 0;

  // Stops a flow early (persistent or finite). No completion callback fires.
  virtual Status CancelFlow(FlowId id) = 0;

  // Tightens/loosens a live flow's rate cap (quota re-division does this).
  virtual Status SetRateCap(FlowId id, double rate_cap_bps) = 0;

  // Current max-min allocation for a live flow, in bits/sec.
  virtual Result<double> CurrentRate(FlowId id) const = 0;

  virtual const FlowState* FindFlow(FlowId id) const = 0;

  // --- Fault surface ---------------------------------------------------------
  virtual Status SetLinkUp(LinkId link, bool up) = 0;
  virtual bool IsLinkUp(LinkId link) const = 0;
  virtual size_t stalled_flow_count() const = 0;
  virtual uint64_t flows_aborted() const = 0;
  virtual uint64_t flows_blackholed() const = 0;
  virtual double bytes_blackholed() const = 0;

  // --- Latency surface -------------------------------------------------------
  virtual double LinkUtilization(LinkId link) const = 0;
  virtual SimDuration QueuePenalty(const std::vector<LinkId>& path,
                                   SimDuration per_link_base,
                                   SimDuration per_link_cap) const = 0;

  // --- Accounting ------------------------------------------------------------
  virtual size_t active_flow_count() const = 0;
  virtual double total_bytes_delivered() const = 0;
  virtual uint64_t reallocation_count() const = 0;
  virtual uint64_t flows_rescheduled() const = 0;

  // --- BatchUpdate -----------------------------------------------------------
  // Coalesces a burst of starts/cancels/cap changes into one reallocation
  // (per shard, in the sharded executor). Scopes nest; the outermost one
  // reallocates. Do not run the event loop while a batch is open.
  virtual void BeginBatch() = 0;
  virtual void EndBatch() = 0;

  class BatchScope {
   public:
    explicit BatchScope(FlowControlSurface& sim) : sim_(&sim) {
      sim_->BeginBatch();
    }
    BatchScope(BatchScope&& other) noexcept : sim_(other.sim_) {
      other.sim_ = nullptr;
    }
    BatchScope(const BatchScope&) = delete;
    BatchScope& operator=(const BatchScope&) = delete;
    BatchScope& operator=(BatchScope&&) = delete;
    ~BatchScope() {
      if (sim_ != nullptr) {
        sim_->EndBatch();
      }
    }

   private:
    FlowControlSurface* sim_;
  };
  BatchScope Batch() { return BatchScope(*this); }
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_SIM_FLOW_SURFACE_H_
