#include "src/sim/flow_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tenantnet {

namespace {
constexpr double kEps = 1e-9;

// Relative rate-change threshold below which a completion event is kept:
// with an unchanged rate the previously predicted finish time is still
// exact, so rescheduling would be pure queue churn.
constexpr double kRateEps = 1e-9;

bool RateChanged(double old_rate, double new_rate) {
  double scale = std::max({1.0, std::abs(old_rate), std::abs(new_rate)});
  return std::abs(new_rate - old_rate) > kRateEps * scale;
}
}  // namespace

FlowSim::FlowSim(EventQueue& queue, const Topology& topology)
    : queue_(queue), topology_(topology) {}

void FlowSim::EnsureLinkArrays(size_t dense_index) {
  if (dense_index < link_members_.size()) {
    return;
  }
  size_t size = std::max(dense_index + 1, topology_.link_count());
  link_members_.resize(size);
  link_allocated_bps_.resize(size, 0.0);
  link_stamp_.resize(size, 0);
  link_slot_.resize(size, 0);
  link_down_.resize(size, 0);
  link_lease_.resize(size, -1.0);
}

double FlowSim::EffectiveCapacityBps(size_t dense_index) const {
  if (dense_index < link_down_.size() && link_down_[dense_index]) {
    return 0.0;
  }
  if (dense_index < link_lease_.size() && link_lease_[dense_index] >= 0.0) {
    return link_lease_[dense_index];
  }
  return topology_.link(LinkId(dense_index + 1)).capacity_bps;
}

Status FlowSim::SetLinkCapacityLease(LinkId link, double bps) {
  if (!link.valid() ||
      Topology::DenseLinkIndex(link) >= topology_.link_count()) {
    return InvalidArgumentError("unknown link id");
  }
  size_t idx = Topology::DenseLinkIndex(link);
  EnsureLinkArrays(idx);
  double lease = bps < 0.0 ? -1.0 : bps;
  if (link_lease_[idx] == lease) {
    return Status::Ok();
  }
  link_lease_[idx] = lease;
  if (batch_depth_ > 0) {
    pending_links_.push_back(idx);
  } else {
    ReallocateScoped(nullptr, 0, &idx, 1);
  }
  return Status::Ok();
}

double FlowSim::LinkCapacityLease(LinkId link) const {
  size_t idx = Topology::DenseLinkIndex(link);
  return idx < link_lease_.size() ? link_lease_[idx] : -1.0;
}

double FlowSim::LinkAllocatedBps(LinkId link) const {
  size_t idx = Topology::DenseLinkIndex(link);
  return idx < link_allocated_bps_.size() ? link_allocated_bps_[idx] : 0.0;
}

void FlowSim::AddFlowToLinks(FlowId id, LiveFlow& flow) {
  flow.member_pos.resize(flow.state.path.size());
  for (size_t i = 0; i < flow.state.path.size(); ++i) {
    size_t idx = Topology::DenseLinkIndex(flow.state.path[i]);
    EnsureLinkArrays(idx);
    flow.member_pos[i] = static_cast<uint32_t>(link_members_[idx].size());
    link_members_[idx].push_back(
        LinkMember{id, &flow, static_cast<uint32_t>(i)});
  }
}

void FlowSim::RemoveFlowFromLinks(FlowId id, LiveFlow& flow) {
  for (size_t i = 0; i < flow.state.path.size(); ++i) {
    size_t idx = Topology::DenseLinkIndex(flow.state.path[i]);
    std::vector<LinkMember>& members = link_members_[idx];
    uint32_t pos = flow.member_pos[i];
    members[pos] = members.back();
    members.pop_back();
    if (pos < members.size()) {
      // Fix the moved entry's back-pointer (it may be this same flow if
      // the path crosses the link twice).
      LiveFlow& moved =
          members[pos].flow == id ? flow : *members[pos].live;
      moved.member_pos[members[pos].path_index] = pos;
    }
  }
}

FlowId FlowSim::StartFlow(std::vector<LinkId> path, double bytes,
                          CompletionFn on_complete, double weight,
                          double rate_cap_bps, AbortFn on_abort) {
  assert(bytes >= 0);
  assert(weight > 0);
  FlowId id = flow_ids_.Next();
  SimTime now = queue_.now();
  if (path.empty()) {
    if (std::isfinite(bytes)) {
      // Same-node finite transfer: delivered instantaneously in the fluid
      // model; never enters the tracked set.
      bytes_delivered_ += bytes;
      if (on_complete) {
        queue_.ScheduleAt(now, [on_complete = std::move(on_complete), id,
                                now] { on_complete(id, now); });
      }
      return id;
    }
    // Persistent zero-link flow: tracked as a no-op (rate 0, no links, no
    // bytes) so a later CancelFlow finds it. No reallocation needed.
    LiveFlow flow;
    flow.state.bytes_total = bytes;
    flow.state.bytes_left = bytes;
    flow.state.weight = weight;
    flow.state.rate_cap_bps = rate_cap_bps;
    flow.state.start_time = now;
    flow.last_settle = now;
    flows_.emplace(id, std::move(flow));
    return id;
  }
  LiveFlow flow;
  flow.state.path = std::move(path);
  flow.state.bytes_total = bytes;
  flow.state.bytes_left = bytes;
  flow.state.weight = weight;
  flow.state.rate_cap_bps = rate_cap_bps;
  flow.state.start_time = now;
  flow.on_complete = std::move(on_complete);
  flow.on_abort = std::move(on_abort);
  flow.last_settle = now;
  auto [it, inserted] = flows_.emplace(id, std::move(flow));
  AddFlowToLinks(id, it->second);
  if (batch_depth_ > 0) {
    pending_flows_.push_back(id);
  } else {
    ReallocateOne(id);
  }
  return id;
}

FlowId FlowSim::StartPersistentFlow(std::vector<LinkId> path, double weight,
                                    double rate_cap_bps, AbortFn on_abort) {
  return StartFlow(std::move(path), std::numeric_limits<double>::infinity(),
                   CompletionFn(), weight, rate_cap_bps, std::move(on_abort));
}

Status FlowSim::CancelFlow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return NotFoundError("no such flow");
  }
  LiveFlow& flow = it->second;
  SettleFlow(flow);
  queue_.Cancel(flow.completion_event);
  if (std::isfinite(flow.state.bytes_total)) {
    bytes_delivered_ += flow.state.bytes_total - flow.state.bytes_left;
  }
  seed_links_scratch_.clear();
  for (LinkId link : flow.state.path) {
    seed_links_scratch_.push_back(Topology::DenseLinkIndex(link));
  }
  RemoveFlowFromLinks(id, flow);
  flows_.erase(it);
  if (!seed_links_scratch_.empty()) {
    if (batch_depth_ > 0) {
      pending_links_.insert(pending_links_.end(), seed_links_scratch_.begin(),
                            seed_links_scratch_.end());
    } else {
      ReallocateScoped(nullptr, 0, seed_links_scratch_.data(),
                       seed_links_scratch_.size());
    }
  }
  return Status::Ok();
}

Status FlowSim::SetLinkUp(LinkId link, bool up) {
  if (!link.valid() || Topology::DenseLinkIndex(link) >= topology_.link_count()) {
    return InvalidArgumentError("unknown link id");
  }
  size_t idx = Topology::DenseLinkIndex(link);
  EnsureLinkArrays(idx);
  uint8_t down = up ? 0 : 1;
  if (link_down_[idx] == down) {
    return Status::Ok();
  }
  link_down_[idx] = down;

  // Abort callbacks are collected inside the batch but fired only after it
  // closes (the component has reallocated by then), in ascending FlowId
  // order so replays of the same schedule are deterministic.
  std::vector<std::pair<FlowId, AbortFn>> aborted;
  {
    auto batch = Batch();
    if (!up) {
      std::vector<FlowId> crossing;
      crossing.reserve(link_members_[idx].size());
      for (const LinkMember& m : link_members_[idx]) {
        crossing.push_back(m.flow);
      }
      std::sort(crossing.begin(), crossing.end(),
                [](FlowId a, FlowId b) { return a.value() < b.value(); });
      crossing.erase(std::unique(crossing.begin(), crossing.end()),
                     crossing.end());
      for (FlowId fid : crossing) {
        auto it = flows_.find(fid);
        if (it == flows_.end()) {
          continue;
        }
        LiveFlow& flow = it->second;
        if (flow.on_abort) {
          AbortFn cb = AbortFlow(fid);
          if (cb) {
            aborted.emplace_back(fid, std::move(cb));
          }
        } else if (!flow.blackhole_counted) {
          SettleFlow(flow);
          if (std::isfinite(flow.state.bytes_total) &&
              flow.state.bytes_left <= 0) {
            // Payload fully settled at this very timestamp: the write-back
            // re-completes it now (delivered), so regardless of whether the
            // fault or the completion event wins the FIFO tie-break the
            // flow is never charged as blackholed.
            continue;
          }
          // The flow stays live but the water-filler will pin it at rate 0
          // (the downed link's budget is 0). Charge the blackhole tally at
          // the moment of the stall, with progress settled up to now.
          flow.blackhole_counted = true;
          ++flows_blackholed_;
          if (std::isfinite(flow.state.bytes_total)) {
            bytes_blackholed_ += flow.state.bytes_left;
          }
        }
      }
    }
    pending_links_.push_back(idx);
  }
  SimTime now = queue_.now();
  for (auto& [fid, cb] : aborted) {
    cb(fid, now);
  }
  return Status::Ok();
}

bool FlowSim::IsLinkUp(LinkId link) const {
  size_t idx = Topology::DenseLinkIndex(link);
  return idx >= link_down_.size() || !link_down_[idx];
}

size_t FlowSim::stalled_flow_count() const {
  size_t n = 0;
  for (const auto& [id, flow] : flows_) {
    if (flow.state.current_rate_bps > 0 || flow.state.path.empty()) {
      continue;
    }
    for (LinkId link : flow.state.path) {
      if (!IsLinkUp(link)) {
        ++n;
        break;
      }
    }
  }
  return n;
}

FlowSim::AbortFn FlowSim::AbortFlow(FlowId id) {
  assert(batch_depth_ > 0);
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return AbortFn();
  }
  LiveFlow& flow = it->second;
  SettleFlow(flow);
  queue_.Cancel(flow.completion_event);
  ++flows_aborted_;
  if (std::isfinite(flow.state.bytes_total)) {
    bytes_blackholed_ += flow.state.bytes_left;
    bytes_delivered_ += flow.state.bytes_total - flow.state.bytes_left;
  }
  AbortFn cb = std::move(flow.on_abort);
  for (LinkId link : flow.state.path) {
    pending_links_.push_back(Topology::DenseLinkIndex(link));
  }
  RemoveFlowFromLinks(id, flow);
  flows_.erase(it);
  return cb;
}

Status FlowSim::SetRateCap(FlowId id, double rate_cap_bps) {
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return NotFoundError("no such flow");
  }
  it->second.state.rate_cap_bps = rate_cap_bps;
  if (it->second.state.path.empty()) {
    return Status::Ok();  // zero-link no-op flow: nothing to reallocate
  }
  if (batch_depth_ > 0) {
    pending_flows_.push_back(id);
  } else {
    ReallocateOne(id);
  }
  return Status::Ok();
}

Result<double> FlowSim::CurrentRate(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return NotFoundError("no such flow");
  }
  return it->second.state.current_rate_bps;
}

const FlowState* FlowSim::FindFlow(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? nullptr : &it->second.state;
}

double FlowSim::LinkUtilization(LinkId link) const {
  size_t idx = Topology::DenseLinkIndex(link);
  if (idx >= link_allocated_bps_.size()) {
    return 0;
  }
  if (idx < link_down_.size() && link_down_[idx]) {
    return 1.0;  // a downed link has no headroom at all
  }
  double cap = topology_.link(link).capacity_bps;
  return cap > 0 ? std::min(1.0, link_allocated_bps_[idx] / cap) : 0;
}

SimDuration FlowSim::QueuePenalty(const std::vector<LinkId>& path,
                                  SimDuration per_link_base,
                                  SimDuration per_link_cap) const {
  SimDuration total = SimDuration::Zero();
  for (LinkId link : path) {
    total += QueuePenaltyForUtilization(LinkUtilization(link), per_link_base,
                                        per_link_cap);
  }
  return total;
}

double FlowSim::total_bytes_delivered() const {
  // Persistent flows deliver continuously; fold in the stretch since each
  // one's last settle point. Finite flows are credited at completion or
  // cancellation, as before.
  double total = bytes_delivered_;
  SimTime now = queue_.now();
  for (const auto& [id, flow] : flows_) {
    if (!std::isfinite(flow.state.bytes_total)) {
      total += flow.state.current_rate_bps *
               (now - flow.last_settle).ToSeconds() / 8.0;
    }
  }
  return total;
}

void FlowSim::SettleFlow(LiveFlow& flow) {
  SimTime now = queue_.now();
  if (now == flow.last_settle) {
    return;
  }
  double dt = (now - flow.last_settle).ToSeconds();
  flow.last_settle = now;
  if (dt <= 0) {
    return;
  }
  if (!std::isfinite(flow.state.bytes_total)) {
    bytes_delivered_ += flow.state.current_rate_bps * dt / 8.0;
    return;
  }
  flow.state.bytes_left = std::max(
      0.0, flow.state.bytes_left - flow.state.current_rate_bps * dt / 8.0);
}

void FlowSim::EndBatch() {
  assert(batch_depth_ > 0);
  if (--batch_depth_ > 0) {
    return;
  }
  if (pending_flows_.empty() && pending_links_.empty()) {
    return;
  }
  ReallocateScoped(pending_flows_.data(), pending_flows_.size(),
                   pending_links_.data(), pending_links_.size());
  pending_flows_.clear();
  pending_links_.clear();
}

void FlowSim::ReallocateOne(FlowId seed) {
  ReallocateScoped(&seed, 1, nullptr, 0);
}

void FlowSim::ReallocateScoped(const FlowId* seed_flows,
                               size_t seed_flow_count,
                               const size_t* seed_links,
                               size_t seed_link_count) {
  ++reallocations_;
  ScopedTimerUs timer(realloc_micros_hist_);

  // --- Collect the affected component(s): flows transitively sharing links
  // with any seed. Stamps avoid clearing marker state between passes.
  ++stamp_;
  comp_flows_.clear();
  comp_links_.clear();
  auto add_link = [this](size_t idx) {
    if (link_stamp_[idx] != stamp_) {
      link_stamp_[idx] = stamp_;
      link_slot_[idx] = static_cast<uint32_t>(comp_links_.size());
      comp_links_.push_back(idx);
    }
  };
  auto add_flow = [this](FlowId fid, LiveFlow* live) {
    if (live->visit_stamp != stamp_ && !live->state.path.empty()) {
      live->visit_stamp = stamp_;
      comp_flows_.emplace_back(fid, live);
    }
  };
  for (size_t i = 0; i < seed_flow_count; ++i) {
    auto it = flows_.find(seed_flows[i]);
    if (it != flows_.end()) {
      add_flow(seed_flows[i], &it->second);
    }
  }
  for (size_t i = 0; i < seed_link_count; ++i) {
    EnsureLinkArrays(seed_links[i]);
    add_link(seed_links[i]);
  }
  size_t fi = 0;
  size_t li = 0;
  while (fi < comp_flows_.size() || li < comp_links_.size()) {
    for (; fi < comp_flows_.size(); ++fi) {
      for (LinkId link : comp_flows_[fi].second->state.path) {
        add_link(Topology::DenseLinkIndex(link));
      }
    }
    for (; li < comp_links_.size(); ++li) {
      for (const LinkMember& m : link_members_[comp_links_[li]]) {
        add_flow(m.flow, m.live);
      }
    }
  }

  component_size_hist_.Record(static_cast<double>(comp_flows_.size()));

  if (comp_flows_.empty()) {
    // Links freed by the last flow on them: zero their allocation.
    for (size_t idx : comp_links_) {
      link_allocated_bps_[idx] = 0;
    }
    return;
  }

  // --- Water-filling over the component: the fair level lambda rises
  // uniformly; a flow's rate is weight * lambda until its own cap or one of
  // its links freezes it. Budgets live in dense component-slot arrays.
  budget_remaining_.resize(comp_links_.size());
  budget_weight_.resize(comp_links_.size());
  for (size_t s = 0; s < comp_links_.size(); ++s) {
    budget_remaining_[s] = EffectiveCapacityBps(comp_links_[s]);
    budget_weight_[s] = 0;
  }
  for (auto& [fid, flow] : comp_flows_) {
    for (LinkId link : flow->state.path) {
      budget_weight_[link_slot_[Topology::DenseLinkIndex(link)]] +=
          flow->state.weight;
    }
  }

  unfrozen_ = comp_flows_;
  while (!unfrozen_.empty()) {
    // Next freeze level.
    double lambda = std::numeric_limits<double>::infinity();
    for (auto& [fid, flow] : unfrozen_) {
      lambda = std::min(lambda, flow->state.rate_cap_bps / flow->state.weight);
      for (LinkId link : flow->state.path) {
        size_t s = link_slot_[Topology::DenseLinkIndex(link)];
        if (budget_weight_[s] > 0) {
          lambda = std::min(
              lambda, std::max(0.0, budget_remaining_[s]) / budget_weight_[s]);
        }
      }
    }
    if (!std::isfinite(lambda)) {
      // All remaining flows are uncapped and cross no finite constraint;
      // give them an effectively unbounded rate.
      for (auto& [fid, flow] : unfrozen_) {
        flow->pending_rate = 1e18;
      }
      break;
    }

    // Freeze every flow whose own constraint binds at this level.
    still_unfrozen_.clear();
    for (auto& [fid, flow] : unfrozen_) {
      bool frozen = false;
      double rate = flow->state.weight * lambda;
      if (flow->state.rate_cap_bps / flow->state.weight <=
          lambda * (1 + kEps) + kEps) {
        rate = flow->state.rate_cap_bps;
        frozen = true;
      } else {
        for (LinkId link : flow->state.path) {
          size_t s = link_slot_[Topology::DenseLinkIndex(link)];
          if (budget_weight_[s] > 0 &&
              std::max(0.0, budget_remaining_[s]) / budget_weight_[s] <=
                  lambda * (1 + kEps) + kEps) {
            frozen = true;
            break;
          }
        }
      }
      if (frozen) {
        flow->pending_rate = rate;
        for (LinkId link : flow->state.path) {
          size_t s = link_slot_[Topology::DenseLinkIndex(link)];
          budget_remaining_[s] -= rate;
          budget_weight_[s] -= flow->state.weight;
        }
      } else {
        still_unfrozen_.emplace_back(fid, flow);
      }
    }
    // Progress guarantee: at least one flow freezes each round (the one
    // defining lambda). Guard against numerical stalls anyway.
    if (still_unfrozen_.size() == unfrozen_.size()) {
      for (auto& [fid, flow] : still_unfrozen_) {
        flow->pending_rate = flow->state.weight * lambda;
      }
      still_unfrozen_.clear();
    }
    unfrozen_.swap(still_unfrozen_);
  }

  // --- Write-back: record allocations, settle flows whose rate moved, and
  // reschedule completions only where the predicted finish changed.
  SimTime now = queue_.now();
  for (size_t idx : comp_links_) {
    link_allocated_bps_[idx] = 0;
  }
  for (auto& [fid, flow] : comp_flows_) {
    double new_rate = flow->pending_rate;
    double old_rate = flow->state.current_rate_bps;
    if (new_rate != old_rate) {
      // Integrate progress under the old rate before switching slope.
      SettleFlow(*flow);
      flow->state.current_rate_bps = new_rate;
    }
    for (LinkId link : flow->state.path) {
      link_allocated_bps_[Topology::DenseLinkIndex(link)] += new_rate;
    }
    if (!std::isfinite(flow->state.bytes_total)) {
      continue;  // persistent: no completion to schedule
    }
    if (!RateChanged(old_rate, new_rate) && flow->completion_event.valid()) {
      continue;  // same slope: the scheduled finish time is still exact
    }
    queue_.Cancel(flow->completion_event);
    flow->completion_event = EventHandle();
    if (flow->state.bytes_left <= 0) {
      FlowId id = fid;
      flow->completion_event =
          queue_.ScheduleAt(now, [this, id] { HandleCompletion(id); });
      ++flows_rescheduled_;
    } else if (new_rate > 0) {
      double seconds = flow->state.bytes_left * 8.0 / new_rate;
      FlowId id = fid;
      flow->completion_event = queue_.ScheduleAfter(
          SimDuration::Seconds(seconds), [this, id] { HandleCompletion(id); });
      ++flows_rescheduled_;
    }
    // else: stalled (zero cap); waits for a cap change.
  }
}

void FlowSim::HandleCompletion(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return;
  }
  LiveFlow& flow = it->second;
  // The scheduled finish is exact in the fluid model; credit the full
  // payload rather than integrating residue.
  bytes_delivered_ += flow.state.bytes_total;
  CompletionFn on_complete = std::move(flow.on_complete);
  seed_links_scratch_.clear();
  for (LinkId link : flow.state.path) {
    seed_links_scratch_.push_back(Topology::DenseLinkIndex(link));
  }
  RemoveFlowFromLinks(id, flow);
  flows_.erase(it);
  if (!seed_links_scratch_.empty()) {
    if (batch_depth_ > 0) {
      pending_links_.insert(pending_links_.end(), seed_links_scratch_.begin(),
                            seed_links_scratch_.end());
    } else {
      ReallocateScoped(nullptr, 0, seed_links_scratch_.data(),
                       seed_links_scratch_.size());
    }
  }
  if (on_complete) {
    on_complete(id, queue_.now());
  }
}

}  // namespace tenantnet
