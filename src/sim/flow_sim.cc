#include "src/sim/flow_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/sim/level_fill.h"

namespace tenantnet {

namespace {
// Region-growth safety margin: a link outside the incremental region whose
// post-fill demand lands within this relative distance of its effective
// capacity is pulled in and re-leveled exactly, so borderline saturation
// never silently diverges from the from-scratch oracle.
constexpr double kSaturationMargin = 1e-6;

// Region growth is monotone (links/flows are only ever added), so the pass
// loop terminates; this bound is a heuristic cutoff after which churn that
// keeps straddling group boundaries is cheaper to re-level as one full
// component fill.
constexpr int kMaxFillPasses = 10;
}  // namespace

FlowSim::FlowSim(EventQueue& queue, const Topology& topology)
    : queue_(queue), topology_(topology) {}

void FlowSim::EnsureLinkArrays(size_t dense_index) {
  if (dense_index < link_members_.size()) {
    return;
  }
  size_t size = std::max(dense_index + 1, topology_.link_count());
  link_members_.resize(size);
  link_allocated_bps_.resize(size, 0.0);
  link_stamp_.resize(size, 0);
  link_slot_.resize(size, 0);
  link_down_.resize(size, 0);
  link_lease_.resize(size, -1.0);
  link_frozen_.resize(size, 0);
  link_lambda_.resize(size, 0.0);
  link_group_.resize(size);
  link_probe_stamp_.resize(size, 0);
  link_probe_delta_.resize(size, 0.0);
}

double FlowSim::EffectiveCapacityBps(size_t dense_index) const {
  if (dense_index < link_down_.size() && link_down_[dense_index]) {
    return 0.0;
  }
  if (dense_index < link_lease_.size() && link_lease_[dense_index] >= 0.0) {
    return link_lease_[dense_index];
  }
  return topology_.link(LinkId(dense_index + 1)).capacity_bps;
}

Status FlowSim::SetLinkCapacityLease(LinkId link, double bps) {
  if (!link.valid() ||
      Topology::DenseLinkIndex(link) >= topology_.link_count()) {
    return InvalidArgumentError("unknown link id");
  }
  size_t idx = Topology::DenseLinkIndex(link);
  EnsureLinkArrays(idx);
  double lease = bps < 0.0 ? -1.0 : bps;
  if (link_lease_[idx] == lease) {
    return Status::Ok();
  }
  link_lease_[idx] = lease;
  if (batch_depth_ > 0) {
    pending_links_.push_back(idx);
  } else {
    Reallocate(nullptr, 0, &idx, 1, nullptr, 0);
  }
  return Status::Ok();
}

double FlowSim::LinkCapacityLease(LinkId link) const {
  size_t idx = Topology::DenseLinkIndex(link);
  return idx < link_lease_.size() ? link_lease_[idx] : -1.0;
}

double FlowSim::LinkAllocatedBps(LinkId link) const {
  size_t idx = Topology::DenseLinkIndex(link);
  return idx < link_allocated_bps_.size() ? link_allocated_bps_[idx] : 0.0;
}

void FlowSim::AddFlowToLinks(FlowId id, LiveFlow& flow) {
  // FlowIds are allocated monotonically and never reused, so appending
  // keeps every member list sorted by ascending FlowId. RemoveFlowFromLinks
  // preserves the invariant with an ordered erase; the water-filler leans
  // on it to walk canonical-order member segments with no per-pass sort.
  flow.member_pos.resize(flow.state.path.size());
  for (size_t i = 0; i < flow.state.path.size(); ++i) {
    size_t idx = Topology::DenseLinkIndex(flow.state.path[i]);
    EnsureLinkArrays(idx);
    flow.member_pos[i] = static_cast<uint32_t>(link_members_[idx].size());
    link_members_[idx].push_back(
        LinkMember{id, &flow, static_cast<uint32_t>(i)});
  }
}

void FlowSim::RemoveFromGroup(LiveFlow& flow) {
  std::vector<LinkMember>& group = link_group_[flow.bind_link];
  uint32_t pos = flow.group_pos;
  group[pos] = group.back();
  group.pop_back();
  if (pos < group.size()) {
    group[pos].live->group_pos = pos;
  }
  flow.bind_kind = kBindFree;
}

void FlowSim::RemoveFlowFromLinks(FlowId id, LiveFlow& flow) {
  // The departing flow's demand leaves with it; allocations are maintained
  // as exact per-flow deltas (see CommitFill) so both fill modes agree on
  // every link's allocation bit-for-bit.
  double rate = flow.state.current_rate_bps;
  for (size_t i = 0; i < flow.state.path.size(); ++i) {
    size_t idx = Topology::DenseLinkIndex(flow.state.path[i]);
    std::vector<LinkMember>& members = link_members_[idx];
    uint32_t pos = flow.member_pos[i];
    // Ordered erase keeps the list sorted by FlowId; every shifted entry's
    // back-pointer is fixed in place (a shifted entry may be this same
    // flow if the path crosses the link twice).
    for (size_t j = pos + 1; j < members.size(); ++j) {
      const LinkMember& m = members[j];
      LiveFlow& moved = m.flow == id ? flow : *m.live;
      moved.member_pos[m.path_index] = static_cast<uint32_t>(j - 1);
      members[j - 1] = m;
    }
    members.pop_back();
    link_allocated_bps_[idx] =
        members.empty() ? 0.0 : link_allocated_bps_[idx] - rate;
  }
  if (flow.bind_kind == kBindLink) {
    RemoveFromGroup(flow);
  }
}

FlowId FlowSim::StartFlow(std::vector<LinkId> path, double bytes,
                          CompletionFn on_complete, double weight,
                          double rate_cap_bps, AbortFn on_abort) {
  assert(bytes >= 0);
  assert(weight > 0);
  FlowId id = flow_ids_.Next();
  SimTime now = queue_.now();
  if (path.empty()) {
    if (std::isfinite(bytes)) {
      // Same-node finite transfer: delivered instantaneously in the fluid
      // model; never enters the tracked set.
      bytes_delivered_ += bytes;
      if (on_complete) {
        queue_.ScheduleAt(now, [on_complete = std::move(on_complete), id,
                                now] { on_complete(id, now); });
      }
      return id;
    }
    // Persistent zero-link flow: tracked as a no-op (rate 0, no links, no
    // bytes) so a later CancelFlow finds it. No reallocation needed.
    LiveFlow flow;
    flow.state.bytes_total = bytes;
    flow.state.bytes_left = bytes;
    flow.state.weight = weight;
    flow.state.rate_cap_bps = rate_cap_bps;
    flow.state.start_time = now;
    flow.last_settle = now;
    flows_.emplace(id, std::move(flow));
    return id;
  }
  LiveFlow flow;
  flow.state.path = std::move(path);
  flow.state.bytes_total = bytes;
  flow.state.bytes_left = bytes;
  flow.state.weight = weight;
  flow.state.rate_cap_bps = rate_cap_bps;
  flow.state.start_time = now;
  flow.on_complete = std::move(on_complete);
  flow.on_abort = std::move(on_abort);
  flow.last_settle = now;
  auto [it, inserted] = flows_.emplace(id, std::move(flow));
  AddFlowToLinks(id, it->second);
  if (batch_depth_ > 0) {
    pending_flows_.push_back(id);
  } else {
    ReallocateOne(id);
  }
  return id;
}

FlowId FlowSim::StartPersistentFlow(std::vector<LinkId> path, double weight,
                                    double rate_cap_bps, AbortFn on_abort) {
  return StartFlow(std::move(path), std::numeric_limits<double>::infinity(),
                   CompletionFn(), weight, rate_cap_bps, std::move(on_abort));
}

Status FlowSim::CancelFlow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return NotFoundError("no such flow");
  }
  LiveFlow& flow = it->second;
  SettleFlow(flow);
  queue_.Cancel(flow.completion_event);
  if (std::isfinite(flow.state.bytes_total)) {
    bytes_delivered_ += flow.state.bytes_total - flow.state.bytes_left;
  }
  seed_links_scratch_.clear();
  for (LinkId link : flow.state.path) {
    seed_links_scratch_.push_back(Topology::DenseLinkIndex(link));
  }
  RemoveFlowFromLinks(id, flow);
  flows_.erase(it);
  if (!seed_links_scratch_.empty()) {
    if (batch_depth_ > 0) {
      pending_shrunk_links_.insert(pending_shrunk_links_.end(),
                                   seed_links_scratch_.begin(),
                                   seed_links_scratch_.end());
    } else {
      Reallocate(nullptr, 0, nullptr, 0, seed_links_scratch_.data(),
                 seed_links_scratch_.size());
    }
  }
  return Status::Ok();
}

Status FlowSim::SetLinkUp(LinkId link, bool up) {
  if (!link.valid() || Topology::DenseLinkIndex(link) >= topology_.link_count()) {
    return InvalidArgumentError("unknown link id");
  }
  size_t idx = Topology::DenseLinkIndex(link);
  EnsureLinkArrays(idx);
  uint8_t down = up ? 0 : 1;
  if (link_down_[idx] == down) {
    return Status::Ok();
  }
  link_down_[idx] = down;

  // Abort callbacks are collected inside the batch but fired only after it
  // closes (the component has reallocated by then), in ascending FlowId
  // order so replays of the same schedule are deterministic.
  std::vector<std::pair<FlowId, AbortFn>> aborted;
  {
    auto batch = Batch();
    if (!up) {
      std::vector<FlowId> crossing;
      crossing.reserve(link_members_[idx].size());
      for (const LinkMember& m : link_members_[idx]) {
        crossing.push_back(m.flow);
      }
      std::sort(crossing.begin(), crossing.end(),
                [](FlowId a, FlowId b) { return a.value() < b.value(); });
      crossing.erase(std::unique(crossing.begin(), crossing.end()),
                     crossing.end());
      for (FlowId fid : crossing) {
        auto it = flows_.find(fid);
        if (it == flows_.end()) {
          continue;
        }
        LiveFlow& flow = it->second;
        if (flow.on_abort) {
          AbortFn cb = AbortFlow(fid);
          if (cb) {
            aborted.emplace_back(fid, std::move(cb));
          }
        } else if (!flow.blackhole_counted) {
          SettleFlow(flow);
          if (std::isfinite(flow.state.bytes_total) &&
              flow.state.bytes_left <= 0) {
            // Payload fully settled at this very timestamp: the write-back
            // re-completes it now (delivered), so regardless of whether the
            // fault or the completion event wins the FIFO tie-break the
            // flow is never charged as blackholed.
            continue;
          }
          // The flow stays live but the water-filler will pin it at rate 0
          // (the downed link's budget is 0). Charge the blackhole tally at
          // the moment of the stall, with progress settled up to now.
          flow.blackhole_counted = true;
          ++flows_blackholed_;
          if (std::isfinite(flow.state.bytes_total)) {
            bytes_blackholed_ += flow.state.bytes_left;
          }
        }
      }
    }
    pending_links_.push_back(idx);
  }
  SimTime now = queue_.now();
  for (auto& [fid, cb] : aborted) {
    cb(fid, now);
  }
  return Status::Ok();
}

bool FlowSim::IsLinkUp(LinkId link) const {
  size_t idx = Topology::DenseLinkIndex(link);
  return idx >= link_down_.size() || !link_down_[idx];
}

size_t FlowSim::stalled_flow_count() const {
  size_t n = 0;
  for (const auto& [id, flow] : flows_) {
    if (flow.state.current_rate_bps > 0 || flow.state.path.empty()) {
      continue;
    }
    for (LinkId link : flow.state.path) {
      if (!IsLinkUp(link)) {
        ++n;
        break;
      }
    }
  }
  return n;
}

FlowSim::AbortFn FlowSim::AbortFlow(FlowId id) {
  assert(batch_depth_ > 0);
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return AbortFn();
  }
  LiveFlow& flow = it->second;
  SettleFlow(flow);
  queue_.Cancel(flow.completion_event);
  ++flows_aborted_;
  if (std::isfinite(flow.state.bytes_total)) {
    bytes_blackholed_ += flow.state.bytes_left;
    bytes_delivered_ += flow.state.bytes_total - flow.state.bytes_left;
  }
  AbortFn cb = std::move(flow.on_abort);
  for (LinkId link : flow.state.path) {
    pending_shrunk_links_.push_back(Topology::DenseLinkIndex(link));
  }
  RemoveFlowFromLinks(id, flow);
  flows_.erase(it);
  return cb;
}

Status FlowSim::SetRateCap(FlowId id, double rate_cap_bps) {
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return NotFoundError("no such flow");
  }
  it->second.state.rate_cap_bps = rate_cap_bps;
  if (it->second.state.path.empty()) {
    return Status::Ok();  // zero-link no-op flow: nothing to reallocate
  }
  if (batch_depth_ > 0) {
    pending_flows_.push_back(id);
  } else {
    ReallocateOne(id);
  }
  return Status::Ok();
}

Status FlowSim::SetWeight(FlowId id, double weight) {
  if (!(weight > 0)) {
    return InvalidArgumentError("weight must be > 0");
  }
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return NotFoundError("no such flow");
  }
  LiveFlow& flow = it->second;
  if (flow.state.weight == weight) {
    return Status::Ok();
  }
  flow.state.weight = weight;
  if (flow.state.path.empty()) {
    return Status::Ok();
  }
  // A weight change moves every fair-share denominator the flow sits in —
  // including on links that are not saturated today but whose level drops
  // below some member's recorded bind. Treat the whole path as
  // capacity-dirty so each of those links re-levels exactly.
  if (batch_depth_ > 0) {
    pending_flows_.push_back(id);
    for (LinkId link : flow.state.path) {
      pending_links_.push_back(Topology::DenseLinkIndex(link));
    }
  } else {
    seed_links_scratch_.clear();
    for (LinkId link : flow.state.path) {
      seed_links_scratch_.push_back(Topology::DenseLinkIndex(link));
    }
    Reallocate(&id, 1, seed_links_scratch_.data(), seed_links_scratch_.size(),
               nullptr, 0);
  }
  return Status::Ok();
}

Result<double> FlowSim::CurrentRate(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return NotFoundError("no such flow");
  }
  return it->second.state.current_rate_bps;
}

const FlowState* FlowSim::FindFlow(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? nullptr : &it->second.state;
}

void FlowSim::ForEachFlow(
    const std::function<void(FlowId, const FlowState&)>& fn) const {
  for (const auto& [id, flow] : flows_) {
    fn(id, flow.state);
  }
}

double FlowSim::LinkUtilization(LinkId link) const {
  size_t idx = Topology::DenseLinkIndex(link);
  if (idx >= link_allocated_bps_.size()) {
    return 0;
  }
  if (idx < link_down_.size() && link_down_[idx]) {
    return 1.0;  // a downed link has no headroom at all
  }
  double cap = topology_.link(link).capacity_bps;
  return cap > 0 ? std::min(1.0, link_allocated_bps_[idx] / cap) : 0;
}

SimDuration FlowSim::QueuePenalty(const std::vector<LinkId>& path,
                                  SimDuration per_link_base,
                                  SimDuration per_link_cap) const {
  SimDuration total = SimDuration::Zero();
  for (LinkId link : path) {
    total += QueuePenaltyForUtilization(LinkUtilization(link), per_link_base,
                                        per_link_cap);
  }
  return total;
}

double FlowSim::total_bytes_delivered() const {
  // Persistent flows deliver continuously; fold in the stretch since each
  // one's last settle point. Finite flows are credited at completion or
  // cancellation, as before.
  double total = bytes_delivered_;
  SimTime now = queue_.now();
  for (const auto& [id, flow] : flows_) {
    if (!std::isfinite(flow.state.bytes_total)) {
      total += flow.state.current_rate_bps *
               (now - flow.last_settle).ToSeconds() / 8.0;
    }
  }
  return total;
}

void FlowSim::SettleFlow(LiveFlow& flow) {
  SimTime now = queue_.now();
  if (now == flow.last_settle) {
    return;
  }
  double dt = (now - flow.last_settle).ToSeconds();
  flow.last_settle = now;
  if (dt <= 0) {
    return;
  }
  if (!std::isfinite(flow.state.bytes_total)) {
    bytes_delivered_ += flow.state.current_rate_bps * dt / 8.0;
    return;
  }
  flow.state.bytes_left = std::max(
      0.0, flow.state.bytes_left - flow.state.current_rate_bps * dt / 8.0);
}

void FlowSim::EndBatch() {
  assert(batch_depth_ > 0);
  if (--batch_depth_ > 0) {
    return;
  }
  if (pending_flows_.empty() && pending_links_.empty() &&
      pending_shrunk_links_.empty()) {
    return;
  }
  Reallocate(pending_flows_.data(), pending_flows_.size(),
             pending_links_.data(), pending_links_.size(),
             pending_shrunk_links_.data(), pending_shrunk_links_.size());
  pending_flows_.clear();
  pending_links_.clear();
  pending_shrunk_links_.clear();
}

void FlowSim::ReallocateOne(FlowId seed) {
  Reallocate(&seed, 1, nullptr, 0, nullptr, 0);
}

void FlowSim::Reallocate(const FlowId* seed_flows, size_t seed_flow_count,
                         const size_t* capdirty_links, size_t capdirty_count,
                         const size_t* shrunk_links, size_t shrunk_count) {
  ++reallocations_;
  ScopedTimerUs timer(realloc_micros_hist_);
  if (incremental_) {
    RelevelDelta(seed_flows, seed_flow_count, capdirty_links, capdirty_count,
                 shrunk_links, shrunk_count);
    return;
  }
  // Oracle mode: every touched link seeds the full component BFS.
  merged_links_scratch_.assign(capdirty_links, capdirty_links + capdirty_count);
  merged_links_scratch_.insert(merged_links_scratch_.end(), shrunk_links,
                               shrunk_links + shrunk_count);
  RefillComponent(seed_flows, seed_flow_count, merged_links_scratch_.data(),
                  merged_links_scratch_.size());
}

void FlowSim::AddRegionLink(size_t dense_index) {
  EnsureLinkArrays(dense_index);
  if (link_stamp_[dense_index] == stamp_) {
    return;
  }
  link_stamp_[dense_index] = stamp_;
  region_links_.push_back(dense_index);
  // Re-leveling a saturated link invalidates every rate it froze: its
  // whole bottleneck group joins the recompute set.
  for (const LinkMember& m : link_group_[dense_index]) {
    AddRecomputeFlow(m.flow, m.live);
  }
}

void FlowSim::AddRecomputeFlow(FlowId id, LiveFlow* live) {
  if (live->recompute_stamp == stamp_ || live->state.path.empty()) {
    return;
  }
  live->recompute_stamp = stamp_;
  recompute_flows_.emplace_back(id, live);
}

void FlowSim::RelevelDelta(const FlowId* seed_flows, size_t seed_flow_count,
                           const size_t* capdirty_links, size_t capdirty_count,
                           const size_t* shrunk_links, size_t shrunk_count) {
  ++stamp_;
  region_links_.clear();
  recompute_flows_.clear();
  for (size_t i = 0; i < capdirty_count; ++i) {
    AddRegionLink(capdirty_links[i]);
  }
  for (size_t i = 0; i < shrunk_count; ++i) {
    // Demand-only shrink: an unsaturated link that just lost a flow only
    // gained headroom — nobody's level there was binding, so it stays out.
    EnsureLinkArrays(shrunk_links[i]);
    if (link_frozen_[shrunk_links[i]]) {
      AddRegionLink(shrunk_links[i]);
    }
  }
  for (size_t i = 0; i < seed_flow_count; ++i) {
    auto it = flows_.find(seed_flows[i]);
    if (it == flows_.end() || it->second.state.path.empty()) {
      continue;  // cancelled within the batch, or zero-link no-op
    }
    AddRecomputeFlow(seed_flows[i], &it->second);
    for (LinkId link : it->second.state.path) {
      size_t idx = Topology::DenseLinkIndex(link);
      EnsureLinkArrays(idx);
      if (link_frozen_[idx]) {
        AddRegionLink(idx);
      }
    }
  }
  if (region_links_.empty() && recompute_flows_.empty()) {
    component_size_hist_.Record(0.0);
    fill_levels_hist_.Record(0.0);
    groups_releveled_hist_.Record(0.0);
    return;
  }
  for (int pass = 0;; ++pass) {
    if (pass == kMaxFillPasses) {
      // Churn keeps straddling group boundaries; one full component fill
      // is cheaper than more region growth (and bit-identical to the
      // oracle by construction — it *is* the oracle).
      fallback_flows_scratch_.clear();
      for (auto& [fid, live] : recompute_flows_) {
        fallback_flows_scratch_.push_back(fid);
      }
      merged_links_scratch_ = region_links_;
      RefillComponent(fallback_flows_scratch_.data(),
                      fallback_flows_scratch_.size(),
                      merged_links_scratch_.data(),
                      merged_links_scratch_.size());
      return;
    }
    if (!RunFillPass()) {
      ++fill_restarts_;  // external rebind: region grew, run again
      continue;
    }
    if (GrowFromProbe()) {
      ++fill_restarts_;  // fixpoint not reached: region grew, run again
      continue;
    }
    break;
  }
  CommitFill();
}

void FlowSim::RefillComponent(const FlowId* seed_flows, size_t seed_flow_count,
                              const size_t* seed_links,
                              size_t seed_link_count) {
  ++full_fills_;
  // Collect the affected component(s): flows transitively sharing links
  // with any seed. Stamps avoid clearing marker state between passes.
  // Everything lands in the recompute set — there are no externals, so the
  // single canonical pass below can never abort.
  ++stamp_;
  region_links_.clear();
  recompute_flows_.clear();
  auto add_link = [this](size_t idx) {
    EnsureLinkArrays(idx);
    if (link_stamp_[idx] != stamp_) {
      link_stamp_[idx] = stamp_;
      region_links_.push_back(idx);
    }
  };
  for (size_t i = 0; i < seed_flow_count; ++i) {
    auto it = flows_.find(seed_flows[i]);
    if (it != flows_.end()) {
      AddRecomputeFlow(seed_flows[i], &it->second);
    }
  }
  for (size_t i = 0; i < seed_link_count; ++i) {
    add_link(seed_links[i]);
  }
  size_t fi = 0;
  size_t li = 0;
  while (fi < recompute_flows_.size() || li < region_links_.size()) {
    for (; fi < recompute_flows_.size(); ++fi) {
      for (LinkId link : recompute_flows_[fi].second->state.path) {
        add_link(Topology::DenseLinkIndex(link));
      }
    }
    for (; li < region_links_.size(); ++li) {
      for (const LinkMember& m : link_members_[region_links_[li]]) {
        AddRecomputeFlow(m.flow, m.live);
      }
    }
  }
  if (region_links_.empty() && recompute_flows_.empty()) {
    component_size_hist_.Record(0.0);
    fill_levels_hist_.Record(0.0);
    groups_releveled_hist_.Record(0.0);
    return;
  }
  bool clean = RunFillPass();
  (void)clean;
  assert(clean);  // full component: no external can exist
  CommitFill();
}

bool FlowSim::RunFillPass() {
  ++fill_passes_;
  ++pass_stamp_;
  fill_link_freezes_ = 0;

  // The pass's flows are the recompute set plus every member of a region
  // link (the latter replay their recorded constraints). No explicit list
  // is materialized: the slot member segments below cover the link
  // crossers, the event array is sorted regardless of build order, and the
  // drain/probe/commit steps only touch the recompute set.

  // --- Per-region-link slots: slack/weight budgets. A slot's member list
  // is exactly link_members_ for that link — kept sorted by ascending
  // FlowId at all times (see AddFlowToLinks) — so weight sums accumulate
  // in canonical order by walking it directly; there is no per-pass member
  // copy or sort. Event collection (cap levels for the recompute set,
  // recorded constraint keys for externals) is fused into the same sweep:
  // externals replay the exact key their constraint froze at in the
  // previous decomposition, so region links see the same (value, order)
  // subtraction sequence the from-scratch fill would produce, and every
  // event key is unique, so the final sort yields one canonical sequence
  // no matter what order sources are walked in.
  size_t slots = region_links_.size();
  slots_.resize(slots);
  fill_events_.clear();
  auto add_event = [this](FlowId fid, LiveFlow* flow) {
    if (flow->member_stamp == pass_stamp_) {
      return;  // already added (multiple occurrences / recompute + member)
    }
    flow->member_stamp = pass_stamp_;
    if (flow->recompute_stamp == stamp_) {
      double cap_level = flow->state.rate_cap_bps / flow->state.weight;
      if (std::isfinite(cap_level)) {
        fill_events_.push_back({cap_level, 0, fid.value(), 0, flow, fid});
      }
    } else if (flow->bind_kind == kBindCap) {
      fill_events_.push_back({flow->bind_level, 0, fid.value(), 0, flow, fid});
    } else if (flow->bind_kind == kBindLink) {
      // Sorts at the binding link's position in the total order and in
      // ascending FlowId among its siblings — the same relative order the
      // full fill freezes that group in.
      fill_events_.push_back({flow->bind_level, 1,
                              static_cast<uint64_t>(flow->bind_link),
                              fid.value(), flow, fid});
    }
    // kBindFree externals never freeze; their weight keeps levels honest.
  };
  for (auto& [fid, live] : recompute_flows_) {
    add_event(fid, live);
  }
  for (size_t s = 0; s < slots; ++s) {
    size_t idx = region_links_[s];
    link_slot_[idx] = static_cast<uint32_t>(s);
    Slot& slot = slots_[s];
    slot.slack = EffectiveCapacityBps(idx);
    slot.wsum = 0.0;
    slot.lambda = 0.0;
    slot.frozen = 0;
    for (const LinkMember& m : link_members_[idx]) {
      slot.wsum += m.live->state.weight;
      add_event(m.flow, m.live);
    }
  }
  std::sort(fill_events_.begin(), fill_events_.end(), FillEventBefore());

  // Freezes a flow's demand out of every region link it crosses. Link
  // levels only rise as demand freezes out, so the slot scan below always
  // sees the live minimum.
  auto freeze = [this](LiveFlow* flow, double rate) {
    flow->frozen_stamp = pass_stamp_;
    double weight = flow->state.weight;
    for (LinkId link : flow->state.path) {
      size_t idx = Topology::DenseLinkIndex(link);
      if (link_stamp_[idx] != stamp_) {
        continue;
      }
      Slot& slot = slots_[link_slot_[idx]];
      if (!slot.frozen) {
        slot.slack -= rate;
        slot.wsum -= weight;
      }
    }
  };

  // --- The fill: repeatedly take the lowest constraint — the next unfrozen
  // flow event vs. the minimum live link level — and freeze it.
  size_t ei = 0;
  for (;;) {
    while (ei < fill_events_.size() &&
           fill_events_[ei].flow->frozen_stamp == pass_stamp_) {
      ++ei;  // already frozen by a link it crosses
    }
    // Minimum live link level, ties to the smallest dense index (matching
    // the (level, kind=1, index, b=0) slot in the total order).
    size_t best_slot = slots;
    double best_level = std::numeric_limits<double>::infinity();
    for (size_t s = 0; s < slots; ++s) {
      const Slot& slot = slots_[s];
      if (slot.frozen || slot.wsum <= 0) {
        continue;
      }
      double level = std::max(0.0, slot.slack) / slot.wsum;
      if (!std::isfinite(level)) {
        continue;
      }
      if (level < best_level ||
          (level == best_level && region_links_[s] < region_links_[best_slot])) {
        best_level = level;
        best_slot = s;
      }
    }
    bool link_next = best_slot < slots;
    if (ei < fill_events_.size()) {
      const FillEvent& e = fill_events_[ei];
      if (link_next) {
        // Lexicographic (level, kind, a, b) against the link's
        // (best_level, 1, dense index, 0).
        uint64_t li = static_cast<uint64_t>(region_links_[best_slot]);
        link_next = best_level < e.level ||
                    (best_level == e.level &&
                     (1 < e.kind || (1 == e.kind && (li < e.a ||
                                                     (li == e.a && 0 < e.b)))));
      }
      if (!link_next) {
        LiveFlow* flow = e.flow;
        ++ei;
        if (flow->recompute_stamp == stamp_) {
          // Own rate cap binds first.
          flow->pending_rate = flow->state.rate_cap_bps;
          flow->pend_bind_kind = kBindCap;
          flow->pend_bind_link = 0;
          flow->pend_bind_level = e.level;
          freeze(flow, flow->state.rate_cap_bps);
        } else {
          // External replay: the recorded constraint fires; the rate is
          // unchanged by definition of being outside the recompute set.
          freeze(flow, flow->state.current_rate_bps);
        }
        continue;
      }
    } else if (!link_next) {
      break;  // no live constraint left
    }
    size_t s = best_slot;
    size_t idx = region_links_[s];
    // This link saturates at `best_level`. Every unfrozen member must be
    // in the recompute set — an external still unfrozen here was recorded
    // binding at a *higher* level elsewhere, so its rate is about to
    // change: pull it (and its old bottleneck) into the region and re-run.
    bool grew = false;
    for (const LinkMember& lm : link_members_[idx]) {
      LiveFlow* m = lm.live;
      if (m->frozen_stamp == pass_stamp_ || m->recompute_stamp == stamp_) {
        continue;
      }
      if (m->bind_kind == kBindLink) {
        AddRegionLink(m->bind_link);  // also pulls its group into F
      }
      AddRecomputeFlow(lm.flow, m);
      grew = true;
    }
    if (grew) {
      return false;  // abort the pass; caller restarts with the larger set
    }
    slots_[s].frozen = 1;
    slots_[s].lambda = best_level;
    ++fill_link_freezes_;
    for (const LinkMember& lm : link_members_[idx]) {
      LiveFlow* m = lm.live;
      if (m->frozen_stamp == pass_stamp_) {
        continue;  // earlier member, or an earlier occurrence of this one
      }
      m->pending_rate = m->state.weight * best_level;
      m->pend_bind_kind = kBindLink;
      m->pend_bind_link = static_cast<uint32_t>(idx);
      m->pend_bind_level = best_level;
      freeze(m, m->pending_rate);
    }
  }

  // Whoever survived every constraint is effectively unbounded (only
  // possible across infinite-capacity links with no finite cap).
  for (auto& [fid, flow] : recompute_flows_) {
    if (flow->frozen_stamp != pass_stamp_) {
      flow->pending_rate = 1e18;
      flow->pend_bind_kind = kBindFree;
      flow->pend_bind_link = 0;
      flow->pend_bind_level = std::numeric_limits<double>::infinity();
    }
  }
  return true;
}

bool FlowSim::GrowFromProbe() {
  // Fixpoint check: a recomputed flow whose rate or binding constraint
  // moved may change the arithmetic of a link outside the region — either
  // a frozen link (whose λ is recorded bit-exact and would be recomputed
  // with a different subtraction order by the oracle) or an unfrozen link
  // its new demand pushes to the brink of saturation. Grow the region to
  // cover both; unchanged flows provably leave outside links' fills alone.
  bool grew = false;
  ++probe_stamp_;
  probe_links_.clear();
  // Index loop over a snapshotted size: AddRegionLink below appends newly
  // pulled-in group members to recompute_flows_ (invalidating iterators),
  // and those flows carry stale pending_rates until the caller restarts
  // the pass — the restarted pass's own probe covers them.
  size_t probed = recompute_flows_.size();
  for (size_t i = 0; i < probed; ++i) {
    LiveFlow* flow = recompute_flows_[i].second;
    double delta = flow->pending_rate - flow->state.current_rate_bps;
    bool key_moved = flow->pend_bind_kind != flow->bind_kind ||
                     flow->pend_bind_level != flow->bind_level ||
                     (flow->pend_bind_kind == kBindLink &&
                      flow->pend_bind_link != flow->bind_link);
    if (delta == 0.0 && !key_moved) {
      continue;
    }
    for (LinkId link : flow->state.path) {
      size_t idx = Topology::DenseLinkIndex(link);
      if (link_stamp_[idx] == stamp_) {
        continue;  // already in the region
      }
      if (link_frozen_[idx]) {
        AddRegionLink(idx);
        grew = true;
        continue;
      }
      if (link_probe_stamp_[idx] != probe_stamp_) {
        link_probe_stamp_[idx] = probe_stamp_;
        link_probe_delta_[idx] = 0.0;
        probe_links_.push_back(idx);
      }
      link_probe_delta_[idx] += delta;
    }
  }
  for (size_t idx : probe_links_) {
    if (link_stamp_[idx] == stamp_) {
      continue;  // pulled in by the frozen branch above
    }
    if (link_allocated_bps_[idx] + link_probe_delta_[idx] >
        EffectiveCapacityBps(idx) * (1 - kSaturationMargin)) {
      AddRegionLink(idx);
      grew = true;
    }
  }
  return grew;
}

void FlowSim::CommitFill() {
  component_size_hist_.Record(static_cast<double>(recompute_flows_.size()));
  fill_levels_hist_.Record(static_cast<double>(fill_link_freezes_));
  size_t groups_releveled = 0;
  for (size_t idx : region_links_) {
    groups_releveled += link_frozen_[idx] ? 1 : 0;
  }
  groups_releveled_hist_.Record(static_cast<double>(groups_releveled));

  // Commit the new bottleneck decomposition for the region.
  for (size_t s = 0; s < region_links_.size(); ++s) {
    size_t idx = region_links_[s];
    link_frozen_[idx] = slots_[s].frozen;
    link_lambda_[idx] = slots_[s].frozen ? slots_[s].lambda : 0.0;
  }

  // Write-back in ascending FlowId order: settle flows whose rate moved,
  // apply the allocation delta per path occurrence (flows with unchanged
  // rate contribute an exact zero, so the incremental and from-scratch
  // paths emit the same delta sequence), rebuild group membership, and
  // reschedule completions only where the predicted finish changed.
  SimTime now = queue_.now();
  std::sort(recompute_flows_.begin(), recompute_flows_.end(),
            [](const std::pair<FlowId, LiveFlow*>& a,
               const std::pair<FlowId, LiveFlow*>& b) {
              return a.first.value() < b.first.value();
            });
  for (auto& [fid, flow] : recompute_flows_) {
    double new_rate = flow->pending_rate;
    double old_rate = flow->state.current_rate_bps;
    if (new_rate != old_rate) {
      // Integrate progress under the old rate before switching slope.
      SettleFlow(*flow);
      flow->state.current_rate_bps = new_rate;
      double delta = new_rate - old_rate;
      for (LinkId link : flow->state.path) {
        link_allocated_bps_[Topology::DenseLinkIndex(link)] += delta;
      }
    }
    if (flow->pend_bind_kind == flow->bind_kind &&
        (flow->bind_kind != kBindLink ||
         flow->pend_bind_link == flow->bind_link)) {
      // Same constraint, possibly a new level: group membership (and
      // group_pos) are already right — skip the remove/re-add churn that
      // would otherwise hit every member on every group relevel.
      flow->bind_level = flow->pend_bind_level;
    } else {
      if (flow->bind_kind == kBindLink) {
        RemoveFromGroup(*flow);
      }
      flow->bind_kind = flow->pend_bind_kind;
      flow->bind_link = flow->pend_bind_link;
      flow->bind_level = flow->pend_bind_level;
      if (flow->bind_kind == kBindLink) {
        flow->group_pos =
            static_cast<uint32_t>(link_group_[flow->bind_link].size());
        link_group_[flow->bind_link].push_back(LinkMember{fid, flow, 0});
      }
    }
    if (!std::isfinite(flow->state.bytes_total)) {
      continue;  // persistent: no completion to schedule
    }
    if (!level_fill::RateChanged(old_rate, new_rate) &&
        flow->completion_event.valid()) {
      continue;  // same slope: the scheduled finish time is still exact
    }
    queue_.Cancel(flow->completion_event);
    flow->completion_event = EventHandle();
    if (flow->state.bytes_left <= 0) {
      FlowId id = fid;
      flow->completion_event =
          queue_.ScheduleAt(now, [this, id] { HandleCompletion(id); });
      ++flows_rescheduled_;
    } else if (new_rate > 0) {
      double seconds = flow->state.bytes_left * 8.0 / new_rate;
      FlowId id = fid;
      flow->completion_event = queue_.ScheduleAfter(
          SimDuration::Seconds(seconds), [this, id] { HandleCompletion(id); });
      ++flows_rescheduled_;
    }
    // else: stalled (zero cap or downed link); waits for a change.
  }
}

void FlowSim::HandleCompletion(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return;
  }
  LiveFlow& flow = it->second;
  // The scheduled finish is exact in the fluid model; credit the full
  // payload rather than integrating residue.
  bytes_delivered_ += flow.state.bytes_total;
  CompletionFn on_complete = std::move(flow.on_complete);
  seed_links_scratch_.clear();
  for (LinkId link : flow.state.path) {
    seed_links_scratch_.push_back(Topology::DenseLinkIndex(link));
  }
  RemoveFlowFromLinks(id, flow);
  flows_.erase(it);
  if (!seed_links_scratch_.empty()) {
    if (batch_depth_ > 0) {
      pending_shrunk_links_.insert(pending_shrunk_links_.end(),
                                   seed_links_scratch_.begin(),
                                   seed_links_scratch_.end());
    } else {
      Reallocate(nullptr, 0, nullptr, 0, seed_links_scratch_.data(),
                 seed_links_scratch_.size());
    }
  }
  if (on_complete) {
    on_complete(id, queue_.now());
  }
}

}  // namespace tenantnet
