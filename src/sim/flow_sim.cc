#include "src/sim/flow_sim.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tenantnet {

namespace {
constexpr double kEps = 1e-9;
}  // namespace

FlowSim::FlowSim(EventQueue& queue, const Topology& topology)
    : queue_(queue), topology_(topology), last_settle_(queue.now()) {}

FlowId FlowSim::StartFlow(std::vector<LinkId> path, double bytes,
                          CompletionFn on_complete, double weight,
                          double rate_cap_bps) {
  assert(bytes >= 0);
  assert(weight > 0);
  FlowId id = flow_ids_.Next();
  if (path.empty()) {
    // Same-node transfer: delivered instantaneously in the fluid model.
    if (std::isfinite(bytes)) {
      bytes_delivered_ += bytes;
    }
    SimTime now = queue_.now();
    if (on_complete) {
      queue_.ScheduleAt(now, [on_complete = std::move(on_complete), id, now] {
        on_complete(id, now);
      });
    }
    return id;
  }
  SettleProgress();
  LiveFlow flow;
  flow.state.path = std::move(path);
  flow.state.bytes_total = bytes;
  flow.state.bytes_left = bytes;
  flow.state.weight = weight;
  flow.state.rate_cap_bps = rate_cap_bps;
  flow.state.start_time = queue_.now();
  flow.on_complete = std::move(on_complete);
  flows_.emplace(id, std::move(flow));
  Reallocate();
  return id;
}

FlowId FlowSim::StartPersistentFlow(std::vector<LinkId> path, double weight,
                                    double rate_cap_bps) {
  return StartFlow(std::move(path), std::numeric_limits<double>::infinity(),
                   CompletionFn(), weight, rate_cap_bps);
}

Status FlowSim::CancelFlow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return NotFoundError("no such flow");
  }
  SettleProgress();
  queue_.Cancel(it->second.completion_event);
  double sent = it->second.state.bytes_total - it->second.state.bytes_left;
  if (std::isfinite(sent)) {
    bytes_delivered_ += sent;
  }
  flows_.erase(it);
  Reallocate();
  return Status::Ok();
}

Status FlowSim::SetRateCap(FlowId id, double rate_cap_bps) {
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return NotFoundError("no such flow");
  }
  SettleProgress();
  it->second.state.rate_cap_bps = rate_cap_bps;
  Reallocate();
  return Status::Ok();
}

Result<double> FlowSim::CurrentRate(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return NotFoundError("no such flow");
  }
  return it->second.state.current_rate_bps;
}

const FlowState* FlowSim::FindFlow(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? nullptr : &it->second.state;
}

double FlowSim::LinkUtilization(LinkId link) const {
  auto it = link_allocated_bps_.find(link);
  if (it == link_allocated_bps_.end()) {
    return 0;
  }
  double cap = topology_.link(link).capacity_bps;
  return cap > 0 ? std::min(1.0, it->second / cap) : 0;
}

SimDuration FlowSim::QueuePenalty(const std::vector<LinkId>& path,
                                  SimDuration per_link_base,
                                  SimDuration per_link_cap) const {
  SimDuration total = SimDuration::Zero();
  for (LinkId link : path) {
    double util = LinkUtilization(link);
    // M/M/1 shape: penalty ~ rho / (1 - rho), capped.
    double rho = std::min(util, 0.999);
    SimDuration penalty = per_link_base * (rho / (1.0 - rho));
    total += std::min(penalty, per_link_cap);
  }
  return total;
}

void FlowSim::SettleProgress() {
  SimTime now = queue_.now();
  if (now == last_settle_) {
    return;
  }
  double dt = (now - last_settle_).ToSeconds();
  last_settle_ = now;
  if (dt <= 0) {
    return;
  }
  for (auto& [id, flow] : flows_) {
    if (!std::isfinite(flow.state.bytes_total)) {
      bytes_delivered_ += flow.state.current_rate_bps * dt / 8.0;
      continue;
    }
    flow.state.bytes_left =
        std::max(0.0, flow.state.bytes_left -
                          flow.state.current_rate_bps * dt / 8.0);
  }
}

void FlowSim::Reallocate() {
  ++reallocations_;
  link_allocated_bps_.clear();

  // Water-filling: the fair level lambda rises uniformly; a flow's rate is
  // weight * lambda until its own cap or one of its links freezes it.
  struct LinkBudget {
    double remaining;
    double weight_sum = 0;
  };
  std::unordered_map<LinkId, LinkBudget> budgets;
  std::vector<std::pair<FlowId, LiveFlow*>> unfrozen;
  unfrozen.reserve(flows_.size());
  for (auto& [id, flow] : flows_) {
    unfrozen.push_back({id, &flow});
    for (LinkId link : flow.state.path) {
      auto [it, inserted] = budgets.try_emplace(
          link, LinkBudget{topology_.link(link).capacity_bps, 0});
      it->second.weight_sum += flow.state.weight;
    }
  }

  while (!unfrozen.empty()) {
    // Next freeze level.
    double lambda = std::numeric_limits<double>::infinity();
    for (auto& [id, flow] : unfrozen) {
      lambda = std::min(lambda, flow->state.rate_cap_bps / flow->state.weight);
      for (LinkId link : flow->state.path) {
        const LinkBudget& b = budgets[link];
        if (b.weight_sum > 0) {
          lambda = std::min(lambda, std::max(0.0, b.remaining) / b.weight_sum);
        }
      }
    }
    if (!std::isfinite(lambda)) {
      // All remaining flows are uncapped and cross no finite constraint;
      // give them an effectively unbounded rate.
      for (auto& [id, flow] : unfrozen) {
        flow->state.current_rate_bps = 1e18;
      }
      break;
    }

    // Freeze every flow whose own constraint binds at this level.
    std::vector<std::pair<FlowId, LiveFlow*>> still_unfrozen;
    still_unfrozen.reserve(unfrozen.size());
    for (auto& [id, flow] : unfrozen) {
      bool frozen = false;
      double rate = flow->state.weight * lambda;
      if (flow->state.rate_cap_bps / flow->state.weight <=
          lambda * (1 + kEps) + kEps) {
        rate = flow->state.rate_cap_bps;
        frozen = true;
      } else {
        for (LinkId link : flow->state.path) {
          const LinkBudget& b = budgets[link];
          if (b.weight_sum > 0 &&
              std::max(0.0, b.remaining) / b.weight_sum <=
                  lambda * (1 + kEps) + kEps) {
            frozen = true;
            break;
          }
        }
      }
      if (frozen) {
        flow->state.current_rate_bps = rate;
        for (LinkId link : flow->state.path) {
          LinkBudget& b = budgets[link];
          b.remaining -= rate;
          b.weight_sum -= flow->state.weight;
        }
      } else {
        still_unfrozen.push_back({id, flow});
      }
    }
    // Progress guarantee: at least one flow freezes each round (the one
    // defining lambda). Guard against numerical stalls anyway.
    if (still_unfrozen.size() == unfrozen.size()) {
      for (auto& [id, flow] : still_unfrozen) {
        flow->state.current_rate_bps = flow->state.weight * lambda;
      }
      still_unfrozen.clear();
    }
    unfrozen.swap(still_unfrozen);
  }

  // Record allocations and reschedule completions.
  SimTime now = queue_.now();
  for (auto& [id, flow] : flows_) {
    for (LinkId link : flow.state.path) {
      link_allocated_bps_[link] += flow.state.current_rate_bps;
    }
    queue_.Cancel(flow.completion_event);
    flow.completion_event = EventHandle();
    if (!std::isfinite(flow.state.bytes_total)) {
      continue;  // persistent
    }
    if (flow.state.bytes_left <= 0) {
      FlowId fid = id;
      flow.completion_event =
          queue_.ScheduleAt(now, [this, fid] { HandleCompletion(fid); });
      continue;
    }
    if (flow.state.current_rate_bps <= 0) {
      continue;  // stalled (zero cap); waits for a cap change
    }
    double seconds = flow.state.bytes_left * 8.0 / flow.state.current_rate_bps;
    FlowId fid = id;
    flow.completion_event = queue_.ScheduleAfter(
        SimDuration::Seconds(seconds), [this, fid] { HandleCompletion(fid); });
  }
}

void FlowSim::HandleCompletion(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) {
    return;
  }
  SettleProgress();
  // The scheduled finish is exact in the fluid model; clamp residue.
  bytes_delivered_ += it->second.state.bytes_total;
  CompletionFn on_complete = std::move(it->second.on_complete);
  flows_.erase(it);
  Reallocate();
  if (on_complete) {
    on_complete(id, queue_.now());
  }
}

}  // namespace tenantnet
