// Data-parallel executor for the fluid flow simulator.
//
// The topology's connected components are data-independent by construction:
// a flow's path never crosses a component boundary, so per-component flow
// state, link budgets, and completion events never interact. ShardExecutor
// exploits exactly that partition. Components are assigned to S shards by a
// deterministic rule (component c -> shard c mod S); each shard owns a
// private EventQueue + FlowSim pair, and virtual time advances in
// barrier-synchronized epochs:
//
//   1. Pick epoch_end = min(deadline, t_next + quantum, next control event),
//      where t_next is the earliest pending event across every queue. The
//      control queue (timers, workload arrivals, fault schedules) bounds the
//      epoch, so control events only ever fire *at* an epoch boundary, when
//      every shard clock agrees.
//   2. Advance all shard queues to epoch_end in parallel (a worker pool
//      claims shards off an atomic counter). Data-plane events fire on
//      worker threads; user-facing callbacks (completions, aborts) are NOT
//      invoked there — they are appended to a shard-local outbox.
//   3. Barrier. On the main thread, drain outboxes in ascending shard
//      order (each preserves its shard's FIFO firing order), then run
//      control events due at epoch_end. Both run inside one executor-wide
//      BatchScope, so a burst of flow starts/cancels triggered by callbacks
//      coalesces into a single reallocation per touched shard — and the
//      closing EndBatch fans those per-shard reallocations back out to the
//      worker pool.
//
// Determinism: the shard assignment, per-shard event order, outbox drain
// order, and epoch schedule depend only on the topology and the call
// sequence — never on thread count or OS scheduling. Worker threads only
// decide *which core* runs a shard's (sequential) epoch, not any ordering.
// Results are therefore byte-identical for any num_threads, and the
// differential test (tests/shard_executor_test.cc) asserts exactly that.
//
// Threading contract: every public method below must be called from the
// driving (main) thread. Worker threads touch only their claimed shard's
// queue/sim/outbox; the mutex/condvar epoch handshake provides the
// happens-before edges for everything else (TSan-verified).

#ifndef TENANTNET_SRC_SIM_SHARD_EXECUTOR_H_
#define TENANTNET_SRC_SIM_SHARD_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/sim/event_queue.h"
#include "src/sim/flow_sim.h"
#include "src/sim/flow_surface.h"
#include "src/sim/topology.h"

namespace tenantnet {

class ShardExecutor final : public FlowControlSurface {
 public:
  struct Options {
    // Worker threads advancing shards. 1 = run every shard on the driving
    // thread (no pool); results are identical either way.
    int num_threads = 1;
    // Shard count. 0 = min(component count, 32). Fixed per topology and
    // *independent of num_threads*, so the partition (and thus the result)
    // does not change when the thread count does.
    int num_shards = 0;
    // Upper bound on how far an epoch may outrun the earliest pending
    // event. Smaller = user callbacks observe completion times sooner
    // after they occur; larger = fewer barriers.
    SimDuration epoch_quantum = SimDuration::Millis(1);
  };

  // `control` is the user-facing event queue: workload timers, fault
  // schedules and quota epochs live there and fire only at epoch
  // boundaries. Both references must outlive the executor.
  ShardExecutor(EventQueue& control, const Topology& topology, Options opts);
  ~ShardExecutor() override;

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  // --- Driving ---------------------------------------------------------------
  // Runs data-plane and control events until every queue is drained or past
  // `deadline`; advances all clocks to `deadline` if finite. Replaces
  // EventQueue::RunUntil as the simulation driver. Returns events fired.
  uint64_t RunUntil(SimTime deadline);
  uint64_t RunAll() { return RunUntil(SimTime::Infinite()); }

  SimTime now() const { return control_.now(); }

  size_t shard_count() const { return shards_.size(); }
  int num_threads() const { return opts_.num_threads; }
  const TopologyComponents& components() const { return components_; }
  uint32_t ShardOfLink(LinkId link) const {
    return components_.link_component[Topology::DenseLinkIndex(link)] %
           static_cast<uint32_t>(shards_.size());
  }

  // --- FlowControlSurface ----------------------------------------------------
  FlowId StartFlow(std::vector<LinkId> path, double bytes,
                   CompletionFn on_complete, double weight = 1.0,
                   double rate_cap_bps = std::numeric_limits<double>::infinity(),
                   AbortFn on_abort = AbortFn()) override;
  FlowId StartPersistentFlow(std::vector<LinkId> path, double weight = 1.0,
                             double rate_cap_bps =
                                 std::numeric_limits<double>::infinity(),
                             AbortFn on_abort = AbortFn()) override;
  Status CancelFlow(FlowId id) override;
  Status SetRateCap(FlowId id, double rate_cap_bps) override;
  Result<double> CurrentRate(FlowId id) const override;
  const FlowState* FindFlow(FlowId id) const override;

  Status SetLinkUp(LinkId link, bool up) override;
  bool IsLinkUp(LinkId link) const override;
  size_t stalled_flow_count() const override;
  uint64_t flows_aborted() const override;
  uint64_t flows_blackholed() const override;
  double bytes_blackholed() const override;

  double LinkUtilization(LinkId link) const override;
  SimDuration QueuePenalty(const std::vector<LinkId>& path,
                           SimDuration per_link_base,
                           SimDuration per_link_cap) const override;

  size_t active_flow_count() const override;
  double total_bytes_delivered() const override;
  uint64_t reallocation_count() const override;
  uint64_t flows_rescheduled() const override;

  // Executor-wide batch: forwards to every shard sim, so one scope covers
  // flow starts landing anywhere. The outermost EndBatch runs the per-shard
  // reallocations on the worker pool.
  void BeginBatch() override;
  void EndBatch() override;

  // --- Telemetry -------------------------------------------------------------
  uint64_t epochs_run() const { return epochs_; }
  // Callbacks deferred from worker threads to epoch barriers so far.
  uint64_t callbacks_deferred() const { return callbacks_deferred_; }

 private:
  // A user callback that fired on a worker thread, parked until the epoch
  // barrier. `when` is the simulated firing time inside the epoch.
  struct Deferred {
    FlowId global_id;
    SimTime when;
    std::function<void(FlowId, SimTime)> fn;  // user callback; may be empty
  };

  struct Shard {
    std::unique_ptr<EventQueue> queue;
    std::unique_ptr<FlowSim> sim;
    std::vector<Deferred> outbox;     // filled by its worker, drained on main
    uint64_t fired_this_epoch = 0;
  };

  struct Mapping {
    uint32_t shard;
    FlowId local;
  };

  enum class WorkKind : uint8_t { kAdvance, kEndBatch };

  uint32_t ShardOfPath(const std::vector<LinkId>& path) const;

  // Either invokes a user callback now (main thread, clocks agree) or
  // parks it in `shard`'s outbox for the barrier drain. Always erases the
  // global id's mapping at invocation time.
  void FinishFlow(uint32_t shard, FlowId global_id, SimTime when,
                  const std::function<void(FlowId, SimTime)>& fn);

  // Fans `kind` out to the worker pool (or runs shards in order on the
  // main thread when there is no pool).
  void RunShardJobs(WorkKind kind, SimTime deadline);
  void WorkerLoop();
  void RunOneShard(uint32_t index, WorkKind kind, SimTime deadline);

  // Drains every outbox (ascending shard order, per-shard FIFO) and runs
  // control events due at `epoch_end`, all inside one executor batch.
  uint64_t RunBarrierSection(SimTime epoch_end);

  EventQueue& control_;
  const Topology& topology_;
  Options opts_;
  TopologyComponents components_;
  std::vector<Shard> shards_;

  IdGenerator<FlowId> global_ids_;
  std::unordered_map<FlowId, Mapping> flow_map_;

  uint32_t batch_depth_ = 0;
  bool in_parallel_ = false;  // written on main; read by workers mid-epoch
  uint64_t epochs_ = 0;
  uint64_t callbacks_deferred_ = 0;

  // Worker-pool handshake. Main publishes {work_kind_, work_deadline_,
  // next_shard_=0} and bumps epoch_seq_ under mu_; workers claim shard
  // indices off next_shard_ and report done under mu_. The mutex provides
  // the happens-before for all shard state crossing threads.
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t epoch_seq_ = 0;        // guarded by mu_
  uint32_t workers_done_ = 0;     // guarded by mu_
  bool shutdown_ = false;         // guarded by mu_
  WorkKind work_kind_ = WorkKind::kAdvance;  // published under mu_
  SimTime work_deadline_;                    // published under mu_
  std::atomic<uint32_t> next_shard_{0};
  std::vector<std::thread> workers_;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_SIM_SHARD_EXECUTOR_H_
