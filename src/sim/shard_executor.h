// Data-parallel executor for the fluid flow simulator.
//
// The topology is split by a deterministic region/link-cut partition
// (ComputeLinkCutPartition): S balanced node regions, each owning the links
// that leave its nodes. Unlike the original connected-component sharding,
// flows may cross shard boundaries — a giant WAN-stitched topology (the
// paper's Fig. 1 shape) still parallelizes. Each shard owns a private
// EventQueue + FlowSim pair; a flow is *homed* on the shard owning the
// plurality of its path links (ties to the smallest shard id) and is
// simulated there over its full path.
//
// Cross-shard coupling — several shards' flows sharing one link — is
// resolved by epoch-synchronized capacity leases: before each epoch, every
// link used by flows homed on two or more shards has its capacity split
// between those shards by a per-link weighted water-fill over the shards'
// aggregate demand (flow-weight sums, finite rate-cap sums). Each shard
// sim then water-fills its own flows against its leased share, so the sum
// of independent per-shard allocations never exceeds the real capacity
// (the split is conservative: capacity a shard leaves idle is unavailable
// to others until the next reconciliation). Leases are recomputed on the
// main thread, over dirty links in ascending dense-link order and shards
// in ascending id order, so the schedule is a pure function of the call
// sequence.
//
// Virtual time advances in barrier-synchronized epochs:
//
//   0. If any link's membership/demand changed (flow started/finished/
//      cancelled, cap changed, fault toggled), recompute its lease split
//      inside one executor-wide batch (reallocations fan out to the pool).
//   1. Pick epoch_end = min(deadline, t_next + quantum, next control event),
//      where t_next is the earliest pending event across every queue. The
//      control queue (timers, workload arrivals, fault schedules) bounds the
//      epoch, so control events only ever fire *at* an epoch boundary, when
//      every shard clock agrees.
//   2. Advance all shard queues to epoch_end in parallel (a worker pool
//      claims shards off an atomic counter). Data-plane events fire on
//      worker threads; user-facing callbacks (completions, aborts) are NOT
//      invoked there — they are appended to a shard-local outbox.
//   3. Barrier. On the main thread, drain outboxes in ascending shard
//      order (each preserves its shard's FIFO firing order), then run
//      control events due at epoch_end. Both run inside one executor-wide
//      BatchScope, so a burst of flow starts/cancels triggered by callbacks
//      coalesces into a single reallocation per touched shard — and the
//      closing EndBatch fans those per-shard reallocations back out to the
//      worker pool. Finished crossing flows mark their links dirty here,
//      so freed shared capacity is re-split in the next epoch's step 0.
//
// Determinism: the partition (topology + num_shards + partition_seed, never
// thread count), per-shard event order, outbox drain order, lease
// reconciliation order, and epoch schedule depend only on the topology and
// the call sequence — never on thread count or OS scheduling. Worker
// threads only decide *which core* runs a shard's (sequential) epoch, not
// any ordering. Results are therefore byte-identical for any num_threads,
// and the differential suite (tests/shard_executor_test.cc) asserts exactly
// that on giant-component topologies with crossing flows and border faults.
// Note the sharded fluid solution is *not* byte-identical to the unsharded
// FlowSim when flows cross shards — leases quantize shared capacity per
// epoch — but it is always feasible (no link oversubscribed) and tracks the
// global water-fill as the epoch quantum shrinks.
//
// Threading contract: every public method below must be called from the
// driving (main) thread. Worker threads touch only their claimed shard's
// queue/sim/outbox; the mutex/condvar epoch handshake provides the
// happens-before edges for everything else (TSan-verified).

#ifndef TENANTNET_SRC_SIM_SHARD_EXECUTOR_H_
#define TENANTNET_SRC_SIM_SHARD_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/sim/event_queue.h"
#include "src/sim/flow_sim.h"
#include "src/sim/flow_surface.h"
#include "src/sim/topology.h"

namespace tenantnet {

class ShardExecutor final : public FlowControlSurface {
 public:
  struct Options {
    // Worker threads advancing shards. 1 = run every shard on the driving
    // thread (no pool); results are identical either way.
    int num_threads = 1;
    // Shard count (= link-cut partition parts). 0 = the partitioner
    // target: min(32, max(component count, ceil(nodes / 32))) — a giant
    // single-component topology still gets ceil(nodes/32) shards instead
    // of degenerating to one. Fixed per topology and *independent of
    // num_threads*, so the partition (and thus the result) does not change
    // when the thread count does.
    int num_shards = 0;
    // Deterministic seed for the link-cut partitioner (rotates region
    // growth starts). Same topology + shards + seed => same partition.
    uint64_t partition_seed = 0;
    // Upper bound on how far an epoch may outrun the earliest pending
    // event. Smaller = user callbacks observe completion times sooner and
    // shared-link leases re-split more often; larger = fewer barriers.
    SimDuration epoch_quantum = SimDuration::Millis(1);
  };

  // `control` is the user-facing event queue: workload timers, fault
  // schedules and quota epochs live there and fire only at epoch
  // boundaries. Both references must outlive the executor.
  ShardExecutor(EventQueue& control, const Topology& topology, Options opts);
  ~ShardExecutor() override;

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  // --- Driving ---------------------------------------------------------------
  // Runs data-plane and control events until every queue is drained or past
  // `deadline`; advances all clocks to `deadline` if finite. Replaces
  // EventQueue::RunUntil as the simulation driver. Returns events fired.
  uint64_t RunUntil(SimTime deadline);
  uint64_t RunAll() { return RunUntil(SimTime::Infinite()); }

  SimTime now() const { return control_.now(); }

  size_t shard_count() const { return shards_.size(); }
  int num_threads() const { return opts_.num_threads; }
  const TopologyComponents& components() const { return components_; }
  const LinkCutPartition& partition() const { return partition_; }
  // Shard owning `link`'s capacity bookkeeping (the partition side of its
  // source node). Flows homed elsewhere may still use the link via leases.
  uint32_t ShardOfLink(LinkId link) const {
    return partition_.link_part[Topology::DenseLinkIndex(link)];
  }

  // --- FlowControlSurface ----------------------------------------------------
  FlowId StartFlow(std::vector<LinkId> path, double bytes,
                   CompletionFn on_complete, double weight = 1.0,
                   double rate_cap_bps = std::numeric_limits<double>::infinity(),
                   AbortFn on_abort = AbortFn()) override;
  FlowId StartPersistentFlow(std::vector<LinkId> path, double weight = 1.0,
                             double rate_cap_bps =
                                 std::numeric_limits<double>::infinity(),
                             AbortFn on_abort = AbortFn()) override;
  Status CancelFlow(FlowId id) override;
  Status SetRateCap(FlowId id, double rate_cap_bps) override;
  Result<double> CurrentRate(FlowId id) const override;
  const FlowState* FindFlow(FlowId id) const override;

  // Faults are broadcast: every shard sim mirrors the link state, because
  // flows homed on any shard may cross any link.
  Status SetLinkUp(LinkId link, bool up) override;
  bool IsLinkUp(LinkId link) const override;
  size_t stalled_flow_count() const override;
  uint64_t flows_aborted() const override;
  uint64_t flows_blackholed() const override;
  double bytes_blackholed() const override;

  // True utilization of `link`: allocations summed across every shard sim
  // (fixed shard order) over the topology capacity; 1.0 while down.
  double LinkUtilization(LinkId link) const override;
  SimDuration QueuePenalty(const std::vector<LinkId>& path,
                           SimDuration per_link_base,
                           SimDuration per_link_cap) const override;

  size_t active_flow_count() const override;
  double total_bytes_delivered() const override;
  uint64_t reallocation_count() const override;
  uint64_t flows_rescheduled() const override;

  // Executor-wide batch: forwards to every shard sim, so one scope covers
  // flow starts landing anywhere. The outermost EndBatch runs the per-shard
  // reallocations on the worker pool.
  void BeginBatch() override;
  void EndBatch() override;

  // --- Telemetry -------------------------------------------------------------
  uint64_t epochs_run() const { return epochs_; }
  // Callbacks deferred from worker threads to epoch barriers so far.
  uint64_t callbacks_deferred() const { return callbacks_deferred_; }
  // Lease reconciliation passes (epochs that re-split at least one shared
  // link) and individual per-link splits applied.
  uint64_t lease_reconciliations() const { return lease_reconciliations_; }
  uint64_t leases_applied() const { return leases_applied_; }
  // Links currently used by flows homed on two or more shards.
  size_t shared_link_count() const;
  // Live flows whose path spans links owned by more than one shard.
  size_t crossing_flow_count() const { return crossing_flows_; }

 private:
  // A user callback that fired on a worker thread, parked until the epoch
  // barrier. `when` is the simulated firing time inside the epoch.
  struct Deferred {
    FlowId global_id;
    SimTime when;
    std::function<void(FlowId, SimTime)> fn;  // user callback; may be empty
  };

  struct Shard {
    std::unique_ptr<EventQueue> queue;
    std::unique_ptr<FlowSim> sim;
    std::vector<Deferred> outbox;     // filled by its worker, drained on main
    uint64_t fired_this_epoch = 0;
  };

  struct Mapping {
    uint32_t shard;
    FlowId local;
    bool crossing;        // path spans links owned by >1 shard
    double weight;        // demand bookkeeping for shared-link splits
    double rate_cap_bps;
    std::vector<LinkId> path;
  };

  enum class WorkKind : uint8_t { kAdvance, kEndBatch };

  uint32_t HomeShardOfPath(const std::vector<LinkId>& path,
                           bool* crossing) const;

  // --- Shared-link demand bookkeeping (all main-thread) ---------------------
  // Per (dense link, shard): how many flows homed on `shard` use the link,
  // their weight sum, finite rate-cap sum, and uncapped count. A link with
  // users on >= 2 shards is *shared* and gets capacity leases.
  size_t UseIndex(size_t dense_link, uint32_t shard) const {
    return dense_link * shards_.size() + shard;
  }
  void AddUsage(const Mapping& m);
  void RemoveUsage(const Mapping& m);
  void AdjustCapUsage(const Mapping& m, double old_cap, double new_cap);
  void MarkLinkDirty(size_t dense_link);
  // Re-splits every dirty link's capacity across its using shards inside
  // one executor-wide batch. Main thread, outside any epoch.
  void ReconcileLeases();

  // Either invokes a user callback now (main thread, clocks agree) or
  // parks it in `shard`'s outbox for the barrier drain. Always erases the
  // global id's mapping (and its shared-link usage) at invocation time.
  void FinishFlow(uint32_t shard, FlowId global_id, SimTime when,
                  const std::function<void(FlowId, SimTime)>& fn);

  // Fans `kind` out to the worker pool (or runs shards in order on the
  // main thread when there is no pool).
  void RunShardJobs(WorkKind kind, SimTime deadline);
  void WorkerLoop();
  void RunOneShard(uint32_t index, WorkKind kind, SimTime deadline);

  // Drains every outbox (ascending shard order, per-shard FIFO) and runs
  // control events due at `epoch_end`, all inside one executor batch.
  uint64_t RunBarrierSection(SimTime epoch_end);

  EventQueue& control_;
  const Topology& topology_;
  Options opts_;
  TopologyComponents components_;
  LinkCutPartition partition_;

  std::vector<Shard> shards_;

  IdGenerator<FlowId> global_ids_;
  std::unordered_map<FlowId, Mapping> flow_map_;

  // Dense per-(link, shard) usage arrays (see UseIndex) + per-link state.
  std::vector<uint32_t> use_count_;
  std::vector<double> use_weight_;
  std::vector<double> use_cap_sum_;      // finite rate caps only
  std::vector<uint32_t> use_uncapped_;   // flows with an infinite cap
  std::vector<uint8_t> lease_held_;      // per (link, shard): lease in force
  std::vector<uint8_t> link_up_;         // executor-wide fault view
  std::vector<uint8_t> link_dirty_;
  std::vector<uint32_t> dirty_links_;
  size_t crossing_flows_ = 0;

  // Lease water-fill scratch (reused per link).
  std::vector<uint32_t> split_shards_;
  std::vector<double> split_demand_;
  std::vector<double> split_weight_;
  std::vector<double> split_share_;

  uint32_t batch_depth_ = 0;
  bool in_parallel_ = false;  // written on main; read by workers mid-epoch
  uint64_t epochs_ = 0;
  uint64_t callbacks_deferred_ = 0;
  uint64_t lease_reconciliations_ = 0;
  uint64_t leases_applied_ = 0;

  // Worker-pool handshake. Main publishes {work_kind_, work_deadline_,
  // next_shard_=0} and bumps epoch_seq_ under mu_; workers claim shard
  // indices off next_shard_ and report done under mu_. The mutex provides
  // the happens-before for all shard state crossing threads.
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  uint64_t epoch_seq_ = 0;        // guarded by mu_
  uint32_t workers_done_ = 0;     // guarded by mu_
  bool shutdown_ = false;         // guarded by mu_
  WorkKind work_kind_ = WorkKind::kAdvance;  // published under mu_
  SimTime work_deadline_;                    // published under mu_
  std::atomic<uint32_t> next_shard_{0};
  std::vector<std::thread> workers_;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_SIM_SHARD_EXECUTOR_H_
