// Flow-level (fluid) network simulation.
//
// Active flows share link capacity max-min fairly, with optional per-flow
// rate caps (how egress quotas and VM egress limits act on the data plane)
// and per-flow weights (how weighted SIP load balancing biases sharing).
// Whenever the active set changes, rates are recomputed by water-filling and
// each flow's completion is (re)scheduled on the event queue. This is the
// standard fluid approximation: it captures throughput shares, transfer
// times and congestion crossovers without per-packet cost.
//
// Latency-sensitive callers (request/response traffic) use Topology's
// sampled path delay plus QueuePenalty(), which adds an M/M/1-style
// utilization-dependent term per congested link.

#ifndef TENANTNET_SRC_SIM_FLOW_SIM_H_
#define TENANTNET_SRC_SIM_FLOW_SIM_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/sim/event_queue.h"
#include "src/sim/topology.h"

namespace tenantnet {

using FlowId = TypedId<struct FlowIdTag>;

// A flow in flight.
struct FlowState {
  std::vector<LinkId> path;
  double bytes_total = 0;      // payload size; infinity for persistent flows
  double bytes_left = 0;
  double weight = 1.0;         // max-min weight
  double rate_cap_bps = std::numeric_limits<double>::infinity();
  double current_rate_bps = 0;
  SimTime start_time;
};

class FlowSim {
 public:
  // Both references must outlive the FlowSim.
  FlowSim(EventQueue& queue, const Topology& topology);

  using CompletionFn = std::function<void(FlowId, SimTime finish)>;

  // Starts a finite transfer of `bytes` along `path`. `on_complete` fires
  // when the last byte is delivered. Empty paths complete immediately
  // (same-node transfer).
  FlowId StartFlow(std::vector<LinkId> path, double bytes,
                   CompletionFn on_complete, double weight = 1.0,
                   double rate_cap_bps = std::numeric_limits<double>::infinity());

  // Starts a persistent (infinite-backlog) flow; it runs until CancelFlow.
  FlowId StartPersistentFlow(std::vector<LinkId> path, double weight = 1.0,
                             double rate_cap_bps =
                                 std::numeric_limits<double>::infinity());

  // Stops a flow early (persistent or finite). No completion callback fires.
  Status CancelFlow(FlowId id);

  // Tightens/loosens a live flow's rate cap (quota re-division does this).
  Status SetRateCap(FlowId id, double rate_cap_bps);

  // Current max-min allocation for a live flow, in bits/sec.
  Result<double> CurrentRate(FlowId id) const;

  const FlowState* FindFlow(FlowId id) const;

  // Fraction of `link`'s capacity currently allocated, in [0, 1].
  double LinkUtilization(LinkId link) const;

  // Extra queueing delay a probe sees on `path` right now: per link,
  // base_rtt_fraction * util/(1-util), capped at `cap` per link. A cheap
  // stand-in for queue buildup that makes congested paths visibly slower.
  SimDuration QueuePenalty(const std::vector<LinkId>& path,
                           SimDuration per_link_base,
                           SimDuration per_link_cap) const;

  size_t active_flow_count() const { return flows_.size(); }

  // Total bytes delivered by completed+cancelled+running flows so far.
  double total_bytes_delivered() const { return bytes_delivered_; }

  // Number of water-filling recomputations performed (cost metric).
  uint64_t reallocation_count() const { return reallocations_; }

 private:
  struct LiveFlow {
    FlowState state;
    CompletionFn on_complete;
    EventHandle completion_event;
  };

  // Recomputes all rates and completion events. Called on any change.
  void Reallocate();

  // Advances every live flow's bytes_left to `now` using current rates.
  void SettleProgress();

  void HandleCompletion(FlowId id);

  EventQueue& queue_;
  const Topology& topology_;
  std::unordered_map<FlowId, LiveFlow> flows_;
  std::unordered_map<LinkId, double> link_allocated_bps_;
  IdGenerator<FlowId> flow_ids_;
  SimTime last_settle_;
  double bytes_delivered_ = 0;
  uint64_t reallocations_ = 0;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_SIM_FLOW_SIM_H_
