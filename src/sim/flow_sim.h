// Flow-level (fluid) network simulation.
//
// Active flows share link capacity max-min fairly, with optional per-flow
// rate caps (how egress quotas and VM egress limits act on the data plane)
// and per-flow weights (how weighted SIP load balancing biases sharing).
// When the active set changes, rates are recomputed by water-filling and
// affected flows' completions are (re)scheduled on the event queue. This is
// the standard fluid approximation: it captures throughput shares, transfer
// times and congestion crossovers without per-packet cost.
//
// Reallocation is *bottleneck-structured and incremental*. The water-filler
// is a single-pass level fill: per-link fair-share levels
// (budget_remaining / budget_weight) and per-flow cap levels live in one
// min-heap, and each pop freezes exactly the binding constraint —
// O((F·P + L) log L) for F flows of path length P over L links, instead of
// the old freeze-round loop's O(rounds · F · P). After every fill the sim
// records the classic bottleneck decomposition: each flow's binding
// constraint (own cap, or the first link whose level popped under it) and
// each saturated link's frozen level λ, including the per-link membership
// lists of those bottleneck *groups*. A later single-flow
// arrival / departure / cap-change / weight-change then re-levels only the
// bottleneck groups reachable from the touched path links whose λ actually
// moves — unaffected groups keep their rates bit-for-bit, so a churn event
// costs O(affected groups), not O(congestion component), even when every
// flow shares one trunk. A from-scratch component-scoped fill is kept as
// the differential oracle (SetIncrementalRelevel(false)); the incremental
// path is *bit-identical* to it by construction: both run the same
// canonical fill (members visited in ascending FlowId order, freezes
// applied in ascending (level, kind, id) order, link allocations maintained
// by per-flow deltas in that same order), and the incremental region grows
// until every constraint whose arithmetic could move is inside it.
//
// Per-link budgets and allocations live in dense vectors keyed by the
// topology's contiguous link index (no per-call hash-map churn), flow
// progress is settled lazily per flow, and completion events are
// rescheduled only for flows whose rate actually changed (epsilon compare,
// see level_fill::RateChanged). A BatchUpdate scope (see Batch()) coalesces
// a burst of starts / cancels / cap changes — e.g. a quota re-division
// across hundreds of flows — into a single reallocation pass.
//
// Latency-sensitive callers (request/response traffic) use Topology's
// sampled path delay plus QueuePenalty(), which adds an M/M/1-style
// utilization-dependent term per congested link; both are O(1) per link on
// the dense index.

#ifndef TENANTNET_SRC_SIM_FLOW_SIM_H_
#define TENANTNET_SRC_SIM_FLOW_SIM_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/sim/event_queue.h"
#include "src/sim/flow_surface.h"
#include "src/sim/topology.h"
#include "src/telemetry/metrics.h"

namespace tenantnet {

// `final` so calls through a concrete FlowSim& devirtualize; drivers that
// must run over either executor hold a FlowControlSurface& instead.
class FlowSim final : public FlowControlSurface {
 public:
  // Both references must outlive the FlowSim.
  FlowSim(EventQueue& queue, const Topology& topology);

  // Starts a finite transfer of `bytes` along `path`. `on_complete` fires
  // when the last byte is delivered. Empty paths complete immediately
  // (same-node transfer). If `on_abort` is set, a link fault on the path
  // aborts the flow and fires it; without one the flow stalls at rate 0
  // until the link recovers (a blackhole, counted in the fault telemetry).
  FlowId StartFlow(std::vector<LinkId> path, double bytes,
                   CompletionFn on_complete, double weight = 1.0,
                   double rate_cap_bps = std::numeric_limits<double>::infinity(),
                   AbortFn on_abort = AbortFn()) override;

  // Starts a persistent (infinite-backlog) flow; it runs until CancelFlow.
  // An empty path yields a *tracked zero-link no-op flow*: it consumes no
  // link capacity, reports rate 0 and transfers no bytes, but counts in
  // active_flow_count() and can be cancelled like any other flow.
  FlowId StartPersistentFlow(std::vector<LinkId> path, double weight = 1.0,
                             double rate_cap_bps =
                                 std::numeric_limits<double>::infinity(),
                             AbortFn on_abort = AbortFn()) override;

  // Stops a flow early (persistent or finite). No completion callback fires.
  Status CancelFlow(FlowId id) override;

  // --- Fault injection -------------------------------------------------------
  // Downs (up=false) or restores (up=true) a link's capacity. On a down
  // transition, inside one Batch(): flows crossing the link that carry an
  // abort handler are killed (handlers fire after the batch reallocates, in
  // deterministic path order); flows without one stall at rate 0 — they are
  // blackholed until recovery, when the single batched reallocation restores
  // their rates and reschedules completions. Idempotent per state. This
  // mirrors (but does not read) Topology::SetLinkUp — fault injectors set
  // both so path selection and capacity agree.
  Status SetLinkUp(LinkId link, bool up) override;
  bool IsLinkUp(LinkId link) const override;

  // Flows currently stalled at rate 0 on a downed link (excludes tracked
  // zero-link no-op flows). Zero after every fault has recovered — the
  // "no permanently blackholed flows" invariant the resilience tests check.
  size_t stalled_flow_count() const override;

  // Cumulative fault damage: flows aborted (handler fired) / first-time
  // stalls, and the payload bytes left undelivered at that moment.
  uint64_t flows_aborted() const override { return flows_aborted_; }
  uint64_t flows_blackholed() const override { return flows_blackholed_; }
  double bytes_blackholed() const override { return bytes_blackholed_; }

  // --- Capacity leases (cross-shard shared links) ----------------------------
  // The shard executor splits a link's capacity among the shard sims whose
  // flows use it; each sim then water-fills against its leased share, so
  // the sum of independent per-shard allocations never exceeds the real
  // capacity. A negative value clears the lease (full topology capacity).
  // Honors open batches like every other mutation: inside a Batch() the
  // realloc seeded on the link is deferred to EndBatch. A downed link's
  // effective capacity stays zero regardless of any lease.
  Status SetLinkCapacityLease(LinkId link, double bps);
  // The lease currently in force, or a negative value if none.
  double LinkCapacityLease(LinkId link) const;
  // Raw bits/sec this sim has allocated on `link` (the executor sums this
  // across shards to compute true utilization of a shared link).
  double LinkAllocatedBps(LinkId link) const;

  // Tightens/loosens a live flow's rate cap (quota re-division does this).
  Status SetRateCap(FlowId id, double rate_cap_bps) override;

  // Changes a live flow's max-min weight (e.g. a load balancer re-weighting
  // a backend mid-connection). Weight must be > 0. Like SetRateCap this
  // honors open batches; the flow's whole path is treated as dirty because
  // a weight change moves every fair-share denominator the flow sits in.
  Status SetWeight(FlowId id, double weight);

  // Current max-min allocation for a live flow, in bits/sec. Inside a
  // batch, flows touched since BeginBatch report their pre-batch rate
  // (new flows report 0) until EndBatch reallocates.
  Result<double> CurrentRate(FlowId id) const override;

  const FlowState* FindFlow(FlowId id) const override;

  // Visits every live flow (including tracked zero-link no-op flows) in
  // unspecified order. For oracle fingerprinting and debugging; callers
  // that need a stable order should sort the visited ids.
  void ForEachFlow(
      const std::function<void(FlowId, const FlowState&)>& fn) const;

  // Fraction of `link`'s capacity currently allocated, in [0, 1]. O(1) on
  // the dense link index.
  double LinkUtilization(LinkId link) const override;

  // Extra queueing delay a probe sees on `path` right now: per link,
  // base_rtt_fraction * util/(1-util), capped at `cap` per link. A cheap
  // stand-in for queue buildup that makes congested paths visibly slower.
  SimDuration QueuePenalty(const std::vector<LinkId>& path,
                           SimDuration per_link_base,
                           SimDuration per_link_cap) const override;

  size_t active_flow_count() const override { return flows_.size(); }

  // Total bytes delivered by completed+cancelled+running flows so far.
  double total_bytes_delivered() const override;

  // Number of water-filling recomputations performed (cost metric). Every
  // non-batched start/finish/cancel/cap change counts one; a BatchUpdate
  // scope counts one for the whole burst.
  uint64_t reallocation_count() const override { return reallocations_; }

  // --- Incremental-vs-scratch oracle -----------------------------------------
  // With incremental releveling disabled, every reallocation re-runs the
  // canonical fill over the full congestion component(s) reachable from the
  // touched flows/links — the from-scratch differential oracle (house
  // pattern: ConvergeFull / PropagateRoutesFull). The incremental path must
  // be *byte-identical* to it: same rates, same link allocations, same
  // completion (re)scheduling — the waterfill fuzz suite replays identical
  // scripts through both modes and compares fingerprints bit-for-bit.
  void SetIncrementalRelevel(bool enabled) { incremental_ = enabled; }
  bool incremental_relevel() const { return incremental_; }

  // --- BatchUpdate -----------------------------------------------------------
  // Coalesces a burst of starts/cancels/cap changes into one reallocation.
  // While the scope is open, mutations update flow/link state but defer
  // water-filling; the destructor (or EndBatch) runs a single scoped pass
  // over the union of touched bottleneck groups. Scopes nest; the outermost
  // one reallocates. Do not run the event queue while a batch is open.
  // (BatchScope / Batch() are inherited from FlowControlSurface.)
  void BeginBatch() override { ++batch_depth_; }
  void EndBatch() override;
  // True if the open batch has accumulated work that the outermost
  // EndBatch will reallocate. Lets the shard executor skip its worker-pool
  // dispatch on epochs where no shard touched anything.
  bool has_pending_batch_work() const {
    return !pending_flows_.empty() || !pending_links_.empty() ||
           !pending_shrunk_links_.empty();
  }

  // --- Telemetry -------------------------------------------------------------
  // Completion events actually (re)scheduled; flows whose rate survived a
  // reallocation unchanged keep their event and are not counted.
  uint64_t flows_rescheduled() const override { return flows_rescheduled_; }
  // Flows whose rate was recomputed per reallocation pass (the incremental
  // path counts only the re-leveled groups; the scratch oracle counts the
  // whole component).
  const Histogram& component_size_histogram() const {
    return component_size_hist_;
  }
  double mean_flows_touched_per_realloc() const {
    return component_size_hist_.mean();
  }
  // Wall-clock cost of each reallocation pass, in microseconds
  // (observability only; never feeds back into simulated time).
  const Histogram& realloc_micros_histogram() const {
    return realloc_micros_hist_;
  }
  // Bottleneck structure per reallocation: how many link levels froze in
  // the final fill pass (the depth of the bottleneck decomposition the
  // event had to rebuild) ...
  const Histogram& fill_levels_histogram() const { return fill_levels_hist_; }
  // ... and how many previously-frozen bottleneck groups the incremental
  // region pulled in for re-leveling (0 for events that landed on
  // unsaturated links).
  const Histogram& groups_releveled_histogram() const {
    return groups_releveled_hist_;
  }
  // Fill passes actually executed (>= reallocation_count(); region growth
  // and external-rebind aborts re-run the pass) and how many of those were
  // restarts. A high restart share means churn keeps straddling group
  // boundaries — the fallback-to-full heuristic territory.
  uint64_t fill_passes() const { return fill_passes_; }
  uint64_t fill_restarts() const { return fill_restarts_; }
  // Reallocations that ran the full component-scoped fill: all of them in
  // oracle mode, only region-growth fallbacks in incremental mode.
  uint64_t full_fills() const { return full_fills_; }

 private:
  // How a flow's rate was last determined (the bottleneck decomposition).
  enum BindKind : uint8_t {
    kBindFree = 0,  // no finite constraint anywhere: effectively unbounded
    kBindCap = 1,   // own rate cap froze first
    kBindLink = 2,  // a saturated link's level λ froze first
  };

  struct LiveFlow {
    FlowState state;
    CompletionFn on_complete;
    AbortFn on_abort;
    EventHandle completion_event;
    SimTime last_settle;        // progress integrated up to here
    bool blackhole_counted = false;  // first stall/abort already tallied
    // Position of this flow's entry in link_members_[dense(path[i])], kept
    // in lockstep by swap-erase so removal is O(path).
    std::vector<uint32_t> member_pos;

    // --- Persistent bottleneck record (valid after every fill) --------------
    uint8_t bind_kind = kBindFree;
    uint32_t bind_link = 0;     // dense index; meaningful when kBindLink
    double bind_level = std::numeric_limits<double>::infinity();
    uint32_t group_pos = 0;     // slot in link_group_[bind_link]

    // --- Fill scratch (meaningful only during a reallocation) ---------------
    uint64_t visit_stamp = 0;      // region/BFS membership (per realloc)
    uint64_t recompute_stamp = 0;  // in the recompute set F (per realloc)
    uint64_t member_stamp = 0;     // collected into the pass (per pass)
    uint64_t frozen_stamp = 0;     // frozen by the current pass
    double pending_rate = 0;       // rate computed by the fill
    uint8_t pend_bind_kind = kBindFree;
    uint32_t pend_bind_link = 0;
    double pend_bind_level = 0;
  };
  // Reverse index entry: a flow crossing a link, with the index of that
  // link within the flow's own path (disambiguates repeated links).
  struct LinkMember {
    FlowId flow;
    LiveFlow* live;
    uint32_t path_index;
  };
  // One per-flow event of the canonical level fill. The fill's total order
  // over constraints is (level, kind, a, b): kind 0 = flow cap (a = flow
  // id), kind 1 = link level (a = dense link index, b = 0) or the replay
  // of an external flow frozen by that link in the previous decomposition
  // (b = flow id, sorts after the link's own position on ties). Flow
  // events are static within a pass, so they live in one sorted array;
  // link levels are dynamic but non-decreasing, so the fill selects the
  // next constraint by comparing the array cursor against a scan of the
  // live per-slot levels — same selection sequence a global heap would
  // produce, without per-subtraction heap churn.
  struct FillEvent {
    double level;
    uint8_t kind;
    uint64_t a;
    uint64_t b;
    LiveFlow* flow;
    FlowId fid;
  };
  struct FillEventBefore {
    bool operator()(const FillEvent& x, const FillEvent& y) const {
      if (x.level != y.level) return x.level < y.level;
      if (x.kind != y.kind) return x.kind < y.kind;
      if (x.a != y.a) return x.a < y.a;
      return x.b < y.b;
    }
  };

  void EnsureLinkArrays(size_t dense_index);
  void AddFlowToLinks(FlowId id, LiveFlow& flow);
  // Also subtracts the flow's current rate from the per-link allocations
  // (zeroing links it leaves empty) and drops it from its bottleneck group.
  void RemoveFlowFromLinks(FlowId id, LiveFlow& flow);
  void RemoveFromGroup(LiveFlow& flow);

  // Link capacity as the water-filler sees it: zero while down.
  double EffectiveCapacityBps(size_t dense_index) const;

  // Tears a flow down (fault path): settles progress, charges the blackhole
  // counters, and hands back the abort callback to fire once the enclosing
  // batch has reallocated.
  AbortFn AbortFlow(FlowId id);

  // Advances one flow's bytes_left / delivered accounting to now() using
  // its current rate. Called lazily: only when the rate is about to change
  // or the flow's progress is read.
  void SettleFlow(LiveFlow& flow);

  // --- Reallocation ----------------------------------------------------------
  // Entry points. `seed_flows` are live flows whose own constraints changed
  // (start / cap / weight); `capdirty_links` had their effective capacity
  // or membership-weight structure changed (fault toggle, lease, weight
  // change); `shrunk_links` only lost demand (cancel / completion / abort) —
  // they re-level only if they were saturated.
  void Reallocate(const FlowId* seed_flows, size_t seed_flow_count,
                  const size_t* capdirty_links, size_t capdirty_count,
                  const size_t* shrunk_links, size_t shrunk_count);
  void ReallocateOne(FlowId seed);

  // Incremental path: grows the region of links/flows from the seeds until
  // a fill pass commits with every moved constraint inside it.
  void RelevelDelta(const FlowId* seed_flows, size_t seed_flow_count,
                    const size_t* capdirty_links, size_t capdirty_count,
                    const size_t* shrunk_links, size_t shrunk_count);
  // Scratch path: BFS the full congestion component(s) from the seeds and
  // run the canonical fill over everything (oracle + fallback).
  void RefillComponent(const FlowId* seed_flows, size_t seed_flow_count,
                       const size_t* seed_links, size_t seed_link_count);

  // Region bookkeeping shared by both paths.
  void AddRegionLink(size_t dense_index);      // pulls the link's group into F
  void AddRecomputeFlow(FlowId id, LiveFlow* live);

  // One canonical fill pass over the current region / recompute set.
  // Returns false when an external flow must be pulled into the recompute
  // set (grow_* filled); the caller grows and re-runs.
  bool RunFillPass();
  // Post-pass fixpoint probe: returns true (and grows the region) when a
  // recomputed rate moved demand on a link outside the region that was
  // frozen or is now within epsilon of saturation.
  bool GrowFromProbe();
  // Commits pending rates/binds, applies allocation deltas in ascending
  // FlowId order, reschedules completions, updates group lists.
  void CommitFill();

  void HandleCompletion(FlowId id);

  EventQueue& queue_;
  const Topology& topology_;
  std::unordered_map<FlowId, LiveFlow> flows_;
  IdGenerator<FlowId> flow_ids_;
  double bytes_delivered_ = 0;
  uint64_t reallocations_ = 0;
  uint64_t flows_rescheduled_ = 0;
  bool incremental_ = true;

  // Dense per-link state, indexed by Topology::DenseLinkIndex.
  std::vector<std::vector<LinkMember>> link_members_;
  std::vector<double> link_allocated_bps_;
  std::vector<uint64_t> link_stamp_;  // region/BFS inclusion marker
  std::vector<uint32_t> link_slot_;   // dense index -> region slot
  std::vector<uint8_t> link_down_;    // fault overlay (1 = down)
  std::vector<double> link_lease_;    // capacity lease; negative = none
  // Persistent bottleneck decomposition: frozen level per saturated link
  // and the flows leveled there (the bottleneck group).
  std::vector<uint8_t> link_frozen_;
  std::vector<double> link_lambda_;
  std::vector<std::vector<LinkMember>> link_group_;

  uint64_t flows_aborted_ = 0;
  uint64_t flows_blackholed_ = 0;
  double bytes_blackholed_ = 0;

  // Region / fill scratch (reused; allocation-free in steady state).
  uint64_t stamp_ = 0;         // region + recompute-set marker (per realloc)
  uint64_t pass_stamp_ = 0;    // member/frozen marker (per pass)
  uint64_t probe_stamp_ = 0;   // probe accumulator marker
  std::vector<size_t> region_links_;
  std::vector<std::pair<FlowId, LiveFlow*>> recompute_flows_;  // the F set
  struct Slot {  // per-region-link fill state, one cache line per pair
    double slack;
    double wsum;
    double lambda;
    uint8_t frozen;
  };
  std::vector<Slot> slots_;
  std::vector<FillEvent> fill_events_;  // sorted static per-flow events
  std::vector<uint64_t> link_probe_stamp_;
  std::vector<double> link_probe_delta_;
  std::vector<size_t> probe_links_;
  std::vector<size_t> seed_links_scratch_;
  std::vector<size_t> merged_links_scratch_;
  std::vector<FlowId> fallback_flows_scratch_;
  uint32_t fill_link_freezes_ = 0;  // validated link pops, final pass

  // Batch state.
  uint32_t batch_depth_ = 0;
  std::vector<FlowId> pending_flows_;
  std::vector<size_t> pending_links_;         // capacity/structure dirty
  std::vector<size_t> pending_shrunk_links_;  // demand-only shrink

  Histogram component_size_hist_;
  Histogram realloc_micros_hist_;
  Histogram fill_levels_hist_;
  Histogram groups_releveled_hist_;
  uint64_t fill_passes_ = 0;
  uint64_t fill_restarts_ = 0;
  uint64_t full_fills_ = 0;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_SIM_FLOW_SIM_H_
