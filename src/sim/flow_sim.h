// Flow-level (fluid) network simulation.
//
// Active flows share link capacity max-min fairly, with optional per-flow
// rate caps (how egress quotas and VM egress limits act on the data plane)
// and per-flow weights (how weighted SIP load balancing biases sharing).
// When the active set changes, rates are recomputed by water-filling and
// affected flows' completions are (re)scheduled on the event queue. This is
// the standard fluid approximation: it captures throughput shares, transfer
// times and congestion crossovers without per-packet cost.
//
// Reallocation is *incremental and component-scoped*: flows that
// transitively share links form a congestion component, and any start /
// finish / cancel / cap change re-runs water-filling only over the affected
// component. Disjoint components keep their rates and completion events
// untouched, so a churn event costs O(component) rather than O(all flows).
// Per-link budgets and allocations live in dense vectors keyed by the
// topology's contiguous link index (no per-call hash-map churn), flow
// progress is settled lazily per flow, and completion events are
// rescheduled only for flows whose rate actually changed (epsilon compare).
// A BatchUpdate scope (see Batch()) coalesces a burst of starts / cancels /
// cap changes — e.g. a quota re-division across hundreds of flows — into a
// single reallocation pass.
//
// Latency-sensitive callers (request/response traffic) use Topology's
// sampled path delay plus QueuePenalty(), which adds an M/M/1-style
// utilization-dependent term per congested link; both are O(1) per link on
// the dense index.

#ifndef TENANTNET_SRC_SIM_FLOW_SIM_H_
#define TENANTNET_SRC_SIM_FLOW_SIM_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/sim/event_queue.h"
#include "src/sim/flow_surface.h"
#include "src/sim/topology.h"
#include "src/telemetry/metrics.h"

namespace tenantnet {

// `final` so calls through a concrete FlowSim& devirtualize; drivers that
// must run over either executor hold a FlowControlSurface& instead.
class FlowSim final : public FlowControlSurface {
 public:
  // Both references must outlive the FlowSim.
  FlowSim(EventQueue& queue, const Topology& topology);

  // Starts a finite transfer of `bytes` along `path`. `on_complete` fires
  // when the last byte is delivered. Empty paths complete immediately
  // (same-node transfer). If `on_abort` is set, a link fault on the path
  // aborts the flow and fires it; without one the flow stalls at rate 0
  // until the link recovers (a blackhole, counted in the fault telemetry).
  FlowId StartFlow(std::vector<LinkId> path, double bytes,
                   CompletionFn on_complete, double weight = 1.0,
                   double rate_cap_bps = std::numeric_limits<double>::infinity(),
                   AbortFn on_abort = AbortFn()) override;

  // Starts a persistent (infinite-backlog) flow; it runs until CancelFlow.
  // An empty path yields a *tracked zero-link no-op flow*: it consumes no
  // link capacity, reports rate 0 and transfers no bytes, but counts in
  // active_flow_count() and can be cancelled like any other flow.
  FlowId StartPersistentFlow(std::vector<LinkId> path, double weight = 1.0,
                             double rate_cap_bps =
                                 std::numeric_limits<double>::infinity(),
                             AbortFn on_abort = AbortFn()) override;

  // Stops a flow early (persistent or finite). No completion callback fires.
  Status CancelFlow(FlowId id) override;

  // --- Fault injection -------------------------------------------------------
  // Downs (up=false) or restores (up=true) a link's capacity. On a down
  // transition, inside one Batch(): flows crossing the link that carry an
  // abort handler are killed (handlers fire after the batch reallocates, in
  // deterministic path order); flows without one stall at rate 0 — they are
  // blackholed until recovery, when the single batched reallocation restores
  // their rates and reschedules completions. Idempotent per state. This
  // mirrors (but does not read) Topology::SetLinkUp — fault injectors set
  // both so path selection and capacity agree.
  Status SetLinkUp(LinkId link, bool up) override;
  bool IsLinkUp(LinkId link) const override;

  // Flows currently stalled at rate 0 on a downed link (excludes tracked
  // zero-link no-op flows). Zero after every fault has recovered — the
  // "no permanently blackholed flows" invariant the resilience tests check.
  size_t stalled_flow_count() const override;

  // Cumulative fault damage: flows aborted (handler fired) / first-time
  // stalls, and the payload bytes left undelivered at that moment.
  uint64_t flows_aborted() const override { return flows_aborted_; }
  uint64_t flows_blackholed() const override { return flows_blackholed_; }
  double bytes_blackholed() const override { return bytes_blackholed_; }

  // --- Capacity leases (cross-shard shared links) ----------------------------
  // The shard executor splits a link's capacity among the shard sims whose
  // flows use it; each sim then water-fills against its leased share, so
  // the sum of independent per-shard allocations never exceeds the real
  // capacity. A negative value clears the lease (full topology capacity).
  // Honors open batches like every other mutation: inside a Batch() the
  // realloc seeded on the link is deferred to EndBatch. A downed link's
  // effective capacity stays zero regardless of any lease.
  Status SetLinkCapacityLease(LinkId link, double bps);
  // The lease currently in force, or a negative value if none.
  double LinkCapacityLease(LinkId link) const;
  // Raw bits/sec this sim has allocated on `link` (the executor sums this
  // across shards to compute true utilization of a shared link).
  double LinkAllocatedBps(LinkId link) const;

  // Tightens/loosens a live flow's rate cap (quota re-division does this).
  Status SetRateCap(FlowId id, double rate_cap_bps) override;

  // Current max-min allocation for a live flow, in bits/sec. Inside a
  // batch, flows touched since BeginBatch report their pre-batch rate
  // (new flows report 0) until EndBatch reallocates.
  Result<double> CurrentRate(FlowId id) const override;

  const FlowState* FindFlow(FlowId id) const override;

  // Fraction of `link`'s capacity currently allocated, in [0, 1]. O(1) on
  // the dense link index.
  double LinkUtilization(LinkId link) const override;

  // Extra queueing delay a probe sees on `path` right now: per link,
  // base_rtt_fraction * util/(1-util), capped at `cap` per link. A cheap
  // stand-in for queue buildup that makes congested paths visibly slower.
  SimDuration QueuePenalty(const std::vector<LinkId>& path,
                           SimDuration per_link_base,
                           SimDuration per_link_cap) const override;

  size_t active_flow_count() const override { return flows_.size(); }

  // Total bytes delivered by completed+cancelled+running flows so far.
  double total_bytes_delivered() const override;

  // Number of water-filling recomputations performed (cost metric). Every
  // non-batched start/finish/cancel/cap change counts one; a BatchUpdate
  // scope counts one for the whole burst.
  uint64_t reallocation_count() const override { return reallocations_; }

  // --- BatchUpdate -----------------------------------------------------------
  // Coalesces a burst of starts/cancels/cap changes into one reallocation.
  // While the scope is open, mutations update flow/link state but defer
  // water-filling; the destructor (or EndBatch) runs a single scoped pass
  // over the union of touched components. Scopes nest; the outermost one
  // reallocates. Do not run the event queue while a batch is open.
  // (BatchScope / Batch() are inherited from FlowControlSurface.)
  void BeginBatch() override { ++batch_depth_; }
  void EndBatch() override;
  // True if the open batch has accumulated work that the outermost
  // EndBatch will reallocate. Lets the shard executor skip its worker-pool
  // dispatch on epochs where no shard touched anything.
  bool has_pending_batch_work() const {
    return !pending_flows_.empty() || !pending_links_.empty();
  }

  // --- Telemetry -------------------------------------------------------------
  // Completion events actually (re)scheduled; flows whose rate survived a
  // reallocation unchanged keep their event and are not counted.
  uint64_t flows_rescheduled() const override { return flows_rescheduled_; }
  // Flows touched per reallocation pass (mean == mean component size).
  const Histogram& component_size_histogram() const {
    return component_size_hist_;
  }
  double mean_flows_touched_per_realloc() const {
    return component_size_hist_.mean();
  }
  // Wall-clock cost of each reallocation pass, in microseconds
  // (observability only; never feeds back into simulated time).
  const Histogram& realloc_micros_histogram() const {
    return realloc_micros_hist_;
  }

 private:
  struct LiveFlow {
    FlowState state;
    CompletionFn on_complete;
    AbortFn on_abort;
    EventHandle completion_event;
    SimTime last_settle;        // progress integrated up to here
    uint64_t visit_stamp = 0;   // component-BFS marker
    double pending_rate = 0;    // scratch: rate computed by water-filling
    bool blackhole_counted = false;  // first stall/abort already tallied
    // Position of this flow's entry in link_members_[dense(path[i])], kept
    // in lockstep by swap-erase so removal is O(path).
    std::vector<uint32_t> member_pos;
  };
  // Reverse index entry: a flow crossing a link, with the index of that
  // link within the flow's own path (disambiguates repeated links).
  struct LinkMember {
    FlowId flow;
    LiveFlow* live;
    uint32_t path_index;
  };

  void EnsureLinkArrays(size_t dense_index);
  void AddFlowToLinks(FlowId id, LiveFlow& flow);
  void RemoveFlowFromLinks(FlowId id, LiveFlow& flow);

  // Link capacity as the water-filler sees it: zero while down.
  double EffectiveCapacityBps(size_t dense_index) const;

  // Tears a flow down (fault path): settles progress, charges the blackhole
  // counters, and hands back the abort callback to fire once the enclosing
  // batch has reallocated.
  AbortFn AbortFlow(FlowId id);

  // Advances one flow's bytes_left / delivered accounting to now() using
  // its current rate. Called lazily: only when the rate is about to change
  // or the flow's progress is read.
  void SettleFlow(LiveFlow& flow);

  // Collects the congestion component(s) reachable from the seed flows and
  // links, re-runs water-filling over exactly those flows, and reschedules
  // completions for flows whose rate changed.
  void ReallocateScoped(const FlowId* seed_flows, size_t seed_flow_count,
                        const size_t* seed_links, size_t seed_link_count);
  void ReallocateOne(FlowId seed);

  void HandleCompletion(FlowId id);

  EventQueue& queue_;
  const Topology& topology_;
  std::unordered_map<FlowId, LiveFlow> flows_;
  IdGenerator<FlowId> flow_ids_;
  double bytes_delivered_ = 0;
  uint64_t reallocations_ = 0;
  uint64_t flows_rescheduled_ = 0;

  // Dense per-link state, indexed by Topology::DenseLinkIndex.
  std::vector<std::vector<LinkMember>> link_members_;
  std::vector<double> link_allocated_bps_;
  std::vector<uint64_t> link_stamp_;  // BFS inclusion marker
  std::vector<uint32_t> link_slot_;   // dense index -> component slot
  std::vector<uint8_t> link_down_;    // fault overlay (1 = down)
  std::vector<double> link_lease_;    // capacity lease; negative = none

  uint64_t flows_aborted_ = 0;
  uint64_t flows_blackholed_ = 0;
  double bytes_blackholed_ = 0;

  // Component-BFS / water-filling scratch (reused; allocation-free in
  // steady state).
  uint64_t stamp_ = 0;
  std::vector<std::pair<FlowId, LiveFlow*>> comp_flows_;
  std::vector<size_t> comp_links_;
  std::vector<double> budget_remaining_;
  std::vector<double> budget_weight_;
  std::vector<std::pair<FlowId, LiveFlow*>> unfrozen_;
  std::vector<std::pair<FlowId, LiveFlow*>> still_unfrozen_;
  std::vector<size_t> seed_links_scratch_;

  // Batch state.
  uint32_t batch_depth_ = 0;
  std::vector<FlowId> pending_flows_;
  std::vector<size_t> pending_links_;

  Histogram component_size_hist_;
  Histogram realloc_micros_hist_;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_SIM_FLOW_SIM_H_
