// Shared water-filling level primitives.
//
// Both fair-share allocators in the simulator — FlowSim's bottleneck-
// structured water-filler and ShardExecutor's per-link capacity-lease
// split — rise a common "fair level" until a constraint binds. They must
// agree on the epsilon discipline (when a demand counts as binding at a
// level) or a flow capped just under its fair share would oscillate
// between the two layers. This header is the single home for that
// discipline: the kEps/kRateEps constants, the RateChanged predicate used
// to decide whether a completion event needs rescheduling, and the
// single-resource weighted max-min split the lease reconciler runs per
// shared link.

#ifndef TENANTNET_SRC_SIM_LEVEL_FILL_H_
#define TENANTNET_SRC_SIM_LEVEL_FILL_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace tenantnet {
namespace level_fill {

// Relative tolerance for "this demand binds at the current level". Shared
// by FlowSim's scoped fill and ShardExecutor's lease split so a borderline
// constraint freezes identically in both layers.
constexpr double kEps = 1e-9;

// Relative rate-change threshold below which a completion event is kept:
// with an unchanged rate the previously predicted finish time is still
// exact, so rescheduling would be pure queue churn.
constexpr double kRateEps = 1e-9;

inline bool RateChanged(double old_rate, double new_rate) {
  double scale = std::max({1.0, std::abs(old_rate), std::abs(new_rate)});
  return std::abs(new_rate - old_rate) > kRateEps * scale;
}

// Weighted max-min split of one resource across n parties.
//
// Party i demands `demand[i]` (may be +infinity for "as much as possible")
// with weight `weight[i]`; `share` receives the allocation. The fair level
// rises uniformly; a party whose demand falls within (1 + kEps) of
// level * weight freezes at exactly its demand, everyone left when no
// demand binds gets level * weight. Conservative by construction: shares
// sum to <= capacity (modulo the same kEps discipline as the flow
// water-filler). Deterministic: a pure function of (capacity, demand,
// weight) — iteration is by ascending party index, so callers that need
// reproducible bits across runs/threads only have to present parties in a
// canonical order.
inline void WeightedMaxMinSplit(double capacity,
                                const std::vector<double>& demand,
                                const std::vector<double>& weight,
                                std::vector<double>& share) {
  size_t parties = demand.size();
  share.assign(parties, -1.0);  // unassigned
  double remaining = capacity;
  size_t unfrozen = parties;
  while (unfrozen > 0) {
    double weight_sum = 0;
    for (size_t i = 0; i < parties; ++i) {
      if (share[i] < 0) {
        weight_sum += weight[i];
      }
    }
    if (weight_sum <= 0) {
      for (size_t i = 0; i < parties; ++i) {
        if (share[i] < 0) {
          share[i] = 0.0;
        }
      }
      break;
    }
    double level = std::max(0.0, remaining) / weight_sum;
    size_t froze = 0;
    for (size_t i = 0; i < parties; ++i) {
      if (share[i] < 0 && demand[i] <= level * weight[i] * (1 + kEps)) {
        share[i] = demand[i];
        remaining -= demand[i];
        ++froze;
      }
    }
    if (froze == 0) {
      for (size_t i = 0; i < parties; ++i) {
        if (share[i] < 0) {
          share[i] = level * weight[i];
        }
      }
      break;
    }
    unfrozen -= froze;
  }
}

}  // namespace level_fill
}  // namespace tenantnet

#endif  // TENANTNET_SRC_SIM_LEVEL_FILL_H_
