#include "src/sim/shard_executor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace tenantnet {

ShardExecutor::ShardExecutor(EventQueue& control, const Topology& topology,
                             Options opts)
    : control_(control),
      topology_(topology),
      opts_(opts),
      components_(ComputeTopologyComponents(topology)) {
  int shard_count = opts_.num_shards;
  if (shard_count <= 0) {
    shard_count = static_cast<int>(
        std::min<uint32_t>(std::max<uint32_t>(components_.count, 1), 32));
  }
  shards_.reserve(static_cast<size_t>(shard_count));
  for (int i = 0; i < shard_count; ++i) {
    Shard shard;
    shard.queue = std::make_unique<EventQueue>();
    shard.sim = std::make_unique<FlowSim>(*shard.queue, topology_);
    shards_.push_back(std::move(shard));
  }
  // More threads than shards would never find work; don't spawn them.
  int threads = std::min(opts_.num_threads, static_cast<int>(shards_.size()));
  if (threads > 1) {
    workers_.reserve(static_cast<size_t>(threads));
    for (int i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
}

ShardExecutor::~ShardExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

uint32_t ShardExecutor::ShardOfPath(const std::vector<LinkId>& path) const {
  if (path.empty()) {
    return 0;  // zero-link flows touch no shared state; park them on shard 0
  }
  uint32_t shard = ShardOfLink(path[0]);
#ifndef NDEBUG
  for (LinkId link : path) {
    assert(ShardOfLink(link) == shard &&
           "flow path crosses a component boundary");
  }
#endif
  return shard;
}

// --- FlowControlSurface: flow lifecycle --------------------------------------

FlowId ShardExecutor::StartFlow(std::vector<LinkId> path, double bytes,
                                CompletionFn on_complete, double weight,
                                double rate_cap_bps, AbortFn on_abort) {
  uint32_t shard = ShardOfPath(path);
  FlowId global_id = global_ids_.Next();
  // Finite flows always get a completion wrapper (even with a null user
  // callback) so the global id mapping is reclaimed when they finish.
  CompletionFn wrapped_complete;
  if (std::isfinite(bytes)) {
    wrapped_complete = [this, shard, global_id,
                        user = std::move(on_complete)](FlowId, SimTime when) {
      FinishFlow(shard, global_id, when, user);
    };
  }
  // The abort wrapper is installed only when the caller supplied one:
  // FlowSim discriminates stall-vs-abort on the handler's presence, and an
  // unconditional wrapper would turn every blackhole into an abort.
  AbortFn wrapped_abort;
  if (on_abort) {
    wrapped_abort = [this, shard, global_id,
                     user = std::move(on_abort)](FlowId, SimTime when) {
      FinishFlow(shard, global_id, when, user);
    };
  }
  FlowId local = shards_[shard].sim->StartFlow(
      std::move(path), bytes, std::move(wrapped_complete), weight,
      rate_cap_bps, std::move(wrapped_abort));
  flow_map_.emplace(global_id, Mapping{shard, local});
  return global_id;
}

FlowId ShardExecutor::StartPersistentFlow(std::vector<LinkId> path,
                                          double weight, double rate_cap_bps,
                                          AbortFn on_abort) {
  return StartFlow(std::move(path), std::numeric_limits<double>::infinity(),
                   CompletionFn(), weight, rate_cap_bps, std::move(on_abort));
}

void ShardExecutor::FinishFlow(uint32_t shard, FlowId global_id, SimTime when,
                               const std::function<void(FlowId, SimTime)>& fn) {
  if (in_parallel_) {
    // Worker thread: park for the barrier drain. Only this shard's worker
    // appends here, so per-shard FIFO order is the shard's firing order.
    shards_[shard].outbox.push_back(Deferred{global_id, when, fn});
    return;
  }
  flow_map_.erase(global_id);
  if (fn) {
    fn(global_id, when);
  }
}

Status ShardExecutor::CancelFlow(FlowId id) {
  auto it = flow_map_.find(id);
  if (it == flow_map_.end()) {
    return NotFoundError("no such flow");
  }
  Mapping m = it->second;
  Status status = shards_[m.shard].sim->CancelFlow(m.local);
  if (status.ok()) {
    flow_map_.erase(id);
  }
  // A not-found from the shard sim means the flow already finished (e.g.
  // its completion is parked in an outbox); the drain reclaims the mapping.
  return status;
}

Status ShardExecutor::SetRateCap(FlowId id, double rate_cap_bps) {
  auto it = flow_map_.find(id);
  if (it == flow_map_.end()) {
    return NotFoundError("no such flow");
  }
  return shards_[it->second.shard].sim->SetRateCap(it->second.local,
                                                   rate_cap_bps);
}

Result<double> ShardExecutor::CurrentRate(FlowId id) const {
  auto it = flow_map_.find(id);
  if (it == flow_map_.end()) {
    return NotFoundError("no such flow");
  }
  return shards_[it->second.shard].sim->CurrentRate(it->second.local);
}

const FlowState* ShardExecutor::FindFlow(FlowId id) const {
  auto it = flow_map_.find(id);
  if (it == flow_map_.end()) {
    return nullptr;
  }
  return shards_[it->second.shard].sim->FindFlow(it->second.local);
}

// --- FlowControlSurface: fault surface ---------------------------------------

Status ShardExecutor::SetLinkUp(LinkId link, bool up) {
  if (!link.valid() ||
      Topology::DenseLinkIndex(link) >= topology_.link_count()) {
    return InvalidArgumentError("unknown link id");
  }
  return shards_[ShardOfLink(link)].sim->SetLinkUp(link, up);
}

bool ShardExecutor::IsLinkUp(LinkId link) const {
  if (!link.valid() ||
      Topology::DenseLinkIndex(link) >= topology_.link_count()) {
    return true;
  }
  return shards_[ShardOfLink(link)].sim->IsLinkUp(link);
}

size_t ShardExecutor::stalled_flow_count() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sim->stalled_flow_count();
  }
  return total;
}

uint64_t ShardExecutor::flows_aborted() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sim->flows_aborted();
  }
  return total;
}

uint64_t ShardExecutor::flows_blackholed() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sim->flows_blackholed();
  }
  return total;
}

double ShardExecutor::bytes_blackholed() const {
  // Summed in ascending shard order: float addition is not associative, so
  // a fixed order keeps the aggregate byte-identical across thread counts.
  double total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sim->bytes_blackholed();
  }
  return total;
}

// --- FlowControlSurface: latency + accounting --------------------------------

double ShardExecutor::LinkUtilization(LinkId link) const {
  return shards_[ShardOfLink(link)].sim->LinkUtilization(link);
}

SimDuration ShardExecutor::QueuePenalty(const std::vector<LinkId>& path,
                                        SimDuration per_link_base,
                                        SimDuration per_link_cap) const {
  if (path.empty()) {
    return SimDuration::Zero();
  }
  return shards_[ShardOfPath(path)].sim->QueuePenalty(path, per_link_base,
                                                      per_link_cap);
}

size_t ShardExecutor::active_flow_count() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sim->active_flow_count();
  }
  return total;
}

double ShardExecutor::total_bytes_delivered() const {
  double total = 0;  // fixed shard order (see bytes_blackholed)
  for (const Shard& shard : shards_) {
    total += shard.sim->total_bytes_delivered();
  }
  return total;
}

uint64_t ShardExecutor::reallocation_count() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sim->reallocation_count();
  }
  return total;
}

uint64_t ShardExecutor::flows_rescheduled() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sim->flows_rescheduled();
  }
  return total;
}

// --- Batching ----------------------------------------------------------------

void ShardExecutor::BeginBatch() {
  if (batch_depth_++ == 0) {
    for (Shard& shard : shards_) {
      shard.sim->BeginBatch();
    }
  }
}

void ShardExecutor::EndBatch() {
  assert(batch_depth_ > 0);
  if (--batch_depth_ != 0) {
    return;
  }
  // Per-shard reallocations are independent; fan them out to the pool when
  // more than one shard has real work (each shard's EndBatch is a cheap
  // no-op otherwise). FlowSim::EndBatch never fires user callbacks
  // (completions are scheduled, not invoked), so nothing here can touch
  // main-thread-only state.
  size_t busy_shards = 0;
  for (const Shard& shard : shards_) {
    if (shard.sim->has_pending_batch_work()) {
      ++busy_shards;
    }
  }
  if (busy_shards <= 1) {
    for (Shard& shard : shards_) {
      shard.sim->EndBatch();
    }
    return;
  }
  RunShardJobs(WorkKind::kEndBatch, SimTime());
}

// --- Epoch loop --------------------------------------------------------------

uint64_t ShardExecutor::RunUntil(SimTime deadline) {
  assert(batch_depth_ == 0 && "cannot run the executor inside a batch");
  uint64_t fired = 0;
  for (;;) {
    SimTime shard_next = SimTime::Infinite();
    for (Shard& shard : shards_) {
      SimTime t = shard.queue->NextEventTime();
      if (t < shard_next) {
        shard_next = t;
      }
    }
    SimTime control_next = control_.NextEventTime();
    SimTime t_next = std::min(shard_next, control_next);
    // Stop past the deadline — or when every queue is drained, which the
    // first comparison alone misses for an infinite deadline (RunAll):
    // Infinite > Infinite is false and the loop would spin forever.
    if (t_next > deadline || t_next == SimTime::Infinite()) {
      break;
    }
    // The epoch never outruns the next control event, so control events
    // only ever fire when every shard clock has reached their timestamp.
    SimTime epoch_end = deadline;
    SimTime horizon = t_next + opts_.epoch_quantum;
    if (horizon < epoch_end) {
      epoch_end = horizon;
    }
    if (control_next < epoch_end) {
      epoch_end = control_next;
    }
    ++epochs_;
    in_parallel_ = true;
    RunShardJobs(WorkKind::kAdvance, epoch_end);
    in_parallel_ = false;
    for (Shard& shard : shards_) {
      fired += shard.fired_this_epoch;
    }
    fired += RunBarrierSection(epoch_end);
  }
  if (deadline != SimTime::Infinite()) {
    for (Shard& shard : shards_) {
      shard.queue->AdvanceTo(deadline);
    }
    control_.AdvanceTo(deadline);
  }
  return fired;
}

uint64_t ShardExecutor::RunBarrierSection(SimTime epoch_end) {
  // Clocks first: drained callbacks observe now() == epoch_end everywhere.
  control_.AdvanceTo(epoch_end);
  uint64_t control_fired = 0;
  {
    // One executor-wide batch over the whole barrier section: every flow
    // start/cancel/cap change triggered by drained callbacks or control
    // events coalesces into at most one reallocation per touched shard,
    // fanned back out to the pool by the closing EndBatch.
    BatchScope batch = Batch();
    for (Shard& shard : shards_) {
      // Drain in ascending shard order; each outbox preserves its shard's
      // FIFO firing order. Callbacks run here on the main thread and may
      // start/cancel flows, but cannot append to outboxes (in_parallel_ is
      // off), so indexed iteration is safe.
      callbacks_deferred_ += shard.outbox.size();
      for (size_t i = 0; i < shard.outbox.size(); ++i) {
        Deferred deferred = std::move(shard.outbox[i]);
        flow_map_.erase(deferred.global_id);
        if (deferred.fn) {
          deferred.fn(deferred.global_id, deferred.when);
        }
      }
      shard.outbox.clear();
    }
    control_fired = control_.RunUntil(epoch_end);
  }
  return control_fired;
}

// --- Worker pool -------------------------------------------------------------

void ShardExecutor::RunOneShard(uint32_t index, WorkKind kind,
                                SimTime deadline) {
  Shard& shard = shards_[index];
  if (kind == WorkKind::kAdvance) {
    shard.fired_this_epoch = shard.queue->RunUntil(deadline);
  } else {
    shard.sim->EndBatch();
  }
}

void ShardExecutor::RunShardJobs(WorkKind kind, SimTime deadline) {
  if (workers_.empty() || shards_.size() == 1) {
    for (uint32_t i = 0; i < shards_.size(); ++i) {
      RunOneShard(i, kind, deadline);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    work_kind_ = kind;
    work_deadline_ = deadline;
    next_shard_.store(0, std::memory_order_relaxed);
    workers_done_ = 0;
    ++epoch_seq_;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return workers_done_ == workers_.size(); });
}

void ShardExecutor::WorkerLoop() {
  uint64_t seen_seq = 0;
  for (;;) {
    WorkKind kind;
    SimTime deadline;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || epoch_seq_ != seen_seq; });
      if (shutdown_) {
        return;
      }
      seen_seq = epoch_seq_;
      kind = work_kind_;
      deadline = work_deadline_;
    }
    // Claim shards off the shared counter. The RMW makes claims unique;
    // ordering/visibility of shard state rides on the mu_ handshake.
    for (;;) {
      uint32_t index = next_shard_.fetch_add(1, std::memory_order_relaxed);
      if (index >= shards_.size()) {
        break;
      }
      RunOneShard(index, kind, deadline);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++workers_done_;
      if (workers_done_ == workers_.size()) {
        done_cv_.notify_one();
      }
    }
  }
}

}  // namespace tenantnet
