#include "src/sim/shard_executor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

#include "src/sim/level_fill.h"

namespace tenantnet {

ShardExecutor::ShardExecutor(EventQueue& control, const Topology& topology,
                             Options opts)
    : control_(control),
      topology_(topology),
      opts_(opts),
      components_(ComputeTopologyComponents(topology)) {
  int shard_count = opts_.num_shards;
  if (shard_count <= 0) {
    // Partitioner target: enough parts to keep a worker pool busy even on
    // one giant component (ceil(nodes/32)), never fewer than the natural
    // component parallelism, capped at 32. Independent of num_threads.
    uint32_t by_size =
        static_cast<uint32_t>((topology.node_count() + 31) / 32);
    shard_count = static_cast<int>(std::min<uint32_t>(
        std::max({components_.count, by_size, 1u}), 32));
  }
  partition_ = ComputeLinkCutPartition(
      topology, static_cast<uint32_t>(shard_count), opts_.partition_seed);
  // The partitioner may return fewer parts than asked (tiny topologies);
  // shards_ mirrors the actual part count so every shard owns some nodes.
  shard_count = static_cast<int>(std::max<uint32_t>(partition_.count, 1));
  shards_.reserve(static_cast<size_t>(shard_count));
  for (int i = 0; i < shard_count; ++i) {
    Shard shard;
    shard.queue = std::make_unique<EventQueue>();
    shard.sim = std::make_unique<FlowSim>(*shard.queue, topology_);
    shards_.push_back(std::move(shard));
  }
  size_t slots = topology_.link_count() * shards_.size();
  use_count_.assign(slots, 0);
  use_weight_.assign(slots, 0.0);
  use_cap_sum_.assign(slots, 0.0);
  use_uncapped_.assign(slots, 0);
  lease_held_.assign(slots, 0);
  link_up_.assign(topology_.link_count(), 1);
  link_dirty_.assign(topology_.link_count(), 0);
  // More threads than shards would never find work; don't spawn them.
  int threads = std::min(opts_.num_threads, static_cast<int>(shards_.size()));
  if (threads > 1) {
    workers_.reserve(static_cast<size_t>(threads));
    for (int i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
}

ShardExecutor::~ShardExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

uint32_t ShardExecutor::HomeShardOfPath(const std::vector<LinkId>& path,
                                        bool* crossing) const {
  *crossing = false;
  if (path.empty()) {
    return 0;  // zero-link flows touch no shared state; park them on shard 0
  }
  uint32_t first = ShardOfLink(path[0]);
  if (shards_.size() == 1) {
    return first;
  }
  // Plurality owner of the path's links; ties break on the smallest shard
  // id. Scratch counts are touched-and-reset so the scan stays O(path).
  thread_local std::vector<uint32_t> counts;
  counts.assign(shards_.size(), 0);
  bool multi = false;
  for (LinkId link : path) {
    uint32_t s = ShardOfLink(link);
    ++counts[s];
    multi |= s != first;
  }
  if (!multi) {
    return first;
  }
  *crossing = true;
  uint32_t best = 0;
  for (uint32_t s = 1; s < shards_.size(); ++s) {
    if (counts[s] > counts[best]) {
      best = s;
    }
  }
  return best;
}

// --- Shared-link demand bookkeeping ------------------------------------------

void ShardExecutor::MarkLinkDirty(size_t dense_link) {
  if (dense_link < link_dirty_.size() && !link_dirty_[dense_link]) {
    link_dirty_[dense_link] = 1;
    dirty_links_.push_back(static_cast<uint32_t>(dense_link));
  }
}

void ShardExecutor::AddUsage(const Mapping& m) {
  for (LinkId link : m.path) {
    size_t idx = Topology::DenseLinkIndex(link);
    size_t slot = UseIndex(idx, m.shard);
    ++use_count_[slot];
    use_weight_[slot] += m.weight;
    if (std::isfinite(m.rate_cap_bps)) {
      use_cap_sum_[slot] += m.rate_cap_bps;
    } else {
      ++use_uncapped_[slot];
    }
    MarkLinkDirty(idx);
  }
  if (m.crossing) {
    ++crossing_flows_;
  }
}

void ShardExecutor::RemoveUsage(const Mapping& m) {
  for (LinkId link : m.path) {
    size_t idx = Topology::DenseLinkIndex(link);
    size_t slot = UseIndex(idx, m.shard);
    assert(use_count_[slot] > 0);
    --use_count_[slot];
    use_weight_[slot] -= m.weight;
    if (std::isfinite(m.rate_cap_bps)) {
      use_cap_sum_[slot] -= m.rate_cap_bps;
    } else {
      --use_uncapped_[slot];
    }
    if (use_count_[slot] == 0) {
      // Sweep float residue so a long-lived link's demand never drifts.
      use_weight_[slot] = 0.0;
      use_cap_sum_[slot] = 0.0;
    }
    MarkLinkDirty(idx);
  }
  if (m.crossing) {
    assert(crossing_flows_ > 0);
    --crossing_flows_;
  }
}

void ShardExecutor::AdjustCapUsage(const Mapping& m, double old_cap,
                                   double new_cap) {
  for (LinkId link : m.path) {
    size_t idx = Topology::DenseLinkIndex(link);
    size_t slot = UseIndex(idx, m.shard);
    if (std::isfinite(old_cap)) {
      use_cap_sum_[slot] -= old_cap;
    } else {
      --use_uncapped_[slot];
    }
    if (std::isfinite(new_cap)) {
      use_cap_sum_[slot] += new_cap;
    } else {
      ++use_uncapped_[slot];
    }
    MarkLinkDirty(idx);
  }
}

size_t ShardExecutor::shared_link_count() const {
  size_t shared = 0;
  for (size_t idx = 0; idx < link_up_.size(); ++idx) {
    uint32_t users = 0;
    for (uint32_t s = 0; s < shards_.size(); ++s) {
      users += use_count_[UseIndex(idx, s)] > 0 ? 1 : 0;
    }
    shared += users >= 2 ? 1 : 0;
  }
  return shared;
}

void ShardExecutor::ReconcileLeases() {
  assert(!in_parallel_ && batch_depth_ == 0);
  if (dirty_links_.empty()) {
    return;
  }
  ++lease_reconciliations_;
  // Ascending dense-link order, ascending shard order inside each link:
  // the whole pass is a pure function of the accumulated call sequence.
  std::sort(dirty_links_.begin(), dirty_links_.end());
  BatchScope batch = Batch();
  for (uint32_t idx : dirty_links_) {
    link_dirty_[idx] = 0;
    LinkId link(static_cast<uint64_t>(idx) + 1);
    split_shards_.clear();
    for (uint32_t s = 0; s < shards_.size(); ++s) {
      if (use_count_[UseIndex(idx, s)] > 0) {
        split_shards_.push_back(s);
      }
    }
    if (split_shards_.size() < 2) {
      // Exclusive (or idle) link: every stale lease reverts to the full
      // topology capacity.
      for (uint32_t s = 0; s < shards_.size(); ++s) {
        if (lease_held_[UseIndex(idx, s)]) {
          lease_held_[UseIndex(idx, s)] = 0;
          (void)shards_[s].sim->SetLinkCapacityLease(link, -1.0);
        }
      }
      continue;
    }
    // Weighted max-min split of the link capacity across using shards: a
    // shard's demand is the sum of its flows' finite rate caps (infinite if
    // any flow is uncapped), its weight the sum of their max-min weights.
    // Conservative by construction: shares sum to <= capacity.
    double capacity = topology_.link(link).capacity_bps;
    size_t parties = split_shards_.size();
    split_demand_.resize(parties);
    split_weight_.resize(parties);
    for (size_t i = 0; i < parties; ++i) {
      size_t slot = UseIndex(idx, split_shards_[i]);
      split_weight_[i] = use_weight_[slot];
      split_demand_[i] = use_uncapped_[slot] > 0
                             ? std::numeric_limits<double>::infinity()
                             : use_cap_sum_[slot];
    }
    // Shared level primitive (src/sim/level_fill.h): the same epsilon
    // discipline as FlowSim's water-filler, applied to shard aggregates in
    // ascending shard order — deterministic regardless of thread count.
    level_fill::WeightedMaxMinSplit(capacity, split_demand_, split_weight_,
                                    split_share_);
    for (size_t i = 0; i < parties; ++i) {
      uint32_t s = split_shards_[i];
      lease_held_[UseIndex(idx, s)] = 1;
      ++leases_applied_;
      (void)shards_[s].sim->SetLinkCapacityLease(link, split_share_[i]);
    }
    // Shards that stopped using the link keep no lease.
    size_t party_cursor = 0;
    for (uint32_t s = 0; s < shards_.size(); ++s) {
      if (party_cursor < parties && split_shards_[party_cursor] == s) {
        ++party_cursor;
        continue;
      }
      if (lease_held_[UseIndex(idx, s)]) {
        lease_held_[UseIndex(idx, s)] = 0;
        (void)shards_[s].sim->SetLinkCapacityLease(link, -1.0);
      }
    }
  }
  dirty_links_.clear();
}

// --- FlowControlSurface: flow lifecycle --------------------------------------

FlowId ShardExecutor::StartFlow(std::vector<LinkId> path, double bytes,
                                CompletionFn on_complete, double weight,
                                double rate_cap_bps, AbortFn on_abort) {
  bool crossing = false;
  uint32_t shard = HomeShardOfPath(path, &crossing);
  FlowId global_id = global_ids_.Next();
  // Finite flows always get a completion wrapper (even with a null user
  // callback) so the global id mapping is reclaimed when they finish.
  CompletionFn wrapped_complete;
  if (std::isfinite(bytes)) {
    wrapped_complete = [this, shard, global_id,
                        user = std::move(on_complete)](FlowId, SimTime when) {
      FinishFlow(shard, global_id, when, user);
    };
  }
  // The abort wrapper is installed only when the caller supplied one:
  // FlowSim discriminates stall-vs-abort on the handler's presence, and an
  // unconditional wrapper would turn every blackhole into an abort.
  AbortFn wrapped_abort;
  if (on_abort) {
    wrapped_abort = [this, shard, global_id,
                     user = std::move(on_abort)](FlowId, SimTime when) {
      FinishFlow(shard, global_id, when, user);
    };
  }
  Mapping m;
  m.shard = shard;
  m.crossing = crossing;
  m.weight = weight;
  m.rate_cap_bps = rate_cap_bps;
  m.path = path;  // copy: the shard sim consumes the original
  m.local = shards_[shard].sim->StartFlow(
      std::move(path), bytes, std::move(wrapped_complete), weight,
      rate_cap_bps, std::move(wrapped_abort));
  AddUsage(m);
  flow_map_.emplace(global_id, std::move(m));
  return global_id;
}

FlowId ShardExecutor::StartPersistentFlow(std::vector<LinkId> path,
                                          double weight, double rate_cap_bps,
                                          AbortFn on_abort) {
  return StartFlow(std::move(path), std::numeric_limits<double>::infinity(),
                   CompletionFn(), weight, rate_cap_bps, std::move(on_abort));
}

void ShardExecutor::FinishFlow(uint32_t shard, FlowId global_id, SimTime when,
                               const std::function<void(FlowId, SimTime)>& fn) {
  if (in_parallel_) {
    // Worker thread: park for the barrier drain. Only this shard's worker
    // appends here, so per-shard FIFO order is the shard's firing order.
    shards_[shard].outbox.push_back(Deferred{global_id, when, fn});
    return;
  }
  auto it = flow_map_.find(global_id);
  if (it != flow_map_.end()) {
    RemoveUsage(it->second);
    flow_map_.erase(it);
  }
  if (fn) {
    fn(global_id, when);
  }
}

Status ShardExecutor::CancelFlow(FlowId id) {
  auto it = flow_map_.find(id);
  if (it == flow_map_.end()) {
    return NotFoundError("no such flow");
  }
  uint32_t shard = it->second.shard;
  FlowId local = it->second.local;
  Status status = shards_[shard].sim->CancelFlow(local);
  if (status.ok()) {
    RemoveUsage(it->second);
    flow_map_.erase(it);
  }
  // A not-found from the shard sim means the flow already finished (e.g.
  // its completion is parked in an outbox); the drain reclaims the mapping.
  return status;
}

Status ShardExecutor::SetRateCap(FlowId id, double rate_cap_bps) {
  auto it = flow_map_.find(id);
  if (it == flow_map_.end()) {
    return NotFoundError("no such flow");
  }
  Mapping& m = it->second;
  Status status =
      shards_[m.shard].sim->SetRateCap(m.local, rate_cap_bps);
  if (status.ok() && m.rate_cap_bps != rate_cap_bps) {
    AdjustCapUsage(m, m.rate_cap_bps, rate_cap_bps);
    m.rate_cap_bps = rate_cap_bps;
  }
  return status;
}

Result<double> ShardExecutor::CurrentRate(FlowId id) const {
  auto it = flow_map_.find(id);
  if (it == flow_map_.end()) {
    return NotFoundError("no such flow");
  }
  return shards_[it->second.shard].sim->CurrentRate(it->second.local);
}

const FlowState* ShardExecutor::FindFlow(FlowId id) const {
  auto it = flow_map_.find(id);
  if (it == flow_map_.end()) {
    return nullptr;
  }
  return shards_[it->second.shard].sim->FindFlow(it->second.local);
}

// --- FlowControlSurface: fault surface ---------------------------------------

Status ShardExecutor::SetLinkUp(LinkId link, bool up) {
  if (!link.valid() ||
      Topology::DenseLinkIndex(link) >= topology_.link_count()) {
    return InvalidArgumentError("unknown link id");
  }
  size_t idx = Topology::DenseLinkIndex(link);
  link_up_[idx] = up ? 1 : 0;
  // Broadcast: any shard sim may be homing flows that cross this link.
  // Sims without flows on it treat the toggle as a cheap no-op realloc
  // seed; sims with flows abort/stall/restore exactly as FlowSim does.
  Status status = Status::Ok();
  for (Shard& shard : shards_) {
    Status s = shard.sim->SetLinkUp(link, up);
    if (!s.ok()) {
      status = s;
    }
  }
  return status;
}

bool ShardExecutor::IsLinkUp(LinkId link) const {
  if (!link.valid() ||
      Topology::DenseLinkIndex(link) >= topology_.link_count()) {
    return true;
  }
  return link_up_[Topology::DenseLinkIndex(link)] != 0;
}

size_t ShardExecutor::stalled_flow_count() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sim->stalled_flow_count();
  }
  return total;
}

uint64_t ShardExecutor::flows_aborted() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sim->flows_aborted();
  }
  return total;
}

uint64_t ShardExecutor::flows_blackholed() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sim->flows_blackholed();
  }
  return total;
}

double ShardExecutor::bytes_blackholed() const {
  // Summed in ascending shard order: float addition is not associative, so
  // a fixed order keeps the aggregate byte-identical across thread counts.
  double total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sim->bytes_blackholed();
  }
  return total;
}

// --- FlowControlSurface: latency + accounting --------------------------------

double ShardExecutor::LinkUtilization(LinkId link) const {
  size_t idx = Topology::DenseLinkIndex(link);
  if (!link.valid() || idx >= topology_.link_count()) {
    return 0;
  }
  if (!link_up_[idx]) {
    return 1.0;  // a downed link has no headroom at all
  }
  // Allocations summed in ascending shard order (associativity again).
  double allocated = 0;
  for (const Shard& shard : shards_) {
    allocated += shard.sim->LinkAllocatedBps(link);
  }
  double cap = topology_.link(link).capacity_bps;
  return cap > 0 ? std::min(1.0, allocated / cap) : 0;
}

SimDuration ShardExecutor::QueuePenalty(const std::vector<LinkId>& path,
                                        SimDuration per_link_base,
                                        SimDuration per_link_cap) const {
  // Per-link utilization is computed executor-wide (allocations summed
  // across shard sims), so a crossing path sees congestion contributed by
  // every shard, not just the flow's home.
  SimDuration total = SimDuration::Zero();
  for (LinkId link : path) {
    total += QueuePenaltyForUtilization(LinkUtilization(link), per_link_base,
                                        per_link_cap);
  }
  return total;
}

size_t ShardExecutor::active_flow_count() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sim->active_flow_count();
  }
  return total;
}

double ShardExecutor::total_bytes_delivered() const {
  double total = 0;  // fixed shard order (see bytes_blackholed)
  for (const Shard& shard : shards_) {
    total += shard.sim->total_bytes_delivered();
  }
  return total;
}

uint64_t ShardExecutor::reallocation_count() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sim->reallocation_count();
  }
  return total;
}

uint64_t ShardExecutor::flows_rescheduled() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.sim->flows_rescheduled();
  }
  return total;
}

// --- Batching ----------------------------------------------------------------

void ShardExecutor::BeginBatch() {
  if (batch_depth_++ == 0) {
    for (Shard& shard : shards_) {
      shard.sim->BeginBatch();
    }
  }
}

void ShardExecutor::EndBatch() {
  assert(batch_depth_ > 0);
  if (--batch_depth_ != 0) {
    return;
  }
  // Per-shard reallocations are independent; fan them out to the pool when
  // more than one shard has real work (each shard's EndBatch is a cheap
  // no-op otherwise). FlowSim::EndBatch never fires user callbacks
  // (completions are scheduled, not invoked), so nothing here can touch
  // main-thread-only state.
  size_t busy_shards = 0;
  for (const Shard& shard : shards_) {
    if (shard.sim->has_pending_batch_work()) {
      ++busy_shards;
    }
  }
  if (busy_shards <= 1) {
    for (Shard& shard : shards_) {
      shard.sim->EndBatch();
    }
    return;
  }
  RunShardJobs(WorkKind::kEndBatch, SimTime());
}

// --- Epoch loop --------------------------------------------------------------

uint64_t ShardExecutor::RunUntil(SimTime deadline) {
  assert(batch_depth_ == 0 && "cannot run the executor inside a batch");
  uint64_t fired = 0;
  for (;;) {
    // Re-split shared links whose membership or demand changed since the
    // last epoch (flow churn, cap changes, border faults) — before reading
    // t_next, because the re-split can reschedule completions.
    ReconcileLeases();
    SimTime shard_next = SimTime::Infinite();
    for (Shard& shard : shards_) {
      SimTime t = shard.queue->NextEventTime();
      if (t < shard_next) {
        shard_next = t;
      }
    }
    SimTime control_next = control_.NextEventTime();
    SimTime t_next = std::min(shard_next, control_next);
    // Stop past the deadline — or when every queue is drained, which the
    // first comparison alone misses for an infinite deadline (RunAll):
    // Infinite > Infinite is false and the loop would spin forever.
    if (t_next > deadline || t_next == SimTime::Infinite()) {
      break;
    }
    // The epoch never outruns the next control event, so control events
    // only ever fire when every shard clock has reached their timestamp.
    SimTime epoch_end = deadline;
    SimTime horizon = t_next + opts_.epoch_quantum;
    if (horizon < epoch_end) {
      epoch_end = horizon;
    }
    if (control_next < epoch_end) {
      epoch_end = control_next;
    }
    ++epochs_;
    in_parallel_ = true;
    RunShardJobs(WorkKind::kAdvance, epoch_end);
    in_parallel_ = false;
    for (Shard& shard : shards_) {
      fired += shard.fired_this_epoch;
    }
    fired += RunBarrierSection(epoch_end);
  }
  if (deadline != SimTime::Infinite()) {
    for (Shard& shard : shards_) {
      shard.queue->AdvanceTo(deadline);
    }
    control_.AdvanceTo(deadline);
  }
  return fired;
}

uint64_t ShardExecutor::RunBarrierSection(SimTime epoch_end) {
  // Clocks first: drained callbacks observe now() == epoch_end everywhere.
  control_.AdvanceTo(epoch_end);
  uint64_t control_fired = 0;
  {
    // One executor-wide batch over the whole barrier section: every flow
    // start/cancel/cap change triggered by drained callbacks or control
    // events coalesces into at most one reallocation per touched shard,
    // fanned back out to the pool by the closing EndBatch.
    BatchScope batch = Batch();
    for (Shard& shard : shards_) {
      // Drain in ascending shard order; each outbox preserves its shard's
      // FIFO firing order. Callbacks run here on the main thread and may
      // start/cancel flows, but cannot append to outboxes (in_parallel_ is
      // off), so indexed iteration is safe.
      callbacks_deferred_ += shard.outbox.size();
      for (size_t i = 0; i < shard.outbox.size(); ++i) {
        Deferred deferred = std::move(shard.outbox[i]);
        auto it = flow_map_.find(deferred.global_id);
        if (it != flow_map_.end()) {
          // Retiring the flow frees its share of any shared link; the
          // usage update marks those links dirty so the next epoch's
          // ReconcileLeases re-splits them.
          RemoveUsage(it->second);
          flow_map_.erase(it);
        }
        if (deferred.fn) {
          deferred.fn(deferred.global_id, deferred.when);
        }
      }
      shard.outbox.clear();
    }
    control_fired = control_.RunUntil(epoch_end);
  }
  return control_fired;
}

// --- Worker pool -------------------------------------------------------------

void ShardExecutor::RunOneShard(uint32_t index, WorkKind kind,
                                SimTime deadline) {
  Shard& shard = shards_[index];
  if (kind == WorkKind::kAdvance) {
    shard.fired_this_epoch = shard.queue->RunUntil(deadline);
  } else {
    shard.sim->EndBatch();
  }
}

void ShardExecutor::RunShardJobs(WorkKind kind, SimTime deadline) {
  if (workers_.empty() || shards_.size() == 1) {
    for (uint32_t i = 0; i < shards_.size(); ++i) {
      RunOneShard(i, kind, deadline);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    work_kind_ = kind;
    work_deadline_ = deadline;
    next_shard_.store(0, std::memory_order_relaxed);
    workers_done_ = 0;
    ++epoch_seq_;
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return workers_done_ == workers_.size(); });
}

void ShardExecutor::WorkerLoop() {
  uint64_t seen_seq = 0;
  for (;;) {
    WorkKind kind;
    SimTime deadline;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return shutdown_ || epoch_seq_ != seen_seq; });
      if (shutdown_) {
        return;
      }
      seen_seq = epoch_seq_;
      kind = work_kind_;
      deadline = work_deadline_;
    }
    // Claim shards off the shared counter. The RMW makes claims unique;
    // ordering/visibility of shard state rides on the mu_ handshake.
    for (;;) {
      uint32_t index = next_shard_.fetch_add(1, std::memory_order_relaxed);
      if (index >= shards_.size()) {
        break;
      }
      RunOneShard(index, kind, deadline);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++workers_done_;
      if (workers_done_ == workers_.size()) {
        done_cv_.notify_one();
      }
    }
  }
}

}  // namespace tenantnet
