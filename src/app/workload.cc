#include "src/app/workload.h"

#include <algorithm>
#include <cmath>

namespace tenantnet {

RequestWorkload::RequestWorkload(EventQueue& queue, FlowControlSurface& flows,
                                 const CloudWorld& world,
                                 WorkloadParams params)
    : queue_(queue), flows_(flows), world_(world), params_(params),
      rng_(params.seed) {}

size_t RequestWorkload::AddPattern(std::string name,
                                   std::vector<InstanceId> sources,
                                   std::vector<InstanceId> destinations,
                                   double rps, ConnectorFn connector) {
  Pattern pattern;
  pattern.name = std::move(name);
  pattern.sources = std::move(sources);
  pattern.destinations = std::move(destinations);
  pattern.rps = rps;
  pattern.connector = std::move(connector);
  patterns_.push_back(std::move(pattern));
  return patterns_.size() - 1;
}

void RequestWorkload::Start(SimDuration duration) {
  double horizon = duration.ToSeconds();
  for (size_t i = 0; i < patterns_.size(); ++i) {
    Rng arrivals = rng_.Fork();
    double t = 0;
    while (true) {
      t += arrivals.NextExponential(patterns_[i].rps);
      if (t >= horizon) {
        break;
      }
      queue_.ScheduleAfter(SimDuration::Seconds(t),
                           [this, i] { RunTransaction(i); });
    }
  }
}

void RequestWorkload::RunTransaction(size_t pattern_index) {
  Pattern& pattern = patterns_[pattern_index];
  ++pattern.stats.attempted;
  InstanceId src =
      pattern.sources[rng_.NextU64(pattern.sources.size())];
  InstanceId dst =
      pattern.destinations[rng_.NextU64(pattern.destinations.size())];
  Attempt(pattern_index, src, dst, queue_.now(), 0);
}

void RequestWorkload::RetryOrGiveUp(size_t pattern_index, InstanceId src,
                                    InstanceId dst, SimTime start,
                                    int attempt) {
  PatternStats& stats = patterns_[pattern_index].stats;
  if (attempt >= params_.max_retries) {
    ++stats.gave_up;
    --inflight_;
    return;
  }
  ++stats.retries;
  SimDuration backoff = params_.retry_base;
  for (int i = 0; i < attempt && backoff < params_.retry_cap; ++i) {
    backoff = backoff * 2.0;
  }
  backoff = std::min(backoff, params_.retry_cap);
  backoff = backoff * (1.0 + params_.retry_jitter * rng_.NextDouble(-1.0, 1.0));
  queue_.ScheduleAfter(backoff, [this, pattern_index, src, dst, start,
                                 attempt] {
    Attempt(pattern_index, src, dst, start, attempt + 1);
  });
}

void RequestWorkload::Attempt(size_t pattern_index, InstanceId src,
                              InstanceId dst, SimTime start, int attempt) {
  Pattern& pattern = patterns_[pattern_index];
  PatternStats& stats = pattern.stats;

  // Re-resolve on every attempt: faults move routes and health state
  // between tries, and ShortestPath skips downed links, so a retry is also
  // a reroute.
  ResolvedRoute route = pattern.connector(src, dst);
  if (!route.allowed) {
    if (attempt == 0) {
      ++stats.denied;
      ++stats.deny_by_stage[route.deny_stage.empty() ? "denied"
                                                     : route.deny_stage];
      return;
    }
    // Mid-retry denial (e.g. destination still down): keep backing off.
    RetryOrGiveUp(pattern_index, src, dst, start, attempt);
    return;
  }

  const Topology& topology = world_.topology();
  auto path = world_.ResolvePath(route.src_node, route.dst_node, route.policy);
  if (!path.ok()) {
    if (attempt == 0) {
      ++stats.denied;
      ++stats.deny_by_stage["no-physical-path"];
      return;
    }
    RetryOrGiveUp(pattern_index, src, dst, start, attempt);
    return;
  }
  auto reverse_path =
      world_.ResolvePath(route.dst_node, route.src_node, route.policy);

  SimDuration forward = topology.SamplePathDelay(*path, rng_) +
                        flows_.QueuePenalty(*path, params_.queue_penalty_base,
                                            params_.queue_penalty_cap);
  // Heavy-tailed response size (bounded Pareto-ish: scale for the mean).
  double x_min = params_.mean_response_bytes *
                 (params_.response_pareto_alpha - 1) /
                 params_.response_pareto_alpha;
  double response_bytes =
      rng_.NextPareto(x_min, params_.response_pareto_alpha);
  response_bytes = std::min(response_bytes, params_.mean_response_bytes * 50);

  if (attempt == 0) {
    ++inflight_;
  }
  // Request arrives at the server after the forward delay + server time;
  // the response then streams back through the fluid simulator.
  SimDuration until_response_start =
      forward + params_.server_time;
  std::vector<LinkId> response_path =
      reverse_path.ok() ? *reverse_path : std::vector<LinkId>{};
  double cap = route.rate_cap_bps;
  double weight = route.weight;
  queue_.ScheduleAfter(
      until_response_start,
      [this, pattern_index, src, dst, start, attempt, response_bytes,
       response_path, cap, weight] {
        SimDuration tail_delay =
            world_.topology().SamplePathDelay(response_path, rng_);
        flows_.StartFlow(
            response_path, response_bytes,
            [this, pattern_index, start, response_bytes, tail_delay](
                FlowId, SimTime finish) {
              Pattern& pat = patterns_[pattern_index];
              SimDuration total = (finish - start) + tail_delay;
              pat.stats.latency_ms.Record(total.ToMillis());
              ++pat.stats.completed;
              pat.stats.bytes_transferred += response_bytes;
              --inflight_;
            },
            weight, cap,
            [this, pattern_index, src, dst, start, attempt](FlowId, SimTime) {
              ++patterns_[pattern_index].stats.aborted;
              RetryOrGiveUp(pattern_index, src, dst, start, attempt);
            });
      });
}

}  // namespace tenantnet
