#include "src/app/workload.h"

#include <algorithm>
#include <cmath>

namespace tenantnet {

std::map<std::string, uint64_t> PatternStats::DenyByStage() const {
  std::map<std::string, uint64_t> out;
  for (uint32_t id = 0; id < deny_by_stage_counts.size(); ++id) {
    if (deny_by_stage_counts[id] == 0) {
      continue;
    }
    std::string name = id == 0 ? "denied" : DenyStages().Name(id);
    out[name] += deny_by_stage_counts[id];
  }
  return out;
}

RateCurve RateCurve::Constant(double rps) {
  RateCurve curve;
  curve.base_rps_ = rps;
  return curve;
}

RateCurve RateCurve::Diurnal(double base_rps, double amplitude,
                             SimDuration period) {
  RateCurve curve;
  curve.base_rps_ = base_rps;
  curve.diurnal_amplitude_ = std::clamp(amplitude, 0.0, 1.0);
  curve.diurnal_period_ = period;
  return curve;
}

RateCurve RateCurve::FlashCrowd(double base_rps, double multiplier,
                                SimDuration start, SimDuration rise,
                                SimDuration fall) {
  RateCurve curve;
  curve.base_rps_ = base_rps;
  curve.flash_multiplier_ = std::max(0.0, multiplier);
  curve.flash_start_ = start;
  curve.flash_rise_ = rise;
  curve.flash_fall_ = fall;
  return curve;
}

double RateCurve::RateAt(SimDuration elapsed) const {
  double rate = base_rps_;
  if (diurnal_amplitude_ > 0 && diurnal_period_.ToSeconds() > 0) {
    rate += base_rps_ * diurnal_amplitude_ *
            std::sin(2.0 * M_PI * elapsed.ToSeconds() /
                     diurnal_period_.ToSeconds());
  }
  if (flash_multiplier_ > 0) {
    const double t = (elapsed - flash_start_).ToSeconds();
    const double rise = flash_rise_.ToSeconds();
    const double fall = flash_fall_.ToSeconds();
    double shape = 0;
    if (t >= 0 && t < rise) {
      shape = rise > 0 ? t / rise : 1.0;
    } else if (t >= rise && t < rise + fall) {
      shape = fall > 0 ? 1.0 - (t - rise) / fall : 0.0;
    }
    rate += base_rps_ * flash_multiplier_ * shape;
  }
  return std::max(0.0, rate);
}

double RateCurve::MaxRate() const {
  return base_rps_ * (1.0 + diurnal_amplitude_ + flash_multiplier_);
}

RequestWorkload::RequestWorkload(EventQueue& queue, FlowControlSurface& flows,
                                 const CloudWorld& world,
                                 WorkloadParams params)
    : queue_(queue), flows_(flows), world_(world), params_(params),
      rng_(params.seed) {}

size_t RequestWorkload::AddPattern(std::string name,
                                   std::vector<InstanceId> sources,
                                   std::vector<InstanceId> destinations,
                                   double rps, ConnectorFn connector) {
  Pattern pattern;
  pattern.name = std::move(name);
  pattern.sources = std::move(sources);
  pattern.destinations = std::move(destinations);
  pattern.rps = rps;
  pattern.connector = std::move(connector);
  patterns_.push_back(std::move(pattern));
  return patterns_.size() - 1;
}

size_t RequestWorkload::AddStreamingPattern(std::string name,
                                            std::vector<InstanceId> sources,
                                            std::vector<InstanceId> destinations,
                                            RateCurve curve,
                                            ConnectorFn connector) {
  Pattern pattern;
  pattern.name = std::move(name);
  pattern.sources = std::move(sources);
  pattern.destinations = std::move(destinations);
  pattern.connector = std::move(connector);
  pattern.streaming = true;
  pattern.curve = curve;
  patterns_.push_back(std::move(pattern));
  return patterns_.size() - 1;
}

void RequestWorkload::Start(SimDuration duration) {
  double horizon = duration.ToSeconds();
  SimTime started = queue_.now();
  SimTime end = started + duration;
  for (size_t i = 0; i < patterns_.size(); ++i) {
    if (patterns_[i].streaming) {
      patterns_[i].arrivals = rng_.Fork();
      ScheduleNextArrival(i, started, end);
      continue;
    }
    Rng arrivals = rng_.Fork();
    double t = 0;
    while (true) {
      t += arrivals.NextExponential(patterns_[i].rps);
      if (t >= horizon) {
        break;
      }
      queue_.ScheduleAfter(SimDuration::Seconds(t),
                           [this, i] { RunTransaction(i); });
    }
  }
}

void RequestWorkload::ScheduleNextArrival(size_t pattern_index, SimTime started,
                                          SimTime end) {
  Pattern& pattern = patterns_[pattern_index];
  const double max_rate = pattern.curve.MaxRate();
  if (max_rate <= 0) {
    return;
  }
  // Thinning (Lewis-Shedler): candidates arrive Poisson at the constant
  // envelope MaxRate(); each is accepted with probability rate(t)/MaxRate.
  // Exactly one pending event exists per pattern at any time, so generator
  // memory is O(patterns), independent of horizon, rate, and population.
  SimTime when =
      queue_.now() +
      SimDuration::Seconds(pattern.arrivals.NextExponential(max_rate));
  if (when >= end) {
    return;
  }
  queue_.ScheduleAt(when, [this, pattern_index, started, end] {
    Pattern& p = patterns_[pattern_index];
    const SimDuration elapsed = queue_.now() - started;
    const double accept = p.curve.RateAt(elapsed) / p.curve.MaxRate();
    if (p.arrivals.NextDouble() < accept) {
      RunTransaction(pattern_index);
    }
    ScheduleNextArrival(pattern_index, started, end);
  });
}

void RequestWorkload::RunTransaction(size_t pattern_index) {
  Pattern& pattern = patterns_[pattern_index];
  ++pattern.stats.attempted;
  InstanceId src =
      pattern.sources[rng_.NextU64(pattern.sources.size())];
  InstanceId dst =
      pattern.destinations[rng_.NextU64(pattern.destinations.size())];
  Attempt(pattern_index, src, dst, queue_.now(), 0);
}

void RequestWorkload::RetryOrGiveUp(size_t pattern_index, InstanceId src,
                                    InstanceId dst, SimTime start,
                                    int attempt) {
  PatternStats& stats = patterns_[pattern_index].stats;
  if (attempt >= params_.max_retries) {
    ++stats.gave_up;
    --inflight_;
    return;
  }
  ++stats.retries;
  SimDuration backoff = params_.retry_base;
  for (int i = 0; i < attempt && backoff < params_.retry_cap; ++i) {
    backoff = backoff * 2.0;
  }
  backoff = std::min(backoff, params_.retry_cap);
  backoff = backoff * (1.0 + params_.retry_jitter * rng_.NextDouble(-1.0, 1.0));
  queue_.ScheduleAfter(backoff, [this, pattern_index, src, dst, start,
                                 attempt] {
    Attempt(pattern_index, src, dst, start, attempt + 1);
  });
}

void RequestWorkload::Attempt(size_t pattern_index, InstanceId src,
                              InstanceId dst, SimTime start, int attempt) {
  Pattern& pattern = patterns_[pattern_index];
  PatternStats& stats = pattern.stats;

  // Re-resolve on every attempt: faults move routes and health state
  // between tries, and ShortestPath skips downed links, so a retry is also
  // a reroute.
  ResolvedRoute route = pattern.connector(src, dst);
  if (!route.allowed) {
    if (attempt == 0) {
      ++stats.denied;
      stats.CountDeny(route.deny_stage);
      return;
    }
    // Mid-retry denial (e.g. destination still down): keep backing off.
    RetryOrGiveUp(pattern_index, src, dst, start, attempt);
    return;
  }

  const Topology& topology = world_.topology();
  auto path = world_.ResolvePath(route.src_node, route.dst_node, route.policy);
  if (!path.ok()) {
    if (attempt == 0) {
      ++stats.denied;
      static const uint32_t kNoPhysicalPath = DenyStage("no-physical-path");
      stats.CountDeny(kNoPhysicalPath);
      return;
    }
    RetryOrGiveUp(pattern_index, src, dst, start, attempt);
    return;
  }
  auto reverse_path =
      world_.ResolvePath(route.dst_node, route.src_node, route.policy);

  SimDuration forward = topology.SamplePathDelay(*path, rng_) +
                        flows_.QueuePenalty(*path, params_.queue_penalty_base,
                                            params_.queue_penalty_cap);
  // Heavy-tailed response size (bounded Pareto-ish: scale for the mean).
  double x_min = params_.mean_response_bytes *
                 (params_.response_pareto_alpha - 1) /
                 params_.response_pareto_alpha;
  double response_bytes =
      rng_.NextPareto(x_min, params_.response_pareto_alpha);
  response_bytes = std::min(response_bytes, params_.mean_response_bytes * 50);

  if (attempt == 0) {
    ++inflight_;
  }
  // Request arrives at the server after the forward delay + server time;
  // the response then streams back through the fluid simulator.
  SimDuration until_response_start =
      forward + params_.server_time;
  std::vector<LinkId> response_path =
      reverse_path.ok() ? *reverse_path : std::vector<LinkId>{};
  double cap = route.rate_cap_bps;
  double weight = route.weight;
  queue_.ScheduleAfter(
      until_response_start,
      [this, pattern_index, src, dst, start, attempt, response_bytes,
       response_path, cap, weight] {
        SimDuration tail_delay =
            world_.topology().SamplePathDelay(response_path, rng_);
        flows_.StartFlow(
            response_path, response_bytes,
            [this, pattern_index, start, response_bytes, tail_delay](
                FlowId, SimTime finish) {
              Pattern& pat = patterns_[pattern_index];
              SimDuration total = (finish - start) + tail_delay;
              pat.stats.latency_ms.Record(total.ToMillis());
              ++pat.stats.completed;
              pat.stats.bytes_transferred += response_bytes;
              --inflight_;
            },
            weight, cap,
            [this, pattern_index, src, dst, start, attempt](FlowId, SimTime) {
              ++patterns_[pattern_index].stats.aborted;
              RetryOrGiveUp(pattern_index, src, dst, start, attempt);
            });
      });
}

}  // namespace tenantnet
