#include "src/app/trace.h"

#include <algorithm>
#include <cmath>

namespace tenantnet {

TenantTrace GenerateTrace(const TraceParams& params) {
  Rng rng(params.seed);
  TenantTrace trace;

  struct Pending {
    SimTime at;
    bool launch;
    uint64_t tenant;
    uint64_t instance;
  };
  std::vector<Pending> pending;

  // Pareto scale so that the mean matches mean_lifetime_seconds:
  // E[X] = alpha * x_min / (alpha - 1) for alpha > 1.
  double x_min = params.mean_lifetime_seconds * (params.pareto_alpha - 1) /
                 params.pareto_alpha;

  uint64_t next_instance = 0;
  std::vector<std::vector<uint64_t>> per_tenant_instances(params.tenants);

  for (uint64_t tenant = 0; tenant < params.tenants; ++tenant) {
    Rng tenant_rng = rng.Fork();
    double t = 0;
    double horizon = params.duration.ToSeconds();
    while (true) {
      t += tenant_rng.NextExponential(params.launches_per_second_per_tenant);
      if (t >= horizon) {
        break;
      }
      uint64_t instance = next_instance++;
      per_tenant_instances[tenant].push_back(instance);
      double lifetime =
          std::min(tenant_rng.NextPareto(x_min, params.pareto_alpha),
                   params.max_lifetime_seconds);
      pending.push_back(
          {SimTime::FromSeconds(t), true, tenant, instance});
      pending.push_back(
          {SimTime::FromSeconds(t + lifetime), false, tenant, instance});
    }
  }

  std::sort(pending.begin(), pending.end(),
            [](const Pending& a, const Pending& b) {
              if (a.at != b.at) {
                return a.at < b.at;
              }
              // Launches before teardowns at identical timestamps.
              return a.launch && !b.launch;
            });

  trace.total_instances = next_instance;
  uint64_t live = 0;

  // Partner selection: Zipf over the tenant's instance population (popular
  // instances attract most flows).
  std::vector<ZipfSampler> samplers;
  samplers.reserve(params.tenants);
  for (uint64_t tenant = 0; tenant < params.tenants; ++tenant) {
    samplers.emplace_back(
        std::max<uint64_t>(1, per_tenant_instances[tenant].size()),
        params.zipf_s);
  }

  trace.events.reserve(pending.size());
  for (const Pending& p : pending) {
    TraceEvent event;
    event.at = p.at;
    event.kind = p.launch ? TraceEventKind::kLaunch : TraceEventKind::kTeardown;
    event.tenant = p.tenant;
    event.instance = p.instance;
    if (p.launch) {
      ++live;
      trace.peak_live_instances = std::max(trace.peak_live_instances, live);
      const auto& population = per_tenant_instances[p.tenant];
      if (population.size() > 1) {
        for (uint64_t k = 0; k < params.partners_per_instance; ++k) {
          uint64_t partner = population[samplers[p.tenant].Sample(rng)];
          if (partner != p.instance) {
            event.talks_to.push_back(partner);
          }
        }
        std::sort(event.talks_to.begin(), event.talks_to.end());
        event.talks_to.erase(
            std::unique(event.talks_to.begin(), event.talks_to.end()),
            event.talks_to.end());
      }
    } else {
      if (live > 0) {
        --live;
      }
    }
    trace.events.push_back(std::move(event));
  }
  return trace;
}

}  // namespace tenantnet
