// Request/response workload driver.
//
// Drives application-level traffic over the simulated world: open-loop
// Poisson arrivals of request/response transactions between instance
// groups. Which flows are *allowed* and which attachment nodes they run
// between is delegated to a ConnectorFn, so the same workload runs
// unchanged over the baseline fabric and over the declarative API — the
// comparison experiments depend on exactly that symmetry.
//
// A transaction is: sampled forward path delay (propagation + jitter +
// congestion-dependent queueing) + server time + response transfer through
// the fluid FlowSim (so big responses see bandwidth contention) + sampled
// reverse delay. Latencies land in a per-pattern histogram.

#ifndef TENANTNET_SRC_APP_WORKLOAD_H_
#define TENANTNET_SRC_APP_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "src/cloud/world.h"
#include "src/common/rng.h"
#include "src/common/slab.h"
#include "src/sim/event_queue.h"
#include "src/sim/flow_surface.h"
#include "src/telemetry/metrics.h"

namespace tenantnet {

// Interner for deny-stage labels ("edge-filter", "no-eip", ...). Connectors
// resolve the label to a dense id once per denial; the workload hot loop
// then counts by id — no per-transaction string construction or map probe
// (the PR-8 diet: at 1M endpoints the deny path runs millions of times).
inline StringInterner& DenyStages() {
  static StringInterner* interner = new StringInterner();
  return *interner;
}
inline uint32_t DenyStage(const std::string& name) {
  return DenyStages().Intern(name);
}

// The world-specific verdict for one (src, dst) transaction attempt.
struct ResolvedRoute {
  bool allowed = false;
  uint32_t deny_stage = 0;    // DenyStage(...) id; 0 = unspecified
  NodeId src_node;
  NodeId dst_node;
  EgressPolicy policy = EgressPolicy::kColdPotato;
  double rate_cap_bps = std::numeric_limits<double>::infinity();
  // Max-min weight for the response flow: >1 models provider-side
  // bandwidth reservation (the §4 egress-guarantee approximation).
  double weight = 1.0;
};

using ConnectorFn = std::function<ResolvedRoute(InstanceId src, InstanceId dst)>;

struct WorkloadParams {
  double mean_response_bytes = 256 * 1024;
  double response_pareto_alpha = 1.5;   // heavy-tailed response sizes
  SimDuration server_time = SimDuration::Micros(500);
  SimDuration queue_penalty_base = SimDuration::Millis(1);
  SimDuration queue_penalty_cap = SimDuration::Millis(50);
  uint64_t seed = 7;

  // Retry policy for fault-aborted transactions: bounded exponential
  // backoff (retry_base * 2^attempt, capped at retry_cap) with a seeded
  // jitter factor in [1-retry_jitter, 1+retry_jitter]. Each retry
  // re-resolves the route, so traffic reroutes around downed links. The
  // default max_retries=0 disables retries entirely — aborted transactions
  // are dropped — which also leaves the RNG draw sequence identical to a
  // fault-free run (replays stay deterministic either way: all draws come
  // from the workload's seeded RNG).
  int max_retries = 0;
  SimDuration retry_base = SimDuration::Millis(10);
  SimDuration retry_cap = SimDuration::Seconds(1);
  double retry_jitter = 0.2;
};

struct PatternStats {
  uint64_t attempted = 0;
  uint64_t denied = 0;
  uint64_t completed = 0;
  uint64_t aborted = 0;     // response flows killed by faults
  uint64_t retries = 0;     // retry attempts issued (reroutes)
  uint64_t gave_up = 0;     // transactions dead after max_retries
  // Denials per DenyStages() id (dense; grown on first hit of a stage).
  std::vector<uint64_t> deny_by_stage_counts;
  Histogram latency_ms;
  double bytes_transferred = 0;

  void CountDeny(uint32_t stage) {
    if (deny_by_stage_counts.size() <= stage) {
      deny_by_stage_counts.resize(stage + 1, 0);
    }
    ++deny_by_stage_counts[stage];
  }
  // Report-time view keyed by stage name (id 0 reports as "denied").
  std::map<std::string, uint64_t> DenyByStage() const;
};

// Time-varying arrival rate for streaming patterns. The rate is a base plus
// an optional diurnal sinusoid plus an optional flash-crowd burst (linear
// ramp to base*flash_multiplier over flash_rise, then linear decay over
// flash_fall). All components compose; the presets set one each.
class RateCurve {
 public:
  static RateCurve Constant(double rps);
  // rate(t) = base * (1 + amplitude * sin(2*pi*t/period)); amplitude in
  // [0,1] keeps the curve nonnegative.
  static RateCurve Diurnal(double base_rps, double amplitude,
                           SimDuration period);
  // Base load with a flash crowd: at `start` (relative to Start()), the
  // rate ramps linearly to base*(1+multiplier) over `rise`, then decays
  // linearly back over `fall`.
  static RateCurve FlashCrowd(double base_rps, double multiplier,
                              SimDuration start, SimDuration rise,
                              SimDuration fall);

  // Instantaneous rate at `elapsed` since the workload started.
  double RateAt(SimDuration elapsed) const;
  // Tight upper bound over all t — the thinning sampler's envelope.
  double MaxRate() const;

 private:
  double base_rps_ = 0;
  double diurnal_amplitude_ = 0;
  SimDuration diurnal_period_ = SimDuration::Seconds(86400);
  double flash_multiplier_ = 0;
  SimDuration flash_start_;
  SimDuration flash_rise_;
  SimDuration flash_fall_;
};

class RequestWorkload {
 public:
  RequestWorkload(EventQueue& queue, FlowControlSurface& flows, const CloudWorld& world,
                  WorkloadParams params = {});

  // Registers a traffic pattern: `rps` transactions/sec from a random
  // member of `sources` to a random member of `destinations`, admitted and
  // placed by `connector`. Returns the pattern index.
  size_t AddPattern(std::string name, std::vector<InstanceId> sources,
                    std::vector<InstanceId> destinations, double rps,
                    ConnectorFn connector);

  // Registers a *streaming* open-loop pattern driven by a time-varying
  // RateCurve. Unlike AddPattern, Start() does not materialize the arrival
  // set: arrivals are generated one at a time by a thinning sampler over
  // the curve's MaxRate() envelope, so the generator holds O(1) state per
  // pattern regardless of horizon, rate, or endpoint population (E10 runs
  // million-endpoint workloads without pre-scheduling millions of events).
  size_t AddStreamingPattern(std::string name, std::vector<InstanceId> sources,
                             std::vector<InstanceId> destinations,
                             RateCurve curve, ConnectorFn connector);

  // Schedules arrivals for all patterns over [now, now + duration).
  // Pre-scheduled (AddPattern) patterns enqueue every arrival up front;
  // streaming patterns enqueue exactly one pending arrival each.
  void Start(SimDuration duration);

  const PatternStats& stats(size_t pattern) const {
    return patterns_[pattern].stats;
  }
  const std::string& pattern_name(size_t pattern) const {
    return patterns_[pattern].name;
  }
  size_t pattern_count() const { return patterns_.size(); }

  // In-flight transactions (for drain checks in tests).
  uint64_t inflight() const { return inflight_; }

 private:
  struct Pattern {
    std::string name;
    std::vector<InstanceId> sources;
    std::vector<InstanceId> destinations;
    double rps = 0;
    ConnectorFn connector;
    PatternStats stats;
    // Streaming mode: the rate curve, a private arrival RNG (forked at
    // Start() so pre-scheduled and streaming draws never interleave), and
    // the one pending candidate arrival.
    bool streaming = false;
    RateCurve curve;
    Rng arrivals{0};  // re-seeded by Fork() at Start()
  };

  // Streaming arrival engine: schedules the pattern's next candidate at
  // Exp(MaxRate) ahead and accepts it with probability RateAt/MaxRate.
  void ScheduleNextArrival(size_t pattern_index, SimTime started, SimTime end);

  void RunTransaction(size_t pattern_index);
  // One (re)try of a transaction: resolve, fly the request, stream the
  // response. `attempt` 0 is the original; retries keep the original
  // `start` so latency includes every backoff.
  void Attempt(size_t pattern_index, InstanceId src, InstanceId dst,
               SimTime start, int attempt);
  // Retry `attempt+1` after backoff, or give up. `attempt` is the attempt
  // that just failed. Callers have already counted the transaction in
  // inflight_.
  void RetryOrGiveUp(size_t pattern_index, InstanceId src, InstanceId dst,
                     SimTime start, int attempt);

  EventQueue& queue_;
  FlowControlSurface& flows_;
  const CloudWorld& world_;
  WorkloadParams params_;
  Rng rng_;
  std::vector<Pattern> patterns_;
  uint64_t inflight_ = 0;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_APP_WORKLOAD_H_
