// Service-centric application layer: credentials and the API gateway.
//
// The proposal's security story divides work between the network (L3/L4
// permit lists, provider-enforced) and the application (API-level
// authentication and well-formedness checks, enforced at a gateway in
// front of every service — the Kubernetes-style pattern §4 assumes).
// This module is that application half. E6 runs attacks against the
// combination and against the baseline's network-layer stack.

#ifndef TENANTNET_SRC_APP_GATEWAY_H_
#define TENANTNET_SRC_APP_GATEWAY_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"

namespace tenantnet {

using PrincipalId = TypedId<struct PrincipalIdTag>;

// An authenticated caller identity with bearer credentials.
struct Principal {
  PrincipalId id;
  std::string name;
  std::string token;  // opaque bearer credential
};

// One API request as the gateway sees it.
struct ApiRequest {
  std::string method = "GET";      // GET/PUT/POST/DELETE
  std::string path = "/";          // must be well-formed
  std::string token;               // presented credential
  std::string body;
  uint64_t body_bytes = 0;
};

enum class GatewayVerdict : uint8_t {
  kAccepted,
  kMalformed,       // fails well-formedness (§4: "the API call is well-formed")
  kUnauthenticated, // unknown/expired credential
  kUnauthorized,    // known principal, but not allowed on this route
};

std::string_view GatewayVerdictName(GatewayVerdict verdict);

class CredentialRegistry {
 public:
  Principal& CreatePrincipal(const std::string& name);
  // Invalidates the principal's token (revocation / rotation).
  Status RevokeToken(PrincipalId principal);

  // Returns the principal owning a live token, or nullptr.
  const Principal* Authenticate(const std::string& token) const;

 private:
  std::unordered_map<PrincipalId, Principal> principals_;
  std::unordered_map<std::string, PrincipalId> by_token_;
  IdGenerator<PrincipalId> ids_;
  uint64_t token_counter_ = 0;
};

// Gateway guarding one service: route authorization per principal.
class ApiGateway {
 public:
  ApiGateway(std::string service_name, const CredentialRegistry* registry)
      : service_(std::move(service_name)), registry_(registry) {}

  const std::string& service() const { return service_; }

  // Grants `principal` access to routes under `path_prefix` with `method`
  // ("*" = any method).
  void Authorize(PrincipalId principal, const std::string& method,
                 const std::string& path_prefix);

  GatewayVerdict Check(const ApiRequest& request);

  // Counters for the security experiment.
  uint64_t accepted() const { return accepted_; }
  uint64_t rejected_malformed() const { return malformed_; }
  uint64_t rejected_unauthenticated() const { return unauthenticated_; }
  uint64_t rejected_unauthorized() const { return unauthorized_; }
  uint64_t total_checked() const {
    return accepted_ + malformed_ + unauthenticated_ + unauthorized_;
  }
  void ResetCounters();

 private:
  struct Grant {
    PrincipalId principal;
    std::string method;
    std::string path_prefix;
  };

  static bool WellFormed(const ApiRequest& request);

  std::string service_;
  const CredentialRegistry* registry_;
  std::vector<Grant> grants_;
  uint64_t accepted_ = 0;
  uint64_t malformed_ = 0;
  uint64_t unauthenticated_ = 0;
  uint64_t unauthorized_ = 0;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_APP_GATEWAY_H_
