#include "src/app/gateway.h"

#include <algorithm>

namespace tenantnet {

std::string_view GatewayVerdictName(GatewayVerdict verdict) {
  switch (verdict) {
    case GatewayVerdict::kAccepted:
      return "accepted";
    case GatewayVerdict::kMalformed:
      return "malformed";
    case GatewayVerdict::kUnauthenticated:
      return "unauthenticated";
    case GatewayVerdict::kUnauthorized:
      return "unauthorized";
  }
  return "?";
}

Principal& CredentialRegistry::CreatePrincipal(const std::string& name) {
  PrincipalId id = ids_.Next();
  Principal principal;
  principal.id = id;
  principal.name = name;
  principal.token =
      "tok-" + std::to_string(id.value()) + "-" +
      std::to_string(0x9E3779B97F4A7C15ULL * ++token_counter_);
  auto [it, inserted] = principals_.emplace(id, std::move(principal));
  by_token_[it->second.token] = id;
  return it->second;
}

Status CredentialRegistry::RevokeToken(PrincipalId principal) {
  auto it = principals_.find(principal);
  if (it == principals_.end()) {
    return NotFoundError("no such principal");
  }
  by_token_.erase(it->second.token);
  it->second.token.clear();
  return Status::Ok();
}

const Principal* CredentialRegistry::Authenticate(
    const std::string& token) const {
  if (token.empty()) {
    return nullptr;
  }
  auto it = by_token_.find(token);
  if (it == by_token_.end()) {
    return nullptr;
  }
  auto pit = principals_.find(it->second);
  return pit == principals_.end() ? nullptr : &pit->second;
}

void ApiGateway::Authorize(PrincipalId principal, const std::string& method,
                           const std::string& path_prefix) {
  grants_.push_back(Grant{principal, method, path_prefix});
}

bool ApiGateway::WellFormed(const ApiRequest& request) {
  static const char* kMethods[] = {"GET", "PUT", "POST", "DELETE", "PATCH"};
  bool method_ok = std::any_of(
      std::begin(kMethods), std::end(kMethods),
      [&request](const char* m) { return request.method == m; });
  if (!method_ok) {
    return false;
  }
  if (request.path.empty() || request.path[0] != '/') {
    return false;
  }
  // Reject traversal and embedded NULs — crude but representative of the
  // gateway's schema validation role.
  if (request.path.find("..") != std::string::npos ||
      request.path.find('\0') != std::string::npos) {
    return false;
  }
  return true;
}

GatewayVerdict ApiGateway::Check(const ApiRequest& request) {
  if (!WellFormed(request)) {
    ++malformed_;
    return GatewayVerdict::kMalformed;
  }
  const Principal* principal =
      registry_ != nullptr ? registry_->Authenticate(request.token) : nullptr;
  if (principal == nullptr) {
    ++unauthenticated_;
    return GatewayVerdict::kUnauthenticated;
  }
  for (const Grant& grant : grants_) {
    if (grant.principal != principal->id) {
      continue;
    }
    if (grant.method != "*" && grant.method != request.method) {
      continue;
    }
    if (request.path.rfind(grant.path_prefix, 0) == 0) {
      ++accepted_;
      return GatewayVerdict::kAccepted;
    }
  }
  ++unauthorized_;
  return GatewayVerdict::kUnauthorized;
}

void ApiGateway::ResetCounters() {
  accepted_ = 0;
  malformed_ = 0;
  unauthenticated_ = 0;
  unauthorized_ = 0;
}

}  // namespace tenantnet
