// Synthetic tenant traces.
//
// §6(i) says the scalability questions "can be quantitatively answered
// given the appropriate data traces; e.g., with traces that include
// launch/teardown times for tenant instances, per-instance communication
// patterns". We do not have production traces (documented substitution in
// DESIGN.md), so this generator produces the closest synthetic equivalent:
//
//  * instance launches: Poisson arrivals per tenant,
//  * lifetimes: bounded Pareto (heavy-tailed: most instances are
//    short-lived, a few live for the whole trace — the shape cloud
//    churn studies consistently report),
//  * communication: Zipf-weighted partner selection (most instances talk
//    to a few popular services),
//  * permit-list updates: a fraction of launches/teardowns trigger
//    permit-list changes on their communication partners.

#ifndef TENANTNET_SRC_APP_TRACE_H_
#define TENANTNET_SRC_APP_TRACE_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/time.h"

namespace tenantnet {

enum class TraceEventKind : uint8_t { kLaunch, kTeardown };

struct TraceEvent {
  SimTime at;
  TraceEventKind kind;
  uint64_t tenant;
  uint64_t instance;                  // trace-local id
  std::vector<uint64_t> talks_to;     // instances this one communicates with
};

struct TraceParams {
  uint64_t tenants = 10;
  double launches_per_second_per_tenant = 2.0;
  double mean_lifetime_seconds = 300;
  double pareto_alpha = 1.3;          // lifetime tail index
  double max_lifetime_seconds = 86400;
  double zipf_s = 1.1;                // popularity skew of partners
  uint64_t partners_per_instance = 4;
  SimDuration duration = SimDuration::Seconds(3600);
  uint64_t seed = 1234;
};

struct TenantTrace {
  std::vector<TraceEvent> events;     // sorted by time
  uint64_t peak_live_instances = 0;
  uint64_t total_instances = 0;
};

// Generates one trace. Deterministic for a given TraceParams.
TenantTrace GenerateTrace(const TraceParams& params);

}  // namespace tenantnet

#endif  // TENANTNET_SRC_APP_TRACE_H_
