// Attachable revision counters for baseline config objects.
//
// The baseline fabric memoizes flow verdicts, but callers legitimately hold
// mutable pointers to route tables, security groups, ACLs, firewalls and
// TGWs (that is the baseline world's whole ergonomic problem) and mutate
// them directly between evaluations. RevisionHooked lets the owning fabric
// attach its config epoch to each object it hands out: any mutator bumps
// the epoch, so cached verdicts self-invalidate no matter which path the
// mutation took. Objects never handed to a fabric have no counter attached
// and the hook is a no-op.

#ifndef TENANTNET_SRC_VNET_REVISION_H_
#define TENANTNET_SRC_VNET_REVISION_H_

#include <cstdint>

namespace tenantnet {

class RevisionHooked {
 public:
  // `counter` must outlive this object (the fabric owns both).
  void AttachRevisionCounter(uint64_t* counter) { revision_counter_ = counter; }

 protected:
  void BumpRevision() const {
    if (revision_counter_ != nullptr) {
      ++*revision_counter_;
    }
  }

 private:
  uint64_t* revision_counter_ = nullptr;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_VNET_REVISION_H_
