#include "src/vnet/firewall.h"

#include <algorithm>

namespace tenantnet {

void DpiFirewall::AddRule(FirewallRule rule) {
  auto pos = std::upper_bound(rules_.begin(), rules_.end(), rule,
                              [](const FirewallRule& a, const FirewallRule& b) {
                                return a.priority < b.priority;
                              });
  rules_.insert(pos, std::move(rule));
  BumpRevision();
}

FirewallVerdict DpiFirewall::Inspect(const FiveTuple& flow,
                                     std::string_view payload) {
  ++inspected_;
  for (const FirewallRule& rule : rules_) {
    if (!rule.match.Matches(flow)) {
      continue;
    }
    if (!rule.payload_signature.empty() &&
        payload.find(rule.payload_signature) == std::string_view::npos) {
      continue;
    }
    if (rule.verdict == FirewallVerdict::kDeny) {
      ++denied_;
    }
    return rule.verdict;
  }
  if (default_verdict_ == FirewallVerdict::kDeny) {
    ++denied_;
  }
  return default_verdict_;
}

}  // namespace tenantnet
