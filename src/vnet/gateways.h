// Baseline-world gateways: the "9 gateways" of Figure 1.
//
// Internet gateways, egress-only IGWs, NAT gateways, VPN gateways, VPC
// peering connections, transit gateways (the BGP-speaking interconnect
// hub), and Direct Connect circuits. These are the low-level boxes the
// paper argues tenants should never have to assemble; the baseline builder
// assembles all of them, through the ledger, so their cost is measurable.

#ifndef TENANTNET_SRC_VNET_GATEWAYS_H_
#define TENANTNET_SRC_VNET_GATEWAYS_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/cloud/world.h"
#include "src/common/ids.h"
#include "src/net/ip.h"
#include "src/routing/bgp.h"
#include "src/routing/lpm_trie.h"
#include "src/vnet/revision.h"
#include "src/vnet/vpc.h"

namespace tenantnet {

using IgwId = TypedId<struct IgwIdTag>;
using EgressOnlyIgwId = TypedId<struct EgressOnlyIgwIdTag>;
using NatGatewayId = TypedId<struct NatGatewayIdTag>;
using VpnGatewayId = TypedId<struct VpnGatewayIdTag>;
using PeeringId = TypedId<struct PeeringIdTag>;
using TransitGatewayId = TypedId<struct TransitGatewayIdTag>;
using DirectConnectId = TypedId<struct DirectConnectIdTag>;

// IPv4 internet gateway: gives a VPC's public subnets a route to/from the
// public internet.
struct InternetGateway {
  IgwId id;
  VpcId vpc;
  std::string name;
};

// IPv6 egress-only IGW: outbound-initiated traffic only.
struct EgressOnlyInternetGateway {
  EgressOnlyIgwId id;
  VpcId vpc;
  std::string name;
};

// NAT gateway: lives in a public subnet, translates private sources to its
// public address for outbound flows (inbound-initiated traffic is dropped).
struct NatGateway {
  NatGatewayId id;
  SubnetId subnet;
  IpAddress public_ip;
  std::string name;
};

// VPN gateway: IPsec-ish tunnel endpoint attaching a VPC to an on-prem
// site; runs BGP with the customer gateway.
struct VpnGateway {
  VpnGatewayId id;
  VpcId vpc;
  OnPremId remote_site;
  uint32_t bgp_asn = 0;
  SpeakerId speaker;  // this gateway's speaker in the tenant BGP mesh
  std::string name;
};

// Private connectivity between exactly two VPCs. Non-transitive (the
// classic trap: A<->B and B<->C does not give A<->C).
struct VpcPeering {
  PeeringId id;
  VpcId requester;
  VpcId accepter;
  bool accepted = false;
  std::string name;
};

// What a transit gateway route resolves to.
enum class TgwAttachmentKind : uint8_t {
  kVpc,
  kVpn,            // to an on-prem site
  kPeering,        // to another transit gateway (cross-region/cloud)
  kDirectConnect,  // to a dedicated circuit
};

struct TgwAttachment {
  TgwAttachmentKind kind = TgwAttachmentKind::kVpc;
  uint64_t target_id = 0;  // VpcId / VpnGatewayId / TransitGatewayId /
                           // DirectConnectId value, per kind
  std::string name;
};

// Where a TGW FIB entry came from. Static routes are installed at attach
// time (or via AddTgwRoute) and survive BGP reconvergence; propagated
// routes are owned by PropagateRoutes() and are the only ones delta
// withdraws / full rebuilds may remove.
enum class TgwRouteOrigin : uint8_t {
  kStatic,
  kPropagated,
};

struct TgwRoute {
  size_t attachment = 0;
  TgwRouteOrigin origin = TgwRouteOrigin::kStatic;

  friend bool operator==(const TgwRoute& a, const TgwRoute& b) {
    return a.attachment == b.attachment && a.origin == b.origin;
  }
};

// Regional interconnect hub; holds its own route table over attachments.
class TransitGateway : public RevisionHooked {
 public:
  TransitGateway(TransitGatewayId id, ProviderId provider, RegionId region,
                 uint32_t asn, std::string name)
      : id_(id), provider_(provider), region_(region), asn_(asn),
        name_(std::move(name)) {}

  TransitGatewayId id() const { return id_; }
  ProviderId provider() const { return provider_; }
  RegionId region() const { return region_; }
  uint32_t asn() const { return asn_; }
  const std::string& name() const { return name_; }
  SpeakerId speaker() const { return speaker_; }
  void set_speaker(SpeakerId s) { speaker_ = s; }

  // Returns the attachment index.
  size_t Attach(TgwAttachment attachment) {
    attachments_.push_back(std::move(attachment));
    BumpRevision();
    return attachments_.size() - 1;
  }
  const std::vector<TgwAttachment>& attachments() const { return attachments_; }

  // Static route. Returns true (and bumps the revision) only if the FIB
  // actually changed.
  bool InstallRoute(const IpPrefix& prefix, size_t attachment_index) {
    return Install(prefix,
                   TgwRoute{attachment_index, TgwRouteOrigin::kStatic});
  }
  // BGP-derived route (last writer wins, matching flood-order semantics of
  // the full rebuild). Returns true only on actual change.
  bool InstallPropagatedRoute(const IpPrefix& prefix,
                              size_t attachment_index) {
    return Install(prefix,
                   TgwRoute{attachment_index, TgwRouteOrigin::kPropagated});
  }
  // Removes a propagated route; static routes are left alone. Returns true
  // only if an entry was removed.
  bool WithdrawPropagatedRoute(const IpPrefix& prefix) {
    const TgwRoute* existing = routes_.ExactMatch(prefix);
    if (existing == nullptr ||
        existing->origin != TgwRouteOrigin::kPropagated) {
      return false;
    }
    routes_.Remove(prefix);
    BumpRevision();
    return true;
  }
  // Drops every propagated route (full-rebuild reference path). Returns how
  // many were removed.
  size_t ClearPropagatedRoutes() {
    std::vector<IpPrefix> doomed;
    routes_.ForEach([&](const IpPrefix& prefix, const TgwRoute& route) {
      if (route.origin == TgwRouteOrigin::kPropagated) {
        doomed.push_back(prefix);
      }
    });
    for (const IpPrefix& prefix : doomed) {
      routes_.Remove(prefix);
    }
    if (!doomed.empty()) {
      BumpRevision();
    }
    return doomed.size();
  }
  // Longest-prefix match to an attachment; nullptr = drop.
  const TgwRoute* Lookup(IpAddress dst) const {
    return routes_.LongestMatch(dst);
  }
  const TgwRoute* ExactRoute(const IpPrefix& prefix) const {
    return routes_.ExactMatch(prefix);
  }
  // Full FIB as sorted (prefix, route) pairs, for differential snapshots.
  std::vector<std::pair<IpPrefix, TgwRoute>> Routes() const {
    std::vector<std::pair<IpPrefix, TgwRoute>> out;
    routes_.ForEach([&](const IpPrefix& prefix, const TgwRoute& route) {
      out.emplace_back(prefix, route);
    });
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return out;
  }
  size_t route_count() const { return routes_.entry_count(); }

  // Wholesale FIB replacement with a Routes()-shaped image (restart disaster
  // path). Bumps the revision once, and only if the table actually changed.
  bool RestoreRoutes(const std::vector<std::pair<IpPrefix, TgwRoute>>& fib) {
    if (Routes() == fib) {
      return false;
    }
    std::vector<IpPrefix> doomed;
    routes_.ForEach([&](const IpPrefix& prefix, const TgwRoute&) {
      doomed.push_back(prefix);
    });
    for (const IpPrefix& prefix : doomed) {
      routes_.Remove(prefix);
    }
    for (const auto& [prefix, route] : fib) {
      routes_.Insert(prefix, route);
    }
    BumpRevision();
    return true;
  }

 private:
  bool Install(const IpPrefix& prefix, TgwRoute route) {
    const TgwRoute* existing = routes_.ExactMatch(prefix);
    if (existing != nullptr && *existing == route) {
      return false;
    }
    routes_.Insert(prefix, route);
    BumpRevision();
    return true;
  }

  TransitGatewayId id_;
  ProviderId provider_;
  RegionId region_;
  uint32_t asn_;
  std::string name_;
  SpeakerId speaker_;
  std::vector<TgwAttachment> attachments_;
  LpmTrie<TgwRoute> routes_;
};

// A dedicated circuit from a region's edge to an exchange point, plus the
// logical "virtual interface" configuration riding it.
struct DirectConnectConnection {
  DirectConnectId id;
  RegionId region;
  ExchangeId exchange;
  LinkId circuit;        // the physical dedicated link
  double capacity_bps = 0;
  uint16_t vlan = 0;
  uint32_t bgp_asn = 0;
  SpeakerId speaker;
  std::string name;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_VNET_GATEWAYS_H_
