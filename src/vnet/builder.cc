#include "src/vnet/builder.h"

#include <string>

namespace tenantnet {

namespace {

// Standard ACL skeleton: allow everything from the tenant's private space,
// allow return traffic to ephemeral ports, allow all egress. Extra
// service-specific ingress entries are added by the caller.
Status PopulateStandardAcl(BaselineNetwork& net, NetworkAclId acl) {
  AclEntry internal;
  internal.rule_number = 100;
  internal.allow = true;
  internal.direction = TrafficDirection::kIngress;
  internal.match = FlowMatch::FromSource(*IpPrefix::Parse("10.0.0.0/8"));
  TN_RETURN_IF_ERROR(net.AddAclEntry(acl, internal));

  AclEntry ephemeral;
  ephemeral.rule_number = 110;
  ephemeral.allow = true;
  ephemeral.direction = TrafficDirection::kIngress;
  ephemeral.match = FlowMatch::Any();
  ephemeral.match.dst_ports = PortRange{1024, 65535};
  TN_RETURN_IF_ERROR(net.AddAclEntry(acl, ephemeral));

  AclEntry egress;
  egress.rule_number = 100;
  egress.allow = true;
  egress.direction = TrafficDirection::kEgress;
  egress.match = FlowMatch::Any();
  TN_RETURN_IF_ERROR(net.AddAclEntry(acl, egress));
  return Status::Ok();
}

Status AllowServiceIngress(BaselineNetwork& net, NetworkAclId acl,
                           uint32_t rule_number, uint16_t port,
                           const IpPrefix& from) {
  AclEntry entry;
  entry.rule_number = rule_number;
  entry.allow = true;
  entry.direction = TrafficDirection::kIngress;
  entry.match = FlowMatch::FromSource(from);
  entry.match.dst_ports = PortRange::Single(port);
  entry.match.proto = Protocol::kTcp;
  return net.AddAclEntry(acl, entry);
}

SgRule EgressAll() {
  SgRule rule;
  rule.direction = TrafficDirection::kEgress;
  rule.proto = Protocol::kAny;
  rule.ports = PortRange::Any();
  rule.peer = IpPrefix::Any(IpFamily::kIpv4);
  rule.description = "egress-all";
  return rule;
}

SgRule IngressTcp(uint16_t port, const IpPrefix& from,
                  const std::string& what) {
  SgRule rule;
  rule.direction = TrafficDirection::kIngress;
  rule.proto = Protocol::kTcp;
  rule.ports = PortRange::Single(port);
  rule.peer = from;
  rule.description = what;
  return rule;
}

// Creates a VPC with per-zone subnets, a dedicated ACL with the standard
// skeleton, a shared route table for the private subnets, and attaches
// instances (matching instance zone to subnet zone).
struct VpcBundle {
  VpcId vpc;
  std::vector<SubnetId> private_subnets;
  SubnetId public_subnet;  // invalid unless requested
  VpcRouteTableId private_rt;
  VpcRouteTableId public_rt;  // invalid unless requested
  NetworkAclId acl;
};

Result<VpcBundle> MakeVpc(BaselineNetwork& net, const Fig1World& fig,
                          ProviderId provider, RegionId region,
                          const std::string& name, const std::string& cidr,
                          int private_zone_count, bool want_public_subnet) {
  VpcBundle bundle;
  TN_ASSIGN_OR_RETURN(
      bundle.vpc, net.CreateVpc(fig.tenant, provider, region, name,
                                *IpPrefix::Parse(cidr)));
  TN_ASSIGN_OR_RETURN(bundle.acl,
                      net.CreateNetworkAcl(bundle.vpc, name + ":acl"));
  TN_RETURN_IF_ERROR(PopulateStandardAcl(net, bundle.acl));
  TN_ASSIGN_OR_RETURN(bundle.private_rt,
                      net.CreateRouteTable(bundle.vpc, name + ":private-rt"));
  for (int z = 0; z < private_zone_count; ++z) {
    TN_ASSIGN_OR_RETURN(
        SubnetId subnet,
        net.CreateSubnet(bundle.vpc, name + ":private-" + std::to_string(z),
                         /*prefix_len=*/20, z, /*is_public=*/false));
    TN_RETURN_IF_ERROR(net.AssociateRouteTable(subnet, bundle.private_rt));
    TN_RETURN_IF_ERROR(net.AssociateAcl(subnet, bundle.acl));
    bundle.private_subnets.push_back(subnet);
  }
  if (want_public_subnet) {
    TN_ASSIGN_OR_RETURN(bundle.public_rt,
                        net.CreateRouteTable(bundle.vpc, name + ":public-rt"));
    TN_ASSIGN_OR_RETURN(
        bundle.public_subnet,
        net.CreateSubnet(bundle.vpc, name + ":public", /*prefix_len=*/24,
                         /*zone_index=*/0, /*is_public=*/true));
    TN_RETURN_IF_ERROR(
        net.AssociateRouteTable(bundle.public_subnet, bundle.public_rt));
    TN_RETURN_IF_ERROR(net.AssociateAcl(bundle.public_subnet, bundle.acl));
  }
  return bundle;
}

Status AttachGroup(BaselineNetwork& net, const std::vector<InstanceId>& group,
                   const VpcBundle& bundle, SecurityGroupId sg,
                   bool public_ip) {
  const CloudWorld& world = net.world();
  for (InstanceId instance : group) {
    const Instance* inst = world.FindInstance(instance);
    SubnetId subnet =
        bundle.private_subnets[static_cast<size_t>(inst->zone_index) %
                               bundle.private_subnets.size()];
    TN_ASSIGN_OR_RETURN(EniId eni,
                        net.AttachInstance(instance, subnet, {sg}, public_ip));
    (void)eni;
  }
  return Status::Ok();
}

}  // namespace

Result<Fig1Baseline> BuildFig1Baseline(BaselineNetwork& net,
                                       const Fig1World& fig) {
  Fig1Baseline out;
  IpPrefix any4 = IpPrefix::Any(IpFamily::kIpv4);
  IpPrefix ten8 = *IpPrefix::Parse("10.0.0.0/8");
  IpPrefix on_prem_space = net.world().on_prem(fig.on_prem).address_space;

  // ----- Step 1: VPCs, subnets, ACLs --------------------------------------
  // The CIDR plan itself is the tenant's burden: six non-overlapping /16s.
  TN_ASSIGN_OR_RETURN(auto spark, MakeVpc(net, fig, fig.cloud_a,
                                          fig.a_us_east, "spark",
                                          "10.0.0.0/16", 3, true));
  TN_ASSIGN_OR_RETURN(auto shared, MakeVpc(net, fig, fig.cloud_a,
                                           fig.a_us_east, "shared",
                                           "10.1.0.0/16", 1, true));
  TN_ASSIGN_OR_RETURN(auto web_us, MakeVpc(net, fig, fig.cloud_a,
                                           fig.a_us_west, "web-us",
                                           "10.2.0.0/16", 2, false));
  TN_ASSIGN_OR_RETURN(auto web_eu, MakeVpc(net, fig, fig.cloud_a,
                                           fig.a_eu_west, "web-eu",
                                           "10.3.0.0/16", 3, false));
  TN_ASSIGN_OR_RETURN(auto db, MakeVpc(net, fig, fig.cloud_b, fig.b_us_east,
                                       "db", "10.4.0.0/16", 2, false));
  TN_ASSIGN_OR_RETURN(auto analytics, MakeVpc(net, fig, fig.cloud_b,
                                              fig.b_europe, "analytics",
                                              "10.5.0.0/16", 2, false));
  out.vpc_spark = spark.vpc;
  out.vpc_shared = shared.vpc;
  out.vpc_web_us = web_us.vpc;
  out.vpc_web_eu = web_eu.vpc;
  out.vpc_db = db.vpc;
  out.vpc_analytics = analytics.vpc;
  for (const auto* b : {&spark, &shared, &web_us, &web_eu, &db, &analytics}) {
    out.all_subnets.insert(out.all_subnets.end(), b->private_subnets.begin(),
                           b->private_subnets.end());
    if (b->public_subnet.valid()) {
      out.all_subnets.push_back(b->public_subnet);
    }
  }

  // Service ports must be reachable through the stateless ACLs too.
  TN_RETURN_IF_ERROR(AllowServiceIngress(net, web_eu.acl, 120,
                                         Fig1Baseline::kWebPort, any4));
  TN_RETURN_IF_ERROR(AllowServiceIngress(net, web_us.acl, 120,
                                         Fig1Baseline::kWebPort, any4));

  // ----- Security groups ---------------------------------------------------
  TN_ASSIGN_OR_RETURN(out.sg_spark,
                      net.CreateSecurityGroup(spark.vpc, "sg-spark"));
  TN_RETURN_IF_ERROR(net.AddSgRule(out.sg_spark, EgressAll()));
  TN_RETURN_IF_ERROR(net.AddSgRule(
      out.sg_spark, IngressTcp(Fig1Baseline::kSparkPort, ten8, "spark-peers")));
  TN_RETURN_IF_ERROR(net.AddSgRule(
      out.sg_spark,
      IngressTcp(Fig1Baseline::kSparkPort, on_prem_space, "on-prem-submit")));

  TN_ASSIGN_OR_RETURN(out.sg_db, net.CreateSecurityGroup(db.vpc, "sg-db"));
  TN_RETURN_IF_ERROR(net.AddSgRule(out.sg_db, EgressAll()));
  TN_RETURN_IF_ERROR(net.AddSgRule(
      out.sg_db, IngressTcp(Fig1Baseline::kDbPort,
                            *IpPrefix::Parse("10.0.0.0/16"), "from-spark")));
  TN_RETURN_IF_ERROR(net.AddSgRule(
      out.sg_db, IngressTcp(Fig1Baseline::kDbPort,
                            *IpPrefix::Parse("10.5.0.0/16"),
                            "from-analytics")));
  TN_RETURN_IF_ERROR(net.AddSgRule(
      out.sg_db, IngressTcp(Fig1Baseline::kDbPort,
                            *IpPrefix::Parse("10.1.0.0/16"), "from-shared")));
  TN_RETURN_IF_ERROR(net.AddSgRule(
      out.sg_db,
      IngressTcp(Fig1Baseline::kDbPort, on_prem_space, "from-on-prem")));

  TN_ASSIGN_OR_RETURN(out.sg_web,
                      net.CreateSecurityGroup(web_eu.vpc, "sg-web"));
  TN_RETURN_IF_ERROR(net.AddSgRule(out.sg_web, EgressAll()));
  TN_RETURN_IF_ERROR(net.AddSgRule(
      out.sg_web, IngressTcp(Fig1Baseline::kWebPort, any4, "public-https")));

  // Security groups are VPC-scoped, so the us-west web tier needs its own
  // copy of the same rules — exactly the duplication §3(5) complains about.
  TN_ASSIGN_OR_RETURN(SecurityGroupId sg_web_us,
                      net.CreateSecurityGroup(web_us.vpc, "sg-web-us"));
  TN_RETURN_IF_ERROR(net.AddSgRule(sg_web_us, EgressAll()));
  TN_RETURN_IF_ERROR(net.AddSgRule(
      sg_web_us, IngressTcp(Fig1Baseline::kWebPort, any4, "public-https")));

  TN_ASSIGN_OR_RETURN(out.sg_analytics,
                      net.CreateSecurityGroup(analytics.vpc, "sg-analytics"));
  TN_RETURN_IF_ERROR(net.AddSgRule(out.sg_analytics, EgressAll()));
  TN_RETURN_IF_ERROR(net.AddSgRule(
      out.sg_analytics,
      IngressTcp(Fig1Baseline::kAnalyticsPort, ten8, "internal")));

  // ----- Step 2: gateways in/out -------------------------------------------
  TN_ASSIGN_OR_RETURN(out.igw_spark,
                      net.CreateInternetGateway(spark.vpc, "igw-spark"));
  TN_ASSIGN_OR_RETURN(out.igw_web_us,
                      net.CreateInternetGateway(web_us.vpc, "igw-web-us"));
  TN_ASSIGN_OR_RETURN(out.igw_web_eu,
                      net.CreateInternetGateway(web_eu.vpc, "igw-web-eu"));
  TN_ASSIGN_OR_RETURN(out.igw_shared,
                      net.CreateInternetGateway(shared.vpc, "igw-shared"));
  TN_ASSIGN_OR_RETURN(out.nat_spark,
                      net.CreateNatGateway(spark.public_subnet, "nat-spark"));
  TN_ASSIGN_OR_RETURN(
      out.vpg_shared,
      net.CreateVpnGateway(shared.vpc, fig.on_prem, 64620, "vpg-shared"));

  // ----- Steps 3+4: transit gateways, peerings, circuits -------------------
  TN_ASSIGN_OR_RETURN(out.tgw_a, net.CreateTransitGateway(
                                     fig.cloud_a, fig.a_us_east, 64601,
                                     "tgw-a-useast"));
  TN_ASSIGN_OR_RETURN(out.tgw_a_eu, net.CreateTransitGateway(
                                        fig.cloud_a, fig.a_eu_west, 64602,
                                        "tgw-a-euwest"));
  TN_ASSIGN_OR_RETURN(out.tgw_b, net.CreateTransitGateway(
                                     fig.cloud_b, fig.b_us_east, 64611,
                                     "tgw-b-useast"));
  TN_RETURN_IF_ERROR(net.AttachVpcToTgw(out.tgw_a, spark.vpc).status());
  TN_RETURN_IF_ERROR(net.AttachVpcToTgw(out.tgw_a, shared.vpc).status());
  TN_RETURN_IF_ERROR(net.AttachVpcToTgw(out.tgw_a_eu, web_eu.vpc).status());
  TN_RETURN_IF_ERROR(net.AttachVpcToTgw(out.tgw_b, db.vpc).status());
  TN_RETURN_IF_ERROR(net.PeerTransitGateways(out.tgw_a, out.tgw_a_eu));

  TN_ASSIGN_OR_RETURN(out.dx_a, net.CreateDirectConnect(
                                    fig.a_us_east, fig.exchange, 10e9, 101,
                                    64631, "dx-cloud-a"));
  TN_ASSIGN_OR_RETURN(out.dx_b, net.CreateDirectConnect(
                                    fig.b_us_east, fig.exchange, 10e9, 102,
                                    64632, "dx-cloud-b"));
  TN_RETURN_IF_ERROR(net.AttachDirectConnectToTgw(out.tgw_a, out.dx_a).status());
  TN_RETURN_IF_ERROR(net.AttachDirectConnectToTgw(out.tgw_b, out.dx_b).status());
  TN_RETURN_IF_ERROR(net.CrossConnect(out.dx_a, out.dx_b));
  TN_RETURN_IF_ERROR(net.CrossConnectToOnPrem(out.dx_a, fig.on_prem, 5e9));

  // VPC peerings where TGWs do not reach (cross-region, same provider).
  TN_ASSIGN_OR_RETURN(PeeringId p_web, net.CreatePeering(
                                           web_us.vpc, spark.vpc,
                                           "peer-webus-spark"));
  TN_RETURN_IF_ERROR(net.AcceptPeering(p_web));
  TN_ASSIGN_OR_RETURN(PeeringId p_analytics,
                      net.CreatePeering(analytics.vpc, db.vpc,
                                        "peer-analytics-db"));
  TN_RETURN_IF_ERROR(net.AcceptPeering(p_analytics));

  // ----- Route tables (the glue the tenant must hand-write) ----------------
  auto tgw_target = [](TransitGatewayId id) {
    return VpcRouteTarget{VpcRouteTargetKind::kTransitGateway, id.value()};
  };
  auto igw_target = [](IgwId id) {
    return VpcRouteTarget{VpcRouteTargetKind::kInternetGateway, id.value()};
  };
  auto nat_target = [](NatGatewayId id) {
    return VpcRouteTarget{VpcRouteTargetKind::kNatGateway, id.value()};
  };
  auto peering_target = [](PeeringId id) {
    return VpcRouteTarget{VpcRouteTargetKind::kPeering, id.value()};
  };

  // spark: private subnets reach the world through NAT, the tenant network
  // through TGW, and us-west through the peering.
  TN_RETURN_IF_ERROR(net.AddRoute(spark.private_rt, ten8,
                                  tgw_target(out.tgw_a)));
  TN_RETURN_IF_ERROR(net.AddRoute(spark.private_rt, on_prem_space,
                                  tgw_target(out.tgw_a)));
  TN_RETURN_IF_ERROR(net.AddRoute(spark.private_rt,
                                  *IpPrefix::Parse("10.2.0.0/16"),
                                  peering_target(p_web)));
  TN_RETURN_IF_ERROR(net.AddRoute(spark.private_rt, any4,
                                  nat_target(out.nat_spark)));
  TN_RETURN_IF_ERROR(net.AddRoute(spark.public_rt, any4,
                                  igw_target(out.igw_spark)));

  // shared: TGW for the tenant network, VPN for on-prem, IGW for public.
  TN_RETURN_IF_ERROR(net.AddRoute(shared.private_rt, ten8,
                                  tgw_target(out.tgw_a)));
  TN_RETURN_IF_ERROR(
      net.AddRoute(shared.private_rt, on_prem_space,
                   VpcRouteTarget{VpcRouteTargetKind::kVpnGateway,
                                  out.vpg_shared.value()}));
  TN_RETURN_IF_ERROR(net.AddRoute(shared.public_rt, any4,
                                  igw_target(out.igw_shared)));

  // web-us: peering back to spark; everything else via its IGW.
  TN_RETURN_IF_ERROR(net.AddRoute(web_us.private_rt,
                                  *IpPrefix::Parse("10.0.0.0/16"),
                                  peering_target(p_web)));
  TN_RETURN_IF_ERROR(net.AddRoute(web_us.private_rt, any4,
                                  igw_target(out.igw_web_us)));

  // web-eu: tenant network via the EU TGW; public via IGW.
  TN_RETURN_IF_ERROR(net.AddRoute(web_eu.private_rt, ten8,
                                  tgw_target(out.tgw_a_eu)));
  TN_RETURN_IF_ERROR(net.AddRoute(web_eu.private_rt, on_prem_space,
                                  tgw_target(out.tgw_a_eu)));
  TN_RETURN_IF_ERROR(net.AddRoute(web_eu.private_rt, any4,
                                  igw_target(out.igw_web_eu)));

  // db: tenant network via TGW-B; analytics via peering.
  TN_RETURN_IF_ERROR(net.AddRoute(db.private_rt, ten8, tgw_target(out.tgw_b)));
  TN_RETURN_IF_ERROR(net.AddRoute(db.private_rt, on_prem_space,
                                  tgw_target(out.tgw_b)));
  TN_RETURN_IF_ERROR(net.AddRoute(db.private_rt,
                                  *IpPrefix::Parse("10.5.0.0/16"),
                                  peering_target(p_analytics)));

  // analytics: only the database, via peering.
  TN_RETURN_IF_ERROR(net.AddRoute(analytics.private_rt,
                                  *IpPrefix::Parse("10.4.0.0/16"),
                                  peering_target(p_analytics)));

  // ----- Step 5: appliances -------------------------------------------------
  TN_ASSIGN_OR_RETURN(out.web_targets,
                      net.CreateTargetGroup("tg-web", Protocol::kTcp,
                                            Fig1Baseline::kWebPort));
  for (InstanceId instance : fig.web_eu) {
    TN_RETURN_IF_ERROR(net.RegisterTarget(out.web_targets, instance));
  }
  TN_ASSIGN_OR_RETURN(out.web_lb,
                      net.CreateLoadBalancer(LbType::kApplication, "alb-web",
                                             web_eu.vpc,
                                             web_eu.private_subnets));
  LbListener web_listener;
  web_listener.proto = Protocol::kTcp;
  web_listener.port = Fig1Baseline::kWebPort;
  web_listener.default_target = out.web_targets;
  TN_RETURN_IF_ERROR(net.AddLbListener(out.web_lb, web_listener));
  L7Rule api_rule;
  api_rule.priority = 10;
  api_rule.path_prefix = "/api";
  api_rule.target = out.web_targets;
  TN_RETURN_IF_ERROR(
      net.AddLbRule(out.web_lb, Fig1Baseline::kWebPort, api_rule));

  TN_ASSIGN_OR_RETURN(out.db_targets,
                      net.CreateTargetGroup("tg-db", Protocol::kTcp,
                                            Fig1Baseline::kDbPort));
  for (InstanceId instance : fig.database) {
    TN_RETURN_IF_ERROR(net.RegisterTarget(out.db_targets, instance));
  }
  TN_ASSIGN_OR_RETURN(out.db_lb,
                      net.CreateLoadBalancer(LbType::kNetwork, "nlb-db",
                                             db.vpc, db.private_subnets));
  LbListener db_listener;
  db_listener.proto = Protocol::kTcp;
  db_listener.port = Fig1Baseline::kDbPort;
  db_listener.default_target = out.db_targets;
  TN_RETURN_IF_ERROR(net.AddLbListener(out.db_lb, db_listener));

  TN_ASSIGN_OR_RETURN(out.firewall,
                      net.CreateFirewall("fw-ingress", /*capacity_pps=*/1e6));
  FirewallRule block_sqli;
  block_sqli.priority = 10;
  block_sqli.match = FlowMatch::Any();
  block_sqli.payload_signature = "DROP TABLE";
  block_sqli.verdict = FirewallVerdict::kDeny;
  block_sqli.description = "block-sqli";
  TN_RETURN_IF_ERROR(net.AddFirewallRule(out.firewall, block_sqli));
  FirewallRule allow_internal;
  allow_internal.priority = 50;
  allow_internal.match = FlowMatch::FromSource(ten8);
  allow_internal.verdict = FirewallVerdict::kAllow;
  allow_internal.description = "allow-internal";
  TN_RETURN_IF_ERROR(net.AddFirewallRule(out.firewall, allow_internal));
  FirewallRule allow_onprem;
  allow_onprem.priority = 55;
  allow_onprem.match = FlowMatch::FromSource(on_prem_space);
  allow_onprem.verdict = FirewallVerdict::kAllow;
  allow_onprem.description = "allow-on-prem";
  TN_RETURN_IF_ERROR(net.AddFirewallRule(out.firewall, allow_onprem));
  FirewallRule allow_https;
  allow_https.priority = 60;
  allow_https.match = FlowMatch::Any();
  allow_https.match.proto = Protocol::kTcp;
  allow_https.match.dst_ports = PortRange::Single(Fig1Baseline::kWebPort);
  allow_https.verdict = FirewallVerdict::kAllow;
  allow_https.description = "allow-https";
  TN_RETURN_IF_ERROR(net.AddFirewallRule(out.firewall, allow_https));
  TN_RETURN_IF_ERROR(net.SetIngressFirewall(web_eu.vpc, out.firewall));

  // ----- NICs ---------------------------------------------------------------
  TN_RETURN_IF_ERROR(AttachGroup(net, fig.spark, spark, out.sg_spark, false));
  TN_RETURN_IF_ERROR(AttachGroup(net, fig.database, db, out.sg_db, false));
  TN_RETURN_IF_ERROR(AttachGroup(net, fig.web_eu, web_eu, out.sg_web, true));
  TN_RETURN_IF_ERROR(AttachGroup(net, fig.web_us, web_us, sg_web_us, true));
  TN_RETURN_IF_ERROR(
      AttachGroup(net, fig.analytics, analytics, out.sg_analytics, false));
  for (InstanceId instance : fig.alerting) {
    TN_RETURN_IF_ERROR(net.AttachOnPremInstance(instance).status());
  }

  // ----- Route propagation (and the tenant better remember to run it) ------
  BgpMesh::ConvergenceStats stats = net.PropagateRoutes();
  if (!stats.converged) {
    return InternalError("tenant BGP mesh failed to converge");
  }
  return out;
}

}  // namespace tenantnet
