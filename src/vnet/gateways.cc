#include "src/vnet/gateways.h"

// Gateway types are data-only; evaluation logic lives in fabric.cc. This
// translation unit exists to anchor the header's vtable-free types in the
// library and to catch header self-containment regressions at build time.

namespace tenantnet {}  // namespace tenantnet
