#include "src/vnet/load_balancer.h"

#include <algorithm>
#include <cmath>

namespace tenantnet {

std::string_view LbTypeName(LbType type) {
  switch (type) {
    case LbType::kApplication:
      return "application-lb";
    case LbType::kNetwork:
      return "network-lb";
    case LbType::kClassic:
      return "classic-lb";
    case LbType::kGateway:
      return "gateway-lb";
  }
  return "?";
}

void TargetGroup::AddTarget(InstanceId instance, double weight) {
  targets_.push_back(TargetEntry{instance, weight, true, 0, 0});
}

Status TargetGroup::RemoveTarget(InstanceId instance) {
  auto it = std::find_if(
      targets_.begin(), targets_.end(),
      [instance](const TargetEntry& t) { return t.instance == instance; });
  if (it == targets_.end()) {
    return NotFoundError("target not in group");
  }
  targets_.erase(it);
  return Status::Ok();
}

void TargetGroup::RecordProbe(InstanceId instance, bool ok) {
  for (TargetEntry& t : targets_) {
    if (t.instance != instance) {
      continue;
    }
    if (ok) {
      t.consecutive_fail = 0;
      if (++t.consecutive_ok >= health_check_.healthy_threshold) {
        t.healthy = true;
      }
    } else {
      t.consecutive_ok = 0;
      if (++t.consecutive_fail >= health_check_.unhealthy_threshold) {
        t.healthy = false;
      }
    }
    return;
  }
}

void TargetGroup::SetHealth(InstanceId instance, bool healthy) {
  for (TargetEntry& t : targets_) {
    if (t.instance == instance) {
      t.healthy = healthy;
      t.consecutive_ok = 0;
      t.consecutive_fail = 0;
      return;
    }
  }
}

size_t TargetGroup::HealthyCount() const {
  size_t n = 0;
  for (const TargetEntry& t : targets_) {
    if (t.healthy) {
      ++n;
    }
  }
  return n;
}

Result<InstanceId> TargetGroup::Pick(uint64_t seq) const {
  // Weighted pick by walking the cumulative weight wheel at a
  // golden-ratio-scrambled position: deterministic, smooth, and
  // proportional to weights over any window.
  double total = 0;
  for (const TargetEntry& t : targets_) {
    if (t.healthy) {
      total += t.weight;
    }
  }
  if (total <= 0) {
    return ResourceExhaustedError("target group " + name_ +
                                  " has no healthy targets");
  }
  double point = std::fmod(static_cast<double>(seq) * 0.6180339887498949,
                           1.0) * total;
  for (const TargetEntry& t : targets_) {
    if (!t.healthy) {
      continue;
    }
    if (point < t.weight) {
      return t.instance;
    }
    point -= t.weight;
  }
  // Rounding fell off the wheel's end; return the last healthy target.
  for (auto it = targets_.rbegin(); it != targets_.rend(); ++it) {
    if (it->healthy) {
      return it->instance;
    }
  }
  return ResourceExhaustedError("no healthy targets");
}

Status LoadBalancer::AddRule(uint16_t port, L7Rule rule) {
  if (type_ != LbType::kApplication) {
    return FailedPreconditionError("rules are an application-LB feature");
  }
  for (LbListener& listener : listeners_) {
    if (listener.port == port) {
      auto pos = std::upper_bound(
          listener.rules.begin(), listener.rules.end(), rule,
          [](const L7Rule& a, const L7Rule& b) {
            return a.priority < b.priority;
          });
      listener.rules.insert(pos, std::move(rule));
      return Status::Ok();
    }
  }
  return NotFoundError("no listener on port " + std::to_string(port));
}

Result<TargetGroupId> LoadBalancer::Resolve(const FiveTuple& flow,
                                            const HttpRequestMeta* meta) const {
  for (const LbListener& listener : listeners_) {
    if (listener.port != flow.dst_port) {
      continue;
    }
    if (listener.proto != Protocol::kAny && listener.proto != flow.proto) {
      continue;
    }
    if (type_ == LbType::kApplication && meta != nullptr) {
      for (const L7Rule& rule : listener.rules) {
        bool match = true;
        if (rule.path_prefix.has_value() &&
            meta->path.rfind(*rule.path_prefix, 0) != 0) {
          match = false;
        }
        if (match && rule.host_equals.has_value() &&
            meta->host != *rule.host_equals) {
          match = false;
        }
        if (match && rule.header_equals.has_value()) {
          auto it = meta->headers.find(rule.header_equals->first);
          if (it == meta->headers.end() ||
              it->second != rule.header_equals->second) {
            match = false;
          }
        }
        if (match) {
          return rule.target;
        }
      }
    }
    if (listener.default_target.valid()) {
      return listener.default_target;
    }
    return NotFoundError("listener has no default target group");
  }
  return NotFoundError("no listener for port " +
                       std::to_string(flow.dst_port) + " on " + name_);
}

}  // namespace tenantnet
