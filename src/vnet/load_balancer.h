// Baseline-world load balancers: the four families of the paper's Table 1.
//
//   Application LB  — L7: path / host / header rules route to target groups
//   Network LB      — L4: listener (proto, port) to target group
//   Classic LB      — L4 & L7: flat listener list, no rule engine
//   Gateway LB      — L3: steers flows through appliance target groups
//
// Each family drags in its own configuration surface (the ledger records
// it), and the tenant must pick the right family in the first place — the
// five-level decision tree the paper cites. Targets live in target groups
// with health checks; resolution is weighted round-robin over healthy
// targets.

#ifndef TENANTNET_SRC_VNET_LOAD_BALANCER_H_
#define TENANTNET_SRC_VNET_LOAD_BALANCER_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/cloud/world.h"
#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/net/flow.h"

namespace tenantnet {

using TargetGroupId = TypedId<struct TargetGroupIdTag>;
using LoadBalancerId = TypedId<struct LoadBalancerIdTag>;
// Same alias as in vnet/vpc.h (TypedId makes the types identical).
using VpcId = TypedId<struct VpcIdTag>;

struct HealthCheckConfig {
  std::string path = "/healthz";
  SimDuration interval = SimDuration::Seconds(10);
  int healthy_threshold = 3;
  int unhealthy_threshold = 2;
  uint16_t port = 0;  // 0 = traffic port
};

struct TargetEntry {
  InstanceId instance;
  double weight = 1.0;
  bool healthy = true;
  int consecutive_ok = 0;
  int consecutive_fail = 0;
};

class TargetGroup {
 public:
  TargetGroup(TargetGroupId id, std::string name, Protocol proto,
              uint16_t port)
      : id_(id), name_(std::move(name)), proto_(proto), port_(port) {}

  TargetGroupId id() const { return id_; }
  const std::string& name() const { return name_; }
  Protocol proto() const { return proto_; }
  uint16_t port() const { return port_; }

  void AddTarget(InstanceId instance, double weight = 1.0);
  Status RemoveTarget(InstanceId instance);

  // Applies one health-probe outcome; flips state at the thresholds.
  void RecordProbe(InstanceId instance, bool ok);

  // Directly set health (used when an instance terminates).
  void SetHealth(InstanceId instance, bool healthy);

  const std::vector<TargetEntry>& targets() const { return targets_; }
  const HealthCheckConfig& health_check() const { return health_check_; }
  HealthCheckConfig& mutable_health_check() { return health_check_; }

  size_t HealthyCount() const;

  // Weighted round-robin over healthy targets: `seq` is the caller's pick
  // counter, giving deterministic smooth interleaving.
  Result<InstanceId> Pick(uint64_t seq) const;

 private:
  TargetGroupId id_;
  std::string name_;
  Protocol proto_;
  uint16_t port_;
  HealthCheckConfig health_check_;
  std::vector<TargetEntry> targets_;
};

enum class LbType : uint8_t { kApplication, kNetwork, kClassic, kGateway };

std::string_view LbTypeName(LbType type);

// L7 request attributes an ALB can rule on.
struct HttpRequestMeta {
  std::string path = "/";
  std::string host;
  std::map<std::string, std::string> headers;
};

// One ALB routing rule; all set conditions must match.
struct L7Rule {
  uint32_t priority = 100;  // evaluated ascending
  std::optional<std::string> path_prefix;
  std::optional<std::string> host_equals;
  std::optional<std::pair<std::string, std::string>> header_equals;
  TargetGroupId target;
};

struct LbListener {
  Protocol proto = Protocol::kTcp;
  uint16_t port = 0;
  TargetGroupId default_target;
  std::vector<L7Rule> rules;  // ALB only
};

class LoadBalancer {
 public:
  LoadBalancer(LoadBalancerId id, LbType type, std::string name, VpcId vpc)
      : id_(id), type_(type), name_(std::move(name)), vpc_(vpc.value()) {}

  LoadBalancerId id() const { return id_; }
  LbType type() const { return type_; }
  const std::string& name() const { return name_; }
  uint64_t vpc_value() const { return vpc_; }

  void AddListener(LbListener listener) {
    listeners_.push_back(std::move(listener));
  }
  // Adds a rule to the listener on `port`, keeping priority order.
  Status AddRule(uint16_t port, L7Rule rule);

  const std::vector<LbListener>& listeners() const { return listeners_; }

  // Resolves which target group handles a flow. ALB additionally consults
  // request metadata; other families ignore it. No matching listener is an
  // error (connection refused).
  Result<TargetGroupId> Resolve(const FiveTuple& flow,
                                const HttpRequestMeta* meta) const;

 private:
  LoadBalancerId id_;
  LbType type_;
  std::string name_;
  uint64_t vpc_;
  std::vector<LbListener> listeners_;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_VNET_LOAD_BALANCER_H_
