// Cost model for the tenant network layer.
//
// §1: building a virtual network is "ad hoc, complex, and ultimately
// expensive". This module prices it. Every baseline box bills by the hour
// plus a per-GB processing fee for the traffic steered through it; both
// worlds pay the same provider *transfer* charges (inter-region, cross
// cloud, internet egress) — the comparison isolates the network-layer
// premium the boxes add on top.
//
// Prices default to round numbers in the vicinity of public list prices
// (2021-era, USD); they are inputs, not claims — the experiment's output
// is the *structure* of the bill, and every figure is parameterizable.

#ifndef TENANTNET_SRC_VNET_PRICING_H_
#define TENANTNET_SRC_VNET_PRICING_H_

#include <map>
#include <string>

#include "src/vnet/fabric.h"

namespace tenantnet {

struct PriceBook {
  double hours_per_month = 730;

  // Box-hours, $/hour.
  double nat_gateway_hour = 0.045;
  double tgw_attachment_hour = 0.05;
  double vpn_connection_hour = 0.05;
  double direct_connect_port_hour = 2.25;  // 10G dedicated port
  double lb_hour = 0.0225;
  double firewall_endpoint_hour = 0.395;

  // Per-GB processing at each box the traffic crosses.
  double nat_gb = 0.045;
  double tgw_gb = 0.02;
  double lb_gb = 0.008;
  double firewall_gb = 0.065;

  // Transfer charges both worlds pay identically.
  double inter_region_gb = 0.02;
  double cross_cloud_gb = 0.02;        // egress toward the other provider
  double internet_egress_gb = 0.09;
  double dedicated_transfer_gb = 0.02; // over Direct Connect

  // Declarative-world QoS reservation (per reserved Gbps-month). The paper
  // proposes the capability without pricing it; 0 by default so the bench
  // reports it separately.
  double egress_guarantee_gbps_month = 0.0;
};

// The tenant's monthly traffic, in GB, by where it goes.
struct MonthlyTraffic {
  double intra_region_gb = 0;
  double inter_region_gb = 0;
  double cross_cloud_gb = 0;     // rides TGW+DX in the baseline
  double internet_egress_gb = 0; // public responses (web tier)
  double nat_egress_gb = 0;      // private instances' outbound (baseline)
};

struct CostLine {
  double box_hours_usd = 0;
  double processing_usd = 0;
  double transfer_usd = 0;
  double total() const { return box_hours_usd + processing_usd + transfer_usd; }
};

struct CostReport {
  std::map<std::string, CostLine> lines;  // per component kind
  CostLine Sum() const {
    CostLine sum;
    for (const auto& [kind, line] : lines) {
      sum.box_hours_usd += line.box_hours_usd;
      sum.processing_usd += line.processing_usd;
      sum.transfer_usd += line.transfer_usd;
    }
    return sum;
  }
};

// Prices the baseline network: every box the tenant runs bills hours; the
// traffic profile determines processing fees (cross-cloud traffic crosses
// two TGWs and the circuits; NAT egress crosses the NAT; public responses
// cross the LBs and firewall).
CostReport PriceBaseline(const BaselineNetwork& net, const PriceBook& book,
                         const MonthlyTraffic& traffic);

// Prices the declarative deployment: transfer charges only, plus the
// (optional) egress-guarantee fee.
CostReport PriceDeclarative(const PriceBook& book,
                            const MonthlyTraffic& traffic,
                            double reserved_gbps);

}  // namespace tenantnet

#endif  // TENANTNET_SRC_VNET_PRICING_H_
