// Configuration-complexity accounting.
//
// The paper's central quantitative claim is about tenant-side complexity:
// how many components a tenant must create, how many parameters they must
// set, how many decisions they must make, and how many cross-references
// (object A naming object B) they must keep consistent. Both worlds write
// every tenant-visible action through a ConfigLedger, so experiments E1, E2
// and E7 report measured counts rather than assertions.
//
// Only *tenant* actions are recorded. Work the provider does beneath the
// API (allocating from its pool, programming its edges) is deliberately
// excluded — shifting that burden off the tenant is exactly the proposal.

#ifndef TENANTNET_SRC_VNET_CONFIG_LEDGER_H_
#define TENANTNET_SRC_VNET_CONFIG_LEDGER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tenantnet {

enum class ConfigAction : uint8_t {
  kCreateComponent,  // a box: VPC, subnet, gateway, LB, firewall, ...
  kSetParameter,     // one knob on a component
  kDecision,         // a choice among alternatives (v4/v6? which LB type?)
  kCrossReference,   // one object naming another that must stay consistent
  kApiCall,          // one declarative API invocation (Table 2 world)
};

std::string_view ConfigActionName(ConfigAction action);

struct ConfigRecord {
  ConfigAction action;
  std::string component_kind;  // "vpc", "transit-gateway", "permit-list", ...
  std::string detail;          // parameter name / decision description
};

class ConfigLedger {
 public:
  void Record(ConfigAction action, std::string component_kind,
              std::string detail);

  // Convenience wrappers used throughout the two worlds.
  void CreateComponent(std::string kind, std::string name) {
    Record(ConfigAction::kCreateComponent, std::move(kind), std::move(name));
  }
  void SetParameter(std::string kind, std::string param) {
    Record(ConfigAction::kSetParameter, std::move(kind), std::move(param));
  }
  void Decision(std::string kind, std::string what) {
    Record(ConfigAction::kDecision, std::move(kind), std::move(what));
  }
  void CrossReference(std::string kind, std::string what) {
    Record(ConfigAction::kCrossReference, std::move(kind), std::move(what));
  }
  void ApiCall(std::string kind, std::string what) {
    Record(ConfigAction::kApiCall, std::move(kind), std::move(what));
  }

  uint64_t CountOf(ConfigAction action) const;
  uint64_t components() const { return CountOf(ConfigAction::kCreateComponent); }
  uint64_t parameters() const { return CountOf(ConfigAction::kSetParameter); }
  uint64_t decisions() const { return CountOf(ConfigAction::kDecision); }
  uint64_t cross_references() const {
    return CountOf(ConfigAction::kCrossReference);
  }
  uint64_t api_calls() const { return CountOf(ConfigAction::kApiCall); }
  uint64_t total() const { return records_.size(); }

  // Component count per kind ("vpc" -> 6, "transit-gateway" -> 2, ...).
  std::map<std::string, uint64_t> ComponentsByKind() const;

  // All actions touching a kind, per action.
  std::map<std::string, uint64_t> TotalsByKind() const;

  const std::vector<ConfigRecord>& records() const { return records_; }

  void Clear() { records_.clear(); }

  // Tabular summary for benches: one line per action category.
  std::string Summary() const;

 private:
  std::vector<ConfigRecord> records_;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_VNET_CONFIG_LEDGER_H_
