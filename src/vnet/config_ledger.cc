#include "src/vnet/config_ledger.h"

#include <sstream>

namespace tenantnet {

std::string_view ConfigActionName(ConfigAction action) {
  switch (action) {
    case ConfigAction::kCreateComponent:
      return "components";
    case ConfigAction::kSetParameter:
      return "parameters";
    case ConfigAction::kDecision:
      return "decisions";
    case ConfigAction::kCrossReference:
      return "cross-references";
    case ConfigAction::kApiCall:
      return "api-calls";
  }
  return "?";
}

void ConfigLedger::Record(ConfigAction action, std::string component_kind,
                          std::string detail) {
  records_.push_back(
      ConfigRecord{action, std::move(component_kind), std::move(detail)});
}

uint64_t ConfigLedger::CountOf(ConfigAction action) const {
  uint64_t n = 0;
  for (const auto& r : records_) {
    if (r.action == action) {
      ++n;
    }
  }
  return n;
}

std::map<std::string, uint64_t> ConfigLedger::ComponentsByKind() const {
  std::map<std::string, uint64_t> out;
  for (const auto& r : records_) {
    if (r.action == ConfigAction::kCreateComponent) {
      ++out[r.component_kind];
    }
  }
  return out;
}

std::map<std::string, uint64_t> ConfigLedger::TotalsByKind() const {
  std::map<std::string, uint64_t> out;
  for (const auto& r : records_) {
    ++out[r.component_kind];
  }
  return out;
}

std::string ConfigLedger::Summary() const {
  std::ostringstream os;
  os << "components=" << components() << " parameters=" << parameters()
     << " decisions=" << decisions()
     << " cross-references=" << cross_references()
     << " api-calls=" << api_calls();
  return os.str();
}

}  // namespace tenantnet
