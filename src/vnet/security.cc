#include "src/vnet/security.h"

#include <algorithm>

namespace tenantnet {

bool SecurityGroup::Allows(TrafficDirection direction, const FiveTuple& flow,
                           const SgMembershipFn& membership) const {
  IpAddress remote =
      direction == TrafficDirection::kIngress ? flow.src : flow.dst;
  for (const SgRule& rule : rules_) {
    if (rule.direction != direction) {
      continue;
    }
    if (rule.proto != Protocol::kAny && rule.proto != flow.proto) {
      continue;
    }
    if (!rule.ports.Contains(flow.dst_port)) {
      continue;
    }
    bool peer_ok = false;
    if (const IpPrefix* prefix = std::get_if<IpPrefix>(&rule.peer)) {
      peer_ok = prefix->Contains(remote);
    } else {
      SecurityGroupId group = std::get<SecurityGroupId>(rule.peer);
      peer_ok = membership && membership(group, remote);
    }
    if (peer_ok) {
      return true;
    }
  }
  return false;
}

void NetworkAcl::AddEntry(AclEntry entry) {
  auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), entry,
      [](const AclEntry& a, const AclEntry& b) {
        return a.rule_number < b.rule_number;
      });
  entries_.insert(pos, std::move(entry));
  BumpRevision();
}

bool NetworkAcl::RemoveEntry(uint32_t rule_number,
                             TrafficDirection direction) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const AclEntry& e) {
                           return e.rule_number == rule_number &&
                                  e.direction == direction;
                         });
  if (it == entries_.end()) {
    return false;
  }
  entries_.erase(it);
  BumpRevision();
  return true;
}

bool NetworkAcl::Allows(TrafficDirection direction,
                        const FiveTuple& flow) const {
  for (const AclEntry& entry : entries_) {
    if (entry.direction != direction) {
      continue;
    }
    if (entry.match.Matches(flow)) {
      return entry.allow;
    }
  }
  return false;  // implicit final deny
}

}  // namespace tenantnet
