#include "src/vnet/pricing.h"

namespace tenantnet {

CostReport PriceBaseline(const BaselineNetwork& net, const PriceBook& book,
                         const MonthlyTraffic& traffic) {
  CostReport report;
  double hours = book.hours_per_month;

  CostLine& nat = report.lines["nat-gateway"];
  nat.box_hours_usd =
      static_cast<double>(net.nat_count()) * book.nat_gateway_hour * hours;
  if (net.nat_count() > 0) {
    nat.processing_usd = traffic.nat_egress_gb * book.nat_gb;
  }

  CostLine& tgw = report.lines["transit-gateways"];
  tgw.box_hours_usd = static_cast<double>(net.tgw_attachment_count()) *
                      book.tgw_attachment_hour * hours;
  // Cross-cloud traffic crosses a TGW on each side; inter-region tenant
  // traffic crosses its regional TGW pair too.
  if (net.tgw_count() > 0) {
    tgw.processing_usd =
        (2 * traffic.cross_cloud_gb + 2 * traffic.inter_region_gb) *
        book.tgw_gb;
  }

  CostLine& vpn = report.lines["vpn-gateways"];
  vpn.box_hours_usd = static_cast<double>(net.vpn_count()) *
                      book.vpn_connection_hour * hours;

  CostLine& dx = report.lines["direct-connect"];
  dx.box_hours_usd = static_cast<double>(net.dx_count()) *
                     book.direct_connect_port_hour * hours;
  dx.transfer_usd = traffic.cross_cloud_gb * book.dedicated_transfer_gb;

  CostLine& lb = report.lines["load-balancers"];
  lb.box_hours_usd =
      static_cast<double>(net.lb_count()) * book.lb_hour * hours;
  if (net.lb_count() > 0) {
    lb.processing_usd = traffic.internet_egress_gb * book.lb_gb;
  }

  CostLine& fw = report.lines["dpi-firewall"];
  fw.box_hours_usd = static_cast<double>(net.firewall_count()) *
                     book.firewall_endpoint_hour * hours;
  if (net.firewall_count() > 0) {
    fw.processing_usd = traffic.internet_egress_gb * book.firewall_gb;
  }

  CostLine& transfer = report.lines["transfer (both worlds)"];
  transfer.transfer_usd =
      traffic.inter_region_gb * book.inter_region_gb +
      traffic.internet_egress_gb * book.internet_egress_gb +
      traffic.nat_egress_gb * book.internet_egress_gb;
  return report;
}

CostReport PriceDeclarative(const PriceBook& book,
                            const MonthlyTraffic& traffic,
                            double reserved_gbps) {
  CostReport report;
  CostLine& transfer = report.lines["transfer (both worlds)"];
  transfer.transfer_usd =
      traffic.inter_region_gb * book.inter_region_gb +
      traffic.internet_egress_gb * book.internet_egress_gb +
      // Private-instance outbound is plain egress (no NAT exists), and
      // cross-cloud rides the provider's transit under the quota.
      traffic.nat_egress_gb * book.internet_egress_gb +
      traffic.cross_cloud_gb * book.cross_cloud_gb;
  CostLine& guarantee = report.lines["egress guarantee"];
  guarantee.box_hours_usd =
      reserved_gbps * book.egress_guarantee_gbps_month;
  return report;
}

}  // namespace tenantnet
