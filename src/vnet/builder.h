// Builds the Figure 1 deployment the traditional way.
//
// This is the tenant experience §2 describes, executed in full against the
// BaselineNetwork control plane: plan CIDRs for 6 VPCs, carve subnets,
// write security groups and ACLs, stand up internet/NAT/VPN gateways, two
// transit gateways plus peering, Direct Connect circuits meeting at an
// exchange with an MPLS leg to on-prem, load balancers in front of the
// web and database tiers, a DPI firewall, and all the route tables that
// glue it together. Every action lands in the ConfigLedger; E1 simply reads
// the totals.

#ifndef TENANTNET_SRC_VNET_BUILDER_H_
#define TENANTNET_SRC_VNET_BUILDER_H_

#include <vector>

#include "src/cloud/presets.h"
#include "src/vnet/fabric.h"

namespace tenantnet {

// Handles to everything the builder created, for tests and benches.
struct Fig1Baseline {
  // VPCs: one per workload region (4 on cloud A... see .cc for the layout).
  VpcId vpc_spark;      // cloud A us-east
  VpcId vpc_web_us;     // cloud A us-west
  VpcId vpc_web_eu;     // cloud A eu-west
  VpcId vpc_shared;     // cloud A us-east (shared services / inspection)
  VpcId vpc_db;         // cloud B us-east
  VpcId vpc_analytics;  // cloud B europe

  std::vector<SubnetId> all_subnets;

  IgwId igw_spark;  // needed so the NAT gateway has a way out
  IgwId igw_web_us;
  IgwId igw_web_eu;
  IgwId igw_shared;
  NatGatewayId nat_spark;
  VpnGatewayId vpg_shared;       // backup VPN to on-prem
  TransitGatewayId tgw_a;        // cloud A us-east hub
  TransitGatewayId tgw_b;        // cloud B us-east hub
  TransitGatewayId tgw_a_eu;     // cloud A eu-west hub
  DirectConnectId dx_a;          // cloud A -> exchange
  DirectConnectId dx_b;          // cloud B -> exchange

  SecurityGroupId sg_spark;
  SecurityGroupId sg_db;
  SecurityGroupId sg_web;
  SecurityGroupId sg_analytics;

  LoadBalancerId web_lb;         // ALB in front of the EU web tier
  LoadBalancerId db_lb;          // NLB in front of the database
  TargetGroupId web_targets;
  TargetGroupId db_targets;
  FirewallId firewall;

  // Well-known service ports used by the workloads.
  static constexpr uint16_t kWebPort = 443;
  static constexpr uint16_t kDbPort = 5432;
  static constexpr uint16_t kSparkPort = 7077;
  static constexpr uint16_t kAlertPort = 9093;
  static constexpr uint16_t kAnalyticsPort = 8443;
};

// Constructs the baseline network for `fig` inside `net`. All steps must
// succeed; any failure is returned unmodified (the half-built network is
// then unusable, mirroring real life rather gracefully).
Result<Fig1Baseline> BuildFig1Baseline(BaselineNetwork& net,
                                       const Fig1World& fig);

}  // namespace tenantnet

#endif  // TENANTNET_SRC_VNET_BUILDER_H_
