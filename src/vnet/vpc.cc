#include "src/vnet/vpc.h"

namespace tenantnet {

std::string_view VpcRouteTargetKindName(VpcRouteTargetKind kind) {
  switch (kind) {
    case VpcRouteTargetKind::kLocal:
      return "local";
    case VpcRouteTargetKind::kInternetGateway:
      return "internet-gateway";
    case VpcRouteTargetKind::kEgressOnlyIgw:
      return "egress-only-igw";
    case VpcRouteTargetKind::kNatGateway:
      return "nat-gateway";
    case VpcRouteTargetKind::kVpnGateway:
      return "vpn-gateway";
    case VpcRouteTargetKind::kPeering:
      return "vpc-peering";
    case VpcRouteTargetKind::kTransitGateway:
      return "transit-gateway";
    case VpcRouteTargetKind::kBlackhole:
      return "blackhole";
  }
  return "?";
}

}  // namespace tenantnet
