// Baseline-world DPI firewall appliance.
//
// The proposal explicitly does *not* support custom middleboxes ("we do not
// support deep-packet inspection firewalls"), so the baseline must have one
// to compare against: an ordered rule engine matching on 5-tuples plus
// payload signatures, with finite inspection capacity. The capacity matters
// for E6 — under a volumetric attack the appliance itself saturates, while
// the proposal's provider-edge permit-list drops the flood before it ever
// converges on a tenant box.

#ifndef TENANTNET_SRC_VNET_FIREWALL_H_
#define TENANTNET_SRC_VNET_FIREWALL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/net/flow.h"
#include "src/vnet/revision.h"

namespace tenantnet {

using FirewallId = TypedId<struct FirewallIdTag>;

enum class FirewallVerdict : uint8_t { kAllow, kDeny };

struct FirewallRule {
  uint32_t priority = 100;  // evaluated ascending
  FlowMatch match;
  // If non-empty, the rule only matches payloads containing this substring
  // (the DPI part).
  std::string payload_signature;
  FirewallVerdict verdict = FirewallVerdict::kDeny;
  std::string description;
};

class DpiFirewall : public RevisionHooked {
 public:
  DpiFirewall(FirewallId id, std::string name, double capacity_pps)
      : id_(id), name_(std::move(name)), capacity_pps_(capacity_pps) {}

  FirewallId id() const { return id_; }
  const std::string& name() const { return name_; }
  double capacity_pps() const { return capacity_pps_; }

  void AddRule(FirewallRule rule);
  const std::vector<FirewallRule>& rules() const { return rules_; }

  void set_default_verdict(FirewallVerdict v) {
    default_verdict_ = v;
    BumpRevision();
  }
  FirewallVerdict default_verdict() const { return default_verdict_; }

  // Inspects one unit of traffic. Rules are consulted ascending by
  // priority; the first whose match and signature both hit decides.
  FirewallVerdict Inspect(const FiveTuple& flow, std::string_view payload);

  // Offered-load bookkeeping for the saturation model: callers report the
  // inspection rate they are pushing; Overloaded() compares to capacity.
  uint64_t inspected_count() const { return inspected_; }
  uint64_t denied_count() const { return denied_; }
  void ResetCounters() {
    inspected_ = 0;
    denied_ = 0;
  }

  // Fraction of offered pps the appliance can actually inspect; the rest
  // is dropped indiscriminately (tail drop) once offered > capacity.
  double SurvivalFraction(double offered_pps) const {
    if (offered_pps <= capacity_pps_ || offered_pps <= 0) {
      return 1.0;
    }
    return capacity_pps_ / offered_pps;
  }

 private:
  FirewallId id_;
  std::string name_;
  double capacity_pps_;
  FirewallVerdict default_verdict_ = FirewallVerdict::kDeny;
  std::vector<FirewallRule> rules_;
  uint64_t inspected_ = 0;
  uint64_t denied_ = 0;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_VNET_FIREWALL_H_
