// Baseline-world security primitives: security groups and network ACLs.
//
// Security groups are stateful allow-lists attached to instance NICs; rules
// may reference prefixes or other security groups (the cross-reference kind
// of complexity the ledger counts). Network ACLs are stateless, ordered
// allow/deny lists attached to subnets, evaluated lowest rule number first
// with an implicit final deny — faithful to the AWS semantics the paper's
// Table 1 samples.

#ifndef TENANTNET_SRC_VNET_SECURITY_H_
#define TENANTNET_SRC_VNET_SECURITY_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "src/common/ids.h"
#include "src/net/flow.h"
#include "src/vnet/revision.h"

namespace tenantnet {

using SecurityGroupId = TypedId<struct SecurityGroupIdTag>;
using NetworkAclId = TypedId<struct NetworkAclIdTag>;

enum class TrafficDirection : uint8_t { kIngress, kEgress };

// A rule's peer may be a prefix or another security group.
using SgPeer = std::variant<IpPrefix, SecurityGroupId>;

struct SgRule {
  TrafficDirection direction = TrafficDirection::kIngress;
  Protocol proto = Protocol::kAny;
  PortRange ports = PortRange::Any();  // destination ports for ingress,
                                       // destination ports for egress
  SgPeer peer;                         // remote side of the rule
  std::string description;
};

class SecurityGroup : public RevisionHooked {
 public:
  SecurityGroup(SecurityGroupId id, std::string name) noexcept
      : id_(id), name_(std::move(name)) {}

  SecurityGroupId id() const { return id_; }
  const std::string& name() const { return name_; }

  void AddRule(SgRule rule) {
    rules_.push_back(std::move(rule));
    BumpRevision();
  }
  // Removes the rule at `index`; false if out of range.
  bool RemoveRule(size_t index) {
    if (index >= rules_.size()) {
      return false;
    }
    rules_.erase(rules_.begin() + static_cast<ptrdiff_t>(index));
    BumpRevision();
    return true;
  }
  const std::vector<SgRule>& rules() const { return rules_; }

  // Resolves whether `ip` belongs to a referenced security group (i.e. is
  // assigned to a NIC holding that group).
  using SgMembershipFn =
      std::function<bool(SecurityGroupId group, IpAddress ip)>;

  // True if this group admits the flow in the given direction. For
  // kIngress the peer is matched against flow.src and ports against
  // flow.dst_port; for kEgress the peer is matched against flow.dst and
  // ports against flow.dst_port (AWS semantics).
  bool Allows(TrafficDirection direction, const FiveTuple& flow,
              const SgMembershipFn& membership) const;

 private:
  SecurityGroupId id_;
  std::string name_;
  std::vector<SgRule> rules_;
};

struct AclEntry {
  uint32_t rule_number = 0;  // evaluated ascending
  bool allow = false;
  TrafficDirection direction = TrafficDirection::kIngress;
  FlowMatch match;
};

class NetworkAcl : public RevisionHooked {
 public:
  NetworkAcl(NetworkAclId id, std::string name) noexcept
      : id_(id), name_(std::move(name)) {}

  NetworkAclId id() const { return id_; }
  const std::string& name() const { return name_; }

  // Entries keep ascending rule_number order.
  void AddEntry(AclEntry entry);
  // Removes the first entry with this rule number and direction.
  bool RemoveEntry(uint32_t rule_number, TrafficDirection direction);
  const std::vector<AclEntry>& entries() const { return entries_; }

  // First matching entry in the direction decides; no match = deny.
  bool Allows(TrafficDirection direction, const FiveTuple& flow) const;

 private:
  NetworkAclId id_;
  std::string name_;
  std::vector<AclEntry> entries_;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_VNET_SECURITY_H_
