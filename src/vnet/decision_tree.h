// The tenant's component-selection decision trees.
//
// §3(2) cites Azure's load-balancer guidance: "the documentation that
// guides tenants on which load balancer to leverage involves a decision
// tree that is five levels deep!" This module encodes selection decision
// trees as data so E2 can *count* the choices a tenant traverses before
// they have even created anything — the planning complexity that precedes
// the configuration complexity the ledger measures.
//
// The evaluator is generic over the profile type: the same walk that scores
// tenant planning complexity (WorkloadProfile) also drives the reachability
// verifier's deny-triage (src/reach), which answers "this pair cannot talk —
// which mechanism is missing?" as a decision-tree evaluation over the facts
// the query engine collected.

#ifndef TENANTNET_SRC_VNET_DECISION_TREE_H_
#define TENANTNET_SRC_VNET_DECISION_TREE_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace tenantnet {

// The attributes of a workload that drive component selection.
struct WorkloadProfile {
  // Load-balancer selection inputs.
  bool http_traffic = false;          // L7 vs L4
  bool needs_path_routing = false;    // content-based rules
  bool internet_facing = false;
  bool needs_static_ip = false;
  bool very_high_pps = false;         // NLB-grade throughput
  bool chaining_appliances = false;   // GWLB use case
  bool multi_region = false;
  bool needs_tls_termination = false;
  // Connectivity selection inputs.
  bool peer_is_internal = false;      // your own estate vs the internet
  bool peer_same_provider = false;
  bool needs_guaranteed_bandwidth = false;
  bool inbound_needed = false;
  bool ipv6_only = false;
};

// A binary decision tree over an arbitrary fact profile. Interior nodes ask
// a question (a predicate over the profile); leaves carry a recommendation.
template <typename Profile>
class BasicDecisionNode {
 public:
  using Predicate = std::function<bool(const Profile&)>;

  // Leaf: a concrete component recommendation.
  explicit BasicDecisionNode(std::string recommendation)
      : recommendation_(std::move(recommendation)) {}

  // Interior: a question splitting on a predicate.
  BasicDecisionNode(std::string question, Predicate predicate,
                    std::unique_ptr<BasicDecisionNode> if_yes,
                    std::unique_ptr<BasicDecisionNode> if_no)
      : question_(std::move(question)), predicate_(std::move(predicate)),
        yes_(std::move(if_yes)), no_(std::move(if_no)) {}

  bool IsLeaf() const { return !predicate_; }
  const std::string& recommendation() const { return recommendation_; }
  const std::string& question() const { return question_; }

  struct WalkResult {
    std::string recommendation;
    std::vector<std::string> questions_asked;
    int depth = 0;
  };

  // Walks the tree for a profile, recording every question the tenant had
  // to answer on the way down.
  WalkResult Decide(const Profile& profile) const {
    WalkResult result;
    const BasicDecisionNode* node = this;
    while (!node->IsLeaf()) {
      result.questions_asked.push_back(node->question_);
      ++result.depth;
      node = node->predicate_(profile) ? node->yes_.get() : node->no_.get();
    }
    result.recommendation = node->recommendation_;
    return result;
  }

  // Longest root-to-leaf path (the paper's "five levels deep" metric).
  int MaxDepth() const {
    if (IsLeaf()) {
      return 0;
    }
    return 1 + std::max(yes_->MaxDepth(), no_->MaxDepth());
  }

  // Total distinct questions in the tree (what the tenant must be *able*
  // to answer to navigate it at all).
  int QuestionCount() const {
    if (IsLeaf()) {
      return 0;
    }
    return 1 + yes_->QuestionCount() + no_->QuestionCount();
  }

  int LeafCount() const {
    if (IsLeaf()) {
      return 1;
    }
    return yes_->LeafCount() + no_->LeafCount();
  }

 private:
  std::string recommendation_;
  std::string question_;
  Predicate predicate_;
  std::unique_ptr<BasicDecisionNode> yes_;
  std::unique_ptr<BasicDecisionNode> no_;
};

// The tenant-facing selection trees keep their historical name.
using DecisionNode = BasicDecisionNode<WorkloadProfile>;

// The load-balancer selection tree, modeled after the cited Azure guidance
// (five levels of questions before a recommendation).
std::unique_ptr<DecisionNode> BuildLoadBalancerDecisionTree();

// The connectivity-gateway selection tree of §2 step (2)-(4): IGW vs
// egress-only vs NAT vs VPN vs peering vs TGW vs Direct Connect.
std::unique_ptr<DecisionNode> BuildConnectivityDecisionTree();

}  // namespace tenantnet

#endif  // TENANTNET_SRC_VNET_DECISION_TREE_H_
