#include "src/vnet/decision_tree.h"

namespace tenantnet {

namespace {

std::unique_ptr<DecisionNode> Leaf(std::string what) {
  return std::make_unique<DecisionNode>(std::move(what));
}

std::unique_ptr<DecisionNode> Ask(
    std::string question, std::function<bool(const WorkloadProfile&)> pred,
    std::unique_ptr<DecisionNode> yes, std::unique_ptr<DecisionNode> no) {
  return std::make_unique<DecisionNode>(std::move(question), std::move(pred),
                                        std::move(yes), std::move(no));
}

}  // namespace

std::unique_ptr<DecisionNode> BuildLoadBalancerDecisionTree() {
  // Modeled after the Azure load-balancing decision flow the paper cites:
  // HTTP(S)? -> internet-facing? -> multi-region? -> TLS/path rules? ->
  // performance tier? Five questions deep on the longest path.
  auto l7_side = Ask(
      "Is the service deployed in multiple regions?",
      [](const WorkloadProfile& p) { return p.multi_region; },
      Ask("Do you need global path-based routing?",
          [](const WorkloadProfile& p) { return p.needs_path_routing; },
          Ask("Do you need TLS termination at the edge?",
              [](const WorkloadProfile& p) { return p.needs_tls_termination; },
              Ask("Do you also serve very high request rates?",
                  [](const WorkloadProfile& p) { return p.very_high_pps; },
                  Leaf("global L7 LB + CDN front door"),
                  Leaf("global L7 LB (TLS at edge)")),
              Leaf("global L7 LB")),
          Ask("Do you need TLS termination at the edge?",
              [](const WorkloadProfile& p) { return p.needs_tls_termination; },
              Leaf("traffic manager + regional ALB (TLS)"),
              Leaf("traffic manager + regional ALB"))),
      Ask("Do you need path/host/header routing rules?",
          [](const WorkloadProfile& p) { return p.needs_path_routing; },
          Leaf("Application Load Balancer"),
          Ask("Do you need TLS termination at the edge?",
              [](const WorkloadProfile& p) { return p.needs_tls_termination; },
              Leaf("Application Load Balancer (TLS listener)"),
              Leaf("Classic Load Balancer"))));

  auto l4_side = Ask(
      "Are you inserting appliances into the path?",
      [](const WorkloadProfile& p) { return p.chaining_appliances; },
      Leaf("Gateway Load Balancer"),
      Ask("Do you need a static VIP / very high packet rates?",
          [](const WorkloadProfile& p) {
            return p.needs_static_ip || p.very_high_pps;
          },
          Leaf("Network Load Balancer"),
          Ask("Is the endpoint internet-facing?",
              [](const WorkloadProfile& p) { return p.internet_facing; },
              Leaf("Network Load Balancer (public scheme)"),
              Leaf("Classic Load Balancer (internal)"))));

  return Ask("Is the traffic HTTP(S)?",
             [](const WorkloadProfile& p) { return p.http_traffic; },
             std::move(l7_side), std::move(l4_side));
}

std::unique_ptr<DecisionNode> BuildConnectivityDecisionTree() {
  // §2 steps (2)-(4): how does a workload reach things outside its VPC?
  return Ask(
      "Is the peer inside your own cloud estate?",
      [](const WorkloadProfile& p) { return p.peer_is_internal; },
      Ask("Is the peer in the same provider?",
          [](const WorkloadProfile& p) { return p.peer_same_provider; },
          Leaf("VPC peering (mind non-transitivity)"),
          Ask("Do you need guaranteed bandwidth/QoS?",
              [](const WorkloadProfile& p) {
                return p.needs_guaranteed_bandwidth;
              },
              Leaf("Direct Connect + Transit Gateway + exchange"),
              Leaf("Transit Gateway + VPN over internet"))),
      Ask("Do instances need inbound connections?",
          [](const WorkloadProfile& p) { return p.inbound_needed; },
          Leaf("Internet Gateway + public subnet + EIPs"),
          Ask("IPv6-only egress?",
              [](const WorkloadProfile& p) { return p.ipv6_only; },
              Leaf("Egress-only Internet Gateway"),
              Leaf("NAT Gateway in a public subnet (plus an IGW)"))));
}

}  // namespace tenantnet
