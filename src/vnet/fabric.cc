#include "src/vnet/fabric.h"

#include <algorithm>
#include <cassert>

namespace tenantnet {

namespace {

// Reverse of a tuple, for stateless return-path checks.
FiveTuple Reverse(const FiveTuple& flow) {
  FiveTuple r;
  r.src = flow.dst;
  r.dst = flow.src;
  r.src_port = flow.dst_port;
  r.dst_port = flow.src_port;
  r.proto = flow.proto;
  return r;
}

}  // namespace

BaselineNetwork::BaselineNetwork(CloudWorld& world, ConfigLedger& ledger)
    : world_(&world), ledger_(&ledger) {}

// --------------------------------------------------------------------------
// Step (1): VPCs, subnets, ACLs, SGs, NICs.
// --------------------------------------------------------------------------

Result<VpcId> BaselineNetwork::CreateVpc(TenantId tenant, ProviderId provider,
                                         RegionId region,
                                         const std::string& name,
                                         const IpPrefix& cidr) {
  // Non-overlap with the tenant's other VPCs is the tenant's problem — the
  // address-planning pain the paper calls out. Overlap is legal in real
  // clouds but breaks peering later; we reject it eagerly to surface the
  // planning burden as a hard constraint.
  for (const auto& [id, vpc] : vpcs_) {
    if (vpc->tenant == tenant && vpc->cidr.Overlaps(cidr)) {
      return AlreadyExistsError("VPC CIDR " + cidr.ToString() +
                                " overlaps existing VPC " + vpc->name);
    }
  }
  VpcId id = vpc_ids_.Next();
  auto vpc = std::make_unique<Vpc>(id, tenant, provider, region, name, cidr);

  ledger_->CreateComponent("vpc", name);
  ledger_->Decision("vpc", "ipv4-vs-ipv6");
  ledger_->Decision("vpc", "cidr-size-and-placement");
  ledger_->SetParameter("vpc", "cidr=" + cidr.ToString());
  ledger_->SetParameter("vpc", "region");
  ledger_->SetParameter("vpc", "tenancy");

  // A VPC arrives with a main route table and a default NACL; the tenant
  // still owns their contents.
  VpcRouteTableId table_id = table_ids_.Next();
  tables_.emplace(table_id, std::make_unique<VpcRouteTable>(
                                table_id, name + ":main-rt"));
  tables_[table_id]->AttachRevisionCounter(&config_epoch_);
  ledger_->CreateComponent("route-table", name + ":main-rt");
  tables_[table_id]->Install(cidr, VpcRouteTarget{VpcRouteTargetKind::kLocal, 0});
  ledger_->SetParameter("route-table", "local-route");
  vpc->main_route_table = table_id;

  NetworkAclId acl_id = acl_ids_.Next();
  acls_.emplace(acl_id,
                std::make_unique<NetworkAcl>(acl_id, name + ":default-acl"));
  acls_[acl_id]->AttachRevisionCounter(&config_epoch_);
  ledger_->CreateComponent("network-acl", name + ":default-acl");
  vpc->default_acl = acl_id;

  vpcs_.emplace(id, std::move(vpc));
  BumpConfigEpoch();
  return id;
}

Result<SubnetId> BaselineNetwork::CreateSubnet(VpcId vpc_id,
                                               const std::string& name,
                                               int prefix_len, int zone_index,
                                               bool is_public) {
  Vpc* vpc = MutableVpc(vpc_id);
  if (vpc == nullptr) {
    return NotFoundError("no such vpc");
  }
  const RegionSite& region = world_->region(vpc->region);
  if (zone_index < 0 ||
      static_cast<size_t>(zone_index) >= region.zones.size()) {
    return InvalidArgumentError("zone index out of range for region");
  }
  TN_ASSIGN_OR_RETURN(IpPrefix cidr, vpc->subnet_space.Allocate(prefix_len));

  SubnetId id = subnet_ids_.Next();
  auto subnet = std::make_unique<Subnet>(id, vpc_id, name, cidr, zone_index,
                                         is_public);
  subnet->route_table = vpc->main_route_table;
  subnet->acl = vpc->default_acl;
  vpc->subnets.push_back(id);

  ledger_->CreateComponent("subnet", name);
  ledger_->Decision("subnet", "public-vs-private");
  ledger_->SetParameter("subnet", "cidr=" + cidr.ToString());
  ledger_->SetParameter("subnet", "availability-zone");
  ledger_->CrossReference("subnet", "vpc");

  subnets_.emplace(id, std::move(subnet));
  BumpConfigEpoch();
  return id;
}

Result<VpcRouteTableId> BaselineNetwork::CreateRouteTable(
    VpcId vpc_id, const std::string& name) {
  Vpc* vpc = MutableVpc(vpc_id);
  if (vpc == nullptr) {
    return NotFoundError("no such vpc");
  }
  VpcRouteTableId id = table_ids_.Next();
  auto table = std::make_unique<VpcRouteTable>(id, name);
  table->AttachRevisionCounter(&config_epoch_);
  // Every route table implicitly carries the VPC-local route.
  table->Install(vpc->cidr, VpcRouteTarget{VpcRouteTargetKind::kLocal, 0});
  tables_.emplace(id, std::move(table));
  ledger_->CreateComponent("route-table", name);
  ledger_->CrossReference("route-table", "vpc");
  return id;
}

Status BaselineNetwork::AssociateRouteTable(SubnetId subnet_id,
                                            VpcRouteTableId table_id) {
  auto it = subnets_.find(subnet_id);
  if (it == subnets_.end()) {
    return NotFoundError("no such subnet");
  }
  if (tables_.find(table_id) == tables_.end()) {
    return NotFoundError("no such route table");
  }
  it->second->route_table = table_id;
  ledger_->CrossReference("route-table", "subnet-association");
  BumpConfigEpoch();
  return Status::Ok();
}

Status BaselineNetwork::AddRoute(VpcRouteTableId table_id,
                                 const IpPrefix& prefix,
                                 VpcRouteTarget target) {
  auto it = tables_.find(table_id);
  if (it == tables_.end()) {
    return NotFoundError("no such route table");
  }
  it->second->Install(prefix, target);
  ledger_->SetParameter("route-table",
                        std::string("route ") + prefix.ToString() + " -> " +
                            std::string(VpcRouteTargetKindName(target.kind)));
  ledger_->CrossReference("route-table",
                          std::string(VpcRouteTargetKindName(target.kind)));
  return Status::Ok();
}

Status BaselineNetwork::RemoveRoute(VpcRouteTableId table_id,
                                    const IpPrefix& prefix) {
  auto it = tables_.find(table_id);
  if (it == tables_.end()) {
    return NotFoundError("no such route table");
  }
  if (!it->second->Withdraw(prefix)) {
    return NotFoundError("no route for " + prefix.ToString());
  }
  ledger_->SetParameter("route-table", "remove-route " + prefix.ToString());
  return Status::Ok();
}

Status BaselineNetwork::RemoveSgRule(SecurityGroupId group,
                                     size_t rule_index) {
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    return NotFoundError("no such security group");
  }
  if (!it->second->RemoveRule(rule_index)) {
    return NotFoundError("no such rule index");
  }
  ledger_->SetParameter("security-group", "remove-rule");
  return Status::Ok();
}

Result<SecurityGroupId> BaselineNetwork::CreateSecurityGroup(
    VpcId vpc_id, const std::string& name) {
  if (vpcs_.find(vpc_id) == vpcs_.end()) {
    return NotFoundError("no such vpc");
  }
  SecurityGroupId id = group_ids_.Next();
  groups_.emplace(id, std::make_unique<SecurityGroup>(id, name));
  groups_[id]->AttachRevisionCounter(&config_epoch_);
  ledger_->CreateComponent("security-group", name);
  ledger_->CrossReference("security-group", "vpc");
  return id;
}

Status BaselineNetwork::AddSgRule(SecurityGroupId group, SgRule rule) {
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    return NotFoundError("no such security group");
  }
  ledger_->SetParameter("security-group", "rule:" + rule.description);
  if (std::holds_alternative<SecurityGroupId>(rule.peer)) {
    ledger_->CrossReference("security-group", "referenced-group");
  }
  it->second->AddRule(std::move(rule));
  return Status::Ok();
}

Result<NetworkAclId> BaselineNetwork::CreateNetworkAcl(
    VpcId vpc_id, const std::string& name) {
  if (vpcs_.find(vpc_id) == vpcs_.end()) {
    return NotFoundError("no such vpc");
  }
  NetworkAclId id = acl_ids_.Next();
  acls_.emplace(id, std::make_unique<NetworkAcl>(id, name));
  acls_[id]->AttachRevisionCounter(&config_epoch_);
  ledger_->CreateComponent("network-acl", name);
  ledger_->CrossReference("network-acl", "vpc");
  return id;
}

Status BaselineNetwork::AddAclEntry(NetworkAclId acl, AclEntry entry) {
  auto it = acls_.find(acl);
  if (it == acls_.end()) {
    return NotFoundError("no such network acl");
  }
  ledger_->SetParameter("network-acl",
                        "entry#" + std::to_string(entry.rule_number));
  it->second->AddEntry(std::move(entry));
  return Status::Ok();
}

Status BaselineNetwork::AssociateAcl(SubnetId subnet_id, NetworkAclId acl) {
  auto it = subnets_.find(subnet_id);
  if (it == subnets_.end()) {
    return NotFoundError("no such subnet");
  }
  if (acls_.find(acl) == acls_.end()) {
    return NotFoundError("no such network acl");
  }
  it->second->acl = acl;
  ledger_->CrossReference("network-acl", "subnet-association");
  BumpConfigEpoch();
  return Status::Ok();
}

Result<EniId> BaselineNetwork::AttachInstance(
    InstanceId instance, SubnetId subnet_id,
    std::vector<SecurityGroupId> groups, bool assign_public_ip) {
  const Instance* inst = world_->FindInstance(instance);
  if (inst == nullptr || !inst->running) {
    return NotFoundError("no such running instance");
  }
  auto sit = subnets_.find(subnet_id);
  if (sit == subnets_.end()) {
    return NotFoundError("no such subnet");
  }
  Subnet& subnet = *sit->second;
  const Vpc* vpc = FindVpc(subnet.vpc);
  if (vpc->region != inst->region) {
    return InvalidArgumentError("subnet and instance are in different regions");
  }
  if (eni_by_instance_.count(instance) > 0) {
    return AlreadyExistsError("instance already attached");
  }
  for (SecurityGroupId g : groups) {
    if (groups_.find(g) == groups_.end()) {
      return NotFoundError("unknown security group in attachment");
    }
  }

  TN_ASSIGN_OR_RETURN(IpAddress private_ip, subnet.allocator.Allocate());
  EniId id = eni_ids_.Next();
  auto eni = std::make_unique<Eni>();
  eni->id = id;
  eni->instance = instance;
  eni->subnet = subnet_id;
  eni->private_ip = private_ip;
  eni->security_groups = std::move(groups);

  ledger_->CreateComponent("eni", "eni-" + std::to_string(id.value()));
  ledger_->SetParameter("eni", "private-ip");
  ledger_->CrossReference("eni", "subnet");
  for (size_t i = 0; i < eni->security_groups.size(); ++i) {
    ledger_->CrossReference("eni", "security-group");
  }

  if (assign_public_ip) {
    auto& pool = public_pools_[vpc->provider];
    if (!pool) {
      pool = std::make_unique<HostAllocator>(
          world_->provider(vpc->provider).address_space);
    }
    TN_ASSIGN_OR_RETURN(IpAddress public_ip, pool->Allocate());
    eni->public_ip = public_ip;
    eni_by_ip_[public_ip] = id;
    ledger_->SetParameter("eni", "public-ip");
    ledger_->Decision("eni", "assign-public-ip");
  }

  eni_by_ip_[private_ip] = id;
  eni_by_instance_[instance] = id;
  enis_.emplace(id, std::move(eni));
  BumpConfigEpoch();
  return id;
}

Status BaselineNetwork::DetachInstance(InstanceId instance) {
  auto it = eni_by_instance_.find(instance);
  if (it == eni_by_instance_.end()) {
    return NotFoundError("instance not attached");
  }
  EniId eni_id = it->second;
  Eni& eni = *enis_[eni_id];
  Subnet& subnet = *subnets_[eni.subnet];
  TN_RETURN_IF_ERROR(subnet.allocator.Release(eni.private_ip));
  eni_by_ip_.erase(eni.private_ip);
  if (eni.public_ip.has_value()) {
    const Vpc* vpc = FindVpc(subnet.vpc);
    TN_RETURN_IF_ERROR(public_pools_[vpc->provider]->Release(*eni.public_ip));
    eni_by_ip_.erase(*eni.public_ip);
  }
  enis_.erase(eni_id);
  eni_by_instance_.erase(it);
  BumpConfigEpoch();
  return Status::Ok();
}

Result<IpAddress> BaselineNetwork::AttachOnPremInstance(InstanceId instance) {
  const Instance* inst = world_->FindInstance(instance);
  if (inst == nullptr || !inst->on_prem.valid()) {
    return InvalidArgumentError("instance is not on-prem");
  }
  if (on_prem_addrs_.count(instance) > 0) {
    return AlreadyExistsError("instance already addressed");
  }
  auto& pool = on_prem_pools_[inst->on_prem];
  if (!pool) {
    pool = std::make_unique<HostAllocator>(
        world_->on_prem(inst->on_prem).address_space);
  }
  TN_ASSIGN_OR_RETURN(IpAddress ip, pool->Allocate());
  on_prem_addrs_[instance] = ip;
  BumpConfigEpoch();
  return ip;
}

// --------------------------------------------------------------------------
// Step (2): connectivity in/out of a VPC.
// --------------------------------------------------------------------------

Result<IgwId> BaselineNetwork::CreateInternetGateway(VpcId vpc,
                                                     const std::string& name) {
  if (vpcs_.find(vpc) == vpcs_.end()) {
    return NotFoundError("no such vpc");
  }
  if (igw_by_vpc_.count(vpc) > 0) {
    return AlreadyExistsError("vpc already has an internet gateway");
  }
  IgwId id = igw_ids_.Next();
  igws_.emplace(id, InternetGateway{id, vpc, name});
  igw_by_vpc_[vpc] = id;
  ledger_->CreateComponent("internet-gateway", name);
  ledger_->Decision("internet-gateway", "igw-vs-egress-only-vs-vpg");
  ledger_->CrossReference("internet-gateway", "vpc-attachment");
  BumpConfigEpoch();
  return id;
}

Result<EgressOnlyIgwId> BaselineNetwork::CreateEgressOnlyIgw(
    VpcId vpc, const std::string& name) {
  if (vpcs_.find(vpc) == vpcs_.end()) {
    return NotFoundError("no such vpc");
  }
  EgressOnlyIgwId id = egress_igw_ids_.Next();
  egress_igws_.emplace(id, EgressOnlyInternetGateway{id, vpc, name});
  egress_igw_by_vpc_[vpc] = id;
  ledger_->CreateComponent("egress-only-igw", name);
  ledger_->CrossReference("egress-only-igw", "vpc-attachment");
  BumpConfigEpoch();
  return id;
}

Result<NatGatewayId> BaselineNetwork::CreateNatGateway(
    SubnetId public_subnet, const std::string& name) {
  auto it = subnets_.find(public_subnet);
  if (it == subnets_.end()) {
    return NotFoundError("no such subnet");
  }
  if (!it->second->is_public) {
    return FailedPreconditionError(
        "NAT gateway must live in a public subnet");
  }
  const Vpc* vpc = FindVpc(it->second->vpc);
  auto& pool = public_pools_[vpc->provider];
  if (!pool) {
    pool = std::make_unique<HostAllocator>(
        world_->provider(vpc->provider).address_space);
  }
  TN_ASSIGN_OR_RETURN(IpAddress public_ip, pool->Allocate());
  NatGatewayId id = nat_ids_.Next();
  nats_.emplace(id, NatGateway{id, public_subnet, public_ip, name});
  ledger_->CreateComponent("nat-gateway", name);
  ledger_->SetParameter("nat-gateway", "elastic-ip");
  ledger_->CrossReference("nat-gateway", "subnet");
  BumpConfigEpoch();
  return id;
}

Result<VpnGatewayId> BaselineNetwork::CreateVpnGateway(
    VpcId vpc, OnPremId site, uint32_t bgp_asn, const std::string& name) {
  auto vit = vpcs_.find(vpc);
  if (vit == vpcs_.end()) {
    return NotFoundError("no such vpc");
  }
  // Ensure the on-prem side has a speaker that originates its space (the
  // tenant's customer-gateway configuration).
  SpeakerId site_speaker;
  auto sit = on_prem_speakers_.find(site);
  if (sit == on_prem_speakers_.end()) {
    const OnPremSite& onp = world_->on_prem(site);
    site_speaker =
        bgp_.AddSpeaker(65000 + static_cast<uint32_t>(site.value()),
                        onp.name + ":router");
    TN_RETURN_IF_ERROR(bgp_.Originate(site_speaker, onp.address_space));
    on_prem_speakers_[site] = site_speaker;
    ledger_->CreateComponent("customer-gateway", onp.name);
    ledger_->SetParameter("customer-gateway", "bgp-asn");
    ledger_->SetParameter("customer-gateway", "advertised-prefixes");
  } else {
    site_speaker = sit->second;
  }

  VpnGatewayId id = vpn_ids_.Next();
  SpeakerId speaker = bgp_.AddSpeaker(bgp_asn, name);
  // The VPG advertises its VPC's block toward on-prem.
  TN_RETURN_IF_ERROR(bgp_.Originate(speaker, vit->second->cidr));
  TN_RETURN_IF_ERROR(bgp_.AddSession(speaker, site_speaker));
  vpns_.emplace(id, VpnGateway{id, vpc, site, bgp_asn, speaker, name});
  ledger_->CreateComponent("vpn-gateway", name);
  ledger_->SetParameter("vpn-gateway", "bgp-asn");
  ledger_->SetParameter("vpn-gateway", "tunnel-options");
  ledger_->SetParameter("vpn-gateway", "pre-shared-keys");
  ledger_->CrossReference("vpn-gateway", "vpc-attachment");
  ledger_->CrossReference("vpn-gateway", "customer-gateway");
  BumpConfigEpoch();
  return id;
}

// --------------------------------------------------------------------------
// Step (3): networking multiple VPCs.
// --------------------------------------------------------------------------

Result<PeeringId> BaselineNetwork::CreatePeering(VpcId requester,
                                                 VpcId accepter,
                                                 const std::string& name) {
  const Vpc* a = FindVpc(requester);
  const Vpc* b = FindVpc(accepter);
  if (a == nullptr || b == nullptr) {
    return NotFoundError("no such vpc");
  }
  if (a->provider != b->provider) {
    return FailedPreconditionError(
        "VPC peering does not span providers (use TGW + circuits)");
  }
  if (a->cidr.Overlaps(b->cidr)) {
    return FailedPreconditionError("cannot peer VPCs with overlapping CIDRs");
  }
  PeeringId id = peering_ids_.Next();
  peerings_.emplace(id, VpcPeering{id, requester, accepter, false, name});
  ledger_->CreateComponent("vpc-peering", name);
  ledger_->CrossReference("vpc-peering", "requester-vpc");
  ledger_->CrossReference("vpc-peering", "accepter-vpc");
  BumpConfigEpoch();
  return id;
}

Status BaselineNetwork::AcceptPeering(PeeringId peering) {
  auto it = peerings_.find(peering);
  if (it == peerings_.end()) {
    return NotFoundError("no such peering");
  }
  it->second.accepted = true;
  ledger_->SetParameter("vpc-peering", "accept");
  BumpConfigEpoch();
  return Status::Ok();
}

Result<TransitGatewayId> BaselineNetwork::CreateTransitGateway(
    ProviderId provider, RegionId region, uint32_t asn,
    const std::string& name) {
  TransitGatewayId id = tgw_ids_.Next();
  auto tgw = std::make_unique<TransitGateway>(id, provider, region, asn, name);
  tgw->AttachRevisionCounter(&config_epoch_);
  tgw->set_speaker(bgp_.AddSpeaker(asn, name));
  tgws_.emplace(id, std::move(tgw));
  ledger_->CreateComponent("transit-gateway", name);
  ledger_->SetParameter("transit-gateway", "bgp-asn");
  ledger_->SetParameter("transit-gateway", "default-route-table-association");
  ledger_->SetParameter("transit-gateway", "default-route-propagation");
  ledger_->SetParameter("transit-gateway", "mtu");
  return id;
}

Result<size_t> BaselineNetwork::AttachVpcToTgw(TransitGatewayId tgw_id,
                                               VpcId vpc_id) {
  TransitGateway* tgw = FindTgw(tgw_id);
  const Vpc* vpc = FindVpc(vpc_id);
  if (tgw == nullptr || vpc == nullptr) {
    return NotFoundError("no such tgw or vpc");
  }
  if (vpc->region != tgw->region()) {
    return FailedPreconditionError(
        "TGW attachments are regional; VPC is in another region");
  }
  size_t idx = tgw->Attach(
      TgwAttachment{TgwAttachmentKind::kVpc, vpc_id.value(), vpc->name});
  // The VPC's block becomes reachable through this TGW and is advertised to
  // the tenant's wider BGP mesh.
  tgw->InstallRoute(vpc->cidr, idx);
  Status origin = bgp_.Originate(tgw->speaker(), vpc->cidr);
  if (!origin.ok() && origin.code() != StatusCode::kAlreadyExists) {
    return origin;
  }
  ledger_->CreateComponent("tgw-attachment", vpc->name);
  ledger_->CrossReference("tgw-attachment", "vpc");
  ledger_->SetParameter("tgw-attachment", "route-propagation");
  return idx;
}

Result<size_t> BaselineNetwork::AttachVpnToTgw(TransitGatewayId tgw_id,
                                               VpnGatewayId vpn_id) {
  TransitGateway* tgw = FindTgw(tgw_id);
  auto vit = vpns_.find(vpn_id);
  if (tgw == nullptr || vit == vpns_.end()) {
    return NotFoundError("no such tgw or vpn gateway");
  }
  size_t idx = tgw->Attach(TgwAttachment{TgwAttachmentKind::kVpn,
                                         vpn_id.value(), vit->second.name});
  TN_RETURN_IF_ERROR(bgp_.AddSession(tgw->speaker(), vit->second.speaker));
  ledger_->CreateComponent("tgw-attachment", vit->second.name);
  ledger_->CrossReference("tgw-attachment", "vpn-gateway");
  return idx;
}

Result<size_t> BaselineNetwork::AttachDirectConnectToTgw(
    TransitGatewayId tgw_id, DirectConnectId dx_id) {
  TransitGateway* tgw = FindTgw(tgw_id);
  auto dit = dxs_.find(dx_id);
  if (tgw == nullptr || dit == dxs_.end()) {
    return NotFoundError("no such tgw or direct connect");
  }
  size_t idx = tgw->Attach(TgwAttachment{TgwAttachmentKind::kDirectConnect,
                                         dx_id.value(), dit->second.name});
  TN_RETURN_IF_ERROR(bgp_.AddSession(tgw->speaker(), dit->second.speaker));
  tgw_by_dx_[dx_id] = tgw_id;
  ledger_->CreateComponent("tgw-attachment", dit->second.name);
  ledger_->CrossReference("tgw-attachment", "direct-connect");
  ledger_->SetParameter("tgw-attachment", "allowed-prefixes");
  return idx;
}

Status BaselineNetwork::PeerTransitGateways(TransitGatewayId a_id,
                                            TransitGatewayId b_id) {
  TransitGateway* a = FindTgw(a_id);
  TransitGateway* b = FindTgw(b_id);
  if (a == nullptr || b == nullptr) {
    return NotFoundError("no such tgw");
  }
  if (a->provider() != b->provider()) {
    return FailedPreconditionError(
        "TGW peering does not span providers (use circuits)");
  }
  a->Attach(TgwAttachment{TgwAttachmentKind::kPeering, b_id.value(),
                          b->name()});
  b->Attach(TgwAttachment{TgwAttachmentKind::kPeering, a_id.value(),
                          a->name()});
  TN_RETURN_IF_ERROR(bgp_.AddSession(a->speaker(), b->speaker()));
  ledger_->CreateComponent("tgw-peering", a->name() + "<->" + b->name());
  ledger_->CrossReference("tgw-peering", "tgw-a");
  ledger_->CrossReference("tgw-peering", "tgw-b");
  return Status::Ok();
}

Status BaselineNetwork::AddTgwRoute(TransitGatewayId tgw_id,
                                    const IpPrefix& prefix,
                                    size_t attachment_index) {
  TransitGateway* tgw = FindTgw(tgw_id);
  if (tgw == nullptr) {
    return NotFoundError("no such tgw");
  }
  if (attachment_index >= tgw->attachments().size()) {
    return InvalidArgumentError("bad attachment index");
  }
  tgw->InstallRoute(prefix, attachment_index);
  ledger_->SetParameter("transit-gateway",
                        "static-route " + prefix.ToString());
  return Status::Ok();
}

// --------------------------------------------------------------------------
// Step (4): specialized connections.
// --------------------------------------------------------------------------

Result<DirectConnectId> BaselineNetwork::CreateDirectConnect(
    RegionId region, ExchangeId exchange, double capacity_bps, uint16_t vlan,
    uint32_t bgp_asn, const std::string& name) {
  TN_ASSIGN_OR_RETURN(LinkId circuit,
                      world_->AddDedicatedCircuit(region, exchange,
                                                  capacity_bps));
  DirectConnectId id = dx_ids_.Next();
  SpeakerId speaker = bgp_.AddSpeaker(bgp_asn, name);
  dxs_.emplace(id, DirectConnectConnection{id, region, exchange, circuit,
                                           capacity_bps, vlan, bgp_asn,
                                           speaker, name});
  ledger_->CreateComponent("direct-connect", name);
  ledger_->SetParameter("direct-connect", "port-speed");
  ledger_->SetParameter("direct-connect", "vlan");
  ledger_->SetParameter("direct-connect", "bgp-asn");
  ledger_->SetParameter("direct-connect", "virtual-interface");
  ledger_->Decision("direct-connect", "location-selection");
  ledger_->CrossReference("direct-connect", "exchange-port");
  BumpConfigEpoch();
  return id;
}

Status BaselineNetwork::CrossConnect(DirectConnectId a_id,
                                     DirectConnectId b_id) {
  auto a = dxs_.find(a_id);
  auto b = dxs_.find(b_id);
  if (a == dxs_.end() || b == dxs_.end()) {
    return NotFoundError("no such direct connect");
  }
  if (a->second.exchange != b->second.exchange) {
    return FailedPreconditionError(
        "cross-connect requires circuits at the same exchange");
  }
  TN_RETURN_IF_ERROR(bgp_.AddSession(a->second.speaker, b->second.speaker));
  ledger_->CreateComponent("exchange-cross-connect",
                           a->second.name + "<->" + b->second.name);
  ledger_->SetParameter("exchange-cross-connect", "router-config");
  ledger_->CrossReference("exchange-cross-connect", "circuit-a");
  ledger_->CrossReference("exchange-cross-connect", "circuit-b");
  return Status::Ok();
}

Status BaselineNetwork::CrossConnectToOnPrem(DirectConnectId dx_id,
                                             OnPremId site,
                                             double capacity_bps) {
  auto dit = dxs_.find(dx_id);
  if (dit == dxs_.end()) {
    return NotFoundError("no such direct connect");
  }
  // MPLS circuit from the site to the exchange, if not already present.
  if (on_prem_mpls_.count(site) == 0) {
    TN_ASSIGN_OR_RETURN(LinkId link, world_->AddDedicatedCircuitFromOnPrem(
                                         site, dit->second.exchange,
                                         capacity_bps));
    on_prem_mpls_[site] = link;
    ledger_->CreateComponent("mpls-circuit",
                             world_->on_prem(site).name + "->exchange");
    ledger_->SetParameter("mpls-circuit", "bandwidth");
  }
  SpeakerId site_speaker;
  auto sit = on_prem_speakers_.find(site);
  if (sit == on_prem_speakers_.end()) {
    const OnPremSite& onp = world_->on_prem(site);
    site_speaker = bgp_.AddSpeaker(
        65000 + static_cast<uint32_t>(site.value()), onp.name + ":router");
    TN_RETURN_IF_ERROR(bgp_.Originate(site_speaker, onp.address_space));
    on_prem_speakers_[site] = site_speaker;
    ledger_->CreateComponent("customer-gateway", onp.name);
    ledger_->SetParameter("customer-gateway", "bgp-asn");
  } else {
    site_speaker = sit->second;
  }
  TN_RETURN_IF_ERROR(bgp_.AddSession(dit->second.speaker, site_speaker));
  ledger_->CreateComponent("exchange-cross-connect",
                           dit->second.name + "<->on-prem");
  ledger_->CrossReference("exchange-cross-connect", "mpls-circuit");
  return Status::Ok();
}

// --------------------------------------------------------------------------
// Step (5): appliances.
// --------------------------------------------------------------------------

Result<TargetGroupId> BaselineNetwork::CreateTargetGroup(
    const std::string& name, Protocol proto, uint16_t port) {
  TargetGroupId id = tg_ids_.Next();
  target_groups_.emplace(id,
                         std::make_unique<TargetGroup>(id, name, proto, port));
  ledger_->CreateComponent("target-group", name);
  ledger_->SetParameter("target-group", "protocol");
  ledger_->SetParameter("target-group", "port");
  ledger_->SetParameter("target-group", "health-check");
  return id;
}

Status BaselineNetwork::RegisterTarget(TargetGroupId group,
                                       InstanceId instance, double weight) {
  auto it = target_groups_.find(group);
  if (it == target_groups_.end()) {
    return NotFoundError("no such target group");
  }
  if (world_->FindInstance(instance) == nullptr) {
    return NotFoundError("no such instance");
  }
  it->second->AddTarget(instance, weight);
  ledger_->CrossReference("target-group", "registered-target");
  return Status::Ok();
}

Result<LoadBalancerId> BaselineNetwork::CreateLoadBalancer(
    LbType type, const std::string& name, VpcId vpc,
    std::vector<SubnetId> subnets) {
  if (vpcs_.find(vpc) == vpcs_.end()) {
    return NotFoundError("no such vpc");
  }
  LoadBalancerId id = lb_ids_.Next();
  lbs_.emplace(id, std::make_unique<LoadBalancer>(id, type, name, vpc));
  ledger_->CreateComponent(std::string(LbTypeName(type)), name);
  ledger_->Decision("load-balancer", "family-selection(alb/nlb/clb/gwlb)");
  ledger_->CrossReference("load-balancer", "vpc");
  for (size_t i = 0; i < subnets.size(); ++i) {
    ledger_->CrossReference("load-balancer", "subnet/availability-zone");
  }
  ledger_->SetParameter(std::string(LbTypeName(type)), "scheme");
  ledger_->SetParameter(std::string(LbTypeName(type)), "ip-address-type");
  return id;
}

Status BaselineNetwork::AddLbListener(LoadBalancerId lb_id,
                                      LbListener listener) {
  LoadBalancer* lb = FindLoadBalancer(lb_id);
  if (lb == nullptr) {
    return NotFoundError("no such load balancer");
  }
  ledger_->SetParameter(std::string(LbTypeName(lb->type())),
                        "listener:" + std::to_string(listener.port));
  if (listener.default_target.valid()) {
    ledger_->CrossReference("load-balancer", "target-group");
  }
  lb->AddListener(std::move(listener));
  return Status::Ok();
}

Status BaselineNetwork::AddLbRule(LoadBalancerId lb_id, uint16_t port,
                                  L7Rule rule) {
  LoadBalancer* lb = FindLoadBalancer(lb_id);
  if (lb == nullptr) {
    return NotFoundError("no such load balancer");
  }
  ledger_->SetParameter("application-lb", "rule");
  ledger_->CrossReference("load-balancer", "target-group");
  return lb->AddRule(port, std::move(rule));
}

Result<FirewallId> BaselineNetwork::CreateFirewall(const std::string& name,
                                                   double capacity_pps) {
  FirewallId id = firewall_ids_.Next();
  firewalls_.emplace(id,
                     std::make_unique<DpiFirewall>(id, name, capacity_pps));
  firewalls_[id]->AttachRevisionCounter(&config_epoch_);
  ledger_->CreateComponent("dpi-firewall", name);
  ledger_->Decision("dpi-firewall", "vendor-vs-native");
  ledger_->SetParameter("dpi-firewall", "capacity");
  return id;
}

Status BaselineNetwork::AddFirewallRule(FirewallId firewall,
                                        FirewallRule rule) {
  DpiFirewall* fw = FindFirewall(firewall);
  if (fw == nullptr) {
    return NotFoundError("no such firewall");
  }
  ledger_->SetParameter("dpi-firewall", "rule:" + rule.description);
  fw->AddRule(std::move(rule));
  return Status::Ok();
}

Status BaselineNetwork::SetIngressFirewall(VpcId vpc, FirewallId firewall) {
  if (vpcs_.find(vpc) == vpcs_.end()) {
    return NotFoundError("no such vpc");
  }
  if (firewalls_.find(firewall) == firewalls_.end()) {
    return NotFoundError("no such firewall");
  }
  vpc_ingress_firewall_[vpc] = firewall;
  BumpConfigEpoch();
  ledger_->CrossReference("dpi-firewall", "vpc-ingress-steering");
  ledger_->SetParameter("route-table", "firewall-steering-route");
  return Status::Ok();
}

// --------------------------------------------------------------------------
// BGP propagation.
// --------------------------------------------------------------------------

std::unordered_map<uint64_t, size_t> BaselineNetwork::SpeakerAttachments(
    const TransitGateway& tgw) const {
  // Speaker -> attachment index for this TGW: a prefix learned from a
  // session speaker maps to the attachment registered for it.
  std::unordered_map<uint64_t, size_t> by_speaker;
  for (size_t i = 0; i < tgw.attachments().size(); ++i) {
    const TgwAttachment& att = tgw.attachments()[i];
    switch (att.kind) {
      case TgwAttachmentKind::kVpn: {
        auto it = vpns_.find(VpnGatewayId(att.target_id));
        if (it != vpns_.end()) {
          by_speaker[it->second.speaker.value()] = i;
        }
        break;
      }
      case TgwAttachmentKind::kDirectConnect: {
        auto it = dxs_.find(DirectConnectId(att.target_id));
        if (it != dxs_.end()) {
          by_speaker[it->second.speaker.value()] = i;
        }
        break;
      }
      case TgwAttachmentKind::kPeering: {
        auto it = tgws_.find(TransitGatewayId(att.target_id));
        if (it != tgws_.end()) {
          by_speaker[it->second->speaker().value()] = i;
        }
        break;
      }
      case TgwAttachmentKind::kVpc:
        break;  // static routes installed at attach time
    }
  }
  return by_speaker;
}

void BaselineNetwork::ApplyRibDeltas(
    const std::vector<std::vector<RibDelta>>& deltas) {
  for (auto& [tgw_id, tgw] : tgws_) {
    size_t speaker_index = tgw->speaker().value() - 1;
    if (speaker_index >= deltas.size() || deltas[speaker_index].empty()) {
      continue;  // this TGW's RIB did not change: FIB untouched
    }
    std::unordered_map<uint64_t, size_t> by_speaker =
        SpeakerAttachments(*tgw);
    for (const RibDelta& delta : deltas[speaker_index]) {
      if (delta.kind == RibDeltaKind::kWithdrawn) {
        tgw->WithdrawPropagatedRoute(delta.prefix);
        continue;
      }
      const BgpRoute* best = bgp_.BestRoute(tgw->speaker(), delta.prefix);
      if (best == nullptr) {
        continue;
      }
      auto it = best->OriginatedLocally()
                    ? by_speaker.end()
                    : by_speaker.find(best->learned_from.value());
      if (it != by_speaker.end()) {
        tgw->InstallPropagatedRoute(delta.prefix, it->second);
      } else {
        // Best route is now local or via a speaker with no attachment here:
        // a full rebuild would not install it, so neither do we.
        tgw->WithdrawPropagatedRoute(delta.prefix);
      }
    }
  }
}

BgpMesh::ConvergenceStats BaselineNetwork::PropagateRoutes() {
  if (bgp_.in_restart()) {
    return {};  // dead control plane: FIBs keep forwarding their frozen state
  }
  BgpMesh::ConvergenceStats stats = bgp_.Converge();
  // Apply only the prefixes whose best route actually changed. TGWs whose
  // speaker saw no delta keep their FIB (and revision) untouched, so a
  // no-op convergence invalidates nothing downstream.
  ApplyRibDeltas(bgp_.TakeDeltas());
  return stats;
}

BgpMesh::ConvergenceStats BaselineNetwork::PropagateRoutesFull() {
  if (bgp_.in_restart()) {
    return {};  // must not flush FIBs while the control plane is down
  }
  // From-scratch reference: rebuild every RIB, drop every propagated FIB
  // entry, and re-derive each TGW table from its speaker's full Loc-RIB.
  // This is what PropagateRoutes() used to cost on every call; the
  // differential tests assert the incremental path lands on the same bytes.
  BgpMesh::ConvergenceStats stats = bgp_.ConvergeFull();
  (void)bgp_.TakeDeltas();  // superseded by the full re-derivation below
  for (auto& [tgw_id, tgw] : tgws_) {
    tgw->ClearPropagatedRoutes();
    std::unordered_map<uint64_t, size_t> by_speaker =
        SpeakerAttachments(*tgw);
    const std::map<IpPrefix, BgpRoute>* rib = bgp_.LocRib(tgw->speaker());
    for (const auto& [prefix, best] : *rib) {
      if (best.OriginatedLocally()) {
        continue;
      }
      auto it = by_speaker.find(best.learned_from.value());
      if (it != by_speaker.end()) {
        tgw->InstallPropagatedRoute(prefix, it->second);
      }
    }
  }
  return stats;
}

RoutingSnapshot BaselineNetwork::CheckpointRouting() const {
  RoutingSnapshot snap;
  snap.mesh = bgp_.Checkpoint();
  snap.fibs.reserve(tgws_.size());
  for (const auto& [id, tgw] : tgws_) {
    snap.fibs.emplace_back(id, tgw->Routes());
  }
  std::sort(snap.fibs.begin(), snap.fibs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return snap;
}

void BaselineNetwork::RestoreRoutingFromSnapshot(const RoutingSnapshot& snap) {
  bgp_.RestoreFromSnapshot(snap.mesh);
  for (const auto& [id, fib] : snap.fibs) {
    auto it = tgws_.find(id);
    if (it != tgws_.end()) {
      it->second->RestoreRoutes(fib);  // bumps the revision iff changed
    }
  }
}

void BaselineNetwork::BeginRoutingRestart() { bgp_.BeginRestart(); }

uint64_t BaselineNetwork::ReconcileTgwFibs(uint64_t* checked) {
  uint64_t applied = 0;
  for (auto& [tgw_id, tgw] : tgws_) {
    std::unordered_map<uint64_t, size_t> by_speaker = SpeakerAttachments(*tgw);
    const std::map<IpPrefix, BgpRoute>* rib = bgp_.LocRib(tgw->speaker());
    // Derived intent: the propagated entries a full rebuild would install.
    std::unordered_map<IpPrefix, size_t> intended;
    if (rib != nullptr) {
      for (const auto& [prefix, best] : *rib) {
        if (best.OriginatedLocally()) {
          continue;
        }
        auto it = by_speaker.find(best.learned_from.value());
        if (it != by_speaker.end()) {
          intended.emplace(prefix, it->second);
        }
      }
    }
    // Withdraw propagated entries the intent no longer contains.
    for (const auto& [prefix, route] : tgw->Routes()) {
      if (checked != nullptr) {
        ++*checked;
      }
      if (route.origin == TgwRouteOrigin::kPropagated &&
          intended.count(prefix) == 0) {
        applied += tgw->WithdrawPropagatedRoute(prefix) ? 1 : 0;
      }
    }
    // Install/refresh intended entries. Change-only: a FIB entry that
    // already matches bumps no revision, so verdict caches survive it.
    for (const auto& [prefix, attachment] : intended) {
      if (checked != nullptr) {
        ++*checked;
      }
      applied += tgw->InstallPropagatedRoute(prefix, attachment) ? 1 : 0;
    }
  }
  return applied;
}

ReconcileStats BaselineNetwork::CompleteRoutingRestart(
    RestartMode mode, const RoutingSnapshot& snap) {
  ReconcileStats stats;
  if (mode == RestartMode::kCold) {
    auto [replayed, dropped] = bgp_.EndRestartAndReplay();
    stats.replayed_mutations = replayed;
    stats.dropped_mutations = dropped;
    PropagateRoutesFull();
    // Wholesale work: every RIB re-derived, every FIB rewritten.
    stats.deltas_applied = bgp_.TotalRibEntries();
    for (const auto& [id, tgw] : tgws_) {
      stats.deltas_applied += tgw->route_count();
    }
    return stats;
  }
  // Warm: verify retained RIBs against the checkpoint (divergent prefixes
  // queue for re-selection), replay the buffered mutations, converge
  // incrementally, and fix only the FIB entries that differ.
  (void)bgp_.ReconcileFromSnapshot(snap.mesh);
  auto [replayed, dropped] = bgp_.EndRestartAndReplay();
  stats.replayed_mutations = replayed;
  stats.dropped_mutations = dropped;
  stats.checked = bgp_.TotalRibEntries() + bgp_.TotalAdjRibInEntries();
  bgp_.Converge();
  std::vector<std::vector<RibDelta>> deltas = bgp_.TakeDeltas();
  for (const std::vector<RibDelta>& d : deltas) {
    stats.deltas_applied += d.size();
  }
  ApplyRibDeltas(deltas);
  stats.deltas_applied += ReconcileTgwFibs(&stats.checked);
  return stats;
}

std::vector<IpPrefix> BaselineNetwork::AllKnownPrefixes() const {
  std::vector<IpPrefix> out;
  for (const auto& [id, vpc] : vpcs_) {
    out.push_back(vpc->cidr);
  }
  for (const auto& [site, speaker] : on_prem_speakers_) {
    out.push_back(world_->on_prem(site).address_space);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// --------------------------------------------------------------------------
// Data plane.
// --------------------------------------------------------------------------

void BaselineNetwork::Drop(EvalContext& ctx, std::string stage,
                           std::string reason) {
  ctx.delivery.delivered = false;
  ctx.delivery.drop_stage = std::move(stage);
  ctx.delivery.drop_reason = std::move(reason);
}

bool BaselineNetwork::SgMember(SecurityGroupId group, IpAddress ip) const {
  auto it = eni_by_ip_.find(ip);
  if (it == eni_by_ip_.end()) {
    return false;
  }
  const Eni& eni = *enis_.at(it->second);
  return std::find(eni.security_groups.begin(), eni.security_groups.end(),
                   group) != eni.security_groups.end();
}

const Subnet* BaselineNetwork::SubnetOf(const Eni& eni) const {
  auto it = subnets_.find(eni.subnet);
  return it == subnets_.end() ? nullptr : it->second.get();
}

Vpc* BaselineNetwork::MutableVpc(VpcId id) {
  auto it = vpcs_.find(id);
  return it == vpcs_.end() ? nullptr : it->second.get();
}

void BaselineNetwork::DeliverIntoVpc(EvalContext& ctx, const FiveTuple& flow,
                                     const Eni& dst_eni, bool from_outside_vpc,
                                     std::string_view payload,
                                     VpcId origin_vpc) {
  const Subnet* subnet = SubnetOf(dst_eni);
  const Vpc* vpc = FindVpc(subnet->vpc);

  if (from_outside_vpc) {
    auto fw_it = vpc_ingress_firewall_.find(vpc->id);
    if (fw_it != vpc_ingress_firewall_.end()) {
      DpiFirewall* fw = firewalls_.at(fw_it->second).get();
      ctx.delivery.logical_hops.push_back("firewall:" + fw->name());
      ++ctx.delivery.gateway_hops;
      if (fw->Inspect(flow, payload) == FirewallVerdict::kDeny) {
        Drop(ctx, "firewall", "denied by " + fw->name());
        return;
      }
    }
  }

  const NetworkAcl& acl = *acls_.at(subnet->acl);
  if (!acl.Allows(TrafficDirection::kIngress, flow)) {
    Drop(ctx, "acl-ingress", "denied by " + acl.name());
    return;
  }

  auto membership = [this](SecurityGroupId g, IpAddress ip) {
    return SgMember(g, ip);
  };
  bool sg_ok = false;
  for (SecurityGroupId g : dst_eni.security_groups) {
    if (groups_.at(g)->Allows(TrafficDirection::kIngress, flow, membership)) {
      sg_ok = true;
      break;
    }
  }
  if (!sg_ok) {
    Drop(ctx, "sg-ingress", "no security group admits the flow");
    return;
  }

  // Security groups are stateful, network ACLs are not: the response (from
  // the destination's ephemeral side back to the source) must separately
  // clear the subnet ACL in the egress direction — the classic stateless
  // return-path trap.
  if (!acl.Allows(TrafficDirection::kEgress, Reverse(flow))) {
    Drop(ctx, "acl-return",
         "response blocked by stateless " + acl.name() +
             " (egress direction)");
    return;
  }

  (void)origin_vpc;
  const Instance* inst = world_->FindInstance(dst_eni.instance);
  ctx.delivery.delivered = true;
  ctx.delivery.dst_node = inst->host_node;
  ctx.delivery.effective_dst = flow.dst;
}

void BaselineNetwork::RouteAndDeliver(EvalContext& ctx, const FiveTuple& flow,
                                      VpcId src_vpc, SubnetId src_subnet,
                                      std::string_view payload) {
  if (--ctx.budget < 0) {
    Drop(ctx, "loop", "gateway traversal budget exhausted");
    return;
  }
  const Subnet& subnet = *subnets_.at(src_subnet);
  const VpcRouteTable& table = *tables_.at(subnet.route_table);
  const VpcRouteTarget* target = table.Lookup(flow.dst);
  if (target == nullptr ||
      target->kind == VpcRouteTargetKind::kBlackhole) {
    Drop(ctx, "route",
         "no route to " + flow.dst.ToString() + " in " + table.name());
    return;
  }

  switch (target->kind) {
    case VpcRouteTargetKind::kLocal: {
      auto it = eni_by_ip_.find(flow.dst);
      if (it == eni_by_ip_.end()) {
        Drop(ctx, "local", "no NIC holds " + flow.dst.ToString());
        return;
      }
      const Eni& dst_eni = *enis_.at(it->second);
      if (SubnetOf(dst_eni)->vpc != src_vpc) {
        Drop(ctx, "local", "local route but destination in another VPC");
        return;
      }
      ctx.delivery.egress_policy = EgressPolicy::kColdPotato;
      DeliverIntoVpc(ctx, flow, dst_eni, /*from_outside_vpc=*/false, payload,
                     src_vpc);
      return;
    }

    case VpcRouteTargetKind::kPeering: {
      auto pit = peerings_.find(PeeringId(target->target_id));
      if (pit == peerings_.end() || !pit->second.accepted) {
        Drop(ctx, "peering", "peering missing or not accepted");
        return;
      }
      const VpcPeering& peering = pit->second;
      VpcId far_vpc = peering.requester == src_vpc ? peering.accepter
                                                   : peering.requester;
      ctx.delivery.logical_hops.push_back("peering:" + peering.name);
      ++ctx.delivery.gateway_hops;
      auto it = eni_by_ip_.find(flow.dst);
      if (it == eni_by_ip_.end()) {
        Drop(ctx, "peering", "no NIC holds " + flow.dst.ToString());
        return;
      }
      const Eni& dst_eni = *enis_.at(it->second);
      const Subnet* dst_subnet = SubnetOf(dst_eni);
      if (dst_subnet->vpc != far_vpc) {
        Drop(ctx, "peering", "destination not in the peered VPC");
        return;
      }
      // Peering is only useful if the far side also routes back.
      const VpcRouteTable& far_table = *tables_.at(dst_subnet->route_table);
      const VpcRouteTarget* back = far_table.Lookup(flow.src);
      if (back == nullptr || back->kind != VpcRouteTargetKind::kPeering ||
          back->target_id != peering.id.value()) {
        Drop(ctx, "return-route",
             "far VPC has no return route over " + peering.name);
        return;
      }
      ctx.delivery.egress_policy = EgressPolicy::kColdPotato;
      DeliverIntoVpc(ctx, flow, dst_eni, /*from_outside_vpc=*/true, payload,
                     src_vpc);
      return;
    }

    case VpcRouteTargetKind::kTransitGateway: {
      TransitGatewayId tgw_id(target->target_id);
      // Walk TGW hops (regional TGWs may peer across regions).
      while (ctx.budget-- > 0) {
        TransitGateway* tgw = FindTgw(tgw_id);
        if (tgw == nullptr) {
          Drop(ctx, "tgw", "dangling transit gateway reference");
          return;
        }
        ctx.delivery.logical_hops.push_back("tgw:" + tgw->name());
        ++ctx.delivery.gateway_hops;
        const TgwRoute* tgw_route = tgw->Lookup(flow.dst);
        if (tgw_route == nullptr) {
          Drop(ctx, "tgw-route",
               tgw->name() + " has no route to " + flow.dst.ToString());
          return;
        }
        const TgwAttachment& att = tgw->attachments()[tgw_route->attachment];
        switch (att.kind) {
          case TgwAttachmentKind::kVpc: {
            auto it = eni_by_ip_.find(flow.dst);
            if (it == eni_by_ip_.end()) {
              Drop(ctx, "tgw", "no NIC holds " + flow.dst.ToString());
              return;
            }
            const Eni& dst_eni = *enis_.at(it->second);
            const Subnet* dst_subnet = SubnetOf(dst_eni);
            if (dst_subnet->vpc != VpcId(att.target_id)) {
              Drop(ctx, "tgw", "attachment VPC does not hold destination");
              return;
            }
            const VpcRouteTable& far_table =
                *tables_.at(dst_subnet->route_table);
            const VpcRouteTarget* back = far_table.Lookup(flow.src);
            if (back == nullptr ||
                back->kind == VpcRouteTargetKind::kBlackhole) {
              Drop(ctx, "return-route",
                   "destination VPC has no return route to " +
                       flow.src.ToString());
              return;
            }
            ctx.delivery.egress_policy = EgressPolicy::kColdPotato;
            DeliverIntoVpc(ctx, flow, dst_eni, /*from_outside_vpc=*/true,
                           payload, src_vpc);
            return;
          }
          case TgwAttachmentKind::kPeering: {
            tgw_id = TransitGatewayId(att.target_id);
            continue;  // hop to the peer TGW
          }
          case TgwAttachmentKind::kVpn: {
            auto vit = vpns_.find(VpnGatewayId(att.target_id));
            if (vit == vpns_.end()) {
              Drop(ctx, "tgw", "dangling VPN attachment");
              return;
            }
            ctx.delivery.logical_hops.push_back("vpn:" + vit->second.name);
            ++ctx.delivery.gateway_hops;
            DeliverToOnPrem(ctx, flow, vit->second.remote_site,
                            EgressPolicy::kHotPotato);
            return;
          }
          case TgwAttachmentKind::kDirectConnect: {
            DeliverViaDirectConnect(ctx, flow,
                                    DirectConnectId(att.target_id), payload);
            return;
          }
        }
      }
      Drop(ctx, "loop", "TGW hop budget exhausted");
      return;
    }

    case VpcRouteTargetKind::kVpnGateway: {
      auto vit = vpns_.find(VpnGatewayId(target->target_id));
      if (vit == vpns_.end()) {
        Drop(ctx, "vpn", "dangling VPN gateway reference");
        return;
      }
      const VpnGateway& vpn = vit->second;
      ctx.delivery.logical_hops.push_back("vpn:" + vpn.name);
      ++ctx.delivery.gateway_hops;
      // BGP must have taught the VPG a route (tenant ran PropagateRoutes and
      // the customer gateway advertises the site space).
      const BgpRoute* learned = bgp_.BestRoute(vpn.speaker, RouteForDst(flow.dst));
      if (learned == nullptr || learned->OriginatedLocally()) {
        Drop(ctx, "bgp", vpn.name + " has not learned a route to " +
                             flow.dst.ToString());
        return;
      }
      DeliverToOnPrem(ctx, flow, vpn.remote_site, EgressPolicy::kHotPotato);
      return;
    }

    case VpcRouteTargetKind::kNatGateway: {
      auto nit = nats_.find(NatGatewayId(target->target_id));
      if (nit == nats_.end()) {
        Drop(ctx, "nat", "dangling NAT gateway reference");
        return;
      }
      const NatGateway& nat = nit->second;
      ctx.delivery.logical_hops.push_back("nat:" + nat.name);
      ++ctx.delivery.gateway_hops;
      FiveTuple translated = flow;
      translated.src = nat.public_ip;
      ctx.delivery.effective_src = nat.public_ip;
      // Continue from the NAT's own (public) subnet.
      const Subnet& nat_subnet = *subnets_.at(nat.subnet);
      RouteAndDeliver(ctx, translated, nat_subnet.vpc, nat.subnet, payload);
      return;
    }

    case VpcRouteTargetKind::kInternetGateway:
    case VpcRouteTargetKind::kEgressOnlyIgw: {
      ctx.delivery.used_public_path = true;
      ctx.delivery.egress_policy = EgressPolicy::kHotPotato;
      ctx.delivery.logical_hops.push_back(
          target->kind == VpcRouteTargetKind::kInternetGateway
              ? "igw"
              : "egress-only-igw");
      ++ctx.delivery.gateway_hops;
      // Crossing an IGW requires a public source address.
      const Eni* src_eni_for_ip = nullptr;
      auto sit = eni_by_ip_.find(flow.src);
      if (sit != eni_by_ip_.end()) {
        src_eni_for_ip = enis_.at(sit->second).get();
      }
      bool src_is_public =
          (src_eni_for_ip == nullptr) ||  // already NAT-translated
          (src_eni_for_ip->public_ip.has_value() &&
           *src_eni_for_ip->public_ip == flow.src);
      if (!src_is_public) {
        Drop(ctx, "igw",
             "private source cannot cross an internet gateway (needs NAT or "
             "a public IP)");
        return;
      }
      DeliverFromInternet(ctx, flow, payload);
      return;
    }

    case VpcRouteTargetKind::kBlackhole:
      Drop(ctx, "route", "blackhole route");
      return;
  }
}

// Delivery of a public-internet flow toward whatever the destination address
// names: a tenant NIC's public IP, an on-prem site, or nothing.
void BaselineNetwork::DeliverFromInternet(EvalContext& ctx,
                                          const FiveTuple& flow,
                                          std::string_view payload) {
  auto it = eni_by_ip_.find(flow.dst);
  if (it != eni_by_ip_.end()) {
    const Eni& dst_eni = *enis_.at(it->second);
    if (!dst_eni.public_ip.has_value() || *dst_eni.public_ip != flow.dst) {
      Drop(ctx, "internet", "destination address is not publicly routable");
      return;
    }
    const Subnet* dst_subnet = SubnetOf(dst_eni);
    const Vpc* dst_vpc = FindVpc(dst_subnet->vpc);
    // The destination VPC needs an IGW and the subnet a route through it.
    if (igw_by_vpc_.count(dst_vpc->id) == 0) {
      Drop(ctx, "internet",
           "destination VPC has no internet gateway");
      return;
    }
    const VpcRouteTable& far_table = *tables_.at(dst_subnet->route_table);
    const VpcRouteTarget* back = far_table.Lookup(flow.src);
    if (back == nullptr ||
        (back->kind != VpcRouteTargetKind::kInternetGateway &&
         back->kind != VpcRouteTargetKind::kNatGateway)) {
      Drop(ctx, "return-route",
           "destination subnet is not public (no IGW return route)");
      return;
    }
    ctx.delivery.used_public_path = true;
    DeliverIntoVpc(ctx, flow, dst_eni, /*from_outside_vpc=*/true, payload,
                   VpcId());
    return;
  }
  // On-prem public exposure is not modeled (sites are private).
  for (const auto& [site, pool] : on_prem_pools_) {
    if (world_->on_prem(site).address_space.Contains(flow.dst)) {
      Drop(ctx, "internet",
           "on-prem addresses are private; internet path cannot reach them");
      return;
    }
  }
  Drop(ctx, "internet", "no tenant endpoint holds " + flow.dst.ToString());
}

void BaselineNetwork::DeliverToOnPrem(EvalContext& ctx, const FiveTuple& flow,
                                      OnPremId site, EgressPolicy policy) {
  const OnPremSite& onp = world_->on_prem(site);
  if (!onp.address_space.Contains(flow.dst)) {
    Drop(ctx, "on-prem",
         flow.dst.ToString() + " is outside " + onp.name + "'s space");
    return;
  }
  // Find the instance holding the address.
  for (const auto& [instance, addr] : on_prem_addrs_) {
    if (addr == flow.dst) {
      const Instance* inst = world_->FindInstance(instance);
      if (inst == nullptr || !inst->running) {
        break;
      }
      ctx.delivery.delivered = true;
      ctx.delivery.dst_node = inst->host_node;
      ctx.delivery.effective_dst = flow.dst;
      ctx.delivery.egress_policy = policy;
      return;
    }
  }
  Drop(ctx, "on-prem", "no on-prem host holds " + flow.dst.ToString());
}

void BaselineNetwork::DeliverViaDirectConnect(EvalContext& ctx,
                                              const FiveTuple& flow,
                                              DirectConnectId dx_id,
                                              std::string_view payload) {
  if (--ctx.budget < 0) {
    Drop(ctx, "loop", "gateway traversal budget exhausted");
    return;
  }
  auto dit = dxs_.find(dx_id);
  if (dit == dxs_.end()) {
    Drop(ctx, "dx", "dangling direct connect reference");
    return;
  }
  const DirectConnectConnection& dx = dit->second;
  ctx.delivery.logical_hops.push_back("direct-connect:" + dx.name);
  ++ctx.delivery.gateway_hops;
  ctx.delivery.egress_policy = EgressPolicy::kDedicated;

  const BgpRoute* best = bgp_.BestRoute(dx.speaker, RouteForDst(flow.dst));
  if (best == nullptr || best->OriginatedLocally()) {
    Drop(ctx, "bgp",
         dx.name + " has not learned a route to " + flow.dst.ToString());
    return;
  }
  SpeakerId next = best->learned_from;
  // On-prem router on the far side of the exchange?
  for (const auto& [site, speaker] : on_prem_speakers_) {
    if (speaker == next) {
      ctx.delivery.logical_hops.push_back("exchange:" +
                                          world_->exchange(dx.exchange).name);
      DeliverToOnPrem(ctx, flow, site, EgressPolicy::kDedicated);
      return;
    }
  }
  // The circuit's own transit gateway (traffic entering the cloud from the
  // exchange side, e.g. on-prem -> cloud)?
  for (const auto& [tgw_id, tgw] : tgws_) {
    if (tgw->speaker() != next) {
      continue;
    }
    ctx.delivery.logical_hops.push_back("tgw:" + tgw->name());
    ++ctx.delivery.gateway_hops;
    const TgwRoute* tgw_route = tgw->Lookup(flow.dst);
    if (tgw_route == nullptr) {
      Drop(ctx, "tgw-route",
           tgw->name() + " has no route to " + flow.dst.ToString());
      return;
    }
    const TgwAttachment& att = tgw->attachments()[tgw_route->attachment];
    if (att.kind != TgwAttachmentKind::kVpc) {
      Drop(ctx, "dx", "circuit chain deeper than one hop is not modeled");
      return;
    }
    auto it = eni_by_ip_.find(flow.dst);
    if (it == eni_by_ip_.end()) {
      Drop(ctx, "dx", "no NIC holds " + flow.dst.ToString());
      return;
    }
    const Eni& dst_eni = *enis_.at(it->second);
    const Subnet* dst_subnet = SubnetOf(dst_eni);
    const VpcRouteTable& far_table = *tables_.at(dst_subnet->route_table);
    const VpcRouteTarget* back = far_table.Lookup(flow.src);
    if (back == nullptr || back->kind == VpcRouteTargetKind::kBlackhole) {
      Drop(ctx, "return-route",
           "destination VPC has no return route to " + flow.src.ToString());
      return;
    }
    DeliverIntoVpc(ctx, flow, dst_eni, /*from_outside_vpc=*/true, payload,
                   VpcId());
    return;
  }
  // Another circuit (the other cloud's side)?
  for (const auto& [other_id, other] : dxs_) {
    if (other.speaker == next) {
      ctx.delivery.logical_hops.push_back("exchange:" +
                                          world_->exchange(dx.exchange).name);
      auto tit = tgw_by_dx_.find(other_id);
      if (tit == tgw_by_dx_.end()) {
        Drop(ctx, "dx", other.name + " is not attached to a transit gateway");
        return;
      }
      // Continue from the far TGW.
      TransitGateway* tgw = FindTgw(tit->second);
      ctx.delivery.logical_hops.push_back("direct-connect:" + other.name);
      ctx.delivery.logical_hops.push_back("tgw:" + tgw->name());
      ctx.delivery.gateway_hops += 3;
      const TgwRoute* tgw_route = tgw->Lookup(flow.dst);
      if (tgw_route == nullptr) {
        Drop(ctx, "tgw-route",
             tgw->name() + " has no route to " + flow.dst.ToString());
        return;
      }
      const TgwAttachment& att = tgw->attachments()[tgw_route->attachment];
      if (att.kind != TgwAttachmentKind::kVpc) {
        Drop(ctx, "dx", "circuit chain deeper than one hop is not modeled");
        return;
      }
      auto it = eni_by_ip_.find(flow.dst);
      if (it == eni_by_ip_.end()) {
        Drop(ctx, "dx", "no NIC holds " + flow.dst.ToString());
        return;
      }
      const Eni& dst_eni = *enis_.at(it->second);
      DeliverIntoVpc(ctx, flow, dst_eni, /*from_outside_vpc=*/true, payload,
                     VpcId());
      return;
    }
  }
  Drop(ctx, "dx", "no exchange party owns the learned route");
}

// For VPG/DX RIB lookups we need the covering prefix of a destination among
// the prefixes the mesh knows.
IpPrefix BaselineNetwork::RouteForDst(IpAddress dst) const {
  IpPrefix best = IpPrefix::Any(dst.family());
  int best_len = -1;
  for (const IpPrefix& p : AllKnownPrefixes()) {
    if (p.Contains(dst) && p.length() > best_len) {
      best = p;
      best_len = p.length();
    }
  }
  return best;
}

bool BaselineNetwork::CacheableDelivery(const BaselineDelivery& delivery) {
  // Flows the DPI firewall saw must keep hitting it: its inspected/denied
  // counters drive the E6 saturation model.
  if (delivery.drop_stage == "firewall") {
    return false;
  }
  for (const std::string& hop : delivery.logical_hops) {
    if (hop.rfind("firewall:", 0) == 0) {
      return false;
    }
  }
  return true;
}

Result<BaselineDelivery> BaselineNetwork::Evaluate(InstanceId src,
                                                   InstanceId dst,
                                                   uint16_t dst_port,
                                                   Protocol proto,
                                                   std::string_view payload) {
  if (!payload.empty()) {
    // Payload matching (DPI) makes the verdict a function of the payload;
    // don't pollute the 4-tuple-keyed cache.
    return EvaluateUncached(src, dst, dst_port, proto, payload);
  }
  InstanceFlowKey key{src.value(), dst.value(), dst_port, proto};
  const uint64_t gen = VerdictGen();
  if (const BaselineDelivery* cached =
          instance_cache_.Lookup(key, gen, gen, [gen] { return gen; })) {
    return *cached;
  }
  Result<BaselineDelivery> result =
      EvaluateUncached(src, dst, dst_port, proto, payload);
  if (result.ok() && CacheableDelivery(*result)) {
    instance_cache_.Insert(key, gen, gen, gen, *result);
  }
  return result;
}

Result<BaselineDelivery> BaselineNetwork::EvaluateUncached(
    InstanceId src, InstanceId dst, uint16_t dst_port, Protocol proto,
    std::string_view payload) {
  const Instance* src_inst = world_->FindInstance(src);
  const Instance* dst_inst = world_->FindInstance(dst);
  if (src_inst == nullptr || dst_inst == nullptr) {
    return NotFoundError("unknown instance");
  }
  if (!src_inst->running || !dst_inst->running) {
    return FailedPreconditionError("instance is not running");
  }

  EvalContext ctx;
  ctx.delivery.src_node = src_inst->host_node;

  // --- Resolve the source side and the address the app would dial. ---------
  const bool src_on_prem = src_inst->on_prem.valid();
  const bool dst_on_prem = dst_inst->on_prem.valid();

  // Destination addressing.
  IpAddress dst_private;
  const Eni* dst_eni = nullptr;
  if (dst_on_prem) {
    auto it = on_prem_addrs_.find(dst);
    if (it == on_prem_addrs_.end()) {
      return FailedPreconditionError(
          "on-prem destination has no address (AttachOnPremInstance)");
    }
    dst_private = it->second;
  } else {
    dst_eni = FindEniByInstance(dst);
    if (dst_eni == nullptr) {
      return FailedPreconditionError(
          "destination instance has no ENI (AttachInstance)");
    }
    dst_private = dst_eni->private_ip;
  }

  FiveTuple flow;
  flow.proto = proto;
  flow.dst_port = dst_port;
  flow.src_port = 40000 + static_cast<uint16_t>(src.value() % 20000);

  if (src_on_prem) {
    auto ait = on_prem_addrs_.find(src);
    if (ait == on_prem_addrs_.end()) {
      return FailedPreconditionError(
          "on-prem source has no address (AttachOnPremInstance)");
    }
    flow.src = ait->second;
    ctx.delivery.effective_src = flow.src;

    if (dst_on_prem) {
      if (src_inst->on_prem == dst_inst->on_prem) {
        flow.dst = dst_private;
        DeliverToOnPrem(ctx, flow, dst_inst->on_prem,
                        EgressPolicy::kColdPotato);
        return ctx.delivery;
      }
      Drop(ctx, "route", "no connectivity between distinct on-prem sites");
      return ctx.delivery;
    }

    // On-prem -> cloud: use the site's BGP view; private entry if a VPG/DX
    // advertised the destination VPC, otherwise the public internet.
    auto spk_it = on_prem_speakers_.find(src_inst->on_prem);
    const BgpRoute* learned =
        spk_it == on_prem_speakers_.end()
            ? nullptr
            : bgp_.BestRoute(spk_it->second, RouteForDst(dst_private));
    if (learned != nullptr && !learned->OriginatedLocally()) {
      flow.dst = dst_private;
      ctx.delivery.effective_dst = dst_private;
      SpeakerId next = learned->learned_from;
      // Through a VPN gateway into its VPC?
      for (const auto& [vid, vpn] : vpns_) {
        if (vpn.speaker == next) {
          ctx.delivery.logical_hops.push_back("vpn:" + vpn.name);
          ++ctx.delivery.gateway_hops;
          ctx.delivery.egress_policy = EgressPolicy::kHotPotato;
          const Subnet* dsn = SubnetOf(*dst_eni);
          if (dsn->vpc != vpn.vpc) {
            Drop(ctx, "vpn", "VPN lands in a different VPC than destination");
            return ctx.delivery;
          }
          const VpcRouteTable& far_table = *tables_.at(dsn->route_table);
          const VpcRouteTarget* back = far_table.Lookup(flow.src);
          if (back == nullptr ||
              back->kind == VpcRouteTargetKind::kBlackhole) {
            Drop(ctx, "return-route",
                 "destination VPC has no return route to on-prem");
            return ctx.delivery;
          }
          DeliverIntoVpc(ctx, flow, *dst_eni, /*from_outside_vpc=*/true,
                         payload, VpcId());
          return ctx.delivery;
        }
      }
      // Through a circuit?
      for (const auto& [did, dx] : dxs_) {
        if (dx.speaker == next) {
          DeliverViaDirectConnect(ctx, flow, did, payload);
          return ctx.delivery;
        }
      }
      Drop(ctx, "bgp", "learned route maps to no gateway");
      return ctx.delivery;
    }
    // Public fallback.
    if (dst_eni != nullptr && dst_eni->public_ip.has_value()) {
      flow.dst = *dst_eni->public_ip;
      ctx.delivery.used_public_path = true;
      ctx.delivery.egress_policy = EgressPolicy::kHotPotato;
      DeliverFromInternet(ctx, flow, payload);
      return ctx.delivery;
    }
    Drop(ctx, "route", "on-prem source has no route to destination");
    return ctx.delivery;
  }

  // Cloud source.
  const Eni* src_eni = FindEniByInstance(src);
  if (src_eni == nullptr) {
    return FailedPreconditionError(
        "source instance has no ENI (AttachInstance)");
  }
  const Subnet* src_subnet = SubnetOf(*src_eni);
  flow.src = src_eni->private_ip;
  ctx.delivery.effective_src = flow.src;

  // Which destination address would the app dial? Private if the source
  // route table knows a private path; otherwise the public address.
  const VpcRouteTable& src_table = *tables_.at(src_subnet->route_table);
  const VpcRouteTarget* private_route = src_table.Lookup(dst_private);
  bool private_viable =
      private_route != nullptr &&
      private_route->kind != VpcRouteTargetKind::kBlackhole &&
      private_route->kind != VpcRouteTargetKind::kInternetGateway &&
      private_route->kind != VpcRouteTargetKind::kEgressOnlyIgw &&
      private_route->kind != VpcRouteTargetKind::kNatGateway;
  // A "local" route only helps if the destination really is local.
  if (private_viable &&
      private_route->kind == VpcRouteTargetKind::kLocal &&
      (dst_on_prem || SubnetOf(*dst_eni)->vpc != src_subnet->vpc)) {
    private_viable = false;
  }

  if (private_viable) {
    flow.dst = dst_private;
  } else if (!dst_on_prem && dst_eni->public_ip.has_value()) {
    flow.dst = *dst_eni->public_ip;
  } else if (dst_on_prem) {
    // On-prem can only be reached privately.
    flow.dst = dst_private;
  } else {
    Drop(ctx, "route",
         "no private route and destination has no public address");
    return ctx.delivery;
  }
  ctx.delivery.effective_dst = flow.dst;

  // Source-side checks.
  auto membership = [this](SecurityGroupId g, IpAddress ip) {
    return SgMember(g, ip);
  };
  bool sg_ok = false;
  for (SecurityGroupId g : src_eni->security_groups) {
    if (groups_.at(g)->Allows(TrafficDirection::kEgress, flow, membership)) {
      sg_ok = true;
      break;
    }
  }
  if (!sg_ok) {
    Drop(ctx, "sg-egress", "no security group allows the egress flow");
    return ctx.delivery;
  }
  const NetworkAcl& src_acl = *acls_.at(src_subnet->acl);
  if (!src_acl.Allows(TrafficDirection::kEgress, flow)) {
    Drop(ctx, "acl-egress", "denied by " + src_acl.name());
    return ctx.delivery;
  }

  RouteAndDeliver(ctx, flow, src_subnet->vpc, src_subnet->id, payload);
  return ctx.delivery;
}

BaselineDelivery BaselineNetwork::EvaluateExternal(IpAddress src,
                                                   IpAddress dst,
                                                   uint16_t dst_port,
                                                   Protocol proto,
                                                   std::string_view payload) {
  if (!payload.empty()) {
    return EvaluateExternalUncached(src, dst, dst_port, proto, payload);
  }
  ExternalFlowKey key{src, dst, dst_port, proto};
  const uint64_t gen = VerdictGen();
  if (const BaselineDelivery* cached =
          external_cache_.Lookup(key, gen, gen, [gen] { return gen; })) {
    return *cached;
  }
  BaselineDelivery delivery =
      EvaluateExternalUncached(src, dst, dst_port, proto, payload);
  if (CacheableDelivery(delivery)) {
    external_cache_.Insert(key, gen, gen, gen, delivery);
  }
  return delivery;
}

BaselineDelivery BaselineNetwork::EvaluateExternalUncached(
    IpAddress src, IpAddress dst, uint16_t dst_port, Protocol proto,
    std::string_view payload) {
  EvalContext ctx;
  FiveTuple flow;
  flow.src = src;
  flow.dst = dst;
  flow.src_port = 55555;
  flow.dst_port = dst_port;
  flow.proto = proto;
  ctx.delivery.effective_src = src;
  ctx.delivery.effective_dst = dst;
  ctx.delivery.used_public_path = true;
  ctx.delivery.egress_policy = EgressPolicy::kHotPotato;
  DeliverFromInternet(ctx, flow, payload);
  return ctx.delivery;
}

Result<InstanceId> BaselineNetwork::ResolveThroughLoadBalancer(
    LoadBalancerId lb_id, const FiveTuple& flow, const HttpRequestMeta* meta) {
  LoadBalancer* lb = FindLoadBalancer(lb_id);
  if (lb == nullptr) {
    return NotFoundError("no such load balancer");
  }
  TN_ASSIGN_OR_RETURN(TargetGroupId tg_id, lb->Resolve(flow, meta));
  TargetGroup* tg = FindTargetGroup(tg_id);
  if (tg == nullptr) {
    return NotFoundError("listener references a missing target group");
  }
  return tg->Pick(lb_pick_seq_++);
}

// --------------------------------------------------------------------------
// Lookups and counts.
// --------------------------------------------------------------------------

const Vpc* BaselineNetwork::FindVpc(VpcId id) const {
  auto it = vpcs_.find(id);
  return it == vpcs_.end() ? nullptr : it->second.get();
}
const Subnet* BaselineNetwork::FindSubnet(SubnetId id) const {
  auto it = subnets_.find(id);
  return it == subnets_.end() ? nullptr : it->second.get();
}
const Eni* BaselineNetwork::FindEniByInstance(InstanceId id) const {
  auto it = eni_by_instance_.find(id);
  if (it == eni_by_instance_.end()) {
    return nullptr;
  }
  return enis_.at(it->second).get();
}
const Eni* BaselineNetwork::FindEniByIp(IpAddress ip) const {
  auto it = eni_by_ip_.find(ip);
  if (it == eni_by_ip_.end()) {
    return nullptr;
  }
  return enis_.at(it->second).get();
}
SecurityGroup* BaselineNetwork::FindSecurityGroup(SecurityGroupId id) {
  auto it = groups_.find(id);
  return it == groups_.end() ? nullptr : it->second.get();
}
VpcRouteTable* BaselineNetwork::FindRouteTable(VpcRouteTableId id) {
  auto it = tables_.find(id);
  return it == tables_.end() ? nullptr : it->second.get();
}
NetworkAcl* BaselineNetwork::FindAcl(NetworkAclId id) {
  auto it = acls_.find(id);
  return it == acls_.end() ? nullptr : it->second.get();
}
std::vector<VpcRouteTableId> BaselineNetwork::AllRouteTables() const {
  std::vector<VpcRouteTableId> out;
  out.reserve(tables_.size());
  for (const auto& [id, table] : tables_) {
    out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}
std::vector<SecurityGroupId> BaselineNetwork::AllSecurityGroups() const {
  std::vector<SecurityGroupId> out;
  out.reserve(groups_.size());
  for (const auto& [id, group] : groups_) {
    out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TargetGroup* BaselineNetwork::FindTargetGroup(TargetGroupId id) {
  auto it = target_groups_.find(id);
  return it == target_groups_.end() ? nullptr : it->second.get();
}
LoadBalancer* BaselineNetwork::FindLoadBalancer(LoadBalancerId id) {
  auto it = lbs_.find(id);
  return it == lbs_.end() ? nullptr : it->second.get();
}
DpiFirewall* BaselineNetwork::FindFirewall(FirewallId id) {
  auto it = firewalls_.find(id);
  return it == firewalls_.end() ? nullptr : it->second.get();
}
TransitGateway* BaselineNetwork::FindTgw(TransitGatewayId id) {
  auto it = tgws_.find(id);
  return it == tgws_.end() ? nullptr : it->second.get();
}
std::optional<IpAddress> BaselineNetwork::OnPremAddress(InstanceId id) const {
  auto it = on_prem_addrs_.find(id);
  if (it == on_prem_addrs_.end()) {
    return std::nullopt;
  }
  return it->second;
}

size_t BaselineNetwork::gateway_count() const {
  return igws_.size() + egress_igws_.size() + nats_.size() + vpns_.size() +
         tgws_.size() + dxs_.size();
}

size_t BaselineNetwork::appliance_count() const {
  return lbs_.size() + firewalls_.size();
}

size_t BaselineNetwork::tgw_attachment_count() const {
  size_t total = 0;
  for (const auto& [id, tgw] : tgws_) {
    total += tgw->attachments().size();
  }
  return total;
}

}  // namespace tenantnet
