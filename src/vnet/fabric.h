// BaselineNetwork: the complete traditional tenant-networking layer.
//
// This is the world of §2 of the paper, end to end. The control-plane
// methods are the tenant actions (every one flows through the ConfigLedger
// so complexity is measured, not asserted); the data-plane Evaluate walks a
// flow through the same sequence a real deployment imposes:
//
//   src SG egress -> src subnet ACL egress -> subnet route table ->
//   gateway chain (local / peering / transit gateways / IGW / NAT / VPN /
//   Direct Connect) -> optional ingress DPI firewall -> dst subnet ACL
//   ingress -> dst SG ingress -> (stateless ACLs re-checked on the reverse
//   path, the classic ephemeral-port trap)
//
// Evaluate reports where a flow died and which boxes it traversed, which is
// exactly what experiments E1 (box count), E6 (security) and the
// integration tests need.

#ifndef TENANTNET_SRC_VNET_FABRIC_H_
#define TENANTNET_SRC_VNET_FABRIC_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/cloud/world.h"
#include "src/net/ipam.h"
#include "src/net/verdict_cache.h"
#include "src/routing/bgp.h"
#include "src/vnet/config_ledger.h"
#include "src/vnet/firewall.h"
#include "src/vnet/gateways.h"
#include "src/vnet/load_balancer.h"
#include "src/vnet/security.h"
#include "src/vnet/vpc.h"

namespace tenantnet {

// The verdict for one evaluated flow.
struct BaselineDelivery {
  bool delivered = false;
  std::string drop_stage;   // "sg-egress", "acl-ingress", "route", ...
  std::string drop_reason;
  // Every virtual box the flow traversed, in order.
  std::vector<std::string> logical_hops;
  int gateway_hops = 0;
  // The addresses the flow actually used (post NAT, public vs private).
  IpAddress effective_src;
  IpAddress effective_dst;
  bool used_public_path = false;
  // Physical attachment points for handing to the flow simulator.
  NodeId src_node;
  NodeId dst_node;
  EgressPolicy egress_policy = EgressPolicy::kHotPotato;
};

// Durable image of the fabric's routing plane: the BGP mesh RIBs plus every
// TGW FIB (static and propagated entries alike, in Routes() form).
struct RoutingSnapshot {
  BgpMeshSnapshot mesh;
  std::vector<std::pair<TransitGatewayId,
                        std::vector<std::pair<IpPrefix, TgwRoute>>>>
      fibs;  // sorted by TGW id

  friend bool operator==(const RoutingSnapshot& a,
                         const RoutingSnapshot& b) = default;
};

class BaselineNetwork {
 public:
  // `world` and `ledger` must outlive the network.
  BaselineNetwork(CloudWorld& world, ConfigLedger& ledger);

  ConfigLedger& ledger() { return *ledger_; }
  CloudWorld& world() { return *world_; }

  // --- Step (1): VPCs, subnets, ACLs, SGs, NICs ---------------------------

  Result<VpcId> CreateVpc(TenantId tenant, ProviderId provider,
                          RegionId region, const std::string& name,
                          const IpPrefix& cidr);
  Result<SubnetId> CreateSubnet(VpcId vpc, const std::string& name,
                                int prefix_len, int zone_index,
                                bool is_public);
  Result<VpcRouteTableId> CreateRouteTable(VpcId vpc, const std::string& name);
  Status AssociateRouteTable(SubnetId subnet, VpcRouteTableId table);
  Status AddRoute(VpcRouteTableId table, const IpPrefix& prefix,
                  VpcRouteTarget target);
  Status RemoveRoute(VpcRouteTableId table, const IpPrefix& prefix);

  Result<SecurityGroupId> CreateSecurityGroup(VpcId vpc,
                                              const std::string& name);
  Status AddSgRule(SecurityGroupId group, SgRule rule);
  Status RemoveSgRule(SecurityGroupId group, size_t rule_index);
  Result<NetworkAclId> CreateNetworkAcl(VpcId vpc, const std::string& name);
  Status AddAclEntry(NetworkAclId acl, AclEntry entry);
  Status AssociateAcl(SubnetId subnet, NetworkAclId acl);

  // Attaches an instance to a subnet: allocates a private IP, optionally a
  // public IP from the provider pool, and binds security groups.
  Result<EniId> AttachInstance(InstanceId instance, SubnetId subnet,
                               std::vector<SecurityGroupId> groups,
                               bool assign_public_ip);
  Status DetachInstance(InstanceId instance);

  // Registers an on-prem instance (address from the site's private space).
  Result<IpAddress> AttachOnPremInstance(InstanceId instance);

  // --- Step (2): connectivity in/out of a VPC ------------------------------

  Result<IgwId> CreateInternetGateway(VpcId vpc, const std::string& name);
  Result<EgressOnlyIgwId> CreateEgressOnlyIgw(VpcId vpc,
                                              const std::string& name);
  Result<NatGatewayId> CreateNatGateway(SubnetId public_subnet,
                                        const std::string& name);
  Result<VpnGatewayId> CreateVpnGateway(VpcId vpc, OnPremId site,
                                        uint32_t bgp_asn,
                                        const std::string& name);

  // --- Step (3): networking multiple VPCs ----------------------------------

  Result<PeeringId> CreatePeering(VpcId requester, VpcId accepter,
                                  const std::string& name);
  Status AcceptPeering(PeeringId peering);

  Result<TransitGatewayId> CreateTransitGateway(ProviderId provider,
                                                RegionId region, uint32_t asn,
                                                const std::string& name);
  Result<size_t> AttachVpcToTgw(TransitGatewayId tgw, VpcId vpc);
  Result<size_t> AttachVpnToTgw(TransitGatewayId tgw, VpnGatewayId vpn);
  Result<size_t> AttachDirectConnectToTgw(TransitGatewayId tgw,
                                          DirectConnectId dx);
  // Cross-region/cloud TGW peering; attaches each to the other.
  Status PeerTransitGateways(TransitGatewayId a, TransitGatewayId b);
  Status AddTgwRoute(TransitGatewayId tgw, const IpPrefix& prefix,
                     size_t attachment_index);

  // --- Step (4): specialized connections ------------------------------------

  Result<DirectConnectId> CreateDirectConnect(RegionId region,
                                              ExchangeId exchange,
                                              double capacity_bps,
                                              uint16_t vlan, uint32_t bgp_asn,
                                              const std::string& name);
  // Cross-connects two circuits landing at the same exchange (e.g. Direct
  // Connect on one side, ExpressRoute on the other): a BGP session over the
  // exchange router the tenant must also configure.
  Status CrossConnect(DirectConnectId a, DirectConnectId b);
  // Lands an MPLS circuit from `site` at the circuit's exchange and peers
  // the two (the Fig. 1 on-prem leg).
  Status CrossConnectToOnPrem(DirectConnectId dx, OnPremId site,
                              double capacity_bps);

  // --- Step (5): appliances --------------------------------------------------

  Result<TargetGroupId> CreateTargetGroup(const std::string& name,
                                          Protocol proto, uint16_t port);
  Status RegisterTarget(TargetGroupId group, InstanceId instance,
                        double weight = 1.0);
  Result<LoadBalancerId> CreateLoadBalancer(LbType type,
                                            const std::string& name, VpcId vpc,
                                            std::vector<SubnetId> subnets);
  Status AddLbListener(LoadBalancerId lb, LbListener listener);
  Status AddLbRule(LoadBalancerId lb, uint16_t port, L7Rule rule);

  Result<FirewallId> CreateFirewall(const std::string& name,
                                    double capacity_pps);
  Status AddFirewallRule(FirewallId firewall, FirewallRule rule);
  // All traffic entering `vpc` from outside it is steered through the
  // firewall (inspection-VPC pattern, simplified).
  Status SetIngressFirewall(VpcId vpc, FirewallId firewall);

  // --- BGP -------------------------------------------------------------------

  // The tenant's inter-domain mesh (TGWs, VPGs, DX and on-prem routers all
  // speak here). Sessions/origins are created by the gateway methods; the
  // tenant still has to trigger and check convergence.
  BgpMesh& bgp() { return bgp_; }
  // Propagates routes: converges BGP incrementally (draining the dirty-
  // prefix queue), then applies the per-speaker Loc-RIB delta set as
  // install/withdraw deltas to the TGW route tables. A convergence that
  // changes nothing touches no FIB and bumps no revision. Returns
  // convergence stats.
  BgpMesh::ConvergenceStats PropagateRoutes();
  // From-scratch reference: full BGP reconvergence plus a complete rebuild
  // of every TGW's propagated routes. Byte-equivalent to the incremental
  // path (asserted by the differential tests); orders of magnitude slower
  // under churn (measured in E4a).
  BgpMesh::ConvergenceStats PropagateRoutesFull();

  // --- Warm restart of the routing plane (see src/common/reconcile.h) -------

  // Captures the BGP RIBs and every TGW FIB.
  RoutingSnapshot CheckpointRouting() const;

  // Wholesale restore of what CheckpointRouting() captured (disaster path —
  // warm reconciliation goes through CompleteRoutingRestart instead).
  void RestoreRoutingFromSnapshot(const RoutingSnapshot& snap);

  // Kills the routing control plane: BGP config mutations buffer,
  // PropagateRoutes()/PropagateRoutesFull() become no-ops, and the RIBs and
  // TGW FIBs keep forwarding their frozen state. Idempotent.
  void BeginRoutingRestart();
  bool routing_in_restart() const { return bgp_.in_restart(); }

  //   kWarm: verify retained RIBs against the checkpoint (divergent prefixes
  //     re-selected), replay buffered mutations, converge incrementally,
  //     apply the resulting Loc-RIB deltas, then sweep every TGW FIB against
  //     its speaker's Loc-RIB with change-only installs/withdraws. FIBs that
  //     match are untouched — no revision bump, verdict caches survive.
  //   kCold: replay buffered mutations, then PropagateRoutesFull() — every
  //     RIB rebuilt, every propagated FIB entry dropped and reinstalled
  //     (the revision storm the warm path exists to avoid).
  // Both paths land on the same bytes (asserted by the restart oracle test).
  ReconcileStats CompleteRoutingRestart(RestartMode mode,
                                        const RoutingSnapshot& snap);

  // --- Data plane --------------------------------------------------------------

  // Evaluates instance-to-instance traffic (either instance may be on-prem).
  // Successful payload-free verdicts are memoized in a generational cache
  // validated against the fabric's config epoch (every control-plane
  // mutation bumps it — including direct mutation through pointers from
  // FindRouteTable and friends, via their attached revision counters), the
  // world's instance-state epoch, and the BGP mesh's mutation count.
  // Payload-bearing flows and flows that traversed a DPI firewall always
  // take the uncached path (the firewall's inspection counters are part of
  // the observable saturation model).
  Result<BaselineDelivery> Evaluate(InstanceId src, InstanceId dst,
                                    uint16_t dst_port, Protocol proto,
                                    std::string_view payload = {});

  // The full walk, bypassing the verdict cache. Reference implementation
  // for equivalence tests and the bench speedup baseline.
  Result<BaselineDelivery> EvaluateUncached(InstanceId src, InstanceId dst,
                                            uint16_t dst_port, Protocol proto,
                                            std::string_view payload = {});

  // Evaluates traffic from an arbitrary external (internet) source toward a
  // destination address the tenant may own. For attack simulation. Same
  // caching policy as Evaluate.
  BaselineDelivery EvaluateExternal(IpAddress src, IpAddress dst,
                                    uint16_t dst_port, Protocol proto,
                                    std::string_view payload = {});
  BaselineDelivery EvaluateExternalUncached(IpAddress src, IpAddress dst,
                                            uint16_t dst_port, Protocol proto,
                                            std::string_view payload = {});

  // Resolves a flow aimed at a load balancer to a backend instance.
  Result<InstanceId> ResolveThroughLoadBalancer(LoadBalancerId lb,
                                                const FiveTuple& flow,
                                                const HttpRequestMeta* meta);

  // --- Lookup -------------------------------------------------------------------

  const Vpc* FindVpc(VpcId id) const;
  const Subnet* FindSubnet(SubnetId id) const;
  SecurityGroup* FindSecurityGroup(SecurityGroupId id);
  VpcRouteTable* FindRouteTable(VpcRouteTableId id);
  NetworkAcl* FindAcl(NetworkAclId id);
  // All route-table / security-group ids, for whole-config sweeps.
  std::vector<VpcRouteTableId> AllRouteTables() const;
  std::vector<SecurityGroupId> AllSecurityGroups() const;
  const Eni* FindEniByInstance(InstanceId id) const;
  const Eni* FindEniByIp(IpAddress ip) const;
  TargetGroup* FindTargetGroup(TargetGroupId id);
  LoadBalancer* FindLoadBalancer(LoadBalancerId id);
  DpiFirewall* FindFirewall(FirewallId id);
  TransitGateway* FindTgw(TransitGatewayId id);
  std::optional<IpAddress> OnPremAddress(InstanceId id) const;

  size_t vpc_count() const { return vpcs_.size(); }
  size_t gateway_count() const;  // every gateway-ish box, for E1
  size_t appliance_count() const;  // LBs + firewalls

  // Per-kind counts (the cost model bills by box type).
  size_t igw_count() const { return igws_.size() + egress_igws_.size(); }
  size_t nat_count() const { return nats_.size(); }
  size_t vpn_count() const { return vpns_.size(); }
  size_t dx_count() const { return dxs_.size(); }
  size_t lb_count() const { return lbs_.size(); }
  size_t firewall_count() const { return firewalls_.size(); }
  size_t tgw_count() const { return tgws_.size(); }
  size_t tgw_attachment_count() const;

  // --- Verdict fast-path introspection -------------------------------------
  // Bumped by every verdict-affecting control-plane mutation (fabric
  // methods and direct mutation of hooked objects alike).
  uint64_t config_epoch() const { return config_epoch_; }
  // The coarse verdict generation the caches validate against: any config /
  // instance-state / BGP change moves it. The baseline side of the reach
  // verifier keys its pair cache on this — deliberately all-or-nothing,
  // where the declarative world factorizes per endpoint (EdgeFilterBank's
  // EndpointVerdictEpoch): the asymmetry E12 measures.
  uint64_t verdict_generation() const { return VerdictGen(); }
  const VerdictCacheStats& evaluate_cache_stats() const {
    return instance_cache_.stats();
  }
  const VerdictCacheStats& external_cache_stats() const {
    return external_cache_.stats();
  }
  void ResetVerdictCacheStats() {
    instance_cache_.ResetStats();
    external_cache_.ResetStats();
  }
  // Drops all memoized verdicts (benches: cold-start measurement).
  void ClearVerdictCaches() {
    instance_cache_.Clear();
    external_cache_.Clear();
  }

 private:
  struct EvalContext {
    BaselineDelivery delivery;
    int budget = 16;  // max gateway traversals (loop guard)
  };

  // Walks the gateway chain after the source-side checks passed. `src_vpc`
  // may be invalid when the flow originates on-prem or externally.
  void RouteAndDeliver(EvalContext& ctx, const FiveTuple& flow, VpcId src_vpc,
                       SubnetId src_subnet, std::string_view payload);

  // Destination-side checks for a flow arriving at an ENI.
  void DeliverIntoVpc(EvalContext& ctx, const FiveTuple& flow,
                      const Eni& dst_eni, bool from_outside_vpc,
                      std::string_view payload, VpcId origin_vpc);

  // Delivery of a public-internet flow to whatever holds the destination.
  void DeliverFromInternet(EvalContext& ctx, const FiveTuple& flow,
                           std::string_view payload);
  // Terminal delivery into an on-prem site.
  void DeliverToOnPrem(EvalContext& ctx, const FiveTuple& flow, OnPremId site,
                       EgressPolicy policy);
  // Circuit hop: exchange lookup via the tenant BGP mesh, then the far side.
  void DeliverViaDirectConnect(EvalContext& ctx, const FiveTuple& flow,
                               DirectConnectId dx, std::string_view payload);
  // The covering originated prefix for a destination (for RIB queries).
  IpPrefix RouteForDst(IpAddress dst) const;

  bool SgMember(SecurityGroupId group, IpAddress ip) const;
  const Subnet* SubnetOf(const Eni& eni) const;
  Vpc* MutableVpc(VpcId id);

  // --- Verdict cache plumbing ----------------------------------------------
  struct InstanceFlowKey {
    uint64_t src = 0;
    uint64_t dst = 0;
    uint16_t dst_port = 0;
    Protocol proto = Protocol::kAny;
    friend bool operator==(const InstanceFlowKey& a,
                           const InstanceFlowKey& b) = default;
  };
  struct InstanceFlowKeyHash {
    size_t operator()(const InstanceFlowKey& k) const {
      size_t h = k.src * 0x9E3779B97F4A7C15ull;
      h ^= k.dst * 1099511628211ull;
      return h ^ (static_cast<size_t>(k.dst_port) << 8 |
                  static_cast<size_t>(k.proto));
    }
  };
  struct ExternalFlowKey {
    IpAddress src;
    IpAddress dst;
    uint16_t dst_port = 0;
    Protocol proto = Protocol::kAny;
    friend bool operator==(const ExternalFlowKey& a,
                           const ExternalFlowKey& b) = default;
  };
  struct ExternalFlowKeyHash {
    size_t operator()(const ExternalFlowKey& k) const {
      size_t h = std::hash<IpAddress>{}(k.src);
      h = h * 1099511628211ull ^ std::hash<IpAddress>{}(k.dst);
      return h ^ (static_cast<size_t>(k.dst_port) << 8 |
                  static_cast<size_t>(k.proto));
    }
  };

  // The baseline verdict depends on so many coupled objects that its epoch
  // scope is deliberately coarse: any config/world/BGP change invalidates
  // everything. (The declarative world factorizes per endpoint; see
  // EdgeFilterBank.) All three counters are monotonic, so their sum is a
  // valid generation.
  uint64_t VerdictGen() const {
    return config_epoch_ + world_->instance_state_epoch() +
           bgp_.mutation_count();
  }
  void BumpConfigEpoch() { ++config_epoch_; }
  // A delivery is memoizable unless the flow went through a DPI firewall
  // (Inspect's offered-load counters feed the E6 saturation model and must
  // keep counting per call).
  static bool CacheableDelivery(const BaselineDelivery& delivery);

  // Every prefix any tenant object originates (VPC CIDRs + on-prem spaces);
  // used to walk BGP RIBs after convergence.
  std::vector<IpPrefix> AllKnownPrefixes() const;

  // Speaker value -> attachment index for one TGW (which attachment a
  // route learned from that speaker resolves to).
  std::unordered_map<uint64_t, size_t> SpeakerAttachments(
      const TransitGateway& tgw) const;
  // Applies a per-speaker Loc-RIB delta set to the TGW FIBs.
  void ApplyRibDeltas(const std::vector<std::vector<RibDelta>>& deltas);
  // Verification sweep of every TGW FIB against its speaker's Loc-RIB:
  // installs/withdraws only entries that differ from the derived intent.
  // Returns deltas applied; `checked` accumulates entries examined.
  uint64_t ReconcileTgwFibs(uint64_t* checked);

  void Drop(EvalContext& ctx, std::string stage, std::string reason);

  CloudWorld* world_;
  ConfigLedger* ledger_;

  std::unordered_map<VpcId, std::unique_ptr<Vpc>> vpcs_;
  std::unordered_map<SubnetId, std::unique_ptr<Subnet>> subnets_;
  std::unordered_map<VpcRouteTableId, std::unique_ptr<VpcRouteTable>> tables_;
  std::unordered_map<SecurityGroupId, std::unique_ptr<SecurityGroup>> groups_;
  std::unordered_map<NetworkAclId, std::unique_ptr<NetworkAcl>> acls_;
  std::unordered_map<EniId, std::unique_ptr<Eni>> enis_;
  std::unordered_map<InstanceId, EniId> eni_by_instance_;
  std::unordered_map<IpAddress, EniId> eni_by_ip_;

  std::unordered_map<IgwId, InternetGateway> igws_;
  std::unordered_map<EgressOnlyIgwId, EgressOnlyInternetGateway> egress_igws_;
  std::unordered_map<NatGatewayId, NatGateway> nats_;
  std::unordered_map<VpnGatewayId, VpnGateway> vpns_;
  std::unordered_map<PeeringId, VpcPeering> peerings_;
  std::unordered_map<TransitGatewayId, std::unique_ptr<TransitGateway>> tgws_;
  std::unordered_map<DirectConnectId, DirectConnectConnection> dxs_;

  std::unordered_map<TargetGroupId, std::unique_ptr<TargetGroup>> target_groups_;
  std::unordered_map<LoadBalancerId, std::unique_ptr<LoadBalancer>> lbs_;
  std::unordered_map<FirewallId, std::unique_ptr<DpiFirewall>> firewalls_;
  std::unordered_map<VpcId, FirewallId> vpc_ingress_firewall_;

  std::unordered_map<InstanceId, IpAddress> on_prem_addrs_;
  std::unordered_map<OnPremId, std::unique_ptr<HostAllocator>> on_prem_pools_;
  std::unordered_map<OnPremId, SpeakerId> on_prem_speakers_;
  std::unordered_map<OnPremId, LinkId> on_prem_mpls_;
  std::unordered_map<DirectConnectId, TransitGatewayId> tgw_by_dx_;

  // Provider public pools (EIPs for NAT/public addresses).
  std::unordered_map<ProviderId, std::unique_ptr<HostAllocator>> public_pools_;

  // VPC the IGW of which a given VPC id uses; quick reverse indexes.
  std::unordered_map<VpcId, IgwId> igw_by_vpc_;
  std::unordered_map<VpcId, EgressOnlyIgwId> egress_igw_by_vpc_;

  BgpMesh bgp_;

  IdGenerator<VpcId> vpc_ids_;
  IdGenerator<SubnetId> subnet_ids_;
  IdGenerator<VpcRouteTableId> table_ids_;
  IdGenerator<SecurityGroupId> group_ids_;
  IdGenerator<NetworkAclId> acl_ids_;
  IdGenerator<EniId> eni_ids_;
  IdGenerator<IgwId> igw_ids_;
  IdGenerator<EgressOnlyIgwId> egress_igw_ids_;
  IdGenerator<NatGatewayId> nat_ids_;
  IdGenerator<VpnGatewayId> vpn_ids_;
  IdGenerator<PeeringId> peering_ids_;
  IdGenerator<TransitGatewayId> tgw_ids_;
  IdGenerator<DirectConnectId> dx_ids_;
  IdGenerator<TargetGroupId> tg_ids_;
  IdGenerator<LoadBalancerId> lb_ids_;
  IdGenerator<FirewallId> firewall_ids_;

  uint64_t lb_pick_seq_ = 0;

  uint64_t config_epoch_ = 0;
  mutable VerdictCache<InstanceFlowKey, BaselineDelivery, InstanceFlowKeyHash>
      instance_cache_;
  mutable VerdictCache<ExternalFlowKey, BaselineDelivery, ExternalFlowKeyHash>
      external_cache_;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_VNET_FABRIC_H_
