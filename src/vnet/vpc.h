// Baseline-world virtual network objects: VPCs, subnets, NICs, route tables.
//
// These are deliberately faithful to the cloud abstractions the paper's §2
// walks through: a VPC owns a CIDR block (the tenant must plan it), subnets
// carve per-zone sub-prefixes out of it, every instance attaches through an
// ENI holding a private address (plus an optional public one), and each
// subnet's route table decides which gateway handles any non-local prefix.

#ifndef TENANTNET_SRC_VNET_VPC_H_
#define TENANTNET_SRC_VNET_VPC_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/cloud/world.h"
#include "src/net/ip.h"
#include "src/net/ipam.h"
#include "src/routing/lpm_trie.h"
#include "src/vnet/revision.h"
#include "src/vnet/security.h"

namespace tenantnet {

using VpcId = TypedId<struct VpcIdTag>;
using SubnetId = TypedId<struct SubnetIdTag>;
using EniId = TypedId<struct EniIdTag>;
using VpcRouteTableId = TypedId<struct VpcRouteTableIdTag>;

// Where a VPC route sends traffic. `target_id` is the .value() of the
// specific gateway/peering object's typed id (kind disambiguates the space).
enum class VpcRouteTargetKind : uint8_t {
  kLocal,            // stays inside the VPC
  kInternetGateway,
  kEgressOnlyIgw,
  kNatGateway,
  kVpnGateway,
  kPeering,
  kTransitGateway,
  kBlackhole,
};

std::string_view VpcRouteTargetKindName(VpcRouteTargetKind kind);

struct VpcRouteTarget {
  VpcRouteTargetKind kind = VpcRouteTargetKind::kBlackhole;
  uint64_t target_id = 0;

  friend bool operator==(const VpcRouteTarget& a,
                         const VpcRouteTarget& b) = default;
};

class VpcRouteTable : public RevisionHooked {
 public:
  VpcRouteTable(VpcRouteTableId id, std::string name)
      : id_(id), name_(std::move(name)) {}

  VpcRouteTableId id() const { return id_; }
  const std::string& name() const { return name_; }

  void Install(const IpPrefix& prefix, VpcRouteTarget target) {
    trie_.Insert(prefix, target);
    BumpRevision();
  }
  bool Withdraw(const IpPrefix& prefix) {
    BumpRevision();
    return trie_.Remove(prefix);
  }

  // Longest-prefix match; nullptr means no route (drop).
  const VpcRouteTarget* Lookup(IpAddress dst) const {
    return trie_.LongestMatch(dst);
  }

  // Visits every installed route as (prefix, target).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    trie_.ForEach(std::forward<Fn>(fn));
  }

  size_t entry_count() const { return trie_.entry_count(); }

 private:
  VpcRouteTableId id_;
  std::string name_;
  LpmTrie<VpcRouteTarget> trie_;
};

struct Subnet {
  SubnetId id;
  VpcId vpc;
  std::string name;
  IpPrefix cidr;
  int zone_index = 0;
  bool is_public = false;  // association with an IGW-bearing route table
  VpcRouteTableId route_table;
  NetworkAclId acl;
  HostAllocator allocator;  // private addresses within the subnet

  Subnet(SubnetId id_in, VpcId vpc_in, std::string name_in, IpPrefix cidr_in,
         int zone, bool pub)
      : id(id_in),
        vpc(vpc_in),
        name(std::move(name_in)),
        cidr(cidr_in),
        zone_index(zone),
        is_public(pub),
        allocator(cidr_in) {}
};

// Elastic network interface: how an instance attaches to a subnet.
struct Eni {
  EniId id;
  InstanceId instance;
  SubnetId subnet;
  IpAddress private_ip;
  std::optional<IpAddress> public_ip;
  std::vector<SecurityGroupId> security_groups;
};

struct Vpc {
  VpcId id;
  TenantId tenant;
  ProviderId provider;
  RegionId region;
  std::string name;
  IpPrefix cidr;
  IpFamily family = IpFamily::kIpv4;
  std::vector<SubnetId> subnets;
  NetworkAclId default_acl;
  VpcRouteTableId main_route_table;
  PrefixAllocator subnet_space;  // carves subnet CIDRs out of the VPC block

  Vpc(VpcId id_in, TenantId tenant_in, ProviderId provider_in,
      RegionId region_in, std::string name_in, IpPrefix cidr_in)
      : id(id_in),
        tenant(tenant_in),
        provider(provider_in),
        region(region_in),
        name(std::move(name_in)),
        cidr(cidr_in),
        subnet_space(cidr_in) {}
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_VNET_VPC_H_
