#include "src/routing/bgp.h"

#include <algorithm>
#include <utility>

namespace tenantnet {

SpeakerId BgpMesh::AddSpeaker(uint32_t asn, std::string name) {
  speakers_.push_back(Speaker{asn, std::move(name), {}, {}, {}, {}, {}});
  dirty_.emplace_back();
  pre_delta_.emplace_back();
  ++mutations_;
  return SpeakerId(speakers_.size());
}

Status BgpMesh::AddSession(SpeakerId a, SpeakerId b, SessionPolicy a_to_b,
                           SessionPolicy b_to_a) {
  if (in_restart_) {
    PendingOp op;
    op.kind = PendingOp::Kind::kAddSession;
    op.a = a;
    op.b = b;
    op.policy_ab = std::move(a_to_b);
    op.policy_ba = std::move(b_to_a);
    pending_ops_.push_back(std::move(op));
    return Status::Ok();  // accepted asynchronously; validated at replay
  }
  if (!Valid(a) || !Valid(b)) {
    return InvalidArgumentError("unknown speaker");
  }
  if (a == b) {
    return InvalidArgumentError("speaker cannot peer with itself");
  }
  if (Get(a).session_index.count(b.value()) > 0) {
    return AlreadyExistsError("session already exists");
  }
  Speaker& sa = Get(a);
  Speaker& sb = Get(b);
  sa.session_index[b.value()] = static_cast<uint32_t>(sa.sessions.size());
  sa.sessions.push_back(Session{b, std::move(a_to_b)});
  sb.session_index[a.value()] = static_cast<uint32_t>(sb.sessions.size());
  sb.sessions.push_back(Session{a, std::move(b_to_a)});
  ++session_count_;
  ++mutations_;
  // Sync current bests over the new session in both directions; the dirty
  // queue carries the consequences from there.
  ResyncSession(a, b);
  ResyncSession(b, a);
  return Status::Ok();
}

Status BgpMesh::RemoveSession(SpeakerId a, SpeakerId b) {
  if (in_restart_) {
    PendingOp op;
    op.kind = PendingOp::Kind::kRemoveSession;
    op.a = a;
    op.b = b;
    pending_ops_.push_back(std::move(op));
    return Status::Ok();
  }
  if (!Valid(a) || !Valid(b)) {
    return InvalidArgumentError("unknown speaker");
  }
  Speaker& sa = Get(a);
  auto it = sa.session_index.find(b.value());
  if (it == sa.session_index.end()) {
    return NotFoundError("no session between these speakers");
  }
  auto drop = [](Speaker& s, SpeakerId peer) {
    uint32_t idx = s.session_index.at(peer.value());
    s.sessions.erase(s.sessions.begin() + idx);
    s.session_index.clear();
    for (uint32_t i = 0; i < s.sessions.size(); ++i) {
      s.session_index[s.sessions[i].peer.value()] = i;
    }
  };
  drop(sa, b);
  drop(Get(b), a);
  --session_count_;
  ++mutations_;
  // Everything each side learned from the other is implicitly withdrawn.
  FlushLearnedFrom(a, b);
  FlushLearnedFrom(b, a);
  return Status::Ok();
}

Status BgpMesh::SetSessionPolicy(SpeakerId speaker, SpeakerId peer,
                                 SessionPolicy policy) {
  if (in_restart_) {
    PendingOp op;
    op.kind = PendingOp::Kind::kSetSessionPolicy;
    op.a = speaker;
    op.b = peer;
    op.policy_ab = std::move(policy);
    pending_ops_.push_back(std::move(op));
    return Status::Ok();
  }
  if (!Valid(speaker) || !Valid(peer)) {
    return InvalidArgumentError("unknown speaker");
  }
  Speaker& s = Get(speaker);
  auto it = s.session_index.find(peer.value());
  if (it == s.session_index.end()) {
    return NotFoundError("no session between these speakers");
  }
  s.sessions[it->second].policy = std::move(policy);
  ++mutations_;
  // The policy governs `speaker`'s export to and import from `peer`:
  // re-send our bests under the new export filter, and have the peer's
  // bests re-imported under the new import policy.
  ResyncSession(speaker, peer);
  ResyncSession(peer, speaker);
  return Status::Ok();
}

Status BgpMesh::Originate(SpeakerId speaker, const IpPrefix& prefix) {
  if (in_restart_) {
    PendingOp op;
    op.kind = PendingOp::Kind::kOriginate;
    op.a = speaker;
    op.prefix = prefix;
    pending_ops_.push_back(std::move(op));
    return Status::Ok();
  }
  if (!Valid(speaker)) {
    return InvalidArgumentError("unknown speaker");
  }
  Speaker& s = Get(speaker);
  if (!s.originated.insert(prefix).second) {
    return AlreadyExistsError("already originated: " + prefix.ToString());
  }
  ++mutations_;
  MarkDirty(speaker.value() - 1, prefix);
  return Status::Ok();
}

Status BgpMesh::WithdrawOrigin(SpeakerId speaker, const IpPrefix& prefix) {
  if (in_restart_) {
    PendingOp op;
    op.kind = PendingOp::Kind::kWithdrawOrigin;
    op.a = speaker;
    op.prefix = prefix;
    pending_ops_.push_back(std::move(op));
    return Status::Ok();
  }
  if (!Valid(speaker)) {
    return InvalidArgumentError("unknown speaker");
  }
  Speaker& s = Get(speaker);
  if (s.originated.erase(prefix) == 0) {
    return NotFoundError("not originated here: " + prefix.ToString());
  }
  ++mutations_;
  MarkDirty(speaker.value() - 1, prefix);
  return Status::Ok();
}

bool BgpMesh::Better(const BgpRoute& candidate,
                     const BgpRoute& incumbent) const {
  if (candidate.local_pref != incumbent.local_pref) {
    return candidate.local_pref > incumbent.local_pref;
  }
  if (candidate.as_path.size() != incumbent.as_path.size()) {
    return candidate.as_path.size() < incumbent.as_path.size();
  }
  // Tie-break: lowest neighbor ASN (locally originated wins outright via
  // the empty as_path above).
  auto neighbor_asn = [this](const BgpRoute& r) -> uint32_t {
    return r.learned_from.valid() ? Get(r.learned_from).asn : 0;
  };
  uint32_t ca = neighbor_asn(candidate);
  uint32_t ia = neighbor_asn(incumbent);
  if (ca != ia) {
    return ca < ia;
  }
  // Deterministic final tie-break (two peers may share an ASN): lowest
  // neighbor speaker id. Makes best-path selection a total order, so the
  // incremental fixed point matches the from-scratch rebuild byte-for-byte.
  return candidate.learned_from.value() < incumbent.learned_from.value();
}

bool BgpMesh::EntryBetter(const AdjEntry& a, const AdjEntry& b) const {
  if (a.local_pref != b.local_pref) {
    return a.local_pref > b.local_pref;
  }
  const size_t alen = paths_.Get(a.path_id).size();
  const size_t blen = paths_.Get(b.path_id).size();
  if (alen != blen) {
    return alen < blen;
  }
  const uint32_t aasn = Get(SpeakerId(a.peer)).asn;
  const uint32_t basn = Get(SpeakerId(b.peer)).asn;
  if (aasn != basn) {
    return aasn < basn;
  }
  return a.peer < b.peer;
}

std::optional<BgpRoute> BgpMesh::SelectBest(const Speaker& s,
                                            const IpPrefix& prefix) const {
  const AdjEntry* best = nullptr;
  auto it = s.adj_rib_in.find(prefix);
  if (it != s.adj_rib_in.end()) {
    for (const AdjEntry& entry : adj_slab_.Get(it->second)) {
      if (best == nullptr || EntryBetter(entry, *best)) {
        best = &entry;
      }
    }
  }
  if (s.originated.count(prefix) > 0) {
    // Local origination: local_pref 100, empty as_path. Every retained
    // advertisement has at least the sender's ASN on its path, so under
    // Better() the local route loses only to a higher local_pref.
    if (best == nullptr || best->local_pref <= 100) {
      BgpRoute local;
      local.prefix = prefix;
      local.local_pref = 100;
      return local;
    }
  }
  if (best == nullptr) {
    return std::nullopt;
  }
  return Materialize(prefix, *best);
}

void BgpMesh::MarkDirty(size_t speaker_index, const IpPrefix& prefix) {
  if (dirty_[speaker_index].insert(prefix).second) {
    ++pending_work_;
  }
}

void BgpMesh::RecordPreDelta(size_t speaker_index, const IpPrefix& prefix,
                             const std::optional<BgpRoute>& old_route) {
  pre_delta_[speaker_index].emplace(prefix, old_route);  // first touch wins
}

void BgpMesh::DeliverUpdate(size_t receiver_index, SpeakerId from,
                            BgpRoute route) {
  Speaker& receiver = speakers_[receiver_index];
  // Loop detection: a looped advertisement still implicitly withdraws
  // whatever this peer advertised before (it no longer holds that path).
  if (std::find(route.as_path.begin(), route.as_path.end(), receiver.asn) !=
      route.as_path.end()) {
    DeliverWithdraw(receiver_index, from, route.prefix);
    return;
  }
  // Import policy lives on the receiver's session record toward the sender.
  auto sit = receiver.session_index.find(from.value());
  if (sit != receiver.session_index.end()) {
    const SessionPolicy& policy = receiver.sessions[sit->second].policy;
    if (policy.import_filter && !policy.import_filter(route)) {
      DeliverWithdraw(receiver_index, from, route.prefix);
      return;
    }
    if (policy.import_local_pref != 0) {
      route.local_pref = policy.import_local_pref;
    }
  }
  const uint32_t path_id = paths_.Intern(std::move(route.as_path));
  auto [it, inserted] = receiver.adj_rib_in.try_emplace(route.prefix, kNilId);
  if (inserted) {
    it->second = adj_slab_.Alloc();
  }
  std::vector<AdjEntry>& entries = adj_slab_.Get(it->second);
  if (AdjEntry* existing = FindEntry(entries, from.value())) {
    if (existing->path_id == path_id &&
        existing->local_pref == route.local_pref) {
      paths_.Release(path_id);  // the Intern above double-counted it
      return;                   // unchanged: no re-selection needed
    }
    paths_.Release(existing->path_id);
    existing->path_id = path_id;
    existing->local_pref = route.local_pref;
  } else {
    entries.push_back(AdjEntry{from.value(), path_id, route.local_pref});
  }
  MarkDirty(receiver_index, route.prefix);
}

void BgpMesh::DeliverWithdraw(size_t receiver_index, SpeakerId from,
                              const IpPrefix& prefix) {
  Speaker& receiver = speakers_[receiver_index];
  auto it = receiver.adj_rib_in.find(prefix);
  if (it == receiver.adj_rib_in.end()) {
    return;
  }
  std::vector<AdjEntry>& entries = adj_slab_.Get(it->second);
  AdjEntry* entry = FindEntry(entries, from.value());
  if (entry == nullptr) {
    return;
  }
  paths_.Release(entry->path_id);
  *entry = entries.back();
  entries.pop_back();
  if (entries.empty()) {
    adj_slab_.Free(it->second);
    receiver.adj_rib_in.erase(it);
  }
  MarkDirty(receiver_index, prefix);
}

void BgpMesh::ResyncSession(SpeakerId from, SpeakerId to) {
  Speaker& sender = Get(from);
  const SessionPolicy& policy =
      sender.sessions[sender.session_index.at(to.value())].policy;
  size_t to_index = to.value() - 1;
  for (const auto& [prefix, best] : sender.loc_rib) {
    if (policy.export_filter && !policy.export_filter(best)) {
      // Not exported (any more): drop whatever the receiver retained.
      DeliverWithdraw(to_index, from, prefix);
      continue;
    }
    BgpRoute advert = best;
    advert.as_path.insert(advert.as_path.begin(), sender.asn);
    advert.learned_from = from;
    advert.local_pref = 100;  // local_pref is not transitive
    DeliverUpdate(to_index, from, std::move(advert));
  }
}

void BgpMesh::FlushLearnedFrom(SpeakerId at, SpeakerId peer) {
  Speaker& s = Get(at);
  size_t at_index = at.value() - 1;
  for (auto it = s.adj_rib_in.begin(); it != s.adj_rib_in.end();) {
    std::vector<AdjEntry>& entries = adj_slab_.Get(it->second);
    if (AdjEntry* entry = FindEntry(entries, peer.value())) {
      paths_.Release(entry->path_id);
      *entry = entries.back();
      entries.pop_back();
      MarkDirty(at_index, it->first);
    }
    if (entries.empty()) {
      adj_slab_.Free(it->second);
      it = s.adj_rib_in.erase(it);
    } else {
      ++it;
    }
  }
}

void BgpMesh::ClearAdjRib(Speaker& s) {
  for (const auto& [prefix, bucket] : s.adj_rib_in) {
    for (const AdjEntry& entry : adj_slab_.Get(bucket)) {
      paths_.Release(entry.path_id);
    }
    adj_slab_.Free(bucket);
  }
  s.adj_rib_in.clear();
}

BgpMesh::ConvergenceStats BgpMesh::Converge(uint64_t max_rounds) {
  ConvergenceStats stats;
  if (in_restart_) {
    return stats;  // dead control plane: dirty work waits for the replay
  }
  bool changed_any = false;

  struct Outgoing {
    size_t to;
    SpeakerId from;
    bool withdraw;
    BgpRoute route;   // update only
    IpPrefix prefix;  // withdraw only
  };
  std::vector<Outgoing> deliveries;

  while (pending_work_ > 0 && stats.rounds < max_rounds) {
    ++stats.rounds;
    std::vector<std::set<IpPrefix>> current(speakers_.size());
    current.swap(dirty_);
    pending_work_ = 0;
    deliveries.clear();

    // Re-select best paths for every dirty (speaker, prefix) and queue the
    // resulting advertisements / withdraws; apply them all afterwards
    // (synchronous round semantics).
    for (size_t i = 0; i < speakers_.size(); ++i) {
      Speaker& s = speakers_[i];
      for (const IpPrefix& prefix : current[i]) {
        ++stats.prefixes_processed;
        std::optional<BgpRoute> new_best = SelectBest(s, prefix);
        auto rib_it = s.loc_rib.find(prefix);
        std::optional<BgpRoute> old_best;
        if (rib_it != s.loc_rib.end()) {
          old_best = rib_it->second;
        }
        if (old_best == new_best) {
          continue;  // e.g. a worse alternative arrived: best unchanged
        }
        RecordPreDelta(i, prefix, old_best);
        ++stats.best_path_changes;
        changed_any = true;
        if (new_best.has_value()) {
          s.loc_rib[prefix] = *new_best;
        } else {
          s.loc_rib.erase(rib_it);
        }

        for (const Session& session : s.sessions) {
          size_t to_index = session.peer.value() - 1;
          bool advertise_now =
              new_best.has_value() &&
              (!session.policy.export_filter ||
               session.policy.export_filter(*new_best));
          if (advertise_now) {
            BgpRoute advert = *new_best;
            advert.as_path.insert(advert.as_path.begin(), s.asn);
            advert.learned_from = SpeakerId(i + 1);
            advert.local_pref = 100;  // local_pref is not transitive
            ++stats.update_messages;
            deliveries.push_back(Outgoing{to_index, SpeakerId(i + 1), false,
                                          std::move(advert), prefix});
            continue;
          }
          bool advertised_before =
              old_best.has_value() &&
              (!session.policy.export_filter ||
               session.policy.export_filter(*old_best));
          if (advertised_before) {
            ++stats.withdraw_messages;
            deliveries.push_back(
                Outgoing{to_index, SpeakerId(i + 1), true, {}, prefix});
          }
        }
      }
    }

    for (Outgoing& d : deliveries) {
      if (d.withdraw) {
        DeliverWithdraw(d.to, d.from, d.prefix);
      } else {
        DeliverUpdate(d.to, d.from, std::move(d.route));
      }
    }
  }

  stats.converged = pending_work_ == 0;
  if (changed_any) {
    ++mutations_;  // RIBs actually changed: downstream caches must drop
  }
  return stats;
}

BgpMesh::ConvergenceStats BgpMesh::ConvergeFull(uint64_t max_rounds) {
  if (in_restart_) {
    return ConvergenceStats{};  // must not wipe surviving forwarding state
  }
  // Record pre-delta state for everything we are about to clear, so the
  // delta accumulator still reports net changes across the rebuild.
  for (size_t i = 0; i < speakers_.size(); ++i) {
    Speaker& s = speakers_[i];
    for (const auto& [prefix, route] : s.loc_rib) {
      RecordPreDelta(i, prefix, route);
    }
    s.loc_rib.clear();
    ClearAdjRib(s);
    dirty_[i].clear();
  }
  pending_work_ = 0;
  for (size_t i = 0; i < speakers_.size(); ++i) {
    for (const IpPrefix& prefix : speakers_[i].originated) {
      MarkDirty(i, prefix);
    }
  }
  ConvergenceStats stats = Converge(max_rounds);
  ++mutations_;  // full rebuild: conservatively invalidate downstream
  return stats;
}

const BgpRoute* BgpMesh::BestRoute(SpeakerId speaker,
                                   const IpPrefix& prefix) const {
  if (!Valid(speaker)) {
    return nullptr;
  }
  const Speaker& s = Get(speaker);
  auto it = s.loc_rib.find(prefix);
  return it == s.loc_rib.end() ? nullptr : &it->second;
}

const std::map<IpPrefix, BgpRoute>* BgpMesh::LocRib(SpeakerId speaker) const {
  if (!Valid(speaker)) {
    return nullptr;
  }
  return &Get(speaker).loc_rib;
}

size_t BgpMesh::TableSize(SpeakerId speaker) const {
  if (!Valid(speaker)) {
    return 0;
  }
  return Get(speaker).loc_rib.size();
}

size_t BgpMesh::TotalRibEntries() const {
  size_t total = 0;
  for (const Speaker& s : speakers_) {
    total += s.loc_rib.size();
  }
  return total;
}

size_t BgpMesh::TotalAdjRibInEntries() const {
  size_t total = 0;
  for (const Speaker& s : speakers_) {
    for (const auto& [prefix, bucket] : s.adj_rib_in) {
      total += adj_slab_.Get(bucket).size();
    }
  }
  return total;
}

size_t BgpMesh::ApproxBytes() const {
  // unordered_map node: hash-next pointer + key + mapped (+ bucket array).
  constexpr size_t kMapNodeBytes =
      sizeof(void*) + sizeof(IpPrefix) + sizeof(uint32_t) + sizeof(void*);
  size_t bytes = adj_slab_.ApproxBytes() + paths_.ApproxBytes();
  paths_.ForEach([&](uint32_t, const std::vector<uint32_t>& path, uint32_t) {
    bytes += path.capacity() * sizeof(uint32_t);
  });
  for (const Speaker& s : speakers_) {
    bytes += s.adj_rib_in.size() * kMapNodeBytes;
    for (const auto& [prefix, bucket] : s.adj_rib_in) {
      bytes += adj_slab_.Get(bucket).capacity() * sizeof(AdjEntry);
    }
    // std::map node: parent/left/right pointers + color + key + value.
    for (const auto& [prefix, route] : s.loc_rib) {
      bytes += 3 * sizeof(void*) + sizeof(size_t) + sizeof(IpPrefix) +
               sizeof(BgpRoute) + route.as_path.capacity() * sizeof(uint32_t);
    }
  }
  return bytes;
}

std::vector<std::vector<RibDelta>> BgpMesh::TakeDeltas() {
  std::vector<std::vector<RibDelta>> out(speakers_.size());
  for (size_t i = 0; i < speakers_.size(); ++i) {
    const Speaker& s = speakers_[i];
    for (const auto& [prefix, pre] : pre_delta_[i]) {
      auto it = s.loc_rib.find(prefix);
      std::optional<BgpRoute> cur;
      if (it != s.loc_rib.end()) {
        cur = it->second;
      }
      if (pre == cur) {
        continue;  // changed and changed back: net no-op
      }
      RibDeltaKind kind = !pre.has_value() ? RibDeltaKind::kInstalled
                          : cur.has_value() ? RibDeltaKind::kReplaced
                                            : RibDeltaKind::kWithdrawn;
      out[i].push_back(RibDelta{prefix, kind});
    }
    std::sort(out[i].begin(), out[i].end(),
              [](const RibDelta& a, const RibDelta& b) {
                return a.prefix < b.prefix;
              });
    pre_delta_[i].clear();
  }
  return out;
}

bool BgpMesh::HasPendingDeltas() const {
  for (size_t i = 0; i < speakers_.size(); ++i) {
    const Speaker& s = speakers_[i];
    for (const auto& [prefix, pre] : pre_delta_[i]) {
      auto it = s.loc_rib.find(prefix);
      std::optional<BgpRoute> cur;
      if (it != s.loc_rib.end()) {
        cur = it->second;
      }
      if (!(pre == cur)) {
        return true;
      }
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Warm restart.
// ---------------------------------------------------------------------------

BgpMeshSnapshot BgpMesh::Checkpoint() const {
  BgpMeshSnapshot snap;
  snap.speakers.resize(speakers_.size());
  for (size_t i = 0; i < speakers_.size(); ++i) {
    const Speaker& s = speakers_[i];
    BgpMeshSnapshot::SpeakerRibs& out = snap.speakers[i];
    out.adj_rib_in.reserve(s.adj_rib_in.size());
    for (const auto& [prefix, bucket] : s.adj_rib_in) {
      std::vector<std::pair<uint64_t, BgpRoute>> peers;
      for (const AdjEntry& entry : adj_slab_.Get(bucket)) {
        peers.emplace_back(entry.peer, Materialize(prefix, entry));
      }
      std::sort(peers.begin(), peers.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      out.adj_rib_in.emplace_back(prefix, std::move(peers));
    }
    std::sort(out.adj_rib_in.begin(), out.adj_rib_in.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    out.loc_rib.assign(s.loc_rib.begin(), s.loc_rib.end());
  }
  return snap;
}

void BgpMesh::RestoreFromSnapshot(const BgpMeshSnapshot& snap) {
  size_t n = std::min(snap.speakers.size(), speakers_.size());
  for (size_t i = 0; i < n; ++i) {
    Speaker& s = speakers_[i];
    const BgpMeshSnapshot::SpeakerRibs& in = snap.speakers[i];
    ClearAdjRib(s);
    for (const auto& [prefix, peers] : in.adj_rib_in) {
      std::vector<AdjEntry> entries;
      entries.reserve(peers.size());
      for (const auto& [peer, route] : peers) {
        entries.push_back(
            AdjEntry{peer, paths_.Intern(route.as_path), route.local_pref});
      }
      s.adj_rib_in.emplace(prefix, adj_slab_.Alloc(std::move(entries)));
    }
    s.loc_rib.clear();
    s.loc_rib.insert(in.loc_rib.begin(), in.loc_rib.end());
    // The restored image is the new delta baseline: stale dirtiness and
    // half-accumulated deltas refer to a world that no longer exists.
    pending_work_ -= dirty_[i].size();
    dirty_[i].clear();
    pre_delta_[i].clear();
  }
  ++mutations_;  // downstream caches must conservatively drop
}

void BgpMesh::BeginRestart() {
  if (in_restart_) {
    return;  // overlapping restarts extend the same outage
  }
  // Graceful restart: RIBs survive (they are what the data plane forwards
  // with); only the convergence machinery stops.
  in_restart_ = true;
}

uint64_t BgpMesh::ReconcileFromSnapshot(const BgpMeshSnapshot& snap) {
  uint64_t divergent = 0;
  for (size_t i = 0; i < speakers_.size(); ++i) {
    Speaker& s = speakers_[i];
    const BgpMeshSnapshot::SpeakerRibs* in =
        i < snap.speakers.size() ? &snap.speakers[i] : nullptr;
    std::set<IpPrefix> suspect;

    // Adj-RIB-In: any prefix whose retained per-peer advertisements differ
    // from the checkpoint gets re-selected. Live entries stay authoritative
    // (peers do not re-advertise unchanged prefixes, so adopting snapshot
    // entries the peer has since replaced would never self-correct).
    std::unordered_set<IpPrefix> snap_adj_seen;
    if (in != nullptr) {
      for (const auto& [prefix, peers] : in->adj_rib_in) {
        snap_adj_seen.insert(prefix);
        auto it = s.adj_rib_in.find(prefix);
        if (it == s.adj_rib_in.end()) {
          suspect.insert(prefix);
          continue;
        }
        std::vector<AdjEntry>& entries = adj_slab_.Get(it->second);
        if (entries.size() != peers.size()) {
          suspect.insert(prefix);
          continue;
        }
        for (const auto& [peer, route] : peers) {
          const AdjEntry* entry = FindEntry(entries, peer);
          if (entry == nullptr || !(Materialize(prefix, *entry) == route)) {
            suspect.insert(prefix);
            break;
          }
        }
      }
    }
    for (const auto& [prefix, bucket] : s.adj_rib_in) {
      if (snap_adj_seen.count(prefix) == 0) {
        suspect.insert(prefix);
      }
    }

    // Loc-RIB: divergent best routes are re-selected too (covers entries
    // whose adjacency matches but whose selection was interrupted).
    std::unordered_set<IpPrefix> snap_loc_seen;
    if (in != nullptr) {
      for (const auto& [prefix, route] : in->loc_rib) {
        snap_loc_seen.insert(prefix);
        auto it = s.loc_rib.find(prefix);
        if (it == s.loc_rib.end() || !(it->second == route)) {
          suspect.insert(prefix);
        }
      }
    }
    for (const auto& [prefix, route] : s.loc_rib) {
      if (snap_loc_seen.count(prefix) == 0) {
        suspect.insert(prefix);
      }
    }

    divergent += suspect.size();
    for (const IpPrefix& prefix : suspect) {
      MarkDirty(i, prefix);
    }
  }
  return divergent;
}

std::pair<uint64_t, uint64_t> BgpMesh::EndRestartAndReplay() {
  if (!in_restart_) {
    return {0, 0};
  }
  in_restart_ = false;
  std::vector<PendingOp> ops;
  ops.swap(pending_ops_);
  uint64_t dropped = 0;
  for (PendingOp& op : ops) {
    Status status = Status::Ok();
    switch (op.kind) {
      case PendingOp::Kind::kOriginate:
        status = Originate(op.a, op.prefix);
        break;
      case PendingOp::Kind::kWithdrawOrigin:
        status = WithdrawOrigin(op.a, op.prefix);
        break;
      case PendingOp::Kind::kAddSession:
        status = AddSession(op.a, op.b, std::move(op.policy_ab),
                            std::move(op.policy_ba));
        break;
      case PendingOp::Kind::kRemoveSession:
        status = RemoveSession(op.a, op.b);
        break;
      case PendingOp::Kind::kSetSessionPolicy:
        status = SetSessionPolicy(op.a, op.b, std::move(op.policy_ab));
        break;
    }
    if (!status.ok()) {
      ++dropped;  // became invalid during the outage
    }
  }
  return {ops.size(), dropped};
}

}  // namespace tenantnet
