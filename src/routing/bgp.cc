#include "src/routing/bgp.h"

#include <algorithm>
#include <set>

namespace tenantnet {

SpeakerId BgpMesh::AddSpeaker(uint32_t asn, std::string name) {
  speakers_.push_back(Speaker{asn, std::move(name), {}, {}, {}});
  ++mutations_;
  return SpeakerId(speakers_.size());
}

Status BgpMesh::AddSession(SpeakerId a, SpeakerId b, SessionPolicy a_to_b,
                           SessionPolicy b_to_a) {
  if (!a.valid() || a.value() > speakers_.size() || !b.valid() ||
      b.value() > speakers_.size()) {
    return InvalidArgumentError("unknown speaker");
  }
  if (a == b) {
    return InvalidArgumentError("speaker cannot peer with itself");
  }
  Get(a).sessions.push_back(Session{b, std::move(a_to_b)});
  Get(b).sessions.push_back(Session{a, std::move(b_to_a)});
  ++session_count_;
  ++mutations_;
  return Status::Ok();
}

Status BgpMesh::Originate(SpeakerId speaker, const IpPrefix& prefix) {
  if (!speaker.valid() || speaker.value() > speakers_.size()) {
    return InvalidArgumentError("unknown speaker");
  }
  Speaker& s = Get(speaker);
  if (std::find(s.originated.begin(), s.originated.end(), prefix) !=
      s.originated.end()) {
    return AlreadyExistsError("already originated: " + prefix.ToString());
  }
  s.originated.push_back(prefix);
  ++mutations_;
  return Status::Ok();
}

Status BgpMesh::WithdrawOrigin(SpeakerId speaker, const IpPrefix& prefix) {
  if (!speaker.valid() || speaker.value() > speakers_.size()) {
    return InvalidArgumentError("unknown speaker");
  }
  Speaker& s = Get(speaker);
  auto it = std::find(s.originated.begin(), s.originated.end(), prefix);
  if (it == s.originated.end()) {
    return NotFoundError("not originated here: " + prefix.ToString());
  }
  s.originated.erase(it);
  ++mutations_;
  return Status::Ok();
}

bool BgpMesh::Better(const BgpRoute& candidate, const BgpRoute& incumbent,
                     const BgpMesh& mesh) {
  if (candidate.local_pref != incumbent.local_pref) {
    return candidate.local_pref > incumbent.local_pref;
  }
  if (candidate.as_path.size() != incumbent.as_path.size()) {
    return candidate.as_path.size() < incumbent.as_path.size();
  }
  // Tie-break: lowest neighbor ASN (locally originated wins outright via
  // the empty as_path above; two local originations of one prefix cannot
  // happen within one speaker).
  auto neighbor_asn = [&mesh](const BgpRoute& r) -> uint32_t {
    if (!r.learned_from.valid()) {
      return 0;
    }
    return mesh.Get(r.learned_from).asn;
  };
  return neighbor_asn(candidate) < neighbor_asn(incumbent);
}

BgpMesh::ConvergenceStats BgpMesh::Converge(uint64_t max_rounds) {
  ConvergenceStats stats;
  ++mutations_;  // RIBs are rebuilt below even if the outcome is identical

  // Reset Loc-RIBs to locally originated routes; convergence is recomputed
  // from scratch so that withdrawals are handled soundly.
  std::vector<std::set<IpPrefix>> changed(speakers_.size());
  for (size_t i = 0; i < speakers_.size(); ++i) {
    speakers_[i].loc_rib.clear();
    for (const IpPrefix& p : speakers_[i].originated) {
      BgpRoute route;
      route.prefix = p;
      route.local_pref = 100;
      speakers_[i].loc_rib[p] = route;
      changed[i].insert(p);
    }
  }

  for (uint64_t round = 0; round < max_rounds; ++round) {
    bool any_pending = false;
    for (const auto& c : changed) {
      if (!c.empty()) {
        any_pending = true;
        break;
      }
    }
    if (!any_pending) {
      stats.converged = true;
      break;
    }
    ++stats.rounds;

    // Deliver advertisements for every route that changed last round, then
    // apply them all (synchronous round semantics).
    std::vector<std::set<IpPrefix>> next_changed(speakers_.size());
    struct Delivery {
      size_t to;
      BgpRoute route;
    };
    std::vector<Delivery> deliveries;
    for (size_t i = 0; i < speakers_.size(); ++i) {
      const Speaker& sender = speakers_[i];
      for (const IpPrefix& prefix : changed[i]) {
        auto rib_it = sender.loc_rib.find(prefix);
        if (rib_it == sender.loc_rib.end()) {
          continue;
        }
        const BgpRoute& best = rib_it->second;
        for (const Session& session : sender.sessions) {
          if (session.policy.export_filter &&
              !session.policy.export_filter(best)) {
            continue;
          }
          BgpRoute advert = best;
          advert.as_path.insert(advert.as_path.begin(), sender.asn);
          advert.learned_from = SpeakerId(i + 1);
          advert.local_pref = 100;  // local_pref is not transitive
          ++stats.update_messages;
          deliveries.push_back(Delivery{session.peer.value() - 1, advert});
        }
      }
    }

    for (Delivery& d : deliveries) {
      Speaker& receiver = speakers_[d.to];
      // Loop detection.
      if (std::find(d.route.as_path.begin(), d.route.as_path.end(),
                    receiver.asn) != d.route.as_path.end()) {
        continue;
      }
      // Find the inbound session's policy (session from receiver to sender
      // holds the receiver's view of that peer; import policy lives on the
      // receiving side's session record toward the sender).
      const SessionPolicy* import_policy = nullptr;
      for (const Session& session : receiver.sessions) {
        if (session.peer == d.route.learned_from) {
          import_policy = &session.policy;
          break;
        }
      }
      if (import_policy != nullptr) {
        if (import_policy->import_filter &&
            !import_policy->import_filter(d.route)) {
          continue;
        }
        if (import_policy->import_local_pref != 0) {
          d.route.local_pref = import_policy->import_local_pref;
        }
      }
      auto it = receiver.loc_rib.find(d.route.prefix);
      if (it == receiver.loc_rib.end() || Better(d.route, it->second, *this)) {
        receiver.loc_rib[d.route.prefix] = d.route;
        next_changed[d.to].insert(d.route.prefix);
      }
    }
    changed.swap(next_changed);
  }

  if (!stats.converged) {
    // Check once more in case the final round settled everything.
    stats.converged = true;
    for (const auto& c : changed) {
      if (!c.empty()) {
        stats.converged = false;
        break;
      }
    }
  }
  return stats;
}

const BgpRoute* BgpMesh::BestRoute(SpeakerId speaker,
                                   const IpPrefix& prefix) const {
  if (!speaker.valid() || speaker.value() > speakers_.size()) {
    return nullptr;
  }
  const Speaker& s = Get(speaker);
  auto it = s.loc_rib.find(prefix);
  return it == s.loc_rib.end() ? nullptr : &it->second;
}

size_t BgpMesh::TableSize(SpeakerId speaker) const {
  if (!speaker.valid() || speaker.value() > speakers_.size()) {
    return 0;
  }
  return Get(speaker).loc_rib.size();
}

size_t BgpMesh::TotalRibEntries() const {
  size_t total = 0;
  for (const Speaker& s : speakers_) {
    total += s.loc_rib.size();
  }
  return total;
}

}  // namespace tenantnet
