// A compact path-vector (BGP-like) routing mesh with incremental,
// event-driven convergence.
//
// The paper's point is that tenants are forced to face inter-domain routing
// (Transit Gateways and VPN gateways speak BGP); the baseline world
// therefore really runs one of these meshes: speakers originate prefixes,
// advertise to sessions with export policies, import with loop detection,
// and select best paths (local-pref, then AS-path length, then lowest
// neighbor ASN, then lowest neighbor speaker id as the deterministic final
// tie-break).
//
// Convergence is delta-driven: every speaker retains an Adj-RIB-In (the
// last route each peer advertised for each prefix, post import policy), so
// a mutation — originate, withdraw, session add/remove, policy change —
// only enqueues the affected prefixes onto a dirty work queue. Converge()
// drains that queue in synchronous rounds: best paths are re-selected
// locally from the retained Adj-RIB-Ins (implicit withdraw: a peer's new
// advertisement replaces its previous one), and only *changed* best routes
// are re-advertised, with explicit withdraw messages sent when a best
// route disappears or stops passing an export filter. A convergence that
// changes nothing advertises nothing and does not invalidate downstream
// verdict caches.
//
// ConvergeFull() is the from-scratch reference: it clears every RIB and
// re-floods the whole mesh through the same engine. Differential tests
// assert that an incrementally maintained mesh is byte-identical to the
// full rebuild after arbitrary mutation sequences; benches measure the
// (orders-of-magnitude) gap between the two under single-route churn.
//
// Downstream consumers (BaselineNetwork::PropagateRoutes) read the per-
// speaker Loc-RIB delta set accumulated since the last TakeDeltas() call
// and apply it as install/withdraw deltas to their FIBs instead of
// rebuilding them.

#ifndef TENANTNET_SRC_ROUTING_BGP_H_
#define TENANTNET_SRC_ROUTING_BGP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/ids.h"
#include "src/common/reconcile.h"
#include "src/common/slab.h"
#include "src/common/status.h"
#include "src/net/ip.h"

namespace tenantnet {

using SpeakerId = TypedId<struct SpeakerIdTag>;

struct BgpRoute {
  IpPrefix prefix;
  std::vector<uint32_t> as_path;  // front = most recent hop
  uint32_t local_pref = 100;
  SpeakerId learned_from;  // invalid for locally originated

  bool OriginatedLocally() const { return !learned_from.valid(); }

  friend bool operator==(const BgpRoute& a, const BgpRoute& b) {
    return a.prefix == b.prefix && a.as_path == b.as_path &&
           a.local_pref == b.local_pref && a.learned_from == b.learned_from;
  }
};

// Per-session import/export policy.
struct SessionPolicy {
  // Applied to routes received on this session; routes failing the filter
  // are dropped. Default accepts everything.
  std::function<bool(const BgpRoute&)> import_filter;
  // local_pref assigned to imported routes (0 = keep sender's default 100).
  uint32_t import_local_pref = 0;
  // Applied before sending; routes failing are not exported.
  std::function<bool(const BgpRoute&)> export_filter;
};

// How one speaker's best route for one prefix changed across a delta epoch
// (between two TakeDeltas() calls). Changes are net: a route that changed
// and changed back reports nothing.
enum class RibDeltaKind : uint8_t {
  kInstalled,  // prefix gained a best route it did not have before
  kReplaced,   // best route swapped for a different one
  kWithdrawn,  // best route disappeared
};

struct RibDelta {
  IpPrefix prefix;
  RibDeltaKind kind = RibDeltaKind::kInstalled;
};

// Durable image of the mesh's *routing* state: Adj-RIB-In and Loc-RIB per
// speaker. Config (speakers, sessions, policies, origins) is durable tenant
// intent — it survives a control-plane restart by construction and is not
// captured. SessionPolicy holds std::function filters, so snapshots are
// structured in-memory values compared with operator==, never raw bytes.
struct BgpMeshSnapshot {
  struct SpeakerRibs {
    // Per prefix (sorted), the retained advertisement of each peer (sorted
    // by peer speaker value).
    std::vector<std::pair<IpPrefix, std::vector<std::pair<uint64_t, BgpRoute>>>>
        adj_rib_in;
    std::vector<std::pair<IpPrefix, BgpRoute>> loc_rib;  // sorted by prefix

    friend bool operator==(const SpeakerRibs& a,
                           const SpeakerRibs& b) = default;
  };
  std::vector<SpeakerRibs> speakers;

  friend bool operator==(const BgpMeshSnapshot& a,
                         const BgpMeshSnapshot& b) = default;
};

class BgpMesh {
 public:
  SpeakerId AddSpeaker(uint32_t asn, std::string name);

  // Bidirectional session with per-direction policies. At most one session
  // per speaker pair; the new session immediately syncs both speakers'
  // current best routes into each other's Adj-RIB-In (drain with
  // Converge()).
  Status AddSession(SpeakerId a, SpeakerId b, SessionPolicy a_to_b = {},
                    SessionPolicy b_to_a = {});

  // Tears the session down: both sides drop every route learned from the
  // other and re-select from their remaining Adj-RIB-Ins on Converge().
  Status RemoveSession(SpeakerId a, SpeakerId b);

  // Replaces the policy `speaker` applies on its session toward `peer`
  // (its import from and export to that peer). Both directions of the
  // session are re-synced under the new policy.
  Status SetSessionPolicy(SpeakerId speaker, SpeakerId peer,
                          SessionPolicy policy);

  // Originates `prefix` at `speaker` (it will advertise it everywhere its
  // export policies allow).
  Status Originate(SpeakerId speaker, const IpPrefix& prefix);

  Status WithdrawOrigin(SpeakerId speaker, const IpPrefix& prefix);

  // Drains the dirty-prefix queue in synchronous advertisement rounds
  // until no speaker changes its Loc-RIB, or `max_rounds` is hit. A call
  // with nothing pending does no work. Returns per-call stats.
  struct ConvergenceStats {
    uint64_t rounds = 0;
    uint64_t update_messages = 0;    // (route, session) advertisements sent
    uint64_t withdraw_messages = 0;  // explicit withdraws sent
    uint64_t prefixes_processed = 0; // dirty (speaker, prefix) work items
    uint64_t best_path_changes = 0;  // Loc-RIB writes (incl. transients)
    bool converged = false;
  };
  ConvergenceStats Converge(uint64_t max_rounds = 1000);

  // From-scratch reference: clears every Adj-RIB-In and Loc-RIB, re-seeds
  // origins, and re-floods the whole mesh through the same engine. The
  // result is the state Converge() maintains incrementally; the cost is
  // what every mutation used to pay.
  ConvergenceStats ConvergeFull(uint64_t max_rounds = 1000);

  // Best route at `speaker` for exactly `prefix` (post-convergence).
  const BgpRoute* BestRoute(SpeakerId speaker, const IpPrefix& prefix) const;

  // The whole Loc-RIB of a speaker (sorted by prefix), for differential
  // tests and FIB derivation sweeps.
  const std::map<IpPrefix, BgpRoute>* LocRib(SpeakerId speaker) const;

  // Loc-RIB size at a speaker.
  size_t TableSize(SpeakerId speaker) const;

  size_t speaker_count() const { return speakers_.size(); }
  size_t session_count() const { return session_count_; }

  // Total best-route entries across all speakers (global routing state).
  size_t TotalRibEntries() const;

  // Retained Adj-RIB-In entries across all speakers (the memory the
  // incremental engine pays for sound implicit withdraws).
  size_t TotalAdjRibInEntries() const;

  // Resident footprint of the mesh's routing state (E10): Adj-RIB-In
  // buckets + 16-byte compact entries, the interned AS-path pool, and the
  // Loc-RIBs. Capacity-based, feeds the telemetry gauges.
  size_t ApproxBytes() const;

  // Distinct AS paths alive in the mesh-wide intern pool. Most routes in a
  // realistic mesh share a handful of paths; this is the dedup win.
  size_t distinct_as_paths() const { return paths_.size(); }

  // --- Delta API -----------------------------------------------------------

  // Net per-speaker Loc-RIB changes since the previous TakeDeltas() call,
  // indexed by speaker.value() - 1 and sorted by prefix. Consuming resets
  // the accumulator. Downstream FIBs apply exactly these prefixes instead
  // of re-deriving every table.
  std::vector<std::vector<RibDelta>> TakeDeltas();

  // True if some Loc-RIB entry changed since the last TakeDeltas().
  bool HasPendingDeltas() const;

  // Dirty (speaker, prefix) work items queued for the next Converge().
  size_t pending_work() const { return pending_work_; }

  // Bumped by every config mutation (speakers, sessions, origins, policy)
  // and by every Converge()/ConvergeFull() that actually changed a Loc-RIB
  // entry. A convergence that changes nothing does NOT bump it, so verdict
  // caches folding this counter into their generation survive no-op
  // re-propagation.
  uint64_t mutation_count() const { return mutations_; }

  // --- Warm restart (see src/common/reconcile.h for the protocol) -----------

  // Captures Adj-RIB-In + Loc-RIB for every speaker.
  BgpMeshSnapshot Checkpoint() const;

  // Wholesale restore of what Checkpoint() captured: RIBs are replaced, the
  // dirty queue and delta accumulator of restored speakers are cleared (the
  // restored image is the new delta baseline), and the mutation counter is
  // bumped (downstream caches must conservatively drop). The disaster path —
  // warm reconciliation goes through ReconcileFromSnapshot instead.
  void RestoreFromSnapshot(const BgpMeshSnapshot& snap);

  // The control plane dies. Graceful-restart semantics: the RIBs are
  // forwarding state and survive (peers keep forwarding), but no convergence
  // runs and config mutations (originate/withdraw, session add/remove,
  // policy changes) buffer until EndRestartAndReplay(). Idempotent.
  void BeginRestart();
  bool in_restart() const { return in_restart_; }

  // Verification pass of the warm path: compares retained RIBs against the
  // checkpoint and marks every divergent (speaker, prefix) dirty so the next
  // Converge() re-selects it from live Adj-RIB-In + config (the live state
  // is authoritative — the snapshot only says where to look). Returns the
  // divergent entry count; zero when the checkpoint was taken at the kill.
  uint64_t ReconcileFromSnapshot(const BgpMeshSnapshot& snap);

  // Exits buffering and replays the buffered config mutations through the
  // normal incremental paths. Returns {replayed, dropped} — an op can drop
  // when it became invalid during the outage (e.g. originating a prefix a
  // later buffered op already originated).
  std::pair<uint64_t, uint64_t> EndRestartAndReplay();

 private:
  struct Session {
    SpeakerId peer;
    SessionPolicy policy;  // applied in the owner -> peer direction
  };
  // One retained advertisement, 16 bytes. The stored BgpRoute is implicit:
  // its prefix is the bucket key, its learned_from is SpeakerId(peer) (the
  // delivery paths always set them that way), and its as_path lives in the
  // mesh-wide intern pool — most routes share a handful of paths, so each
  // distinct path costs its bytes once.
  struct AdjEntry {
    uint64_t peer = 0;        // sender speaker value
    uint32_t path_id = 0;     // paths_ intern id (one reference held)
    uint32_t local_pref = 0;  // post import policy
  };
  struct PathHash {
    size_t operator()(const std::vector<uint32_t>& path) const {
      size_t h = 1469598103934665603ull;
      for (uint32_t hop : path) {
        h = (h ^ hop) * 1099511628211ull;
      }
      return h;
    }
  };
  struct Speaker {
    uint32_t asn;
    std::string name;
    std::vector<Session> sessions;
    // peer speaker value -> index into `sessions` (hashed lookup replacing
    // the old per-delivery linear scan).
    std::unordered_map<uint64_t, uint32_t> session_index;
    // Originated prefixes (hashed: Originate used to be O(n) per call).
    std::unordered_set<IpPrefix> originated;
    // Adj-RIB-In: per prefix, the adj_slab_ bucket holding the last route
    // each peer advertised (post import policy), in compact form.
    std::unordered_map<IpPrefix, uint32_t> adj_rib_in;
    // Loc-RIB: best route per prefix. Ordered so differential fingerprints
    // and FIB sweeps are deterministic, and node-stable so BestRoute() /
    // LocRib() can hand out long-lived pointers.
    std::map<IpPrefix, BgpRoute> loc_rib;
  };

  // True if `candidate` beats `incumbent` under BGP-ish selection
  // (deterministic total order; never ties for distinct candidates).
  bool Better(const BgpRoute& candidate, const BgpRoute& incumbent) const;

  Speaker& Get(SpeakerId id) { return speakers_[id.value() - 1]; }
  const Speaker& Get(SpeakerId id) const { return speakers_[id.value() - 1]; }
  bool Valid(SpeakerId id) const {
    return id.valid() && id.value() <= speakers_.size();
  }

  // Best candidate for `prefix` at `speaker`: local origination vs retained
  // Adj-RIB-In entries. nullopt = no route.
  std::optional<BgpRoute> SelectBest(const Speaker& s,
                                     const IpPrefix& prefix) const;

  // Better(), restated over compact entries without materializing routes.
  bool EntryBetter(const AdjEntry& a, const AdjEntry& b) const;

  // Reconstitutes the full route a compact entry stands for.
  BgpRoute Materialize(const IpPrefix& prefix, const AdjEntry& entry) const {
    BgpRoute route;
    route.prefix = prefix;
    route.as_path = paths_.Get(entry.path_id);
    route.local_pref = entry.local_pref;
    route.learned_from = SpeakerId(entry.peer);
    return route;
  }

  // Finds `peer`'s entry in a bucket (nullptr if absent).
  static AdjEntry* FindEntry(std::vector<AdjEntry>& entries, uint64_t peer) {
    for (AdjEntry& e : entries) {
      if (e.peer == peer) {
        return &e;
      }
    }
    return nullptr;
  }

  // Releases every path reference and bucket of a speaker's Adj-RIB-In.
  void ClearAdjRib(Speaker& s);

  // Marks (speaker, prefix) dirty for the next Converge() round.
  void MarkDirty(size_t speaker_index, const IpPrefix& prefix);

  // Records the pre-change value of (speaker, prefix) the first time it is
  // touched in the current delta epoch.
  void RecordPreDelta(size_t speaker_index, const IpPrefix& prefix,
                      const std::optional<BgpRoute>& old_route);

  // Applies one advertisement to `receiver`'s Adj-RIB-In (loop detection +
  // import policy; a looped or filtered advert implicitly withdraws the
  // peer's previous route). Marks the receiver dirty if the entry changed.
  void DeliverUpdate(size_t receiver_index, SpeakerId from, BgpRoute route);
  // Applies one explicit withdraw.
  void DeliverWithdraw(size_t receiver_index, SpeakerId from,
                       const IpPrefix& prefix);

  // Re-sends `from`'s current best routes to `to` under `from`'s current
  // export policy (session add / policy change), withdrawing retained
  // entries that no longer arrive.
  void ResyncSession(SpeakerId from, SpeakerId to);

  // Drops every Adj-RIB-In entry `at` learned from `peer`.
  void FlushLearnedFrom(SpeakerId at, SpeakerId peer);

  // A config mutation buffered while the control plane is restarting.
  struct PendingOp {
    enum class Kind : uint8_t {
      kOriginate,
      kWithdrawOrigin,
      kAddSession,
      kRemoveSession,
      kSetSessionPolicy,
    };
    Kind kind = Kind::kOriginate;
    SpeakerId a;
    SpeakerId b;  // peer for session ops
    IpPrefix prefix;
    SessionPolicy policy_ab;
    SessionPolicy policy_ba;
  };

  std::vector<Speaker> speakers_;
  // Adj-RIB-In buckets (shared slab: one allocation pool for the mesh) and
  // the mesh-wide deduplicated AS-path pool.
  Slab<std::vector<AdjEntry>> adj_slab_;
  InternPool<std::vector<uint32_t>, PathHash> paths_;
  size_t session_count_ = 0;
  uint64_t mutations_ = 0;
  bool in_restart_ = false;
  std::vector<PendingOp> pending_ops_;

  // Dirty work queue: per speaker, the prefixes whose best path must be
  // re-selected. Ordered sets keep round processing deterministic.
  std::vector<std::set<IpPrefix>> dirty_;
  size_t pending_work_ = 0;

  // Delta accumulator: per speaker, prefix -> Loc-RIB value before the
  // first change of the current epoch (nullopt = absent).
  std::vector<std::unordered_map<IpPrefix, std::optional<BgpRoute>>>
      pre_delta_;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_ROUTING_BGP_H_
