// A compact path-vector (BGP-like) routing mesh.
//
// The paper's point is that tenants are forced to face inter-domain routing
// (Transit Gateways and VPN gateways speak BGP); the baseline world
// therefore really runs one of these meshes: speakers originate prefixes,
// advertise to sessions with export policies, import with loop detection,
// and select best paths (local-pref, then AS-path length, then lowest
// neighbor ASN). Convergence is synchronous-round based and instrumented —
// rounds, update messages, and per-speaker table sizes are what the
// complexity and scalability experiments read out.

#ifndef TENANTNET_SRC_ROUTING_BGP_H_
#define TENANTNET_SRC_ROUTING_BGP_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/net/ip.h"

namespace tenantnet {

using SpeakerId = TypedId<struct SpeakerIdTag>;

struct BgpRoute {
  IpPrefix prefix;
  std::vector<uint32_t> as_path;  // front = most recent hop
  uint32_t local_pref = 100;
  SpeakerId learned_from;  // invalid for locally originated

  bool OriginatedLocally() const { return !learned_from.valid(); }
};

// Per-session import/export policy.
struct SessionPolicy {
  // Applied to routes received on this session; routes failing the filter
  // are dropped. Default accepts everything.
  std::function<bool(const BgpRoute&)> import_filter;
  // local_pref assigned to imported routes (0 = keep sender's default 100).
  uint32_t import_local_pref = 0;
  // Applied before sending; routes failing are not exported.
  std::function<bool(const BgpRoute&)> export_filter;
};

class BgpMesh {
 public:
  SpeakerId AddSpeaker(uint32_t asn, std::string name);

  // Bidirectional session with per-direction policies.
  Status AddSession(SpeakerId a, SpeakerId b, SessionPolicy a_to_b = {},
                    SessionPolicy b_to_a = {});

  // Originates `prefix` at `speaker` (it will advertise it everywhere its
  // export policies allow).
  Status Originate(SpeakerId speaker, const IpPrefix& prefix);

  Status WithdrawOrigin(SpeakerId speaker, const IpPrefix& prefix);

  // Runs synchronous advertisement rounds until no speaker changes its
  // Loc-RIB, or `max_rounds` is hit. Returns rounds executed.
  struct ConvergenceStats {
    uint64_t rounds = 0;
    uint64_t update_messages = 0;  // (route, session) advertisements sent
    bool converged = false;
  };
  ConvergenceStats Converge(uint64_t max_rounds = 1000);

  // Best route at `speaker` for exactly `prefix` (post-convergence).
  const BgpRoute* BestRoute(SpeakerId speaker, const IpPrefix& prefix) const;

  // Loc-RIB size at a speaker.
  size_t TableSize(SpeakerId speaker) const;

  size_t speaker_count() const { return speakers_.size(); }
  size_t session_count() const { return session_count_; }

  // Total best-route entries across all speakers (global routing state).
  size_t TotalRibEntries() const;

  // Bumped by every mesh mutation (speakers, sessions, origins) and every
  // Converge() run. Verdict caches fold it into their generation so cached
  // deliveries never outlive the RIBs they were computed from.
  uint64_t mutation_count() const { return mutations_; }

 private:
  struct Session {
    SpeakerId peer;
    SessionPolicy policy;  // applied in the a -> peer direction
  };
  struct Speaker {
    uint32_t asn;
    std::string name;
    std::vector<Session> sessions;
    std::vector<IpPrefix> originated;
    // Loc-RIB: best route per prefix.
    std::map<IpPrefix, BgpRoute> loc_rib;
  };

  // True if `candidate` beats `incumbent` under BGP-ish selection.
  static bool Better(const BgpRoute& candidate, const BgpRoute& incumbent,
                     const BgpMesh& mesh);

  Speaker& Get(SpeakerId id) { return speakers_[id.value() - 1]; }
  const Speaker& Get(SpeakerId id) const { return speakers_[id.value() - 1]; }

  std::vector<Speaker> speakers_;
  size_t session_count_ = 0;
  uint64_t mutations_ = 0;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_ROUTING_BGP_H_
