// Longest-prefix-match binary trie.
//
// The core data structure behind every forwarding table in the project.
// One trie per address family; keys are IpPrefix, lookups are IpAddress.
// node_count() is exposed because experiment E4a's question is precisely
// "how big does the provider's table get with flat EIPs vs aggregated VPC
// prefixes" — trie nodes are the memory proxy.

#ifndef TENANTNET_SRC_ROUTING_LPM_TRIE_H_
#define TENANTNET_SRC_ROUTING_LPM_TRIE_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/net/ip.h"

namespace tenantnet {

template <typename T>
class LpmTrie {
 public:
  LpmTrie() : v4_root_(std::make_unique<Node>()), v6_root_(std::make_unique<Node>()) {
    node_count_ = 2;
  }

  // Inserts or overwrites the value at `prefix`. Returns true if this was a
  // new entry (false = overwrite).
  bool Insert(const IpPrefix& prefix, T value) {
    Node* node = WalkOrCreate(prefix);
    bool is_new = !node->value.has_value();
    node->value = std::move(value);
    if (is_new) {
      ++entry_count_;
    }
    return is_new;
  }

  // Removes the entry at exactly `prefix`. Returns false if absent.
  // (Nodes are not pruned; tables in this project grow hot and shrink cold,
  // and node_count() intentionally reports high-water structure.)
  bool Remove(const IpPrefix& prefix) {
    Node* node = WalkExact(prefix);
    if (node == nullptr || !node->value.has_value()) {
      return false;
    }
    node->value.reset();
    --entry_count_;
    return true;
  }

  // Value stored at exactly `prefix`, if any.
  const T* ExactMatch(const IpPrefix& prefix) const {
    const Node* node = WalkExact(prefix);
    return (node != nullptr && node->value.has_value()) ? &*node->value
                                                        : nullptr;
  }
  T* ExactMatch(const IpPrefix& prefix) {
    Node* node = WalkExact(prefix);
    return (node != nullptr && node->value.has_value()) ? &*node->value
                                                        : nullptr;
  }

  // Longest-prefix match for `ip`; nullptr if nothing covers it.
  const T* LongestMatch(IpAddress ip) const {
    const Node* node = RootFor(ip.family());
    const T* best = node->value.has_value() ? &*node->value : nullptr;
    int width = ip.width();
    for (int depth = 0; depth < width; ++depth) {
      node = ip.BitFromMsb(depth) ? node->one.get() : node->zero.get();
      if (node == nullptr) {
        break;
      }
      if (node->value.has_value()) {
        best = &*node->value;
      }
    }
    return best;
  }

  // Longest matching prefix itself (with its value).
  std::optional<std::pair<IpPrefix, const T*>> LongestMatchEntry(
      IpAddress ip) const {
    const Node* node = RootFor(ip.family());
    std::optional<std::pair<IpPrefix, const T*>> best;
    if (node->value.has_value()) {
      best = {IpPrefix::Any(ip.family()), &*node->value};
    }
    int width = ip.width();
    for (int depth = 0; depth < width; ++depth) {
      node = ip.BitFromMsb(depth) ? node->one.get() : node->zero.get();
      if (node == nullptr) {
        break;
      }
      if (node->value.has_value()) {
        auto prefix = IpPrefix::Create(ip, depth + 1);
        best = {*prefix, &*node->value};
      }
    }
    return best;
  }

  // Visits the value of *every* prefix covering `ip`, shortest first, while
  // `fn(value)` returns true. Returns true if the walk was cut short (fn
  // returned false — "found what I wanted"). Admission checks need this
  // rather than LongestMatch: a permit list admits a flow if *any* covering
  // prefix carries a matching scope, not just the most specific one.
  template <typename Fn>
  bool ForEachMatch(IpAddress ip, Fn&& fn) const {
    const Node* node = RootFor(ip.family());
    if (node->value.has_value() && !fn(*node->value)) {
      return true;
    }
    int width = ip.width();
    for (int depth = 0; depth < width; ++depth) {
      node = ip.BitFromMsb(depth) ? node->one.get() : node->zero.get();
      if (node == nullptr) {
        return false;
      }
      if (node->value.has_value() && !fn(*node->value)) {
        return true;
      }
    }
    return false;
  }

  // Visits every entry as (prefix, value).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    ForEachImpl(v4_root_.get(), IpPrefix::Any(IpFamily::kIpv4), fn);
    ForEachImpl(v6_root_.get(), IpPrefix::Any(IpFamily::kIpv6), fn);
  }

  size_t entry_count() const { return entry_count_; }
  size_t node_count() const { return node_count_; }

  void Clear() {
    v4_root_ = std::make_unique<Node>();
    v6_root_ = std::make_unique<Node>();
    node_count_ = 2;
    entry_count_ = 0;
  }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> zero;
    std::unique_ptr<Node> one;
  };

  const Node* RootFor(IpFamily family) const {
    return family == IpFamily::kIpv4 ? v4_root_.get() : v6_root_.get();
  }
  Node* RootFor(IpFamily family) {
    return family == IpFamily::kIpv4 ? v4_root_.get() : v6_root_.get();
  }

  Node* WalkOrCreate(const IpPrefix& prefix) {
    Node* node = RootFor(prefix.family());
    for (int depth = 0; depth < prefix.length(); ++depth) {
      std::unique_ptr<Node>& child =
          prefix.base().BitFromMsb(depth) ? node->one : node->zero;
      if (!child) {
        child = std::make_unique<Node>();
        ++node_count_;
      }
      node = child.get();
    }
    return node;
  }

  const Node* WalkExact(const IpPrefix& prefix) const {
    const Node* node = RootFor(prefix.family());
    for (int depth = 0; depth < prefix.length(); ++depth) {
      node = prefix.base().BitFromMsb(depth) ? node->one.get()
                                             : node->zero.get();
      if (node == nullptr) {
        return nullptr;
      }
    }
    return node;
  }
  Node* WalkExact(const IpPrefix& prefix) {
    return const_cast<Node*>(
        static_cast<const LpmTrie*>(this)->WalkExact(prefix));
  }

  template <typename Fn>
  void ForEachImpl(const Node* node, IpPrefix at, Fn& fn) const {
    if (node->value.has_value()) {
      fn(at, *node->value);
    }
    if (at.length() >= at.base().width()) {
      return;
    }
    auto halves = at.Split();
    if (!halves.ok()) {
      return;
    }
    if (node->zero) {
      ForEachImpl(node->zero.get(), halves->first, fn);
    }
    if (node->one) {
      ForEachImpl(node->one.get(), halves->second, fn);
    }
  }

  std::unique_ptr<Node> v4_root_;
  std::unique_ptr<Node> v6_root_;
  size_t node_count_ = 0;
  size_t entry_count_ = 0;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_ROUTING_LPM_TRIE_H_
