// Longest-prefix-match trie, path-compressed and arena-backed.
//
// The core data structure behind every forwarding table in the project.
// One trie per address family; keys are IpPrefix, lookups are IpAddress.
//
// Layout (the PR-8 memory diet): nodes live in one contiguous per-family
// arena and refer to each other by 32-bit index, not pointer. Each node is
// path-compressed (Patricia): it stores the full key bits up to its depth
// plus that depth, so a chain of branch-free bits costs zero intermediate
// nodes — a /32 host route is one node, not 32. A v4 node is 20 bytes and a
// v6 node 32, vs ~64+ bytes per *bit* for the old node-per-bit heap trie.
// Values sit in a separate slab (vector + free list) shared by both
// families, so tries of empty-ish values stay dense and ForEachMatch walks
// touch contiguous memory.
//
// All traversals are iterative — no recursion, so /128 IPv6 ladders cannot
// grow the C++ stack (satellite of ISSUE 8; asserted by lpm_trie_test).
//
// node_count() is exposed because experiment E4a's question is precisely
// "how big does the provider's table get with flat EIPs vs aggregated VPC
// prefixes" — trie nodes are the memory proxy (now path-compressed ones).
// ApproxBytes() reports actual arena footprint for E10's bytes/endpoint
// accounting; ShrinkToFit() drops growth slack before measuring.
//
// Semantics preserved from the node-per-bit trie: Remove never prunes
// (tables grow hot and shrink cold; node_count() intentionally reports
// high-water structure), the two roots always exist (node_count() starts at
// 2), ForEach visits prefixes in preorder (shorter first, zero subtree
// before one subtree), and ForEachMatch visits covering prefixes shortest
// first with the same early-exit contract.

#ifndef TENANTNET_SRC_ROUTING_LPM_TRIE_H_
#define TENANTNET_SRC_ROUTING_LPM_TRIE_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/net/ip.h"

namespace tenantnet {

namespace lpm_internal {

inline constexpr uint32_t kNil = 0xFFFFFFFFu;

// Per-family key plumbing. Keys are MSB-aligned fixed-width bit strings in
// canonical (host-bits-cleared) form.
struct V4Family {
  struct Key {
    uint32_t bits = 0;
    friend bool operator==(Key a, Key b) { return a.bits == b.bits; }
  };
  struct Node {
    Key key;                              // masked to `len` bits
    uint32_t child[2] = {kNil, kNil};
    uint32_t value = kNil;                // slot in the value slab
    uint8_t len = 0;                      // prefix length of `key`
  };
  static constexpr int kWidth = 32;
  static constexpr IpFamily kFamily = IpFamily::kIpv4;

  static Key KeyOf(IpAddress addr) { return Key{addr.v4_bits()}; }
  static bool BitAt(Key k, int i) { return (k.bits >> (31 - i)) & 1u; }
  static Key Mask(Key k, int len) {
    return Key{len == 0 ? 0u : k.bits & (~0u << (32 - len))};
  }
  // First bit position where a and b differ, capped at `cap`.
  static int CommonLen(Key a, Key b, int cap) {
    const uint32_t x = a.bits ^ b.bits;
    const int cl = x == 0 ? 32 : __builtin_clz(x);
    return cl < cap ? cl : cap;
  }
  static IpPrefix PrefixOf(Key k, int len) {
    return *IpPrefix::Create(IpAddress::V4(k.bits), len);
  }
};

struct V6Family {
  struct Key {
    uint64_t hi = 0;
    uint64_t lo = 0;
    friend bool operator==(Key a, Key b) {
      return a.hi == b.hi && a.lo == b.lo;
    }
  };
  struct Node {
    Key key;
    uint32_t child[2] = {kNil, kNil};
    uint32_t value = kNil;
    uint8_t len = 0;
  };
  static constexpr int kWidth = 128;
  static constexpr IpFamily kFamily = IpFamily::kIpv6;

  static Key KeyOf(IpAddress addr) { return Key{addr.hi(), addr.lo()}; }
  static bool BitAt(Key k, int i) {
    return i < 64 ? (k.hi >> (63 - i)) & 1u : (k.lo >> (127 - i)) & 1u;
  }
  static Key Mask(Key k, int len) {
    if (len <= 0) {
      return Key{};
    }
    if (len < 64) {
      return Key{k.hi & (~0ull << (64 - len)), 0};
    }
    if (len == 64) {
      return Key{k.hi, 0};
    }
    if (len >= 128) {
      return k;
    }
    return Key{k.hi, k.lo & (~0ull << (128 - len))};
  }
  static int CommonLen(Key a, Key b, int cap) {
    int cl;
    const uint64_t xh = a.hi ^ b.hi;
    if (xh != 0) {
      cl = __builtin_clzll(xh);
    } else {
      const uint64_t xl = a.lo ^ b.lo;
      cl = xl == 0 ? 128 : 64 + __builtin_clzll(xl);
    }
    return cl < cap ? cl : cap;
  }
  static IpPrefix PrefixOf(Key k, int len) {
    return *IpPrefix::Create(IpAddress::V6(k.hi, k.lo), len);
  }
};

}  // namespace lpm_internal

template <typename T>
class LpmTrie {
  using V4 = lpm_internal::V4Family;
  using V6 = lpm_internal::V6Family;
  static constexpr uint32_t kNil = lpm_internal::kNil;

 public:
  LpmTrie() {
    v4_.nodes.push_back(typename V4::Node{});
    v6_.nodes.push_back(typename V6::Node{});
  }

  // Inserts or overwrites the value at `prefix`. Returns true if this was a
  // new entry (false = overwrite).
  bool Insert(const IpPrefix& prefix, T value) {
    return prefix.family() == IpFamily::kIpv4
               ? InsertImpl<V4>(v4_, prefix, std::move(value))
               : InsertImpl<V6>(v6_, prefix, std::move(value));
  }

  // Removes the entry at exactly `prefix`. Returns false if absent.
  // (Nodes are not pruned; tables in this project grow hot and shrink cold,
  // and node_count() intentionally reports high-water structure. The value
  // slot is recycled.)
  bool Remove(const IpPrefix& prefix) {
    const uint32_t node = prefix.family() == IpFamily::kIpv4
                              ? FindNode<V4>(v4_, prefix)
                              : FindNode<V6>(v6_, prefix);
    if (node == kNil) {
      return false;
    }
    uint32_t& slot = prefix.family() == IpFamily::kIpv4
                         ? v4_.nodes[node].value
                         : v6_.nodes[node].value;
    if (slot == kNil) {
      return false;
    }
    FreeValue(slot);
    slot = kNil;
    --entry_count_;
    return true;
  }

  // Value stored at exactly `prefix`, if any.
  const T* ExactMatch(const IpPrefix& prefix) const {
    const uint32_t node = prefix.family() == IpFamily::kIpv4
                              ? FindNode<V4>(v4_, prefix)
                              : FindNode<V6>(v6_, prefix);
    if (node == kNil) {
      return nullptr;
    }
    const uint32_t slot = prefix.family() == IpFamily::kIpv4
                              ? v4_.nodes[node].value
                              : v6_.nodes[node].value;
    return slot == kNil ? nullptr : &values_[slot];
  }
  T* ExactMatch(const IpPrefix& prefix) {
    return const_cast<T*>(
        static_cast<const LpmTrie*>(this)->ExactMatch(prefix));
  }

  // Longest-prefix match for `ip`; nullptr if nothing covers it.
  const T* LongestMatch(IpAddress ip) const {
    const uint32_t slot = ip.is_v4() ? BestSlot<V4>(v4_, ip, nullptr)
                                     : BestSlot<V6>(v6_, ip, nullptr);
    return slot == kNil ? nullptr : &values_[slot];
  }

  // Longest matching prefix itself (with its value).
  std::optional<std::pair<IpPrefix, const T*>> LongestMatchEntry(
      IpAddress ip) const {
    IpPrefix at;
    const uint32_t slot = ip.is_v4() ? BestSlot<V4>(v4_, ip, &at)
                                     : BestSlot<V6>(v6_, ip, &at);
    if (slot == kNil) {
      return std::nullopt;
    }
    return std::make_pair(at, &values_[slot]);
  }

  // Visits the value of *every* prefix covering `ip`, shortest first, while
  // `fn(value)` returns true. Returns true if the walk was cut short (fn
  // returned false — "found what I wanted"). Admission checks need this
  // rather than LongestMatch: a permit list admits a flow if *any* covering
  // prefix carries a matching scope, not just the most specific one.
  template <typename Fn>
  bool ForEachMatch(IpAddress ip, Fn&& fn) const {
    return ip.is_v4() ? ForEachMatchImpl<V4>(v4_, ip, fn)
                      : ForEachMatchImpl<V6>(v6_, ip, fn);
  }

  // Visits every entry as (prefix, value), v4 then v6, preorder.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    ForEachImpl<V4>(v4_, fn);
    ForEachImpl<V6>(v6_, fn);
  }

  size_t entry_count() const { return entry_count_; }
  // Structural size (path-compressed arena nodes, both families; the two
  // roots always count). High-water: Remove recycles values, not nodes.
  size_t node_count() const { return v4_.nodes.size() + v6_.nodes.size(); }

  void Clear() {
    v4_.nodes.clear();
    v6_.nodes.clear();
    v4_.nodes.push_back(typename V4::Node{});
    v6_.nodes.push_back(typename V6::Node{});
    values_.clear();
    free_values_.clear();
    entry_count_ = 0;
  }

  // Drops vector growth slack (arena capacity -> size). Call after bulk
  // build, before ApproxBytes()-based accounting.
  void ShrinkToFit() {
    v4_.nodes.shrink_to_fit();
    v6_.nodes.shrink_to_fit();
    values_.shrink_to_fit();
    free_values_.shrink_to_fit();
  }

  // Arena footprint in bytes (capacity-based; excludes heap owned by the
  // values themselves).
  size_t ApproxBytes() const {
    return v4_.nodes.capacity() * sizeof(typename V4::Node) +
           v6_.nodes.capacity() * sizeof(typename V6::Node) +
           values_.capacity() * sizeof(T) +
           free_values_.capacity() * sizeof(uint32_t);
  }

 private:
  template <typename F>
  struct Arena {
    std::vector<typename F::Node> nodes;
  };

  uint32_t AllocValue(T value) {
    if (!free_values_.empty()) {
      const uint32_t slot = free_values_.back();
      free_values_.pop_back();
      values_[slot] = std::move(value);
      return slot;
    }
    values_.push_back(std::move(value));
    return static_cast<uint32_t>(values_.size() - 1);
  }

  void FreeValue(uint32_t slot) {
    values_[slot] = T();  // release value-owned heap now
    free_values_.push_back(slot);
  }

  template <typename F>
  static uint32_t NewNode(Arena<F>& arena, typename F::Key key, int len,
                          uint32_t value) {
    typename F::Node node;
    node.key = key;
    node.len = static_cast<uint8_t>(len);
    node.value = value;
    arena.nodes.push_back(node);
    return static_cast<uint32_t>(arena.nodes.size() - 1);
  }

  template <typename F>
  bool InsertImpl(Arena<F>& arena, const IpPrefix& prefix, T value) {
    const typename F::Key pkey =
        F::Mask(F::KeyOf(prefix.base()), prefix.length());
    const int plen = prefix.length();
    uint32_t cur = 0;
    // Invariant: pkey agrees with nodes[cur].key on the first nodes[cur].len
    // bits, and plen >= nodes[cur].len.
    for (;;) {
      if (arena.nodes[cur].len == plen) {
        uint32_t& slot = arena.nodes[cur].value;
        if (slot != kNil) {
          values_[slot] = std::move(value);
          return false;
        }
        // NOTE: AllocValue may not touch arena.nodes, so `slot` stays valid.
        slot = AllocValue(std::move(value));
        ++entry_count_;
        return true;
      }
      const int branch = F::BitAt(pkey, arena.nodes[cur].len) ? 1 : 0;
      const uint32_t child = arena.nodes[cur].child[branch];
      if (child == kNil) {
        // New leaf; allocate first (push_back may move the arena), then
        // re-address the parent.
        const uint32_t leaf = NewNode(arena, pkey, plen, AllocValue(std::move(value)));
        arena.nodes[cur].child[branch] = leaf;
        ++entry_count_;
        return true;
      }
      const typename F::Node& cn = arena.nodes[child];
      const int cl = F::CommonLen(pkey, cn.key, std::min(plen, int{cn.len}));
      if (cl == cn.len) {
        cur = child;  // child is a (proper or full) prefix of ours: descend
        continue;
      }
      // The edge cur->child skips past where we diverge: split it at cl.
      const typename F::Key child_key = cn.key;  // save before realloc
      if (cl == plen) {
        // Our prefix is an ancestor of child: the split node holds the value.
        const uint32_t mid = NewNode(arena, pkey, plen, AllocValue(std::move(value)));
        arena.nodes[mid].child[F::BitAt(child_key, cl) ? 1 : 0] = child;
        arena.nodes[cur].child[branch] = mid;
      } else {
        // True divergence: valueless branch node with child and new leaf.
        const uint32_t mid = NewNode(arena, F::Mask(pkey, cl), cl, kNil);
        const uint32_t leaf = NewNode(arena, pkey, plen, AllocValue(std::move(value)));
        arena.nodes[mid].child[F::BitAt(child_key, cl) ? 1 : 0] = child;
        arena.nodes[mid].child[F::BitAt(pkey, cl) ? 1 : 0] = leaf;
        arena.nodes[cur].child[branch] = mid;
      }
      ++entry_count_;
      return true;
    }
  }

  // Index of the node at exactly `prefix`, or kNil.
  template <typename F>
  static uint32_t FindNode(const Arena<F>& arena, const IpPrefix& prefix) {
    const typename F::Key pkey =
        F::Mask(F::KeyOf(prefix.base()), prefix.length());
    const int plen = prefix.length();
    uint32_t cur = 0;
    while (arena.nodes[cur].len < plen) {
      const uint32_t child =
          arena.nodes[cur].child[F::BitAt(pkey, arena.nodes[cur].len) ? 1 : 0];
      if (child == kNil) {
        return lpm_internal::kNil;
      }
      const typename F::Node& cn = arena.nodes[child];
      if (cn.len > plen || F::CommonLen(pkey, cn.key, cn.len) < cn.len) {
        return lpm_internal::kNil;  // compressed past / diverges from plen
      }
      cur = child;
    }
    return arena.nodes[cur].len == plen ? cur : lpm_internal::kNil;
  }

  // Value slot of the longest present prefix covering `ip` (kNil if none);
  // optionally reports that prefix via `at`.
  template <typename F>
  static uint32_t BestSlot(const Arena<F>& arena, IpAddress ip, IpPrefix* at) {
    const typename F::Key key = F::KeyOf(ip);
    uint32_t cur = 0;
    uint32_t best = lpm_internal::kNil;
    for (;;) {
      const typename F::Node& n = arena.nodes[cur];
      if (n.value != lpm_internal::kNil) {
        best = n.value;
        if (at != nullptr) {
          *at = F::PrefixOf(n.key, n.len);
        }
      }
      if (n.len >= F::kWidth) {
        break;
      }
      const uint32_t child = n.child[F::BitAt(key, n.len) ? 1 : 0];
      if (child == kNil) {
        break;
      }
      const typename F::Node& cn = arena.nodes[child];
      if (F::CommonLen(key, cn.key, cn.len) < cn.len) {
        break;  // the compressed segment diverges from ip
      }
      cur = child;
    }
    return best;
  }

  template <typename F, typename Fn>
  bool ForEachMatchImpl(const Arena<F>& arena, IpAddress ip, Fn& fn) const {
    const typename F::Key key = F::KeyOf(ip);
    uint32_t cur = 0;
    for (;;) {
      const typename F::Node& n = arena.nodes[cur];
      if (n.value != kNil && !fn(values_[n.value])) {
        return true;
      }
      if (n.len >= F::kWidth) {
        return false;
      }
      const uint32_t child = n.child[F::BitAt(key, n.len) ? 1 : 0];
      if (child == kNil) {
        return false;
      }
      const typename F::Node& cn = arena.nodes[child];
      if (F::CommonLen(key, cn.key, cn.len) < cn.len) {
        return false;
      }
      cur = child;
    }
  }

  // Iterative preorder: value before descendants, zero subtree before one.
  template <typename F, typename Fn>
  void ForEachImpl(const Arena<F>& arena, Fn& fn) const {
    std::vector<uint32_t> stack;
    stack.push_back(0);
    while (!stack.empty()) {
      const uint32_t cur = stack.back();
      stack.pop_back();
      const typename F::Node& n = arena.nodes[cur];
      if (n.value != kNil) {
        fn(F::PrefixOf(n.key, n.len), values_[n.value]);
      }
      if (n.child[1] != kNil) {
        stack.push_back(n.child[1]);
      }
      if (n.child[0] != kNil) {
        stack.push_back(n.child[0]);
      }
    }
  }

  Arena<V4> v4_;
  Arena<V6> v6_;
  std::vector<T> values_;             // slot slab shared by both families
  std::vector<uint32_t> free_values_;
  size_t entry_count_ = 0;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_ROUTING_LPM_TRIE_H_
