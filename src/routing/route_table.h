// Route tables (RIB/FIB) and route aggregation.
//
// RouteTable is the forwarding state a router or a provider fabric holds:
// prefix -> next hop (+ origin metadata). Aggregation answers E4a's routing
// question: given the set of prefixes a provider must carry, how small can
// the table get, flat-EIP world vs VPC world?

#ifndef TENANTNET_SRC_ROUTING_ROUTE_TABLE_H_
#define TENANTNET_SRC_ROUTING_ROUTE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/slab.h"
#include "src/common/status.h"
#include "src/net/ip.h"
#include "src/routing/lpm_trie.h"
#include "src/sim/topology.h"

namespace tenantnet {

enum class RouteOrigin : uint8_t {
  kLocal,       // directly attached
  kStatic,      // operator-configured
  kPropagated,  // learned via BGP/peering
};

// Interner for RouteEntry::via labels (gateway names, sessions). Labels are
// few and repeated across millions of routes, so entries carry a 4-byte id
// instead of a 32-byte std::string (the PR-8 memory diet; a RouteEntry is
// 24 bytes, and E10's flat EIP RIB holds one per endpoint).
inline StringInterner& RouteLabels() {
  static StringInterner* interner = new StringInterner();
  return *interner;
}

struct RouteEntry {
  NodeId next_hop;
  RouteOrigin origin = RouteOrigin::kStatic;
  uint32_t metric = 0;
  // Human-readable source, interned: RouteLabels().Intern("igw-1"); 0 = "".
  uint32_t via = 0;

  friend bool operator==(const RouteEntry& a, const RouteEntry& b) {
    return a.next_hop == b.next_hop && a.origin == b.origin &&
           a.metric == b.metric;
  }
};

class RouteTable {
 public:
  // Installs/overwrites a route. Returns true if the table changed (new
  // prefix, or an existing entry replaced by a different one) — callers use
  // this to bump revision counters only on actual change.
  bool Install(const IpPrefix& prefix, RouteEntry entry);

  Status Withdraw(const IpPrefix& prefix);

  // Longest-prefix-match lookup.
  const RouteEntry* Lookup(IpAddress dst) const;

  const RouteEntry* ExactLookup(const IpPrefix& prefix) const;

  size_t entry_count() const { return trie_.entry_count(); }
  // Structural size: trie nodes (memory proxy for E4a).
  size_t node_count() const { return trie_.node_count(); }
  // Actual arena footprint (E10 bytes/endpoint accounting).
  size_t ApproxBytes() const { return trie_.ApproxBytes(); }
  // Drops arena growth slack after a bulk build, before measuring.
  void ShrinkToFit() { trie_.ShrinkToFit(); }

  // All installed prefixes, for aggregation / reporting.
  std::vector<IpPrefix> Prefixes() const;

  void Clear() { trie_.Clear(); }

 private:
  LpmTrie<RouteEntry> trie_;
};

// Collapses a prefix set to its minimal covering set: buddy pairs merge into
// their parent, contained prefixes are dropped. This models the provider's
// ability to aggregate (the paper argues flat EIP assignment gives the
// provider *maximum* aggregation freedom because tenants no longer pin
// prefixes to VPCs).
std::vector<IpPrefix> AggregatePrefixes(std::vector<IpPrefix> prefixes);

// True iff some prefix in the set covers `addr`. Linear; the reach intent
// layer uses it for closure checks (does a synthesized policy admit exactly
// the observed sources?) where no trie is worth building.
bool CoveredBy(const std::vector<IpPrefix>& prefixes, IpAddress addr);

}  // namespace tenantnet

#endif  // TENANTNET_SRC_ROUTING_ROUTE_TABLE_H_
