#include "src/routing/route_table.h"

#include <algorithm>
#include <set>

namespace tenantnet {

bool RouteTable::Install(const IpPrefix& prefix, RouteEntry entry) {
  const RouteEntry* existing = trie_.ExactMatch(prefix);
  if (existing != nullptr && *existing == entry) {
    return false;
  }
  trie_.Insert(prefix, std::move(entry));
  return true;
}

Status RouteTable::Withdraw(const IpPrefix& prefix) {
  if (!trie_.Remove(prefix)) {
    return NotFoundError("no route for " + prefix.ToString());
  }
  return Status::Ok();
}

const RouteEntry* RouteTable::Lookup(IpAddress dst) const {
  return trie_.LongestMatch(dst);
}

const RouteEntry* RouteTable::ExactLookup(const IpPrefix& prefix) const {
  return trie_.ExactMatch(prefix);
}

std::vector<IpPrefix> RouteTable::Prefixes() const {
  std::vector<IpPrefix> out;
  out.reserve(trie_.entry_count());
  trie_.ForEach([&out](const IpPrefix& p, const RouteEntry&) {
    out.push_back(p);
  });
  return out;
}

std::vector<IpPrefix> AggregatePrefixes(std::vector<IpPrefix> prefixes) {
  // 1) Drop exact duplicates and prefixes contained in another. Sorting by
  //    (base, length) puts a covering prefix immediately before everything
  //    it covers, so one sweep with the most recent keeper suffices.
  std::sort(prefixes.begin(), prefixes.end());
  prefixes.erase(std::unique(prefixes.begin(), prefixes.end()),
                 prefixes.end());
  std::vector<IpPrefix> kept;
  kept.reserve(prefixes.size());
  for (const IpPrefix& p : prefixes) {
    if (!kept.empty() && kept.back().Contains(p)) {
      continue;
    }
    kept.push_back(p);
  }

  // 2) Merge buddy pairs bottom-up: process lengths from longest to 1; a
  //    merged parent re-enters at its own (shorter) length and may merge
  //    again. One pass over each length bucket, O(n log n) total.
  int max_len = 0;
  std::vector<std::set<IpPrefix>> by_len(129);
  for (const IpPrefix& p : kept) {
    by_len[p.length()].insert(p);
    max_len = std::max(max_len, p.length());
  }
  for (int len = max_len; len >= 1; --len) {
    auto& bucket = by_len[len];
    for (auto it = bucket.begin(); it != bucket.end();) {
      auto parent = IpPrefix::Create(it->base(), len - 1);
      auto halves = parent->Split();
      const IpPrefix& buddy =
          (halves->first == *it) ? halves->second : halves->first;
      auto buddy_it = bucket.find(buddy);
      if (buddy_it != bucket.end()) {
        // Erase both (buddy is never the iterator position: sets are
        // ordered and *it comes first only if it is the left half, but
        // either way both are present and distinct).
        bucket.erase(buddy_it);
        it = bucket.erase(it);
        by_len[len - 1].insert(*parent);
      } else {
        ++it;
      }
    }
  }

  std::vector<IpPrefix> out;
  for (const auto& bucket : by_len) {
    out.insert(out.end(), bucket.begin(), bucket.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool CoveredBy(const std::vector<IpPrefix>& prefixes, IpAddress addr) {
  for (const IpPrefix& p : prefixes) {
    if (p.Contains(addr)) {
      return true;
    }
  }
  return false;
}

}  // namespace tenantnet
