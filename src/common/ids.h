// Strongly typed integer ids.
//
// tenantnet has many id spaces (tenants, instances, VPCs, gateways, EIP
// handles, flows, nodes, links, ...). Raw uint64_t invites cross-space mixups
// that the type system can catch for free, so each space declares
//   using VpcId = TypedId<struct VpcIdTag>;
// TypedId is a trivially copyable value type usable as a map key.

#ifndef TENANTNET_SRC_COMMON_IDS_H_
#define TENANTNET_SRC_COMMON_IDS_H_

#include <cstdint>
#include <functional>
#include <ostream>

namespace tenantnet {

template <typename Tag>
class TypedId {
 public:
  // Default-constructed ids are invalid; generators start at 1.
  constexpr TypedId() = default;
  constexpr explicit TypedId(uint64_t value) : value_(value) {}

  constexpr uint64_t value() const { return value_; }
  constexpr bool valid() const { return value_ != 0; }

  static constexpr TypedId Invalid() { return TypedId(); }

  friend constexpr bool operator==(TypedId a, TypedId b) {
    return a.value_ == b.value_;
  }
  friend constexpr bool operator!=(TypedId a, TypedId b) {
    return a.value_ != b.value_;
  }
  friend constexpr bool operator<(TypedId a, TypedId b) {
    return a.value_ < b.value_;
  }

  friend std::ostream& operator<<(std::ostream& os, TypedId id) {
    return os << "#" << id.value_;
  }

 private:
  uint64_t value_ = 0;
};

// Monotonic generator for a given id space. Not thread-safe; the simulator
// is single-threaded by design (deterministic replay).
template <typename Id>
class IdGenerator {
 public:
  Id Next() { return Id(++last_); }
  void Reset() { last_ = 0; }

 private:
  uint64_t last_ = 0;
};

}  // namespace tenantnet

// std::hash support so TypedId works in unordered containers.
namespace std {
template <typename Tag>
struct hash<tenantnet::TypedId<Tag>> {
  size_t operator()(tenantnet::TypedId<Tag> id) const noexcept {
    return std::hash<uint64_t>{}(id.value());
  }
};
}  // namespace std

#endif  // TENANTNET_SRC_COMMON_IDS_H_
