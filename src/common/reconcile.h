// Shared vocabulary for control-plane restart and state reconciliation.
//
// Every restartable control-plane component (EdgeFilterBank, SipLoadBalancer,
// BgpMesh + TGW FIBs via BaselineNetwork) speaks the same protocol:
//
//   snap = Checkpoint()            — capture the durable state image
//   BeginRestart()                 — the process dies: volatile state is
//                                    gone, mutations arriving during the
//                                    outage are buffered (the provider's
//                                    config store keeps accepting writes),
//                                    and the data plane keeps forwarding
//                                    from its last-programmed state
//   CompleteRestart(mode, snap)    — the process comes back:
//     kWarm: restore the snapshot, replay the buffered mutations through
//            the normal incremental paths, then diff intent against live
//            data-plane state and apply only the differences
//     kCold: rebuild everything from scratch — flush the data plane and
//            re-program it in full (the pre-warm-restart behavior, kept as
//            the disruption baseline and the differential-oracle reference)
//
// Both modes land on byte-identical state (asserted by the oracle tests);
// they differ in how much of the data plane they churn getting there, which
// is exactly what E9b measures.

#ifndef TENANTNET_SRC_COMMON_RECONCILE_H_
#define TENANTNET_SRC_COMMON_RECONCILE_H_

#include <cstdint>

#include "src/common/time.h"

namespace tenantnet {

enum class RestartMode : uint8_t {
  kWarm,  // restore snapshot + replay buffer + diff-reconcile deltas
  kCold,  // flush and rebuild the data plane in full
};

inline const char* RestartModeName(RestartMode mode) {
  return mode == RestartMode::kWarm ? "warm" : "cold";
}

// What one CompleteRestart() did. `checked` counts state entries examined
// by the reconcile diff; `deltas_applied` counts the ones that actually
// had to be (re)programmed — the data-plane churn. A warm restart after a
// quiet outage checks everything and applies nothing.
struct ReconcileStats {
  uint64_t checked = 0;
  uint64_t deltas_applied = 0;
  uint64_t replayed_mutations = 0;  // buffered ops drained at completion
  uint64_t dropped_mutations = 0;   // buffered ops invalid at replay time
  // Simulated time at which the last reconcile-driven install lands on the
  // slowest edge (== completion time for components with no install
  // latency). Restart-to-converged latency is measured against this.
  SimTime converged_at = SimTime::Epoch();

  void Merge(const ReconcileStats& other) {
    checked += other.checked;
    deltas_applied += other.deltas_applied;
    replayed_mutations += other.replayed_mutations;
    dropped_mutations += other.dropped_mutations;
    if (other.converged_at > converged_at) {
      converged_at = other.converged_at;
    }
  }
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_COMMON_RECONCILE_H_
