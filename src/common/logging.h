// Minimal leveled logging.
//
// tenantnet is a library first; by default it is silent (kWarning). Examples
// and benches raise the level for narration. Logging writes to stderr via a
// single stream-style macro:
//   TN_LOG(kInfo) << "tenant " << tid << " placed " << n << " instances";
// Messages below the global level are discarded without evaluating the
// stream expression's insertions into the sink (the ostringstream is still
// constructed; logging is not used on data-plane hot paths).

#ifndef TENANTNET_SRC_COMMON_LOGGING_H_
#define TENANTNET_SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string_view>

namespace tenantnet {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global log threshold; messages with level < threshold are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace log_internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, std::string_view file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace log_internal

#define TN_LOG(severity)                                                     \
  ::tenantnet::log_internal::LogMessage(::tenantnet::LogLevel::severity,     \
                                        __FILE__, __LINE__)                  \
      .stream()

}  // namespace tenantnet

#endif  // TENANTNET_SRC_COMMON_LOGGING_H_
