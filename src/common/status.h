// Status and Result<T>: lightweight error propagation for tenantnet.
//
// The simulator and control planes report recoverable errors (bad tenant
// input, exhausted address pools, unknown ids) through Status / Result<T>
// rather than exceptions, so that benchmark hot paths stay allocation-free
// on the success path and callers are forced to look at failures.

#ifndef TENANTNET_SRC_COMMON_STATUS_H_
#define TENANTNET_SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace tenantnet {

// Broad error taxonomy. Mirrors the subset of canonical codes the project
// actually needs; keep this list short and stable.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // id / route / resource does not exist
  kAlreadyExists,     // uniqueness violated (duplicate id, overlapping CIDR)
  kResourceExhausted, // pool empty, quota full, table at capacity
  kFailedPrecondition,// operation illegal in current state
  kPermissionDenied,  // policy (permit-list, ACL, auth) rejected the action
  kUnimplemented,     // feature intentionally absent in this build
  kInternal,          // invariant violation; indicates a tenantnet bug
};

// Human-readable name for a code ("OK", "NOT_FOUND", ...).
std::string_view StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy when OK (no message allocated).
class Status {
 public:
  // Default: OK.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "NOT_FOUND: no such vpc".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

// Convenience constructors.
Status InvalidArgumentError(std::string_view msg);
Status NotFoundError(std::string_view msg);
Status AlreadyExistsError(std::string_view msg);
Status ResourceExhaustedError(std::string_view msg);
Status FailedPreconditionError(std::string_view msg);
Status PermissionDeniedError(std::string_view msg);
Status UnimplementedError(std::string_view msg);
Status InternalError(std::string_view msg);

// Result<T>: either a value or a non-OK Status.
template <typename T>
class Result {
 public:
  // Implicit from value and from error Status, so functions can
  // `return value;` or `return NotFoundError(...);` symmetrically.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(rep_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(rep_);
  }

  // Precondition: ok().
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> rep_;
};

// Propagate a non-OK status out of the current function.
#define TN_RETURN_IF_ERROR(expr)                \
  do {                                          \
    ::tenantnet::Status tn_status_ = (expr);    \
    if (!tn_status_.ok()) {                     \
      return tn_status_;                        \
    }                                           \
  } while (0)

// Assign from a Result<T> or propagate its error.
//   TN_ASSIGN_OR_RETURN(auto ip, pool.Allocate());
#define TN_ASSIGN_OR_RETURN(decl, expr)                          \
  TN_ASSIGN_OR_RETURN_IMPL_(TN_STATUS_CONCAT_(tn_res_, __LINE__), decl, expr)

#define TN_ASSIGN_OR_RETURN_IMPL_(tmp, decl, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) {                                 \
    return tmp.status();                           \
  }                                                \
  decl = std::move(tmp).value()

#define TN_STATUS_CONCAT_INNER_(a, b) a##b
#define TN_STATUS_CONCAT_(a, b) TN_STATUS_CONCAT_INNER_(a, b)

}  // namespace tenantnet

#endif  // TENANTNET_SRC_COMMON_STATUS_H_
