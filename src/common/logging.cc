#include "src/common/logging.h"

#include <cstdio>
#include <string>

namespace tenantnet {

namespace {
LogLevel g_level = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

// Strip directories: "src/core/api.cc" -> "api.cc".
std::string_view Basename(std::string_view path) {
  size_t pos = path.find_last_of('/');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace log_internal {

LogMessage::LogMessage(LogLevel level, std::string_view file, int line)
    : level_(level), enabled_(level >= g_level) {
  if (enabled_) {
    stream_ << "[" << LevelName(level) << " " << Basename(file) << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::string msg = stream_.str();
    std::fprintf(stderr, "%s\n", msg.c_str());
  }
}

}  // namespace log_internal

}  // namespace tenantnet
