#include "src/common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tenantnet {

namespace {

// SplitMix64 step: advances state and returns a well-mixed 64-bit output.
uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

uint64_t Rng::NextU64() { return SplitMix64(state_); }

uint64_t Rng::NextU64(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  if (span == 0) {
    return static_cast<int64_t>(NextU64());
  }
  return lo + static_cast<int64_t>(NextU64(span));
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

double Rng::NextExponential(double rate) {
  assert(rate > 0);
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -std::log(1.0 - u) / rate;
}

uint64_t Rng::NextPoisson(double mean) {
  assert(mean >= 0);
  if (mean == 0) {
    return 0;
  }
  if (mean < 64.0) {
    // Knuth inversion.
    double l = std::exp(-mean);
    uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= NextDouble();
    } while (p > l);
    return k - 1;
  }
  // Normal approximation for large means.
  double draw = NextNormal(mean, std::sqrt(mean));
  return draw <= 0 ? 0 : static_cast<uint64_t>(std::llround(draw));
}

double Rng::NextNormal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  double mag = std::sqrt(-2.0 * std::log(u1));
  double z0 = mag * std::cos(2.0 * M_PI * u2);
  double z1 = mag * std::sin(2.0 * M_PI * u2);
  spare_normal_ = z1;
  has_spare_normal_ = true;
  return mean + stddev * z0;
}

double Rng::NextPareto(double x_min, double alpha) {
  assert(x_min > 0 && alpha > 0);
  double u = NextDouble();
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return x_min / std::pow(u, 1.0 / alpha);
}

uint64_t Rng::NextZipf(uint64_t n, double s) {
  ZipfSampler sampler(n, s);
  return sampler.Sample(*this);
}

Rng Rng::Fork() {
  // Child seed derived from two parent draws; streams are independent for
  // simulation purposes.
  uint64_t a = NextU64();
  uint64_t b = NextU64();
  return Rng(a ^ (b << 1) ^ 0xA5A5A5A5A5A5A5A5ULL);
}

ZipfSampler::ZipfSampler(uint64_t n, double s) {
  assert(n > 0);
  cdf_.resize(n);
  double total = 0.0;
  for (uint64_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (double& v : cdf_) {
    v /= total;
  }
  cdf_.back() = 1.0;  // exact, despite rounding
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) {
    return cdf_.size() - 1;
  }
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace tenantnet
