// Slab, interning, and open-addressed index primitives for the memory diet.
//
// The million-endpoint experiments (E10) are memory-bound before they are
// CPU-bound: node-per-bit tries, per-endpoint std::vector copies and nested
// unordered_maps each cost 50-100+ bytes of allocator overhead per logical
// entry. The structures here follow the EventQueue slab from PR 1 —
// contiguous storage, 32-bit handles, explicit free lists — and add two
// sharing primitives:
//
//   Slab<T>        contiguous arena of T with a free list; handles are
//                  uint32_t indices, stable until Free (storage may move on
//                  Alloc, so hold handles, not pointers).
//   InternPool<T>  refcounted deduplication: identical values share one
//                  slot. Many endpoints carry byte-identical permit lists
//                  and most BGP routes share a handful of AS paths; the
//                  pool makes each distinct value cost its bytes once.
//   AddrIndex      open-addressed IpAddress -> uint32_t map in
//                  struct-of-arrays form (~20 bytes/slot vs ~56+ for an
//                  unordered_map node). No erase: endpoint slots are
//                  append-only by design (epochs must survive removals).
//   StringInterner small registry mapping repeated label strings (deny
//                  stages, route provenance) to dense uint32 ids so hot
//                  loops count by id and only reports pay for strings.
//
// Every structure reports ApproxBytes(): capacity-based accounting that the
// telemetry gauges and E10's bytes/endpoint records are built from.

#ifndef TENANTNET_SRC_COMMON_SLAB_H_
#define TENANTNET_SRC_COMMON_SLAB_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/net/ip.h"

namespace tenantnet {

// Sentinel for "no slab handle" / "no intern id" / "no index value".
inline constexpr uint32_t kNilId = 0xFFFFFFFFu;

// Contiguous arena with free-list reuse. Freed slots are reset to T() so a
// slab of vectors releases its heap immediately on Free.
template <typename T>
class Slab {
 public:
  uint32_t Alloc(T value = T()) {
    if (!free_.empty()) {
      uint32_t id = free_.back();
      free_.pop_back();
      slots_[id] = std::move(value);
      return id;
    }
    slots_.push_back(std::move(value));
    return static_cast<uint32_t>(slots_.size() - 1);
  }

  void Free(uint32_t id) {
    slots_[id] = T();
    free_.push_back(id);
  }

  T& Get(uint32_t id) { return slots_[id]; }
  const T& Get(uint32_t id) const { return slots_[id]; }

  // Live slot count (allocated minus freed).
  size_t size() const { return slots_.size() - free_.size(); }

  void Clear() {
    slots_.clear();
    free_.clear();
  }

  void ShrinkToFit() {
    slots_.shrink_to_fit();
    free_.shrink_to_fit();
  }

  // Container overhead only; element-owned heap (e.g. vector payloads) is
  // the caller's to account for via `extra`.
  size_t ApproxBytes() const {
    return slots_.capacity() * sizeof(T) + free_.capacity() * sizeof(uint32_t);
  }

 private:
  std::vector<T> slots_;
  std::vector<uint32_t> free_;
};

// Refcounted value deduplication. Intern() returns the id of the (single)
// slot holding a value equal to the argument, creating it at refcount 1 or
// bumping the existing slot's refcount. Release() drops a reference and
// frees the slot at zero. Ids are stable for the lifetime of the reference.
template <typename T, typename Hash = std::hash<T>>
class InternPool {
 public:
  uint32_t Intern(T value) {
    const size_t h = Hash{}(value);
    auto [lo, hi] = index_.equal_range(h);
    for (auto it = lo; it != hi; ++it) {
      Entry& e = entries_[it->second];
      if (e.value == value) {
        ++e.refs;
        return it->second;
      }
    }
    uint32_t id;
    if (!free_.empty()) {
      id = free_.back();
      free_.pop_back();
      entries_[id] = Entry{std::move(value), 1, h};
    } else {
      id = static_cast<uint32_t>(entries_.size());
      entries_.push_back(Entry{std::move(value), 1, h});
    }
    index_.emplace(h, id);
    return id;
  }

  void AddRef(uint32_t id) { ++entries_[id].refs; }

  void Release(uint32_t id) {
    Entry& e = entries_[id];
    assert(e.refs > 0);
    if (--e.refs > 0) {
      return;
    }
    auto [lo, hi] = index_.equal_range(e.hash);
    for (auto it = lo; it != hi; ++it) {
      if (it->second == id) {
        index_.erase(it);
        break;
      }
    }
    e.value = T();
    free_.push_back(id);
  }

  const T& Get(uint32_t id) const { return entries_[id].value; }
  // Mutable access for caches piggybacked on the value (e.g. a lazily
  // compiled matcher); fields that feed operator== / Hash must stay fixed.
  T& GetMutable(uint32_t id) { return entries_[id].value; }

  uint32_t RefCount(uint32_t id) const { return entries_[id].refs; }

  // Distinct live values.
  size_t size() const { return entries_.size() - free_.size(); }

  void Clear() {
    entries_.clear();
    free_.clear();
    index_.clear();
  }

  size_t ApproxBytes() const {
    // unordered_multimap node: hash-next pointer + key + mapped (+ bucket).
    return entries_.capacity() * sizeof(Entry) +
           free_.capacity() * sizeof(uint32_t) +
           index_.size() * (sizeof(void*) + sizeof(size_t) + sizeof(uint32_t) +
                            sizeof(void*)) +
           index_.bucket_count() * sizeof(void*);
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {  // fn(id, value, refs) over live slots
    for (const auto& [h, id] : index_) {
      (void)h;
      fn(id, entries_[id].value, entries_[id].refs);
    }
  }

 private:
  struct Entry {
    T value{};
    uint32_t refs = 0;
    size_t hash = 0;
  };
  std::vector<Entry> entries_;
  std::vector<uint32_t> free_;
  std::unordered_multimap<size_t, uint32_t> index_;
};

// Open-addressed IpAddress -> uint32_t map, struct-of-arrays. Linear
// probing, load factor <= 0.8, no erase. Values must be < 2^31: the
// family bit of the key is packed into the value word's top bit so a slot
// is 20 bytes (hi, lo, tagged value) instead of a 56+ byte map node.
class AddrIndex {
 public:
  AddrIndex() { Rehash(kMinCapacity); }

  // Value registered for `addr`, or kNilId.
  uint32_t Lookup(IpAddress addr) const {
    const uint64_t fam = addr.family() == IpFamily::kIpv6 ? 1u : 0u;
    size_t i = std::hash<IpAddress>{}(addr) % cap_;
    for (;;) {
      const uint32_t tagged = val_[i];
      if (tagged == kNilId) {
        return kNilId;
      }
      if (hi_[i] == addr.hi() && lo_[i] == addr.lo() && (tagged >> 31) == fam) {
        return tagged & 0x7FFFFFFFu;
      }
      i = i + 1 == cap_ ? 0 : i + 1;
    }
  }

  // Inserts addr -> value (value < 2^31). Precondition: addr not present.
  void Insert(IpAddress addr, uint32_t value) {
    assert(value < 0x80000000u);
    if ((size_ + 1) * 5 > cap_ * 4) {
      Rehash(cap_ * 2);
    }
    InsertNoGrow(addr, value);
    ++size_;
  }

  // Pre-sizes for `n` entries (benches that know the population up front:
  // avoids both rehash churn and power-of-two overshoot).
  void Reserve(size_t n) {
    size_t want = n * 5 / 4 + 1;
    if (want > cap_) {
      Rehash(want);
    }
  }

  size_t size() const { return size_; }

  void Clear() {
    hi_.clear();
    lo_.clear();
    val_.clear();
    size_ = 0;
    Rehash(kMinCapacity);
  }

  size_t ApproxBytes() const {
    return hi_.capacity() * sizeof(uint64_t) +
           lo_.capacity() * sizeof(uint64_t) +
           val_.capacity() * sizeof(uint32_t);
  }

  template <typename Fn>
  void ForEach(Fn&& fn) const {  // fn(IpAddress, uint32_t value)
    for (size_t i = 0; i < cap_; ++i) {
      if (val_[i] == kNilId) {
        continue;
      }
      fn(AddressAt(i), val_[i] & 0x7FFFFFFFu);
    }
  }

 private:
  static constexpr size_t kMinCapacity = 16;

  IpAddress AddressAt(size_t i) const {
    return (val_[i] >> 31) != 0
               ? IpAddress::V6(hi_[i], lo_[i])
               : IpAddress::V4(static_cast<uint32_t>(lo_[i]));
  }

  void InsertNoGrow(IpAddress addr, uint32_t value) {
    size_t i = std::hash<IpAddress>{}(addr) % cap_;
    while (val_[i] != kNilId) {
      i = i + 1 == cap_ ? 0 : i + 1;
    }
    hi_[i] = addr.hi();
    lo_[i] = addr.lo();
    val_[i] = value |
              (addr.family() == IpFamily::kIpv6 ? 0x80000000u : 0u);
  }

  void Rehash(size_t new_cap) {
    std::vector<uint64_t> old_hi = std::move(hi_);
    std::vector<uint64_t> old_lo = std::move(lo_);
    std::vector<uint32_t> old_val = std::move(val_);
    cap_ = new_cap;
    hi_.assign(cap_, 0);
    lo_.assign(cap_, 0);
    val_.assign(cap_, kNilId);
    for (size_t i = 0; i < old_val.size(); ++i) {
      if (old_val[i] == kNilId) {
        continue;
      }
      IpAddress addr = (old_val[i] >> 31) != 0
                           ? IpAddress::V6(old_hi[i], old_lo[i])
                           : IpAddress::V4(static_cast<uint32_t>(old_lo[i]));
      InsertNoGrow(addr, old_val[i] & 0x7FFFFFFFu);
    }
  }

  std::vector<uint64_t> hi_;
  std::vector<uint64_t> lo_;
  std::vector<uint32_t> val_;  // kNilId = empty; top bit = family tag
  size_t cap_ = 0;
  size_t size_ = 0;
};

// Registry of repeated label strings -> dense ids. Id 0 is always the empty
// string. Thread-safe: labels are interned from setup code but may be read
// from concurrent bench shards.
class StringInterner {
 public:
  uint32_t Intern(const std::string& label) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = ids_.find(label);
    if (it != ids_.end()) {
      return it->second;
    }
    uint32_t id = static_cast<uint32_t>(names_.size());
    names_.push_back(label);
    ids_.emplace(label, id);
    return id;
  }

  // Report-time only; ids are never recycled.
  std::string Name(uint32_t id) const {
    std::lock_guard<std::mutex> lock(mu_);
    return id < names_.size() ? names_[id] : std::string();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return names_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<std::string> names_{std::string()};  // id 0 = ""
  std::unordered_map<std::string, uint32_t> ids_{{std::string(), 0}};
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_COMMON_SLAB_H_
