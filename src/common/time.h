// Simulated time.
//
// All of tenantnet runs on virtual time: SimTime is a count of nanoseconds
// since simulation start, SimDuration a signed difference. Wall-clock time is
// never consulted inside the simulator, which keeps runs deterministic and
// lets benchmarks compress months of tenant churn into milliseconds.

#ifndef TENANTNET_SRC_COMMON_TIME_H_
#define TENANTNET_SRC_COMMON_TIME_H_

#include <cstdint>
#include <ostream>

namespace tenantnet {

// Signed span of simulated time, in nanoseconds.
class SimDuration {
 public:
  constexpr SimDuration() = default;

  static constexpr SimDuration Nanos(int64_t n) { return SimDuration(n); }
  static constexpr SimDuration Micros(int64_t n) { return SimDuration(n * 1000); }
  static constexpr SimDuration Millis(int64_t n) { return SimDuration(n * 1000000); }
  static constexpr SimDuration Seconds(double s) {
    return SimDuration(static_cast<int64_t>(s * 1e9));
  }
  static constexpr SimDuration Zero() { return SimDuration(0); }
  static constexpr SimDuration Infinite() { return SimDuration(INT64_MAX); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double ToSeconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double ToMillis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double ToMicros() const { return static_cast<double>(ns_) / 1e3; }

  friend constexpr SimDuration operator+(SimDuration a, SimDuration b) {
    return SimDuration(a.ns_ + b.ns_);
  }
  friend constexpr SimDuration operator-(SimDuration a, SimDuration b) {
    return SimDuration(a.ns_ - b.ns_);
  }
  friend constexpr SimDuration operator*(SimDuration a, double k) {
    return SimDuration(static_cast<int64_t>(static_cast<double>(a.ns_) * k));
  }
  friend constexpr SimDuration operator*(double k, SimDuration a) { return a * k; }
  friend constexpr SimDuration operator/(SimDuration a, double k) {
    return SimDuration(static_cast<int64_t>(static_cast<double>(a.ns_) / k));
  }
  friend constexpr double operator/(SimDuration a, SimDuration b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }
  constexpr SimDuration& operator+=(SimDuration d) {
    ns_ += d.ns_;
    return *this;
  }
  constexpr SimDuration& operator-=(SimDuration d) {
    ns_ -= d.ns_;
    return *this;
  }
  friend constexpr auto operator<=>(SimDuration a, SimDuration b) = default;

 private:
  constexpr explicit SimDuration(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

// Absolute simulated time (nanoseconds since simulation epoch).
class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime FromNanos(int64_t n) { return SimTime(n); }
  static constexpr SimTime FromSeconds(double s) {
    return SimTime(static_cast<int64_t>(s * 1e9));
  }
  static constexpr SimTime Epoch() { return SimTime(0); }
  static constexpr SimTime Infinite() { return SimTime(INT64_MAX); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double ToSeconds() const { return static_cast<double>(ns_) / 1e9; }

  friend constexpr SimTime operator+(SimTime t, SimDuration d) {
    return SimTime(t.ns_ + d.nanos());
  }
  friend constexpr SimTime operator-(SimTime t, SimDuration d) {
    return SimTime(t.ns_ - d.nanos());
  }
  friend constexpr SimDuration operator-(SimTime a, SimTime b) {
    return SimDuration::Nanos(a.ns_ - b.ns_);
  }
  constexpr SimTime& operator+=(SimDuration d) {
    ns_ += d.nanos();
    return *this;
  }
  friend constexpr auto operator<=>(SimTime a, SimTime b) = default;

 private:
  constexpr explicit SimTime(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, SimDuration d) {
  return os << d.ToSeconds() << "s";
}
inline std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << "t=" << t.ToSeconds() << "s";
}

}  // namespace tenantnet

#endif  // TENANTNET_SRC_COMMON_TIME_H_
