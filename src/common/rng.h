// Deterministic random number generation.
//
// Every stochastic component (workload generators, attack traffic, jitter
// models) draws from an Rng seeded explicitly by its owner. The same seed
// always reproduces the same run, which the tests rely on. The generator is
// SplitMix64-based: tiny state, excellent statistical quality for simulation
// purposes, and trivially copyable so components can fork independent
// streams.

#ifndef TENANTNET_SRC_COMMON_RNG_H_
#define TENANTNET_SRC_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace tenantnet {

class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  // Uniform over all 64-bit values.
  uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0. Uses rejection sampling so the
  // distribution is exactly uniform.
  uint64_t NextU64(uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform in [lo, hi).
  double NextDouble(double lo, double hi);

  // Bernoulli trial.
  bool NextBool(double p_true);

  // Exponential with the given rate (mean 1/rate).
  double NextExponential(double rate);

  // Poisson-distributed count with the given mean. Uses inversion for small
  // means and a normal approximation above 64 (adequate for workload gen).
  uint64_t NextPoisson(double mean);

  // Standard normal via Box-Muller.
  double NextNormal(double mean, double stddev);

  // Pareto (heavy-tailed) with scale x_min > 0 and shape alpha > 0.
  double NextPareto(double x_min, double alpha);

  // Zipf-distributed rank in [0, n): rank k has probability proportional to
  // 1/(k+1)^s. Precomputed-CDF sampler; construct ZipfSampler for hot loops.
  uint64_t NextZipf(uint64_t n, double s);

  // Fork an independent stream (e.g. one per tenant) such that the child
  // sequence does not overlap the parent's in practice.
  Rng Fork();

 private:
  uint64_t state_;
  // Box-Muller produces pairs; cache the spare.
  bool has_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

// Precomputed Zipf sampler for hot paths (O(log n) per draw).
class ZipfSampler {
 public:
  // Ranks [0, n), exponent s >= 0 (s = 0 is uniform).
  ZipfSampler(uint64_t n, double s);

  uint64_t Sample(Rng& rng) const;
  uint64_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_COMMON_RNG_H_
