#include "src/restart/warm_restart.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <utility>

#include "src/core/edge_filter.h"
#include "src/core/sip_lb.h"
#include "src/vnet/fabric.h"

namespace tenantnet {

RestartableComponent MakeFilterBankComponent(std::string name,
                                             EdgeFilterBank& bank) {
  auto snap = std::make_shared<FilterBankSnapshot>();
  RestartableComponent c;
  c.name = std::move(name);
  c.checkpoint = [&bank, snap] { *snap = bank.Checkpoint(); };
  c.begin = [&bank] { bank.BeginRestart(); };
  c.complete = [&bank, snap](RestartMode mode) {
    return bank.CompleteRestart(mode, *snap);
  };
  return c;
}

RestartableComponent MakeSipLbComponent(std::string name,
                                        SipLoadBalancer& lb) {
  auto snap = std::make_shared<SipLbSnapshot>();
  RestartableComponent c;
  c.name = std::move(name);
  c.checkpoint = [&lb, snap] { *snap = lb.Checkpoint(); };
  c.begin = [&lb] { lb.BeginRestart(); };
  c.complete = [&lb, snap](RestartMode mode) {
    return lb.CompleteRestart(mode, *snap);
  };
  return c;
}

RestartableComponent MakeRoutingComponent(std::string name,
                                          BaselineNetwork& net) {
  auto snap = std::make_shared<RoutingSnapshot>();
  RestartableComponent c;
  c.name = std::move(name);
  c.checkpoint = [&net, snap] { *snap = net.CheckpointRouting(); };
  c.begin = [&net] { net.BeginRoutingRestart(); };
  c.complete = [&net, snap](RestartMode mode) {
    return net.CompleteRoutingRestart(mode, *snap);
  };
  return c;
}

WarmRestartCoordinator::WarmRestartCoordinator(EventQueue& queue,
                                               MetricRegistry& metrics,
                                               RestartMode mode)
    : queue_(queue), mode_(mode), metrics_(&metrics) {
  begun_counter_ = &metrics.GetCounter("restart.begun");
  completed_counter_ = &metrics.GetCounter("restart.completed");
  reconcile_deltas_counter_ = &metrics.GetCounter("restart.reconcile_deltas");
  replayed_counter_ = &metrics.GetCounter("restart.replayed_mutations");
  dropped_counter_ = &metrics.GetCounter("restart.dropped_mutations");
}

uint32_t WarmRestartCoordinator::Register(RestartableComponent component) {
  Entry entry;
  entry.outage_ms =
      &metrics_->GetHistogram("restart.outage_ms." + component.name);
  entry.to_converged_ms =
      &metrics_->GetHistogram("restart.to_converged_ms." + component.name);
  entry.component = std::move(component);
  components_.push_back(std::move(entry));
  // Components checkpoint at registration so a kill before the first
  // explicit Checkpoint() still reconciles against a meaningful image.
  components_.back().component.checkpoint();
  return static_cast<uint32_t>(components_.size() - 1);
}

std::vector<uint32_t> WarmRestartCoordinator::ComponentIds() const {
  std::vector<uint32_t> ids(components_.size());
  for (uint32_t i = 0; i < components_.size(); ++i) {
    ids[i] = i;
  }
  return ids;
}

const std::string& WarmRestartCoordinator::ComponentName(uint32_t id) const {
  return Get(id).component.name;
}

WarmRestartCoordinator::Entry& WarmRestartCoordinator::Get(uint32_t id) {
  assert(id < components_.size());
  return components_[id];
}

const WarmRestartCoordinator::Entry& WarmRestartCoordinator::Get(
    uint32_t id) const {
  assert(id < components_.size());
  return components_[id];
}

void WarmRestartCoordinator::Checkpoint(uint32_t id) {
  Entry& entry = Get(id);
  // A dead control plane cannot write a snapshot; the kill-time (or prior)
  // checkpoint stays authoritative until reconcile.
  if (!entry.in_restart) {
    entry.component.checkpoint();
  }
}

void WarmRestartCoordinator::CheckpointAll() {
  for (uint32_t i = 0; i < components_.size(); ++i) {
    Checkpoint(i);
  }
}

void WarmRestartCoordinator::BeginRestart(uint32_t id) {
  Entry& entry = Get(id);
  if (entry.in_restart) {
    return;  // overlapping restarts extend the same outage
  }
  if (checkpoint_on_kill_) {
    entry.component.checkpoint();
  }
  entry.in_restart = true;
  entry.began_at = queue_.now();
  entry.component.begin();
  ++restarts_begun_;
  begun_counter_->Increment();
}

bool WarmRestartCoordinator::InRestart(uint32_t id) const {
  return Get(id).in_restart;
}

ReconcileStats WarmRestartCoordinator::CompleteRestart(uint32_t id) {
  return CompleteRestart(id, mode_);
}

ReconcileStats WarmRestartCoordinator::CompleteRestart(uint32_t id,
                                                       RestartMode mode) {
  Entry& entry = Get(id);
  if (!entry.in_restart) {
    return ReconcileStats{};
  }
  ReconcileStats stats = entry.component.complete(mode);
  entry.in_restart = false;
  entry.last = stats;
  total_.Merge(stats);
  ++restarts_completed_;
  completed_counter_->Increment();
  reconcile_deltas_counter_->Increment(stats.deltas_applied);
  replayed_counter_->Increment(stats.replayed_mutations);
  dropped_counter_->Increment(stats.dropped_mutations);
  entry.outage_ms->Record((queue_.now() - entry.began_at).ToMillis());
  // Converged when the last reconcile-driven push lands; a component whose
  // reconcile applies synchronously converges at the completion call.
  SimTime converged = std::max(stats.converged_at, queue_.now());
  entry.to_converged_ms->Record((converged - entry.began_at).ToMillis());
  return stats;
}

void WarmRestartCoordinator::WireHooks(FaultHooks& hooks) {
  hooks.on_restart_begin = [this](const FaultSpec& spec) {
    BeginRestart(spec.component);
  };
  hooks.on_restart_complete = [this](const FaultSpec& spec) {
    CompleteRestart(spec.component);
  };
}

const ReconcileStats& WarmRestartCoordinator::last_stats(uint32_t id) const {
  return Get(id).last;
}

const Histogram& WarmRestartCoordinator::outage_ms(uint32_t id) const {
  return *Get(id).outage_ms;
}

const Histogram& WarmRestartCoordinator::to_converged_ms(uint32_t id) const {
  return *Get(id).to_converged_ms;
}

}  // namespace tenantnet
