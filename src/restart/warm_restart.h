// Control-plane warm restart coordination (the tentpole of the restart
// subsystem; protocol in src/common/reconcile.h).
//
// The paper's abstractions only hold up if the provider can restart the
// software that implements them without the tenant noticing. This module
// makes every control-plane component restartable behind one type-erased
// interface and measures what a restart costs in both worlds:
//
//   * A RestartableComponent wraps a component's Checkpoint / BeginRestart /
//     CompleteRestart triple in closures, with the snapshot held inside the
//     adapter (components stay snapshot-format agnostic to each other).
//   * The WarmRestartCoordinator owns the registered components, drives the
//     kill/reconcile cycle (by hand in tests, or wired into FaultInjector's
//     kControlPlaneRestart hooks for storms), and lands every restart in the
//     shared MetricRegistry: outage wall-clock, restart-to-converged sim
//     time, reconcile delta counts, replayed/dropped buffered mutations.
//
// The interesting contrast is the mode. kWarm restores the checkpoint and
// applies only the diffs the outage produced — unchanged edge state, FIB
// entries and verdict caches survive. kCold flushes and rebuilds from
// scratch — the measurable blackhole/default-off window E9b quantifies.

#ifndef TENANTNET_SRC_RESTART_WARM_RESTART_H_
#define TENANTNET_SRC_RESTART_WARM_RESTART_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/common/reconcile.h"
#include "src/common/time.h"
#include "src/faults/fault_injector.h"
#include "src/sim/event_queue.h"
#include "src/telemetry/metrics.h"

namespace tenantnet {

class EdgeFilterBank;
class SipLoadBalancer;
class BaselineNetwork;

// One restartable control-plane component, type-erased. The adapter owns
// the snapshot: `checkpoint` refreshes it, `complete` reconciles against it.
struct RestartableComponent {
  std::string name;
  std::function<void()> checkpoint;
  std::function<void()> begin;  // kill the control plane (idempotent)
  std::function<ReconcileStats(RestartMode)> complete;
};

// Adapters for the repo's control planes. References must outlive the
// returned component.
RestartableComponent MakeFilterBankComponent(std::string name,
                                             EdgeFilterBank& bank);
RestartableComponent MakeSipLbComponent(std::string name, SipLoadBalancer& lb);
RestartableComponent MakeRoutingComponent(std::string name,
                                          BaselineNetwork& net);

class WarmRestartCoordinator {
 public:
  // Metrics land under "restart.*". `mode` is the default for completions.
  WarmRestartCoordinator(EventQueue& queue, MetricRegistry& metrics,
                         RestartMode mode = RestartMode::kWarm);

  // Registers a component and returns its id (also valid as
  // FaultSpec::component / StormParams::restart_components entries).
  uint32_t Register(RestartableComponent component);
  size_t component_count() const { return components_.size(); }
  std::vector<uint32_t> ComponentIds() const;
  const std::string& ComponentName(uint32_t id) const;

  RestartMode mode() const { return mode_; }
  void set_mode(RestartMode mode) { mode_ = mode; }

  // By default a kill checkpoints first (the component crashed with a
  // current snapshot on disk). Disable to reconcile against the last
  // explicit Checkpoint() — the stale-snapshot path, where the diff pass
  // earns its keep.
  void set_checkpoint_on_kill(bool on) { checkpoint_on_kill_ = on; }

  void Checkpoint(uint32_t id);
  void CheckpointAll();

  // Kills the component's control plane. Idempotent per component: a second
  // Begin before the matching Complete extends the same outage.
  void BeginRestart(uint32_t id);
  bool InRestart(uint32_t id) const;

  // Replays + reconciles under `mode` (or the default mode). No-op (empty
  // stats) unless the component is in restart.
  ReconcileStats CompleteRestart(uint32_t id);
  ReconcileStats CompleteRestart(uint32_t id, RestartMode mode);

  // Routes FaultInjector's kControlPlaneRestart edges into Begin/Complete.
  // Overwrites hooks.on_restart_begin / hooks.on_restart_complete.
  void WireHooks(FaultHooks& hooks);

  // --- Telemetry ------------------------------------------------------------
  uint64_t restarts_begun() const { return restarts_begun_; }
  uint64_t restarts_completed() const { return restarts_completed_; }
  // Merged stats across every completed restart.
  const ReconcileStats& total() const { return total_; }
  // Stats of the most recent completion of one component.
  const ReconcileStats& last_stats(uint32_t id) const;
  // Sim time from BeginRestart to CompleteRestart, per component.
  const Histogram& outage_ms(uint32_t id) const;
  // Sim time from BeginRestart until the reconciled state finished
  // converging (includes in-flight edge pushes past the completion call).
  const Histogram& to_converged_ms(uint32_t id) const;

 private:
  struct Entry {
    RestartableComponent component;
    bool in_restart = false;
    SimTime began_at = SimTime::Epoch();
    ReconcileStats last;
    Histogram* outage_ms = nullptr;
    Histogram* to_converged_ms = nullptr;
  };
  Entry& Get(uint32_t id);
  const Entry& Get(uint32_t id) const;

  EventQueue& queue_;
  RestartMode mode_;
  bool checkpoint_on_kill_ = true;
  std::vector<Entry> components_;

  uint64_t restarts_begun_ = 0;
  uint64_t restarts_completed_ = 0;
  ReconcileStats total_;

  MetricRegistry* metrics_;
  Counter* begun_counter_;
  Counter* completed_counter_;
  Counter* reconcile_deltas_counter_;
  Counter* replayed_counter_;
  Counter* dropped_counter_;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_RESTART_WARM_RESTART_H_
