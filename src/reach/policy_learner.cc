#include "src/reach/policy_learner.h"

#include <algorithm>

#include "src/routing/route_table.h"

namespace tenantnet {

uint64_t AddressCount(const std::vector<IpPrefix>& prefixes) {
  uint64_t total = 0;
  for (const IpPrefix& p : prefixes) {
    const int free_bits = p.base().width() - p.length();
    if (free_bits >= 64) {
      return ~0ull;  // saturate (v6 hyper-prefixes; never hit by v4)
    }
    const uint64_t count = 1ull << free_bits;
    if (~0ull - total < count) {
      return ~0ull;
    }
    total += count;
  }
  return total;
}

bool ReachabilityIntent::Admits(IpAddress src, IpAddress dst,
                                uint16_t dst_port, Protocol proto) const {
  auto it = permits.find(dst);
  if (it == permits.end()) {
    return false;
  }
  FiveTuple flow;
  flow.src = src;
  flow.dst = dst;
  flow.dst_port = dst_port;
  flow.proto = proto;
  for (const PermitEntry& entry : it->second) {
    if (entry.Admits(flow)) {
      return true;
    }
  }
  return false;
}

namespace {

// The canonical strict weak order over permit entries, shared by the sort
// and the drift set-differences.
bool PermitLess(const PermitEntry& a, const PermitEntry& b) {
  if (a.proto != b.proto) return a.proto < b.proto;
  if (a.dst_ports.lo != b.dst_ports.lo) return a.dst_ports.lo < b.dst_ports.lo;
  if (a.dst_ports.hi != b.dst_ports.hi) return a.dst_ports.hi < b.dst_ports.hi;
  if (a.source.base() != b.source.base()) return a.source.base() < b.source.base();
  if (a.source.length() != b.source.length())
    return a.source.length() < b.source.length();
  return a.source_group.value() < b.source_group.value();
}

}  // namespace

void CanonicalizePermits(std::vector<PermitEntry>& entries) {
  std::sort(entries.begin(), entries.end(), PermitLess);
  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());
}

void PolicyLearner::Observe(const FiveTuple& flow) {
  ClassKey key{flow.dst, flow.proto, flow.dst_port};
  observed_[key].insert(flow.src);
  ++observed_flows_;
}

void PolicyLearner::ObserveAll(const std::vector<FiveTuple>& flows) {
  for (const FiveTuple& flow : flows) {
    Observe(flow);
  }
}

ReachabilityIntent PolicyLearner::Synthesize() const {
  ReachabilityIntent intent;
  for (const auto& [key, sources] : observed_) {
    std::vector<IpPrefix> hosts;
    hosts.reserve(sources.size());
    for (const IpAddress& src : sources) {
      hosts.push_back(IpPrefix::Host(src));
    }
    // Exact buddy aggregation: the cover's closure is exactly `sources`
    // (AggregatePrefixes merges only complete sibling pairs), so the
    // synthesized entry set is both sound and minimal.
    std::vector<IpPrefix> cover = AggregatePrefixes(hosts);
    std::vector<PermitEntry>& entries = intent.permits[key.dst];
    for (const IpPrefix& prefix : cover) {
      PermitEntry entry;
      entry.source = prefix;
      entry.dst_ports = PortRange::Single(key.port);
      entry.proto = key.proto;
      entries.push_back(entry);
    }
  }
  for (auto& [dst, entries] : intent.permits) {
    CanonicalizePermits(entries);
  }
  return intent;
}

std::vector<PolicyLearner::Drift> PolicyLearner::DetectDrift(
    const ReachabilityIntent& intent, DeclarativeCloud& cloud) {
  std::vector<Drift> drifts;
  for (const auto& [dst, desired] : intent.permits) {
    std::vector<PermitEntry> installed;
    Result<DeclarativeCloud::DestinationEdge> edge =
        cloud.DestinationEdgeOf(dst);
    if (edge.ok()) {
      if (const std::vector<PermitEntry>* master =
              edge->bank->MasterEntriesOf(dst)) {
        installed = *master;
      }
    }
    CanonicalizePermits(installed);

    Drift drift;
    drift.dst = dst;
    drift.desired = desired;  // already canonical from Synthesize()
    std::set_difference(desired.begin(), desired.end(), installed.begin(),
                        installed.end(), std::back_inserter(drift.missing),
                        PermitLess);
    std::set_difference(installed.begin(), installed.end(), desired.begin(),
                        desired.end(), std::back_inserter(drift.unexpected),
                        PermitLess);
    if (!drift.missing.empty() || !drift.unexpected.empty()) {
      drifts.push_back(std::move(drift));
    }
  }
  return drifts;
}

Status PolicyLearner::Reconcile(const std::vector<Drift>& drifts,
                                DeclarativeCloud& cloud) {
  for (const Drift& drift : drifts) {
    TN_RETURN_IF_ERROR(
        cloud.UpdatePermitList(drift.dst, drift.missing, drift.unexpected)
            .status());
  }
  return Status::Ok();
}

}  // namespace tenantnet
