// PolicyLearner: from observed flows to minimal permit lists, and from
// declared intent to drift deltas.
//
// The paper's complaint is that tenants encode *intent* ("my web tier talks
// to my database on 5432") into mechanism (SGs, ACLs, route tables) and can
// never get the intent back out. This layer closes the loop in the
// declarative world:
//
//   Observe(flow)* -> Synthesize() -> ReachabilityIntent
//
// Synthesize() aggregates the observed sources of each (dst, proto, port)
// traffic class into the minimal exact prefix cover (buddy-merging via
// AggregatePrefixes — the closure of the synthesized entries admits exactly
// the observed sources, nothing more), so the learned policy is sound
// (admits every observed flow) and minimal (AddressCount of the cover
// equals the number of distinct observed sources).
//
// DetectDrift() compares a declared intent against what the control plane
// believes is installed (EdgeFilterBank::MasterEntriesOf) and emits
// per-destination deltas; Reconcile() pushes them through the normal
// UpdatePermitList mutator — no side channel into the enforcement state.
// The comparison is syntactic over prefix-form entries: endpoints whose
// lists use group references are reported as drift (the learner manages
// prefix-form lists only).

#ifndef TENANTNET_SRC_REACH_POLICY_LEARNER_H_
#define TENANTNET_SRC_REACH_POLICY_LEARNER_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "src/core/api.h"

namespace tenantnet {

// Exact address count of a disjoint prefix set (Σ 2^(width-len), saturating
// for v6) — with AggregatePrefixes' output this equals the number of
// distinct observed sources iff the cover is minimal, which is how the
// property tests assert minimality without enumerating.
uint64_t AddressCount(const std::vector<IpPrefix>& prefixes);

// Declared reachability intent: per destination endpoint, the canonical
// (sorted, prefix-form) permit list that should be installed.
struct ReachabilityIntent {
  std::map<IpAddress, std::vector<PermitEntry>> permits;

  // Does the declared intent admit this flow? (Closure check, independent
  // of any installed state.)
  bool Admits(IpAddress src, IpAddress dst, uint16_t dst_port,
              Protocol proto) const;

  friend bool operator==(const ReachabilityIntent& a,
                         const ReachabilityIntent& b) = default;
};

// Sorts a permit list into the canonical form both Synthesize() and the
// drift comparison use: by (proto, port range, source prefix, group).
void CanonicalizePermits(std::vector<PermitEntry>& entries);

class PolicyLearner {
 public:
  // Records one observed flow (src must be the concrete source EIP; SIP
  // resolution happens before observation, as in the data plane).
  void Observe(const FiveTuple& flow);
  void ObserveAll(const std::vector<FiveTuple>& flows);

  size_t observed_flows() const { return observed_flows_; }
  size_t traffic_classes() const { return observed_.size(); }

  // The minimal sound intent for everything observed so far. Deterministic:
  // same observations (any order) -> identical intent.
  ReachabilityIntent Synthesize() const;

  // One destination's divergence between declared intent and installed
  // policy. `missing` must be added, `unexpected` removed, for the
  // installed list to equal `desired`.
  struct Drift {
    IpAddress dst;
    std::vector<PermitEntry> desired;
    std::vector<PermitEntry> missing;
    std::vector<PermitEntry> unexpected;
  };

  // Compares `intent` against the installed master lists of every intent
  // destination. Empty result == no drift.
  static std::vector<Drift> DetectDrift(const ReachabilityIntent& intent,
                                        DeclarativeCloud& cloud);

  // Applies the deltas through the normal mutators (UpdatePermitList), so
  // reconciliation pays the same fan-out/latency as any tenant update.
  static Status Reconcile(const std::vector<Drift>& drifts,
                          DeclarativeCloud& cloud);

 private:
  struct ClassKey {
    IpAddress dst;
    Protocol proto = Protocol::kTcp;
    uint16_t port = 0;

    friend bool operator<(const ClassKey& a, const ClassKey& b) {
      if (a.dst != b.dst) return a.dst < b.dst;
      if (a.proto != b.proto) return a.proto < b.proto;
      return a.port < b.port;
    }
  };

  std::map<ClassKey, std::set<IpAddress>> observed_;
  size_t observed_flows_ = 0;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_REACH_POLICY_LEARNER_H_
