// tn_reach: the reachability verifier ("can src reach dst, through which
// stages, and is that what I intended?").
//
// PR 3 made single-flow verdicts fast; this layer answers the tenant-level
// question on top of them, over *both* worlds:
//
//  * DeclarativeReachEngine walks the Table-2 state directly — EIP/SIP
//    bindings, instance liveness, and the compiled permit-list matchers at
//    the destination's enforcement edge — without evaluating traffic: no
//    SIP pick counter advances, no inspection counters move, no verdict
//    cache is touched. SIP destinations resolve existentially (`reachable`
//    = some healthy backend admits the flow) with a universal bound
//    (`all_backends`); EIP destinations are exact.
//  * BaselineReachEngine composes route tables, SG/ACL/DPI stages and TGW
//    FIBs by driving the fabric's uncached staged evaluator — the verdict
//    and ordered stage trace are the walk the baseline data plane performs.
//
// Both return a ReachVerdict whose stage trace reuses the interned
// via/deny-stage labels from PR 8 (RouteLabels() / DenyStages()), and both
// triage denials through a decision-tree evaluation (BasicDecisionNode over
// ReachFacts) into a remediation recommendation.
//
// The verifiers keep a pair set verified incrementally, keyed off the PR 3
// revision hooks: the declarative side dirties only pairs whose destination
// endpoint epoch (EdgeFilterBank::EndpointVerdictEpoch), domain group
// epoch, SIP config revision, endpoint-allocation revision or instance
// epoch moved, so permit churn re-verifies only the touched destinations;
// the baseline side keys on the fabric's coarse verdict_generation() and is
// deliberately all-or-nothing — the factorization asymmetry E12 measures.

#ifndef TENANTNET_SRC_REACH_REACH_H_
#define TENANTNET_SRC_REACH_REACH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/api.h"
#include "src/vnet/decision_tree.h"
#include "src/vnet/fabric.h"

namespace tenantnet {

// Facts a query engine collects while walking a pair; the triage decision
// tree maps them to a remediation recommendation when the pair is denied.
struct ReachFacts {
  bool src_usable = false;      // src exists, is running, and has an address
  bool dst_known = false;       // dst address is owned by some endpoint
  bool dst_is_sip = false;
  bool sip_has_healthy_backend = false;
  bool dst_running = false;
  bool filtered = false;        // denied by permit list / SG / ACL / firewall
  // Routing delivered the flow as far as the filters. Defaults true: flat
  // EIPs route unconditionally; only the baseline's route/gateway stages can
  // clear it.
  bool routed = true;
};

using ReachTriageNode = BasicDecisionNode<ReachFacts>;

// The deny-triage tree: the reach layer's use of the decision-tree
// evaluator. Leaves are remediation recommendations ("set_permit_list on
// the destination", "bind a healthy backend", ...).
std::unique_ptr<ReachTriageNode> BuildReachTriageTree();

// The answer to one CanReach(src, dst, proto, port) query.
struct ReachVerdict {
  bool reachable = false;
  // Ordered stage trace, interned in RouteLabels() (the PR-8 via labels).
  // For denied pairs the trace ends at the denying stage.
  std::vector<uint32_t> stages;
  // DenyStages() id of the denying stage; 0 when reachable.
  uint32_t deny_stage = 0;
  // SIP destinations: `reachable` is existential over healthy backends,
  // `all_backends` universal. Equal to `reachable` for EIP destinations.
  bool all_backends = false;
  // Triage-tree recommendation (empty when reachable).
  std::string remediation;

  friend bool operator==(const ReachVerdict& a,
                         const ReachVerdict& b) = default;

  // "sip-lb -> edge-filter@aws:us-east [DENY edge-filter]" — stage names
  // resolved through the interners, for repro lines and fingerprints.
  std::string ToString() const;
};

// --- Query engines ---------------------------------------------------------

class DeclarativeReachEngine {
 public:
  // Holds references; both must outlive the engine. `cloud` is mutated only
  // in the sense that lazily created enforcement domains may materialize —
  // no tenant-visible state changes, and no data-plane counter moves.
  DeclarativeReachEngine(CloudWorld& world, DeclarativeCloud& cloud)
      : world_(&world), cloud_(&cloud) {}

  ReachVerdict CanReach(InstanceId src, IpAddress dst, uint16_t dst_port,
                        Protocol proto) const;

 private:
  // Tail of the walk once dst is a concrete EIP. Appends to `verdict`.
  void ReachConcrete(IpAddress src_eip, IpAddress dst, uint16_t dst_port,
                     Protocol proto, ReachVerdict& verdict,
                     ReachFacts& facts) const;

  CloudWorld* world_;
  DeclarativeCloud* cloud_;
};

class BaselineReachEngine {
 public:
  explicit BaselineReachEngine(BaselineNetwork& net) : net_(&net) {}

  ReachVerdict CanReach(InstanceId src, InstanceId dst, uint16_t dst_port,
                        Protocol proto) const;

 private:
  BaselineNetwork* net_;
};

// --- Incremental verifiers --------------------------------------------------

// Stats for one verification sweep.
struct ReachSweepStats {
  size_t pairs = 0;
  size_t recomputed = 0;
  size_t reused = 0;
};

// Keeps a set of declarative (src instance, dst address) pairs verified.
// VerifyAll() recomputes everything; Revalidate() recomputes only pairs
// whose dependency key moved (see file comment) and must land on results
// byte-identical to a from-scratch verify — the differential property the
// reach tests assert and E12 times.
class DeclarativeReachVerifier {
 public:
  struct Pair {
    InstanceId src;
    IpAddress dst;
    uint16_t dst_port = 0;
    Protocol proto = Protocol::kTcp;
  };

  DeclarativeReachVerifier(CloudWorld& world, DeclarativeCloud& cloud)
      : world_(&world), cloud_(&cloud), engine_(world, cloud) {}

  // Replaces the pair set; all pairs start dirty.
  void SetPairs(std::vector<Pair> pairs);
  const std::vector<Pair>& pairs() const { return pairs_; }

  ReachSweepStats VerifyAll();
  ReachSweepStats Revalidate();

  // Verdicts aligned with pairs(); valid after a sweep.
  const std::vector<ReachVerdict>& verdicts() const { return verdicts_; }

  // Canonical serialization of (pair, verdict) rows with stage labels
  // resolved to names — the byte-identity oracle between Revalidate() and a
  // from-scratch VerifyAll().
  std::string Fingerprint() const;

 private:
  // Cheap dependency key per pair: epoch/revision lookups only, no matcher
  // walks. Monotone counters, so equality means "nothing it depends on
  // changed".
  struct DepKey {
    uint64_t endpoint_rev = 0;   // cloud endpoint allocation revision
    uint64_t instance_epoch = 0; // world instance liveness
    uint64_t sip_rev = 0;        // SIP binding/health (SIP dsts only)
    uint64_t dst_epoch = 0;      // Σ endpoint epochs of concrete dst EIPs
    uint64_t group_epoch = 0;    // Σ group epochs of involved banks
    bool valid = false;

    friend bool operator==(const DepKey& a, const DepKey& b) = default;
  };
  DepKey KeyFor(const Pair& pair) const;

  CloudWorld* world_;
  DeclarativeCloud* cloud_;
  DeclarativeReachEngine engine_;
  std::vector<Pair> pairs_;
  std::vector<ReachVerdict> verdicts_;
  std::vector<DepKey> keys_;
};

// The baseline counterpart over (src, dst) instance pairs. Its dependency
// scope is the fabric's coarse verdict generation: any config/instance/BGP
// change re-verifies every pair (deliberately — the baseline verdict is too
// entangled to factorize, which is the contrast E12 reports).
class BaselineReachVerifier {
 public:
  struct Pair {
    InstanceId src;
    InstanceId dst;
    uint16_t dst_port = 0;
    Protocol proto = Protocol::kTcp;
  };

  explicit BaselineReachVerifier(BaselineNetwork& net)
      : net_(&net), engine_(net) {}

  void SetPairs(std::vector<Pair> pairs);
  const std::vector<Pair>& pairs() const { return pairs_; }

  ReachSweepStats VerifyAll();
  ReachSweepStats Revalidate();

  const std::vector<ReachVerdict>& verdicts() const { return verdicts_; }
  std::string Fingerprint() const;

 private:
  BaselineNetwork* net_;
  BaselineReachEngine engine_;
  std::vector<Pair> pairs_;
  std::vector<ReachVerdict> verdicts_;
  uint64_t verified_gen_ = 0;
  bool verified_once_ = false;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_REACH_REACH_H_
