#include "src/reach/reach.h"

#include <algorithm>
#include <sstream>

#include "src/app/workload.h"
#include "src/routing/route_table.h"

namespace tenantnet {

namespace {

std::unique_ptr<ReachTriageNode> Leaf(std::string recommendation) {
  return std::make_unique<ReachTriageNode>(std::move(recommendation));
}

std::unique_ptr<ReachTriageNode> Ask(std::string question,
                                     ReachTriageNode::Predicate predicate,
                                     std::unique_ptr<ReachTriageNode> yes,
                                     std::unique_ptr<ReachTriageNode> no) {
  return std::make_unique<ReachTriageNode>(std::move(question),
                                           std::move(predicate),
                                           std::move(yes), std::move(no));
}

// The questions once we know the destination is a concrete, allocated
// endpoint (directly, or the SIP's representative backend). Shared by both
// the SIP and EIP branches, so it is built twice.
std::unique_ptr<ReachTriageNode> DeliveryTail() {
  return Ask(
      "Is the destination instance running?",
      [](const ReachFacts& f) { return f.dst_running; },
      Ask("Did a filtering stage (permit list / SG / ACL / DPI) deny the "
          "flow?",
          [](const ReachFacts& f) { return f.filtered; },
          Leaf("add the source to the destination's permit list "
               "(set_permit_list / update_permit_list, or the baseline's "
               "SG/ACL rules)"),
          Ask("Did routing carry the flow to the destination?",
              [](const ReachFacts& f) { return f.routed; },
              Leaf("no denying mechanism recorded — re-run the query"),
              Leaf("install a route toward the destination (route tables, "
                   "IGW/NAT, peering or a TGW attachment)"))),
      Leaf("start the destination instance (the provider's "
           "NotifyInstanceUp restores SIP health automatically)"));
}

const ReachTriageNode& TriageTree() {
  static const ReachTriageNode* tree = BuildReachTriageTree().release();
  return *tree;
}

uint32_t Via(const std::string& label) { return RouteLabels().Intern(label); }

// Marks the verdict denied at `stage`: the trace ends there, and the deny
// stage id comes from the same interner the workload counters use.
void Deny(ReachVerdict& verdict, const std::string& stage) {
  verdict.reachable = false;
  verdict.all_backends = false;
  verdict.deny_stage = DenyStage(stage);
  verdict.stages.push_back(Via(stage));
}

void FinishTriage(ReachVerdict& verdict, const ReachFacts& facts) {
  if (!verdict.reachable) {
    verdict.remediation = TriageTree().Decide(facts).recommendation;
  }
}

}  // namespace

std::unique_ptr<ReachTriageNode> BuildReachTriageTree() {
  return Ask(
      "Is the source usable (running, with an EIP)?",
      [](const ReachFacts& f) { return f.src_usable; },
      Ask("Does any endpoint own the destination address?",
          [](const ReachFacts& f) { return f.dst_known; },
          Ask("Is the destination a SIP?",
              [](const ReachFacts& f) { return f.dst_is_sip; },
              Ask("Does the SIP have a healthy backend?",
                  [](const ReachFacts& f) { return f.sip_has_healthy_backend; },
                  DeliveryTail(),
                  Leaf("bind a healthy backend to the SIP (bind, or "
                       "NotifyInstanceUp for one that died)")),
              DeliveryTail()),
          Leaf("the destination address is unallocated — request_eip / "
               "request_sip it first")),
      Leaf("start the source instance and request_eip for it"));
}

std::string ReachVerdict::ToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < stages.size(); ++i) {
    if (i > 0) {
      out << " -> ";
    }
    out << RouteLabels().Name(stages[i]);
  }
  if (reachable) {
    out << (all_backends ? " [OK all-backends]" : " [OK some-backends]");
  } else {
    out << " [DENY " << DenyStages().Name(deny_stage) << "]";
    if (!remediation.empty()) {
      out << " fix: " << remediation;
    }
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Declarative engine.
// ---------------------------------------------------------------------------

void DeclarativeReachEngine::ReachConcrete(IpAddress src_eip, IpAddress dst,
                                           uint16_t dst_port, Protocol proto,
                                           ReachVerdict& verdict,
                                           ReachFacts& facts) const {
  const EipRecord* record = cloud_->FindEip(dst);
  if (record == nullptr) {
    facts.dst_known = false;
    Deny(verdict, "no-such-endpoint");
    return;
  }
  facts.dst_known = true;

  const Instance* dst_inst = world_->FindInstance(record->instance);
  if (dst_inst == nullptr || !dst_inst->running) {
    facts.dst_running = false;
    Deny(verdict, "instance-down");
    return;
  }
  facts.dst_running = true;

  Result<DeclarativeCloud::DestinationEdge> edge =
      cloud_->DestinationEdgeOf(dst);
  if (!edge.ok()) {
    Deny(verdict, "no-such-endpoint");
    return;
  }
  verdict.stages.push_back(Via("edge-filter@" + edge->where));

  // The same admission question the data plane asks, minus the traffic: the
  // compiled matcher at the destination's enforcement edge, bypassing the
  // verdict cache so the query leaves no data-plane trace. src_port is
  // irrelevant to permit matching.
  FiveTuple flow;
  flow.src = src_eip;
  flow.dst = dst;
  flow.dst_port = dst_port;
  flow.proto = proto;
  if (!edge->bank->AdmitsUncached(edge->edge_index, flow)) {
    facts.filtered = true;
    Deny(verdict, "edge-filter");
    return;
  }
  verdict.reachable = true;
  verdict.stages.push_back(Via("deliver"));
}

ReachVerdict DeclarativeReachEngine::CanReach(InstanceId src, IpAddress dst,
                                              uint16_t dst_port,
                                              Protocol proto) const {
  ReachVerdict verdict;
  ReachFacts facts;

  const Instance* src_inst = world_->FindInstance(src);
  if (src_inst == nullptr || !src_inst->running) {
    Deny(verdict, "src-down");
    FinishTriage(verdict, facts);
    return verdict;
  }
  std::optional<IpAddress> src_eip = cloud_->EipOf(src);
  if (!src_eip.has_value()) {
    Deny(verdict, "no-eip");
    FinishTriage(verdict, facts);
    return verdict;
  }
  facts.src_usable = true;
  verdict.stages.push_back(Via("src-eip"));

  if (cloud_->IsSip(dst)) {
    facts.dst_is_sip = true;
    facts.dst_known = true;
    verdict.stages.push_back(Via("sip-lb"));

    // Side-effect-free enumeration: Bindings(), not Resolve() — the data
    // plane's pick counter must not move because someone asked a question.
    Result<std::vector<SipLoadBalancer::Binding>> bindings =
        cloud_->sip_lb().Bindings(dst);
    std::vector<IpAddress> healthy;
    if (bindings.ok()) {
      for (const SipLoadBalancer::Binding& b : *bindings) {
        if (b.healthy) {
          healthy.push_back(b.eip);
        }
      }
    }
    if (healthy.empty()) {
      facts.sip_has_healthy_backend = false;
      Deny(verdict, "sip");
      FinishTriage(verdict, facts);
      return verdict;
    }
    facts.sip_has_healthy_backend = true;

    // ∃-semantics with a ∀-bound: walk every healthy backend. The reported
    // trace is the first reachable backend's walk (or the first backend's,
    // when none reach) — deterministic in binding order.
    size_t reached = 0;
    bool have_repr = false;
    ReachVerdict repr;
    ReachFacts repr_facts;
    for (const IpAddress& backend : healthy) {
      ReachVerdict walk = verdict;   // shared prefix: src-eip -> sip-lb
      ReachFacts walk_facts = facts;
      ReachConcrete(*src_eip, backend, dst_port, proto, walk, walk_facts);
      if (walk.reachable) {
        ++reached;
      }
      if (!have_repr || (walk.reachable && !repr.reachable)) {
        repr = std::move(walk);
        repr_facts = walk_facts;
        have_repr = true;
      }
    }
    verdict = std::move(repr);
    facts = repr_facts;
    verdict.reachable = reached > 0;
    verdict.all_backends = reached == healthy.size();
    if (!verdict.reachable) {
      // The representative walk already recorded its deny stage.
      verdict.all_backends = false;
    }
    FinishTriage(verdict, facts);
    return verdict;
  }

  ReachConcrete(*src_eip, dst, dst_port, proto, verdict, facts);
  verdict.all_backends = verdict.reachable;
  FinishTriage(verdict, facts);
  return verdict;
}

// ---------------------------------------------------------------------------
// Baseline engine.
// ---------------------------------------------------------------------------

namespace {

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

// Maps the fabric's drop-stage vocabulary onto the triage facts.
void BaselineFactsFromDrop(const std::string& stage, ReachFacts& facts) {
  if (StartsWith(stage, "sg") || StartsWith(stage, "acl") ||
      StartsWith(stage, "dpi") || StartsWith(stage, "firewall")) {
    facts.filtered = true;
  } else if (StartsWith(stage, "route") || StartsWith(stage, "tgw") ||
             StartsWith(stage, "peering") || StartsWith(stage, "igw") ||
             StartsWith(stage, "nat") || StartsWith(stage, "no-")) {
    facts.routed = false;
  }
}

}  // namespace

ReachVerdict BaselineReachEngine::CanReach(InstanceId src, InstanceId dst,
                                           uint16_t dst_port,
                                           Protocol proto) const {
  ReachVerdict verdict;
  ReachFacts facts;
  facts.dst_known = true;  // instance-addressed query

  Result<BaselineDelivery> result =
      net_->EvaluateUncached(src, dst, dst_port, proto);
  if (!result.ok()) {
    // The fabric refuses up front when either instance is unknown or down;
    // the message distinguishes the two.
    const std::string& msg = result.status().message();
    if (msg.find("unknown") != std::string::npos) {
      facts.dst_known = false;
      Deny(verdict, "no-such-endpoint");
    } else {
      facts.dst_running = false;
      facts.src_usable = true;
      Deny(verdict, "instance-down");
    }
    FinishTriage(verdict, facts);
    return verdict;
  }
  facts.src_usable = true;
  facts.dst_running = true;

  const BaselineDelivery& d = *result;
  for (const std::string& hop : d.logical_hops) {
    verdict.stages.push_back(Via(hop));
  }
  if (d.delivered) {
    verdict.reachable = true;
    verdict.all_backends = true;  // instance destinations are exact
    verdict.stages.push_back(Via("deliver"));
    return verdict;
  }
  const std::string stage = d.drop_stage.empty() ? "denied" : d.drop_stage;
  BaselineFactsFromDrop(stage, facts);
  Deny(verdict, stage);
  FinishTriage(verdict, facts);
  return verdict;
}

// ---------------------------------------------------------------------------
// Declarative incremental verifier.
// ---------------------------------------------------------------------------

void DeclarativeReachVerifier::SetPairs(std::vector<Pair> pairs) {
  pairs_ = std::move(pairs);
  verdicts_.assign(pairs_.size(), ReachVerdict{});
  keys_.assign(pairs_.size(), DepKey{});
}

DeclarativeReachVerifier::DepKey DeclarativeReachVerifier::KeyFor(
    const Pair& pair) const {
  DepKey key;
  key.valid = true;
  key.endpoint_rev = cloud_->endpoint_revision();
  key.instance_epoch = world_->instance_state_epoch();

  // Hash lookups only — this must stay far cheaper than a verify, or the
  // incremental sweep has no headroom to win.
  auto fold_dst = [&](IpAddress addr) {
    Result<DeclarativeCloud::DestinationEdge> edge =
        cloud_->DestinationEdgeOf(addr);
    if (edge.ok()) {
      key.dst_epoch += edge->bank->EndpointVerdictEpoch(addr);
      key.group_epoch += edge->bank->global_verdict_epoch();
    }
  };
  if (cloud_->IsSip(pair.dst)) {
    // Coarser on purpose: the balancer's revision covers binding/health
    // churn on *any* SIP. Permit churn — the common mutation — still keys
    // per destination endpoint below.
    key.sip_rev = cloud_->sip_lb().config_revision();
    Result<std::vector<SipLoadBalancer::Binding>> bindings =
        cloud_->sip_lb().Bindings(pair.dst);
    if (bindings.ok()) {
      for (const SipLoadBalancer::Binding& b : *bindings) {
        fold_dst(b.eip);
      }
    }
  } else {
    fold_dst(pair.dst);
  }
  return key;
}

ReachSweepStats DeclarativeReachVerifier::VerifyAll() {
  ReachSweepStats stats;
  stats.pairs = pairs_.size();
  for (size_t i = 0; i < pairs_.size(); ++i) {
    const Pair& p = pairs_[i];
    keys_[i] = KeyFor(p);
    verdicts_[i] = engine_.CanReach(p.src, p.dst, p.dst_port, p.proto);
    ++stats.recomputed;
  }
  return stats;
}

ReachSweepStats DeclarativeReachVerifier::Revalidate() {
  ReachSweepStats stats;
  stats.pairs = pairs_.size();
  for (size_t i = 0; i < pairs_.size(); ++i) {
    const Pair& p = pairs_[i];
    DepKey key = KeyFor(p);
    if (keys_[i].valid && key == keys_[i]) {
      ++stats.reused;
      continue;
    }
    keys_[i] = key;
    verdicts_[i] = engine_.CanReach(p.src, p.dst, p.dst_port, p.proto);
    ++stats.recomputed;
  }
  return stats;
}

std::string DeclarativeReachVerifier::Fingerprint() const {
  std::ostringstream out;
  for (size_t i = 0; i < pairs_.size(); ++i) {
    const Pair& p = pairs_[i];
    out << "src=" << p.src.value() << " dst=" << p.dst.ToString()
        << " port=" << p.dst_port << " proto=" << static_cast<int>(p.proto)
        << " :: " << verdicts_[i].ToString() << "\n";
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// Baseline incremental verifier.
// ---------------------------------------------------------------------------

void BaselineReachVerifier::SetPairs(std::vector<Pair> pairs) {
  pairs_ = std::move(pairs);
  verdicts_.assign(pairs_.size(), ReachVerdict{});
  verified_once_ = false;
  verified_gen_ = 0;
}

ReachSweepStats BaselineReachVerifier::VerifyAll() {
  ReachSweepStats stats;
  stats.pairs = pairs_.size();
  verified_gen_ = net_->verdict_generation();
  for (size_t i = 0; i < pairs_.size(); ++i) {
    const Pair& p = pairs_[i];
    verdicts_[i] = engine_.CanReach(p.src, p.dst, p.dst_port, p.proto);
    ++stats.recomputed;
  }
  verified_once_ = true;
  return stats;
}

ReachSweepStats BaselineReachVerifier::Revalidate() {
  const uint64_t gen = net_->verdict_generation();
  if (verified_once_ && gen == verified_gen_) {
    ReachSweepStats stats;
    stats.pairs = pairs_.size();
    stats.reused = pairs_.size();
    return stats;
  }
  // Any change anywhere re-verifies everything: the baseline verdict
  // entangles route tables, SG/ACL state, gateway wiring and BGP state with
  // no per-pair scoping to key on.
  return VerifyAll();
}

std::string BaselineReachVerifier::Fingerprint() const {
  std::ostringstream out;
  for (size_t i = 0; i < pairs_.size(); ++i) {
    const Pair& p = pairs_[i];
    out << "src=" << p.src.value() << " dst=" << p.dst.value()
        << " port=" << p.dst_port << " proto=" << static_cast<int>(p.proto)
        << " :: " << verdicts_[i].ToString() << "\n";
  }
  return out.str();
}

}  // namespace tenantnet
