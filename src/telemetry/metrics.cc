#include "src/telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace tenantnet {

namespace {
// Smallest representable bucket bound; samples at or below land in bucket 0.
constexpr double kFloor = 1e-9;
}  // namespace

Histogram::Histogram(double growth)
    : growth_(growth), log_growth_(std::log(growth)) {}

Histogram::Histogram(const Histogram& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  growth_ = other.growth_;
  log_growth_ = other.log_growth_;
  buckets_ = other.buckets_;
  count_ = other.count_;
  sum_ = other.sum_;
  min_ = other.min_;
  max_ = other.max_;
  mean_run_ = other.mean_run_;
  m2_run_ = other.m2_run_;
}

Histogram& Histogram::operator=(const Histogram& other) {
  if (this == &other) {
    return *this;
  }
  // Consistent order (lock the source first after a snapshot copy) is
  // unnecessary here: assignment between histograms under concurrent
  // recording is not a supported pattern; this exists for setup-time
  // copies. Take a snapshot, then install it.
  Histogram snapshot(other);
  std::lock_guard<std::mutex> lock(mu_);
  growth_ = snapshot.growth_;
  log_growth_ = snapshot.log_growth_;
  buckets_ = std::move(snapshot.buckets_);
  count_ = snapshot.count_;
  sum_ = snapshot.sum_;
  min_ = snapshot.min_;
  max_ = snapshot.max_;
  mean_run_ = snapshot.mean_run_;
  m2_run_ = snapshot.m2_run_;
  return *this;
}

size_t Histogram::BucketFor(double sample) const {
  if (sample <= kFloor) {
    return 0;
  }
  double idx = std::log(sample / kFloor) / log_growth_;
  return static_cast<size_t>(idx) + 1;
}

void Histogram::Record(double sample) {
  if (sample < 0) {
    sample = 0;
  }
  size_t idx = BucketFor(sample);
  std::lock_guard<std::mutex> lock(mu_);
  if (idx >= buckets_.size()) {
    buckets_.resize(idx + 1, 0);
  }
  ++buckets_[idx];
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
  // Welford update.
  double delta = sample - mean_run_;
  mean_run_ += delta / static_cast<double>(count_);
  m2_run_ += delta * (sample - mean_run_);
}

uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

double Histogram::min() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ ? min_ : 0;
}

double Histogram::max() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ ? max_ : 0;
}

double Histogram::mean() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_ ? sum_ / static_cast<double>(count_) : 0;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_;
}

double Histogram::QuantileLocked(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) {
      if (i == 0) {
        return min_;
      }
      // Upper bound of bucket i, clamped to the observed extrema.
      double bound = kFloor * std::pow(growth_, static_cast<double>(i));
      return std::clamp(bound, min_, max_);
    }
  }
  return max_;
}

double Histogram::Quantile(double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  return QuantileLocked(q);
}

double Histogram::StdDev() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ < 2) {
    return 0;
  }
  return std::sqrt(m2_run_ / static_cast<double>(count_));
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  buckets_.clear();
  count_ = 0;
  sum_ = 0;
  min_ = max_ = 0;
  mean_run_ = 0;
  m2_run_ = 0;
}

std::string Histogram::Summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os.precision(4);
  double mean = count_ ? sum_ / static_cast<double>(count_) : 0;
  double max = count_ ? max_ : 0;
  os << "n=" << count_ << " mean=" << mean
     << " p50=" << QuantileLocked(0.50) << " p95=" << QuantileLocked(0.95)
     << " p99=" << QuantileLocked(0.99) << " max=" << max;
  return os.str();
}

std::string MetricRegistry::Report() const {
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << name << " = " << c.value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << name << " = " << g.value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << name << " : " << h.Summary() << "\n";
  }
  return os.str();
}

void MetricRegistry::Reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace tenantnet
