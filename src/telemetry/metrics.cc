#include "src/telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace tenantnet {

namespace {
// Smallest representable bucket bound; samples at or below land in bucket 0.
constexpr double kFloor = 1e-9;
}  // namespace

Histogram::Histogram(double growth)
    : growth_(growth), log_growth_(std::log(growth)) {}

size_t Histogram::BucketFor(double sample) const {
  if (sample <= kFloor) {
    return 0;
  }
  double idx = std::log(sample / kFloor) / log_growth_;
  return static_cast<size_t>(idx) + 1;
}

void Histogram::Record(double sample) {
  if (sample < 0) {
    sample = 0;
  }
  size_t idx = BucketFor(sample);
  if (idx >= buckets_.size()) {
    buckets_.resize(idx + 1, 0);
  }
  ++buckets_[idx];
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
  // Welford update.
  double delta = sample - mean_run_;
  mean_run_ += delta / static_cast<double>(count_);
  m2_run_ += delta * (sample - mean_run_);
}

double Histogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) {
      if (i == 0) {
        return min_;
      }
      // Upper bound of bucket i, clamped to the observed extrema.
      double bound = kFloor * std::pow(growth_, static_cast<double>(i));
      return std::clamp(bound, min_, max_);
    }
  }
  return max_;
}

double Histogram::StdDev() const {
  if (count_ < 2) {
    return 0;
  }
  return std::sqrt(m2_run_ / static_cast<double>(count_));
}

void Histogram::Reset() {
  buckets_.clear();
  count_ = 0;
  sum_ = 0;
  min_ = max_ = 0;
  mean_run_ = 0;
  m2_run_ = 0;
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  os.precision(4);
  os << "n=" << count_ << " mean=" << mean() << " p50=" << P50()
     << " p95=" << P95() << " p99=" << P99() << " max=" << max();
  return os.str();
}

std::string MetricRegistry::Report() const {
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    os << name << " = " << c.value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    os << name << " = " << g.value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << name << " : " << h.Summary() << "\n";
  }
  return os.str();
}

void MetricRegistry::Reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace tenantnet
