// Metrics: counters, gauges, and streaming histograms.
//
// Experiments report latency percentiles, goodput, table sizes etc.; these
// types are how modules expose them. Histogram uses exponential buckets
// (configurable base) so p50/p95/p99 queries are O(#buckets) with bounded
// relative error, which is the right trade for million-sample benchmark
// runs. Exact min/max/mean are tracked on the side.
//
// Thread safety: Counter and Gauge are lock-free atomics; Histogram guards
// its bucket state with a mutex. Concurrent recording from shard-executor
// worker threads is safe and loses no samples (totals are exact; only the
// Welford mean/M2 interleaving is order-dependent, which matters to no
// consumer). Registry lookups (GetCounter etc.) are NOT synchronized —
// create metrics before spawning recorders, which is what every module
// here does.

#ifndef TENANTNET_SRC_TELEMETRY_METRICS_H_
#define TENANTNET_SRC_TELEMETRY_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace tenantnet {

// Monotonic event count. Lock-free; safe to increment from any thread.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter& other) : value_(other.value()) {}
  Counter& operator=(const Counter& other) {
    value_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }

  void Increment(uint64_t by = 1) {
    value_.fetch_add(by, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time level (table sizes, active flows, queue depths).
// Lock-free; safe to Set/Add from any thread.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge& other) : value_(other.value()) {}
  Gauge& operator=(const Gauge& other) {
    value_.store(other.value(), std::memory_order_relaxed);
    return *this;
  }

  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) {
    // C++20 atomic<double>::fetch_add: no sample ever lost to a torn
    // read-modify-write, so concurrent Add()s sum exactly.
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

// Streaming histogram over non-negative samples. Mutex-guarded: concurrent
// Record()s never lose samples and readers see consistent snapshots.
class Histogram {
 public:
  // `growth` is the bucket width ratio; 1.05 gives ~5% relative error.
  explicit Histogram(double growth = 1.05);

  // Copyable so it can live by value in registries/maps; copies snapshot
  // the source under its lock.
  Histogram(const Histogram& other);
  Histogram& operator=(const Histogram& other);

  void Record(double sample);

  uint64_t count() const;
  double min() const;
  double max() const;
  double mean() const;
  double sum() const;

  // Value at quantile q in [0, 1]; approximate (bucket upper bound).
  double Quantile(double q) const;
  double P50() const { return Quantile(0.50); }
  double P95() const { return Quantile(0.95); }
  double P99() const { return Quantile(0.99); }

  // Population standard deviation (Welford).
  double StdDev() const;

  void Reset();

  // "n=... mean=... p50=... p95=... p99=... max=..." for bench output.
  std::string Summary() const;

 private:
  // Bucket index for a sample (0 reserved for samples <= smallest bound).
  size_t BucketFor(double sample) const;
  double QuantileLocked(double q) const;

  mutable std::mutex mu_;
  double growth_;
  double log_growth_;
  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  double mean_run_ = 0;   // Welford running mean
  double m2_run_ = 0;     // Welford running M2
};

// Records wall-clock microseconds elapsed over its scope into a Histogram.
// For instrumenting hot paths (e.g. FlowSim reallocation cost): wall time is
// observability only and never feeds back into simulated time, so runs stay
// deterministic.
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(Histogram& hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimerUs() {
    auto elapsed = std::chrono::steady_clock::now() - start_;
    hist_.Record(
        std::chrono::duration<double, std::micro>(elapsed).count());
  }
  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;

 private:
  Histogram& hist_;
  std::chrono::steady_clock::time_point start_;
};

// Named metric registry so an experiment can dump everything it touched.
// Lookups mutate the maps and are main-thread-only; the metric objects
// handed out stay valid (std::map nodes are stable) and are themselves
// safe to record into from any thread.
class MetricRegistry {
 public:
  Counter& GetCounter(const std::string& name) { return counters_[name]; }
  Gauge& GetGauge(const std::string& name) { return gauges_[name]; }
  Histogram& GetHistogram(const std::string& name) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      it = histograms_.try_emplace(name).first;
    }
    return it->second;
  }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  // Multi-line human-readable dump, sorted by name.
  std::string Report() const;

  void Reset();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_TELEMETRY_METRICS_H_
