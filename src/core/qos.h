// QoS: per-tenant regional egress bandwidth quotas (§4 QoS).
//
// set_qos(region, bandwidth) promises a tenant an aggregate egress rate for
// a region. The provider enforces it with *distributed* rate limiting, in
// the spirit of the work the paper cites (Raghavan et al. DRL, EyeQ, BwE):
// a token bucket per enforcement point (one per zone), with a periodic
// coordination epoch that re-divides the regional quota across points
// proportionally to an EWMA of each point's recent demand. A point with no
// demand keeps a small floor share so new traffic can start before the next
// epoch.
//
// E4c reads the knobs this exposes: enforcement accuracy (admitted vs
// quota), convergence epochs after a demand shift, and coordination
// message counts versus the number of points and tenants.

#ifndef TENANTNET_SRC_CORE_QOS_H_
#define TENANTNET_SRC_CORE_QOS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/cloud/world.h"
#include "src/common/ids.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/net/flow.h"
#include "src/sim/flow_surface.h"

namespace tenantnet {

// Classic token bucket over simulated time.
class TokenBucket {
 public:
  TokenBucket(double rate_bps, double burst_bits)
      : rate_bps_(rate_bps), burst_bits_(burst_bits), tokens_(burst_bits) {}

  // Changing the rate keeps accumulated tokens (clamped to the burst).
  void SetRate(double rate_bps, SimTime now);
  double rate_bps() const { return rate_bps_; }

  void SetBurst(double burst_bits) {
    burst_bits_ = burst_bits;
    tokens_ = std::min(tokens_, burst_bits_);
  }

  // Consumes `bits` if available after refill; all-or-nothing.
  bool TryConsume(double bits, SimTime now);

  double AvailableBits(SimTime now);

 private:
  void Refill(SimTime now);

  double rate_bps_;
  double burst_bits_;
  double tokens_;
  SimTime last_refill_;
};

// Which portion of a tenant's egress consumes the reserved bandwidth —
// the extension the §4 QoS footnote anticipates ("allow the tenant to
// indicate what portions of their traffic should consume this reserved
// bandwidth"). Default-constructed selector matches everything.
struct QosSelector {
  IpPrefix dst_prefix = IpPrefix::Any(IpFamily::kIpv4);
  PortRange dst_ports = PortRange::Any();
  Protocol proto = Protocol::kAny;

  bool Matches(const FiveTuple& flow) const {
    if (proto != Protocol::kAny && proto != flow.proto) {
      return false;
    }
    return dst_prefix.Contains(flow.dst) && dst_ports.Contains(flow.dst_port);
  }
};

struct QuotaParams {
  SimDuration epoch = SimDuration::Millis(100);  // coordination period
  double ewma_alpha = 0.3;       // demand smoothing per epoch
  double min_share_fraction = 0.02;  // floor share per idle point
  double burst_seconds = 0.05;   // bucket depth, as seconds of share rate
};

class EgressQuotaManager {
 public:
  explicit EgressQuotaManager(QuotaParams params = {});

  // Registers an enforcement point for a region; returns its index within
  // the region. Typically one per zone.
  size_t RegisterPoint(RegionId region, std::string name);
  size_t PointCount(RegionId region) const;

  // set_qos: the tenant's regional egress allowance. The optional selector
  // scopes which traffic the reservation applies to (extension).
  Status SetQuota(TenantId tenant, RegionId region, double bps, SimTime now,
                  std::optional<QosSelector> selector = std::nullopt);
  Result<double> Quota(TenantId tenant, RegionId region) const;

  // Data path at one enforcement point: admit `bits` of egress?
  // Also accumulates offered demand for the next epoch's re-division.
  bool TryConsume(TenantId tenant, RegionId region, size_t point,
                  double bits, SimTime now);

  // Flow-aware variant: traffic outside the quota's selector neither
  // consumes nor is limited by the reservation (it competes best-effort).
  bool TryConsumeFlow(TenantId tenant, RegionId region, size_t point,
                      const FiveTuple& flow, double bits, SimTime now);
  // True if the flow falls under the (tenant, region) reservation.
  bool IsReserved(TenantId tenant, RegionId region,
                  const FiveTuple& flow) const;

  // Current share (bps) a point holds for a tenant's quota.
  Result<double> ShareOf(TenantId tenant, RegionId region, size_t point) const;

  // Runs one coordination epoch across all quotas: converts accumulated
  // offered bits to demand rates, EWMA-smooths, re-divides every quota.
  // With a FlowSim attached, every registered flow's rate cap is updated
  // from its point's new share inside ONE batched reallocation (see
  // FlowSim::Batch) instead of one water-filling pass per flow.
  void RunEpoch(SimTime now);

  // --- Data-plane coupling (optional) ---------------------------------------
  // Attaches the fluid simulator so re-division acts on live flows. The
  // FlowSim must outlive this manager (or be detached with nullptr).
  void AttachFlowSim(FlowControlSurface* sim) { flow_sim_ = sim; }

  // Registers a live flow under (tenant, region, point). The point's share
  // is split equally across its registered flows and applied as FlowSim
  // rate caps — immediately on (un)registration and again at every epoch.
  // Unregistering lifts the departing flow's cap (it returns to unmanaged
  // max-min sharing). Flows that completed or were cancelled are pruned
  // automatically.
  Status RegisterFlow(TenantId tenant, RegionId region, size_t point,
                      FlowId flow);
  Status UnregisterFlow(TenantId tenant, RegionId region, size_t point,
                        FlowId flow);

  // --- Metrics ---------------------------------------------------------------
  uint64_t coordination_messages() const { return messages_; }
  uint64_t epochs_run() const { return epochs_; }
  // Bits admitted for a tenant+region since SetQuota (accuracy numerator).
  double AdmittedBits(TenantId tenant, RegionId region) const;
  double OfferedBits(TenantId tenant, RegionId region) const;

 private:
  struct PointState {
    std::string name;
    TokenBucket bucket{0, 0};
    double ewma_demand_bps = 0;
    double offered_bits_epoch = 0;  // since last epoch
    double admitted_bits = 0;
    double offered_bits = 0;
    std::vector<FlowId> flows;  // live flows capped by this point's share
  };
  struct QuotaState {
    double quota_bps = 0;
    std::vector<PointState> points;
    SimTime created;
    std::optional<QosSelector> selector;
  };

  using Key = std::pair<uint64_t, uint64_t>;  // (tenant, region)
  static Key MakeKey(TenantId tenant, RegionId region) {
    return {tenant.value(), region.value()};
  }

  void Redivide(QuotaState& state, SimTime now, SimDuration elapsed);

  // Prunes dead flows and re-applies the point's share as equal-split rate
  // caps. Caller is responsible for holding a FlowSim batch scope.
  void ApplyPointCaps(PointState& point);

  QuotaParams params_;
  FlowControlSurface* flow_sim_ = nullptr;
  std::map<RegionId, std::vector<std::string>> region_points_;
  std::map<Key, QuotaState> quotas_;
  SimTime last_epoch_;
  uint64_t messages_ = 0;
  uint64_t epochs_ = 0;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_CORE_QOS_H_
