// Intent deployment: from an application's service graph to API calls.
//
// The paper's larger thesis is that tenants should express *end-to-end
// goals*, not network mechanics. For service-centric applications the
// goals are already written down: the services, their ports, and who calls
// whom. IntentDeployer turns exactly that description into the Table 2
// calls — one EIP per instance, one endpoint group per service, permit
// lists derived from the call graph (group references, so scaling a
// service is one membership call), and a SIP per multi-instance service.
//
// This is the missing glue a service mesh provides today at L7, pushed
// down to the provider's L3/L4: the tenant writes an AppSpec; nothing else.

#ifndef TENANTNET_SRC_CORE_INTENT_H_
#define TENANTNET_SRC_CORE_INTENT_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/core/api.h"

namespace tenantnet {

// One service tier.
struct ServiceSpec {
  std::string name;
  std::vector<InstanceId> instances;
  uint16_t port = 443;
  Protocol proto = Protocol::kTcp;
  // Public services accept the world on their port (e.g. a web frontend).
  bool public_facing = false;
  // Multi-instance services get a SIP from this provider; single-instance
  // or invalid-provider services are addressed by their one EIP.
  ProviderId sip_provider;
};

// "`caller` invokes `callee`" — one edge of the application call graph.
struct CallEdge {
  std::string caller;
  std::string callee;
};

struct AppSpec {
  TenantId tenant;
  std::vector<ServiceSpec> services;
  std::vector<CallEdge> calls;
};

// Everything the deployment produced, addressed by service name.
struct DeployedApp {
  struct ServiceHandles {
    EndpointGroupId group;
    std::optional<IpAddress> sip;
    std::map<uint64_t, IpAddress> eip_by_instance;  // InstanceId.value()
  };
  std::map<std::string, ServiceHandles> services;

  // The address a caller should dial for a service: its SIP if it has one,
  // otherwise its single instance's EIP.
  Result<IpAddress> AddressOf(const std::string& service) const;
  Result<IpAddress> EipOf(const std::string& service,
                          InstanceId instance) const;
};

// The declared reachability intent of a deployed application, spelled out
// as concrete flows: for every call edge, each caller instance's EIP must
// reach each callee instance's EIP on the callee's service port. This is
// the ground truth the reach layer's PolicyLearner observes and the drift
// detector compares installed policy against — derived from the same
// AppSpec the deployer turned into permit lists, but independently of what
// actually got installed.
std::vector<FiveTuple> ExpectedFlows(const AppSpec& app,
                                     const DeployedApp& deployed);

class IntentDeployer {
 public:
  explicit IntentDeployer(DeclarativeCloud& cloud) : cloud_(&cloud) {}

  // Deploys the whole application. Fails atomically-ish: on error the
  // partially created state is left in place (the caller owns cleanup, as
  // with any control plane) and the error says what failed.
  Result<DeployedApp> Deploy(const AppSpec& app);

  // Scales a deployed service by one instance: request_eip + group
  // membership (+ bind when the service has a SIP). Every permit list that
  // references the service follows automatically.
  Status AddInstance(DeployedApp& app, const AppSpec& spec,
                     const std::string& service, InstanceId instance);

  // Removes one instance: unbind + group removal + release.
  Status RemoveInstance(DeployedApp& app, const std::string& service,
                        InstanceId instance);

 private:
  const ServiceSpec* FindSpec(const AppSpec& app,
                              const std::string& name) const;

  DeclarativeCloud* cloud_;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_CORE_INTENT_H_
