#include "src/core/edge_filter.h"

#include <algorithm>

namespace tenantnet {

EdgeFilterBank::EdgeFilterBank(std::string domain, EventQueue* queue,
                               uint64_t rng_seed, EdgeFilterParams params)
    : domain_(std::move(domain)), queue_(queue), rng_(rng_seed),
      params_(params) {}

size_t EdgeFilterBank::AddEdge(const std::string& name) {
  edges_.push_back(EdgeState{name, {}, {}, 0});
  return edges_.size() - 1;
}

SimDuration EdgeFilterBank::SampleDeliveryLatency() {
  SimDuration latency =
      params_.install_base +
      SimDuration::Seconds(rng_.NextExponential(
          1.0 / std::max(1e-9, params_.install_extra_mean.ToSeconds())));
  if (!degraded_) {
    return latency;
  }
  // Each attempt (original and every retransmit) drops independently; the
  // loop resolves the whole retry chain now so the eventual apply time is a
  // pure function of RNG state at send time. The attempt cap keeps a
  // drop_prob of 1.0 finite (delivery after the worst-case chain).
  for (int attempt = 0;
       attempt < 64 && rng_.NextBool(params_.degraded_drop_prob); ++attempt) {
    ++messages_dropped_;
    ++retransmissions_;
    ++messages_;  // the retransmit is one more control-plane message
    latency += params_.degraded_retransmit;
  }
  return latency + params_.degraded_extra;
}

SimTime EdgeFilterBank::UpdatePermitList(
    IpAddress endpoint, std::vector<PermitEntry> add,
    const std::vector<PermitEntry>& remove) {
  std::vector<PermitEntry> merged;
  auto it = latest_entries_.find(endpoint);
  if (it != latest_entries_.end()) {
    for (const PermitEntry& entry : it->second) {
      if (std::find(remove.begin(), remove.end(), entry) == remove.end()) {
        merged.push_back(entry);
      }
    }
  }
  for (PermitEntry& entry : add) {
    if (std::find(merged.begin(), merged.end(), entry) == merged.end()) {
      merged.push_back(std::move(entry));
    }
  }
  return SetPermitList(endpoint, std::move(merged));
}

SimTime EdgeFilterBank::SetPermitList(IpAddress endpoint,
                                      std::vector<PermitEntry> entries) {
  uint64_t version = next_version_++;
  latest_version_[endpoint] = version;
  latest_entries_[endpoint] = entries;
  SimTime last_applied =
      queue_ != nullptr ? queue_->now() : SimTime::Epoch();

  for (size_t i = 0; i < edges_.size(); ++i) {
    ++messages_;
    auto apply = [this, i, endpoint, version, entries]() {
      EdgeState& edge = edges_[i];
      auto it = edge.lists.find(endpoint);
      if (it != edge.lists.end()) {
        if (it->second.first >= version) {
          return;  // stale update arrived after a newer one
        }
        edge.entry_count -= it->second.second.size();
      }
      edge.entry_count += entries.size();
      edge.lists[endpoint] = {version, entries};
    };
    if (queue_ == nullptr) {
      apply();
      continue;
    }
    SimTime when = queue_->now() + SampleDeliveryLatency();
    last_applied = std::max(last_applied, when);
    queue_->ScheduleAt(when, apply);
  }
  return last_applied;
}

void EdgeFilterBank::RemovePermitList(IpAddress endpoint) {
  latest_version_.erase(endpoint);
  latest_entries_.erase(endpoint);
  for (EdgeState& edge : edges_) {
    auto it = edge.lists.find(endpoint);
    if (it != edge.lists.end()) {
      edge.entry_count -= it->second.second.size();
      edge.lists.erase(it);
    }
    ++messages_;
  }
}

bool EdgeFilterBank::Admits(size_t edge_index, const FiveTuple& flow) const {
  const EdgeState& edge = edges_[edge_index];
  auto it = edge.lists.find(flow.dst);
  if (it == edge.lists.end()) {
    return false;  // default-off
  }
  for (const PermitEntry& entry : it->second.second) {
    if (entry.source_group.valid()) {
      if (!entry.ScopeMatches(flow)) {
        continue;
      }
      auto git = edge.groups.find(entry.source_group);
      if (git != edge.groups.end() &&
          git->second.second.count(flow.src) > 0) {
        return true;
      }
      continue;
    }
    if (entry.Admits(flow)) {
      return true;
    }
  }
  return false;
}

SimTime EdgeFilterBank::SetGroup(EndpointGroupId group,
                                 std::vector<IpAddress> members) {
  uint64_t version = next_version_++;
  std::set<IpAddress> member_set(members.begin(), members.end());
  SimTime last_applied = queue_ != nullptr ? queue_->now() : SimTime::Epoch();
  for (size_t i = 0; i < edges_.size(); ++i) {
    ++messages_;
    auto apply = [this, i, group, version, member_set]() {
      EdgeState& edge = edges_[i];
      auto it = edge.groups.find(group);
      if (it != edge.groups.end() && it->second.first >= version) {
        return;  // stale
      }
      edge.groups[group] = {version, member_set};
    };
    if (queue_ == nullptr) {
      apply();
      continue;
    }
    SimTime when = queue_->now() + SampleDeliveryLatency();
    last_applied = std::max(last_applied, when);
    queue_->ScheduleAt(when, apply);
  }
  return last_applied;
}

void EdgeFilterBank::RemoveGroup(EndpointGroupId group) {
  for (EdgeState& edge : edges_) {
    edge.groups.erase(group);
    ++messages_;
  }
}

bool EdgeFilterBank::HasList(size_t edge_index, IpAddress endpoint) const {
  return edges_[edge_index].lists.count(endpoint) > 0;
}

bool EdgeFilterBank::IsConverged(IpAddress endpoint) const {
  auto vit = latest_version_.find(endpoint);
  if (vit == latest_version_.end()) {
    // Converged means "gone everywhere".
    for (const EdgeState& edge : edges_) {
      if (edge.lists.count(endpoint) > 0) {
        return false;
      }
    }
    return true;
  }
  for (const EdgeState& edge : edges_) {
    auto it = edge.lists.find(endpoint);
    if (it == edge.lists.end() || it->second.first != vit->second) {
      return false;
    }
  }
  return true;
}

uint64_t EdgeFilterBank::total_installed_entries() const {
  uint64_t total = 0;
  for (const EdgeState& edge : edges_) {
    total += edge.entry_count;
  }
  return total;
}

}  // namespace tenantnet
