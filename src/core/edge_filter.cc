#include "src/core/edge_filter.h"

#include <algorithm>
#include <utility>

#include "src/telemetry/metrics.h"

namespace tenantnet {

void CompiledPermitList::ScopeSet::Add(Protocol proto, PortRange ports) {
  if (admit_all) {
    return;  // already admits every scope
  }
  if (proto == Protocol::kAny && ports.IsAny()) {
    admit_all = true;
    scopes.clear();
    scopes.shrink_to_fit();
    return;
  }
  for (const auto& [p, r] : scopes) {
    if (p == proto && r == ports) {
      return;  // exact duplicate scope
    }
  }
  scopes.emplace_back(proto, ports);
}

CompiledPermitList::CompiledPermitList(
    const std::vector<PermitEntry>& entries) {
  for (const PermitEntry& entry : entries) {
    if (entry.source_group.valid()) {
      ScopeSet* set = nullptr;
      for (auto& [group, scopes] : group_scopes_) {
        if (group == entry.source_group) {
          set = &scopes;
          break;
        }
      }
      if (set == nullptr) {
        set = &group_scopes_.emplace_back(entry.source_group, ScopeSet{})
                   .second;
      }
      set->Add(entry.proto, entry.dst_ports);
      continue;
    }
    ScopeSet* set = prefix_index_.ExactMatch(entry.source);
    if (set == nullptr) {
      prefix_index_.Insert(entry.source, ScopeSet{});
      set = prefix_index_.ExactMatch(entry.source);
    }
    set->Add(entry.proto, entry.dst_ports);
  }
}

size_t CompiledPermitList::ApproxBytes() const {
  size_t bytes =
      prefix_index_.ApproxBytes() +
      group_scopes_.capacity() * sizeof(group_scopes_[0]);
  prefix_index_.ForEach([&](const IpPrefix&, const ScopeSet& set) {
    bytes += set.scopes.capacity() * sizeof(std::pair<Protocol, PortRange>);
  });
  for (const auto& [group, set] : group_scopes_) {
    (void)group;
    bytes += set.scopes.capacity() * sizeof(std::pair<Protocol, PortRange>);
  }
  return bytes;
}

EdgeFilterBank::EdgeFilterBank(std::string domain, EventQueue* queue,
                               uint64_t rng_seed, EdgeFilterParams params)
    : domain_(std::move(domain)), queue_(queue), rng_(rng_seed),
      params_(params), cache_(params.verdict_cache_slots) {}

EdgeFilterBank::~EdgeFilterBank() = default;

size_t EdgeFilterBank::AddEdge(const std::string& name) {
  edges_.push_back(EdgeState{name, {}, {}, {}, 0});
  return edges_.size() - 1;
}

SimDuration EdgeFilterBank::SampleDeliveryLatency() {
  SimDuration latency =
      params_.install_base +
      SimDuration::Seconds(rng_.NextExponential(
          1.0 / std::max(1e-9, params_.install_extra_mean.ToSeconds())));
  if (!degraded_) {
    return latency;
  }
  // Each attempt (original and every retransmit) drops independently; the
  // loop resolves the whole retry chain now so the eventual apply time is a
  // pure function of RNG state at send time. The attempt cap keeps a
  // drop_prob of 1.0 finite (delivery after the worst-case chain).
  for (int attempt = 0;
       attempt < 64 && rng_.NextBool(params_.degraded_drop_prob); ++attempt) {
    ++messages_dropped_;
    ++retransmissions_;
    ++messages_;  // the retransmit is one more control-plane message
    latency += params_.degraded_retransmit;
  }
  return latency + params_.degraded_extra;
}

uint32_t EdgeFilterBank::SlotFor(IpAddress endpoint) {
  uint32_t slot = slots_.Lookup(endpoint);
  if (slot != kNilId) {
    return slot;
  }
  slot = static_cast<uint32_t>(slots_.size());
  slots_.Insert(endpoint, slot);
  slot_epoch_.push_back(0);
  master_version_.push_back(0);
  master_set_.push_back(kNilId);
  return slot;
}

std::vector<IpAddress> EdgeFilterBank::SlotAddresses() const {
  std::vector<IpAddress> addrs(slots_.size());
  slots_.ForEach([&](IpAddress addr, uint32_t slot) { addrs[slot] = addr; });
  return addrs;
}

std::vector<std::pair<IpAddress, uint32_t>>
EdgeFilterBank::SortedMasterEndpoints() const {
  std::vector<std::pair<IpAddress, uint32_t>> out;
  slots_.ForEach([&](IpAddress addr, uint32_t slot) {
    if (master_set_[slot] != kNilId) {
      out.emplace_back(addr, slot);
    }
  });
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

const std::vector<PermitEntry>* EdgeFilterBank::MasterEntriesOf(
    IpAddress endpoint) const {
  const uint32_t slot = slots_.Lookup(endpoint);
  if (slot == kNilId || master_set_[slot] == kNilId) {
    return nullptr;
  }
  return &sets_.Get(master_set_[slot]).entries;
}

std::vector<IpAddress> EdgeFilterBank::MasterEndpoints() const {
  std::vector<IpAddress> out;
  for (const auto& [addr, slot] : SortedMasterEndpoints()) {
    out.push_back(addr);
  }
  return out;
}

void EdgeFilterBank::ClearMasterSet(uint32_t slot) {
  if (master_set_[slot] == kNilId) {
    return;
  }
  sets_.Release(master_set_[slot]);
  master_set_[slot] = kNilId;
  --master_lists_;
}

void EdgeFilterBank::AssignMasterSet(uint32_t slot, uint32_t set_id) {
  const uint32_t old = master_set_[slot];
  if (old == set_id) {
    sets_.Release(set_id);  // master already holds its reference
    return;
  }
  if (old == kNilId) {
    ++master_lists_;
  } else {
    sets_.Release(old);
  }
  master_set_[slot] = set_id;  // the caller's reference becomes the master's
}

void EdgeFilterBank::EnsureCompiled(uint32_t set_id) {
  PermitSet& set = sets_.GetMutable(set_id);
  if (set.compiled == nullptr) {
    set.compiled = std::make_shared<const CompiledPermitList>(set.entries);
    ++compiles_;
  }
}

SimTime EdgeFilterBank::UpdatePermitList(
    IpAddress endpoint, std::vector<PermitEntry> add,
    const std::vector<PermitEntry>& remove) {
  if (in_restart_) {
    // The master copy is gone until CompleteRestart restores it, so the
    // merge must wait too: buffer the op whole.
    PendingOp op;
    op.kind = PendingOp::Kind::kUpdateList;
    op.endpoint = endpoint;
    op.entries = std::move(add);
    op.removes = remove;
    pending_ops_.push_back(std::move(op));
    return queue_ != nullptr ? queue_->now() : SimTime::Epoch();
  }
  std::vector<PermitEntry> merged;
  const uint32_t slot = SlotOf(endpoint);
  if (slot != kNilId && master_set_[slot] != kNilId) {
    for (const PermitEntry& entry : sets_.Get(master_set_[slot]).entries) {
      if (std::find(remove.begin(), remove.end(), entry) == remove.end()) {
        merged.push_back(entry);
      }
    }
  }
  for (PermitEntry& entry : add) {
    if (std::find(merged.begin(), merged.end(), entry) == merged.end()) {
      merged.push_back(std::move(entry));
    }
  }
  return SetPermitList(endpoint, std::move(merged));
}

SimTime EdgeFilterBank::SetPermitList(IpAddress endpoint,
                                      std::vector<PermitEntry> entries) {
  if (in_restart_) {
    PendingOp op;
    op.kind = PendingOp::Kind::kSetList;
    op.endpoint = endpoint;
    op.entries = std::move(entries);
    pending_ops_.push_back(std::move(op));
    return queue_ != nullptr ? queue_->now() : SimTime::Epoch();
  }
  const uint32_t set_id =
      sets_.Intern(PermitSet{std::move(entries), nullptr});
  return PushListTo(endpoint, set_id, AllEdgeIndices());
}

std::vector<size_t> EdgeFilterBank::AllEdgeIndices() const {
  std::vector<size_t> all(edges_.size());
  for (size_t i = 0; i < all.size(); ++i) {
    all[i] = i;
  }
  return all;
}

SimTime EdgeFilterBank::PushListTo(IpAddress endpoint, uint32_t set_id,
                                   const std::vector<size_t>& targets) {
  const uint32_t slot = SlotFor(endpoint);
  const uint64_t version = next_version_++;
  master_version_[slot] = version;
  AssignMasterSet(slot, set_id);  // consumes the caller's reference
  // Compile once per *distinct* list: interning means a byte-identical list
  // installed for another endpoint — or re-pushed for this one — reuses the
  // same immutable matcher, shared by every edge's apply.
  EnsureCompiled(set_id);
  SimTime last_applied =
      queue_ != nullptr ? queue_->now() : SimTime::Epoch();

  for (size_t i : targets) {
    ++messages_;
    sets_.AddRef(set_id);  // in-flight reference, handed to the edge on apply
    auto apply = [this, i, slot, set_id, version]() {
      EdgeState& edge = edges_[i];
      if (edge.list_set.size() <= slot) {
        edge.list_version.resize(slot_epoch_.size(), 0);
        edge.list_set.resize(slot_epoch_.size(), kNilId);
      }
      if (edge.list_version[slot] >= version) {
        sets_.Release(set_id);
        return;  // stale update arrived after a newer one
      }
      if (edge.list_set[slot] != kNilId) {
        edge.entry_count -= sets_.Get(edge.list_set[slot]).entries.size();
        sets_.Release(edge.list_set[slot]);
      }
      edge.entry_count += sets_.Get(set_id).entries.size();
      edge.list_set[slot] = set_id;
      edge.list_version[slot] = version;
      BumpEndpointEpoch(slot);
    };
    if (queue_ == nullptr) {
      apply();
      continue;
    }
    SimTime when = queue_->now() + SampleDeliveryLatency();
    last_applied = std::max(last_applied, when);
    queue_->ScheduleAt(when, apply);
  }
  return last_applied;
}

void EdgeFilterBank::RemovePermitList(IpAddress endpoint) {
  if (in_restart_) {
    PendingOp op;
    op.kind = PendingOp::Kind::kRemoveList;
    op.endpoint = endpoint;
    pending_ops_.push_back(std::move(op));
    return;
  }
  const uint32_t slot = SlotOf(endpoint);
  if (slot != kNilId) {
    master_version_[slot] = 0;
    ClearMasterSet(slot);
  }
  bool removed_any = false;
  for (EdgeState& edge : edges_) {
    if (slot != kNilId && slot < edge.list_set.size() &&
        edge.list_set[slot] != kNilId) {
      edge.entry_count -= sets_.Get(edge.list_set[slot]).entries.size();
      sets_.Release(edge.list_set[slot]);
      edge.list_set[slot] = kNilId;
      edge.list_version[slot] = 0;
      removed_any = true;
    }
    ++messages_;
  }
  if (removed_any) {
    BumpEndpointEpoch(slot);
  }
}

bool EdgeFilterBank::Admits(size_t edge_index, const FiveTuple& flow) const {
  VerdictKey key{edge_index, flow.src, flow.dst, flow.dst_port, flow.proto};
  if (const bool* cached = cache_.Lookup(
          key, gen_, global_epoch_,
          [&] { return EndpointEpochOf(flow.dst); })) {
    return *cached;
  }
  bool verdict = AdmitsUncached(edge_index, flow);
  cache_.Insert(key, gen_, global_epoch_, EndpointEpochOf(flow.dst), verdict);
  return verdict;
}

bool EdgeFilterBank::AdmitsUncached(size_t edge_index,
                                    const FiveTuple& flow) const {
  const EdgeState& edge = edges_[edge_index];
  const uint32_t slot = slots_.Lookup(flow.dst);
  if (slot == kNilId || slot >= edge.list_set.size() ||
      edge.list_set[slot] == kNilId) {
    return false;  // default-off
  }
  const CompiledPermitList& compiled = *sets_.Get(edge.list_set[slot]).compiled;
  if (compiled.PrefixAdmits(flow)) {
    return true;
  }
  for (const auto& [group, scopes] : compiled.group_scopes()) {
    if (!scopes.Matches(flow)) {
      continue;
    }
    auto git = edge.groups.find(group);
    if (git != edge.groups.end() && git->second.members.contains(flow.src)) {
      return true;
    }
  }
  return false;
}

bool EdgeFilterBank::AdmitsLinear(size_t edge_index,
                                  const FiveTuple& flow) const {
  const EdgeState& edge = edges_[edge_index];
  const uint32_t slot = slots_.Lookup(flow.dst);
  if (slot == kNilId || slot >= edge.list_set.size() ||
      edge.list_set[slot] == kNilId) {
    return false;  // default-off
  }
  for (const PermitEntry& entry : sets_.Get(edge.list_set[slot]).entries) {
    if (entry.source_group.valid()) {
      if (!entry.ScopeMatches(flow)) {
        continue;
      }
      auto git = edge.groups.find(entry.source_group);
      if (git != edge.groups.end() &&
          git->second.members.count(flow.src) > 0) {
        return true;
      }
      continue;
    }
    if (entry.Admits(flow)) {
      return true;
    }
  }
  return false;
}

SimTime EdgeFilterBank::SetGroup(EndpointGroupId group,
                                 std::vector<IpAddress> members) {
  if (in_restart_) {
    PendingOp op;
    op.kind = PendingOp::Kind::kSetGroup;
    op.group = group;
    op.members = std::move(members);
    pending_ops_.push_back(std::move(op));
    return queue_ != nullptr ? queue_->now() : SimTime::Epoch();
  }
  std::unordered_set<IpAddress> member_set(members.begin(), members.end());
  return PushGroupTo(group, member_set, AllEdgeIndices());
}

SimTime EdgeFilterBank::PushGroupTo(
    EndpointGroupId group, const std::unordered_set<IpAddress>& member_set,
    const std::vector<size_t>& targets) {
  uint64_t version = next_version_++;
  latest_groups_[group] = MasterGroup{version, member_set};
  SimTime last_applied = queue_ != nullptr ? queue_->now() : SimTime::Epoch();
  for (size_t i : targets) {
    ++messages_;
    auto apply = [this, i, group, version, member_set]() {
      EdgeState& edge = edges_[i];
      auto it = edge.groups.find(group);
      if (it != edge.groups.end() && it->second.version >= version) {
        return;  // stale
      }
      edge.groups[group] = GroupState{version, member_set};
      BumpGlobalEpoch();
    };
    if (queue_ == nullptr) {
      apply();
      continue;
    }
    SimTime when = queue_->now() + SampleDeliveryLatency();
    last_applied = std::max(last_applied, when);
    queue_->ScheduleAt(when, apply);
  }
  return last_applied;
}

void EdgeFilterBank::RemoveGroup(EndpointGroupId group) {
  if (in_restart_) {
    PendingOp op;
    op.kind = PendingOp::Kind::kRemoveGroup;
    op.group = group;
    pending_ops_.push_back(std::move(op));
    return;
  }
  latest_groups_.erase(group);
  bool removed_any = false;
  for (EdgeState& edge : edges_) {
    removed_any |= edge.groups.erase(group) > 0;
    ++messages_;
  }
  if (removed_any) {
    BumpGlobalEpoch();
  }
}

bool EdgeFilterBank::HasList(size_t edge_index, IpAddress endpoint) const {
  const EdgeState& edge = edges_[edge_index];
  const uint32_t slot = slots_.Lookup(endpoint);
  return slot != kNilId && slot < edge.list_set.size() &&
         edge.list_set[slot] != kNilId;
}

bool EdgeFilterBank::IsConverged(IpAddress endpoint) const {
  const uint32_t slot = slots_.Lookup(endpoint);
  const uint64_t latest = slot == kNilId ? 0 : master_version_[slot];
  if (latest == 0) {
    // Converged means "gone everywhere".
    if (slot == kNilId) {
      return true;
    }
    for (const EdgeState& edge : edges_) {
      if (slot < edge.list_set.size() && edge.list_set[slot] != kNilId) {
        return false;
      }
    }
    return true;
  }
  for (const EdgeState& edge : edges_) {
    if (slot >= edge.list_version.size() ||
        edge.list_version[slot] != latest) {
      return false;
    }
  }
  return true;
}

uint64_t EdgeFilterBank::total_installed_entries() const {
  uint64_t total = 0;
  for (const EdgeState& edge : edges_) {
    total += edge.entry_count;
  }
  return total;
}

// ---------------------------------------------------------------------------
// Memory accounting (E10).
// ---------------------------------------------------------------------------

size_t EdgeFilterBank::ApproxBytes() const {
  size_t bytes = slots_.ApproxBytes() +
                 slot_epoch_.capacity() * sizeof(uint64_t) +
                 master_version_.capacity() * sizeof(uint64_t) +
                 master_set_.capacity() * sizeof(uint32_t);
  for (const EdgeState& edge : edges_) {
    bytes += edge.list_version.capacity() * sizeof(uint64_t) +
             edge.list_set.capacity() * sizeof(uint32_t);
  }
  bytes += sets_.ApproxBytes();
  sets_.ForEach([&](uint32_t, const PermitSet& set, uint32_t) {
    bytes += set.entries.capacity() * sizeof(PermitEntry);
    if (set.compiled != nullptr) {
      bytes += set.compiled->ApproxBytes();
    }
  });
  // Group replicas: per-member hash-set node cost, master + every edge.
  constexpr size_t kSetNodeBytes = sizeof(IpAddress) + 2 * sizeof(void*);
  for (const auto& [group, master] : latest_groups_) {
    (void)group;
    bytes += master.members.size() * kSetNodeBytes;
  }
  for (const EdgeState& edge : edges_) {
    for (const auto& [group, state] : edge.groups) {
      (void)group;
      bytes += state.members.size() * kSetNodeBytes;
    }
  }
  return bytes;
}

void EdgeFilterBank::ReserveEndpoints(size_t n) {
  slots_.Reserve(n);
  slot_epoch_.reserve(n);
  master_version_.reserve(n);
  master_set_.reserve(n);
}

void EdgeFilterBank::ShrinkToFit() {
  slot_epoch_.shrink_to_fit();
  master_version_.shrink_to_fit();
  master_set_.shrink_to_fit();
  for (EdgeState& edge : edges_) {
    edge.list_version.shrink_to_fit();
    edge.list_set.shrink_to_fit();
  }
}

void EdgeFilterBank::PublishMemoryGauges(MetricRegistry& metrics) const {
  metrics.GetGauge(domain_ + ".filter.approx_bytes")
      .Set(static_cast<double>(ApproxBytes()));
  metrics.GetGauge(domain_ + ".filter.endpoint_slots")
      .Set(static_cast<double>(slots_.size()));
  metrics.GetGauge(domain_ + ".filter.distinct_permit_sets")
      .Set(static_cast<double>(sets_.size()));
  metrics.GetGauge(domain_ + ".filter.installed_entries")
      .Set(static_cast<double>(total_installed_entries()));
}

// ---------------------------------------------------------------------------
// Warm restart.
// ---------------------------------------------------------------------------

FilterBankSnapshot EdgeFilterBank::Checkpoint() const {
  FilterBankSnapshot snap;
  snap.next_version = next_version_;
  const auto masters = SortedMasterEndpoints();
  snap.lists.reserve(masters.size());
  for (const auto& [endpoint, slot] : masters) {
    snap.lists.push_back(FilterBankSnapshot::List{
        endpoint, master_version_[slot], sets_.Get(master_set_[slot]).entries});
  }
  snap.groups.reserve(latest_groups_.size());
  for (const auto& [group, master] : latest_groups_) {
    std::vector<IpAddress> members(master.members.begin(),
                                   master.members.end());
    std::sort(members.begin(), members.end());
    snap.groups.push_back(
        FilterBankSnapshot::Group{group, master.version, std::move(members)});
  }
  std::sort(snap.groups.begin(), snap.groups.end(),
            [](const auto& a, const auto& b) { return a.group < b.group; });
  return snap;
}

void EdgeFilterBank::RestoreFromSnapshot(const FilterBankSnapshot& snap) {
  for (uint32_t slot = 0; slot < master_set_.size(); ++slot) {
    master_version_[slot] = 0;
    ClearMasterSet(slot);
  }
  latest_groups_.clear();
  for (const FilterBankSnapshot::List& list : snap.lists) {
    const uint32_t slot = SlotFor(list.endpoint);
    AssignMasterSet(slot, sets_.Intern(PermitSet{list.entries, nullptr}));
    master_version_[slot] = list.version;
  }
  for (const FilterBankSnapshot::Group& group : snap.groups) {
    latest_groups_[group.group] = MasterGroup{
        group.version, std::unordered_set<IpAddress>(group.members.begin(),
                                                     group.members.end())};
  }
  // Monotonic across incarnations: edges may hold versions newer than the
  // snapshot (mutations applied between checkpoint and crash), and a push
  // numbered below them would be discarded as stale.
  next_version_ = std::max(next_version_, snap.next_version);
}

void EdgeFilterBank::BeginRestart() {
  if (in_restart_) {
    return;  // overlapping restarts extend the same outage
  }
  in_restart_ = true;
  // The process is gone: volatile master state with it. Edge (data-plane)
  // state and in-flight applies survive; next_version_ models a monotonic
  // version fountain (provider-durable), see RestoreFromSnapshot.
  for (uint32_t slot = 0; slot < master_set_.size(); ++slot) {
    master_version_[slot] = 0;
    ClearMasterSet(slot);
  }
  latest_groups_.clear();
}

void EdgeFilterBank::ApplyOpToMaster(const PendingOp& op) {
  switch (op.kind) {
    case PendingOp::Kind::kSetList:
      AssignMasterSet(SlotFor(op.endpoint),
                      sets_.Intern(PermitSet{op.entries, nullptr}));
      break;
    case PendingOp::Kind::kUpdateList: {
      const uint32_t slot = SlotFor(op.endpoint);
      std::vector<PermitEntry> merged;
      if (master_set_[slot] != kNilId) {
        for (const PermitEntry& entry : sets_.Get(master_set_[slot]).entries) {
          if (std::find(op.removes.begin(), op.removes.end(), entry) ==
              op.removes.end()) {
            merged.push_back(entry);
          }
        }
      }
      for (const PermitEntry& entry : op.entries) {
        if (std::find(merged.begin(), merged.end(), entry) == merged.end()) {
          merged.push_back(entry);
        }
      }
      AssignMasterSet(slot, sets_.Intern(PermitSet{std::move(merged), nullptr}));
      break;
    }
    case PendingOp::Kind::kRemoveList: {
      const uint32_t slot = SlotOf(op.endpoint);
      if (slot != kNilId) {
        master_version_[slot] = 0;
        ClearMasterSet(slot);
      }
      break;
    }
    case PendingOp::Kind::kSetGroup:
      latest_groups_[op.group] = MasterGroup{
          0, std::unordered_set<IpAddress>(op.members.begin(),
                                           op.members.end())};
      break;
    case PendingOp::Kind::kRemoveGroup:
      latest_groups_.erase(op.group);
      break;
  }
}

ReconcileStats EdgeFilterBank::CompleteRestart(RestartMode mode,
                                               const FilterBankSnapshot& snap) {
  ReconcileStats stats;
  stats.converged_at = queue_ != nullptr ? queue_->now() : SimTime::Epoch();
  RestoreFromSnapshot(snap);
  in_restart_ = false;
  std::vector<PendingOp> ops;
  ops.swap(pending_ops_);
  stats.replayed_mutations = ops.size();

  auto sorted_groups = [this] {
    std::vector<EndpointGroupId> groups;
    groups.reserve(latest_groups_.size());
    for (const auto& [group, master] : latest_groups_) {
      groups.push_back(group);
    }
    std::sort(groups.begin(), groups.end());
    return groups;
  };

  if (mode == RestartMode::kCold) {
    // Fold the buffered mutations into the master only, then flush every
    // edge and re-program the whole intent from scratch. Between the flush
    // and each re-install landing, default-off denies everything — the
    // cold-rebuild blackhole window E9b measures.
    for (const PendingOp& op : ops) {
      ApplyOpToMaster(op);
    }
    bool flushed_any = false;
    for (EdgeState& edge : edges_) {
      for (uint32_t slot = 0; slot < edge.list_set.size(); ++slot) {
        if (edge.list_set[slot] == kNilId) {
          continue;
        }
        sets_.Release(edge.list_set[slot]);
        edge.list_set[slot] = kNilId;
        edge.list_version[slot] = 0;
        flushed_any = true;
      }
      flushed_any |= !edge.groups.empty();
      edge.groups.clear();
      edge.entry_count = 0;
    }
    if (flushed_any) {
      BumpGlobalEpoch();  // every cached verdict is now unfounded
    }
    std::vector<size_t> all = AllEdgeIndices();
    for (const auto& [endpoint, slot] : SortedMasterEndpoints()) {
      stats.deltas_applied += all.size();
      sets_.AddRef(master_set_[slot]);  // PushListTo consumes one reference
      stats.converged_at = std::max(
          stats.converged_at, PushListTo(endpoint, master_set_[slot], all));
    }
    for (EndpointGroupId group : sorted_groups()) {
      stats.deltas_applied += all.size();
      stats.converged_at = std::max(
          stats.converged_at,
          PushGroupTo(group, latest_groups_[group].members, all));
    }
    return stats;
  }

  // Warm: replay the buffered mutations through the normal incremental
  // paths (they fan out exactly what changed during the outage)...
  std::unordered_set<IpAddress> replayed_lists;
  std::unordered_set<EndpointGroupId> replayed_groups;
  for (const PendingOp& op : ops) {
    switch (op.kind) {
      case PendingOp::Kind::kSetList:
        stats.converged_at = std::max(
            stats.converged_at, SetPermitList(op.endpoint, op.entries));
        replayed_lists.insert(op.endpoint);
        break;
      case PendingOp::Kind::kUpdateList:
        stats.converged_at = std::max(
            stats.converged_at,
            UpdatePermitList(op.endpoint, op.entries, op.removes));
        replayed_lists.insert(op.endpoint);
        break;
      case PendingOp::Kind::kRemoveList:
        RemovePermitList(op.endpoint);
        replayed_lists.insert(op.endpoint);
        break;
      case PendingOp::Kind::kSetGroup:
        stats.converged_at =
            std::max(stats.converged_at, SetGroup(op.group, op.members));
        replayed_groups.insert(op.group);
        break;
      case PendingOp::Kind::kRemoveGroup:
        RemoveGroup(op.group);
        replayed_groups.insert(op.group);
        break;
    }
  }

  // ...then diff the restored intent against live edge state and re-push
  // only mismatches. Interned set ids are canonical, so an id compare *is*
  // a content compare. Edges already holding the intended entries are left
  // alone — no message, no epoch bump, their cached verdicts survive.
  for (const auto& [endpoint, slot] : SortedMasterEndpoints()) {
    if (replayed_lists.contains(endpoint)) {
      continue;  // already converging via the replay above
    }
    const uint32_t want = master_set_[slot];
    std::vector<size_t> lagging;
    for (size_t i = 0; i < edges_.size(); ++i) {
      ++stats.checked;
      const EdgeState& edge = edges_[i];
      if (slot >= edge.list_set.size() || edge.list_set[slot] != want) {
        lagging.push_back(i);
      }
    }
    if (!lagging.empty()) {
      stats.deltas_applied += lagging.size();
      sets_.AddRef(want);  // PushListTo consumes one reference
      stats.converged_at =
          std::max(stats.converged_at, PushListTo(endpoint, want, lagging));
    }
  }
  for (EndpointGroupId group : sorted_groups()) {
    if (replayed_groups.contains(group)) {
      continue;
    }
    const MasterGroup& master = latest_groups_[group];
    std::vector<size_t> lagging;
    for (size_t i = 0; i < edges_.size(); ++i) {
      ++stats.checked;
      auto it = edges_[i].groups.find(group);
      if (it == edges_[i].groups.end() ||
          it->second.members != master.members) {
        lagging.push_back(i);
      }
    }
    if (!lagging.empty()) {
      stats.deltas_applied += lagging.size();
      stats.converged_at = std::max(
          stats.converged_at, PushGroupTo(group, master.members, lagging));
    }
  }

  // Orphan sweep: state still installed on edges with no master intent (the
  // snapshot predates its removal). The removal paths are the delta ops.
  const std::vector<IpAddress> addr_of = SlotAddresses();
  std::vector<IpAddress> orphan_lists;
  std::vector<EndpointGroupId> orphan_groups;
  for (const EdgeState& edge : edges_) {
    for (uint32_t slot = 0; slot < edge.list_set.size(); ++slot) {
      if (edge.list_set[slot] == kNilId) {
        continue;
      }
      ++stats.checked;
      if (master_set_[slot] == kNilId &&
          !replayed_lists.contains(addr_of[slot])) {
        orphan_lists.push_back(addr_of[slot]);
      }
    }
    for (const auto& [group, state] : edge.groups) {
      ++stats.checked;
      if (latest_groups_.find(group) == latest_groups_.end() &&
          !replayed_groups.contains(group)) {
        orphan_groups.push_back(group);
      }
    }
  }
  std::sort(orphan_lists.begin(), orphan_lists.end());
  orphan_lists.erase(std::unique(orphan_lists.begin(), orphan_lists.end()),
                     orphan_lists.end());
  std::sort(orphan_groups.begin(), orphan_groups.end());
  orphan_groups.erase(std::unique(orphan_groups.begin(), orphan_groups.end()),
                      orphan_groups.end());
  for (IpAddress endpoint : orphan_lists) {
    RemovePermitList(endpoint);
    ++stats.deltas_applied;
  }
  for (EndpointGroupId group : orphan_groups) {
    RemoveGroup(group);
    ++stats.deltas_applied;
  }
  return stats;
}

std::string EdgeFilterBank::StateFingerprint() const {
  auto entry_fp = [](const PermitEntry& e) {
    return e.source.ToString() + "~g" + std::to_string(e.source_group.value()) +
           "~" + std::to_string(e.dst_ports.lo) + "-" +
           std::to_string(e.dst_ports.hi) + "~" +
           std::to_string(static_cast<int>(e.proto));
  };
  auto entries_fp = [&](const std::vector<PermitEntry>& entries) {
    std::string out = "[";
    for (const PermitEntry& e : entries) {
      out += entry_fp(e);
      out += ",";
    }
    out += "]";
    return out;
  };
  std::string out;
  for (const auto& [endpoint, slot] : SortedMasterEndpoints()) {
    out += "M " + endpoint.ToString() + " " +
           entries_fp(sets_.Get(master_set_[slot]).entries) + "\n";
  }
  std::vector<EndpointGroupId> groups;
  for (const auto& [group, master] : latest_groups_) {
    groups.push_back(group);
  }
  std::sort(groups.begin(), groups.end());
  for (EndpointGroupId group : groups) {
    std::vector<IpAddress> members(latest_groups_.at(group).members.begin(),
                                   latest_groups_.at(group).members.end());
    std::sort(members.begin(), members.end());
    out += "MG " + std::to_string(group.value()) + " [";
    for (IpAddress m : members) {
      out += m.ToString() + ",";
    }
    out += "]\n";
  }
  const std::vector<IpAddress> addr_of = SlotAddresses();
  for (size_t i = 0; i < edges_.size(); ++i) {
    const EdgeState& edge = edges_[i];
    std::vector<std::pair<IpAddress, uint32_t>> installed;
    for (uint32_t slot = 0; slot < edge.list_set.size(); ++slot) {
      if (edge.list_set[slot] != kNilId) {
        installed.emplace_back(addr_of[slot], edge.list_set[slot]);
      }
    }
    std::sort(installed.begin(), installed.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [endpoint, set_id] : installed) {
      out += "E" + std::to_string(i) + " " + endpoint.ToString() + " " +
             entries_fp(sets_.Get(set_id).entries) + "\n";
    }
    std::vector<EndpointGroupId> edge_groups;
    for (const auto& [group, state] : edge.groups) {
      edge_groups.push_back(group);
    }
    std::sort(edge_groups.begin(), edge_groups.end());
    for (EndpointGroupId group : edge_groups) {
      std::vector<IpAddress> members(edge.groups.at(group).members.begin(),
                                     edge.groups.at(group).members.end());
      std::sort(members.begin(), members.end());
      out += "EG" + std::to_string(i) + " " + std::to_string(group.value()) +
             " [";
      for (IpAddress m : members) {
        out += m.ToString() + ",";
      }
      out += "]\n";
    }
  }
  return out;
}

}  // namespace tenantnet
