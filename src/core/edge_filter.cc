#include "src/core/edge_filter.h"

#include <algorithm>
#include <utility>

namespace tenantnet {

void CompiledPermitList::ScopeSet::Add(Protocol proto, PortRange ports) {
  if (admit_all) {
    return;  // already admits every scope
  }
  if (proto == Protocol::kAny && ports.IsAny()) {
    admit_all = true;
    scopes.clear();
    scopes.shrink_to_fit();
    return;
  }
  for (const auto& [p, r] : scopes) {
    if (p == proto && r == ports) {
      return;  // exact duplicate scope
    }
  }
  scopes.emplace_back(proto, ports);
}

CompiledPermitList::CompiledPermitList(
    const std::vector<PermitEntry>& entries) {
  for (const PermitEntry& entry : entries) {
    if (entry.source_group.valid()) {
      ScopeSet* set = nullptr;
      for (auto& [group, scopes] : group_scopes_) {
        if (group == entry.source_group) {
          set = &scopes;
          break;
        }
      }
      if (set == nullptr) {
        set = &group_scopes_.emplace_back(entry.source_group, ScopeSet{})
                   .second;
      }
      set->Add(entry.proto, entry.dst_ports);
      continue;
    }
    ScopeSet* set = prefix_index_.ExactMatch(entry.source);
    if (set == nullptr) {
      prefix_index_.Insert(entry.source, ScopeSet{});
      set = prefix_index_.ExactMatch(entry.source);
    }
    set->Add(entry.proto, entry.dst_ports);
  }
}

EdgeFilterBank::EdgeFilterBank(std::string domain, EventQueue* queue,
                               uint64_t rng_seed, EdgeFilterParams params)
    : domain_(std::move(domain)), queue_(queue), rng_(rng_seed),
      params_(params), cache_(params.verdict_cache_slots) {}

size_t EdgeFilterBank::AddEdge(const std::string& name) {
  edges_.push_back(EdgeState{name, {}, {}, 0});
  return edges_.size() - 1;
}

SimDuration EdgeFilterBank::SampleDeliveryLatency() {
  SimDuration latency =
      params_.install_base +
      SimDuration::Seconds(rng_.NextExponential(
          1.0 / std::max(1e-9, params_.install_extra_mean.ToSeconds())));
  if (!degraded_) {
    return latency;
  }
  // Each attempt (original and every retransmit) drops independently; the
  // loop resolves the whole retry chain now so the eventual apply time is a
  // pure function of RNG state at send time. The attempt cap keeps a
  // drop_prob of 1.0 finite (delivery after the worst-case chain).
  for (int attempt = 0;
       attempt < 64 && rng_.NextBool(params_.degraded_drop_prob); ++attempt) {
    ++messages_dropped_;
    ++retransmissions_;
    ++messages_;  // the retransmit is one more control-plane message
    latency += params_.degraded_retransmit;
  }
  return latency + params_.degraded_extra;
}

SimTime EdgeFilterBank::UpdatePermitList(
    IpAddress endpoint, std::vector<PermitEntry> add,
    const std::vector<PermitEntry>& remove) {
  std::vector<PermitEntry> merged;
  auto it = latest_entries_.find(endpoint);
  if (it != latest_entries_.end()) {
    for (const PermitEntry& entry : it->second) {
      if (std::find(remove.begin(), remove.end(), entry) == remove.end()) {
        merged.push_back(entry);
      }
    }
  }
  for (PermitEntry& entry : add) {
    if (std::find(merged.begin(), merged.end(), entry) == merged.end()) {
      merged.push_back(std::move(entry));
    }
  }
  return SetPermitList(endpoint, std::move(merged));
}

SimTime EdgeFilterBank::SetPermitList(IpAddress endpoint,
                                      std::vector<PermitEntry> entries) {
  uint64_t version = next_version_++;
  latest_version_[endpoint] = version;
  latest_entries_[endpoint] = entries;
  // Compile once; every edge's apply shares the same immutable matcher.
  auto compiled = std::make_shared<const CompiledPermitList>(entries);
  ++compiles_;
  SimTime last_applied =
      queue_ != nullptr ? queue_->now() : SimTime::Epoch();

  for (size_t i = 0; i < edges_.size(); ++i) {
    ++messages_;
    auto apply = [this, i, endpoint, version, entries, compiled]() {
      EdgeState& edge = edges_[i];
      auto it = edge.lists.find(endpoint);
      if (it != edge.lists.end()) {
        if (it->second.version >= version) {
          return;  // stale update arrived after a newer one
        }
        edge.entry_count -= it->second.entries.size();
      }
      edge.entry_count += entries.size();
      edge.lists[endpoint] = InstalledList{version, entries, compiled};
      BumpEndpointEpoch(endpoint);
    };
    if (queue_ == nullptr) {
      apply();
      continue;
    }
    SimTime when = queue_->now() + SampleDeliveryLatency();
    last_applied = std::max(last_applied, when);
    queue_->ScheduleAt(when, apply);
  }
  return last_applied;
}

void EdgeFilterBank::RemovePermitList(IpAddress endpoint) {
  latest_version_.erase(endpoint);
  latest_entries_.erase(endpoint);
  bool removed_any = false;
  for (EdgeState& edge : edges_) {
    auto it = edge.lists.find(endpoint);
    if (it != edge.lists.end()) {
      edge.entry_count -= it->second.entries.size();
      edge.lists.erase(it);
      removed_any = true;
    }
    ++messages_;
  }
  if (removed_any) {
    BumpEndpointEpoch(endpoint);
  }
}

bool EdgeFilterBank::Admits(size_t edge_index, const FiveTuple& flow) const {
  VerdictKey key{edge_index, flow.src, flow.dst, flow.dst_port, flow.proto};
  if (const bool* cached = cache_.Lookup(
          key, gen_, global_epoch_,
          [&] { return EndpointEpochOf(flow.dst); })) {
    return *cached;
  }
  bool verdict = AdmitsUncached(edge_index, flow);
  cache_.Insert(key, gen_, global_epoch_, EndpointEpochOf(flow.dst), verdict);
  return verdict;
}

bool EdgeFilterBank::AdmitsUncached(size_t edge_index,
                                    const FiveTuple& flow) const {
  const EdgeState& edge = edges_[edge_index];
  auto it = edge.lists.find(flow.dst);
  if (it == edge.lists.end()) {
    return false;  // default-off
  }
  const CompiledPermitList& compiled = *it->second.compiled;
  if (compiled.PrefixAdmits(flow)) {
    return true;
  }
  for (const auto& [group, scopes] : compiled.group_scopes()) {
    if (!scopes.Matches(flow)) {
      continue;
    }
    auto git = edge.groups.find(group);
    if (git != edge.groups.end() && git->second.members.contains(flow.src)) {
      return true;
    }
  }
  return false;
}

bool EdgeFilterBank::AdmitsLinear(size_t edge_index,
                                  const FiveTuple& flow) const {
  const EdgeState& edge = edges_[edge_index];
  auto it = edge.lists.find(flow.dst);
  if (it == edge.lists.end()) {
    return false;  // default-off
  }
  for (const PermitEntry& entry : it->second.entries) {
    if (entry.source_group.valid()) {
      if (!entry.ScopeMatches(flow)) {
        continue;
      }
      auto git = edge.groups.find(entry.source_group);
      if (git != edge.groups.end() &&
          git->second.members.count(flow.src) > 0) {
        return true;
      }
      continue;
    }
    if (entry.Admits(flow)) {
      return true;
    }
  }
  return false;
}

SimTime EdgeFilterBank::SetGroup(EndpointGroupId group,
                                 std::vector<IpAddress> members) {
  uint64_t version = next_version_++;
  std::unordered_set<IpAddress> member_set(members.begin(), members.end());
  SimTime last_applied = queue_ != nullptr ? queue_->now() : SimTime::Epoch();
  for (size_t i = 0; i < edges_.size(); ++i) {
    ++messages_;
    auto apply = [this, i, group, version, member_set]() {
      EdgeState& edge = edges_[i];
      auto it = edge.groups.find(group);
      if (it != edge.groups.end() && it->second.version >= version) {
        return;  // stale
      }
      edge.groups[group] = GroupState{version, member_set};
      BumpGlobalEpoch();
    };
    if (queue_ == nullptr) {
      apply();
      continue;
    }
    SimTime when = queue_->now() + SampleDeliveryLatency();
    last_applied = std::max(last_applied, when);
    queue_->ScheduleAt(when, apply);
  }
  return last_applied;
}

void EdgeFilterBank::RemoveGroup(EndpointGroupId group) {
  bool removed_any = false;
  for (EdgeState& edge : edges_) {
    removed_any |= edge.groups.erase(group) > 0;
    ++messages_;
  }
  if (removed_any) {
    BumpGlobalEpoch();
  }
}

bool EdgeFilterBank::HasList(size_t edge_index, IpAddress endpoint) const {
  return edges_[edge_index].lists.count(endpoint) > 0;
}

bool EdgeFilterBank::IsConverged(IpAddress endpoint) const {
  auto vit = latest_version_.find(endpoint);
  if (vit == latest_version_.end()) {
    // Converged means "gone everywhere".
    for (const EdgeState& edge : edges_) {
      if (edge.lists.count(endpoint) > 0) {
        return false;
      }
    }
    return true;
  }
  for (const EdgeState& edge : edges_) {
    auto it = edge.lists.find(endpoint);
    if (it == edge.lists.end() || it->second.version != vit->second) {
      return false;
    }
  }
  return true;
}

uint64_t EdgeFilterBank::total_installed_entries() const {
  uint64_t total = 0;
  for (const EdgeState& edge : edges_) {
    total += edge.entry_count;
  }
  return total;
}

}  // namespace tenantnet
