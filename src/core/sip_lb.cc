#include "src/core/sip_lb.h"

#include <algorithm>
#include <cmath>

namespace tenantnet {

Status SipLoadBalancer::AddSip(IpAddress sip) {
  auto [it, inserted] = bindings_.try_emplace(sip);
  if (!inserted) {
    return AlreadyExistsError("SIP already registered: " + sip.ToString());
  }
  return Status::Ok();
}

Status SipLoadBalancer::RemoveSip(IpAddress sip) {
  if (bindings_.erase(sip) == 0) {
    return NotFoundError("no such SIP: " + sip.ToString());
  }
  return Status::Ok();
}

Status SipLoadBalancer::Bind(IpAddress eip, IpAddress sip, double weight) {
  auto it = bindings_.find(sip);
  if (it == bindings_.end()) {
    return NotFoundError("no such SIP: " + sip.ToString());
  }
  if (weight <= 0) {
    return InvalidArgumentError("weight must be positive");
  }
  for (Binding& b : it->second) {
    if (b.eip == eip) {
      b.weight = weight;  // re-bind adjusts the weight
      return Status::Ok();
    }
  }
  it->second.push_back(Binding{eip, weight, true});
  return Status::Ok();
}

Status SipLoadBalancer::Unbind(IpAddress eip, IpAddress sip) {
  auto it = bindings_.find(sip);
  if (it == bindings_.end()) {
    return NotFoundError("no such SIP: " + sip.ToString());
  }
  auto& vec = it->second;
  auto bit = std::find_if(vec.begin(), vec.end(),
                          [eip](const Binding& b) { return b.eip == eip; });
  if (bit == vec.end()) {
    return NotFoundError("EIP not bound to this SIP");
  }
  vec.erase(bit);
  return Status::Ok();
}

void SipLoadBalancer::UnbindEverywhere(IpAddress eip) {
  for (auto& [sip, vec] : bindings_) {
    vec.erase(std::remove_if(vec.begin(), vec.end(),
                             [eip](const Binding& b) { return b.eip == eip; }),
              vec.end());
  }
}

void SipLoadBalancer::SetHealth(IpAddress eip, bool healthy) {
  for (auto& [sip, vec] : bindings_) {
    for (Binding& b : vec) {
      if (b.eip == eip) {
        b.healthy = healthy;
      }
    }
  }
}

Result<IpAddress> SipLoadBalancer::Resolve(IpAddress sip) {
  auto it = bindings_.find(sip);
  if (it == bindings_.end()) {
    return NotFoundError("no such SIP: " + sip.ToString());
  }
  double total = 0;
  for (const Binding& b : it->second) {
    if (b.healthy) {
      total += b.weight;
    }
  }
  if (total <= 0) {
    return ResourceExhaustedError("SIP " + sip.ToString() +
                                  " has no healthy backends");
  }
  double point = std::fmod(static_cast<double>(pick_seq_++) *
                           0.6180339887498949, 1.0) * total;
  for (const Binding& b : it->second) {
    if (!b.healthy) {
      continue;
    }
    if (point < b.weight) {
      return b.eip;
    }
    point -= b.weight;
  }
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (rit->healthy) {
      return rit->eip;
    }
  }
  return ResourceExhaustedError("no healthy backends");
}

Result<std::vector<SipLoadBalancer::Binding>> SipLoadBalancer::Bindings(
    IpAddress sip) const {
  auto it = bindings_.find(sip);
  if (it == bindings_.end()) {
    return NotFoundError("no such SIP: " + sip.ToString());
  }
  return it->second;
}

}  // namespace tenantnet
