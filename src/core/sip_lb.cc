#include "src/core/sip_lb.h"

#include <algorithm>
#include <cmath>

namespace tenantnet {

Status SipLoadBalancer::AddSip(IpAddress sip) {
  if (in_restart_) {
    pending_ops_.push_back(PendingOp{PendingOp::Kind::kAddSip, {}, sip});
    return Status::Ok();  // accepted asynchronously; validated at replay
  }
  auto [it, inserted] = bindings_.try_emplace(sip);
  if (!inserted) {
    return AlreadyExistsError("SIP already registered: " + sip.ToString());
  }
  ++config_revision_;
  return Status::Ok();
}

Status SipLoadBalancer::RemoveSip(IpAddress sip) {
  if (in_restart_) {
    pending_ops_.push_back(PendingOp{PendingOp::Kind::kRemoveSip, {}, sip});
    return Status::Ok();
  }
  if (bindings_.erase(sip) == 0) {
    return NotFoundError("no such SIP: " + sip.ToString());
  }
  ++config_revision_;
  return Status::Ok();
}

Status SipLoadBalancer::Bind(IpAddress eip, IpAddress sip, double weight) {
  if (in_restart_) {
    pending_ops_.push_back(
        PendingOp{PendingOp::Kind::kBind, eip, sip, weight});
    return Status::Ok();
  }
  auto it = bindings_.find(sip);
  if (it == bindings_.end()) {
    return NotFoundError("no such SIP: " + sip.ToString());
  }
  if (weight <= 0) {
    return InvalidArgumentError("weight must be positive");
  }
  for (Binding& b : it->second) {
    if (b.eip == eip) {
      b.weight = weight;  // re-bind adjusts the weight
      ++config_revision_;
      return Status::Ok();
    }
  }
  it->second.push_back(Binding{eip, weight, true});
  ++config_revision_;
  return Status::Ok();
}

Status SipLoadBalancer::Unbind(IpAddress eip, IpAddress sip) {
  if (in_restart_) {
    pending_ops_.push_back(PendingOp{PendingOp::Kind::kUnbind, eip, sip});
    return Status::Ok();
  }
  auto it = bindings_.find(sip);
  if (it == bindings_.end()) {
    return NotFoundError("no such SIP: " + sip.ToString());
  }
  auto& vec = it->second;
  auto bit = std::find_if(vec.begin(), vec.end(),
                          [eip](const Binding& b) { return b.eip == eip; });
  if (bit == vec.end()) {
    return NotFoundError("EIP not bound to this SIP");
  }
  vec.erase(bit);
  ++config_revision_;
  return Status::Ok();
}

void SipLoadBalancer::UnbindEverywhere(IpAddress eip) {
  if (in_restart_) {
    pending_ops_.push_back(
        PendingOp{PendingOp::Kind::kUnbindEverywhere, eip, {}});
    return;
  }
  for (auto& [sip, vec] : bindings_) {
    vec.erase(std::remove_if(vec.begin(), vec.end(),
                             [eip](const Binding& b) { return b.eip == eip; }),
              vec.end());
  }
  ++config_revision_;
}

void SipLoadBalancer::SetHealth(IpAddress eip, bool healthy) {
  if (in_restart_) {
    // The health prober writes into the (dead) control plane; the live
    // table keeps its stale verdicts until reconcile — the stale-backend
    // window the restart tests measure.
    pending_ops_.push_back(
        PendingOp{PendingOp::Kind::kSetHealth, eip, {}, 1.0, healthy});
    return;
  }
  for (auto& [sip, vec] : bindings_) {
    for (Binding& b : vec) {
      if (b.eip == eip) {
        b.healthy = healthy;
      }
    }
  }
  ++config_revision_;
}

Result<IpAddress> SipLoadBalancer::Resolve(IpAddress sip) {
  auto it = bindings_.find(sip);
  if (it == bindings_.end()) {
    return NotFoundError("no such SIP: " + sip.ToString());
  }
  double total = 0;
  for (const Binding& b : it->second) {
    if (b.healthy) {
      total += b.weight;
    }
  }
  if (total <= 0) {
    return ResourceExhaustedError("SIP " + sip.ToString() +
                                  " has no healthy backends");
  }
  double point = std::fmod(static_cast<double>(pick_seq_++) *
                           0.6180339887498949, 1.0) * total;
  for (const Binding& b : it->second) {
    if (!b.healthy) {
      continue;
    }
    if (point < b.weight) {
      return b.eip;
    }
    point -= b.weight;
  }
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    if (rit->healthy) {
      return rit->eip;
    }
  }
  return ResourceExhaustedError("no healthy backends");
}

Result<std::vector<SipLoadBalancer::Binding>> SipLoadBalancer::Bindings(
    IpAddress sip) const {
  auto it = bindings_.find(sip);
  if (it == bindings_.end()) {
    return NotFoundError("no such SIP: " + sip.ToString());
  }
  return it->second;
}

// ---------------------------------------------------------------------------
// Warm restart.
// ---------------------------------------------------------------------------

SipLbSnapshot SipLoadBalancer::Checkpoint() const {
  SipLbSnapshot snap;
  snap.pick_seq = pick_seq_;
  snap.sips.reserve(bindings_.size());
  for (const auto& [sip, vec] : bindings_) {
    snap.sips.push_back(SipLbSnapshot::Sip{sip, vec});
  }
  std::sort(snap.sips.begin(), snap.sips.end(),
            [](const auto& a, const auto& b) { return a.sip < b.sip; });
  return snap;
}

void SipLoadBalancer::RestoreFromSnapshot(const SipLbSnapshot& snap) {
  bindings_.clear();
  for (const SipLbSnapshot::Sip& sip : snap.sips) {
    bindings_[sip.sip] = sip.bindings;
  }
  pick_seq_ = snap.pick_seq;
  ++config_revision_;
}

void SipLoadBalancer::BeginRestart() {
  if (in_restart_) {
    return;  // overlapping restarts extend the same outage
  }
  // Unlike the filter bank, the binding table IS the programmed data plane,
  // so nothing is wiped — it freezes (no mutation lands until reconcile).
  in_restart_ = true;
}

ReconcileStats SipLoadBalancer::CompleteRestart(RestartMode mode,
                                                const SipLbSnapshot& snap) {
  ReconcileStats stats;
  in_restart_ = false;
  std::vector<PendingOp> ops;
  ops.swap(pending_ops_);
  stats.replayed_mutations = ops.size();

  // Rebuild the intended state out of line: snapshot + buffered mutations
  // replayed through the normal paths (invalid ops — e.g. a bind to a SIP
  // removed during the same outage — drop here, where they would have
  // failed synchronously).
  SipLoadBalancer intended;
  intended.RestoreFromSnapshot(snap);
  for (const PendingOp& op : ops) {
    Status status = Status::Ok();
    switch (op.kind) {
      case PendingOp::Kind::kAddSip:
        status = intended.AddSip(op.sip);
        break;
      case PendingOp::Kind::kRemoveSip:
        status = intended.RemoveSip(op.sip);
        break;
      case PendingOp::Kind::kBind:
        status = intended.Bind(op.eip, op.sip, op.weight);
        break;
      case PendingOp::Kind::kUnbind:
        status = intended.Unbind(op.eip, op.sip);
        break;
      case PendingOp::Kind::kUnbindEverywhere:
        intended.UnbindEverywhere(op.eip);
        break;
      case PendingOp::Kind::kSetHealth:
        intended.SetHealth(op.eip, op.healthy);
        break;
    }
    if (!status.ok()) {
      ++stats.dropped_mutations;
    }
  }

  if (mode == RestartMode::kCold) {
    // Rewrite the whole table (pick counter survives: it is data-plane
    // state, and replaying the resolution sequence would double-send).
    stats.deltas_applied = 0;
    for (const auto& [sip, vec] : intended.bindings_) {
      stats.deltas_applied += std::max<size_t>(1, vec.size());
    }
    bindings_ = std::move(intended.bindings_);
    ++config_revision_;
    return stats;
  }

  // Warm: rewrite only the SIPs whose intended bindings differ from the
  // live (frozen) table, and drop the ones that no longer exist.
  std::vector<IpAddress> doomed;
  for (const auto& [sip, vec] : bindings_) {
    ++stats.checked;
    if (intended.bindings_.find(sip) == intended.bindings_.end()) {
      doomed.push_back(sip);
    }
  }
  for (IpAddress sip : doomed) {
    bindings_.erase(sip);
    ++stats.deltas_applied;
  }
  for (auto& [sip, vec] : intended.bindings_) {
    ++stats.checked;
    auto it = bindings_.find(sip);
    if (it == bindings_.end()) {
      bindings_[sip] = std::move(vec);
      ++stats.deltas_applied;
    } else if (it->second != vec) {
      it->second = std::move(vec);
      ++stats.deltas_applied;
    }
  }
  ++config_revision_;
  return stats;
}

}  // namespace tenantnet
