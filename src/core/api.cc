#include "src/core/api.h"

#include <cassert>

namespace tenantnet {

DeclarativeCloud::DeclarativeCloud(CloudWorld& world, ConfigLedger& ledger,
                                   EventQueue* queue,
                                   DeclarativeParams params)
    : world_(&world), ledger_(&ledger), queue_(queue), params_(params),
      qos_(params.quota) {}

DeclarativeCloud::ProviderState& DeclarativeCloud::Provider(ProviderId id) {
  auto it = providers_.find(id);
  if (it != providers_.end()) {
    return it->second;
  }
  const ProviderSite& site = world_->provider(id);
  ProviderState state;
  // The provider's public space is split: front half for EIPs, back half
  // for SIPs (a provider implementation detail tenants never see).
  auto halves = site.address_space.Split();
  assert(halves.ok());
  // Lowest-first reuse keeps the live EIP range dense, which is what lets
  // the provider aggregate its table under churn (E4a's ablation).
  state.eip_pool = std::make_unique<HostAllocator>(
      halves->first, HostAllocator::ReusePolicy::kLowestFirst);
  state.sip_pool = std::make_unique<HostAllocator>(halves->second);
  state.filters = std::make_unique<EdgeFilterBank>(
      site.name, queue_, params_.rng_seed ^ id.value(), params_.filter);
  for (RegionId region_id : site.regions) {
    const RegionSite& region = world_->region(region_id);
    size_t edge = state.filters->AddEdge(site.name + ":" + region.name);
    state.edge_index[region_id] = edge;
    // Quota enforcement points: one per zone of each region.
    for (const ZoneSite& zone : region.zones) {
      qos_.RegisterPoint(region_id, zone.name);
    }
  }
  // Late-created domains replay existing group state.
  for (const auto& [group, record] : groups_) {
    state.filters->SetGroup(group, std::vector<IpAddress>(
                                       record.members.begin(),
                                       record.members.end()));
  }
  return providers_.emplace(id, std::move(state)).first->second;
}

DeclarativeCloud::OnPremState& DeclarativeCloud::OnPrem(OnPremId id) {
  auto it = on_prems_.find(id);
  if (it != on_prems_.end()) {
    return it->second;
  }
  const OnPremSite& site = world_->on_prem(id);
  OnPremState state;
  // Public default-off space for the site's endpoints (its ISP block).
  IpPrefix pool = *IpPrefix::Create(
      IpAddress::V4(198, 51, static_cast<uint8_t>(id.value() % 256), 0), 24);
  state.eip_pool = std::make_unique<HostAllocator>(
      pool, HostAllocator::ReusePolicy::kLowestFirst);
  state.filters = std::make_unique<EdgeFilterBank>(
      site.name, queue_, params_.rng_seed ^ (id.value() << 32),
      params_.filter);
  state.filters->AddEdge(site.name + ":router");
  for (const auto& [group, record] : groups_) {
    state.filters->SetGroup(group, std::vector<IpAddress>(
                                       record.members.begin(),
                                       record.members.end()));
  }
  return on_prems_.emplace(id, std::move(state)).first->second;
}

// --------------------------------------------------------------------------
// Table 2.
// --------------------------------------------------------------------------

Result<IpAddress> DeclarativeCloud::RequestEip(InstanceId vm) {
  const Instance* inst = world_->FindInstance(vm);
  if (inst == nullptr || !inst->running) {
    return NotFoundError("no such running instance");
  }
  if (eip_by_instance_.count(vm) > 0) {
    return AlreadyExistsError("instance already has an EIP");
  }

  EipRecord record;
  record.instance = vm;
  record.tenant = inst->tenant;
  record.host_node = inst->host_node;
  record.zone_index = inst->zone_index;

  if (inst->on_prem.valid()) {
    record.on_prem = inst->on_prem;
    OnPremState& site = OnPrem(inst->on_prem);
    TN_ASSIGN_OR_RETURN(record.addr, site.eip_pool->Allocate());
  } else {
    record.provider = inst->provider;
    record.region = inst->region;
    ProviderState& provider = Provider(inst->provider);
    TN_ASSIGN_OR_RETURN(record.addr, provider.eip_pool->Allocate());
    // The provider carries a host route; how it aggregates is its business.
    if (provider.rib.Install(
            IpPrefix::Host(record.addr),
            RouteEntry{world_->region(inst->region).edge_node,
                       RouteOrigin::kLocal, 0, RouteLabels().Intern("eip")})) {
      ++provider.rib_revision;
    }
  }

  ledger_->ApiCall("request_eip", "vm=" + std::to_string(vm.value()));
  IpAddress addr = record.addr;
  eips_.emplace(addr, record);
  eip_by_instance_[vm] = addr;
  ++endpoint_revision_;
  return addr;
}

Status DeclarativeCloud::ReleaseEip(IpAddress eip) {
  auto it = eips_.find(eip);
  if (it == eips_.end()) {
    return NotFoundError("no such EIP");
  }
  const EipRecord& record = it->second;
  if (record.on_prem.valid()) {
    OnPremState& site = OnPrem(record.on_prem);
    site.filters->RemovePermitList(eip);
    TN_RETURN_IF_ERROR(site.eip_pool->Release(eip));
  } else {
    ProviderState& provider = Provider(record.provider);
    provider.filters->RemovePermitList(eip);
    TN_RETURN_IF_ERROR(provider.rib.Withdraw(IpPrefix::Host(eip)));
    ++provider.rib_revision;
    TN_RETURN_IF_ERROR(provider.eip_pool->Release(eip));
  }
  sip_lb_.UnbindEverywhere(eip);
  // Drop the address from any groups it belonged to (provider-side
  // hygiene: a recycled address must not inherit old permissions).
  for (auto& [group, record] : groups_) {
    if (record.members.erase(eip) > 0) {
      PropagateGroup(group);
    }
  }
  eip_by_instance_.erase(record.instance);
  eips_.erase(it);
  ledger_->ApiCall("release_eip", eip.ToString());
  ++endpoint_revision_;
  return Status::Ok();
}

Result<IpAddress> DeclarativeCloud::RequestSip(TenantId tenant,
                                               ProviderId provider_id) {
  ProviderState& provider = Provider(provider_id);
  TN_ASSIGN_OR_RETURN(IpAddress sip, provider.sip_pool->Allocate());
  sips_.emplace(sip, SipRecord{sip, tenant, provider_id});
  TN_RETURN_IF_ERROR(sip_lb_.AddSip(sip));
  ledger_->ApiCall("request_sip", sip.ToString());
  ++endpoint_revision_;
  return sip;
}

Status DeclarativeCloud::ReleaseSip(IpAddress sip) {
  auto it = sips_.find(sip);
  if (it == sips_.end()) {
    return NotFoundError("no such SIP");
  }
  TN_RETURN_IF_ERROR(sip_lb_.RemoveSip(sip));
  TN_RETURN_IF_ERROR(Provider(it->second.provider).sip_pool->Release(sip));
  sips_.erase(it);
  ledger_->ApiCall("release_sip", sip.ToString());
  ++endpoint_revision_;
  return Status::Ok();
}

Status DeclarativeCloud::Bind(IpAddress eip, IpAddress sip, double weight) {
  auto eit = eips_.find(eip);
  if (eit == eips_.end()) {
    return NotFoundError("no such EIP");
  }
  auto sit = sips_.find(sip);
  if (sit == sips_.end()) {
    return NotFoundError("no such SIP");
  }
  if (eit->second.tenant != sit->second.tenant) {
    return PermissionDeniedError("EIP and SIP belong to different tenants");
  }
  TN_RETURN_IF_ERROR(sip_lb_.Bind(eip, sip, weight));
  ledger_->ApiCall("bind", eip.ToString() + "->" + sip.ToString());
  if (weight != 1.0) {
    ledger_->SetParameter("bind", "weight");
  }
  return Status::Ok();
}

Status DeclarativeCloud::Unbind(IpAddress eip, IpAddress sip) {
  TN_RETURN_IF_ERROR(sip_lb_.Unbind(eip, sip));
  ledger_->ApiCall("unbind", eip.ToString() + "-x->" + sip.ToString());
  return Status::Ok();
}

Result<SimTime> DeclarativeCloud::SetPermitList(
    IpAddress eip, std::vector<PermitEntry> entries) {
  auto it = eips_.find(eip);
  if (it == eips_.end()) {
    return NotFoundError("no such EIP");
  }
  for (const PermitEntry& entry : entries) {
    if (entry.source_group.valid() &&
        groups_.count(entry.source_group) == 0) {
      return NotFoundError("permit entry references an unknown group");
    }
  }
  ledger_->ApiCall("set_permit_list",
                   eip.ToString() + " (" + std::to_string(entries.size()) +
                       " entries)");
  for (size_t i = 0; i < entries.size(); ++i) {
    ledger_->SetParameter("set_permit_list", "entry");
  }
  const EipRecord& record = it->second;
  if (record.on_prem.valid()) {
    return OnPrem(record.on_prem)
        .filters->SetPermitList(eip, std::move(entries));
  }
  return Provider(record.provider)
      .filters->SetPermitList(eip, std::move(entries));
}

Result<SimTime> DeclarativeCloud::UpdatePermitList(
    IpAddress eip, std::vector<PermitEntry> add,
    std::vector<PermitEntry> remove) {
  auto it = eips_.find(eip);
  if (it == eips_.end()) {
    return NotFoundError("no such EIP");
  }
  ledger_->ApiCall("update_permit_list",
                   eip.ToString() + " (+" + std::to_string(add.size()) +
                       "/-" + std::to_string(remove.size()) + ")");
  for (size_t i = 0; i < add.size() + remove.size(); ++i) {
    ledger_->SetParameter("update_permit_list", "entry");
  }
  const EipRecord& record = it->second;
  if (record.on_prem.valid()) {
    return OnPrem(record.on_prem)
        .filters->UpdatePermitList(eip, std::move(add), remove);
  }
  return Provider(record.provider)
      .filters->UpdatePermitList(eip, std::move(add), remove);
}

// --------------------------------------------------------------------------
// Endpoint groups.
// --------------------------------------------------------------------------

void DeclarativeCloud::PropagateGroup(EndpointGroupId group) {
  auto it = groups_.find(group);
  std::vector<IpAddress> members;
  if (it != groups_.end()) {
    members.assign(it->second.members.begin(), it->second.members.end());
  }
  for (auto& [id, provider] : providers_) {
    provider.filters->SetGroup(group, members);
  }
  for (auto& [id, site] : on_prems_) {
    site.filters->SetGroup(group, members);
  }
}

Result<EndpointGroupId> DeclarativeCloud::CreateEndpointGroup(
    TenantId tenant, const std::string& name) {
  EndpointGroupId id = group_ids_.Next();
  groups_.emplace(id, GroupRecord{tenant, name, {}});
  ledger_->ApiCall("create_group", name);
  return id;
}

Status DeclarativeCloud::DeleteEndpointGroup(EndpointGroupId group) {
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    return NotFoundError("no such group");
  }
  groups_.erase(it);
  for (auto& [id, provider] : providers_) {
    provider.filters->RemoveGroup(group);
  }
  for (auto& [id, site] : on_prems_) {
    site.filters->RemoveGroup(group);
  }
  ledger_->ApiCall("delete_group", std::to_string(group.value()));
  return Status::Ok();
}

Status DeclarativeCloud::AddToEndpointGroup(EndpointGroupId group,
                                            IpAddress eip) {
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    return NotFoundError("no such group");
  }
  auto eit = eips_.find(eip);
  if (eit == eips_.end()) {
    return NotFoundError("no such EIP");
  }
  if (eit->second.tenant != it->second.tenant) {
    return PermissionDeniedError("EIP belongs to a different tenant");
  }
  it->second.members.insert(eip);
  PropagateGroup(group);
  ledger_->ApiCall("group_add", eip.ToString());
  return Status::Ok();
}

Status DeclarativeCloud::RemoveFromEndpointGroup(EndpointGroupId group,
                                                 IpAddress eip) {
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    return NotFoundError("no such group");
  }
  if (it->second.members.erase(eip) == 0) {
    return NotFoundError("EIP not in group");
  }
  PropagateGroup(group);
  ledger_->ApiCall("group_remove", eip.ToString());
  return Status::Ok();
}

Result<std::vector<IpAddress>> DeclarativeCloud::GroupMembers(
    EndpointGroupId group) const {
  auto it = groups_.find(group);
  if (it == groups_.end()) {
    return NotFoundError("no such group");
  }
  return std::vector<IpAddress>(it->second.members.begin(),
                                it->second.members.end());
}

Status DeclarativeCloud::SetQos(TenantId tenant, RegionId region,
                                double bandwidth_bps) {
  const RegionSite& site = world_->region(region);
  Provider(site.provider);  // ensures enforcement points exist
  SimTime now = queue_ != nullptr ? queue_->now() : SimTime::Epoch();
  TN_RETURN_IF_ERROR(qos_.SetQuota(tenant, region, bandwidth_bps, now));
  ledger_->ApiCall("set_qos", site.name + " bw=" +
                                  std::to_string(bandwidth_bps));
  return Status::Ok();
}

Status DeclarativeCloud::SetQos(TenantId tenant, RegionId region,
                                double bandwidth_bps, QosSelector selector) {
  const RegionSite& site = world_->region(region);
  Provider(site.provider);
  SimTime now = queue_ != nullptr ? queue_->now() : SimTime::Epoch();
  TN_RETURN_IF_ERROR(
      qos_.SetQuota(tenant, region, bandwidth_bps, now, std::move(selector)));
  ledger_->ApiCall("set_qos", site.name + " bw=" +
                                  std::to_string(bandwidth_bps) +
                                  " (scoped)");
  ledger_->SetParameter("set_qos", "traffic-selector");
  return Status::Ok();
}

Status DeclarativeCloud::SetEgressProfile(TenantId tenant,
                                          EgressPolicy profile) {
  if (profile == EgressPolicy::kDedicated) {
    return InvalidArgumentError(
        "dedicated links are not part of the declarative model (§4)");
  }
  profiles_[tenant] = profile;
  ledger_->ApiCall("set_egress_profile",
                   std::string(EgressPolicyName(profile)));
  return Status::Ok();
}

EgressPolicy DeclarativeCloud::EgressProfileOf(TenantId tenant) const {
  auto it = profiles_.find(tenant);
  return it == profiles_.end() ? EgressPolicy::kHotPotato : it->second;
}

// --------------------------------------------------------------------------
// Provider-side signals.
// --------------------------------------------------------------------------

void DeclarativeCloud::NotifyInstanceDown(InstanceId instance) {
  auto it = eip_by_instance_.find(instance);
  if (it == eip_by_instance_.end()) {
    return;
  }
  IpAddress eip = it->second;
  sip_lb_.SetHealth(eip, false);
  // The provider stops announcing reachability for a dead endpoint: the EIP
  // host route leaves the RIB (the BGP analogue of WithdrawOrigin), so
  // routed delivery fails fast instead of blackholing into the host.
  auto eit = eips_.find(eip);
  if (eit != eips_.end() && eit->second.provider.valid()) {
    ProviderState& provider = Provider(eit->second.provider);
    // Idempotent: a second Down for the same instance finds no route (and
    // does not bump the revision).
    if (provider.rib.Withdraw(IpPrefix::Host(eip)).ok()) {
      ++provider.rib_revision;
    }
  }
}

void DeclarativeCloud::NotifyInstanceUp(InstanceId instance) {
  auto it = eip_by_instance_.find(instance);
  if (it == eip_by_instance_.end()) {
    return;
  }
  IpAddress eip = it->second;
  sip_lb_.SetHealth(eip, true);
  auto eit = eips_.find(eip);
  if (eit != eips_.end() && eit->second.provider.valid()) {
    ProviderState& provider = Provider(eit->second.provider);
    if (provider.rib.Install(
            IpPrefix::Host(eip),
            RouteEntry{world_->region(eit->second.region).edge_node,
                       RouteOrigin::kLocal, 0, RouteLabels().Intern("eip")})) {
      ++provider.rib_revision;
    }
  }
}

// --------------------------------------------------------------------------
// Data plane.
// --------------------------------------------------------------------------

bool DeclarativeCloud::AdmittedAtDestination(const EipRecord& dst,
                                             const FiveTuple& flow,
                                             std::string* where) const {
  if (dst.on_prem.valid()) {
    auto it = on_prems_.find(dst.on_prem);
    assert(it != on_prems_.end());
    *where = world_->on_prem(dst.on_prem).name + ":router";
    return it->second.filters->Admits(0, flow);
  }
  auto it = providers_.find(dst.provider);
  assert(it != providers_.end());
  size_t edge = it->second.edge_index.at(dst.region);
  *where = world_->provider(dst.provider).name + ":" +
           world_->region(dst.region).name;
  return it->second.filters->Admits(edge, flow);
}

Result<DeclarativeCloud::DestinationEdge> DeclarativeCloud::DestinationEdgeOf(
    IpAddress eip) {
  auto it = eips_.find(eip);
  if (it == eips_.end()) {
    return NotFoundError("no endpoint holds " + eip.ToString());
  }
  const EipRecord& record = it->second;
  DestinationEdge edge;
  if (record.on_prem.valid()) {
    edge.bank = OnPrem(record.on_prem).filters.get();
    edge.edge_index = 0;
    edge.where = world_->on_prem(record.on_prem).name + ":router";
    return edge;
  }
  ProviderState& provider = Provider(record.provider);
  edge.bank = provider.filters.get();
  edge.edge_index = provider.edge_index.at(record.region);
  edge.where = world_->provider(record.provider).name + ":" +
               world_->region(record.region).name;
  return edge;
}

Result<DeclarativeDelivery> DeclarativeCloud::Evaluate(InstanceId src,
                                                       IpAddress dst,
                                                       uint16_t dst_port,
                                                       Protocol proto) {
  const Instance* src_inst = world_->FindInstance(src);
  if (src_inst == nullptr || !src_inst->running) {
    return NotFoundError("no such running instance");
  }
  auto sit = eip_by_instance_.find(src);
  if (sit == eip_by_instance_.end()) {
    return FailedPreconditionError("source instance has no EIP (request_eip)");
  }

  DeclarativeDelivery d;
  d.src_node = src_inst->host_node;
  d.effective_src = sit->second;
  d.effective_dst = dst;
  d.vm_egress_cap_bps = src_inst->vm_egress_cap_bps;

  FiveTuple flow;
  flow.src = sit->second;
  flow.dst = dst;
  flow.src_port = 40000 + static_cast<uint16_t>(src.value() % 20000);
  flow.dst_port = dst_port;
  flow.proto = proto;

  // SIP resolution (provider anycast load balancer).
  if (IsSip(dst)) {
    d.provider_hops.push_back("sip-lb");
    Result<IpAddress> backend = sip_lb_.Resolve(dst);
    if (!backend.ok()) {
      d.drop_stage = "sip";
      d.drop_reason = backend.status().message();
      return d;
    }
    flow.dst = *backend;
    d.effective_dst = *backend;
  }

  auto dit = eips_.find(flow.dst);
  if (dit == eips_.end()) {
    d.drop_stage = "no-such-endpoint";
    d.drop_reason = "no endpoint holds " + flow.dst.ToString();
    return d;
  }
  const EipRecord& dst_record = dit->second;

  const Instance* dst_inst = world_->FindInstance(dst_record.instance);
  if (dst_inst == nullptr || !dst_inst->running) {
    d.drop_stage = "instance-down";
    d.drop_reason = "endpoint " + flow.dst.ToString() + " is not running";
    return d;
  }

  std::string where;
  bool admitted = AdmittedAtDestination(dst_record, flow, &where);
  d.provider_hops.push_back("edge-filter@" + where);
  if (!admitted) {
    d.drop_stage = "edge-filter";
    d.drop_reason = "default-off: " + flow.src.ToString() +
                    " is not on the permit list of " + flow.dst.ToString();
    return d;
  }

  d.delivered = true;
  d.dst_node = dst_record.host_node;
  // Intra-provider traffic rides the backbone; external traffic follows the
  // tenant's potato profile.
  if (dst_record.provider.valid() && src_inst->provider.valid() &&
      dst_record.provider == src_inst->provider) {
    d.egress_policy = EgressPolicy::kColdPotato;
  } else {
    d.egress_policy = EgressProfileOf(src_inst->tenant);
  }
  return d;
}

DeclarativeDelivery DeclarativeCloud::EvaluateExternal(IpAddress src,
                                                       IpAddress dst,
                                                       uint16_t dst_port,
                                                       Protocol proto) {
  DeclarativeDelivery d;
  d.effective_src = src;
  d.effective_dst = dst;
  d.egress_policy = EgressPolicy::kHotPotato;

  FiveTuple flow;
  flow.src = src;
  flow.dst = dst;
  flow.src_port = 55555;
  flow.dst_port = dst_port;
  flow.proto = proto;

  if (IsSip(dst)) {
    d.provider_hops.push_back("sip-lb");
    Result<IpAddress> backend = sip_lb_.Resolve(dst);
    if (!backend.ok()) {
      d.drop_stage = "sip";
      d.drop_reason = backend.status().message();
      return d;
    }
    flow.dst = *backend;
    d.effective_dst = *backend;
  }

  auto dit = eips_.find(flow.dst);
  if (dit == eips_.end()) {
    d.drop_stage = "no-such-endpoint";
    d.drop_reason = "no endpoint holds " + flow.dst.ToString();
    return d;
  }
  std::string where;
  if (!AdmittedAtDestination(dit->second, flow, &where)) {
    d.drop_stage = "edge-filter";
    d.drop_reason = "default-off at " + where;
    d.provider_hops.push_back("edge-filter@" + where);
    return d;
  }
  d.provider_hops.push_back("edge-filter@" + where);
  d.delivered = true;
  d.dst_node = dit->second.host_node;
  return d;
}

// --------------------------------------------------------------------------
// Lookup / metrics.
// --------------------------------------------------------------------------

const EipRecord* DeclarativeCloud::FindEip(IpAddress addr) const {
  auto it = eips_.find(addr);
  return it == eips_.end() ? nullptr : &it->second;
}

std::optional<IpAddress> DeclarativeCloud::EipOf(InstanceId instance) const {
  auto it = eip_by_instance_.find(instance);
  if (it == eip_by_instance_.end()) {
    return std::nullopt;
  }
  return it->second;
}

EdgeFilterBank& DeclarativeCloud::provider_filters(ProviderId provider) {
  return *Provider(provider).filters;
}

EdgeFilterBank& DeclarativeCloud::on_prem_filters(OnPremId site) {
  return *OnPrem(site).filters;
}

size_t DeclarativeCloud::ProviderRibEntries(ProviderId provider) {
  return Provider(provider).rib.entry_count();
}

size_t DeclarativeCloud::ProviderRibNodes(ProviderId provider) {
  return Provider(provider).rib.node_count();
}

size_t DeclarativeCloud::ProviderAggregatedRibEntries(ProviderId provider) {
  ProviderState& state = Provider(provider);
  if (!state.aggregated_valid || state.aggregated_at != state.rib_revision) {
    state.aggregated_entries =
        AggregatePrefixes(state.rib.Prefixes()).size();
    state.aggregated_at = state.rib_revision;
    state.aggregated_valid = true;
  }
  return state.aggregated_entries;
}

uint64_t DeclarativeCloud::ProviderRibRevision(ProviderId provider) {
  return Provider(provider).rib_revision;
}

}  // namespace tenantnet
