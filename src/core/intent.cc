#include "src/core/intent.h"

#include <algorithm>

namespace tenantnet {

Result<IpAddress> DeployedApp::AddressOf(const std::string& service) const {
  auto it = services.find(service);
  if (it == services.end()) {
    return NotFoundError("no such service: " + service);
  }
  if (it->second.sip.has_value()) {
    return *it->second.sip;
  }
  if (it->second.eip_by_instance.size() == 1) {
    return it->second.eip_by_instance.begin()->second;
  }
  return FailedPreconditionError(
      "service has multiple instances but no SIP: " + service);
}

Result<IpAddress> DeployedApp::EipOf(const std::string& service,
                                     InstanceId instance) const {
  auto it = services.find(service);
  if (it == services.end()) {
    return NotFoundError("no such service: " + service);
  }
  auto eit = it->second.eip_by_instance.find(instance.value());
  if (eit == it->second.eip_by_instance.end()) {
    return NotFoundError("instance not in service");
  }
  return eit->second;
}

std::vector<FiveTuple> ExpectedFlows(const AppSpec& app,
                                     const DeployedApp& deployed) {
  std::vector<FiveTuple> flows;
  for (const CallEdge& edge : app.calls) {
    auto cit = deployed.services.find(edge.caller);
    auto sit = deployed.services.find(edge.callee);
    if (cit == deployed.services.end() || sit == deployed.services.end()) {
      continue;  // undeployed edge carries no intent
    }
    const ServiceSpec* callee_spec = nullptr;
    for (const ServiceSpec& spec : app.services) {
      if (spec.name == edge.callee) {
        callee_spec = &spec;
        break;
      }
    }
    if (callee_spec == nullptr) {
      continue;
    }
    for (const auto& [src_value, src_eip] : cit->second.eip_by_instance) {
      for (const auto& [dst_value, dst_eip] : sit->second.eip_by_instance) {
        FiveTuple flow;
        flow.src = src_eip;
        flow.dst = dst_eip;
        flow.dst_port = callee_spec->port;
        flow.proto = callee_spec->proto;
        flows.push_back(flow);
      }
    }
  }
  std::sort(flows.begin(), flows.end(), [](const FiveTuple& a,
                                           const FiveTuple& b) {
    if (a.dst != b.dst) return a.dst < b.dst;
    if (a.src != b.src) return a.src < b.src;
    if (a.dst_port != b.dst_port) return a.dst_port < b.dst_port;
    return a.proto < b.proto;
  });
  flows.erase(std::unique(flows.begin(), flows.end()), flows.end());
  return flows;
}

const ServiceSpec* IntentDeployer::FindSpec(const AppSpec& app,
                                            const std::string& name) const {
  for (const ServiceSpec& spec : app.services) {
    if (spec.name == name) {
      return &spec;
    }
  }
  return nullptr;
}

Result<DeployedApp> IntentDeployer::Deploy(const AppSpec& app) {
  // Validate the call graph first: every edge must name declared services.
  for (const CallEdge& edge : app.calls) {
    if (FindSpec(app, edge.caller) == nullptr ||
        FindSpec(app, edge.callee) == nullptr) {
      return InvalidArgumentError("call edge references unknown service: " +
                                  edge.caller + " -> " + edge.callee);
    }
  }
  std::map<std::string, std::vector<std::string>> callers_of;
  for (const CallEdge& edge : app.calls) {
    callers_of[edge.callee].push_back(edge.caller);
  }

  DeployedApp deployed;

  // Pass 1: endpoints and per-service groups.
  for (const ServiceSpec& spec : app.services) {
    DeployedApp::ServiceHandles handles;
    TN_ASSIGN_OR_RETURN(handles.group,
                        cloud_->CreateEndpointGroup(app.tenant, spec.name));
    for (InstanceId instance : spec.instances) {
      TN_ASSIGN_OR_RETURN(IpAddress eip, cloud_->RequestEip(instance));
      handles.eip_by_instance[instance.value()] = eip;
      TN_RETURN_IF_ERROR(cloud_->AddToEndpointGroup(handles.group, eip));
    }
    if (spec.instances.size() > 1 && spec.sip_provider.valid()) {
      TN_ASSIGN_OR_RETURN(IpAddress sip,
                          cloud_->RequestSip(app.tenant, spec.sip_provider));
      handles.sip = sip;
      for (const auto& [value, eip] : handles.eip_by_instance) {
        TN_RETURN_IF_ERROR(cloud_->Bind(eip, sip));
      }
    }
    deployed.services.emplace(spec.name, std::move(handles));
  }

  // Pass 2: permit lists from the call graph. Each service permits its
  // callers' groups on its service port; public services additionally
  // permit the world on that port.
  for (const ServiceSpec& spec : app.services) {
    std::vector<PermitEntry> permits;
    for (const std::string& caller : callers_of[spec.name]) {
      PermitEntry entry;
      entry.source_group = deployed.services.at(caller).group;
      entry.dst_ports = PortRange::Single(spec.port);
      entry.proto = spec.proto;
      permits.push_back(entry);
    }
    if (spec.public_facing) {
      PermitEntry anyone;
      anyone.source = IpPrefix::Any(IpFamily::kIpv4);
      anyone.dst_ports = PortRange::Single(spec.port);
      anyone.proto = spec.proto;
      permits.push_back(anyone);
    }
    const auto& handles = deployed.services.at(spec.name);
    for (const auto& [value, eip] : handles.eip_by_instance) {
      TN_RETURN_IF_ERROR(cloud_->SetPermitList(eip, permits).status());
    }
  }
  return deployed;
}

Status IntentDeployer::AddInstance(DeployedApp& app, const AppSpec& spec,
                                   const std::string& service,
                                   InstanceId instance) {
  auto it = app.services.find(service);
  if (it == app.services.end()) {
    return NotFoundError("no such deployed service: " + service);
  }
  const ServiceSpec* service_spec = FindSpec(spec, service);
  if (service_spec == nullptr) {
    return NotFoundError("service not in spec: " + service);
  }
  TN_ASSIGN_OR_RETURN(IpAddress eip, cloud_->RequestEip(instance));
  it->second.eip_by_instance[instance.value()] = eip;
  TN_RETURN_IF_ERROR(cloud_->AddToEndpointGroup(it->second.group, eip));
  if (it->second.sip.has_value()) {
    TN_RETURN_IF_ERROR(cloud_->Bind(eip, *it->second.sip));
  }

  // The newcomer needs the same inbound permit list as its siblings.
  std::map<std::string, std::vector<std::string>> callers_of;
  for (const CallEdge& edge : spec.calls) {
    callers_of[edge.callee].push_back(edge.caller);
  }
  std::vector<PermitEntry> permits;
  for (const std::string& caller : callers_of[service]) {
    auto cit = app.services.find(caller);
    if (cit == app.services.end()) {
      return FailedPreconditionError("caller not deployed: " + caller);
    }
    PermitEntry entry;
    entry.source_group = cit->second.group;
    entry.dst_ports = PortRange::Single(service_spec->port);
    entry.proto = service_spec->proto;
    permits.push_back(entry);
  }
  if (service_spec->public_facing) {
    PermitEntry anyone;
    anyone.source = IpPrefix::Any(IpFamily::kIpv4);
    anyone.dst_ports = PortRange::Single(service_spec->port);
    anyone.proto = service_spec->proto;
    permits.push_back(anyone);
  }
  return cloud_->SetPermitList(eip, permits).status();
}

Status IntentDeployer::RemoveInstance(DeployedApp& app,
                                      const std::string& service,
                                      InstanceId instance) {
  auto it = app.services.find(service);
  if (it == app.services.end()) {
    return NotFoundError("no such deployed service: " + service);
  }
  auto eit = it->second.eip_by_instance.find(instance.value());
  if (eit == it->second.eip_by_instance.end()) {
    return NotFoundError("instance not deployed in service");
  }
  IpAddress eip = eit->second;
  if (it->second.sip.has_value()) {
    TN_RETURN_IF_ERROR(cloud_->Unbind(eip, *it->second.sip));
  }
  TN_RETURN_IF_ERROR(cloud_->RemoveFromEndpointGroup(it->second.group, eip));
  TN_RETURN_IF_ERROR(cloud_->ReleaseEip(eip));
  it->second.eip_by_instance.erase(eit);
  return Status::Ok();
}

}  // namespace tenantnet
