// DeclarativeCloud: the paper's proposed tenant networking interface
// (Table 2), with the provider-side machinery that makes it real.
//
//   request_eip(vm_id)              -> RequestEip(instance)
//   request_sip()                   -> RequestSip(tenant, provider)
//   bind(eip, sip)                  -> Bind(eip, sip [, weight])
//   set_permit_list(eip, permit)    -> SetPermitList(eip, entries)
//   set_qos(region, bandwidth)      -> SetQos(tenant, region, bps)
//
// plus the hot/cold-potato transit profile the paper adopts unchanged from
// today's offerings. There is no tenant networking layer underneath: no
// VPCs, no gateways, no appliances. The provider side consists of
//  * flat EIP allocation from the provider pool, installed in the
//    provider's routing table (host routes the provider may aggregate),
//  * default-off permit-list enforcement replicated at provider edges,
//  * provider-managed SIP load balancing,
//  * distributed egress-quota enforcement.
//
// Every tenant-visible call is recorded in the ConfigLedger as an API call
// so E1/E2/E7 can compare complexity like for like with the baseline.
// On-prem sites participate uniformly: their endpoints get public
// default-off addresses enforced at the site router — the "works across
// administrative domains without cooperation" property of §5.

#ifndef TENANTNET_SRC_CORE_API_H_
#define TENANTNET_SRC_CORE_API_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cloud/world.h"
#include "src/core/edge_filter.h"
#include "src/core/qos.h"
#include "src/core/sip_lb.h"
#include "src/net/ipam.h"
#include "src/routing/route_table.h"
#include "src/sim/event_queue.h"
#include "src/vnet/config_ledger.h"

namespace tenantnet {

// Where an endpoint lives.
struct EipRecord {
  IpAddress addr;
  InstanceId instance;
  TenantId tenant;
  ProviderId provider;   // invalid for on-prem endpoints
  RegionId region;       // invalid for on-prem endpoints
  OnPremId on_prem;      // invalid for cloud endpoints
  NodeId host_node;
  int zone_index = 0;
};

struct SipRecord {
  IpAddress addr;
  TenantId tenant;
  ProviderId provider;
};

// The verdict for one evaluated flow in the declarative world.
struct DeclarativeDelivery {
  bool delivered = false;
  std::string drop_stage;   // "edge-filter", "sip", "no-eip", ...
  std::string drop_reason;
  std::vector<std::string> provider_hops;  // provider-side steps (not tenant
                                           // boxes; there are none)
  IpAddress effective_src;
  IpAddress effective_dst;  // post SIP resolution
  NodeId src_node;
  NodeId dst_node;
  EgressPolicy egress_policy = EgressPolicy::kColdPotato;
  // Provider-enforced per-VM egress guarantee for the source, if known.
  double vm_egress_cap_bps = 0;
};

struct DeclarativeParams {
  EdgeFilterParams filter;
  QuotaParams quota;
  uint64_t rng_seed = 42;
};

class DeclarativeCloud {
 public:
  // `queue` may be null (permit-list installs apply immediately).
  DeclarativeCloud(CloudWorld& world, ConfigLedger& ledger,
                   EventQueue* queue = nullptr, DeclarativeParams params = {});

  // --- Table 2 -------------------------------------------------------------

  Result<IpAddress> RequestEip(InstanceId vm);
  Status ReleaseEip(IpAddress eip);

  Result<IpAddress> RequestSip(TenantId tenant, ProviderId provider);
  Status ReleaseSip(IpAddress sip);

  Status Bind(IpAddress eip, IpAddress sip, double weight = 1.0);
  Status Unbind(IpAddress eip, IpAddress sip);

  // Replaces the endpoint's permit list. Returns the time the last edge
  // applies it (== now without an event queue).
  Result<SimTime> SetPermitList(IpAddress eip, std::vector<PermitEntry> entries);

  // Incremental permit-list update — the kind of extension §4 anticipates;
  // avoids resending the whole list on endpoint churn.
  Result<SimTime> UpdatePermitList(IpAddress eip, std::vector<PermitEntry> add,
                                   std::vector<PermitEntry> remove);

  // --- Endpoint groups (the §4 grouping extension) ---------------------------
  // Groups replace the VPC's one remaining legitimate role: naming a set of
  // endpoints. A permit entry may reference a group; membership changes
  // propagate once per enforcement domain instead of once per referencing
  // permit list.
  Result<EndpointGroupId> CreateEndpointGroup(TenantId tenant,
                                              const std::string& name);
  Status DeleteEndpointGroup(EndpointGroupId group);
  Status AddToEndpointGroup(EndpointGroupId group, IpAddress eip);
  Status RemoveFromEndpointGroup(EndpointGroupId group, IpAddress eip);
  // The group's current members (for tests/inspection).
  Result<std::vector<IpAddress>> GroupMembers(EndpointGroupId group) const;

  Status SetQos(TenantId tenant, RegionId region, double bandwidth_bps);
  // Scoped variant (extension, §4 footnote): only traffic matching the
  // selector consumes the reservation.
  Status SetQos(TenantId tenant, RegionId region, double bandwidth_bps,
                QosSelector selector);

  // The hot/cold potato profile (per tenant; §4 adopts this unchanged).
  Status SetEgressProfile(TenantId tenant, EgressPolicy profile);
  EgressPolicy EgressProfileOf(TenantId tenant) const;

  // --- Provider-side signals (not tenant actions) ---------------------------

  // Instance lifecycle: the provider notices and updates SIP health; the
  // tenant does nothing (contrast with baseline health-check config).
  void NotifyInstanceDown(InstanceId instance);
  void NotifyInstanceUp(InstanceId instance);

  // --- Data plane ------------------------------------------------------------

  // Traffic from a tenant instance toward an EIP or SIP.
  Result<DeclarativeDelivery> Evaluate(InstanceId src, IpAddress dst,
                                       uint16_t dst_port, Protocol proto);

  // Traffic from an arbitrary internet source (attack simulation).
  DeclarativeDelivery EvaluateExternal(IpAddress src, IpAddress dst,
                                       uint16_t dst_port, Protocol proto);

  // --- Lookup / metrics --------------------------------------------------------

  const EipRecord* FindEip(IpAddress addr) const;
  std::optional<IpAddress> EipOf(InstanceId instance) const;
  bool IsSip(IpAddress addr) const { return sips_.count(addr) > 0; }

  SipLoadBalancer& sip_lb() { return sip_lb_; }
  EgressQuotaManager& qos() { return qos_; }
  EdgeFilterBank& provider_filters(ProviderId provider);
  EdgeFilterBank& on_prem_filters(OnPremId site);

  // The enforcing filter bank and ingress edge for an EIP's hosting domain
  // (provider region edge, or the on-prem site router), plus the label
  // AdmittedAtDestination reports. The reach query engine walks the
  // compiled matchers through this without evaluating traffic.
  struct DestinationEdge {
    EdgeFilterBank* bank = nullptr;
    size_t edge_index = 0;
    std::string where;
  };
  Result<DestinationEdge> DestinationEdgeOf(IpAddress eip);

  // Revision hook (reach-verifier keying): bumped when the address topology
  // changes — EIP/SIP allocation or release. Permit-list and binding churn
  // are covered by the finer-grained EdgeFilterBank epochs and the SIP
  // balancer's config_revision().
  uint64_t endpoint_revision() const { return endpoint_revision_; }

  // E4a: the provider's routing state under flat EIPs.
  size_t ProviderRibEntries(ProviderId provider);
  size_t ProviderRibNodes(ProviderId provider);
  // Minimal table if the provider aggregates its (contiguous) allocations.
  // Cached against ProviderRibRevision: repeated calls with no intervening
  // RIB change do not re-aggregate.
  size_t ProviderAggregatedRibEntries(ProviderId provider);
  // Bumped only when the provider's EIP RIB actually changes (install of a
  // new/different host route, or a successful withdraw) — the declarative
  // analogue of the BGP mesh's mutation count.
  uint64_t ProviderRibRevision(ProviderId provider);

  size_t eip_count() const { return eips_.size(); }

 private:
  struct ProviderState {
    std::unique_ptr<HostAllocator> eip_pool;
    std::unique_ptr<HostAllocator> sip_pool;
    std::unique_ptr<EdgeFilterBank> filters;  // one edge per region
    std::unordered_map<RegionId, size_t> edge_index;  // region -> edge
    RouteTable rib;  // flat host routes for every live EIP
    // Change-only revision of `rib`; keys the aggregation cache below.
    uint64_t rib_revision = 0;
    // Memoized AggregatePrefixes(rib).size() and the revision it was
    // computed at (valid once aggregated_at != 0 or a computation ran).
    bool aggregated_valid = false;
    uint64_t aggregated_at = 0;
    size_t aggregated_entries = 0;
  };
  struct OnPremState {
    std::unique_ptr<HostAllocator> eip_pool;
    std::unique_ptr<EdgeFilterBank> filters;  // single site-router edge
  };

  ProviderState& Provider(ProviderId id);
  OnPremState& OnPrem(OnPremId id);

  // Default-off admission check at the destination's ingress edge.
  bool AdmittedAtDestination(const EipRecord& dst, const FiveTuple& flow,
                             std::string* where) const;

  CloudWorld* world_;
  ConfigLedger* ledger_;
  EventQueue* queue_;
  DeclarativeParams params_;

  std::unordered_map<ProviderId, ProviderState> providers_;
  std::unordered_map<OnPremId, OnPremState> on_prems_;

  struct GroupRecord {
    TenantId tenant;
    std::string name;
    std::set<IpAddress> members;
  };

  // Pushes a group's membership to every existing enforcement domain.
  void PropagateGroup(EndpointGroupId group);

  std::unordered_map<IpAddress, EipRecord> eips_;
  std::unordered_map<InstanceId, IpAddress> eip_by_instance_;
  std::unordered_map<IpAddress, SipRecord> sips_;
  std::unordered_map<TenantId, EgressPolicy> profiles_;
  std::unordered_map<EndpointGroupId, GroupRecord> groups_;
  IdGenerator<EndpointGroupId> group_ids_;

  SipLoadBalancer sip_lb_;
  EgressQuotaManager qos_;
  uint64_t endpoint_revision_ = 0;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_CORE_API_H_
