// Provider-managed service-IP load balancing (§4 Availability).
//
// The tenant requests a SIP, binds EIPs to it with optional weights, and is
// done: health checking, rebalancing and failover are the provider's
// problem. Contrast with the baseline's four load-balancer families, target
// groups, listeners and health-check knobs — the tenant-visible surface
// here is exactly bind/unbind.

#ifndef TENANTNET_SRC_CORE_SIP_LB_H_
#define TENANTNET_SRC_CORE_SIP_LB_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/net/ip.h"

namespace tenantnet {

class SipLoadBalancer {
 public:
  struct Binding {
    IpAddress eip;
    double weight = 1.0;
    bool healthy = true;  // maintained by the provider, not the tenant
  };

  // Registers a SIP (called by the control plane on request_sip).
  Status AddSip(IpAddress sip);
  Status RemoveSip(IpAddress sip);
  bool IsSip(IpAddress addr) const { return bindings_.count(addr) > 0; }

  // bind(eip, sip): adds or reweights a backend.
  Status Bind(IpAddress eip, IpAddress sip, double weight = 1.0);
  Status Unbind(IpAddress eip, IpAddress sip);

  // Removes the EIP from every SIP it is bound to (endpoint released).
  void UnbindEverywhere(IpAddress eip);

  // Provider-side health signal (instance died / recovered).
  void SetHealth(IpAddress eip, bool healthy);

  // Picks a backend EIP for a new flow to `sip`. Deterministic smooth
  // weighted spreading over healthy backends via the pick counter.
  Result<IpAddress> Resolve(IpAddress sip);

  // All bindings of a SIP (healthy or not).
  Result<std::vector<Binding>> Bindings(IpAddress sip) const;

  size_t sip_count() const { return bindings_.size(); }
  uint64_t resolutions() const { return pick_seq_; }

 private:
  std::unordered_map<IpAddress, std::vector<Binding>> bindings_;
  uint64_t pick_seq_ = 0;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_CORE_SIP_LB_H_
