// Provider-managed service-IP load balancing (§4 Availability).
//
// The tenant requests a SIP, binds EIPs to it with optional weights, and is
// done: health checking, rebalancing and failover are the provider's
// problem. Contrast with the baseline's four load-balancer families, target
// groups, listeners and health-check knobs — the tenant-visible surface
// here is exactly bind/unbind.

#ifndef TENANTNET_SRC_CORE_SIP_LB_H_
#define TENANTNET_SRC_CORE_SIP_LB_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/reconcile.h"
#include "src/common/status.h"
#include "src/net/ip.h"

namespace tenantnet {

// Durable image of the LB control plane: every SIP with its bindings (in
// binding order — Resolve's weighted spread walks the vector) plus the pick
// counter, so a restored balancer resolves the same sequence.
struct SipLbSnapshot;

class SipLoadBalancer {
 public:
  struct Binding {
    IpAddress eip;
    double weight = 1.0;
    bool healthy = true;  // maintained by the provider, not the tenant

    friend bool operator==(const Binding& a, const Binding& b) = default;
  };

  // Registers a SIP (called by the control plane on request_sip).
  Status AddSip(IpAddress sip);
  Status RemoveSip(IpAddress sip);
  bool IsSip(IpAddress addr) const { return bindings_.count(addr) > 0; }

  // bind(eip, sip): adds or reweights a backend.
  Status Bind(IpAddress eip, IpAddress sip, double weight = 1.0);
  Status Unbind(IpAddress eip, IpAddress sip);

  // Removes the EIP from every SIP it is bound to (endpoint released).
  void UnbindEverywhere(IpAddress eip);

  // Provider-side health signal (instance died / recovered).
  void SetHealth(IpAddress eip, bool healthy);

  // Picks a backend EIP for a new flow to `sip`. Deterministic smooth
  // weighted spreading over healthy backends via the pick counter.
  Result<IpAddress> Resolve(IpAddress sip);

  // All bindings of a SIP (healthy or not).
  Result<std::vector<Binding>> Bindings(IpAddress sip) const;

  size_t sip_count() const { return bindings_.size(); }
  uint64_t resolutions() const { return pick_seq_; }

  // Revision hook (reach-verifier keying): bumped by every mutation that can
  // change what a SIP resolves to — bind/unbind, health flips, SIP
  // add/remove, restores and restart completions. Resolve() itself does not
  // move it (the pick counter is data-plane state).
  uint64_t config_revision() const { return config_revision_; }

  // --- Warm restart (see src/common/reconcile.h for the protocol) -----------

  SipLbSnapshot Checkpoint() const;
  // Reinstates exactly what Checkpoint() captured (bindings + pick counter).
  void RestoreFromSnapshot(const SipLbSnapshot& snap);

  // The control plane dies: Bind/Unbind/SetHealth/Add/RemoveSip buffer
  // (accepted asynchronously, validated at replay) until CompleteRestart().
  // The binding table doubles as the programmed data plane, so Resolve()
  // keeps serving the frozen state — including stale health for backends
  // that died during the outage. Idempotent.
  void BeginRestart();
  bool in_restart() const { return in_restart_; }

  // Builds the intended state (snapshot + buffered mutations replayed), then
  //   kWarm: diffs it against the live table per SIP, rewriting only the
  //     SIPs whose bindings actually changed;
  //   kCold: rewrites the whole table.
  // The pick counter is data-plane state and survives either way (restart
  // must not replay the resolution sequence).
  ReconcileStats CompleteRestart(RestartMode mode, const SipLbSnapshot& snap);

 private:
  struct PendingOp {
    enum class Kind : uint8_t {
      kAddSip,
      kRemoveSip,
      kBind,
      kUnbind,
      kUnbindEverywhere,
      kSetHealth,
    };
    Kind kind = Kind::kBind;
    IpAddress eip;
    IpAddress sip;
    double weight = 1.0;
    bool healthy = true;
  };

  std::unordered_map<IpAddress, std::vector<Binding>> bindings_;
  uint64_t pick_seq_ = 0;
  uint64_t config_revision_ = 0;
  bool in_restart_ = false;
  std::vector<PendingOp> pending_ops_;
};

struct SipLbSnapshot {
  struct Sip {
    IpAddress sip;
    std::vector<SipLoadBalancer::Binding> bindings;  // binding order preserved
    friend bool operator==(const Sip& a, const Sip& b) = default;
  };
  std::vector<Sip> sips;  // sorted by sip
  uint64_t pick_seq = 0;

  friend bool operator==(const SipLbSnapshot& a,
                         const SipLbSnapshot& b) = default;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_CORE_SIP_LB_H_
