#include "src/core/qos.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace tenantnet {

void TokenBucket::Refill(SimTime now) {
  if (now <= last_refill_) {
    return;
  }
  double elapsed = (now - last_refill_).ToSeconds();
  tokens_ = std::min(burst_bits_, tokens_ + rate_bps_ * elapsed);
  last_refill_ = now;
}

void TokenBucket::SetRate(double rate_bps, SimTime now) {
  Refill(now);
  rate_bps_ = rate_bps;
}

bool TokenBucket::TryConsume(double bits, SimTime now) {
  Refill(now);
  if (tokens_ >= bits) {
    tokens_ -= bits;
    return true;
  }
  return false;
}

double TokenBucket::AvailableBits(SimTime now) {
  Refill(now);
  return tokens_;
}

EgressQuotaManager::EgressQuotaManager(QuotaParams params)
    : params_(params) {}

size_t EgressQuotaManager::RegisterPoint(RegionId region, std::string name) {
  auto& points = region_points_[region];
  points.push_back(std::move(name));
  // Existing quotas in this region grow a new point with zero demand.
  for (auto& [key, state] : quotas_) {
    if (RegionId(key.second) == region) {
      state.points.push_back(PointState{points.back(), TokenBucket{0, 0},
                                        0, 0, 0, 0, {}});
    }
  }
  return points.size() - 1;
}

size_t EgressQuotaManager::PointCount(RegionId region) const {
  auto it = region_points_.find(region);
  return it == region_points_.end() ? 0 : it->second.size();
}

Status EgressQuotaManager::SetQuota(TenantId tenant, RegionId region,
                                    double bps, SimTime now,
                                    std::optional<QosSelector> selector) {
  if (bps < 0) {
    return InvalidArgumentError("quota must be non-negative");
  }
  auto rit = region_points_.find(region);
  if (rit == region_points_.end() || rit->second.empty()) {
    return FailedPreconditionError(
        "region has no registered enforcement points");
  }
  QuotaState& state = quotas_[MakeKey(tenant, region)];
  state.quota_bps = bps;
  state.created = now;
  state.selector = std::move(selector);
  if (state.points.empty()) {
    for (const std::string& name : rit->second) {
      state.points.push_back(
          PointState{name, TokenBucket{0, 0}, 0, 0, 0, 0, {}});
    }
  }
  // Initial division: equal shares (no demand signal yet).
  double share = bps / static_cast<double>(state.points.size());
  for (PointState& p : state.points) {
    p.bucket = TokenBucket{share, share * params_.burst_seconds};
    messages_ += 1;  // coordinator -> point
  }
  return Status::Ok();
}

Result<double> EgressQuotaManager::Quota(TenantId tenant,
                                         RegionId region) const {
  auto it = quotas_.find(MakeKey(tenant, region));
  if (it == quotas_.end()) {
    return NotFoundError("no quota configured");
  }
  return it->second.quota_bps;
}

bool EgressQuotaManager::TryConsume(TenantId tenant, RegionId region,
                                    size_t point, double bits, SimTime now) {
  auto it = quotas_.find(MakeKey(tenant, region));
  if (it == quotas_.end()) {
    // No quota configured: nothing to enforce; the caller's traffic is
    // bounded elsewhere (VM caps, link capacities).
    return true;
  }
  QuotaState& state = it->second;
  if (point >= state.points.size()) {
    return false;
  }
  PointState& p = state.points[point];
  p.offered_bits_epoch += bits;
  p.offered_bits += bits;
  if (p.bucket.TryConsume(bits, now)) {
    p.admitted_bits += bits;
    return true;
  }
  return false;
}

bool EgressQuotaManager::IsReserved(TenantId tenant, RegionId region,
                                    const FiveTuple& flow) const {
  auto it = quotas_.find(MakeKey(tenant, region));
  if (it == quotas_.end()) {
    return false;
  }
  return !it->second.selector.has_value() ||
         it->second.selector->Matches(flow);
}

bool EgressQuotaManager::TryConsumeFlow(TenantId tenant, RegionId region,
                                        size_t point, const FiveTuple& flow,
                                        double bits, SimTime now) {
  auto it = quotas_.find(MakeKey(tenant, region));
  if (it == quotas_.end()) {
    return true;  // nothing reserved, nothing enforced
  }
  if (it->second.selector.has_value() &&
      !it->second.selector->Matches(flow)) {
    return true;  // outside the reservation: best-effort, unconstrained here
  }
  return TryConsume(tenant, region, point, bits, now);
}

Result<double> EgressQuotaManager::ShareOf(TenantId tenant, RegionId region,
                                           size_t point) const {
  auto it = quotas_.find(MakeKey(tenant, region));
  if (it == quotas_.end()) {
    return NotFoundError("no quota configured");
  }
  if (point >= it->second.points.size()) {
    return InvalidArgumentError("bad enforcement point");
  }
  return it->second.points[point].bucket.rate_bps();
}

void EgressQuotaManager::ApplyPointCaps(PointState& point) {
  if (flow_sim_ == nullptr || point.flows.empty()) {
    return;
  }
  // Prune flows that completed or were cancelled since the last epoch.
  point.flows.erase(
      std::remove_if(point.flows.begin(), point.flows.end(),
                     [this](FlowId f) {
                       return flow_sim_->FindFlow(f) == nullptr;
                     }),
      point.flows.end());
  if (point.flows.empty()) {
    return;
  }
  double cap = point.bucket.rate_bps() /
               static_cast<double>(point.flows.size());
  for (FlowId f : point.flows) {
    (void)flow_sim_->SetRateCap(f, cap);
  }
}

Status EgressQuotaManager::RegisterFlow(TenantId tenant, RegionId region,
                                        size_t point, FlowId flow) {
  auto it = quotas_.find(MakeKey(tenant, region));
  if (it == quotas_.end()) {
    return NotFoundError("no quota configured");
  }
  if (point >= it->second.points.size()) {
    return InvalidArgumentError("bad enforcement point");
  }
  PointState& p = it->second.points[point];
  p.flows.push_back(flow);
  if (flow_sim_ != nullptr) {
    FlowControlSurface::BatchScope batch = flow_sim_->Batch();
    ApplyPointCaps(p);
  }
  return Status::Ok();
}

Status EgressQuotaManager::UnregisterFlow(TenantId tenant, RegionId region,
                                          size_t point, FlowId flow) {
  auto it = quotas_.find(MakeKey(tenant, region));
  if (it == quotas_.end()) {
    return NotFoundError("no quota configured");
  }
  if (point >= it->second.points.size()) {
    return InvalidArgumentError("bad enforcement point");
  }
  PointState& p = it->second.points[point];
  auto fit = std::find(p.flows.begin(), p.flows.end(), flow);
  if (fit == p.flows.end()) {
    return NotFoundError("flow not registered at this point");
  }
  p.flows.erase(fit);
  if (flow_sim_ != nullptr) {
    FlowControlSurface::BatchScope batch = flow_sim_->Batch();
    // The departing flow is no longer quota-managed: lift its cap so it
    // returns to plain max-min sharing.
    if (flow_sim_->FindFlow(flow) != nullptr) {
      (void)flow_sim_->SetRateCap(flow,
                                  std::numeric_limits<double>::infinity());
    }
    ApplyPointCaps(p);
  }
  return Status::Ok();
}

void EgressQuotaManager::Redivide(QuotaState& state, SimTime now,
                                  SimDuration elapsed) {
  double seconds = std::max(1e-9, elapsed.ToSeconds());
  // Update demand estimates from this epoch's offered bits.
  double weight_sum = 0;
  for (PointState& p : state.points) {
    double rate = p.offered_bits_epoch / seconds;
    p.ewma_demand_bps = params_.ewma_alpha * rate +
                        (1 - params_.ewma_alpha) * p.ewma_demand_bps;
    p.offered_bits_epoch = 0;
    weight_sum += p.ewma_demand_bps;
    messages_ += 1;  // point -> coordinator demand report
  }
  // Proportional shares with an idle floor.
  double floor =
      state.quota_bps * params_.min_share_fraction /
      static_cast<double>(state.points.size());
  double distributable =
      state.quota_bps - floor * static_cast<double>(state.points.size());
  if (distributable < 0) {
    distributable = 0;
  }
  for (PointState& p : state.points) {
    double share = floor;
    if (weight_sum > 0) {
      share += distributable * (p.ewma_demand_bps / weight_sum);
    } else {
      share += distributable / static_cast<double>(state.points.size());
    }
    p.bucket.SetRate(share, now);
    p.bucket.SetBurst(share * params_.burst_seconds);
    messages_ += 1;  // coordinator -> point new share
    ApplyPointCaps(p);
  }
}

void EgressQuotaManager::RunEpoch(SimTime now) {
  SimDuration elapsed =
      epochs_ == 0 ? params_.epoch : (now - last_epoch_);
  if (elapsed <= SimDuration::Zero()) {
    elapsed = params_.epoch;
  }
  // With a FlowSim attached, the whole epoch's cap updates — every quota,
  // every point, every registered flow — coalesce into one reallocation.
  std::optional<FlowControlSurface::BatchScope> batch;
  if (flow_sim_ != nullptr) {
    batch.emplace(*flow_sim_);
  }
  for (auto& [key, state] : quotas_) {
    Redivide(state, now, elapsed);
  }
  last_epoch_ = now;
  ++epochs_;
}

double EgressQuotaManager::AdmittedBits(TenantId tenant,
                                        RegionId region) const {
  auto it = quotas_.find(MakeKey(tenant, region));
  if (it == quotas_.end()) {
    return 0;
  }
  double total = 0;
  for (const PointState& p : it->second.points) {
    total += p.admitted_bits;
  }
  return total;
}

double EgressQuotaManager::OfferedBits(TenantId tenant,
                                       RegionId region) const {
  auto it = quotas_.find(MakeKey(tenant, region));
  if (it == quotas_.end()) {
    return 0;
  }
  double total = 0;
  for (const PointState& p : it->second.points) {
    total += p.offered_bits;
  }
  return total;
}

}  // namespace tenantnet
