// Provider-edge permit-list enforcement ("public but default-off").
//
// Every endpoint address is globally routable, but the provider's ingress
// edges drop any flow whose source is not on the destination endpoint's
// tenant-supplied permit list (§4 Security). The list is replicated at
// every ingress edge of the hosting domain — the paper's "distributed and
// redundant" enforcement — so an update is a fan-out: one control-plane
// message per edge, each applied after a sampled install latency.
//
// The bank tracks exactly what E4b asks about: total filter entries per
// edge (memory), update fan-out (messages), and install latency until the
// last edge converges.
//
// Data-plane fast path: each installed list is compiled once into a
// CompiledPermitList (prefix entries in an LPM trie whose nodes carry the
// port/protocol scopes, group entries deduped into per-group scope sets),
// and verdicts are memoized in a generational VerdictCache. List applies
// bump the endpoint's epoch, group applies bump the bank-wide epoch, so
// cached verdicts self-invalidate without enumeration. Admits() is the
// cached entry point; AdmitsUncached() always evaluates the compiled
// matcher; AdmitsLinear() is the original O(entries) reference kept for
// equivalence tests and as the bench baseline.

#ifndef TENANTNET_SRC_CORE_EDGE_FILTER_H_
#define TENANTNET_SRC_CORE_EDGE_FILTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/net/flow.h"
#include "src/net/verdict_cache.h"
#include "src/routing/lpm_trie.h"
#include "src/sim/event_queue.h"

namespace tenantnet {

// Endpoint groups: the §4 extension replacing the VPC's role as a grouping
// mechanism. A permit entry may reference a group instead of a prefix; the
// group's membership is replicated to the edges once and every referencing
// permit list follows automatically.
using EndpointGroupId = TypedId<struct EndpointGroupIdTag>;

// One permitted source pattern for an endpoint: either a source prefix or
// an endpoint group (when `source_group` is valid, `source` is ignored).
struct PermitEntry {
  IpPrefix source;                       // who may talk to the endpoint
  EndpointGroupId source_group;          // ... or this group's members
  PortRange dst_ports = PortRange::Any();
  Protocol proto = Protocol::kAny;

  // Ports/protocol part of the match (the source part needs edge state for
  // group expansion; see EdgeFilterBank::Admits).
  bool ScopeMatches(const FiveTuple& flow) const {
    if (proto != Protocol::kAny && proto != flow.proto) {
      return false;
    }
    return dst_ports.Contains(flow.dst_port);
  }

  // Full match for prefix-based entries only.
  bool Admits(const FiveTuple& flow) const {
    return !source_group.valid() && ScopeMatches(flow) &&
           source.Contains(flow.src);
  }

  friend bool operator==(const PermitEntry& a, const PermitEntry& b) = default;
};

// A permit list compiled for the data plane. Prefix entries live in an LPM
// trie whose node values hold the port/protocol scopes attached to that
// source prefix; group entries are deduplicated into one scope set per
// referenced group. Evaluation is a trie walk over the covering prefixes of
// flow.src plus one hash probe per distinct referenced group, instead of a
// linear scan of every entry.
class CompiledPermitList {
 public:
  // One (protocol, port-range) guard; `admit_all` short-circuits scope sets
  // that contain an unscoped entry (any proto, any port).
  struct ScopeSet {
    bool admit_all = false;
    std::vector<std::pair<Protocol, PortRange>> scopes;

    void Add(Protocol proto, PortRange ports);
    bool Matches(const FiveTuple& flow) const {
      if (admit_all) {
        return true;
      }
      for (const auto& [proto, ports] : scopes) {
        if ((proto == Protocol::kAny || proto == flow.proto) &&
            ports.Contains(flow.dst_port)) {
          return true;
        }
      }
      return false;
    }
  };

  explicit CompiledPermitList(const std::vector<PermitEntry>& entries);

  // True if any prefix entry covering flow.src has a matching scope.
  bool PrefixAdmits(const FiveTuple& flow) const {
    if (prefix_index_.entry_count() == 0) {
      return false;
    }
    return prefix_index_.ForEachMatch(
        flow.src, [&](const ScopeSet& set) { return !set.Matches(flow); });
  }

  // Distinct groups referenced by this list, with their merged scopes.
  const std::vector<std::pair<EndpointGroupId, ScopeSet>>& group_scopes()
      const {
    return group_scopes_;
  }

  size_t prefix_node_count() const { return prefix_index_.node_count(); }

 private:
  LpmTrie<ScopeSet> prefix_index_;
  std::vector<std::pair<EndpointGroupId, ScopeSet>> group_scopes_;
};

struct EdgeFilterParams {
  // Control-plane install latency per edge: base + Exp(1/mean_extra).
  SimDuration install_base = SimDuration::Millis(5);
  SimDuration install_extra_mean = SimDuration::Millis(10);

  // Degraded-replication model (control-plane faults). While degraded, each
  // replication message is independently dropped with `degraded_drop_prob`
  // and retransmitted after `degraded_retransmit` (a retransmit may drop
  // again); deliveries that do land also pay `degraded_extra`. Drop/retry
  // outcomes are drawn up front at send time from the bank's seeded RNG, so
  // a replayed schedule produces byte-identical apply times.
  double degraded_drop_prob = 0.35;
  SimDuration degraded_retransmit = SimDuration::Millis(50);
  SimDuration degraded_extra = SimDuration::Millis(20);

  // Slot count of the bank's verdict cache (rounded up to a power of two;
  // storage is lazy, so untouched banks cost nothing).
  size_t verdict_cache_slots = 1 << 16;
};

// The replicated filter state of one enforcement domain (a provider or an
// on-prem site). Edges are registered up front; permit lists are keyed by
// destination endpoint address.
class EdgeFilterBank {
 public:
  // `queue` may be null: updates then apply immediately (tests, and scale
  // benches that account latency analytically).
  EdgeFilterBank(std::string domain, EventQueue* queue, uint64_t rng_seed,
                 EdgeFilterParams params = {});

  // Registers an ingress edge; returns its index.
  size_t AddEdge(const std::string& name);
  size_t edge_count() const { return edges_.size(); }

  // Replaces the permit list for `endpoint` on every edge. Returns the
  // simulated time at which the *last* edge has applied it (== now when no
  // queue is attached). The list is compiled once per update and the
  // compiled form shared by every edge's apply.
  SimTime SetPermitList(IpAddress endpoint, std::vector<PermitEntry> entries);

  // Incremental update (API extension): adds `add` and removes entries
  // equal to members of `remove` from the endpoint's latest list, then
  // re-propagates. Same convergence semantics as SetPermitList.
  SimTime UpdatePermitList(IpAddress endpoint, std::vector<PermitEntry> add,
                           const std::vector<PermitEntry>& remove);

  // Removes the endpoint's list everywhere (endpoint released).
  void RemovePermitList(IpAddress endpoint);

  // Replaces a group's member set on every edge (same fan-out/latency
  // semantics as permit lists). Permit entries referencing the group pick
  // the change up with no per-list updates. Returns last-edge apply time.
  SimTime SetGroup(EndpointGroupId group, std::vector<IpAddress> members);
  void RemoveGroup(EndpointGroupId group);

  // Data plane: does edge `edge_index` admit this flow toward flow.dst?
  // Default-off: no installed list, or an empty list, admits nothing.
  // Memoized in the bank's verdict cache; epoch bumps on list/group applies
  // keep cached verdicts honest without enumeration.
  bool Admits(size_t edge_index, const FiveTuple& flow) const;

  // Same verdict via the compiled matcher, skipping the cache. The cache
  // miss path; exposed for benches and equivalence tests.
  bool AdmitsUncached(size_t edge_index, const FiveTuple& flow) const;

  // Same verdict via the original linear scan over the installed entries
  // (the pre-fast-path data plane). Reference implementation for the
  // equivalence property test and the bench speedup baseline.
  bool AdmitsLinear(size_t edge_index, const FiveTuple& flow) const;

  // True if the edge currently holds any list for `endpoint` (distinguishes
  // "default-off, nothing installed" from "installed but not permitted").
  bool HasList(size_t edge_index, IpAddress endpoint) const;

  // True if every edge has the same (latest) version for this endpoint.
  bool IsConverged(IpAddress endpoint) const;

  // --- Fault injection ------------------------------------------------------
  // Toggles degraded replication (see EdgeFilterParams). Only affects
  // updates sent while degraded; in-flight messages keep their schedule.
  // Timing-only: does not bump any verdict epoch.
  void SetReplicationDegraded(bool degraded) { degraded_ = degraded; }
  bool replication_degraded() const { return degraded_; }

  // --- Scale metrics --------------------------------------------------------
  uint64_t total_installed_entries() const;       // sum over edges
  uint64_t update_messages_sent() const { return messages_; }
  uint64_t endpoints_with_lists() const { return latest_version_.size(); }
  uint64_t messages_dropped() const { return messages_dropped_; }
  uint64_t retransmissions() const { return retransmissions_; }

  // --- Verdict fast-path introspection -------------------------------------
  const VerdictCacheStats& verdict_cache_stats() const {
    return cache_.stats();
  }
  void ResetVerdictCacheStats() { cache_.ResetStats(); }
  // Drops all memoized verdicts (benches: cold-start measurement).
  void ClearVerdictCache() { cache_.Clear(); }
  uint64_t permit_compiles() const { return compiles_; }
  uint64_t verdict_epoch() const { return gen_; }

 private:
  struct InstalledList {
    uint64_t version = 0;
    std::vector<PermitEntry> entries;
    // Shared across edges: compiled once per SetPermitList.
    std::shared_ptr<const CompiledPermitList> compiled;
  };
  struct GroupState {
    uint64_t version = 0;
    std::unordered_set<IpAddress> members;
  };
  struct EdgeState {
    std::string name;
    std::unordered_map<IpAddress, InstalledList> lists;
    std::unordered_map<EndpointGroupId, GroupState> groups;
    uint64_t entry_count = 0;
  };

  struct VerdictKey {
    uint64_t edge = 0;
    IpAddress src;
    IpAddress dst;
    uint16_t dst_port = 0;
    Protocol proto = Protocol::kAny;

    friend bool operator==(const VerdictKey& a, const VerdictKey& b) = default;
  };
  struct VerdictKeyHash {
    size_t operator()(const VerdictKey& k) const {
      size_t h = std::hash<IpAddress>{}(k.src);
      h = h * 1099511628211ull ^ std::hash<IpAddress>{}(k.dst);
      h = h * 1099511628211ull ^
          (k.edge << 24 | static_cast<size_t>(k.dst_port) << 8 |
           static_cast<size_t>(k.proto));
      return h;
    }
  };

  // One message's delivery delay, including any degraded-mode drop/retry
  // rounds. Advances the RNG; all draws happen here, at send time.
  SimDuration SampleDeliveryLatency();

  // Epoch bumps, called at *apply* time (when edge state actually changes).
  void BumpEndpointEpoch(IpAddress endpoint) {
    ++endpoint_epoch_[endpoint];
    ++gen_;
  }
  void BumpGlobalEpoch() {
    ++global_epoch_;
    ++gen_;
  }
  uint64_t EndpointEpochOf(IpAddress endpoint) const {
    auto it = endpoint_epoch_.find(endpoint);
    return it == endpoint_epoch_.end() ? 0 : it->second;
  }

  std::string domain_;
  EventQueue* queue_;
  Rng rng_;
  EdgeFilterParams params_;
  bool degraded_ = false;
  uint64_t messages_dropped_ = 0;
  uint64_t retransmissions_ = 0;
  std::vector<EdgeState> edges_;
  // The control plane's master copy (edges may lag behind it).
  std::unordered_map<IpAddress, std::vector<PermitEntry>> latest_entries_;
  std::unordered_map<IpAddress, uint64_t> latest_version_;
  uint64_t next_version_ = 1;
  uint64_t messages_ = 0;

  // Verdict fast path. Scoped epochs: list applies/removals bump the
  // endpoint's epoch, group applies/removals bump the bank-wide one; gen_
  // moves with every bump so validated slots hit with one integer compare.
  std::unordered_map<IpAddress, uint64_t> endpoint_epoch_;
  uint64_t global_epoch_ = 0;
  uint64_t gen_ = 0;
  uint64_t compiles_ = 0;
  mutable VerdictCache<VerdictKey, bool, VerdictKeyHash> cache_;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_CORE_EDGE_FILTER_H_
