// Provider-edge permit-list enforcement ("public but default-off").
//
// Every endpoint address is globally routable, but the provider's ingress
// edges drop any flow whose source is not on the destination endpoint's
// tenant-supplied permit list (§4 Security). The list is replicated at
// every ingress edge of the hosting domain — the paper's "distributed and
// redundant" enforcement — so an update is a fan-out: one control-plane
// message per edge, each applied after a sampled install latency.
//
// The bank tracks exactly what E4b asks about: total filter entries per
// edge (memory), update fan-out (messages), and install latency until the
// last edge converges.

#ifndef TENANTNET_SRC_CORE_EDGE_FILTER_H_
#define TENANTNET_SRC_CORE_EDGE_FILTER_H_

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/net/flow.h"
#include "src/sim/event_queue.h"

namespace tenantnet {

// Endpoint groups: the §4 extension replacing the VPC's role as a grouping
// mechanism. A permit entry may reference a group instead of a prefix; the
// group's membership is replicated to the edges once and every referencing
// permit list follows automatically.
using EndpointGroupId = TypedId<struct EndpointGroupIdTag>;

// One permitted source pattern for an endpoint: either a source prefix or
// an endpoint group (when `source_group` is valid, `source` is ignored).
struct PermitEntry {
  IpPrefix source;                       // who may talk to the endpoint
  EndpointGroupId source_group;          // ... or this group's members
  PortRange dst_ports = PortRange::Any();
  Protocol proto = Protocol::kAny;

  // Ports/protocol part of the match (the source part needs edge state for
  // group expansion; see EdgeFilterBank::Admits).
  bool ScopeMatches(const FiveTuple& flow) const {
    if (proto != Protocol::kAny && proto != flow.proto) {
      return false;
    }
    return dst_ports.Contains(flow.dst_port);
  }

  // Full match for prefix-based entries only.
  bool Admits(const FiveTuple& flow) const {
    return !source_group.valid() && ScopeMatches(flow) &&
           source.Contains(flow.src);
  }

  friend bool operator==(const PermitEntry& a, const PermitEntry& b) = default;
};

struct EdgeFilterParams {
  // Control-plane install latency per edge: base + Exp(1/mean_extra).
  SimDuration install_base = SimDuration::Millis(5);
  SimDuration install_extra_mean = SimDuration::Millis(10);

  // Degraded-replication model (control-plane faults). While degraded, each
  // replication message is independently dropped with `degraded_drop_prob`
  // and retransmitted after `degraded_retransmit` (a retransmit may drop
  // again); deliveries that do land also pay `degraded_extra`. Drop/retry
  // outcomes are drawn up front at send time from the bank's seeded RNG, so
  // a replayed schedule produces byte-identical apply times.
  double degraded_drop_prob = 0.35;
  SimDuration degraded_retransmit = SimDuration::Millis(50);
  SimDuration degraded_extra = SimDuration::Millis(20);
};

// The replicated filter state of one enforcement domain (a provider or an
// on-prem site). Edges are registered up front; permit lists are keyed by
// destination endpoint address.
class EdgeFilterBank {
 public:
  // `queue` may be null: updates then apply immediately (tests, and scale
  // benches that account latency analytically).
  EdgeFilterBank(std::string domain, EventQueue* queue, uint64_t rng_seed,
                 EdgeFilterParams params = {});

  // Registers an ingress edge; returns its index.
  size_t AddEdge(const std::string& name);
  size_t edge_count() const { return edges_.size(); }

  // Replaces the permit list for `endpoint` on every edge. Returns the
  // simulated time at which the *last* edge has applied it (== now when no
  // queue is attached).
  SimTime SetPermitList(IpAddress endpoint, std::vector<PermitEntry> entries);

  // Incremental update (API extension): adds `add` and removes entries
  // equal to members of `remove` from the endpoint's latest list, then
  // re-propagates. Same convergence semantics as SetPermitList.
  SimTime UpdatePermitList(IpAddress endpoint, std::vector<PermitEntry> add,
                           const std::vector<PermitEntry>& remove);

  // Removes the endpoint's list everywhere (endpoint released).
  void RemovePermitList(IpAddress endpoint);

  // Replaces a group's member set on every edge (same fan-out/latency
  // semantics as permit lists). Permit entries referencing the group pick
  // the change up with no per-list updates. Returns last-edge apply time.
  SimTime SetGroup(EndpointGroupId group, std::vector<IpAddress> members);
  void RemoveGroup(EndpointGroupId group);

  // Data plane: does edge `edge_index` admit this flow toward flow.dst?
  // Default-off: no installed list, or an empty list, admits nothing.
  bool Admits(size_t edge_index, const FiveTuple& flow) const;

  // True if the edge currently holds any list for `endpoint` (distinguishes
  // "default-off, nothing installed" from "installed but not permitted").
  bool HasList(size_t edge_index, IpAddress endpoint) const;

  // True if every edge has the same (latest) version for this endpoint.
  bool IsConverged(IpAddress endpoint) const;

  // --- Fault injection ------------------------------------------------------
  // Toggles degraded replication (see EdgeFilterParams). Only affects
  // updates sent while degraded; in-flight messages keep their schedule.
  void SetReplicationDegraded(bool degraded) { degraded_ = degraded; }
  bool replication_degraded() const { return degraded_; }

  // --- Scale metrics --------------------------------------------------------
  uint64_t total_installed_entries() const;       // sum over edges
  uint64_t update_messages_sent() const { return messages_; }
  uint64_t endpoints_with_lists() const { return latest_version_.size(); }
  uint64_t messages_dropped() const { return messages_dropped_; }
  uint64_t retransmissions() const { return retransmissions_; }

 private:
  struct EdgeState {
    std::string name;
    // endpoint -> (version, entries)
    std::unordered_map<IpAddress,
                       std::pair<uint64_t, std::vector<PermitEntry>>> lists;
    // group -> (version, member set)
    std::unordered_map<EndpointGroupId,
                       std::pair<uint64_t, std::set<IpAddress>>> groups;
    uint64_t entry_count = 0;
  };

  // One message's delivery delay, including any degraded-mode drop/retry
  // rounds. Advances the RNG; all draws happen here, at send time.
  SimDuration SampleDeliveryLatency();

  std::string domain_;
  EventQueue* queue_;
  Rng rng_;
  EdgeFilterParams params_;
  bool degraded_ = false;
  uint64_t messages_dropped_ = 0;
  uint64_t retransmissions_ = 0;
  std::vector<EdgeState> edges_;
  // The control plane's master copy (edges may lag behind it).
  std::unordered_map<IpAddress, std::vector<PermitEntry>> latest_entries_;
  std::unordered_map<IpAddress, uint64_t> latest_version_;
  uint64_t next_version_ = 1;
  uint64_t messages_ = 0;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_CORE_EDGE_FILTER_H_
