// Provider-edge permit-list enforcement ("public but default-off").
//
// Every endpoint address is globally routable, but the provider's ingress
// edges drop any flow whose source is not on the destination endpoint's
// tenant-supplied permit list (§4 Security). The list is replicated at
// every ingress edge of the hosting domain — the paper's "distributed and
// redundant" enforcement — so an update is a fan-out: one control-plane
// message per edge, each applied after a sampled install latency.
//
// The bank tracks exactly what E4b asks about: total filter entries per
// edge (memory), update fan-out (messages), and install latency until the
// last edge converges.
//
// Data-plane fast path: each installed list is compiled once into a
// CompiledPermitList (prefix entries in an LPM trie whose nodes carry the
// port/protocol scopes, group entries deduped into per-group scope sets),
// and verdicts are memoized in a generational VerdictCache. List applies
// bump the endpoint's epoch, group applies bump the bank-wide epoch, so
// cached verdicts self-invalidate without enumeration. Admits() is the
// cached entry point; AdmitsUncached() always evaluates the compiled
// matcher; AdmitsLinear() is the original O(entries) reference kept for
// equivalence tests and as the bench baseline.
//
// Memory model (PR 8, the million-endpoint diet): endpoints map to dense
// slots via an open-addressed AddrIndex, and everything per-endpoint is a
// struct-of-arrays column indexed by slot — the bank-wide verdict epoch and
// master version/set columns, and per edge a version column plus a 4-byte
// interned set id. Permit-entry lists themselves are refcounted and
// deduplicated in an InternPool: the master copy, every edge replica and
// every in-flight install of the same byte-identical list share one
// std::vector<PermitEntry> and one compiled matcher. Per endpoint per edge
// the steady-state cost is 12 bytes, vs a ~56-byte unordered_map node plus
// a private entries vector before the diet. ApproxBytes() feeds E10's
// bytes/endpoint records and the telemetry gauges.

#ifndef TENANTNET_SRC_CORE_EDGE_FILTER_H_
#define TENANTNET_SRC_CORE_EDGE_FILTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/ids.h"
#include "src/common/reconcile.h"
#include "src/common/rng.h"
#include "src/common/slab.h"
#include "src/common/status.h"
#include "src/common/time.h"
#include "src/net/flow.h"
#include "src/net/verdict_cache.h"
#include "src/routing/lpm_trie.h"
#include "src/sim/event_queue.h"

namespace tenantnet {

class MetricRegistry;

// Endpoint groups: the §4 extension replacing the VPC's role as a grouping
// mechanism. A permit entry may reference a group instead of a prefix; the
// group's membership is replicated to the edges once and every referencing
// permit list follows automatically.
using EndpointGroupId = TypedId<struct EndpointGroupIdTag>;

// One permitted source pattern for an endpoint: either a source prefix or
// an endpoint group (when `source_group` is valid, `source` is ignored).
struct PermitEntry {
  IpPrefix source;                       // who may talk to the endpoint
  EndpointGroupId source_group;          // ... or this group's members
  PortRange dst_ports = PortRange::Any();
  Protocol proto = Protocol::kAny;

  // Ports/protocol part of the match (the source part needs edge state for
  // group expansion; see EdgeFilterBank::Admits).
  bool ScopeMatches(const FiveTuple& flow) const {
    if (proto != Protocol::kAny && proto != flow.proto) {
      return false;
    }
    return dst_ports.Contains(flow.dst_port);
  }

  // Full match for prefix-based entries only.
  bool Admits(const FiveTuple& flow) const {
    return !source_group.valid() && ScopeMatches(flow) &&
           source.Contains(flow.src);
  }

  friend bool operator==(const PermitEntry& a, const PermitEntry& b) = default;
};

// A permit list compiled for the data plane. Prefix entries live in an LPM
// trie whose node values hold the port/protocol scopes attached to that
// source prefix; group entries are deduplicated into one scope set per
// referenced group. Evaluation is a trie walk over the covering prefixes of
// flow.src plus one hash probe per distinct referenced group, instead of a
// linear scan of every entry.
class CompiledPermitList {
 public:
  // One (protocol, port-range) guard; `admit_all` short-circuits scope sets
  // that contain an unscoped entry (any proto, any port).
  struct ScopeSet {
    bool admit_all = false;
    std::vector<std::pair<Protocol, PortRange>> scopes;

    void Add(Protocol proto, PortRange ports);
    bool Matches(const FiveTuple& flow) const {
      if (admit_all) {
        return true;
      }
      for (const auto& [proto, ports] : scopes) {
        if ((proto == Protocol::kAny || proto == flow.proto) &&
            ports.Contains(flow.dst_port)) {
          return true;
        }
      }
      return false;
    }
  };

  explicit CompiledPermitList(const std::vector<PermitEntry>& entries);

  // True if any prefix entry covering flow.src has a matching scope.
  bool PrefixAdmits(const FiveTuple& flow) const {
    if (prefix_index_.entry_count() == 0) {
      return false;
    }
    return prefix_index_.ForEachMatch(
        flow.src, [&](const ScopeSet& set) { return !set.Matches(flow); });
  }

  // Distinct groups referenced by this list, with their merged scopes.
  const std::vector<std::pair<EndpointGroupId, ScopeSet>>& group_scopes()
      const {
    return group_scopes_;
  }

  size_t prefix_node_count() const { return prefix_index_.node_count(); }

  // Matcher footprint (trie arena + scope heap), for E10 accounting.
  size_t ApproxBytes() const;

 private:
  LpmTrie<ScopeSet> prefix_index_;
  std::vector<std::pair<EndpointGroupId, ScopeSet>> group_scopes_;
};

// The durable image of a filter bank's control-plane intent: the master
// permit lists and group memberships plus the version counter. Edge
// (data-plane) state is deliberately absent — it survives a control-plane
// restart and is reconciled against this, not restored from it. All vectors
// are sorted, so equality is the fixed-point property the snapshot tests
// assert.
struct FilterBankSnapshot {
  struct List {
    IpAddress endpoint;
    uint64_t version = 0;
    std::vector<PermitEntry> entries;
    friend bool operator==(const List& a, const List& b) = default;
  };
  struct Group {
    EndpointGroupId group;
    uint64_t version = 0;
    std::vector<IpAddress> members;  // sorted
    friend bool operator==(const Group& a, const Group& b) = default;
  };
  std::vector<List> lists;    // sorted by endpoint
  std::vector<Group> groups;  // sorted by group id
  uint64_t next_version = 1;

  friend bool operator==(const FilterBankSnapshot& a,
                         const FilterBankSnapshot& b) = default;
};

struct EdgeFilterParams {
  // Control-plane install latency per edge: base + Exp(1/mean_extra).
  SimDuration install_base = SimDuration::Millis(5);
  SimDuration install_extra_mean = SimDuration::Millis(10);

  // Degraded-replication model (control-plane faults). While degraded, each
  // replication message is independently dropped with `degraded_drop_prob`
  // and retransmitted after `degraded_retransmit` (a retransmit may drop
  // again); deliveries that do land also pay `degraded_extra`. Drop/retry
  // outcomes are drawn up front at send time from the bank's seeded RNG, so
  // a replayed schedule produces byte-identical apply times.
  double degraded_drop_prob = 0.35;
  SimDuration degraded_retransmit = SimDuration::Millis(50);
  SimDuration degraded_extra = SimDuration::Millis(20);

  // Slot count of the bank's verdict cache (rounded up to a power of two;
  // storage is lazy, so untouched banks cost nothing).
  size_t verdict_cache_slots = 1 << 16;
};

// The replicated filter state of one enforcement domain (a provider or an
// on-prem site). Edges are registered up front; permit lists are keyed by
// destination endpoint address.
class EdgeFilterBank {
 public:
  // `queue` may be null: updates then apply immediately (tests, and scale
  // benches that account latency analytically).
  EdgeFilterBank(std::string domain, EventQueue* queue, uint64_t rng_seed,
                 EdgeFilterParams params = {});
  ~EdgeFilterBank();

  // Registers an ingress edge; returns its index.
  size_t AddEdge(const std::string& name);
  size_t edge_count() const { return edges_.size(); }

  // Replaces the permit list for `endpoint` on every edge. Returns the
  // simulated time at which the *last* edge has applied it (== now when no
  // queue is attached). The list is interned — identical lists anywhere in
  // the bank share storage and a single compiled matcher.
  SimTime SetPermitList(IpAddress endpoint, std::vector<PermitEntry> entries);

  // Incremental update (API extension): adds `add` and removes entries
  // equal to members of `remove` from the endpoint's latest list, then
  // re-propagates. Same convergence semantics as SetPermitList.
  SimTime UpdatePermitList(IpAddress endpoint, std::vector<PermitEntry> add,
                           const std::vector<PermitEntry>& remove);

  // Removes the endpoint's list everywhere (endpoint released).
  void RemovePermitList(IpAddress endpoint);

  // Replaces a group's member set on every edge (same fan-out/latency
  // semantics as permit lists). Permit entries referencing the group pick
  // the change up with no per-list updates. Returns last-edge apply time.
  SimTime SetGroup(EndpointGroupId group, std::vector<IpAddress> members);
  void RemoveGroup(EndpointGroupId group);

  // Data plane: does edge `edge_index` admit this flow toward flow.dst?
  // Default-off: no installed list, or an empty list, admits nothing.
  // Memoized in the bank's verdict cache; epoch bumps on list/group applies
  // keep cached verdicts honest without enumeration.
  bool Admits(size_t edge_index, const FiveTuple& flow) const;

  // Same verdict via the compiled matcher, skipping the cache. The cache
  // miss path; exposed for benches and equivalence tests.
  bool AdmitsUncached(size_t edge_index, const FiveTuple& flow) const;

  // Same verdict via the original linear scan over the installed entries
  // (the pre-fast-path data plane). Reference implementation for the
  // equivalence property test and the bench speedup baseline.
  bool AdmitsLinear(size_t edge_index, const FiveTuple& flow) const;

  // True if the edge currently holds any list for `endpoint` (distinguishes
  // "default-off, nothing installed" from "installed but not permitted").
  bool HasList(size_t edge_index, IpAddress endpoint) const;

  // True if every edge has the same (latest) version for this endpoint.
  bool IsConverged(IpAddress endpoint) const;

  // --- Fault injection ------------------------------------------------------
  // Toggles degraded replication (see EdgeFilterParams). Only affects
  // updates sent while degraded; in-flight messages keep their schedule.
  // Timing-only: does not bump any verdict epoch.
  void SetReplicationDegraded(bool degraded) { degraded_ = degraded; }
  bool replication_degraded() const { return degraded_; }

  // --- Warm restart (see src/common/reconcile.h for the protocol) -----------

  // Captures the control-plane intent (master lists/groups + version
  // counter). Edge state is not captured: it survives restarts.
  FilterBankSnapshot Checkpoint() const;

  // Reinstates exactly what Checkpoint() captured, touching no edge. The
  // version counter is restored to max(snapshot, live) so re-pushes issued
  // after a restore are never mistaken for stale updates by edges that
  // already hold newer versions.
  void RestoreFromSnapshot(const FilterBankSnapshot& snap);

  // The control plane dies: the master copy is wiped, and mutating calls
  // (Set/Update/RemovePermitList, Set/RemoveGroup) buffer instead of
  // fanning out until CompleteRestart(). The data plane keeps answering
  // Admits() from the edges' last-programmed state. Idempotent.
  void BeginRestart();
  bool in_restart() const { return in_restart_; }

  // The control plane comes back. Both modes restore `snap`, drain the
  // buffered mutations, and leave the bank byte-identical (modulo version
  // numbers) to a from-scratch rebuild of the same intent; they differ in
  // data-plane churn:
  //   kWarm: buffered ops replay through the normal incremental fan-out,
  //     then a reconcile sweep compares every (endpoint, edge) pair against
  //     the master and re-pushes only mismatches — matching edges keep
  //     their verdict-cache epochs, and traffic never sees a default-off
  //     window.
  //   kCold: every edge is flushed (one global epoch bump — all cached
  //     verdicts die) and the full intent is re-fanned-out with install
  //     latency; until the re-installs land, default-off denies everything.
  ReconcileStats CompleteRestart(RestartMode mode,
                                 const FilterBankSnapshot& snap);

  // Version-free fingerprint of the semantic state (master + per-edge
  // installed lists and groups), for the warm-vs-cold differential oracle:
  // the two completion modes assign different version numbers but must land
  // on identical filtering behavior.
  std::string StateFingerprint() const;

  // --- Scale metrics --------------------------------------------------------
  uint64_t total_installed_entries() const;       // sum over edges
  uint64_t update_messages_sent() const { return messages_; }
  uint64_t endpoints_with_lists() const { return master_lists_; }
  uint64_t messages_dropped() const { return messages_dropped_; }
  uint64_t retransmissions() const { return retransmissions_; }

  // --- Memory accounting (E10) ---------------------------------------------
  // Resident footprint of the bank's endpoint-indexed state: slot index,
  // SoA columns (bank-wide and per edge), interned permit sets including
  // their compiled matchers, and group replicas. Capacity-based.
  size_t ApproxBytes() const;
  // Distinct interned permit lists alive (master + edges + in flight).
  size_t distinct_permit_sets() const { return sets_.size(); }
  size_t endpoint_slots() const { return slots_.size(); }
  // Pre-sizes the slot index and columns for `n` endpoints.
  void ReserveEndpoints(size_t n);
  // Drops growth slack in the index/columns before measuring.
  void ShrinkToFit();
  // Writes the bank's memory gauges ("<domain>.filter.approx_bytes",
  // ".endpoint_slots", ".distinct_permit_sets", ".installed_entries") into
  // a telemetry registry.
  void PublishMemoryGauges(MetricRegistry& metrics) const;

  // --- Revision hooks (reach-verifier keying; see src/reach) ----------------
  // Per-endpoint verdict epoch: bumped whenever an edge applies a permit-
  // list change for this endpoint. 0 for endpoints the bank has never seen.
  // The incremental reachability verifier keys its per-destination cache on
  // this, so permit churn dirties only the touched destination's pairs.
  uint64_t EndpointVerdictEpoch(IpAddress endpoint) const {
    return EndpointEpochOf(endpoint);
  }
  // Bank-wide epoch bumped by group applies/removals (a group change can
  // flip any verdict whose permit list references the group).
  uint64_t global_verdict_epoch() const { return global_epoch_; }
  // The installed master permit list for `endpoint` (nullptr when none):
  // what the control plane believes is deployed. Drift detection compares
  // declared intent against this.
  const std::vector<PermitEntry>* MasterEntriesOf(IpAddress endpoint) const;
  // Endpoints currently holding a master list, sorted by address.
  std::vector<IpAddress> MasterEndpoints() const;

  // --- Verdict fast-path introspection -------------------------------------
  const VerdictCacheStats& verdict_cache_stats() const {
    return cache_.stats();
  }
  void ResetVerdictCacheStats() { cache_.ResetStats(); }
  // Drops all memoized verdicts (benches: cold-start measurement).
  void ClearVerdictCache() { cache_.Clear(); }
  // Distinct-list compilations performed. Interning dedupes: re-installing
  // a byte-identical list anywhere reuses the existing matcher for free.
  uint64_t permit_compiles() const { return compiles_; }
  uint64_t verdict_epoch() const { return gen_; }

 private:
  // An interned permit list. Equality/hash cover `entries` only; `compiled`
  // is a lazily built cache shared by every holder of the set.
  struct PermitSet {
    std::vector<PermitEntry> entries;
    std::shared_ptr<const CompiledPermitList> compiled;
    friend bool operator==(const PermitSet& a, const PermitSet& b) {
      return a.entries == b.entries;
    }
  };
  struct PermitSetHash {
    size_t operator()(const PermitSet& set) const {
      size_t h = 1469598103934665603ull;
      for (const PermitEntry& e : set.entries) {
        h = h * 1099511628211ull ^ std::hash<IpPrefix>{}(e.source);
        h = h * 1099511628211ull ^ e.source_group.value();
        h = h * 1099511628211ull ^
            (static_cast<size_t>(e.dst_ports.lo) << 16 | e.dst_ports.hi);
        h = h * 1099511628211ull ^ static_cast<size_t>(e.proto);
      }
      return h;
    }
  };

  struct GroupState {
    uint64_t version = 0;
    std::unordered_set<IpAddress> members;
  };
  struct EdgeState {
    std::string name;
    // Struct-of-arrays, indexed by endpoint slot (grown lazily): installed
    // list version (0 = none) and interned set id (kNilId = none).
    std::vector<uint64_t> list_version;
    std::vector<uint32_t> list_set;
    std::unordered_map<EndpointGroupId, GroupState> groups;
    uint64_t entry_count = 0;
  };

  struct VerdictKey {
    uint64_t edge = 0;
    IpAddress src;
    IpAddress dst;
    uint16_t dst_port = 0;
    Protocol proto = Protocol::kAny;

    friend bool operator==(const VerdictKey& a, const VerdictKey& b) = default;
  };
  struct VerdictKeyHash {
    size_t operator()(const VerdictKey& k) const {
      size_t h = std::hash<IpAddress>{}(k.src);
      h = h * 1099511628211ull ^ std::hash<IpAddress>{}(k.dst);
      h = h * 1099511628211ull ^
          (k.edge << 24 | static_cast<size_t>(k.dst_port) << 8 |
           static_cast<size_t>(k.proto));
      return h;
    }
  };

  struct MasterGroup {
    uint64_t version = 0;
    std::unordered_set<IpAddress> members;
  };

  // A mutation accepted while the control plane was down, replayed at
  // CompleteRestart().
  struct PendingOp {
    enum class Kind : uint8_t {
      kSetList,
      kUpdateList,
      kRemoveList,
      kSetGroup,
      kRemoveGroup,
    };
    Kind kind = Kind::kSetList;
    IpAddress endpoint;               // list ops
    std::vector<PermitEntry> entries; // kSetList; kUpdateList: adds
    std::vector<PermitEntry> removes; // kUpdateList only
    EndpointGroupId group;            // group ops
    std::vector<IpAddress> members;   // kSetGroup
  };

  // One message's delivery delay, including any degraded-mode drop/retry
  // rounds. Advances the RNG; all draws happen here, at send time.
  SimDuration SampleDeliveryLatency();

  // Sends one list install to a subset of edges (the shared fan-out core of
  // SetPermitList and the warm reconcile sweep). Consumes one reference on
  // `set_id` (the caller's), assigns a fresh version to the master slot,
  // and takes per-message references for the in-flight applies. Returns
  // last apply time.
  SimTime PushListTo(IpAddress endpoint, uint32_t set_id,
                     const std::vector<size_t>& targets);
  SimTime PushGroupTo(EndpointGroupId group,
                      const std::unordered_set<IpAddress>& members,
                      const std::vector<size_t>& targets);
  std::vector<size_t> AllEdgeIndices() const;
  // Folds a buffered op into the master copy only (cold completion rebuilds
  // the data plane afterwards in one pass).
  void ApplyOpToMaster(const PendingOp& op);

  // Dense slot for an endpoint address, creating it (and growing the
  // bank-wide columns) on first sight. Slots are never recycled: the
  // verdict epoch column must survive list removal and restarts.
  uint32_t SlotFor(IpAddress endpoint);
  uint32_t SlotOf(IpAddress endpoint) const { return slots_.Lookup(endpoint); }
  // slot -> address (transient, for the rare sorted sweeps/fingerprints).
  std::vector<IpAddress> SlotAddresses() const;
  // Master endpoints (slots holding a master set), sorted by address.
  std::vector<std::pair<IpAddress, uint32_t>> SortedMasterEndpoints() const;

  // Drops the master set reference for `slot`, if any.
  void ClearMasterSet(uint32_t slot);
  // Replaces the master set for `slot`, consuming the caller's reference.
  void AssignMasterSet(uint32_t slot, uint32_t set_id);
  // Compiles the set's matcher if this distinct list has never compiled.
  void EnsureCompiled(uint32_t set_id);

  // Epoch bumps, called at *apply* time (when edge state actually changes).
  void BumpEndpointEpoch(uint32_t slot) {
    ++slot_epoch_[slot];
    ++gen_;
  }
  void BumpGlobalEpoch() {
    ++global_epoch_;
    ++gen_;
  }
  uint64_t EndpointEpochOf(IpAddress endpoint) const {
    const uint32_t slot = slots_.Lookup(endpoint);
    return slot == kNilId ? 0 : slot_epoch_[slot];
  }

  std::string domain_;
  EventQueue* queue_;
  Rng rng_;
  EdgeFilterParams params_;
  bool degraded_ = false;
  uint64_t messages_dropped_ = 0;
  uint64_t retransmissions_ = 0;
  std::vector<EdgeState> edges_;

  // Endpoint slot index + bank-wide SoA columns (all sized to slot count).
  AddrIndex slots_;
  std::vector<uint64_t> slot_epoch_;      // verdict epoch; survives restarts
  std::vector<uint64_t> master_version_;  // control-plane master; 0 = none
  std::vector<uint32_t> master_set_;      // interned master list; kNilId = none
  uint64_t master_lists_ = 0;             // slots with master_version_ != 0

  // Interned permit lists shared by master, edges and in-flight applies.
  InternPool<PermitSet, PermitSetHash> sets_;

  std::unordered_map<EndpointGroupId, MasterGroup> latest_groups_;
  uint64_t next_version_ = 1;
  uint64_t messages_ = 0;

  // Restart protocol state (see reconcile.h).
  bool in_restart_ = false;
  std::vector<PendingOp> pending_ops_;

  // Verdict fast path. Scoped epochs: list applies/removals bump the
  // endpoint's epoch, group applies/removals bump the bank-wide one; gen_
  // moves with every bump so validated slots hit with one integer compare.
  uint64_t global_epoch_ = 0;
  uint64_t gen_ = 0;
  uint64_t compiles_ = 0;
  mutable VerdictCache<VerdictKey, bool, VerdictKeyHash> cache_;
};

}  // namespace tenantnet

#endif  // TENANTNET_SRC_CORE_EDGE_FILTER_H_
