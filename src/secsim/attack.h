// Attack simulation for the §6(iii) security question.
//
// Four attack classes exercise different layers of each defense stack:
//
//   kVolumetricFlood     — many spoofed sources, high pps, one target: the
//                          DDoS/resource-exhaustion case permit-lists are
//                          meant to absorb at the provider edge.
//   kPortScan            — one source probing many ports: tests default-off
//                          vs ACL/SG surface.
//   kUnauthorizedAccess  — network-permitted source, no/bad credential:
//                          must die at the API gateway in both worlds.
//   kStolenCredential    — valid token from a non-permitted network
//                          location: the declarative world's L3/L4 layer
//                          catches what API auth alone cannot.
//
// The driver is world-agnostic: the two worlds plug in a NetworkCheckFn
// (did the packet reach the endpoint, and where did it die?) and an
// optional AppCheckFn (did the request pass API-level auth?). The outcome
// separates network-layer delivery from application acceptance, plus how
// much attack traffic each tenant-owned appliance had to inspect — the
// saturation axis of the comparison.

#ifndef TENANTNET_SRC_SECSIM_ATTACK_H_
#define TENANTNET_SRC_SECSIM_ATTACK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/app/gateway.h"
#include "src/common/rng.h"
#include "src/net/flow.h"

namespace tenantnet {

enum class AttackKind : uint8_t {
  kVolumetricFlood,
  kPortScan,
  kUnauthorizedAccess,
  kStolenCredential,
};

std::string_view AttackKindName(AttackKind kind);

struct AttackConfig {
  AttackKind kind = AttackKind::kVolumetricFlood;
  IpAddress target;
  uint16_t target_port = 443;
  uint64_t attempts = 10000;
  // Spoofed/botnet source space for floods and scans.
  IpPrefix botnet = *IpPrefix::Parse("203.0.0.0/16");
  // For credentialed attacks.
  std::string token;                 // empty/bogus for kUnauthorizedAccess
  IpAddress insider_source;          // a network-permitted address, for
                                     // kUnauthorizedAccess
  std::string payload = "GET /";     // flood/scan payload
  uint64_t seed = 99;
};

// One probe's network-layer fate.
struct NetworkVerdict {
  bool delivered = false;
  std::string stage;  // drop stage, or "delivered"
};

using NetworkCheckFn = std::function<NetworkVerdict(
    const FiveTuple& flow, const std::string& payload)>;
// Returns the gateway verdict for a request that reached the endpoint.
using AppCheckFn = std::function<GatewayVerdict(const ApiRequest& request)>;

struct AttackOutcome {
  uint64_t attempts = 0;
  uint64_t reached_endpoint = 0;   // network-layer delivered
  uint64_t served = 0;             // also passed application auth
  std::map<std::string, uint64_t> dropped_by_stage;
  std::map<std::string, uint64_t> app_rejections;

  double ReachRate() const {
    return attempts == 0 ? 0
                         : static_cast<double>(reached_endpoint) /
                               static_cast<double>(attempts);
  }
  double ServeRate() const {
    return attempts == 0
               ? 0
               : static_cast<double>(served) / static_cast<double>(attempts);
  }
};

// Runs the attack. `app_check` may be null (pure network-layer attacks).
AttackOutcome RunAttack(const AttackConfig& config, NetworkCheckFn network,
                        AppCheckFn app_check);

}  // namespace tenantnet

#endif  // TENANTNET_SRC_SECSIM_ATTACK_H_
