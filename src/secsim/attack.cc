#include "src/secsim/attack.h"

namespace tenantnet {

std::string_view AttackKindName(AttackKind kind) {
  switch (kind) {
    case AttackKind::kVolumetricFlood:
      return "volumetric-flood";
    case AttackKind::kPortScan:
      return "port-scan";
    case AttackKind::kUnauthorizedAccess:
      return "unauthorized-access";
    case AttackKind::kStolenCredential:
      return "stolen-credential";
  }
  return "?";
}

AttackOutcome RunAttack(const AttackConfig& config, NetworkCheckFn network,
                        AppCheckFn app_check) {
  Rng rng(config.seed);
  AttackOutcome outcome;
  outcome.attempts = config.attempts;

  for (uint64_t i = 0; i < config.attempts; ++i) {
    FiveTuple flow;
    flow.dst = config.target;
    flow.proto = Protocol::kTcp;
    flow.src_port = static_cast<uint16_t>(1024 + rng.NextU64(60000));

    switch (config.kind) {
      case AttackKind::kVolumetricFlood:
        flow.src = config.botnet.AddressAt(
            rng.NextU64(config.botnet.AddressCount()));
        flow.dst_port = config.target_port;
        break;
      case AttackKind::kPortScan:
        flow.src = config.botnet.AddressAt(17);  // single scanning host
        flow.dst_port = static_cast<uint16_t>(1 + (i % 65535));
        break;
      case AttackKind::kUnauthorizedAccess:
        flow.src = config.insider_source;
        flow.dst_port = config.target_port;
        break;
      case AttackKind::kStolenCredential:
        flow.src = config.botnet.AddressAt(
            rng.NextU64(config.botnet.AddressCount()));
        flow.dst_port = config.target_port;
        break;
    }

    NetworkVerdict verdict = network(flow, config.payload);
    if (!verdict.delivered) {
      ++outcome.dropped_by_stage[verdict.stage];
      continue;
    }
    ++outcome.reached_endpoint;

    if (!app_check) {
      continue;
    }
    ApiRequest request;
    request.method = "POST";
    request.path = "/api/v1/query";
    request.token = config.token;
    request.body = config.payload;
    GatewayVerdict app = app_check(request);
    if (app == GatewayVerdict::kAccepted) {
      ++outcome.served;
    } else {
      ++outcome.app_rejections[std::string(GatewayVerdictName(app))];
    }
  }
  return outcome;
}

}  // namespace tenantnet
