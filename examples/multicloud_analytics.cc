// The Figure 1 scenario end to end: an enterprise whose Spark cluster,
// database, web tiers, analytics and on-prem alert manager span two clouds
// and a private datacenter — deployed BOTH ways, then driven with live
// request traffic over the fluid network simulator.
//
// Watch for three things in the output:
//   1. the construction transcript lengths (what the tenant had to do),
//   2. identical application-level connectivity from both worlds,
//   3. comparable end-to-end latency — the declarative world gives up no
//      performance; it only removes the tenant network layer.

#include <cstdio>
#include <functional>
#include <map>

#include "src/app/workload.h"
#include "src/sim/flow_sim.h"
#include "src/cloud/presets.h"
#include "src/core/api.h"
#include "src/vnet/builder.h"

using namespace tenantnet;  // NOLINT: example brevity

namespace {

// Drives the app's three main request patterns through either world and
// prints per-pattern latency.
using ConnectorFactory = std::function<ConnectorFn(uint16_t port)>;

void DriveTraffic(const char* label, CloudWorld& world,
                  const Fig1World& fig, const ConnectorFactory& connector) {
  EventQueue queue;
  FlowSim flows(queue, world.topology());
  RequestWorkload workload(queue, flows, world, WorkloadParams{});

  size_t spark_db = workload.AddPattern("spark->db", fig.spark, fig.database,
                                        30.0,
                                        connector(Fig1Baseline::kDbPort));
  size_t web_spark = workload.AddPattern("web->spark", fig.web_eu, fig.spark,
                                         20.0,
                                         connector(Fig1Baseline::kSparkPort));
  size_t alert = workload.AddPattern("spark->alerting", fig.spark,
                                     fig.alerting, 5.0,
                                     connector(Fig1Baseline::kAlertPort));
  workload.Start(SimDuration::Seconds(15));
  queue.RunAll();

  std::printf("%s\n", label);
  for (size_t p : {spark_db, web_spark, alert}) {
    const PatternStats& stats = workload.stats(p);
    std::printf("  %-16s attempted=%llu delivered=%llu p50=%.1fms "
                "p99=%.1fms\n",
                workload.pattern_name(p).c_str(),
                static_cast<unsigned long long>(stats.attempted),
                static_cast<unsigned long long>(stats.completed),
                stats.latency_ms.P50(), stats.latency_ms.P99());
  }
}

}  // namespace

int main() {
  // ======================= World 1: the baseline =========================
  Fig1World fig_base = BuildFig1World();
  ConfigLedger base_ledger;
  BaselineNetwork baseline(*fig_base.world, base_ledger);
  auto handles = BuildFig1Baseline(baseline, fig_base);
  if (!handles.ok()) {
    std::printf("baseline build failed: %s\n",
                handles.status().ToString().c_str());
    return 1;
  }
  std::printf("Baseline build: %llu tenant actions "
              "(%llu components, %llu parameters, %llu cross-references)\n",
              static_cast<unsigned long long>(base_ledger.total()),
              static_cast<unsigned long long>(base_ledger.components()),
              static_cast<unsigned long long>(base_ledger.parameters()),
              static_cast<unsigned long long>(base_ledger.cross_references()));

  ConnectorFactory base_connector = [&baseline](uint16_t port) {
    return [&baseline, port](InstanceId src, InstanceId dst) {
      ResolvedRoute route;
      auto result = baseline.Evaluate(src, dst, port, Protocol::kTcp);
    if (!result.ok() || !result->delivered) {
      route.allowed = false;
      route.deny_stage = DenyStage(result.ok() ? result->drop_stage : "error");
      return route;
    }
      route.allowed = true;
      route.src_node = result->src_node;
      route.dst_node = result->dst_node;
      route.policy = result->egress_policy;
      return route;
    };
  };
  DriveTraffic("Baseline traffic:", *fig_base.world, fig_base,
               base_connector);

  // ===================== World 2: the declarative API =====================
  Fig1World fig_decl = BuildFig1World();
  ConfigLedger decl_ledger;
  DeclarativeCloud cloud(*fig_decl.world, decl_ledger);

  std::map<uint64_t, IpAddress> eip;
  for (InstanceId id : fig_decl.AllInstances()) {
    eip[id.value()] = *cloud.RequestEip(id);
  }
  auto permit = [&](InstanceId target,
                    std::vector<const std::vector<InstanceId>*> groups) {
    std::vector<PermitEntry> permits;
    for (const auto* group : groups) {
      for (InstanceId src : *group) {
        if (src != target) {
          PermitEntry e;
          e.source = IpPrefix::Host(eip[src.value()]);
          permits.push_back(e);
        }
      }
    }
    (void)cloud.SetPermitList(eip[target.value()], permits);
  };
  for (InstanceId db : fig_decl.database) {
    permit(db, {&fig_decl.spark, &fig_decl.analytics, &fig_decl.alerting});
  }
  for (InstanceId sp : fig_decl.spark) {
    permit(sp, {&fig_decl.spark, &fig_decl.web_eu, &fig_decl.web_us,
                &fig_decl.alerting});
  }
  for (InstanceId al : fig_decl.alerting) {
    permit(al, {&fig_decl.spark});
  }
  (void)cloud.SetEgressProfile(fig_decl.tenant, EgressPolicy::kColdPotato);
  std::printf("\nDeclarative build: %llu tenant actions "
              "(%llu API calls; 0 components; 0 cross-references)\n",
              static_cast<unsigned long long>(decl_ledger.total()),
              static_cast<unsigned long long>(decl_ledger.api_calls()));

  ConnectorFactory decl_connector = [&cloud, &eip](uint16_t port) {
    return [&cloud, &eip, port](InstanceId src, InstanceId dst) {
      ResolvedRoute route;
      auto result =
          cloud.Evaluate(src, eip[dst.value()], port, Protocol::kTcp);
      if (!result.ok() || !result->delivered) {
        route.allowed = false;
        route.deny_stage = DenyStage(result.ok() ? result->drop_stage : "error");
        return route;
      }
      route.allowed = true;
      route.src_node = result->src_node;
      route.dst_node = result->dst_node;
      route.policy = result->egress_policy;
      route.rate_cap_bps = result->vm_egress_cap_bps;
      return route;
    };
  };
  DriveTraffic("Declarative traffic:", *fig_decl.world, fig_decl,
               decl_connector);

  std::printf(
      "\nSame application, same physical world, same connectivity —\n"
      "one of the two tenants also had to build and now operates 6 VPCs,\n"
      "11 gateways and a BGP mesh.\n");
  return 0;
}
