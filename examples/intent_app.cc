// Intent-level deployment: from a service graph to a running, locked-down
// application in one call.
//
// The paper's end state is that tenants express goals, not mechanisms. For
// a service-centric app the goals are its call graph — so this example
// writes one down (web -> api -> {db, cache}) and lets IntentDeployer emit
// every Table 2 call: EIPs, per-service groups, SIPs for the multi-
// instance tiers, and permit lists derived from the edges. Then it scales
// the api tier out and in again, each a single membership change.

#include <cstdio>

#include "src/cloud/presets.h"
#include "src/core/intent.h"

using namespace tenantnet;  // NOLINT: example brevity

int main() {
  TestWorld tw = BuildTestWorld();
  CloudWorld& world = *tw.world;
  ConfigLedger ledger;
  DeclarativeCloud cloud(world, ledger);
  IntentDeployer deployer(cloud);

  auto launch = [&](RegionId region, int zone) {
    return *world.LaunchInstance(tw.tenant, tw.provider, region, zone);
  };

  // ---- The application, as the developer sees it. --------------------------
  AppSpec app;
  app.tenant = tw.tenant;
  {
    ServiceSpec web;
    web.name = "web";
    web.instances = {launch(tw.east, 0), launch(tw.east, 1)};
    web.port = 443;
    web.public_facing = true;
    web.sip_provider = tw.provider;
    ServiceSpec api;
    api.name = "api";
    api.instances = {launch(tw.east, 0), launch(tw.west, 0)};
    api.port = 8080;
    api.sip_provider = tw.provider;
    ServiceSpec db;
    db.name = "db";
    db.instances = {launch(tw.east, 1)};
    db.port = 5432;
    ServiceSpec cache;
    cache.name = "cache";
    cache.instances = {launch(tw.east, 0)};
    cache.port = 6379;
    app.services = {web, api, db, cache};
  }
  app.calls = {{"web", "api"}, {"api", "db"}, {"api", "cache"}};

  auto deployed = deployer.Deploy(app);
  if (!deployed.ok()) {
    std::printf("deploy failed: %s\n", deployed.status().ToString().c_str());
    return 1;
  }
  std::printf("deployed 4 services / 6 instances with %llu API calls "
              "(0 boxes)\n\n",
              static_cast<unsigned long long>(ledger.api_calls()));

  // ---- The call graph is now the network policy. ---------------------------
  auto check = [&](const char* from, InstanceId src, const char* to,
                   uint16_t port) {
    auto result = cloud.Evaluate(src, *deployed->AddressOf(to), port,
                                 Protocol::kTcp);
    std::printf("  %-5s -> %-6s:%-5u  %s\n", from, to, port,
                result->delivered ? "ok" : "DENIED");
  };
  InstanceId web0 = app.services[0].instances[0];
  InstanceId api0 = app.services[1].instances[0];
  InstanceId db0 = app.services[2].instances[0];
  std::printf("declared edges:\n");
  check("web", web0, "api", 8080);
  check("api", api0, "db", 5432);
  check("api", api0, "cache", 6379);
  std::printf("undeclared edges (closure property):\n");
  check("web", web0, "db", 5432);
  check("web", web0, "cache", 6379);
  check("db", db0, "cache", 6379);

  // ---- Scale the api tier. --------------------------------------------------
  std::printf("\nscaling api 2 -> 3 instances...\n");
  uint64_t before = ledger.api_calls();
  InstanceId newcomer = launch(tw.west, 1);
  if (!deployer.AddInstance(*deployed, app, "api", newcomer).ok()) {
    std::printf("scale-out failed\n");
    return 1;
  }
  std::printf("  %llu API calls; the db's permit list never changed "
              "(group reference)\n",
              static_cast<unsigned long long>(ledger.api_calls() - before));
  auto from_new = cloud.Evaluate(newcomer, *deployed->AddressOf("db"), 5432,
                                 Protocol::kTcp);
  std::printf("  newcomer -> db: %s\n",
              from_new->delivered ? "ok" : "DENIED");

  std::printf("scaling api back 3 -> 2...\n");
  (void)deployer.RemoveInstance(*deployed, "api", newcomer);
  auto after = cloud.Evaluate(newcomer, *deployed->AddressOf("db"), 5432,
                              Protocol::kTcp);
  std::printf("  removed instance -> db: %s (grants revoked with the "
              "endpoint)\n",
              (!after.ok() || !after->delivered) ? "DENIED" : "ok?!");
  return 0;
}
