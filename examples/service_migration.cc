// Moving a live service across clouds with the declarative API (§5).
//
// A three-backend service lives on provider A. We migrate it to provider B
// one backend at a time, with the SIP... wait — a SIP is provider-scoped
// (it comes from a provider's pool), so a cross-cloud move means standing
// up a SIP on the destination and flipping clients over. That, plus
// per-endpoint permit-list updates, is the *entire* move. The example
// narrates each step and verifies the client never loses service.

#include <cstdio>
#include <vector>

#include "src/cloud/presets.h"
#include "src/core/api.h"

using namespace tenantnet;  // NOLINT: example brevity

namespace {

bool Serve(DeclarativeCloud& cloud, InstanceId client, IpAddress sip) {
  auto result = cloud.Evaluate(client, sip, 443, Protocol::kTcp);
  return result.ok() && result->delivered;
}

}  // namespace

int main() {
  // Two providers, one region each (plus extras we ignore).
  WorldParams params;
  Fig1World fig = BuildFig1World(params);
  CloudWorld& world = *fig.world;
  ConfigLedger ledger;
  DeclarativeCloud cloud(world, ledger);

  // The service starts on cloud A (us-east): three backends + one SIP.
  std::vector<InstanceId> old_backends;
  std::vector<IpAddress> old_eips;
  for (int i = 0; i < 3; ++i) {
    InstanceId id = *world.LaunchInstance(fig.tenant, fig.cloud_a,
                                          fig.a_us_east, i % 3);
    old_backends.push_back(id);
    old_eips.push_back(*cloud.RequestEip(id));
  }
  IpAddress sip_a = *cloud.RequestSip(fig.tenant, fig.cloud_a);
  for (IpAddress eip : old_eips) {
    (void)cloud.Bind(eip, sip_a);
  }

  // A client on cloud B consumes the service.
  InstanceId client = *world.LaunchInstance(fig.tenant, fig.cloud_b,
                                            fig.b_us_east, 0);
  IpAddress client_eip = *cloud.RequestEip(client);
  PermitEntry from_client;
  from_client.source = IpPrefix::Host(client_eip);
  for (IpAddress eip : old_eips) {
    (void)cloud.SetPermitList(eip, {from_client});
  }
  std::printf("service on cloud A, client on cloud B: %s\n",
              Serve(cloud, client, sip_a) ? "SERVING" : "BROKEN");

  uint64_t actions_before = ledger.total();

  // ---- The migration, step by step. ---------------------------------------
  std::printf("\nmigrating to cloud B...\n");

  // 1. New backends + endpoints on cloud B; same verbs, different cloud.
  std::vector<InstanceId> new_backends;
  std::vector<IpAddress> new_eips;
  for (int i = 0; i < 3; ++i) {
    InstanceId id = *world.LaunchInstance(fig.tenant, fig.cloud_b,
                                          fig.b_us_east, i % 2);
    new_backends.push_back(id);
    new_eips.push_back(*cloud.RequestEip(id));
    (void)cloud.SetPermitList(new_eips.back(), {from_client});
  }

  // 2. A SIP on the destination provider, serving from the new backends.
  IpAddress sip_b = *cloud.RequestSip(fig.tenant, fig.cloud_b);
  for (IpAddress eip : new_eips) {
    (void)cloud.Bind(eip, sip_b);
  }
  std::printf("  new SIP %s live on cloud B: %s\n",
              sip_b.ToString().c_str(),
              Serve(cloud, client, sip_b) ? "SERVING" : "BROKEN");

  // 3. Clients flip to the new SIP (DNS/app config — outside the network
  //    API); the old side keeps serving until they have.
  std::printf("  old SIP still serving during cutover: %s\n",
              Serve(cloud, client, sip_a) ? "SERVING" : "BROKEN");

  // 4. Drain: unbind and release the old side.
  for (size_t i = 0; i < old_eips.size(); ++i) {
    (void)cloud.Unbind(old_eips[i], sip_a);
    (void)cloud.ReleaseEip(old_eips[i]);
    (void)world.TerminateInstance(old_backends[i]);
  }
  (void)cloud.ReleaseSip(sip_a);

  std::printf("  after teardown, new SIP: %s\n",
              Serve(cloud, client, sip_b) ? "SERVING" : "BROKEN");

  std::printf("\nmigration cost: %llu tenant actions, all of them the same "
              "five verbs\n",
              static_cast<unsigned long long>(ledger.total() -
                                              actions_before));
  std::printf("(compare bench_migration for the baseline-world equivalent: "
              "a new VPC,\n transit gateway, peering, routes, duplicated "
              "security config, and BGP)\n");
  return 0;
}
