// Quickstart: the whole Table 2 API in one sitting.
//
// Builds a tiny two-region cloud plus an on-prem site, launches a web
// service with two backends and one client, and wires everything with the
// five declarative verbs — no VPCs, no gateways, no route tables. Then
// shows default-off in action and a provider-side failover.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "src/cloud/presets.h"
#include "src/common/logging.h"
#include "src/core/api.h"

using namespace tenantnet;  // NOLINT: example brevity

int main() {
  SetLogLevel(LogLevel::kInfo);

  // A small physical world: one provider, two regions, an on-prem site.
  // (CloudWorld is the simulator's substrate; real deployments would be
  // the provider's actual fabric.)
  TestWorld tw = BuildTestWorld();
  CloudWorld& world = *tw.world;

  // The provider's declarative control plane. The ledger records every
  // tenant-visible action, which is how the complexity experiments count.
  ConfigLedger ledger;
  DeclarativeCloud cloud(world, ledger);

  // --- Compute: two backends in the east region, a client in the west. ---
  InstanceId backend_a = *world.LaunchInstance(tw.tenant, tw.provider,
                                               tw.east, /*zone=*/0);
  InstanceId backend_b = *world.LaunchInstance(tw.tenant, tw.provider,
                                               tw.east, /*zone=*/1);
  InstanceId client = *world.LaunchInstance(tw.tenant, tw.provider,
                                            tw.west, 0);

  // --- Table 2, verb by verb. --------------------------------------------

  // request_eip(vm_id): every endpoint gets a globally routable,
  // default-off address.
  IpAddress eip_a = *cloud.RequestEip(backend_a);
  IpAddress eip_b = *cloud.RequestEip(backend_b);
  IpAddress eip_client = *cloud.RequestEip(client);
  std::printf("EIPs: backend-a=%s backend-b=%s client=%s\n",
              eip_a.ToString().c_str(), eip_b.ToString().c_str(),
              eip_client.ToString().c_str());

  // request_sip(): one stable service address for the pair.
  IpAddress sip = *cloud.RequestSip(tw.tenant, tw.provider);
  std::printf("SIP: %s\n", sip.ToString().c_str());

  // bind(eip, sip): the provider load-balances the SIP across bindings;
  // weights are optional.
  (void)cloud.Bind(eip_a, sip, /*weight=*/2.0);
  (void)cloud.Bind(eip_b, sip, /*weight=*/1.0);

  // set_permit_list(eip, ...): only the client may reach the backends.
  PermitEntry from_client;
  from_client.source = IpPrefix::Host(eip_client);
  from_client.dst_ports = PortRange::Single(443);
  from_client.proto = Protocol::kTcp;
  (void)cloud.SetPermitList(eip_a, {from_client});
  (void)cloud.SetPermitList(eip_b, {from_client});

  // set_qos(region, bandwidth): a regional egress allowance.
  (void)cloud.SetQos(tw.tenant, tw.east, 5e9);

  // --- Use it. --------------------------------------------------------------

  std::printf("\nclient -> SIP, six requests (provider spreads by weight):\n");
  for (int i = 0; i < 6; ++i) {
    auto result = cloud.Evaluate(client, sip, 443, Protocol::kTcp);
    std::printf("  %s -> backend %s\n",
                result->delivered ? "delivered" : "DROPPED",
                result->effective_dst.ToString().c_str());
  }

  // Default-off: a stranger (even the tenant's own instance not on the
  // list) cannot reach the backends...
  InstanceId stranger = *world.LaunchInstance(tw.tenant, tw.provider,
                                              tw.west, 1);
  IpAddress eip_stranger = *cloud.RequestEip(stranger);
  (void)eip_stranger;
  auto blocked = cloud.Evaluate(stranger, eip_a, 443, Protocol::kTcp);
  std::printf("\nstranger -> backend-a: %s (%s)\n",
              blocked->delivered ? "delivered" : "DROPPED",
              blocked->drop_reason.c_str());

  // ...and an arbitrary internet source certainly cannot.
  auto external = cloud.EvaluateExternal(IpAddress::V4(203, 0, 113, 5),
                                         eip_a, 443, Protocol::kTcp);
  std::printf("internet scanner -> backend-a: %s (at %s)\n",
              external.delivered ? "delivered" : "DROPPED",
              external.drop_stage.c_str());

  // Failover is the provider's job: kill backend-a and the SIP heals.
  std::printf("\nbackend-a dies; provider notices (no tenant health "
              "checks):\n");
  cloud.NotifyInstanceDown(backend_a);
  for (int i = 0; i < 3; ++i) {
    auto result = cloud.Evaluate(client, sip, 443, Protocol::kTcp);
    std::printf("  delivered to %s\n",
                result->effective_dst.ToString().c_str());
  }

  std::printf("\nTenant actions total (the whole deployment): %llu\n",
              static_cast<unsigned long long>(ledger.total()));
  std::printf("Boxes built, routes written, gateways configured: 0\n");
  return 0;
}
