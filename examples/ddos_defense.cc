// Defense-in-depth, rearranged (§4 Security / §6 iii).
//
// A database service is attacked three ways while serving a legitimate
// client. The declarative stack is two layers — provider-edge permit lists
// (L3/L4) and an authenticating API gateway (L7) — and the example shows
// which layer catches what:
//
//   volumetric flood    -> dies at the provider edge (default-off)
//   stolen credential   -> dies at the provider edge (source not permitted)
//   insider, bad token  -> passes the network, dies at the API gateway
//   legitimate client   -> passes both
//
// The point the paper argues: authentication belongs at the layer that
// understands application semantics; the network's job reduces to
// resource-exhaustion protection — and that job moves to the provider.

#include <cstdio>

#include "src/app/gateway.h"
#include "src/cloud/presets.h"
#include "src/core/api.h"
#include "src/secsim/attack.h"

using namespace tenantnet;  // NOLINT: example brevity

int main() {
  TestWorld tw = BuildTestWorld();
  CloudWorld& world = *tw.world;
  ConfigLedger ledger;
  DeclarativeCloud cloud(world, ledger);

  // The service and its one legitimate client.
  InstanceId db = *world.LaunchInstance(tw.tenant, tw.provider, tw.east, 0);
  InstanceId app = *world.LaunchInstance(tw.tenant, tw.provider, tw.west, 0);
  IpAddress db_eip = *cloud.RequestEip(db);
  IpAddress app_eip = *cloud.RequestEip(app);
  PermitEntry from_app;
  from_app.source = IpPrefix::Host(app_eip);
  from_app.dst_ports = PortRange::Single(5432);
  from_app.proto = Protocol::kTcp;
  (void)cloud.SetPermitList(db_eip, {from_app});

  // API-level auth (the tenant's half of the security story).
  CredentialRegistry credentials;
  Principal& app_principal = credentials.CreatePrincipal("app-server");
  ApiGateway gateway("db", &credentials);
  gateway.Authorize(app_principal.id, "*", "/query");

  auto network = [&cloud](const FiveTuple& flow,
                          const std::string&) -> NetworkVerdict {
    auto d = cloud.EvaluateExternal(flow.src, flow.dst, flow.dst_port,
                                    flow.proto);
    return {d.delivered, d.delivered ? "delivered" : d.drop_stage};
  };
  auto app_check = [&gateway](const ApiRequest& request) {
    return gateway.Check(request);
  };

  std::printf("defense stack: provider edge permit-list  ->  API gateway\n\n");

  // 1. Volumetric flood from a spoofed botnet.
  AttackConfig flood;
  flood.kind = AttackKind::kVolumetricFlood;
  flood.target = db_eip;
  flood.target_port = 5432;
  flood.attempts = 50000;
  AttackOutcome flood_outcome = RunAttack(flood, network, app_check);
  std::printf("volumetric flood (50k pkts): reached=%llu  -> all dropped at "
              "the provider edge,\n  zero tenant cycles spent\n",
              static_cast<unsigned long long>(flood_outcome.reached_endpoint));

  // 2. Stolen credential used from an unpermitted network location.
  AttackConfig stolen;
  stolen.kind = AttackKind::kStolenCredential;
  stolen.target = db_eip;
  stolen.target_port = 5432;
  stolen.attempts = 1000;
  stolen.token = app_principal.token;  // a real, valid token!
  AttackOutcome stolen_outcome = RunAttack(stolen, network, app_check);
  std::printf("stolen credential, wrong network: reached=%llu served=%llu "
              "-> L3/L4 catches what\n  API auth alone cannot\n",
              static_cast<unsigned long long>(stolen_outcome.reached_endpoint),
              static_cast<unsigned long long>(stolen_outcome.served));

  // 3. Insider position (permitted source), but no valid credential.
  AttackConfig insider;
  insider.kind = AttackKind::kUnauthorizedAccess;
  insider.target = db_eip;
  insider.target_port = 5432;
  insider.attempts = 1000;
  insider.insider_source = app_eip;  // network-permitted!
  insider.token = "forged";
  AttackOutcome insider_outcome = RunAttack(insider, network, app_check);
  std::printf("compromised-host, bad token: reached=%llu served=%llu "
              "-> the API gateway catches\n  what L3/L4 cannot\n",
              static_cast<unsigned long long>(
                  insider_outcome.reached_endpoint),
              static_cast<unsigned long long>(insider_outcome.served));

  // 4. The legitimate client sails through both layers.
  ApiRequest legit;
  legit.method = "POST";
  legit.path = "/query";
  legit.token = app_principal.token;
  auto net_ok = cloud.Evaluate(app, db_eip, 5432, Protocol::kTcp);
  bool both = net_ok.ok() && net_ok->delivered &&
              gateway.Check(legit) == GatewayVerdict::kAccepted;
  std::printf("legitimate client: %s\n\n", both ? "SERVED" : "broken!");

  std::printf("gateway saw %llu requests total; the flood never reached "
              "it.\n",
              static_cast<unsigned long long>(gateway.total_checked()));
  return 0;
}
