// Soak: one simulated hour of the Fig. 1 declarative deployment under
// request load, instance failures/recoveries, permit churn, and QoS
// epochs, all on one event queue. Asserts global accounting at the end —
// the "does it all compose" test.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "src/app/workload.h"
#include "src/sim/flow_sim.h"
#include "src/cloud/presets.h"
#include "src/core/api.h"
#include "src/reach/reach.h"
#include "src/vnet/builder.h"
#include "tests/test_env.h"

namespace tenantnet {
namespace {

TEST(SoakTest, OneSimulatedHourOfEverything) {
  // TN_ITERS = simulated seconds of load (default one hour; CI can run
  // short, nightly long). TN_SEED reseeds the workload generator.
  const double run_s =
      static_cast<double>(test_env::ItersOverride(3600));
  WorkloadParams wparams;
  wparams.seed = test_env::SeedOverride(wparams.seed);
  SCOPED_TRACE("reproduce with TN_SEED=" + std::to_string(wparams.seed) +
               " TN_ITERS=" + std::to_string(static_cast<int64_t>(run_s)));
  Fig1World fig = BuildFig1World();
  CloudWorld& world = *fig.world;
  EventQueue queue;
  FlowSim flows(queue, world.topology());
  ConfigLedger ledger;
  DeclarativeCloud cloud(world, ledger, &queue);

  // Deploy: EIPs for everyone, a SIP over the database tier, permit lists.
  std::map<uint64_t, IpAddress> eip;
  for (InstanceId id : fig.AllInstances()) {
    eip[id.value()] = *cloud.RequestEip(id);
  }
  IpAddress db_sip = *cloud.RequestSip(fig.tenant, fig.cloud_b);
  for (InstanceId db : fig.database) {
    ASSERT_TRUE(cloud.Bind(eip[db.value()], db_sip).ok());
  }
  auto group = *cloud.CreateEndpointGroup(fig.tenant, "spark");
  for (InstanceId sp : fig.spark) {
    ASSERT_TRUE(cloud.AddToEndpointGroup(group, eip[sp.value()]).ok());
  }
  for (InstanceId db : fig.database) {
    PermitEntry by_group;
    by_group.source_group = group;
    ASSERT_TRUE(cloud.SetPermitList(eip[db.value()], {by_group}).ok());
  }
  ASSERT_TRUE(cloud.SetQos(fig.tenant, fig.a_us_east, 20e9).ok());

  // Let the async permit installs land before traffic starts.
  queue.RunUntil(queue.now() + SimDuration::Seconds(1));

  // Workload: spark -> db SIP for the configured duration.
  RequestWorkload workload(queue, flows, world, wparams);
  ConnectorFn connector = [&](InstanceId src, InstanceId dst_hint) {
    (void)dst_hint;  // the pattern targets the SIP, not an instance
    ResolvedRoute route;
    auto result = cloud.Evaluate(src, db_sip, Fig1Baseline::kDbPort,
                                 Protocol::kTcp);
    if (!result.ok() || !result->delivered) {
      route.allowed = false;
      route.deny_stage = DenyStage(result.ok() ? result->drop_stage : "error");
      return route;
    }
    route.allowed = true;
    route.src_node = result->src_node;
    route.dst_node = result->dst_node;
    route.policy = result->egress_policy;
    route.rate_cap_bps = result->vm_egress_cap_bps;
    return route;
  };
  size_t pattern = workload.AddPattern("spark->db-sip", fig.spark,
                                       fig.database, /*rps=*/25.0, connector);
  workload.Start(SimDuration::Seconds(run_s));

  // Failure injection: each database backend fails and recovers twice
  // (skipping rounds that would not fit a shortened run).
  for (size_t i = 0; i < fig.database.size(); ++i) {
    for (int round = 0; round < 2; ++round) {
      double down_at = 300.0 + static_cast<double>(i) * 400 +
                       static_cast<double>(round) * 1500;
      if (down_at + 120 >= run_s) {
        continue;
      }
      InstanceId victim = fig.database[i];
      queue.ScheduleAt(SimTime::FromSeconds(down_at),
                       [&cloud, victim] { cloud.NotifyInstanceDown(victim); });
      queue.ScheduleAt(SimTime::FromSeconds(down_at + 120),
                       [&cloud, victim] { cloud.NotifyInstanceUp(victim); });
    }
  }

  // Permit churn: the spark group flaps one member periodically.
  InstanceId flapper = fig.spark[0];
  for (double t = 600; t < run_s; t += 600) {
    queue.ScheduleAt(SimTime::FromSeconds(t), [&cloud, &eip, group, flapper] {
      (void)cloud.RemoveFromEndpointGroup(group, eip[flapper.value()]);
    });
    queue.ScheduleAt(SimTime::FromSeconds(t + 60),
                     [&cloud, &eip, group, flapper] {
                       (void)cloud.AddToEndpointGroup(
                           group, eip[flapper.value()]);
                     });
  }

  // QoS epochs tick throughout.
  std::function<void()> epoch = [&] {
    cloud.qos().RunEpoch(queue.now());
    if (queue.now() < SimTime::FromSeconds(run_s + 100)) {
      queue.ScheduleAfter(SimDuration::Millis(100), epoch);
    }
  };
  queue.ScheduleAfter(SimDuration::Millis(100), epoch);

  queue.RunUntil(SimTime::FromSeconds(run_s + 400));

  const PatternStats& stats = workload.stats(pattern);
  // Accounting closes exactly.
  EXPECT_EQ(stats.attempted, stats.completed + stats.denied);
  EXPECT_EQ(workload.inflight(), 0u);
  // ~25 tx/s attempted over the run (~90k for the default hour).
  EXPECT_GT(static_cast<double>(stats.attempted), 22.0 * run_s);
  // The vast majority succeed; denials happen only in the windows where
  // all backends were down or the flapper lost membership mid-flight. A
  // shortened run weighs a single outage window more heavily, so only the
  // full-length soak holds the tight bound.
  EXPECT_GT(static_cast<double>(stats.completed) /
                static_cast<double>(stats.attempted),
            run_s >= 3600 ? 0.95 : 0.50);
  if (stats.completed > 0) {
    // Latency is sane for a us-east <-> us-east pair.
    EXPECT_GT(stats.latency_ms.P50(), 1.0);
    EXPECT_LT(stats.latency_ms.P99(), 500.0);
  }
  // The flow simulator drained.
  EXPECT_EQ(flows.active_flow_count(), 0u);
  // QoS ticked the whole run (10 epochs/s).
  EXPECT_GT(static_cast<double>(cloud.qos().epochs_run()), 8.0 * run_s);

  // Post-run cross-check: for sampled spark -> database pairs (direct EIPs
  // and the SIP), the reach engine's static verdict agrees with the live
  // data plane the soak just exercised. Sampling goes through the shared
  // PairSampler so a failure replays from the same TN_SEED line.
  DeclarativeReachEngine engine(world, cloud);
  test_env::PairSampler sampler(wparams.seed);
  for (size_t draw = 0; draw < 32; ++draw) {
    auto [s, d] = sampler.Pair(fig.spark.size(), fig.database.size() + 1,
                               /*distinct=*/false);
    SCOPED_TRACE(test_env::PairSampler::ReproLine(draw, s, d));
    InstanceId src = fig.spark[s];
    IpAddress dst = d < fig.database.size()
                        ? eip[fig.database[d].value()]
                        : db_sip;
    ReachVerdict v =
        engine.CanReach(src, dst, Fig1Baseline::kDbPort, Protocol::kTcp);
    auto result = cloud.Evaluate(src, dst, Fig1Baseline::kDbPort,
                                 Protocol::kTcp);
    ASSERT_TRUE(result.ok()) << v.ToString();
    EXPECT_EQ(v.reachable, result->delivered) << v.ToString();
    // All database backends share one permit list, so the existential and
    // universal SIP bounds coincide.
    EXPECT_EQ(v.all_backends, v.reachable) << v.ToString();
  }
}

}  // namespace
}  // namespace tenantnet
