// Soak: one simulated hour of the Fig. 1 declarative deployment under
// request load, instance failures/recoveries, permit churn, and QoS
// epochs, all on one event queue. Asserts global accounting at the end —
// the "does it all compose" test.

#include <gtest/gtest.h>

#include <map>

#include "src/app/workload.h"
#include "src/cloud/presets.h"
#include "src/core/api.h"
#include "src/vnet/builder.h"

namespace tenantnet {
namespace {

TEST(SoakTest, OneSimulatedHourOfEverything) {
  Fig1World fig = BuildFig1World();
  CloudWorld& world = *fig.world;
  EventQueue queue;
  FlowSim flows(queue, world.topology());
  ConfigLedger ledger;
  DeclarativeCloud cloud(world, ledger, &queue);

  // Deploy: EIPs for everyone, a SIP over the database tier, permit lists.
  std::map<uint64_t, IpAddress> eip;
  for (InstanceId id : fig.AllInstances()) {
    eip[id.value()] = *cloud.RequestEip(id);
  }
  IpAddress db_sip = *cloud.RequestSip(fig.tenant, fig.cloud_b);
  for (InstanceId db : fig.database) {
    ASSERT_TRUE(cloud.Bind(eip[db.value()], db_sip).ok());
  }
  auto group = *cloud.CreateEndpointGroup(fig.tenant, "spark");
  for (InstanceId sp : fig.spark) {
    ASSERT_TRUE(cloud.AddToEndpointGroup(group, eip[sp.value()]).ok());
  }
  for (InstanceId db : fig.database) {
    PermitEntry by_group;
    by_group.source_group = group;
    ASSERT_TRUE(cloud.SetPermitList(eip[db.value()], {by_group}).ok());
  }
  ASSERT_TRUE(cloud.SetQos(fig.tenant, fig.a_us_east, 20e9).ok());

  // Let the async permit installs land before traffic starts.
  queue.RunUntil(queue.now() + SimDuration::Seconds(1));

  // Workload: spark -> db SIP for an hour.
  RequestWorkload workload(queue, flows, world, WorkloadParams{});
  ConnectorFn connector = [&](InstanceId src, InstanceId dst_hint) {
    (void)dst_hint;  // the pattern targets the SIP, not an instance
    ResolvedRoute route;
    auto result = cloud.Evaluate(src, db_sip, Fig1Baseline::kDbPort,
                                 Protocol::kTcp);
    if (!result.ok() || !result->delivered) {
      route.allowed = false;
      route.deny_stage = result.ok() ? result->drop_stage : "error";
      return route;
    }
    route.allowed = true;
    route.src_node = result->src_node;
    route.dst_node = result->dst_node;
    route.policy = result->egress_policy;
    route.rate_cap_bps = result->vm_egress_cap_bps;
    return route;
  };
  size_t pattern = workload.AddPattern("spark->db-sip", fig.spark,
                                       fig.database, /*rps=*/25.0, connector);
  workload.Start(SimDuration::Seconds(3600));

  // Failure injection: each database backend fails and recovers twice.
  for (size_t i = 0; i < fig.database.size(); ++i) {
    for (int round = 0; round < 2; ++round) {
      double down_at = 300.0 + static_cast<double>(i) * 400 +
                       static_cast<double>(round) * 1500;
      InstanceId victim = fig.database[i];
      queue.ScheduleAt(SimTime::FromSeconds(down_at),
                       [&cloud, victim] { cloud.NotifyInstanceDown(victim); });
      queue.ScheduleAt(SimTime::FromSeconds(down_at + 120),
                       [&cloud, victim] { cloud.NotifyInstanceUp(victim); });
    }
  }

  // Permit churn: the spark group flaps one member periodically.
  InstanceId flapper = fig.spark[0];
  for (double t = 600; t < 3600; t += 600) {
    queue.ScheduleAt(SimTime::FromSeconds(t), [&cloud, &eip, group, flapper] {
      (void)cloud.RemoveFromEndpointGroup(group, eip[flapper.value()]);
    });
    queue.ScheduleAt(SimTime::FromSeconds(t + 60),
                     [&cloud, &eip, group, flapper] {
                       (void)cloud.AddToEndpointGroup(
                           group, eip[flapper.value()]);
                     });
  }

  // QoS epochs tick throughout.
  std::function<void()> epoch = [&] {
    cloud.qos().RunEpoch(queue.now());
    if (queue.now() < SimTime::FromSeconds(3700)) {
      queue.ScheduleAfter(SimDuration::Millis(100), epoch);
    }
  };
  queue.ScheduleAfter(SimDuration::Millis(100), epoch);

  queue.RunUntil(SimTime::FromSeconds(4000));

  const PatternStats& stats = workload.stats(pattern);
  // Accounting closes exactly.
  EXPECT_EQ(stats.attempted, stats.completed + stats.denied);
  EXPECT_EQ(workload.inflight(), 0u);
  // ~90k transactions attempted over the hour.
  EXPECT_GT(stats.attempted, 80000u);
  // The vast majority succeed; denials happen only in the windows where
  // all backends were down or the flapper lost membership mid-flight.
  EXPECT_GT(static_cast<double>(stats.completed) /
                static_cast<double>(stats.attempted),
            0.95);
  // Latency is sane for a us-east <-> us-east pair.
  EXPECT_GT(stats.latency_ms.P50(), 1.0);
  EXPECT_LT(stats.latency_ms.P99(), 500.0);
  // The flow simulator drained.
  EXPECT_EQ(flows.active_flow_count(), 0u);
  // QoS ticked the whole hour.
  EXPECT_GT(cloud.qos().epochs_run(), 30000u);
}

}  // namespace
}  // namespace tenantnet
