// Control-plane tests for BaselineNetwork: creation rules, addressing,
// ledger accounting, and small data-plane scenarios.

#include <gtest/gtest.h>

#include "src/cloud/presets.h"
#include "src/vnet/fabric.h"

namespace tenantnet {
namespace {

IpPrefix P(const char* s) { return *IpPrefix::Parse(s); }

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() : tw_(BuildTestWorld()), net_(*tw_.world, ledger_) {}

  TestWorld tw_;
  ConfigLedger ledger_;
  BaselineNetwork net_;
};

TEST_F(FabricTest, VpcCreationRecordsComplexity) {
  auto vpc = net_.CreateVpc(tw_.tenant, tw_.provider, tw_.east, "v1",
                            P("10.0.0.0/16"));
  ASSERT_TRUE(vpc.ok());
  EXPECT_GE(ledger_.components(), 3u);  // vpc + main RT + default ACL
  EXPECT_GE(ledger_.decisions(), 2u);   // family + cidr plan
  EXPECT_GT(ledger_.parameters(), 0u);
}

TEST_F(FabricTest, OverlappingVpcCidrsRejected) {
  ASSERT_TRUE(net_.CreateVpc(tw_.tenant, tw_.provider, tw_.east, "v1",
                             P("10.0.0.0/16")).ok());
  auto overlap = net_.CreateVpc(tw_.tenant, tw_.provider, tw_.west, "v2",
                                P("10.0.128.0/17"));
  EXPECT_EQ(overlap.status().code(), StatusCode::kAlreadyExists);
  // A different tenant may reuse the space.
  TenantId other = tw_.world->AddTenant("other");
  EXPECT_TRUE(net_.CreateVpc(other, tw_.provider, tw_.east, "v3",
                             P("10.0.0.0/16")).ok());
}

TEST_F(FabricTest, SubnetsCarveDisjointBlocks) {
  auto vpc = *net_.CreateVpc(tw_.tenant, tw_.provider, tw_.east, "v1",
                             P("10.0.0.0/16"));
  auto s1 = net_.CreateSubnet(vpc, "s1", 20, 0, false);
  auto s2 = net_.CreateSubnet(vpc, "s2", 20, 1, false);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  const Subnet* a = net_.FindSubnet(*s1);
  const Subnet* b = net_.FindSubnet(*s2);
  EXPECT_FALSE(a->cidr.Overlaps(b->cidr));
  EXPECT_TRUE(net_.FindVpc(vpc)->cidr.Contains(a->cidr));
  // Bad zone index fails.
  EXPECT_FALSE(net_.CreateSubnet(vpc, "s3", 20, 9, false).ok());
}

TEST_F(FabricTest, AttachInstanceAllocatesAddresses) {
  auto vpc = *net_.CreateVpc(tw_.tenant, tw_.provider, tw_.east, "v1",
                             P("10.0.0.0/16"));
  auto subnet = *net_.CreateSubnet(vpc, "s1", 20, 0, false);
  auto sg = *net_.CreateSecurityGroup(vpc, "sg");
  auto inst = *tw_.world->LaunchInstance(tw_.tenant, tw_.provider, tw_.east, 0);

  auto eni = net_.AttachInstance(inst, subnet, {sg}, /*public=*/true);
  ASSERT_TRUE(eni.ok());
  const Eni* record = net_.FindEniByInstance(inst);
  ASSERT_NE(record, nullptr);
  EXPECT_TRUE(net_.FindSubnet(subnet)->cidr.Contains(record->private_ip));
  ASSERT_TRUE(record->public_ip.has_value());
  EXPECT_TRUE(tw_.world->provider(tw_.provider)
                  .address_space.Contains(*record->public_ip));
  EXPECT_EQ(net_.FindEniByIp(record->private_ip), record);
  EXPECT_EQ(net_.FindEniByIp(*record->public_ip), record);

  // Double attach fails; detach releases addresses.
  EXPECT_EQ(net_.AttachInstance(inst, subnet, {sg}, false).status().code(),
            StatusCode::kAlreadyExists);
  IpAddress old_private = record->private_ip;
  ASSERT_TRUE(net_.DetachInstance(inst).ok());
  EXPECT_EQ(net_.FindEniByInstance(inst), nullptr);
  EXPECT_EQ(net_.FindEniByIp(old_private), nullptr);
}

TEST_F(FabricTest, AttachRejectsCrossRegionSubnet) {
  auto vpc = *net_.CreateVpc(tw_.tenant, tw_.provider, tw_.east, "v1",
                             P("10.0.0.0/16"));
  auto subnet = *net_.CreateSubnet(vpc, "s1", 20, 0, false);
  auto west_inst =
      *tw_.world->LaunchInstance(tw_.tenant, tw_.provider, tw_.west, 0);
  EXPECT_EQ(
      net_.AttachInstance(west_inst, subnet, {}, false).status().code(),
      StatusCode::kInvalidArgument);
}

TEST_F(FabricTest, NatGatewayRequiresPublicSubnet) {
  auto vpc = *net_.CreateVpc(tw_.tenant, tw_.provider, tw_.east, "v1",
                             P("10.0.0.0/16"));
  auto private_subnet = *net_.CreateSubnet(vpc, "priv", 20, 0, false);
  EXPECT_EQ(net_.CreateNatGateway(private_subnet, "nat").status().code(),
            StatusCode::kFailedPrecondition);
  auto public_subnet = *net_.CreateSubnet(vpc, "pub", 24, 0, true);
  EXPECT_TRUE(net_.CreateNatGateway(public_subnet, "nat").ok());
}

TEST_F(FabricTest, OneIgwPerVpc) {
  auto vpc = *net_.CreateVpc(tw_.tenant, tw_.provider, tw_.east, "v1",
                             P("10.0.0.0/16"));
  ASSERT_TRUE(net_.CreateInternetGateway(vpc, "igw").ok());
  EXPECT_EQ(net_.CreateInternetGateway(vpc, "igw2").status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(FabricTest, PeeringRules) {
  auto v1 = *net_.CreateVpc(tw_.tenant, tw_.provider, tw_.east, "v1",
                            P("10.0.0.0/16"));
  auto v2 = *net_.CreateVpc(tw_.tenant, tw_.provider, tw_.west, "v2",
                            P("10.1.0.0/16"));
  auto peering = net_.CreatePeering(v1, v2, "p");
  ASSERT_TRUE(peering.ok());
  // Unaccepted peering drops traffic (verified in the delivery test); the
  // accept step is a distinct tenant action.
  ASSERT_TRUE(net_.AcceptPeering(*peering).ok());
  EXPECT_EQ(net_.AcceptPeering(PeeringId(99)).code(), StatusCode::kNotFound);
}

TEST_F(FabricTest, TgwRegionalityEnforced) {
  auto tgw = *net_.CreateTransitGateway(tw_.provider, tw_.east, 64600, "tgw");
  auto west_vpc = *net_.CreateVpc(tw_.tenant, tw_.provider, tw_.west, "v",
                                  P("10.9.0.0/16"));
  EXPECT_EQ(net_.AttachVpcToTgw(tgw, west_vpc).status().code(),
            StatusCode::kFailedPrecondition);
  auto east_vpc = *net_.CreateVpc(tw_.tenant, tw_.provider, tw_.east, "v2",
                                  P("10.8.0.0/16"));
  EXPECT_TRUE(net_.AttachVpcToTgw(tgw, east_vpc).ok());
  EXPECT_EQ(net_.FindTgw(tgw)->route_count(), 1u);
}

TEST_F(FabricTest, IntraVpcDeliveryWithSgAndAcl) {
  auto vpc = *net_.CreateVpc(tw_.tenant, tw_.provider, tw_.east, "v1",
                             P("10.0.0.0/16"));
  auto subnet = *net_.CreateSubnet(vpc, "s1", 20, 0, false);
  auto sg = *net_.CreateSecurityGroup(vpc, "sg");
  SgRule egress;
  egress.direction = TrafficDirection::kEgress;
  egress.peer = IpPrefix::Any(IpFamily::kIpv4);
  ASSERT_TRUE(net_.AddSgRule(sg, egress).ok());
  SgRule ingress;
  ingress.direction = TrafficDirection::kIngress;
  ingress.proto = Protocol::kTcp;
  ingress.ports = PortRange::Single(9000);
  ingress.peer = P("10.0.0.0/16");
  ASSERT_TRUE(net_.AddSgRule(sg, ingress).ok());

  // ACL: allow everything both ways.
  auto acl = *net_.CreateNetworkAcl(vpc, "acl");
  for (TrafficDirection dir :
       {TrafficDirection::kIngress, TrafficDirection::kEgress}) {
    AclEntry entry;
    entry.rule_number = 100;
    entry.allow = true;
    entry.direction = dir;
    entry.match = FlowMatch::Any();
    ASSERT_TRUE(net_.AddAclEntry(acl, entry).ok());
  }
  ASSERT_TRUE(net_.AssociateAcl(subnet, acl).ok());

  auto a = *tw_.world->LaunchInstance(tw_.tenant, tw_.provider, tw_.east, 0);
  auto b = *tw_.world->LaunchInstance(tw_.tenant, tw_.provider, tw_.east, 0);
  ASSERT_TRUE(net_.AttachInstance(a, subnet, {sg}, false).ok());
  ASSERT_TRUE(net_.AttachInstance(b, subnet, {sg}, false).ok());

  auto good = net_.Evaluate(a, b, 9000, Protocol::kTcp);
  ASSERT_TRUE(good.ok());
  EXPECT_TRUE(good->delivered) << good->drop_stage << ": "
                               << good->drop_reason;
  EXPECT_EQ(good->gateway_hops, 0);  // local traffic crosses no boxes

  // A port the SG does not admit dies at sg-ingress.
  auto bad_port = net_.Evaluate(a, b, 9001, Protocol::kTcp);
  ASSERT_TRUE(bad_port.ok());
  EXPECT_FALSE(bad_port->delivered);
  EXPECT_EQ(bad_port->drop_stage, "sg-ingress");
}

TEST_F(FabricTest, SgToSgReferencesResolveThroughTheFabric) {
  // A rule permitting "members of group X" rather than a prefix: the
  // fabric must resolve membership through NIC attachments.
  auto vpc = *net_.CreateVpc(tw_.tenant, tw_.provider, tw_.east, "v1",
                             P("10.0.0.0/16"));
  auto subnet = *net_.CreateSubnet(vpc, "s1", 20, 0, false);
  auto acl = *net_.CreateNetworkAcl(vpc, "acl");
  for (TrafficDirection dir :
       {TrafficDirection::kIngress, TrafficDirection::kEgress}) {
    AclEntry e;
    e.rule_number = 100;
    e.allow = true;
    e.direction = dir;
    e.match = FlowMatch::Any();
    ASSERT_TRUE(net_.AddAclEntry(acl, e).ok());
  }
  ASSERT_TRUE(net_.AssociateAcl(subnet, acl).ok());

  auto sg_clients = *net_.CreateSecurityGroup(vpc, "sg-clients");
  auto sg_servers = *net_.CreateSecurityGroup(vpc, "sg-servers");
  SgRule egress_all;
  egress_all.direction = TrafficDirection::kEgress;
  egress_all.peer = IpPrefix::Any(IpFamily::kIpv4);
  ASSERT_TRUE(net_.AddSgRule(sg_clients, egress_all).ok());
  ASSERT_TRUE(net_.AddSgRule(sg_servers, egress_all).ok());
  // Servers admit only holders of sg-clients.
  SgRule from_clients;
  from_clients.direction = TrafficDirection::kIngress;
  from_clients.proto = Protocol::kTcp;
  from_clients.ports = PortRange::Single(9000);
  from_clients.peer = sg_clients;
  ASSERT_TRUE(net_.AddSgRule(sg_servers, from_clients).ok());

  auto client = *tw_.world->LaunchInstance(tw_.tenant, tw_.provider,
                                           tw_.east, 0);
  auto server = *tw_.world->LaunchInstance(tw_.tenant, tw_.provider,
                                           tw_.east, 0);
  auto stranger = *tw_.world->LaunchInstance(tw_.tenant, tw_.provider,
                                             tw_.east, 0);
  ASSERT_TRUE(net_.AttachInstance(client, subnet, {sg_clients}, false).ok());
  ASSERT_TRUE(net_.AttachInstance(server, subnet, {sg_servers}, false).ok());
  ASSERT_TRUE(
      net_.AttachInstance(stranger, subnet, {sg_servers}, false).ok());

  auto from_member = net_.Evaluate(client, server, 9000, Protocol::kTcp);
  ASSERT_TRUE(from_member.ok());
  EXPECT_TRUE(from_member->delivered)
      << from_member->drop_stage << ": " << from_member->drop_reason;
  // The stranger holds sg-servers, not sg-clients: denied.
  auto from_stranger = net_.Evaluate(stranger, server, 9000, Protocol::kTcp);
  ASSERT_TRUE(from_stranger.ok());
  EXPECT_FALSE(from_stranger->delivered);
  EXPECT_EQ(from_stranger->drop_stage, "sg-ingress");
}

TEST_F(FabricTest, StatelessAclReturnTrap) {
  // Ingress-only ACL: forward direction passes, but the response is
  // blocked in the egress direction — delivery must fail at acl-return.
  auto vpc = *net_.CreateVpc(tw_.tenant, tw_.provider, tw_.east, "v1",
                             P("10.0.0.0/16"));
  auto subnet = *net_.CreateSubnet(vpc, "s1", 20, 0, false);
  auto sg = *net_.CreateSecurityGroup(vpc, "sg");
  SgRule all_egress;
  all_egress.direction = TrafficDirection::kEgress;
  all_egress.peer = IpPrefix::Any(IpFamily::kIpv4);
  ASSERT_TRUE(net_.AddSgRule(sg, all_egress).ok());
  SgRule all_ingress;
  all_ingress.direction = TrafficDirection::kIngress;
  all_ingress.peer = IpPrefix::Any(IpFamily::kIpv4);
  ASSERT_TRUE(net_.AddSgRule(sg, all_ingress).ok());

  auto acl = *net_.CreateNetworkAcl(vpc, "in-only");
  AclEntry in_ok;
  in_ok.rule_number = 100;
  in_ok.allow = true;
  in_ok.direction = TrafficDirection::kIngress;
  in_ok.match = FlowMatch::Any();
  ASSERT_TRUE(net_.AddAclEntry(acl, in_ok).ok());
  AclEntry out_ok_but_narrow;
  out_ok_but_narrow.rule_number = 100;
  out_ok_but_narrow.allow = true;
  out_ok_but_narrow.direction = TrafficDirection::kEgress;
  out_ok_but_narrow.match = FlowMatch::Any();
  out_ok_but_narrow.match.dst_ports = PortRange::Single(443);  // not ephemeral
  ASSERT_TRUE(net_.AddAclEntry(acl, out_ok_but_narrow).ok());
  ASSERT_TRUE(net_.AssociateAcl(subnet, acl).ok());

  auto a = *tw_.world->LaunchInstance(tw_.tenant, tw_.provider, tw_.east, 0);
  auto b = *tw_.world->LaunchInstance(tw_.tenant, tw_.provider, tw_.east, 0);
  ASSERT_TRUE(net_.AttachInstance(a, subnet, {sg}, false).ok());
  ASSERT_TRUE(net_.AttachInstance(b, subnet, {sg}, false).ok());

  auto result = net_.Evaluate(a, b, 443, Protocol::kTcp);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->delivered);
  EXPECT_EQ(result->drop_stage, "acl-return");
}

TEST_F(FabricTest, MissingRouteDropsAtRouteStage) {
  auto v1 = *net_.CreateVpc(tw_.tenant, tw_.provider, tw_.east, "v1",
                            P("10.0.0.0/16"));
  auto v2 = *net_.CreateVpc(tw_.tenant, tw_.provider, tw_.west, "v2",
                            P("10.1.0.0/16"));
  auto s1 = *net_.CreateSubnet(v1, "s1", 20, 0, false);
  auto s2 = *net_.CreateSubnet(v2, "s2", 20, 0, false);
  auto sg1 = *net_.CreateSecurityGroup(v1, "sg1");
  auto sg2 = *net_.CreateSecurityGroup(v2, "sg2");
  SgRule all;
  all.direction = TrafficDirection::kEgress;
  all.peer = IpPrefix::Any(IpFamily::kIpv4);
  ASSERT_TRUE(net_.AddSgRule(sg1, all).ok());
  // Permissive ACLs.
  for (auto [vpc, subnet] : {std::pair{v1, s1}, std::pair{v2, s2}}) {
    auto acl = *net_.CreateNetworkAcl(vpc, "acl");
    for (TrafficDirection dir :
         {TrafficDirection::kIngress, TrafficDirection::kEgress}) {
      AclEntry e;
      e.rule_number = 100;
      e.allow = true;
      e.direction = dir;
      e.match = FlowMatch::Any();
      ASSERT_TRUE(net_.AddAclEntry(acl, e).ok());
    }
    ASSERT_TRUE(net_.AssociateAcl(subnet, acl).ok());
  }
  auto a = *tw_.world->LaunchInstance(tw_.tenant, tw_.provider, tw_.east, 0);
  auto b = *tw_.world->LaunchInstance(tw_.tenant, tw_.provider, tw_.west, 0);
  ASSERT_TRUE(net_.AttachInstance(a, s1, {sg1}, false).ok());
  ASSERT_TRUE(net_.AttachInstance(b, s2, {sg2}, false).ok());

  // No peering, no TGW, no public IPs: the flow has nowhere to go.
  auto result = net_.Evaluate(a, b, 80, Protocol::kTcp);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->delivered);
  EXPECT_EQ(result->drop_stage, "route");
}

TEST_F(FabricTest, GatewayAndApplianceCounts) {
  auto vpc = *net_.CreateVpc(tw_.tenant, tw_.provider, tw_.east, "v1",
                             P("10.0.0.0/16"));
  auto pub = *net_.CreateSubnet(vpc, "pub", 24, 0, true);
  ASSERT_TRUE(net_.CreateInternetGateway(vpc, "igw").ok());
  ASSERT_TRUE(net_.CreateNatGateway(pub, "nat").ok());
  ASSERT_TRUE(net_.CreateVpnGateway(vpc, tw_.on_prem, 64700, "vpg").ok());
  ASSERT_TRUE(
      net_.CreateTransitGateway(tw_.provider, tw_.east, 64701, "tgw").ok());
  EXPECT_EQ(net_.gateway_count(), 4u);
  ASSERT_TRUE(net_.CreateFirewall("fw", 1e6).ok());
  auto tg = *net_.CreateTargetGroup("tg", Protocol::kTcp, 80);
  (void)tg;
  ASSERT_TRUE(
      net_.CreateLoadBalancer(LbType::kClassic, "clb", vpc, {pub}).ok());
  EXPECT_EQ(net_.appliance_count(), 2u);
}

// --- Verdict fast path -------------------------------------------------------

class FabricCacheTest : public FabricTest {
 protected:
  void SetUp() override {
    vpc_ = *net_.CreateVpc(tw_.tenant, tw_.provider, tw_.east, "v1",
                           P("10.0.0.0/16"));
    subnet_ = *net_.CreateSubnet(vpc_, "s1", 20, 0, false);
    sg_ = *net_.CreateSecurityGroup(vpc_, "sg");
    SgRule egress;
    egress.direction = TrafficDirection::kEgress;
    egress.peer = IpPrefix::Any(IpFamily::kIpv4);
    ASSERT_TRUE(net_.AddSgRule(sg_, egress).ok());
    SgRule ingress;
    ingress.direction = TrafficDirection::kIngress;
    ingress.proto = Protocol::kTcp;
    ingress.ports = PortRange::Single(9000);
    ingress.peer = P("10.0.0.0/16");
    ASSERT_TRUE(net_.AddSgRule(sg_, ingress).ok());
    auto acl = *net_.CreateNetworkAcl(vpc_, "acl");
    for (TrafficDirection dir :
         {TrafficDirection::kIngress, TrafficDirection::kEgress}) {
      AclEntry entry;
      entry.rule_number = 100;
      entry.allow = true;
      entry.direction = dir;
      entry.match = FlowMatch::Any();
      ASSERT_TRUE(net_.AddAclEntry(acl, entry).ok());
    }
    ASSERT_TRUE(net_.AssociateAcl(subnet_, acl).ok());
    a_ = *tw_.world->LaunchInstance(tw_.tenant, tw_.provider, tw_.east, 0);
    b_ = *tw_.world->LaunchInstance(tw_.tenant, tw_.provider, tw_.east, 0);
    ASSERT_TRUE(net_.AttachInstance(a_, subnet_, {sg_}, false).ok());
    ASSERT_TRUE(net_.AttachInstance(b_, subnet_, {sg_}, false).ok());
  }

  VpcId vpc_;
  SubnetId subnet_;
  SecurityGroupId sg_;
  InstanceId a_, b_;
};

TEST_F(FabricCacheTest, RepeatedEvaluationsHitTheCache) {
  auto first = net_.Evaluate(a_, b_, 9000, Protocol::kTcp);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->delivered);
  net_.ResetVerdictCacheStats();
  auto second = net_.Evaluate(a_, b_, 9000, Protocol::kTcp);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->delivered);
  EXPECT_EQ(second->logical_hops, first->logical_hops);
  EXPECT_EQ(net_.evaluate_cache_stats().hits, 1u);
}

TEST_F(FabricCacheTest, DeniedVerdictsAreCachedToo) {
  auto denied = net_.Evaluate(a_, b_, 9001, Protocol::kTcp);
  ASSERT_TRUE(denied.ok());
  EXPECT_FALSE(denied->delivered);
  net_.ResetVerdictCacheStats();
  auto again = net_.Evaluate(a_, b_, 9001, Protocol::kTcp);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->delivered);
  EXPECT_EQ(again->drop_stage, denied->drop_stage);
  EXPECT_EQ(net_.evaluate_cache_stats().hits, 1u);
}

TEST_F(FabricCacheTest, SgMutationInvalidatesCachedVerdict) {
  auto denied = net_.Evaluate(a_, b_, 9001, Protocol::kTcp);
  ASSERT_TRUE(denied.ok());
  ASSERT_FALSE(denied->delivered);  // cached as a denial
  SgRule open;
  open.direction = TrafficDirection::kIngress;
  open.proto = Protocol::kTcp;
  open.ports = PortRange::Single(9001);
  open.peer = P("10.0.0.0/16");
  ASSERT_TRUE(net_.AddSgRule(sg_, open).ok());
  auto now_allowed = net_.Evaluate(a_, b_, 9001, Protocol::kTcp);
  ASSERT_TRUE(now_allowed.ok());
  EXPECT_TRUE(now_allowed->delivered);  // stale denial must not survive
}

TEST_F(FabricCacheTest, InstanceStateChangeInvalidatesCachedVerdict) {
  auto ok = net_.Evaluate(a_, b_, 9000, Protocol::kTcp);
  ASSERT_TRUE(ok.ok());
  ASSERT_TRUE(ok->delivered);
  ASSERT_TRUE(tw_.world->SetInstanceRunning(b_, false).ok());
  // The stale delivered=true verdict must not survive the state change.
  auto down = net_.Evaluate(a_, b_, 9000, Protocol::kTcp);
  EXPECT_FALSE(down.ok());
  ASSERT_TRUE(tw_.world->SetInstanceRunning(b_, true).ok());
  auto back = net_.Evaluate(a_, b_, 9000, Protocol::kTcp);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->delivered);
}

TEST_F(FabricCacheTest, PayloadEvaluationsBypassTheCache) {
  net_.ResetVerdictCacheStats();
  auto r = net_.Evaluate(a_, b_, 9000, Protocol::kTcp, "GET /");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->delivered);
  // Payload-bearing traffic can hit DPI rules; it never consults the cache.
  EXPECT_EQ(net_.evaluate_cache_stats().lookups, 0u);
}

TEST_F(FabricCacheTest, NoOpPropagateRoutesKeepsCachedVerdicts) {
  auto first = net_.Evaluate(a_, b_, 9000, Protocol::kTcp);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->delivered);
  // Converging an already-converged mesh must not bump the BGP mutation
  // count, so verdicts cached before the call stay valid after it.
  net_.PropagateRoutes();
  net_.ResetVerdictCacheStats();
  auto second = net_.Evaluate(a_, b_, 9000, Protocol::kTcp);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->delivered);
  EXPECT_EQ(net_.evaluate_cache_stats().hits, 1u);
}

TEST_F(FabricCacheTest, CachedAndUncachedAgreeAcrossPorts) {
  for (uint16_t port : {9000, 9001, 80}) {
    auto cached = net_.Evaluate(a_, b_, port, Protocol::kTcp);
    auto uncached = net_.EvaluateUncached(a_, b_, port, Protocol::kTcp);
    ASSERT_EQ(cached.ok(), uncached.ok());
    ASSERT_TRUE(cached.ok());
    EXPECT_EQ(cached->delivered, uncached->delivered) << port;
    EXPECT_EQ(cached->drop_stage, uncached->drop_stage) << port;
  }
}

}  // namespace
}  // namespace tenantnet
