// Edge-case coverage for CloudWorld and BgpMesh accessors.

#include <gtest/gtest.h>

#include "src/cloud/presets.h"
#include "src/routing/bgp.h"

namespace tenantnet {
namespace {

TEST(WorldEdgesTest, DedicatedCircuitValidatesIds) {
  TestWorld tw = BuildTestWorld();
  CloudWorld& w = *tw.world;
  EXPECT_EQ(w.AddDedicatedCircuit(RegionId(99), tw.exchange, 1e9)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(w.AddDedicatedCircuit(tw.east, ExchangeId(99), 1e9)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(w.AddDedicatedCircuitFromOnPrem(OnPremId(99), tw.exchange, 1e9)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(w.AddDedicatedCircuitFromOnPrem(tw.on_prem, ExchangeId(99), 1e9)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(WorldEdgesTest, ResolvePathValidatesNodes) {
  TestWorld tw = BuildTestWorld();
  auto bad = tw.world->ResolvePath(NodeId(), NodeId(1),
                                   EgressPolicy::kHotPotato);
  EXPECT_FALSE(bad.ok());
}

TEST(WorldEdgesTest, OnPremLaunchValidates) {
  TestWorld tw = BuildTestWorld();
  EXPECT_FALSE(tw.world->LaunchOnPremInstance(tw.tenant, OnPremId(9)).ok());
  EXPECT_FALSE(tw.world->LaunchOnPremInstance(TenantId(9), tw.on_prem).ok());
}

TEST(BgpEdgesTest, AccessorsOnInvalidSpeakers) {
  BgpMesh mesh;
  EXPECT_EQ(mesh.BestRoute(SpeakerId(5), *IpPrefix::Parse("10.0.0.0/8")),
            nullptr);
  EXPECT_EQ(mesh.TableSize(SpeakerId(5)), 0u);
  EXPECT_EQ(mesh.TotalRibEntries(), 0u);
  // Converging an empty mesh is a no-op that reports convergence.
  auto stats = mesh.Converge();
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.update_messages, 0u);
}

TEST(WorldEdgesTest, InstanceEgressCapComesFromParams) {
  WorldParams params;
  params.default_vm_egress_bps = 123e6;
  TestWorld tw = BuildTestWorld(params);
  auto inst = *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.east, 0);
  EXPECT_DOUBLE_EQ(tw.world->FindInstance(inst)->vm_egress_cap_bps, 123e6);
}

}  // namespace
}  // namespace tenantnet
