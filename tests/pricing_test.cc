// Tests for the cost model.

#include <gtest/gtest.h>

#include "src/cloud/presets.h"
#include "src/vnet/builder.h"
#include "src/vnet/pricing.h"

namespace tenantnet {
namespace {

TEST(PricingTest, EmptyNetworkBillsOnlyTransfer) {
  TestWorld tw = BuildTestWorld();
  ConfigLedger ledger;
  BaselineNetwork net(*tw.world, ledger);
  PriceBook book;
  MonthlyTraffic traffic;
  traffic.inter_region_gb = 100;
  CostReport report = PriceBaseline(net, book, traffic);
  CostLine sum = report.Sum();
  EXPECT_DOUBLE_EQ(sum.box_hours_usd, 0);
  EXPECT_DOUBLE_EQ(sum.processing_usd, 100 * book.tgw_gb * 0);  // no boxes
  EXPECT_NEAR(sum.transfer_usd, 100 * book.inter_region_gb, 1e-9);
}

TEST(PricingTest, BoxesBillByTheHour) {
  TestWorld tw = BuildTestWorld();
  ConfigLedger ledger;
  BaselineNetwork net(*tw.world, ledger);
  auto vpc = *net.CreateVpc(tw.tenant, tw.provider, tw.east, "v",
                            *IpPrefix::Parse("10.0.0.0/16"));
  auto pub = *net.CreateSubnet(vpc, "pub", 24, 0, true);
  (void)*net.CreateNatGateway(pub, "nat");
  (void)*net.CreateVpnGateway(vpc, tw.on_prem, 64700, "vpg");

  PriceBook book;
  CostReport report = PriceBaseline(net, book, MonthlyTraffic{});
  EXPECT_NEAR(report.lines.at("nat-gateway").box_hours_usd,
              book.nat_gateway_hour * book.hours_per_month, 1e-9);
  EXPECT_NEAR(report.lines.at("vpn-gateways").box_hours_usd,
              book.vpn_connection_hour * book.hours_per_month, 1e-9);
}

TEST(PricingTest, ProcessingScalesWithTraffic) {
  TestWorld tw = BuildTestWorld();
  ConfigLedger ledger;
  BaselineNetwork net(*tw.world, ledger);
  auto vpc = *net.CreateVpc(tw.tenant, tw.provider, tw.east, "v",
                            *IpPrefix::Parse("10.0.0.0/16"));
  auto pub = *net.CreateSubnet(vpc, "pub", 24, 0, true);
  (void)*net.CreateNatGateway(pub, "nat");
  PriceBook book;
  MonthlyTraffic light;
  light.nat_egress_gb = 10;
  MonthlyTraffic heavy;
  heavy.nat_egress_gb = 1000;
  double light_proc =
      PriceBaseline(net, book, light).lines.at("nat-gateway").processing_usd;
  double heavy_proc =
      PriceBaseline(net, book, heavy).lines.at("nat-gateway").processing_usd;
  EXPECT_NEAR(heavy_proc, 100 * light_proc, 1e-9);
}

TEST(PricingTest, DeclarativePaysSameTransferNoBoxes) {
  PriceBook book;
  MonthlyTraffic traffic;
  traffic.inter_region_gb = 500;
  traffic.internet_egress_gb = 100;
  traffic.cross_cloud_gb = 200;
  CostReport decl = PriceDeclarative(book, traffic, /*reserved_gbps=*/0);
  CostLine sum = decl.Sum();
  EXPECT_DOUBLE_EQ(sum.box_hours_usd, 0);
  EXPECT_DOUBLE_EQ(sum.processing_usd, 0);
  EXPECT_NEAR(sum.transfer_usd,
              500 * book.inter_region_gb + 100 * book.internet_egress_gb +
                  200 * book.cross_cloud_gb,
              1e-9);
}

TEST(PricingTest, Fig1BaselinePremiumIsLarge) {
  Fig1World fig = BuildFig1World();
  ConfigLedger ledger;
  BaselineNetwork net(*fig.world, ledger);
  auto handles = BuildFig1Baseline(net, fig);
  ASSERT_TRUE(handles.ok());
  PriceBook book;
  MonthlyTraffic traffic;
  traffic.cross_cloud_gb = 20000;
  traffic.internet_egress_gb = 5000;
  traffic.nat_egress_gb = 1000;
  traffic.inter_region_gb = 8000;
  CostLine base = PriceBaseline(net, book, traffic).Sum();
  CostLine decl = PriceDeclarative(book, traffic, 20).Sum();
  // The boxes at least double the bill relative to pure transfer.
  EXPECT_GT(base.total(), decl.total() * 1.5);
  EXPECT_GT(base.box_hours_usd, 0);
}

}  // namespace
}  // namespace tenantnet
