// Tests for the Table 2 API (DeclarativeCloud).

#include <gtest/gtest.h>

#include <set>

#include "src/cloud/presets.h"
#include "src/core/api.h"

namespace tenantnet {
namespace {

PermitEntry Permit(const IpAddress& source) {
  PermitEntry e;
  e.source = IpPrefix::Host(source);
  return e;
}
PermitEntry Permit(const char* prefix) {
  PermitEntry e;
  e.source = *IpPrefix::Parse(prefix);
  return e;
}

class DeclarativeTest : public ::testing::Test {
 protected:
  DeclarativeTest() : tw_(BuildTestWorld()), cloud_(*tw_.world, ledger_) {}

  InstanceId Launch(RegionId region, int zone = 0) {
    return *tw_.world->LaunchInstance(tw_.tenant, tw_.provider, region, zone);
  }

  TestWorld tw_;
  ConfigLedger ledger_;
  DeclarativeCloud cloud_;
};

TEST_F(DeclarativeTest, RequestEipAllocatesFromProviderPool) {
  InstanceId vm = Launch(tw_.east);
  auto eip = cloud_.RequestEip(vm);
  ASSERT_TRUE(eip.ok());
  EXPECT_TRUE(
      tw_.world->provider(tw_.provider).address_space.Contains(*eip));
  EXPECT_EQ(cloud_.EipOf(vm), *eip);
  const EipRecord* record = cloud_.FindEip(*eip);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->instance, vm);
  EXPECT_EQ(record->region, tw_.east);
  // One EIP per instance.
  EXPECT_EQ(cloud_.RequestEip(vm).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(ledger_.api_calls(), 1u);
}

TEST_F(DeclarativeTest, ReleaseEipCleansEverything) {
  InstanceId vm = Launch(tw_.east);
  IpAddress eip = *cloud_.RequestEip(vm);
  IpAddress sip = *cloud_.RequestSip(tw_.tenant, tw_.provider);
  ASSERT_TRUE(cloud_.Bind(eip, sip).ok());
  ASSERT_TRUE(cloud_.SetPermitList(eip, {Permit("10.0.0.0/8")}).ok());
  ASSERT_TRUE(cloud_.ReleaseEip(eip).ok());
  EXPECT_EQ(cloud_.FindEip(eip), nullptr);
  EXPECT_FALSE(cloud_.EipOf(vm).has_value());
  EXPECT_TRUE(cloud_.sip_lb().Bindings(sip)->empty());
  EXPECT_EQ(cloud_.ReleaseEip(eip).code(), StatusCode::kNotFound);
  // The address can be re-issued.
  InstanceId vm2 = Launch(tw_.east);
  EXPECT_EQ(*cloud_.RequestEip(vm2), eip);
}

TEST_F(DeclarativeTest, EipsAreFlatNonAggregatableForTheTenant) {
  // Two instances in the same zone get adjacent pool addresses; two in
  // different regions still come from the same provider pool — the tenant
  // can assume nothing about structure.
  InstanceId a = Launch(tw_.east);
  InstanceId b = Launch(tw_.west);
  IpAddress ea = *cloud_.RequestEip(a);
  IpAddress eb = *cloud_.RequestEip(b);
  EXPECT_NE(ea, eb);
  auto half = tw_.world->provider(tw_.provider).address_space.Split();
  EXPECT_TRUE(half->first.Contains(ea));
  EXPECT_TRUE(half->first.Contains(eb));
}

TEST_F(DeclarativeTest, DefaultOffBlocksEvenIntraTenant) {
  InstanceId a = Launch(tw_.east);
  InstanceId b = Launch(tw_.east, 1);
  IpAddress ea = *cloud_.RequestEip(a);
  IpAddress eb = *cloud_.RequestEip(b);
  (void)ea;
  auto result = cloud_.Evaluate(a, eb, 443, Protocol::kTcp);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->delivered);
  EXPECT_EQ(result->drop_stage, "edge-filter");
}

TEST_F(DeclarativeTest, PermitListOpensExactlyTheListedSources) {
  InstanceId a = Launch(tw_.east);
  InstanceId b = Launch(tw_.east, 1);
  InstanceId c = Launch(tw_.west);
  IpAddress ea = *cloud_.RequestEip(a);
  IpAddress eb = *cloud_.RequestEip(b);
  IpAddress ec = *cloud_.RequestEip(c);
  ASSERT_TRUE(cloud_.SetPermitList(eb, {Permit(ea)}).ok());

  auto from_a = cloud_.Evaluate(a, eb, 443, Protocol::kTcp);
  EXPECT_TRUE(from_a->delivered)
      << from_a->drop_stage << ": " << from_a->drop_reason;
  auto from_c = cloud_.Evaluate(c, eb, 443, Protocol::kTcp);
  EXPECT_FALSE(from_c->delivered);
  (void)ec;
}

TEST_F(DeclarativeTest, IntraProviderTrafficRidesBackbone) {
  InstanceId a = Launch(tw_.east);
  InstanceId b = Launch(tw_.west);
  IpAddress ea = *cloud_.RequestEip(a);
  IpAddress eb = *cloud_.RequestEip(b);
  ASSERT_TRUE(cloud_.SetPermitList(eb, {Permit(ea)}).ok());
  auto result = cloud_.Evaluate(a, eb, 443, Protocol::kTcp);
  ASSERT_TRUE(result->delivered);
  EXPECT_EQ(result->egress_policy, EgressPolicy::kColdPotato);
}

TEST_F(DeclarativeTest, SipBindAndResolve) {
  InstanceId a = Launch(tw_.east);
  InstanceId b = Launch(tw_.east, 1);
  InstanceId client = Launch(tw_.west);
  IpAddress ea = *cloud_.RequestEip(a);
  IpAddress eb = *cloud_.RequestEip(b);
  IpAddress ecl = *cloud_.RequestEip(client);
  IpAddress sip = *cloud_.RequestSip(tw_.tenant, tw_.provider);
  ASSERT_TRUE(cloud_.Bind(ea, sip, 1.0).ok());
  ASSERT_TRUE(cloud_.Bind(eb, sip, 1.0).ok());
  ASSERT_TRUE(cloud_.SetPermitList(ea, {Permit(ecl)}).ok());
  ASSERT_TRUE(cloud_.SetPermitList(eb, {Permit(ecl)}).ok());

  std::set<std::string> backends;
  for (int i = 0; i < 20; ++i) {
    auto result = cloud_.Evaluate(client, sip, 443, Protocol::kTcp);
    ASSERT_TRUE(result->delivered)
        << result->drop_stage << ": " << result->drop_reason;
    backends.insert(result->effective_dst.ToString());
  }
  EXPECT_EQ(backends.size(), 2u);
}

TEST_F(DeclarativeTest, SipFailoverOnInstanceDown) {
  InstanceId a = Launch(tw_.east);
  InstanceId b = Launch(tw_.east, 1);
  InstanceId client = Launch(tw_.west);
  IpAddress ea = *cloud_.RequestEip(a);
  IpAddress eb = *cloud_.RequestEip(b);
  IpAddress ecl = *cloud_.RequestEip(client);
  IpAddress sip = *cloud_.RequestSip(tw_.tenant, tw_.provider);
  ASSERT_TRUE(cloud_.Bind(ea, sip).ok());
  ASSERT_TRUE(cloud_.Bind(eb, sip).ok());
  ASSERT_TRUE(cloud_.SetPermitList(ea, {Permit(ecl)}).ok());
  ASSERT_TRUE(cloud_.SetPermitList(eb, {Permit(ecl)}).ok());

  cloud_.NotifyInstanceDown(a);
  for (int i = 0; i < 20; ++i) {
    auto result = cloud_.Evaluate(client, sip, 443, Protocol::kTcp);
    ASSERT_TRUE(result->delivered);
    EXPECT_EQ(result->effective_dst, eb);
  }
  cloud_.NotifyInstanceUp(a);
  std::set<std::string> backends;
  for (int i = 0; i < 20; ++i) {
    backends.insert(
        cloud_.Evaluate(client, sip, 443, Protocol::kTcp)->effective_dst
            .ToString());
  }
  EXPECT_EQ(backends.size(), 2u);
}

TEST_F(DeclarativeTest, BindAcrossTenantsDenied) {
  InstanceId a = Launch(tw_.east);
  IpAddress ea = *cloud_.RequestEip(a);
  TenantId other = tw_.world->AddTenant("other");
  IpAddress sip = *cloud_.RequestSip(other, tw_.provider);
  EXPECT_EQ(cloud_.Bind(ea, sip).code(), StatusCode::kPermissionDenied);
}

TEST_F(DeclarativeTest, ExternalTrafficDefaultOff) {
  InstanceId a = Launch(tw_.east);
  IpAddress ea = *cloud_.RequestEip(a);
  IpAddress attacker = IpAddress::V4(203, 0, 113, 7);
  auto blocked = cloud_.EvaluateExternal(attacker, ea, 443, Protocol::kTcp);
  EXPECT_FALSE(blocked.delivered);
  EXPECT_EQ(blocked.drop_stage, "edge-filter");
  // Permitting the external prefix opens it.
  ASSERT_TRUE(cloud_.SetPermitList(ea, {Permit("203.0.113.0/24")}).ok());
  auto open = cloud_.EvaluateExternal(attacker, ea, 443, Protocol::kTcp);
  EXPECT_TRUE(open.delivered);
}

TEST_F(DeclarativeTest, OnPremEndpointsParticipateUniformly) {
  InstanceId cloud_vm = Launch(tw_.east);
  InstanceId onprem_vm =
      *tw_.world->LaunchOnPremInstance(tw_.tenant, tw_.on_prem);
  IpAddress cloud_eip = *cloud_.RequestEip(cloud_vm);
  auto onprem_eip = cloud_.RequestEip(onprem_vm);
  ASSERT_TRUE(onprem_eip.ok());
  // Cloud -> on-prem requires the on-prem endpoint to permit the source.
  auto blocked = cloud_.Evaluate(cloud_vm, *onprem_eip, 9093, Protocol::kTcp);
  EXPECT_FALSE(blocked->delivered);
  ASSERT_TRUE(cloud_.SetPermitList(*onprem_eip, {Permit(cloud_eip)}).ok());
  auto open = cloud_.Evaluate(cloud_vm, *onprem_eip, 9093, Protocol::kTcp);
  EXPECT_TRUE(open->delivered)
      << open->drop_stage << ": " << open->drop_reason;
  // And the reverse direction, symmetrically.
  ASSERT_TRUE(cloud_.SetPermitList(cloud_eip, {Permit(*onprem_eip)}).ok());
  auto reverse = cloud_.Evaluate(onprem_vm, cloud_eip, 7077, Protocol::kTcp);
  EXPECT_TRUE(reverse->delivered);
}

TEST_F(DeclarativeTest, ExternalTrafficToSipResolvesThenFilters) {
  InstanceId backend = Launch(tw_.east);
  IpAddress eip = *cloud_.RequestEip(backend);
  IpAddress sip = *cloud_.RequestSip(tw_.tenant, tw_.provider);
  ASSERT_TRUE(cloud_.Bind(eip, sip).ok());
  IpAddress client = IpAddress::V4(198, 18, 4, 4);

  // Default-off: the SIP resolves to a backend whose permit list still
  // gates the flow.
  auto blocked = cloud_.EvaluateExternal(client, sip, 443, Protocol::kTcp);
  EXPECT_FALSE(blocked.delivered);
  EXPECT_EQ(blocked.drop_stage, "edge-filter");

  ASSERT_TRUE(cloud_.SetPermitList(eip, {Permit("198.18.0.0/16")}).ok());
  auto open = cloud_.EvaluateExternal(client, sip, 443, Protocol::kTcp);
  EXPECT_TRUE(open.delivered);
  EXPECT_EQ(open.effective_dst, eip);  // resolved through the SIP
}

TEST_F(DeclarativeTest, ReleaseSipStopsResolution) {
  InstanceId backend = Launch(tw_.east);
  IpAddress eip = *cloud_.RequestEip(backend);
  IpAddress sip = *cloud_.RequestSip(tw_.tenant, tw_.provider);
  ASSERT_TRUE(cloud_.Bind(eip, sip).ok());
  ASSERT_TRUE(cloud_.ReleaseSip(sip).ok());
  EXPECT_FALSE(cloud_.IsSip(sip));
  EXPECT_EQ(cloud_.ReleaseSip(sip).code(), StatusCode::kNotFound);
  // The address returns to the pool and is reissued.
  EXPECT_EQ(*cloud_.RequestSip(tw_.tenant, tw_.provider), sip);
}

TEST_F(DeclarativeTest, SetQosConfiguresQuota) {
  ASSERT_TRUE(cloud_.SetQos(tw_.tenant, tw_.east, 10e9).ok());
  EXPECT_DOUBLE_EQ(*cloud_.qos().Quota(tw_.tenant, tw_.east), 10e9);
  // Two zones in the region -> two enforcement points.
  EXPECT_EQ(cloud_.qos().PointCount(tw_.east), 2u);
}

TEST_F(DeclarativeTest, EgressProfile) {
  EXPECT_EQ(cloud_.EgressProfileOf(tw_.tenant), EgressPolicy::kHotPotato);
  ASSERT_TRUE(
      cloud_.SetEgressProfile(tw_.tenant, EgressPolicy::kColdPotato).ok());
  EXPECT_EQ(cloud_.EgressProfileOf(tw_.tenant), EgressPolicy::kColdPotato);
  EXPECT_EQ(
      cloud_.SetEgressProfile(tw_.tenant, EgressPolicy::kDedicated).code(),
      StatusCode::kInvalidArgument);
}

TEST_F(DeclarativeTest, ProviderCanAggregateFlatEips) {
  // 64 sequential EIPs in one region: the provider's table holds 64 host
  // routes but can aggregate to a handful of prefixes.
  for (int i = 0; i < 64; ++i) {
    InstanceId vm = Launch(tw_.east, i % 2);
    ASSERT_TRUE(cloud_.RequestEip(vm).ok());
  }
  EXPECT_EQ(cloud_.ProviderRibEntries(tw_.provider), 64u);
  EXPECT_LE(cloud_.ProviderAggregatedRibEntries(tw_.provider), 2u);
}

TEST_F(DeclarativeTest, EvaluateRequiresSourceEip) {
  InstanceId a = Launch(tw_.east);
  InstanceId b = Launch(tw_.east, 1);
  IpAddress eb = *cloud_.RequestEip(b);
  auto result = cloud_.Evaluate(a, eb, 443, Protocol::kTcp);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(DeclarativeTest, LedgerCountsApiCallsNotComponents) {
  InstanceId a = Launch(tw_.east);
  InstanceId b = Launch(tw_.east, 1);
  IpAddress ea = *cloud_.RequestEip(a);
  IpAddress eb = *cloud_.RequestEip(b);
  IpAddress sip = *cloud_.RequestSip(tw_.tenant, tw_.provider);
  ASSERT_TRUE(cloud_.Bind(ea, sip).ok());
  ASSERT_TRUE(cloud_.Bind(eb, sip).ok());
  ASSERT_TRUE(cloud_.SetPermitList(eb, {Permit(ea)}).ok());
  ASSERT_TRUE(cloud_.SetQos(tw_.tenant, tw_.east, 1e9).ok());
  EXPECT_EQ(ledger_.api_calls(), 7u);
  EXPECT_EQ(ledger_.components(), 0u);       // no boxes, ever
  EXPECT_EQ(ledger_.cross_references(), 0u);  // nothing to keep consistent
}

}  // namespace
}  // namespace tenantnet
