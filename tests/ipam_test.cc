// Tests for the buddy PrefixAllocator and flat HostAllocator.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/common/rng.h"
#include "src/net/ipam.h"

namespace tenantnet {
namespace {

TEST(PrefixAllocatorTest, AllocatesDisjointBlocks) {
  PrefixAllocator alloc(*IpPrefix::Parse("10.0.0.0/16"));
  auto a = alloc.Allocate(20);
  auto b = alloc.Allocate(20);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a->Overlaps(*b));
  EXPECT_TRUE(alloc.root().Contains(*a));
  EXPECT_TRUE(alloc.root().Contains(*b));
}

TEST(PrefixAllocatorTest, ExhaustionIsDetected) {
  PrefixAllocator alloc(*IpPrefix::Parse("10.0.0.0/24"));
  // /26 blocks: exactly 4 fit.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(alloc.Allocate(26).ok());
  }
  auto fifth = alloc.Allocate(26);
  EXPECT_FALSE(fifth.ok());
  EXPECT_EQ(fifth.status().code(), StatusCode::kResourceExhausted);
}

TEST(PrefixAllocatorTest, ReleaseCoalescesBuddies) {
  PrefixAllocator alloc(*IpPrefix::Parse("10.0.0.0/24"));
  std::vector<IpPrefix> blocks;
  for (int i = 0; i < 4; ++i) {
    blocks.push_back(*alloc.Allocate(26));
  }
  for (const auto& block : blocks) {
    ASSERT_TRUE(alloc.Release(block).ok());
  }
  // After full release + coalescing, the whole /24 is available again.
  auto whole = alloc.Allocate(24);
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(whole->ToString(), "10.0.0.0/24");
}

TEST(PrefixAllocatorTest, AllocateExactAndConflicts) {
  PrefixAllocator alloc(*IpPrefix::Parse("10.0.0.0/16"));
  IpPrefix want = *IpPrefix::Parse("10.0.16.0/20");
  ASSERT_TRUE(alloc.AllocateExact(want).ok());
  EXPECT_TRUE(alloc.IsAllocated(want));
  // The same block again fails.
  EXPECT_EQ(alloc.AllocateExact(want).code(), StatusCode::kAlreadyExists);
  // A block inside it fails too.
  EXPECT_FALSE(alloc.AllocateExact(*IpPrefix::Parse("10.0.17.0/24")).ok());
  // Outside the root fails.
  EXPECT_EQ(alloc.AllocateExact(*IpPrefix::Parse("11.0.0.0/20")).code(),
            StatusCode::kInvalidArgument);
}

TEST(PrefixAllocatorTest, ReleaseUnknownFails) {
  PrefixAllocator alloc(*IpPrefix::Parse("10.0.0.0/16"));
  EXPECT_EQ(alloc.Release(*IpPrefix::Parse("10.0.0.0/20")).code(),
            StatusCode::kNotFound);
}

TEST(PrefixAllocatorTest, MixedSizesRemainDisjoint) {
  PrefixAllocator alloc(*IpPrefix::Parse("10.0.0.0/16"));
  std::vector<IpPrefix> blocks;
  for (int len : {20, 24, 18, 22, 20, 26, 19}) {
    auto block = alloc.Allocate(len);
    ASSERT_TRUE(block.ok()) << "len=" << len;
    blocks.push_back(*block);
  }
  for (size_t i = 0; i < blocks.size(); ++i) {
    for (size_t j = i + 1; j < blocks.size(); ++j) {
      EXPECT_FALSE(blocks[i].Overlaps(blocks[j]))
          << blocks[i].ToString() << " vs " << blocks[j].ToString();
    }
  }
}

// Property: random allocate/release churn never hands out overlapping
// blocks, and accounting stays consistent.
class PrefixChurnTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrefixChurnTest, NoOverlapUnderChurn) {
  Rng rng(GetParam());
  PrefixAllocator alloc(*IpPrefix::Parse("10.0.0.0/12"));
  std::vector<IpPrefix> live;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.NextBool(0.6)) {
      int len = static_cast<int>(16 + rng.NextU64(13));  // /16../28
      auto block = alloc.Allocate(len);
      if (!block.ok()) {
        continue;  // exhausted at this size; fine
      }
      for (const auto& other : live) {
        ASSERT_FALSE(block->Overlaps(other))
            << block->ToString() << " overlaps " << other.ToString();
      }
      live.push_back(*block);
    } else {
      size_t victim = rng.NextU64(live.size());
      ASSERT_TRUE(alloc.Release(live[victim]).ok());
      live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
    }
    ASSERT_EQ(alloc.allocated_block_count(), live.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixChurnTest,
                         ::testing::Values(1, 2, 3, 42, 1337));

TEST(HostAllocatorTest, SequentialAllocationFromPool) {
  HostAllocator alloc(*IpPrefix::Parse("192.168.1.0/30"));
  EXPECT_EQ(alloc.capacity(), 4u);
  EXPECT_EQ(alloc.Allocate()->ToString(), "192.168.1.0");
  EXPECT_EQ(alloc.Allocate()->ToString(), "192.168.1.1");
  EXPECT_EQ(alloc.Allocate()->ToString(), "192.168.1.2");
  EXPECT_EQ(alloc.Allocate()->ToString(), "192.168.1.3");
  auto fifth = alloc.Allocate();
  EXPECT_EQ(fifth.status().code(), StatusCode::kResourceExhausted);
}

TEST(HostAllocatorTest, ReleaseRecyclesLifo) {
  HostAllocator alloc(*IpPrefix::Parse("192.168.1.0/29"));
  IpAddress a = *alloc.Allocate();
  IpAddress b = *alloc.Allocate();
  ASSERT_TRUE(alloc.Release(a).ok());
  EXPECT_FALSE(alloc.IsAllocated(a));
  EXPECT_TRUE(alloc.IsAllocated(b));
  EXPECT_EQ(*alloc.Allocate(), a);  // recycled
}

TEST(HostAllocatorTest, DoubleReleaseFails) {
  HostAllocator alloc(*IpPrefix::Parse("192.168.1.0/29"));
  IpAddress a = *alloc.Allocate();
  ASSERT_TRUE(alloc.Release(a).ok());
  EXPECT_EQ(alloc.Release(a).code(), StatusCode::kNotFound);
}

TEST(HostAllocatorTest, LowestFirstKeepsRangeDense) {
  HostAllocator alloc(*IpPrefix::Parse("10.0.0.0/24"),
                      HostAllocator::ReusePolicy::kLowestFirst);
  std::vector<IpAddress> addrs;
  for (int i = 0; i < 8; ++i) {
    addrs.push_back(*alloc.Allocate());
  }
  // Free a scattered subset...
  ASSERT_TRUE(alloc.Release(addrs[1]).ok());
  ASSERT_TRUE(alloc.Release(addrs[5]).ok());
  ASSERT_TRUE(alloc.Release(addrs[3]).ok());
  // ...and get them back lowest-first, not LIFO.
  EXPECT_EQ(alloc.Allocate()->ToString(), "10.0.0.1");
  EXPECT_EQ(alloc.Allocate()->ToString(), "10.0.0.3");
  EXPECT_EQ(alloc.Allocate()->ToString(), "10.0.0.5");
  // Only then does the high-water mark advance.
  EXPECT_EQ(alloc.Allocate()->ToString(), "10.0.0.8");
}

TEST(HostAllocatorTest, LifoReusesMostRecent) {
  HostAllocator alloc(*IpPrefix::Parse("10.0.0.0/24"),
                      HostAllocator::ReusePolicy::kLifo);
  IpAddress a = *alloc.Allocate();
  IpAddress b = *alloc.Allocate();
  ASSERT_TRUE(alloc.Release(a).ok());
  ASSERT_TRUE(alloc.Release(b).ok());
  EXPECT_EQ(*alloc.Allocate(), b);  // most recently freed first
  EXPECT_EQ(*alloc.Allocate(), a);
}

TEST(PrefixAllocatorTest, AllocatedAddressCountSums) {
  PrefixAllocator alloc(*IpPrefix::Parse("10.0.0.0/16"));
  (void)*alloc.Allocate(24);  // 256
  (void)*alloc.Allocate(26);  // 64
  EXPECT_EQ(alloc.AllocatedAddressCount(), 320u);
}

TEST(HostAllocatorTest, NeverDoubleAllocatesUnderChurn) {
  Rng rng(77);
  HostAllocator alloc(*IpPrefix::Parse("10.0.0.0/22"));
  std::set<IpAddress> live;
  for (int step = 0; step < 5000; ++step) {
    if (live.empty() || rng.NextBool(0.55)) {
      auto ip = alloc.Allocate();
      if (!ip.ok()) {
        continue;
      }
      auto [it, inserted] = live.insert(*ip);
      ASSERT_TRUE(inserted) << "double allocation of " << ip->ToString();
    } else {
      auto it = live.begin();
      std::advance(it, rng.NextU64(live.size()));
      ASSERT_TRUE(alloc.Release(*it).ok());
      live.erase(it);
    }
    ASSERT_EQ(alloc.allocated_count(), live.size());
  }
}

}  // namespace
}  // namespace tenantnet
