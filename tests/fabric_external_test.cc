// Baseline edge cases around external traffic, NAT, peering acceptance,
// firewall capacity, and LB families not covered by the Fig. 1 suite.

#include <gtest/gtest.h>

#include "src/cloud/presets.h"
#include "src/vnet/fabric.h"

namespace tenantnet {
namespace {

IpPrefix P(const char* s) { return *IpPrefix::Parse(s); }

class FabricExternalTest : public ::testing::Test {
 protected:
  FabricExternalTest() : tw_(BuildTestWorld()), net_(*tw_.world, ledger_) {}

  TestWorld tw_;
  ConfigLedger ledger_;
  BaselineNetwork net_;
};

TEST_F(FabricExternalTest, InboundToNatPublicIpIsDropped) {
  auto vpc = *net_.CreateVpc(tw_.tenant, tw_.provider, tw_.east, "v",
                             P("10.0.0.0/16"));
  auto pub = *net_.CreateSubnet(vpc, "pub", 24, 0, true);
  auto nat = *net_.CreateNatGateway(pub, "nat");
  // Find the NAT's public address by probing the fabric's state: it is not
  // an ENI, so internet delivery toward it must fail.
  // (The NAT allocated the first address of the provider pool.)
  IpAddress nat_ip = tw_.world->provider(tw_.provider).address_space.base();
  (void)nat;
  auto result = net_.EvaluateExternal(IpAddress::V4(198, 18, 0, 1), nat_ip,
                                      443, Protocol::kTcp);
  EXPECT_FALSE(result.delivered);
  EXPECT_EQ(result.drop_stage, "internet");
}

TEST_F(FabricExternalTest, UnknownDestinationDropsCleanly) {
  auto result = net_.EvaluateExternal(IpAddress::V4(198, 18, 0, 1),
                                      IpAddress::V4(5, 0, 0, 77), 443,
                                      Protocol::kTcp);
  EXPECT_FALSE(result.delivered);
  EXPECT_EQ(result.drop_stage, "internet");
}

TEST_F(FabricExternalTest, OnPremAddressesUnreachableFromInternet) {
  auto inst = *tw_.world->LaunchOnPremInstance(tw_.tenant, tw_.on_prem);
  auto addr = *net_.AttachOnPremInstance(inst);
  auto result = net_.EvaluateExternal(IpAddress::V4(198, 18, 0, 1), addr,
                                      443, Protocol::kTcp);
  EXPECT_FALSE(result.delivered);
}

TEST_F(FabricExternalTest, UnacceptedPeeringDropsTraffic) {
  auto v1 = *net_.CreateVpc(tw_.tenant, tw_.provider, tw_.east, "v1",
                            P("10.0.0.0/16"));
  auto v2 = *net_.CreateVpc(tw_.tenant, tw_.provider, tw_.east, "v2",
                            P("10.1.0.0/16"));
  auto s1 = *net_.CreateSubnet(v1, "s1", 20, 0, false);
  auto s2 = *net_.CreateSubnet(v2, "s2", 20, 0, false);
  auto peering = *net_.CreatePeering(v1, v2, "pending");

  // Full route/SG/ACL setup... except AcceptPeering.
  for (auto [vpc, subnet, peer_cidr] :
       {std::tuple{v1, s1, "10.1.0.0/16"}, std::tuple{v2, s2, "10.0.0.0/16"}}) {
    auto rt = *net_.CreateRouteTable(vpc, "rt");
    ASSERT_TRUE(net_.AssociateRouteTable(subnet, rt).ok());
    ASSERT_TRUE(net_.AddRoute(rt, P(peer_cidr),
                              VpcRouteTarget{VpcRouteTargetKind::kPeering,
                                             peering.value()})
                    .ok());
    auto sg = *net_.CreateSecurityGroup(vpc, "sg");
    SgRule all_in;
    all_in.direction = TrafficDirection::kIngress;
    all_in.peer = IpPrefix::Any(IpFamily::kIpv4);
    ASSERT_TRUE(net_.AddSgRule(sg, all_in).ok());
    SgRule all_out = all_in;
    all_out.direction = TrafficDirection::kEgress;
    ASSERT_TRUE(net_.AddSgRule(sg, all_out).ok());
    auto acl = *net_.CreateNetworkAcl(vpc, "acl");
    for (TrafficDirection dir :
         {TrafficDirection::kIngress, TrafficDirection::kEgress}) {
      AclEntry e;
      e.rule_number = 100;
      e.allow = true;
      e.direction = dir;
      e.match = FlowMatch::Any();
      ASSERT_TRUE(net_.AddAclEntry(acl, e).ok());
    }
    ASSERT_TRUE(net_.AssociateAcl(subnet, acl).ok());
    auto inst = *tw_.world->LaunchInstance(tw_.tenant, tw_.provider,
                                           tw_.east, 0);
    ASSERT_TRUE(net_.AttachInstance(inst, subnet, {sg}, false).ok());
  }

  auto instances = tw_.world->TenantInstances(tw_.tenant);
  auto result = net_.Evaluate(instances[0], instances[1], 80, Protocol::kTcp);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->delivered);
  EXPECT_EQ(result->drop_stage, "peering");
  // One accept call later, the same flow works — the forgotten-handshake
  // failure mode, reproduced.
  ASSERT_TRUE(net_.AcceptPeering(peering).ok());
  result = net_.Evaluate(instances[0], instances[1], 80, Protocol::kTcp);
  EXPECT_TRUE(result->delivered)
      << result->drop_stage << ": " << result->drop_reason;
}

TEST_F(FabricExternalTest, TgwWithoutRouteDropsAtTgwStage) {
  auto v1 = *net_.CreateVpc(tw_.tenant, tw_.provider, tw_.east, "v1",
                            P("10.0.0.0/16"));
  auto s1 = *net_.CreateSubnet(v1, "s1", 20, 0, false);
  auto tgw = *net_.CreateTransitGateway(tw_.provider, tw_.east, 64601, "tgw");
  ASSERT_TRUE(net_.AttachVpcToTgw(tgw, v1).ok());
  auto rt = *net_.CreateRouteTable(v1, "rt");
  ASSERT_TRUE(net_.AssociateRouteTable(s1, rt).ok());
  ASSERT_TRUE(net_.AddRoute(rt, P("10.0.0.0/8"),
                            VpcRouteTarget{
                                VpcRouteTargetKind::kTransitGateway,
                                tgw.value()})
                  .ok());
  auto sg = *net_.CreateSecurityGroup(v1, "sg");
  SgRule all_out;
  all_out.direction = TrafficDirection::kEgress;
  all_out.peer = IpPrefix::Any(IpFamily::kIpv4);
  ASSERT_TRUE(net_.AddSgRule(sg, all_out).ok());
  auto acl = *net_.CreateNetworkAcl(v1, "acl");
  AclEntry out_ok;
  out_ok.rule_number = 100;
  out_ok.allow = true;
  out_ok.direction = TrafficDirection::kEgress;
  out_ok.match = FlowMatch::Any();
  ASSERT_TRUE(net_.AddAclEntry(acl, out_ok).ok());
  ASSERT_TRUE(net_.AssociateAcl(s1, acl).ok());
  auto a = *tw_.world->LaunchInstance(tw_.tenant, tw_.provider, tw_.east, 0);
  ASSERT_TRUE(net_.AttachInstance(a, s1, {sg}, false).ok());

  // Destination is a second VPC that exists but is NOT attached to the TGW
  // — traffic enters the TGW and dies there.
  auto v2 = *net_.CreateVpc(tw_.tenant, tw_.provider, tw_.east, "v2",
                            P("10.7.0.0/16"));
  auto s2 = *net_.CreateSubnet(v2, "s2", 20, 0, false);
  auto b = *tw_.world->LaunchInstance(tw_.tenant, tw_.provider, tw_.east, 0);
  ASSERT_TRUE(net_.AttachInstance(b, s2, {sg}, false).ok());

  auto result = net_.Evaluate(a, b, 80, Protocol::kTcp);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->delivered);
  EXPECT_EQ(result->drop_stage, "tgw-route");
}

TEST_F(FabricExternalTest, OnPremFallsBackToPublicPathWithoutVpn) {
  // No VPN, no circuits: an on-prem host can still reach a *public* cloud
  // endpoint over the internet (and only that way). The VPC block must not
  // collide with the on-prem space (10.0.0.0/16 in the test world) or the
  // return-route lookup classifies the source as VPC-local.
  auto vpc = *net_.CreateVpc(tw_.tenant, tw_.provider, tw_.east, "v",
                             P("10.50.0.0/16"));
  auto subnet = *net_.CreateSubnet(vpc, "s", 20, 0, true);
  auto rt = *net_.CreateRouteTable(vpc, "rt");
  ASSERT_TRUE(net_.AssociateRouteTable(subnet, rt).ok());
  auto igw = *net_.CreateInternetGateway(vpc, "igw");
  ASSERT_TRUE(net_.AddRoute(rt, IpPrefix::Any(IpFamily::kIpv4),
                            VpcRouteTarget{
                                VpcRouteTargetKind::kInternetGateway,
                                igw.value()})
                  .ok());
  auto sg = *net_.CreateSecurityGroup(vpc, "sg");
  SgRule ingress;
  ingress.direction = TrafficDirection::kIngress;
  ingress.proto = Protocol::kTcp;
  ingress.ports = PortRange::Single(443);
  ingress.peer = IpPrefix::Any(IpFamily::kIpv4);
  ASSERT_TRUE(net_.AddSgRule(sg, ingress).ok());
  auto acl = *net_.CreateNetworkAcl(vpc, "acl");
  for (TrafficDirection dir :
       {TrafficDirection::kIngress, TrafficDirection::kEgress}) {
    AclEntry e;
    e.rule_number = 100;
    e.allow = true;
    e.direction = dir;
    e.match = FlowMatch::Any();
    ASSERT_TRUE(net_.AddAclEntry(acl, e).ok());
  }
  ASSERT_TRUE(net_.AssociateAcl(subnet, acl).ok());
  auto cloud_inst =
      *tw_.world->LaunchInstance(tw_.tenant, tw_.provider, tw_.east, 0);
  ASSERT_TRUE(
      net_.AttachInstance(cloud_inst, subnet, {sg}, /*public=*/true).ok());

  auto onprem_inst = *tw_.world->LaunchOnPremInstance(tw_.tenant, tw_.on_prem);
  ASSERT_TRUE(net_.AttachOnPremInstance(onprem_inst).ok());

  auto result = net_.Evaluate(onprem_inst, cloud_inst, 443, Protocol::kTcp);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->delivered)
      << result->drop_stage << ": " << result->drop_reason;
  EXPECT_TRUE(result->used_public_path);
  EXPECT_EQ(result->egress_policy, EgressPolicy::kHotPotato);
  // The dialed address was the instance's public one.
  const Eni* eni = net_.FindEniByInstance(cloud_inst);
  EXPECT_EQ(result->effective_dst, *eni->public_ip);
}

TEST_F(FabricExternalTest, LbFamiliesResolveThroughFabric) {
  auto vpc = *net_.CreateVpc(tw_.tenant, tw_.provider, tw_.east, "v",
                             P("10.0.0.0/16"));
  auto subnet = *net_.CreateSubnet(vpc, "s", 20, 0, false);
  auto inst = *tw_.world->LaunchInstance(tw_.tenant, tw_.provider, tw_.east, 0);
  auto tg = *net_.CreateTargetGroup("tg", Protocol::kTcp, 80);
  ASSERT_TRUE(net_.RegisterTarget(tg, inst).ok());
  FiveTuple flow;
  flow.src = IpAddress::V4(1, 1, 1, 1);
  flow.dst = IpAddress::V4(2, 2, 2, 2);
  flow.dst_port = 80;
  flow.proto = Protocol::kTcp;
  for (LbType type : {LbType::kClassic, LbType::kGateway, LbType::kNetwork}) {
    auto lb = *net_.CreateLoadBalancer(type, "lb", vpc, {subnet});
    LbListener listener;
    listener.proto = Protocol::kTcp;
    listener.port = 80;
    listener.default_target = tg;
    ASSERT_TRUE(net_.AddLbListener(lb, listener).ok());
    auto target = net_.ResolveThroughLoadBalancer(lb, flow, nullptr);
    ASSERT_TRUE(target.ok()) << LbTypeName(type);
    EXPECT_EQ(*target, inst);
  }
  // Resolution through a dangling target group is an error, not a crash.
  auto lb = *net_.CreateLoadBalancer(LbType::kNetwork, "lb-dangling", vpc,
                                     {subnet});
  LbListener bad;
  bad.proto = Protocol::kTcp;
  bad.port = 80;
  bad.default_target = TargetGroupId(9999);
  ASSERT_TRUE(net_.AddLbListener(lb, bad).ok());
  EXPECT_EQ(net_.ResolveThroughLoadBalancer(lb, flow, nullptr)
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(FabricExternalTest, FirewallSurvivalFractionModel) {
  auto fw_id = *net_.CreateFirewall("fw", /*capacity_pps=*/1000);
  DpiFirewall* fw = net_.FindFirewall(fw_id);
  EXPECT_DOUBLE_EQ(fw->SurvivalFraction(500), 1.0);
  EXPECT_DOUBLE_EQ(fw->SurvivalFraction(1000), 1.0);
  EXPECT_DOUBLE_EQ(fw->SurvivalFraction(4000), 0.25);
  EXPECT_DOUBLE_EQ(fw->SurvivalFraction(0), 1.0);
}

TEST_F(FabricExternalTest, FirewallDefaultVerdictConfigurable) {
  auto fw_id = *net_.CreateFirewall("fw", 1e6);
  DpiFirewall* fw = net_.FindFirewall(fw_id);
  FiveTuple flow;
  flow.src = IpAddress::V4(1, 1, 1, 1);
  flow.dst = IpAddress::V4(2, 2, 2, 2);
  flow.dst_port = 443;
  flow.proto = Protocol::kTcp;
  EXPECT_EQ(fw->Inspect(flow, ""), FirewallVerdict::kDeny);  // default-deny
  fw->set_default_verdict(FirewallVerdict::kAllow);
  EXPECT_EQ(fw->Inspect(flow, ""), FirewallVerdict::kAllow);
  EXPECT_EQ(fw->inspected_count(), 2u);
  EXPECT_EQ(fw->denied_count(), 1u);
}

}  // namespace
}  // namespace tenantnet
