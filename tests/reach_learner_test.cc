// PolicyLearner property tests: the synthesized policy is sound (admits
// every observed flow), minimal (the prefix cover's address count equals the
// number of distinct observed sources — AggregatePrefixes merges only
// complete buddies, so nothing unobserved sneaks in), and a fixed point
// (re-learning the closure of a synthesized intent reproduces it, and
// observation order never matters). Plus the drift loop end to end: an
// IntentDeployer app's group-form lists read as drift against the learned
// prefix-form intent, Reconcile converges it through the normal mutators,
// and the app's expected flows stay reachable throughout.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/cloud/presets.h"
#include "src/core/api.h"
#include "src/core/intent.h"
#include "src/reach/policy_learner.h"
#include "src/reach/reach.h"
#include "src/routing/route_table.h"
#include "tests/test_env.h"

namespace tenantnet {
namespace {

IpAddress Src(uint32_t i) { return IpAddress::V4(0x0A000000 + i); }
IpAddress Dst(uint32_t i) { return IpAddress::V4(0x05000000 + i); }

FiveTuple Flow(IpAddress src, IpAddress dst, uint16_t port,
               Protocol proto = Protocol::kTcp) {
  FiveTuple flow;
  flow.src = src;
  flow.dst = dst;
  flow.dst_port = port;
  flow.proto = proto;
  return flow;
}

TEST(AddressCountTest, SumsDisjointPrefixSizes) {
  EXPECT_EQ(AddressCount({}), 0u);
  EXPECT_EQ(AddressCount({IpPrefix::Host(Src(1))}), 1u);
  EXPECT_EQ(AddressCount({*IpPrefix::Create(Src(0), 29)}), 8u);
  EXPECT_EQ(AddressCount({*IpPrefix::Create(Src(0), 29),
                          IpPrefix::Host(Src(16))}),
            9u);
}

TEST(PolicyLearnerTest, AlignedBlockAggregatesToOnePrefix) {
  PolicyLearner learner;
  // 8 contiguous, aligned sources toward one class: a perfect /29 buddy
  // merge.
  for (uint32_t i = 0; i < 8; ++i) {
    learner.Observe(Flow(Src(i), Dst(0), 443));
  }
  EXPECT_EQ(learner.observed_flows(), 8u);
  EXPECT_EQ(learner.traffic_classes(), 1u);

  ReachabilityIntent intent = learner.Synthesize();
  ASSERT_EQ(intent.permits.size(), 1u);
  const std::vector<PermitEntry>& entries = intent.permits.at(Dst(0));
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].source.length(), 29);
  EXPECT_EQ(entries[0].dst_ports, PortRange::Single(443));

  // Exactness in both directions.
  for (uint32_t i = 0; i < 8; ++i) {
    EXPECT_TRUE(intent.Admits(Src(i), Dst(0), 443, Protocol::kTcp));
  }
  EXPECT_FALSE(intent.Admits(Src(8), Dst(0), 443, Protocol::kTcp));
  EXPECT_FALSE(intent.Admits(Src(0), Dst(0), 80, Protocol::kTcp));
  EXPECT_FALSE(intent.Admits(Src(0), Dst(0), 443, Protocol::kUdp));
  EXPECT_FALSE(intent.Admits(Src(0), Dst(1), 443, Protocol::kTcp));
}

class LearnerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LearnerPropertyTest, SoundMinimalAndOrderIndependent) {
  const uint64_t seed = test_env::SeedOverride(GetParam());
  SCOPED_TRACE("TN_SEED=" + std::to_string(seed));
  test_env::PairSampler rng(seed);

  // Random observations: a handful of (dst, port) classes, sources drawn
  // from a small pool so buddy merges actually happen.
  std::vector<FiveTuple> flows;
  const size_t n_classes = 3 + rng.Index(3);
  for (size_t c = 0; c < n_classes; ++c) {
    IpAddress dst = Dst(static_cast<uint32_t>(c));
    uint16_t port = rng.Chance(0.5) ? 443 : 8080;
    const size_t n_obs = 10 + rng.Index(40);
    for (size_t i = 0; i < n_obs; ++i) {
      flows.push_back(Flow(Src(static_cast<uint32_t>(rng.Index(48))), dst,
                           port,
                           rng.Chance(0.8) ? Protocol::kTcp : Protocol::kUdp));
    }
  }

  PolicyLearner learner;
  learner.ObserveAll(flows);
  ReachabilityIntent intent = learner.Synthesize();

  // Soundness: every observed flow is admitted.
  for (const FiveTuple& f : flows) {
    EXPECT_TRUE(intent.Admits(f.src, f.dst, f.dst_port, f.proto))
        << f.ToString();
  }

  // Minimality per class: the cover counts exactly the distinct observed
  // sources of that (dst, proto, port) class — no unobserved address is
  // admitted.
  struct ClassKey {
    IpAddress dst;
    Protocol proto;
    uint16_t port;
    bool operator<(const ClassKey& o) const {
      if (dst != o.dst) return dst < o.dst;
      if (proto != o.proto) return proto < o.proto;
      return port < o.port;
    }
  };
  std::map<ClassKey, std::set<IpAddress>> by_class;
  for (const FiveTuple& f : flows) {
    by_class[{f.dst, f.proto, f.dst_port}].insert(f.src);
  }
  for (const auto& [key, sources] : by_class) {
    std::vector<IpPrefix> cover;
    for (const PermitEntry& e : intent.permits.at(key.dst)) {
      if (e.proto == key.proto && e.dst_ports == PortRange::Single(key.port)) {
        cover.push_back(e.source);
      }
    }
    EXPECT_EQ(AddressCount(cover), sources.size());
    // Spot-check the complement within the source pool.
    for (uint32_t i = 0; i < 48; ++i) {
      EXPECT_EQ(CoveredBy(cover, Src(i)), sources.count(Src(i)) > 0)
          << "class dst=" << key.dst.ToString() << " src#" << i;
    }
  }

  // Order independence: reversed observation order, identical intent.
  PolicyLearner reversed;
  for (auto it = flows.rbegin(); it != flows.rend(); ++it) {
    reversed.Observe(*it);
  }
  EXPECT_EQ(reversed.Synthesize(), intent);

  // Fixed point: re-learn from the closure of the synthesized intent (every
  // admitted source in the pool, per class) — the exact cover reproduces
  // itself.
  PolicyLearner relearned;
  for (const auto& [key, sources] : by_class) {
    for (uint32_t i = 0; i < 48; ++i) {
      if (intent.Admits(Src(i), key.dst, key.port, key.proto)) {
        relearned.Observe(Flow(Src(i), key.dst, key.port, key.proto));
      }
    }
  }
  EXPECT_EQ(relearned.Synthesize(), intent);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LearnerPropertyTest,
                         ::testing::ValuesIn(test_env::SeedList({3, 31, 311})));

// ---------------------------------------------------------------------------
// Drift detection and reconciliation against a live cloud.
// ---------------------------------------------------------------------------

TEST(DriftTest, ManualDeltasAreReportedExactly) {
  TestWorld tw = BuildTestWorld();
  ConfigLedger ledger;
  DeclarativeCloud cloud(*tw.world, ledger);

  InstanceId client = *tw.world->LaunchInstance(tw.tenant, tw.provider,
                                                tw.east, 0);
  InstanceId server = *tw.world->LaunchInstance(tw.tenant, tw.provider,
                                                tw.east, 0);
  IpAddress client_eip = *cloud.RequestEip(client);
  IpAddress server_eip = *cloud.RequestEip(server);

  PolicyLearner learner;
  learner.Observe(Flow(client_eip, server_eip, 443));
  ReachabilityIntent intent = learner.Synthesize();

  // Nothing installed yet: the desired entry is missing.
  std::vector<PolicyLearner::Drift> drifts =
      PolicyLearner::DetectDrift(intent, cloud);
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_EQ(drifts[0].dst, server_eip);
  EXPECT_EQ(drifts[0].missing.size(), 1u);
  EXPECT_TRUE(drifts[0].unexpected.empty());

  // Install the intent plus a stray entry: exactly the stray reads back as
  // unexpected.
  PermitEntry stray;
  stray.source = IpPrefix::Host(Src(77));
  std::vector<PermitEntry> installed = intent.permits.at(server_eip);
  installed.push_back(stray);
  ASSERT_TRUE(cloud.SetPermitList(server_eip, installed).ok());
  drifts = PolicyLearner::DetectDrift(intent, cloud);
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_TRUE(drifts[0].missing.empty());
  ASSERT_EQ(drifts[0].unexpected.size(), 1u);
  EXPECT_EQ(drifts[0].unexpected[0], stray);

  // Reconcile closes the loop.
  ASSERT_TRUE(PolicyLearner::Reconcile(drifts, cloud).ok());
  EXPECT_TRUE(PolicyLearner::DetectDrift(intent, cloud).empty());

  // And the client actually reaches the server afterwards.
  DeclarativeReachEngine engine(*tw.world, cloud);
  EXPECT_TRUE(engine.CanReach(client, server_eip, 443,
                              Protocol::kTcp).reachable);
}

TEST(DriftTest, DeployedAppReconcilesWithoutBreakingExpectedFlows) {
  TestWorld tw = BuildTestWorld();
  ConfigLedger ledger;
  DeclarativeCloud cloud(*tw.world, ledger);
  IntentDeployer deployer(cloud);

  AppSpec app;
  app.tenant = tw.tenant;
  ServiceSpec web;
  web.name = "web";
  web.port = 8080;
  for (int i = 0; i < 2; ++i) {
    web.instances.push_back(
        *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.east, 0));
  }
  ServiceSpec db;
  db.name = "db";
  db.port = 5432;
  for (int i = 0; i < 2; ++i) {
    db.instances.push_back(
        *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.west, 0));
  }
  app.services = {web, db};
  app.calls = {{"web", "db"}};

  auto deployed = deployer.Deploy(app);
  ASSERT_TRUE(deployed.ok());
  std::vector<FiveTuple> expected = ExpectedFlows(app, *deployed);
  ASSERT_FALSE(expected.empty());

  // The learner watches the app's declared traffic and distills intent.
  PolicyLearner learner;
  learner.ObserveAll(expected);
  ReachabilityIntent intent = learner.Synthesize();

  // Ground truth before reconciliation: every expected flow reaches.
  DeclarativeReachEngine engine(*tw.world, cloud);
  auto reach_of = [&](const FiveTuple& f) {
    InstanceId src_vm;
    for (const auto& [name, handles] : deployed->services) {
      for (const auto& [vm_value, eip] : handles.eip_by_instance) {
        if (eip == f.src) {
          src_vm = InstanceId(vm_value);
        }
      }
    }
    return engine.CanReach(src_vm, f.dst, f.dst_port, f.proto);
  };
  for (const FiveTuple& f : expected) {
    EXPECT_TRUE(reach_of(f).reachable) << f.ToString();
  }

  // The deployer installed group-form lists; the learner manages prefix-form
  // only, so this is (syntactic) drift by design.
  std::vector<PolicyLearner::Drift> drifts =
      PolicyLearner::DetectDrift(intent, cloud);
  EXPECT_FALSE(drifts.empty());

  // Reconcile through the normal mutators and converge: no drift remains,
  // and the app's reachability is preserved.
  ASSERT_TRUE(PolicyLearner::Reconcile(drifts, cloud).ok());
  EXPECT_TRUE(PolicyLearner::DetectDrift(intent, cloud).empty());
  for (const FiveTuple& f : expected) {
    EXPECT_TRUE(reach_of(f).reachable) << f.ToString();
  }
}

}  // namespace
}  // namespace tenantnet
