// Randomized differential fuzz for the reach query engines.
//
// Property, declarative world: CanReach must equal an independent
// brute-force oracle built from the ORIGINAL linear matcher (AdmitsLinear —
// a different code path from the compiled matcher the engine walks) plus
// instance liveness, and must stay in exact agreement with Evaluate for EIP
// destinations (∃/∀ sandwich for SIPs) — through permit/group/binding
// churn, partially drained replication queues, and a FaultInjector storm
// that crashes instances and degrades the control plane mid-round.
// Property, baseline world: CanReach must equal the cached Evaluate (the
// engine composes EvaluateUncached, so cached-vs-engine is a real
// differential) through SG/ACL/route/instance churn.
// In both worlds, every round's incremental Revalidate must fingerprint
// byte-identical to a from-scratch verifier.
//
// Reproduce any failure with the TN_SEED / TN_ITERS pair printed by
// SCOPED_TRACE.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/app/workload.h"
#include "src/cloud/presets.h"
#include "src/common/rng.h"
#include "src/core/api.h"
#include "src/core/edge_filter.h"
#include "src/faults/fault_injector.h"
#include "src/reach/reach.h"
#include "src/sim/flow_sim.h"
#include "src/vnet/fabric.h"
#include "tests/test_env.h"

namespace tenantnet {
namespace {

std::string DenyName(const ReachVerdict& v) {
  return DenyStages().Name(v.deny_stage);
}

// ---------------------------------------------------------------------------
// Declarative world.
// ---------------------------------------------------------------------------

class DeclarativeReachFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeclarativeReachFuzzTest, EngineMatchesBruteForceUnderStorm) {
  const uint64_t seed = GetParam();
  const int64_t rounds = test_env::ItersOverride(30);
  SCOPED_TRACE("TN_SEED=" + std::to_string(seed) +
               " TN_ITERS=" + std::to_string(rounds));

  TestWorld tw = BuildTestWorld();
  ConfigLedger ledger;
  EventQueue queue;
  DeclarativeParams dparams;
  dparams.filter.degraded_drop_prob = 0.4;
  DeclarativeCloud cloud(*tw.world, ledger, &queue, dparams);
  FlowSim sim(queue, tw.world->topology());
  MetricRegistry metrics;

  constexpr size_t kN = 8;
  std::vector<InstanceId> vms;
  std::vector<IpAddress> eips;
  for (size_t i = 0; i < kN; ++i) {
    InstanceId vm = *tw.world->LaunchInstance(
        tw.tenant, tw.provider, i % 2 == 0 ? tw.east : tw.west, 0);
    vms.push_back(vm);
    eips.push_back(*cloud.RequestEip(vm));
  }
  IpAddress sip = *cloud.RequestSip(tw.tenant, tw.provider);
  ASSERT_TRUE(cloud.Bind(eips[0], sip).ok());
  ASSERT_TRUE(cloud.Bind(eips[1], sip).ok());
  ASSERT_TRUE(cloud.Bind(eips[2], sip).ok());
  std::vector<EndpointGroupId> groups;
  for (int g = 0; g < 2; ++g) {
    groups.push_back(
        *cloud.CreateEndpointGroup(tw.tenant, "g" + std::to_string(g)));
    ASSERT_TRUE(
        cloud.AddToEndpointGroup(groups.back(), eips[2 * g]).ok());
  }
  queue.RunAll();

  EdgeFilterBank& bank = cloud.provider_filters(tw.provider);
  FaultHooks hooks;
  hooks.set_control_degraded = [&](bool degraded) {
    bank.SetReplicationDegraded(degraded);
  };
  FaultInjector injector(queue, tw.world->topology(), sim, tw.world.get(),
                         metrics, std::move(hooks));
  StormParams sparams;
  sparams.event_count = 24;
  sparams.window = SimDuration::Seconds(15);
  sparams.instances = vms;
  sparams.include_control_plane = true;
  injector.Schedule(FaultSchedule::Storm(seed, sparams));

  DeclarativeReachEngine engine(*tw.world, cloud);
  DeclarativeReachVerifier verifier(*tw.world, cloud);
  std::vector<DeclarativeReachVerifier::Pair> pairs;
  for (InstanceId src : vms) {
    for (const IpAddress& dst : eips) {
      pairs.push_back({src, dst, 443, Protocol::kTcp});
    }
    pairs.push_back({src, sip, 443, Protocol::kTcp});
  }
  verifier.SetPairs(pairs);
  verifier.VerifyAll();

  test_env::PairSampler rng(seed);
  auto random_entry = [&]() {
    PermitEntry e;
    switch (rng.Index(4)) {
      case 0:
        e.source = IpPrefix::Host(eips[rng.Index(kN)]);
        break;
      case 1:
        e.source = *IpPrefix::Create(eips[0], 24);
        break;
      case 2:
        e.source_group = groups[rng.Index(groups.size())];
        break;
      default:  // noise prefix no EIP matches
        e.source = IpPrefix::Host(
            IpAddress::V4(static_cast<uint32_t>(0x0C000000 + rng.Index(64))));
        break;
    }
    if (rng.Chance(0.5)) {
      e.dst_ports = PortRange::Single(rng.Chance(0.5) ? 443 : 80);
    }
    return e;
  };

  // The brute-force oracle for one concrete (src EIP -> dst EIP) flow:
  // destination allocated + running + linear matcher admits.
  auto concrete_reaches = [&](IpAddress src_eip, IpAddress dst,
                              uint16_t port) {
    const EipRecord* record = cloud.FindEip(dst);
    if (record == nullptr) {
      return false;
    }
    const Instance* inst = tw.world->FindInstance(record->instance);
    if (inst == nullptr || !inst->running) {
      return false;
    }
    auto edge = cloud.DestinationEdgeOf(dst);
    if (!edge.ok()) {
      return false;
    }
    FiveTuple flow;
    flow.src = src_eip;
    flow.dst = dst;
    flow.dst_port = port;
    flow.proto = Protocol::kTcp;
    return edge->bank->AdmitsLinear(edge->edge_index, flow);
  };

  for (int64_t round = 0; round < rounds; ++round) {
    // One mutation per round, then a PARTIAL queue drain: queries run while
    // replication is in flight and the storm plays out.
    switch (rng.Index(6)) {
      case 0:
      case 1: {
        std::vector<PermitEntry> entries;
        for (size_t i = 0, n = rng.Index(5); i < n; ++i) {
          entries.push_back(random_entry());
        }
        ASSERT_TRUE(
            cloud.SetPermitList(eips[rng.Index(kN)], entries).ok());
        break;
      }
      case 2: {
        std::vector<PermitEntry> add;
        if (rng.Chance(0.7)) {
          add.push_back(random_entry());
        }
        ASSERT_TRUE(
            cloud.UpdatePermitList(eips[rng.Index(kN)], add, {}).ok());
        break;
      }
      case 3: {  // group membership churn
        EndpointGroupId g = groups[rng.Index(groups.size())];
        IpAddress member = eips[rng.Index(kN)];
        if (rng.Chance(0.5)) {
          (void)cloud.AddToEndpointGroup(g, member);
        } else {
          (void)cloud.RemoveFromEndpointGroup(g, member);
        }
        break;
      }
      case 4: {  // SIP binding churn
        IpAddress backend = eips[rng.Index(3)];
        if (rng.Chance(0.5)) {
          (void)cloud.Bind(backend, sip);
        } else {
          (void)cloud.Unbind(backend, sip);
        }
        break;
      }
      default: {  // instance crash with recovery via the injector
        FaultSpec fault;
        fault.kind = FaultKind::kInstanceCrash;
        fault.instance = vms[rng.Index(kN)];
        fault.duration = SimDuration::Millis(100 + rng.Index(400));
        injector.InjectNow(fault);
        break;
      }
    }
    queue.RunUntil(queue.now() + SimDuration::Millis(rng.Index(400)));

    for (int q = 0; q < 20; ++q) {
      auto [s, d] = rng.Pair(kN, kN + 1, /*distinct=*/false);
      SCOPED_TRACE("round " + std::to_string(round) + " " +
                   test_env::PairSampler::ReproLine(q, s, d));
      InstanceId src = vms[s];
      uint16_t port = rng.Chance(0.5) ? 443 : 80;
      const bool src_up = tw.world->FindInstance(src)->running;

      if (d == kN) {
        // SIP destination: ∃/∀ against the per-backend oracle.
        ReachVerdict v = engine.CanReach(src, sip, port, Protocol::kTcp);
        if (!src_up) {
          EXPECT_FALSE(v.reachable);
          EXPECT_EQ(DenyName(v), "src-down");
          continue;
        }
        auto bindings = cloud.sip_lb().Bindings(sip);
        size_t healthy = 0, reach = 0;
        if (bindings.ok()) {
          for (const auto& b : *bindings) {
            if (!b.healthy) {
              continue;
            }
            ++healthy;
            if (concrete_reaches(eips[s], b.eip, port)) {
              ++reach;
            }
          }
        }
        EXPECT_EQ(v.reachable, reach > 0) << v.ToString();
        EXPECT_EQ(v.all_backends, healthy > 0 && reach == healthy)
            << v.ToString();
        // Sandwich against the data plane (this advances the pick counter,
        // which is fine — it is the data plane).
        auto e = cloud.Evaluate(src, sip, port, Protocol::kTcp);
        ASSERT_TRUE(e.ok());
        if (v.all_backends) {
          EXPECT_TRUE(e->delivered);
        }
        if (!v.reachable) {
          EXPECT_FALSE(e->delivered);
        }
      } else {
        // EIP destination: exact agreement with both the oracle and the
        // data plane.
        ReachVerdict v =
            engine.CanReach(src, eips[d], port, Protocol::kTcp);
        auto e = cloud.Evaluate(src, eips[d], port, Protocol::kTcp);
        if (!src_up) {
          EXPECT_FALSE(v.reachable);
          EXPECT_EQ(DenyName(v), "src-down");
          EXPECT_FALSE(e.ok());
          continue;
        }
        EXPECT_EQ(v.reachable, concrete_reaches(eips[s], eips[d], port))
            << v.ToString();
        ASSERT_TRUE(e.ok());
        EXPECT_EQ(v.reachable, e->delivered) << v.ToString();
        if (!v.reachable) {
          EXPECT_EQ(DenyName(v), e->drop_stage) << v.ToString();
        }
      }
    }

    // Mid-storm incremental snapshot: Revalidate must land byte-identical
    // to a from-scratch verify of the same pair set.
    verifier.Revalidate();
    DeclarativeReachVerifier fresh(*tw.world, cloud);
    fresh.SetPairs(pairs);
    fresh.VerifyAll();
    ASSERT_EQ(verifier.Fingerprint(), fresh.Fingerprint())
        << "incremental revalidation diverged at round " << round;
  }
  queue.RunAll();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeclarativeReachFuzzTest,
                         ::testing::ValuesIn(test_env::SeedList({11, 47,
                                                                 1009})));

// ---------------------------------------------------------------------------
// Baseline world.
// ---------------------------------------------------------------------------

class BaselineReachFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BaselineReachFuzzTest, EngineMatchesCachedEvaluateUnderChurn) {
  const uint64_t seed = GetParam();
  const int64_t rounds = test_env::ItersOverride(40);
  SCOPED_TRACE("TN_SEED=" + std::to_string(seed) +
               " TN_ITERS=" + std::to_string(rounds));

  Rng rng(seed);
  TestWorld tw = BuildTestWorld();
  ConfigLedger ledger;
  BaselineNetwork net(*tw.world, ledger);
  EventQueue queue;
  FlowSim sim(queue, tw.world->topology());
  MetricRegistry metrics;
  FaultInjector injector(queue, tw.world->topology(), sim, tw.world.get(),
                         metrics, {});

  auto vpc = *net.CreateVpc(tw.tenant, tw.provider, tw.east, "v1",
                            *IpPrefix::Parse("10.0.0.0/16"));
  auto subnet = *net.CreateSubnet(vpc, "s1", 20, 0, false);
  auto sg = *net.CreateSecurityGroup(vpc, "sg");
  auto acl = *net.CreateNetworkAcl(vpc, "acl");
  for (TrafficDirection dir :
       {TrafficDirection::kIngress, TrafficDirection::kEgress}) {
    AclEntry entry;
    entry.rule_number = 1000;
    entry.allow = true;
    entry.direction = dir;
    entry.match = FlowMatch::Any();
    ASSERT_TRUE(net.AddAclEntry(acl, entry).ok());
  }
  ASSERT_TRUE(net.AssociateAcl(subnet, acl).ok());

  std::vector<InstanceId> instances;
  for (int i = 0; i < 8; ++i) {
    InstanceId id =
        *tw.world->LaunchInstance(tw.tenant, tw.provider, tw.east, 0);
    ASSERT_TRUE(net.AttachInstance(id, subnet, {sg}, false).ok());
    instances.push_back(id);
  }

  BaselineReachEngine engine(net);
  BaselineReachVerifier verifier(net);
  std::vector<BaselineReachVerifier::Pair> pairs;
  for (InstanceId a : instances) {
    for (InstanceId b : instances) {
      if (a != b) {
        pairs.push_back({a, b, 443, Protocol::kTcp});
      }
    }
  }
  verifier.SetPairs(pairs);
  verifier.VerifyAll();

  uint32_t next_acl_rule = 100;
  size_t sg_rules = 0;
  for (int64_t round = 0; round < rounds; ++round) {
    switch (rng.NextU64(5)) {
      case 0: {
        SgRule rule;
        rule.direction = TrafficDirection::kIngress;
        rule.proto = Protocol::kTcp;
        rule.ports =
            PortRange::Single(static_cast<uint16_t>(80 + rng.NextU64(6)));
        rule.peer = *IpPrefix::Parse("10.0.0.0/16");
        ASSERT_TRUE(net.AddSgRule(sg, rule).ok());
        ++sg_rules;
        break;
      }
      case 1:
        if (sg_rules > 0 && net.RemoveSgRule(sg, rng.NextU64(sg_rules)).ok()) {
          --sg_rules;
        }
        break;
      case 2: {
        AclEntry entry;
        entry.rule_number = next_acl_rule++;
        entry.allow = rng.NextBool(0.5);
        entry.direction = rng.NextBool(0.5) ? TrafficDirection::kIngress
                                            : TrafficDirection::kEgress;
        entry.match = FlowMatch::Any();
        entry.match.dst_ports =
            PortRange::Single(static_cast<uint16_t>(80 + rng.NextU64(6)));
        ASSERT_TRUE(net.AddAclEntry(acl, entry).ok());
        break;
      }
      default: {
        FaultSpec fault;
        fault.kind = FaultKind::kInstanceCrash;
        fault.instance = instances[rng.NextU64(instances.size())];
        fault.duration = SimDuration::Millis(100 + rng.NextU64(400));
        injector.InjectNow(fault);
        queue.RunUntil(queue.now() + SimDuration::Millis(rng.NextU64(600)));
        break;
      }
    }

    for (int q = 0; q < 15; ++q) {
      InstanceId a = instances[rng.NextU64(instances.size())];
      InstanceId b = instances[rng.NextU64(instances.size())];
      uint16_t port = static_cast<uint16_t>(80 + rng.NextU64(6));
      SCOPED_TRACE("round " + std::to_string(round) + " src=" +
                   std::to_string(a.value()) + " dst=" +
                   std::to_string(b.value()) + " port=" +
                   std::to_string(port));
      ReachVerdict v = engine.CanReach(a, b, port, Protocol::kTcp);
      auto e = net.Evaluate(a, b, port, Protocol::kTcp);
      if (!e.ok()) {
        EXPECT_FALSE(v.reachable);
        continue;
      }
      EXPECT_EQ(v.reachable, e->delivered) << v.ToString();
      if (!v.reachable && !e->drop_stage.empty()) {
        EXPECT_EQ(DenyName(v), e->drop_stage) << v.ToString();
      }
    }

    verifier.Revalidate();
    BaselineReachVerifier fresh(net);
    fresh.SetPairs(pairs);
    fresh.VerifyAll();
    ASSERT_EQ(verifier.Fingerprint(), fresh.Fingerprint())
        << "baseline revalidation diverged at round " << round;
  }
  queue.RunAll();
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineReachFuzzTest,
                         ::testing::ValuesIn(test_env::SeedList({2, 13, 77})));

}  // namespace
}  // namespace tenantnet
