// Tests for the path-vector mesh.

#include <gtest/gtest.h>

#include "src/routing/bgp.h"

namespace tenantnet {
namespace {

IpPrefix P(const char* s) { return *IpPrefix::Parse(s); }

TEST(BgpTest, LinePropagation) {
  BgpMesh mesh;
  SpeakerId a = mesh.AddSpeaker(100, "a");
  SpeakerId b = mesh.AddSpeaker(200, "b");
  SpeakerId c = mesh.AddSpeaker(300, "c");
  ASSERT_TRUE(mesh.AddSession(a, b).ok());
  ASSERT_TRUE(mesh.AddSession(b, c).ok());
  ASSERT_TRUE(mesh.Originate(a, P("10.0.0.0/16")).ok());

  auto stats = mesh.Converge();
  EXPECT_TRUE(stats.converged);
  EXPECT_GE(stats.rounds, 2u);

  const BgpRoute* at_c = mesh.BestRoute(c, P("10.0.0.0/16"));
  ASSERT_NE(at_c, nullptr);
  EXPECT_EQ(at_c->as_path, (std::vector<uint32_t>{200, 100}));
  EXPECT_EQ(at_c->learned_from, b);

  const BgpRoute* at_a = mesh.BestRoute(a, P("10.0.0.0/16"));
  ASSERT_NE(at_a, nullptr);
  EXPECT_TRUE(at_a->OriginatedLocally());
}

TEST(BgpTest, ShortestAsPathWins) {
  // a originates; c hears via b (2 hops) and directly (1 hop).
  BgpMesh mesh;
  SpeakerId a = mesh.AddSpeaker(100, "a");
  SpeakerId b = mesh.AddSpeaker(200, "b");
  SpeakerId c = mesh.AddSpeaker(300, "c");
  ASSERT_TRUE(mesh.AddSession(a, b).ok());
  ASSERT_TRUE(mesh.AddSession(b, c).ok());
  ASSERT_TRUE(mesh.AddSession(a, c).ok());
  ASSERT_TRUE(mesh.Originate(a, P("10.0.0.0/16")).ok());
  mesh.Converge();
  const BgpRoute* route = mesh.BestRoute(c, P("10.0.0.0/16"));
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->as_path.size(), 1u);
  EXPECT_EQ(route->learned_from, a);
}

TEST(BgpTest, LoopDetectionDropsOwnAsn) {
  // Triangle: the route must not loop; everyone converges with finite
  // paths.
  BgpMesh mesh;
  SpeakerId a = mesh.AddSpeaker(100, "a");
  SpeakerId b = mesh.AddSpeaker(200, "b");
  SpeakerId c = mesh.AddSpeaker(300, "c");
  ASSERT_TRUE(mesh.AddSession(a, b).ok());
  ASSERT_TRUE(mesh.AddSession(b, c).ok());
  ASSERT_TRUE(mesh.AddSession(c, a).ok());
  ASSERT_TRUE(mesh.Originate(a, P("10.0.0.0/16")).ok());
  auto stats = mesh.Converge();
  EXPECT_TRUE(stats.converged);
  const BgpRoute* at_b = mesh.BestRoute(b, P("10.0.0.0/16"));
  ASSERT_NE(at_b, nullptr);
  EXPECT_EQ(at_b->as_path.size(), 1u);  // direct, not around the triangle
}

TEST(BgpTest, LocalPrefBeatsPathLength) {
  BgpMesh mesh;
  SpeakerId a = mesh.AddSpeaker(100, "a");
  SpeakerId b = mesh.AddSpeaker(200, "b");
  SpeakerId c = mesh.AddSpeaker(300, "c");
  // c prefers routes from b (local_pref 200) even though a is direct.
  ASSERT_TRUE(mesh.AddSession(a, b).ok());
  ASSERT_TRUE(mesh.AddSession(a, c).ok());
  SessionPolicy from_b;
  from_b.import_local_pref = 200;
  ASSERT_TRUE(mesh.AddSession(c, b, /*a_to_b=*/from_b).ok());
  ASSERT_TRUE(mesh.Originate(a, P("10.0.0.0/16")).ok());
  mesh.Converge();
  const BgpRoute* route = mesh.BestRoute(c, P("10.0.0.0/16"));
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(route->learned_from, b);
  EXPECT_EQ(route->local_pref, 200u);
}

TEST(BgpTest, ExportFilterBlocksAdvertisement) {
  BgpMesh mesh;
  SpeakerId a = mesh.AddSpeaker(100, "a");
  SpeakerId b = mesh.AddSpeaker(200, "b");
  SessionPolicy a_to_b;
  a_to_b.export_filter = [](const BgpRoute& r) {
    return r.prefix != *IpPrefix::Parse("10.0.0.0/16");
  };
  ASSERT_TRUE(mesh.AddSession(a, b, a_to_b).ok());
  ASSERT_TRUE(mesh.Originate(a, P("10.0.0.0/16")).ok());
  ASSERT_TRUE(mesh.Originate(a, P("192.168.0.0/16")).ok());
  mesh.Converge();
  EXPECT_EQ(mesh.BestRoute(b, P("10.0.0.0/16")), nullptr);
  EXPECT_NE(mesh.BestRoute(b, P("192.168.0.0/16")), nullptr);
}

TEST(BgpTest, ImportFilterBlocksAcceptance) {
  BgpMesh mesh;
  SpeakerId a = mesh.AddSpeaker(100, "a");
  SpeakerId b = mesh.AddSpeaker(200, "b");
  SessionPolicy b_from_a;  // stored on b's session toward a
  b_from_a.import_filter = [](const BgpRoute&) { return false; };
  ASSERT_TRUE(mesh.AddSession(a, b, SessionPolicy{}, b_from_a).ok());
  ASSERT_TRUE(mesh.Originate(a, P("10.0.0.0/16")).ok());
  mesh.Converge();
  EXPECT_EQ(mesh.BestRoute(b, P("10.0.0.0/16")), nullptr);
}

TEST(BgpTest, WithdrawOriginRemovesEverywhereOnReconverge) {
  BgpMesh mesh;
  SpeakerId a = mesh.AddSpeaker(100, "a");
  SpeakerId b = mesh.AddSpeaker(200, "b");
  ASSERT_TRUE(mesh.AddSession(a, b).ok());
  ASSERT_TRUE(mesh.Originate(a, P("10.0.0.0/16")).ok());
  mesh.Converge();
  ASSERT_NE(mesh.BestRoute(b, P("10.0.0.0/16")), nullptr);
  ASSERT_TRUE(mesh.WithdrawOrigin(a, P("10.0.0.0/16")).ok());
  mesh.Converge();
  EXPECT_EQ(mesh.BestRoute(b, P("10.0.0.0/16")), nullptr);
}

TEST(BgpTest, InvalidOperations) {
  BgpMesh mesh;
  SpeakerId a = mesh.AddSpeaker(100, "a");
  EXPECT_FALSE(mesh.AddSession(a, a).ok());
  EXPECT_FALSE(mesh.AddSession(a, SpeakerId(99)).ok());
  EXPECT_FALSE(mesh.Originate(SpeakerId(99), P("10.0.0.0/8")).ok());
  ASSERT_TRUE(mesh.Originate(a, P("10.0.0.0/8")).ok());
  EXPECT_EQ(mesh.Originate(a, P("10.0.0.0/8")).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(mesh.WithdrawOrigin(a, P("11.0.0.0/8")).code(),
            StatusCode::kNotFound);
}

TEST(BgpTest, MessageCountScalesWithTopology) {
  // A full mesh of N speakers each originating one prefix: every speaker
  // ends with N routes, and messages grow superlinearly — the §2 pain of
  // tenants running their own inter-domain routing.
  constexpr int kN = 8;
  BgpMesh mesh;
  std::vector<SpeakerId> speakers;
  for (int i = 0; i < kN; ++i) {
    speakers.push_back(mesh.AddSpeaker(100 + i, "s" + std::to_string(i)));
  }
  for (int i = 0; i < kN; ++i) {
    for (int j = i + 1; j < kN; ++j) {
      ASSERT_TRUE(mesh.AddSession(speakers[i], speakers[j]).ok());
    }
  }
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(mesh.Originate(
        speakers[i], *IpPrefix::Create(
                         IpAddress::V4(10, static_cast<uint8_t>(i), 0, 0),
                         16)).ok());
  }
  auto stats = mesh.Converge();
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(mesh.TotalRibEntries(), static_cast<size_t>(kN * kN));
  EXPECT_GT(stats.update_messages, static_cast<uint64_t>(kN * (kN - 1)));
  for (const SpeakerId s : speakers) {
    EXPECT_EQ(mesh.TableSize(s), static_cast<size_t>(kN));
  }
}

}  // namespace
}  // namespace tenantnet
